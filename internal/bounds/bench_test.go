package bounds

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/platform"
	"repro/internal/workloads"
)

// BenchmarkArea measures the combinatorial area bound across sizes.
func BenchmarkArea(b *testing.B) {
	pl := platform.NewPlatform(20, 4)
	for _, T := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("tasks=%d", T), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			in := workloads.UniformInstance(T, 1, 100, 0.2, 40, rng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Area(in, pl); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAreaBoundLP measures the simplex cross-check (small sizes only;
// the LP is the validation path, not the production path).
func BenchmarkAreaBoundLP(b *testing.B) {
	pl := platform.NewPlatform(4, 2)
	rng := rand.New(rand.NewSource(2))
	in := workloads.UniformInstance(30, 1, 100, 0.2, 40, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AreaBoundLP(in, pl); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDAGLowerRefined measures the dependency-restricted sweep.
func BenchmarkDAGLowerRefined(b *testing.B) {
	g := workloads.Cholesky(12)
	pl := platform.NewPlatform(20, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DAGLowerRefined(g, pl); err != nil {
			b.Fatal(err)
		}
	}
}

package bounds

import (
	"math"
	"sort"

	"repro/internal/dag"
	"repro/internal/platform"
)

// DAGLowerRefined strengthens DAGLower with dependency-restricted area
// arguments in the spirit of reference [12] of the paper:
//
//   - forward: tasks whose earliest possible start (min-duration top
//     level) is at least theta can only execute after theta, so
//     C >= theta + AreaBound({v : top_min(v) >= theta});
//   - backward: tasks whose remaining critical path (min-duration bottom
//     level) is at least beta must all *start* before C - beta + w(v),
//     i.e. everything below them executes within a C - beta window:
//     C >= beta' + AreaBound({v : bottom_min(v) <= beta'}) for the
//     symmetric suffix argument.
//
// The sweep over the distinct level values includes theta = 0, so the
// result is always at least the plain DAGLower bound.
func DAGLowerRefined(g *dag.Graph, pl platform.Platform) (float64, error) {
	base, err := DAGLower(g, pl)
	if err != nil {
		return 0, err
	}
	top, err := topLevels(g, pl)
	if err != nil {
		return 0, err
	}
	bottom, err := g.BottomLevels(dag.WeightMin, pl)
	if err != nil {
		return 0, err
	}

	best := base
	// Forward sweep: C >= theta + Area(tasks with top_min >= theta).
	fw, err := sweep(g, pl, top, false)
	if err != nil {
		return 0, err
	}
	best = math.Max(best, fw)
	// Backward sweep (mirror image): tasks with bottom_min >= beta must
	// *complete* their whole downstream chain after they run; every such
	// task finishes by C - (bottom_min - own min weight), so all of them
	// execute within [0, C - beta + max own weight]... the safe symmetric
	// statement uses the exit-side restriction: tasks whose bottom level
	// is >= beta all start before C - beta + w(v) <= C, and everything
	// with bottom_min <= beta executes inside the last beta time units is
	// NOT true in general. The valid mirror is on the reversed DAG, where
	// bottom levels become top levels.
	bw, err := sweep(g, pl, bottom, true)
	if err != nil {
		return 0, err
	}
	best = math.Max(best, bw)
	return best, nil
}

// topLevels returns, for each task, the maximum total min-duration weight
// of a path from a source up to but excluding the task (its earliest
// possible start time on an unbounded platform).
func topLevels(g *dag.Graph, pl platform.Platform) ([]float64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	top := make([]float64, g.Len())
	for _, id := range order {
		var best float64
		for _, p := range g.Preds(id) {
			cand := top[p] + dag.NodeWeight(g.Task(p), dag.WeightMin, pl)
			best = math.Max(best, cand)
		}
		top[id] = best
	}
	return top, nil
}

// sweep computes max over theta of theta + AreaBound(selected tasks).
// With fromBottom=false, theta ranges over top levels and selects tasks
// with top >= theta (they run in [theta, C]). With fromBottom=true,
// levels are bottom levels including the task's own weight: tasks with
// bottom_min(v) >= beta cannot *finish* later than C - (beta - w_min(v)),
// equivalently on the time-reversed schedule they start at or after
// beta - w_min(v); the reversed-DAG top level of v is exactly
// bottom_min(v) - w_min(v), so we reuse the same selection on those
// values.
func sweep(g *dag.Graph, pl platform.Platform, levels []float64, fromBottom bool) (float64, error) {
	starts := make([]float64, g.Len())
	for id := range starts {
		if fromBottom {
			starts[id] = levels[id] - dag.NodeWeight(g.Task(id), dag.WeightMin, pl)
		} else {
			starts[id] = levels[id]
		}
	}
	// Candidate thetas: distinct start values.
	thetas := append([]float64(nil), starts...)
	sort.Float64s(thetas)
	best := 0.0
	prev := math.NaN()
	// Order tasks by start descending so each theta's selection is a
	// suffix.
	idx := make([]int, g.Len())
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return starts[idx[a]] > starts[idx[b]] })
	var selected platform.Instance
	pos := 0
	// Iterate thetas from largest to smallest, growing the selection.
	for i := len(thetas) - 1; i >= 0; i-- {
		theta := thetas[i]
		//hplint:allow floateq dedup of candidate thetas copied from the same sorted slice; equal bits mean the same candidate
		if theta == prev {
			continue
		}
		prev = theta
		for pos < len(idx) && starts[idx[pos]] >= theta {
			selected = append(selected, g.Task(idx[pos]))
			pos++
		}
		ab, err := AreaBound(selected, pl)
		if err != nil {
			return 0, err
		}
		best = math.Max(best, theta+ab)
	}
	return best, nil
}

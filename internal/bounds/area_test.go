package bounds

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dag"
	"repro/internal/platform"
)

func task(id int, p, q float64) platform.Task {
	return platform.Task{ID: id, CPUTime: p, GPUTime: q}
}

func TestAreaEmptyInstance(t *testing.T) {
	sol, err := Area(nil, platform.NewPlatform(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if sol.Bound != 0 {
		t.Errorf("Bound = %v, want 0", sol.Bound)
	}
}

func TestAreaInvalidInputs(t *testing.T) {
	if _, err := Area(platform.Instance{task(0, -1, 1)}, platform.NewPlatform(1, 1)); err == nil {
		t.Error("invalid task should error")
	}
	if _, err := Area(platform.Instance{task(0, 1, 1)}, platform.Platform{}); err == nil {
		t.Error("empty platform should error")
	}
	if _, err := AreaBoundLP(platform.Instance{task(0, -1, 1)}, platform.NewPlatform(1, 1)); err == nil {
		t.Error("LP with invalid task should error")
	}
	if _, err := AreaBoundLP(platform.Instance{task(0, 1, 1)}, platform.Platform{}); err == nil {
		t.Error("LP with empty platform should error")
	}
}

func TestAreaSingleClassPlatforms(t *testing.T) {
	in := platform.Instance{task(0, 4, 1), task(1, 6, 3)}
	cpuOnly, err := AreaBound(in, platform.NewPlatform(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if cpuOnly != 5 { // (4+6)/2
		t.Errorf("CPU-only bound = %v, want 5", cpuOnly)
	}
	gpuOnly, err := AreaBound(in, platform.NewPlatform(0, 2))
	if err != nil {
		t.Fatal(err)
	}
	if gpuOnly != 2 { // (1+3)/2
		t.Errorf("GPU-only bound = %v, want 2", gpuOnly)
	}
}

func TestAreaBothClassesBalance(t *testing.T) {
	// Two identical tasks, 1 CPU + 1 GPU, p=q=1: divisible load splits so
	// both classes finish at time 1.
	in := platform.Instance{task(0, 1, 1), task(1, 1, 1)}
	sol, err := Area(in, platform.NewPlatform(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Bound-1) > 1e-12 {
		t.Errorf("Bound = %v, want 1", sol.Bound)
	}
}

func TestAreaKnownSplit(t *testing.T) {
	// Theorem 8 instance: X(p=phi,q=1), Y(p=1,q=1/phi) on (1,1).
	phi := (1 + math.Sqrt(5)) / 2
	in := platform.Instance{task(0, phi, 1), task(1, 1, 1/phi)}
	sol, err := Area(in, platform.NewPlatform(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Optimal integral schedule has makespan 1 (X on GPU, Y on CPU); the
	// area bound must be <= 1 and positive.
	if sol.Bound <= 0 || sol.Bound > 1+1e-12 {
		t.Errorf("Bound = %v, want in (0,1]", sol.Bound)
	}
}

func TestAreaLemma1Equality(t *testing.T) {
	// Lemma 1: in the area solution both classes finish at the same time
	// (whenever both classes receive work).
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		m := 1 + rng.Intn(4)
		n := 1 + rng.Intn(3)
		var in platform.Instance
		T := 3 + rng.Intn(10)
		for i := 0; i < T; i++ {
			p := 1 + rng.Float64()*20
			q := 1 + rng.Float64()*20
			in = append(in, task(i, p, q))
		}
		pl := platform.NewPlatform(m, n)
		sol, err := Area(in, pl)
		if err != nil {
			t.Fatal(err)
		}
		var cpuW, gpuW float64
		for _, tk := range in {
			x := sol.CPUFraction[tk.ID]
			cpuW += x * tk.CPUTime
			gpuW += (1 - x) * tk.GPUTime
		}
		ct := cpuW / float64(m)
		gt := gpuW / float64(n)
		if cpuW > 1e-12 && gpuW > 1e-12 {
			if math.Abs(ct-gt) > 1e-6*math.Max(1, sol.Bound) {
				t.Errorf("trial %d: class times differ: CPU %v GPU %v", trial, ct, gt)
			}
		}
		if math.Abs(math.Max(ct, gt)-sol.Bound) > 1e-6*math.Max(1, sol.Bound) {
			t.Errorf("trial %d: bound %v does not match max class time %v", trial, sol.Bound, math.Max(ct, gt))
		}
	}
}

func TestAreaLemma2SplitStructure(t *testing.T) {
	// Lemma 2: there is a threshold k such that tasks with rho > k are fully
	// on GPU and tasks with rho < k fully on CPU.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var in platform.Instance
		T := 4 + rng.Intn(12)
		for i := 0; i < T; i++ {
			in = append(in, task(i, 0.5+rng.Float64()*10, 0.5+rng.Float64()*10))
		}
		pl := platform.NewPlatform(1+rng.Intn(5), 1+rng.Intn(3))
		sol, err := Area(in, pl)
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(sol.SplitAccel) {
			continue // one class got everything; nothing to check
		}
		for _, tk := range in {
			x := sol.CPUFraction[tk.ID]
			if x < 1e-12 && tk.Accel() < sol.SplitAccel-1e-9 {
				t.Errorf("trial %d: task rho=%v fully on GPU but below split %v", trial, tk.Accel(), sol.SplitAccel)
			}
			if x > 1-1e-12 && tk.Accel() > sol.SplitAccel+1e-9 {
				t.Errorf("trial %d: task rho=%v fully on CPU but above split %v", trial, tk.Accel(), sol.SplitAccel)
			}
		}
	}
}

// Property: the combinatorial area bound agrees with the simplex LP.
func TestAreaMatchesLPProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		T := 1 + rng.Intn(12)
		var in platform.Instance
		for i := 0; i < T; i++ {
			in = append(in, task(i, 0.1+rng.Float64()*10, 0.1+rng.Float64()*10))
		}
		pl := platform.NewPlatform(1+rng.Intn(4), 1+rng.Intn(3))
		fast, err := AreaBound(in, pl)
		if err != nil {
			return false
		}
		slow, err := AreaBoundLP(in, pl)
		if err != nil {
			return false
		}
		return math.Abs(fast-slow) <= 1e-6*math.Max(1, slow)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestAreaMatchesLPSingleClass(t *testing.T) {
	in := platform.Instance{task(0, 4, 1), task(1, 6, 3)}
	for _, pl := range []platform.Platform{platform.NewPlatform(2, 0), platform.NewPlatform(0, 2)} {
		fast, err := AreaBound(in, pl)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := AreaBoundLP(in, pl)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fast-slow) > 1e-6 {
			t.Errorf("%v: fast %v != LP %v", pl, fast, slow)
		}
	}
}

func TestAreaBoundLPEmpty(t *testing.T) {
	v, err := AreaBoundLP(nil, platform.NewPlatform(1, 1))
	if err != nil || v != 0 {
		t.Errorf("empty LP bound = %v, %v", v, err)
	}
}

func TestMaxMinAndLower(t *testing.T) {
	in := platform.Instance{task(0, 10, 3), task(1, 1, 8)}
	if got := MaxMinBound(in); got != 3 {
		t.Errorf("MaxMinBound = %v, want 3", got)
	}
	// On a huge platform the area bound vanishes, so Lower = MaxMin.
	lo, err := Lower(in, platform.NewPlatform(100, 100))
	if err != nil {
		t.Fatal(err)
	}
	if lo != 3 {
		t.Errorf("Lower = %v, want 3", lo)
	}
}

func TestDAGLower(t *testing.T) {
	// Chain of 4 tasks with min duration 2: critical path 8 dominates the
	// area bound on a large platform.
	g := dag.Chain(4, platform.Task{CPUTime: 5, GPUTime: 2})
	pl := platform.NewPlatform(10, 10)
	lb, err := DAGLower(g, pl)
	if err != nil {
		t.Fatal(err)
	}
	if lb != 8 {
		t.Errorf("DAGLower = %v, want 8", lb)
	}
	// On a tiny platform the area bound dominates: 1 CPU + 1 GPU,
	// area = crossing of divisible load; at least total GPU work / 1 if all
	// tasks go to GPU side... just assert DAGLower >= both components.
	pl2 := platform.NewPlatform(1, 1)
	lb2, err := DAGLower(g, pl2)
	if err != nil {
		t.Fatal(err)
	}
	ab, _ := AreaBound(g.Tasks(), pl2)
	cp, _ := g.CriticalPath(dag.WeightMin, pl2)
	if lb2 < ab-1e-12 || lb2 < cp-1e-12 {
		t.Errorf("DAGLower %v below components area=%v cp=%v", lb2, ab, cp)
	}
}

func TestDAGLowerCycleError(t *testing.T) {
	g := dag.New()
	a := g.AddTask(platform.Task{CPUTime: 1, GPUTime: 1})
	b := g.AddTask(platform.Task{CPUTime: 1, GPUTime: 1})
	g.AddEdge(a, b)
	g.AddEdge(b, a)
	if _, err := DAGLower(g, platform.NewPlatform(1, 1)); err == nil {
		t.Error("cyclic graph should error")
	}
}

// Package bounds implements the lower bounds of the paper: the area bound
// of Section 4.2 (tasks made divisible, per-class aggregate capacity), the
// trivial per-task bound max_i min(p_i, q_i), and the DAG-aware bound used
// in Section 6.2 (area bound strengthened with the min-duration critical
// path, following reference [12]).
//
// The area bound is computed combinatorially in O(T log T) by exploiting
// the structure proven in Lemmas 1 and 2 of the paper: in the optimal
// fractional solution both resource classes finish simultaneously and the
// assignment is a split of the acceleration-factor-sorted task list, with
// at most one task split across the classes. An LP formulation solved with
// the in-repo simplex (package lp) is provided for cross-validation.
package bounds

import (
	"fmt"
	"math"

	"repro/internal/dag"
	"repro/internal/lp"
	"repro/internal/platform"
)

// AreaSolution describes the optimal divisible-load solution.
type AreaSolution struct {
	// Bound is AreaBound(I), a lower bound on the optimal makespan.
	Bound float64
	// CPUFraction maps task ID to x_i, the fraction of the task processed
	// on the CPU class (Section 4.2's x_i).
	CPUFraction map[int]float64
	// SplitAccel is the acceleration-factor threshold k of Lemma 2: tasks
	// with rho > SplitAccel run on GPUs, tasks with rho < SplitAccel on
	// CPUs. It is NaN when one class receives no work.
	SplitAccel float64
}

// Area computes the area bound of instance in on platform pl, together
// with the witnessing fractional assignment.
func Area(in platform.Instance, pl platform.Platform) (AreaSolution, error) {
	if err := pl.Validate(); err != nil {
		return AreaSolution{}, err
	}
	if err := in.Validate(); err != nil {
		return AreaSolution{}, err
	}
	sol := AreaSolution{CPUFraction: make(map[int]float64, len(in)), SplitAccel: math.NaN()}
	if len(in) == 0 {
		return sol, nil
	}
	m, n := float64(pl.CPUs), float64(pl.GPUs)
	switch {
	case pl.GPUs == 0:
		for _, t := range in {
			sol.CPUFraction[t.ID] = 1
		}
		sol.Bound = in.TotalTime(platform.CPU) / m
		return sol, nil
	case pl.CPUs == 0:
		for _, t := range in {
			sol.CPUFraction[t.ID] = 0
		}
		sol.Bound = in.TotalTime(platform.GPU) / n
		return sol, nil
	}

	sorted := in.Clone()
	sorted.SortByAccelDesc()
	// Suffix sums of p (CPU work if the whole suffix runs on CPUs).
	suffixP := make([]float64, len(sorted)+1)
	for i := len(sorted) - 1; i >= 0; i-- {
		suffixP[i] = suffixP[i+1] + sorted[i].CPUTime
	}
	// Walk the split point: GPU class receives tasks [0,k) entirely plus a
	// fraction f of task k. Both class finish times are continuous and
	// monotone in the walk, so the crossing exists and is the optimum.
	var prefixQ float64
	for k := 0; k < len(sorted); k++ {
		tk := sorted[k]
		// Fraction f of task k on GPU equalizing the two finish times:
		// (prefixQ + f*q_k)/n == (suffixP[k+1] + (1-f)*p_k)/m.
		f := (n*(suffixP[k+1]+tk.CPUTime) - m*prefixQ) / (m*tk.GPUTime + n*tk.CPUTime)
		if f < -1e-12 {
			// Crossing happened before this task: equalization impossible
			// because GPU side is already too loaded; the bound is the GPU
			// time with everything up to k-1 (cannot happen for k=0 since
			// prefixQ=0). Clamp to f=0.
			f = 0
		}
		if f <= 1+1e-12 {
			f = math.Min(f, 1)
			gpuTime := (prefixQ + f*tk.GPUTime) / n
			cpuTime := (suffixP[k+1] + (1-f)*tk.CPUTime) / m
			sol.Bound = math.Max(gpuTime, cpuTime)
			for i := 0; i < k; i++ {
				sol.CPUFraction[sorted[i].ID] = 0
			}
			sol.CPUFraction[tk.ID] = 1 - f
			for i := k + 1; i < len(sorted); i++ {
				sol.CPUFraction[sorted[i].ID] = 1
			}
			sol.SplitAccel = tk.Accel()
			return sol, nil
		}
		prefixQ += tk.GPUTime
	}
	// Everything on the GPUs and they still finish before the (empty) CPUs
	// would: bound is the full GPU load.
	for _, t := range sorted {
		sol.CPUFraction[t.ID] = 0
	}
	sol.Bound = prefixQ / n
	return sol, nil
}

// AreaBound returns only the bound value of Area.
func AreaBound(in platform.Instance, pl platform.Platform) (float64, error) {
	sol, err := Area(in, pl)
	if err != nil {
		return 0, err
	}
	return sol.Bound, nil
}

// AreaBoundLP solves the Section 4.2 linear program directly with the
// in-repo simplex solver. It is exponentially slower than Area and exists
// to cross-validate it in tests.
func AreaBoundLP(in platform.Instance, pl platform.Platform) (float64, error) {
	if err := pl.Validate(); err != nil {
		return 0, err
	}
	if err := in.Validate(); err != nil {
		return 0, err
	}
	if len(in) == 0 {
		return 0, nil
	}
	m, n := float64(pl.CPUs), float64(pl.GPUs)
	T := len(in)
	// Variables: x_0..x_{T-1} (CPU fractions), then M (the bound).
	nv := T + 1
	obj := make([]float64, nv)
	obj[T] = 1
	var rows []lp.Constraint
	if pl.CPUs > 0 {
		// sum x_i p_i - m*M <= 0
		c := lp.Constraint{Coeffs: make([]float64, nv), Rel: lp.LE}
		for i, t := range in {
			c.Coeffs[i] = t.CPUTime
		}
		c.Coeffs[T] = -m
		rows = append(rows, c)
	} else {
		// No CPUs: every x_i must be 0.
		for i := range in {
			c := lp.Constraint{Coeffs: make([]float64, nv), Rel: lp.LE, Bound: 0}
			c.Coeffs[i] = 1
			rows = append(rows, c)
		}
	}
	if pl.GPUs > 0 {
		// sum (1-x_i) q_i <= n*M  ->  -sum x_i q_i - n*M <= -sum q_i
		c := lp.Constraint{Coeffs: make([]float64, nv), Rel: lp.LE}
		var total float64
		for i, t := range in {
			c.Coeffs[i] = -t.GPUTime
			total += t.GPUTime
		}
		c.Coeffs[T] = -n
		c.Bound = -total
		rows = append(rows, c)
	} else {
		for i := range in {
			c := lp.Constraint{Coeffs: make([]float64, nv), Rel: lp.GE, Bound: 1}
			c.Coeffs[i] = 1
			rows = append(rows, c)
		}
	}
	for i := range in {
		c := lp.Constraint{Coeffs: make([]float64, nv), Rel: lp.LE, Bound: 1}
		c.Coeffs[i] = 1
		rows = append(rows, c)
	}
	sol, err := lp.Solve(&lp.Problem{Objective: obj, Rows: rows})
	if err != nil {
		return 0, err
	}
	if sol.Status != lp.Optimal {
		return 0, fmt.Errorf("bounds: area LP returned %v", sol.Status)
	}
	return sol.Value, nil
}

// MaxMinBound returns max_i min(p_i, q_i), the per-task lower bound of
// Section 4.2.
func MaxMinBound(in platform.Instance) float64 { return in.MaxMinTime() }

// Lower returns the combined independent-task lower bound
// max(AreaBound, MaxMinBound).
func Lower(in platform.Instance, pl platform.Platform) (float64, error) {
	ab, err := AreaBound(in, pl)
	if err != nil {
		return 0, err
	}
	return math.Max(ab, MaxMinBound(in)), nil
}

// DAGLower returns the DAG-aware lower bound used as the Figure 7 baseline:
// the maximum of the area bound over all tasks, the per-task bound, and the
// critical path length where each task counts for its minimum duration.
func DAGLower(g *dag.Graph, pl platform.Platform) (float64, error) {
	in := g.Tasks()
	base, err := Lower(in, pl)
	if err != nil {
		return 0, err
	}
	cp, err := g.CriticalPath(dag.WeightMin, pl)
	if err != nil {
		return 0, err
	}
	return math.Max(base, cp), nil
}

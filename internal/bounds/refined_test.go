package bounds_test

import (
	"math/rand"
	"testing"

	"repro/internal/bounds"
	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/sched"
)

// heftMakespan returns the makespan of a HEFT schedule, an upper bound on
// the optimum used to sanity-check lower bounds.
func heftMakespan(g *dag.Graph, pl platform.Platform) (float64, error) {
	s, err := sched.HEFT(g, pl, dag.WeightMin)
	if err != nil {
		return 0, err
	}
	return s.Makespan(), nil
}

func TestDAGLowerRefinedAtLeastBase(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		g := dag.RandomLayered(dag.DefaultRandomLayeredConfig(), rng)
		pl := platform.NewPlatform(1+rng.Intn(4), 1+rng.Intn(3))
		base, err := bounds.DAGLower(g, pl)
		if err != nil {
			t.Fatal(err)
		}
		refined, err := bounds.DAGLowerRefined(g, pl)
		if err != nil {
			t.Fatal(err)
		}
		if refined < base-1e-9 {
			t.Fatalf("trial %d: refined %v below base %v", trial, refined, base)
		}
	}
}

// TestDAGLowerRefinedStrictlyStronger builds the shape the refinement
// targets: a heavy sequential chain feeding a wide parallel block. The
// block cannot start before the chain ends, so theta + area beats both
// the critical path and the global area bound.
func TestDAGLowerRefinedStrictlyStronger(t *testing.T) {
	g := dag.New()
	chainTask := platform.Task{CPUTime: 10, GPUTime: 10}
	prev := -1
	for i := 0; i < 5; i++ {
		id := g.AddTask(chainTask)
		if prev >= 0 {
			g.AddEdge(prev, id)
		}
		prev = id
	}
	wide := platform.Task{CPUTime: 8, GPUTime: 8}
	for i := 0; i < 12; i++ {
		id := g.AddTask(wide)
		g.AddEdge(prev, id)
	}
	pl := platform.NewPlatform(2, 2)
	base, err := bounds.DAGLower(g, pl)
	if err != nil {
		t.Fatal(err)
	}
	refined, err := bounds.DAGLowerRefined(g, pl)
	if err != nil {
		t.Fatal(err)
	}
	// Chain = 50, block area = 12*8/4 = 24: refined >= 74.
	if refined < 74-1e-9 {
		t.Errorf("refined = %v, want >= 74", refined)
	}
	if refined <= base+1e-9 {
		t.Errorf("refined %v not stronger than base %v on the adversarial shape", refined, base)
	}
}

// TestDAGLowerRefinedBackwardSweep mirrors the shape: a wide block feeding
// a heavy chain; only the backward (reversed-DAG) sweep sees it.
func TestDAGLowerRefinedBackwardSweep(t *testing.T) {
	g := dag.New()
	wide := platform.Task{CPUTime: 8, GPUTime: 8}
	var sources []int
	for i := 0; i < 12; i++ {
		sources = append(sources, g.AddTask(wide))
	}
	chainTask := platform.Task{CPUTime: 10, GPUTime: 10}
	prev := -1
	for i := 0; i < 5; i++ {
		id := g.AddTask(chainTask)
		if prev >= 0 {
			g.AddEdge(prev, id)
		} else {
			for _, s := range sources {
				g.AddEdge(s, id)
			}
		}
		prev = id
	}
	pl := platform.NewPlatform(2, 2)
	refined, err := bounds.DAGLowerRefined(g, pl)
	if err != nil {
		t.Fatal(err)
	}
	if refined < 74-1e-9 {
		t.Errorf("refined = %v, want >= 74 (backward sweep)", refined)
	}
}

// Property: the refined bound never exceeds the makespan of an actual
// schedule (here HEFT's), i.e. it remains a valid lower bound.
func TestDAGLowerRefinedIsLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 30; trial++ {
		g := dag.RandomLayered(dag.DefaultRandomLayeredConfig(), rng)
		pl := platform.NewPlatform(1+rng.Intn(4), 1+rng.Intn(3))
		refined, err := bounds.DAGLowerRefined(g, pl)
		if err != nil {
			t.Fatal(err)
		}
		ms, err := heftMakespan(g, pl)
		if err != nil {
			t.Fatal(err)
		}
		if refined > ms+1e-6 {
			t.Fatalf("trial %d: refined bound %v exceeds a real schedule %v", trial, refined, ms)
		}
	}
}

func TestDAGLowerRefinedCycleError(t *testing.T) {
	g := dag.New()
	a := g.AddTask(platform.Task{CPUTime: 1, GPUTime: 1})
	b := g.AddTask(platform.Task{CPUTime: 1, GPUTime: 1})
	g.AddEdge(a, b)
	g.AddEdge(b, a)
	if _, err := bounds.DAGLowerRefined(g, platform.NewPlatform(1, 1)); err == nil {
		t.Error("cycle accepted")
	}
}

// Package lp implements a small dense two-phase primal simplex solver for
// linear programs in the form
//
//	minimize    c·x
//	subject to  A_i · x  (<=|=|>=)  b_i     for each row i
//	            x >= 0
//
// It is a self-contained substrate (stdlib only) used to cross-validate the
// combinatorial area-bound solver of package bounds on randomly generated
// instances, and is suitable for the small LPs that arise there (tens to a
// few hundreds of variables). Bland's anti-cycling rule is used throughout,
// trading speed for guaranteed termination.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Relation is the sense of one linear constraint.
type Relation int8

const (
	// LE is a <= constraint.
	LE Relation = iota
	// EQ is an == constraint.
	EQ
	// GE is a >= constraint.
	GE
)

// String implements fmt.Stringer.
func (r Relation) String() string {
	switch r {
	case LE:
		return "<="
	case EQ:
		return "=="
	case GE:
		return ">="
	default:
		return fmt.Sprintf("Relation(%d)", int8(r))
	}
}

// Constraint is one row of the program: Coeffs·x Rel Bound.
type Constraint struct {
	Coeffs []float64
	Rel    Relation
	Bound  float64
}

// Problem is a linear program over n non-negative variables.
type Problem struct {
	// Objective holds the cost vector c (minimization).
	Objective []float64
	// Rows holds the constraints; every Coeffs slice must have len(Objective).
	Rows []Constraint
}

// Status describes the outcome of Solve.
type Status int8

const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means the constraint set has no solution.
	Infeasible
	// Unbounded means the objective can decrease without bound.
	Unbounded
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int8(s))
	}
}

// Solution is the result of a successful solve.
type Solution struct {
	Status Status
	// X is the optimal assignment (len = number of variables); nil unless
	// Status == Optimal.
	X []float64
	// Value is c·X; meaningless unless Status == Optimal.
	Value float64
}

const eps = 1e-9

// Validate checks dimensional consistency of the problem.
func (p *Problem) Validate() error {
	n := len(p.Objective)
	if n == 0 {
		return errors.New("lp: empty objective")
	}
	for i, row := range p.Rows {
		if len(row.Coeffs) != n {
			return fmt.Errorf("lp: row %d has %d coefficients, want %d", i, len(row.Coeffs), n)
		}
		if math.IsNaN(row.Bound) || math.IsInf(row.Bound, 0) {
			return fmt.Errorf("lp: row %d has invalid bound %v", i, row.Bound)
		}
	}
	return nil
}

// Solve runs two-phase simplex and returns the solution.
func Solve(p *Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	n := len(p.Objective)
	m := len(p.Rows)

	// Normalize to equality form with slack/surplus variables, all rows with
	// non-negative right-hand side.
	type rowT struct {
		a   []float64
		b   float64
		rel Relation
	}
	rows := make([]rowT, m)
	for i, r := range p.Rows {
		a := append([]float64(nil), r.Coeffs...)
		b := r.Bound
		rel := r.Rel
		if b < 0 {
			for j := range a {
				a[j] = -a[j]
			}
			b = -b
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		rows[i] = rowT{a: a, b: b, rel: rel}
	}

	// Count slacks/surpluses and artificials.
	nSlack := 0
	for _, r := range rows {
		if r.rel != EQ {
			nSlack++
		}
	}
	// Tableau columns: n structural + nSlack + m artificial (one per row; for
	// LE rows with b>=0 the slack can serve as the initial basis and the
	// artificial column is skipped).
	totalExtra := nSlack
	artCol := make([]int, m) // artificial column index per row, -1 if none
	slackCol := make([]int, m)
	col := n
	for i, r := range rows {
		slackCol[i] = -1
		if r.rel != EQ {
			slackCol[i] = col
			col++
		}
		artCol[i] = -1
	}
	for i, r := range rows {
		if r.rel == LE {
			continue // slack is initial basis
		}
		artCol[i] = col
		col++
		totalExtra++
	}
	width := n + totalExtra

	// Build tableau rows.
	tab := make([][]float64, m)
	basis := make([]int, m)
	for i, r := range rows {
		tr := make([]float64, width+1)
		copy(tr, r.a)
		if slackCol[i] >= 0 {
			if r.rel == LE {
				tr[slackCol[i]] = 1
			} else { // GE: surplus
				tr[slackCol[i]] = -1
			}
		}
		if artCol[i] >= 0 {
			tr[artCol[i]] = 1
			basis[i] = artCol[i]
		} else {
			basis[i] = slackCol[i]
		}
		tr[width] = r.b
		tab[i] = tr
	}

	pivot := func(obj []float64, pr, pc int) {
		pv := tab[pr][pc]
		for j := range tab[pr] {
			tab[pr][j] /= pv
		}
		for i := range tab {
			if i == pr {
				continue
			}
			f := tab[i][pc]
			if f == 0 {
				continue
			}
			for j := range tab[i] {
				tab[i][j] -= f * tab[pr][j]
			}
		}
		f := obj[pc]
		if f != 0 {
			for j := range obj {
				obj[j] -= f * tab[pr][j]
			}
		}
		basis[pr] = pc
	}

	// runSimplex minimizes the reduced objective obj (length width+1, last
	// entry is the negated current value). allowed limits eligible columns.
	runSimplex := func(obj []float64, allowed func(int) bool) Status {
		for iter := 0; ; iter++ {
			if iter > 200000 {
				// Bland's rule guarantees termination; this is a hard backstop.
				panic("lp: simplex iteration limit exceeded")
			}
			// Bland: choose smallest-index column with negative reduced cost.
			pc := -1
			for j := 0; j < width; j++ {
				if allowed != nil && !allowed(j) {
					continue
				}
				if obj[j] < -eps {
					pc = j
					break
				}
			}
			if pc < 0 {
				return Optimal
			}
			// Ratio test, Bland tie-break on basis variable index.
			pr := -1
			best := math.Inf(1)
			for i := 0; i < m; i++ {
				if tab[i][pc] > eps {
					ratio := tab[i][width] / tab[i][pc]
					if ratio < best-eps || (ratio < best+eps && (pr < 0 || basis[i] < basis[pr])) {
						best = ratio
						pr = i
					}
				}
			}
			if pr < 0 {
				return Unbounded
			}
			pivot(obj, pr, pc)
		}
	}

	// Phase 1: minimize sum of artificials.
	needPhase1 := false
	for i := range rows {
		if artCol[i] >= 0 {
			needPhase1 = true
			break
		}
	}
	if needPhase1 {
		obj1 := make([]float64, width+1)
		for i := range rows {
			if artCol[i] >= 0 {
				obj1[artCol[i]] = 1
			}
		}
		// Price out initial basis (artificials are basic with coefficient 1).
		for i := range rows {
			if artCol[i] >= 0 {
				for j := range obj1 {
					obj1[j] -= tab[i][j]
				}
			}
		}
		st := runSimplex(obj1, nil)
		if st == Unbounded {
			return Solution{}, errors.New("lp: phase-1 unbounded (internal error)")
		}
		// obj1[width] is -(current phase-1 value).
		if -obj1[width] > 1e-7 {
			return Solution{Status: Infeasible}, nil
		}
		// Drive any artificial still in the basis out (degenerate rows).
		for i := 0; i < m; i++ {
			if basisIsArtificial(basis[i], n, nSlack) {
				moved := false
				for j := 0; j < n+nSlack; j++ {
					if math.Abs(tab[i][j]) > eps {
						pivot(obj1, i, j)
						moved = true
						break
					}
				}
				if !moved {
					// Row is all zeros: redundant constraint; harmless.
					continue
				}
			}
		}
	}

	// Phase 2: minimize the true objective over structural + slack columns.
	obj2 := make([]float64, width+1)
	copy(obj2, p.Objective)
	// Price out the current basis.
	for i := range tab {
		if basis[i] < n && obj2[basis[i]] != 0 {
			f := obj2[basis[i]]
			for j := range obj2 {
				obj2[j] -= f * tab[i][j]
			}
		}
	}
	allowed := func(j int) bool { return !basisIsArtificial(j, n, nSlack) }
	st := runSimplex(obj2, allowed)
	if st == Unbounded {
		return Solution{Status: Unbounded}, nil
	}

	x := make([]float64, n)
	for i, bv := range basis {
		if bv < n {
			x[bv] = tab[i][width]
		}
	}
	var val float64
	for j := 0; j < n; j++ {
		val += p.Objective[j] * x[j]
	}
	return Solution{Status: Optimal, X: x, Value: val}, nil
}

// basisIsArtificial reports whether column j is an artificial column.
func basisIsArtificial(j, n, nSlack int) bool { return j >= n+nSlack }

package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func solveOK(t *testing.T, p *Problem) Solution {
	t.Helper()
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

func TestRelationStatusStrings(t *testing.T) {
	if LE.String() != "<=" || EQ.String() != "==" || GE.String() != ">=" {
		t.Error("relation strings wrong")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Error("status strings wrong")
	}
	if Relation(9).String() == "" || Status(9).String() == "" {
		t.Error("unknown enum strings empty")
	}
}

func TestValidate(t *testing.T) {
	if _, err := Solve(&Problem{}); err == nil {
		t.Error("empty objective should error")
	}
	p := &Problem{
		Objective: []float64{1, 2},
		Rows:      []Constraint{{Coeffs: []float64{1}, Rel: LE, Bound: 1}},
	}
	if _, err := Solve(p); err == nil {
		t.Error("dimension mismatch should error")
	}
	p2 := &Problem{
		Objective: []float64{1},
		Rows:      []Constraint{{Coeffs: []float64{1}, Rel: LE, Bound: math.NaN()}},
	}
	if _, err := Solve(p2); err == nil {
		t.Error("NaN bound should error")
	}
}

func TestSimpleLE(t *testing.T) {
	// max x1 + x2 s.t. x1 <= 2, x2 <= 3  => minimize -(x1+x2) = -5.
	p := &Problem{
		Objective: []float64{-1, -1},
		Rows: []Constraint{
			{Coeffs: []float64{1, 0}, Rel: LE, Bound: 2},
			{Coeffs: []float64{0, 1}, Rel: LE, Bound: 3},
		},
	}
	sol := solveOK(t, p)
	if sol.Status != Optimal || math.Abs(sol.Value-(-5)) > 1e-9 {
		t.Fatalf("got %v value %v, want optimal -5", sol.Status, sol.Value)
	}
	if math.Abs(sol.X[0]-2) > 1e-9 || math.Abs(sol.X[1]-3) > 1e-9 {
		t.Errorf("X = %v, want [2 3]", sol.X)
	}
}

func TestEquality(t *testing.T) {
	// min x1 + 2 x2 s.t. x1 + x2 == 4, x1 <= 1 => x = (1, 3), value 7.
	p := &Problem{
		Objective: []float64{1, 2},
		Rows: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: EQ, Bound: 4},
			{Coeffs: []float64{1, 0}, Rel: LE, Bound: 1},
		},
	}
	sol := solveOK(t, p)
	if sol.Status != Optimal || math.Abs(sol.Value-7) > 1e-9 {
		t.Fatalf("value = %v, want 7", sol.Value)
	}
}

func TestGE(t *testing.T) {
	// min 3x1 + 2x2 s.t. x1 + x2 >= 4, x1 >= 1 => x = (1,3), value 9.
	p := &Problem{
		Objective: []float64{3, 2},
		Rows: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: GE, Bound: 4},
			{Coeffs: []float64{1, 0}, Rel: GE, Bound: 1},
		},
	}
	sol := solveOK(t, p)
	if sol.Status != Optimal || math.Abs(sol.Value-9) > 1e-9 {
		t.Fatalf("value = %v, want 9 (X=%v)", sol.Value, sol.X)
	}
}

func TestInfeasible(t *testing.T) {
	p := &Problem{
		Objective: []float64{1},
		Rows: []Constraint{
			{Coeffs: []float64{1}, Rel: GE, Bound: 5},
			{Coeffs: []float64{1}, Rel: LE, Bound: 1},
		},
	}
	sol := solveOK(t, p)
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x1 with only x1 >= 0: unbounded below.
	p := &Problem{
		Objective: []float64{-1},
		Rows: []Constraint{
			{Coeffs: []float64{1}, Rel: GE, Bound: 1},
		},
	}
	sol := solveOK(t, p)
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestNegativeBoundNormalization(t *testing.T) {
	// x1 - x2 <= -2  (i.e. x2 - x1 >= 2), min x2 => x2 = 2 at x1 = 0.
	p := &Problem{
		Objective: []float64{0, 1},
		Rows: []Constraint{
			{Coeffs: []float64{1, -1}, Rel: LE, Bound: -2},
		},
	}
	sol := solveOK(t, p)
	if sol.Status != Optimal || math.Abs(sol.Value-2) > 1e-9 {
		t.Fatalf("value = %v (X=%v), want 2", sol.Value, sol.X)
	}
}

func TestDegenerateRedundantRows(t *testing.T) {
	// Redundant equality pair should not break phase 1.
	p := &Problem{
		Objective: []float64{1, 1},
		Rows: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: EQ, Bound: 2},
			{Coeffs: []float64{2, 2}, Rel: EQ, Bound: 4},
		},
	}
	sol := solveOK(t, p)
	if sol.Status != Optimal || math.Abs(sol.Value-2) > 1e-9 {
		t.Fatalf("value = %v, want 2", sol.Value)
	}
}

// TestKnownProductionPlan is the classic two-product LP:
// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> optimum 36 at (2, 6).
func TestKnownProductionPlan(t *testing.T) {
	p := &Problem{
		Objective: []float64{-3, -5},
		Rows: []Constraint{
			{Coeffs: []float64{1, 0}, Rel: LE, Bound: 4},
			{Coeffs: []float64{0, 2}, Rel: LE, Bound: 12},
			{Coeffs: []float64{3, 2}, Rel: LE, Bound: 18},
		},
	}
	sol := solveOK(t, p)
	if math.Abs(sol.Value-(-36)) > 1e-9 {
		t.Fatalf("value = %v, want -36", sol.Value)
	}
	if math.Abs(sol.X[0]-2) > 1e-9 || math.Abs(sol.X[1]-6) > 1e-9 {
		t.Errorf("X = %v, want (2,6)", sol.X)
	}
}

// Property: for random feasible LE problems (b >= 0), the solver returns a
// feasible solution with non-negative variables and objective no worse than
// the zero vector (which is feasible).
func TestRandomFeasibleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		m := 1 + rng.Intn(5)
		p := &Problem{Objective: make([]float64, n)}
		for j := range p.Objective {
			p.Objective[j] = rng.Float64()*4 - 2
		}
		for i := 0; i < m; i++ {
			c := Constraint{Coeffs: make([]float64, n), Rel: LE, Bound: rng.Float64() * 10}
			for j := range c.Coeffs {
				c.Coeffs[j] = rng.Float64() * 3
			}
			p.Rows = append(p.Rows, c)
		}
		// Add box constraints so the problem is bounded.
		for j := 0; j < n; j++ {
			c := Constraint{Coeffs: make([]float64, n), Rel: LE, Bound: 10}
			c.Coeffs[j] = 1
			p.Rows = append(p.Rows, c)
		}
		sol, err := Solve(p)
		if err != nil || sol.Status != Optimal {
			return false
		}
		if sol.Value > 1e-9 { // zero vector has value 0 and is feasible
			return false
		}
		for j, v := range sol.X {
			if v < -1e-9 {
				return false
			}
			_ = j
		}
		// Check feasibility of every row.
		for _, row := range p.Rows {
			var lhs float64
			for j := range row.Coeffs {
				lhs += row.Coeffs[j] * sol.X[j]
			}
			if lhs > row.Bound+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

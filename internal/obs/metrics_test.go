package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestExpositionGolden locks the Prometheus text format: a registry with
// one of each metric kind, deterministic values, compared byte-for-byte
// against testdata/exposition.golden.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hp_tasks_completed_total", "Tasks that finished a successful run.")
	c.Add(42)
	g := r.Gauge("hp_queue_depth", "Ready-queue depth at the last scheduler decision point.")
	g.Set(7)
	h := r.Histogram("hp_run_makespan", "Makespans of completed runs in simulated milliseconds.", []float64{10, 100, 1000})
	for _, v := range []float64{5, 50, 50, 500, 5000} {
		h.Observe(v)
	}
	cv := r.CounterVec("hp_http_requests_total", "HTTP requests served, by handler.", "handler")
	cv.With("index").Add(3)
	cv.With("schedule").Add(2)
	cv.With(`we"ird\nd`).Inc()
	hv := r.HistogramVec("hp_http_request_duration_seconds", "HTTP request latency, by handler.", "handler", []float64{0.01, 0.1})
	hv.With("index").Observe(0.005)
	hv.With("index").Observe(0.5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("exposition mismatch (run with -update to regenerate):\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestRegistryConcurrency hammers every metric kind from many goroutines
// while scraping, so `go test -race` proves the registry is safe under
// concurrent runs + scrapes.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c")
	g := r.Gauge("g", "g")
	h := r.Histogram("h", "h", ExpBuckets(1, 2, 8))
	cv := r.CounterVec("cv_total", "cv", "k")
	hv := r.HistogramVec("hv", "hv", "k", []float64{1, 10})

	const workers, iters = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := string(rune('a' + w%4))
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i % 300))
				cv.With(key).Inc()
				hv.With(key).Observe(float64(i % 20))
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			var b strings.Builder
			if err := r.WritePrometheus(&b); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	if got := c.Value(); got != workers*iters {
		t.Errorf("counter = %v, want %d", got, workers*iters)
	}
	if got := h.Count(); got != workers*iters {
		t.Errorf("histogram count = %d, want %d", got, workers*iters)
	}
	var total float64
	for _, k := range []string{"a", "b", "c", "d"} {
		total += cv.With(k).Value()
	}
	if total != workers*iters {
		t.Errorf("counter vec total = %v, want %d", total, workers*iters)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	// le="1" is cumulative: 0.5 and 1 both land at or under the bound.
	want := []uint64{2, 3, 4, 5}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum != want[i] {
			t.Errorf("bucket %d cumulative = %d, want %d", i, cum, want[i])
		}
	}
	if h.Sum() != 106 || h.Count() != 5 {
		t.Errorf("sum=%v count=%d", h.Sum(), h.Count())
	}
}

func TestRegistryReRegister(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x")
	if b := r.Counter("x_total", "x"); a != b {
		t.Error("re-registering a counter did not return the original")
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering as a different type did not panic")
		}
	}()
	r.Gauge("x_total", "x")
}

func TestExpBucketsInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid buckets accepted")
		}
	}()
	ExpBuckets(0, 2, 4)
}

package obs

import (
	"sync"

	"repro/internal/platform"
	"repro/internal/sim"
)

// EventKind discriminates timeline events.
type EventKind uint8

const (
	EventQueued EventKind = iota
	EventStarted
	EventSpoliated
	EventCompleted
	EventIdle
	EventQueueDepth
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventQueued:
		return "queued"
	case EventStarted:
		return "started"
	case EventSpoliated:
		return "spoliated"
	case EventCompleted:
		return "completed"
	case EventIdle:
		return "idle"
	case EventQueueDepth:
		return "queue-depth"
	default:
		return "unknown"
	}
}

// Event is one captured scheduling event. Field use depends on Kind:
// Worker is the victim for spoliations (Thief the restarting worker),
// Depth is set for queued and queue-depth events, Start for completions,
// Wasted for spoliations.
type Event struct {
	Kind       EventKind
	Now        float64
	Worker     int
	Thief      int
	Class      platform.Kind
	Task       platform.Task
	Depth      int
	Start      float64
	Wasted     float64
	Spoliation bool
}

// Timeline is an Observer that records every event in order, for live
// export: Schedule reconstructs the sim.Schedule observed so far, which
// internal/trace.ChromeLive turns into the same Perfetto JSON as post-hoc
// schedules. Safe for concurrent use, though events of concurrent runs
// interleave and should be captured on separate timelines.
type Timeline struct {
	mu     sync.Mutex
	events []Event
}

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline { return &Timeline{} }

func (tl *Timeline) add(e Event) {
	tl.mu.Lock()
	tl.events = append(tl.events, e) //hplint:allow allocflow the Timeline is a recording observer; the growing event buffer is its product
	tl.mu.Unlock()
}

func (tl *Timeline) TaskQueued(now float64, t platform.Task, depth int) {
	tl.add(Event{Kind: EventQueued, Now: now, Worker: -1, Thief: -1, Task: t, Depth: depth})
}

func (tl *Timeline) TaskStarted(now float64, worker int, kind platform.Kind, t platform.Task, estEnd float64, spoliation bool) {
	tl.add(Event{Kind: EventStarted, Now: now, Worker: worker, Thief: -1, Class: kind, Task: t, Start: estEnd, Spoliation: spoliation})
}

func (tl *Timeline) TaskSpoliated(now float64, victim, thief int, t platform.Task, wasted float64) {
	tl.add(Event{Kind: EventSpoliated, Now: now, Worker: victim, Thief: thief, Task: t, Wasted: wasted})
}

func (tl *Timeline) TaskCompleted(now float64, worker int, kind platform.Kind, t platform.Task, start float64) {
	tl.add(Event{Kind: EventCompleted, Now: now, Worker: worker, Thief: -1, Class: kind, Task: t, Start: start})
}

func (tl *Timeline) WorkerIdle(now float64, worker int, kind platform.Kind) {
	tl.add(Event{Kind: EventIdle, Now: now, Worker: worker, Thief: -1, Class: kind})
}

func (tl *Timeline) QueueDepthSample(now float64, depth int) {
	tl.add(Event{Kind: EventQueueDepth, Now: now, Worker: -1, Thief: -1, Depth: depth})
}

// Len returns the number of captured events.
func (tl *Timeline) Len() int {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return len(tl.events)
}

// Events returns a copy of the captured events in emission order.
func (tl *Timeline) Events() []Event {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return append([]Event(nil), tl.events...)
}

// Schedule reconstructs the schedule observed so far from the start,
// spoliation and completion events: the bridge from live capture to the
// post-hoc exporters (trace.ChromeLive, trace.SVG, sim metrics). Runs
// still open when the timeline is snapshotted are closed at their last
// observed instant and marked aborted.
func (tl *Timeline) Schedule(pl platform.Platform) *sim.Schedule {
	tl.mu.Lock()
	events := tl.events
	s := &sim.Schedule{Platform: pl}
	open := make([]int, pl.Workers())
	for i := range open {
		open[i] = -1
	}
	last := 0.0
	for _, e := range events {
		if e.Now > last {
			last = e.Now
		}
		switch e.Kind {
		case EventStarted:
			open[e.Worker] = len(s.Entries)
			s.Entries = append(s.Entries, sim.Entry{
				TaskID: e.Task.ID, Worker: e.Worker, Kind: e.Class,
				Start: e.Now, End: e.Now, Spoliation: e.Spoliation,
			})
		case EventSpoliated:
			if i := open[e.Worker]; i >= 0 {
				s.Entries[i].End = e.Now
				s.Entries[i].Aborted = true
				open[e.Worker] = -1
			}
		case EventCompleted:
			if i := open[e.Worker]; i >= 0 {
				s.Entries[i].End = e.Now
				open[e.Worker] = -1
			}
		}
	}
	tl.mu.Unlock()
	for _, i := range open {
		if i >= 0 {
			s.Entries[i].End = last
			s.Entries[i].Aborted = true
		}
	}
	return s
}

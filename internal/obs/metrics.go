package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// The registry below is a deliberately small, dependency-free subset of
// the Prometheus data model: counters, gauges and fixed-bucket histograms,
// optionally keyed by a single label, exposed in the text format version
// 0.0.4. All metric operations are lock-free (atomics); only child lookup
// in a vec and family registration take a lock, so concurrent runs and
// concurrent scrapes never contend on the hot path.

// atomicFloat is a float64 with atomic Add/Store/Load via its bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Load() float64   { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing value.
type Counter struct{ v atomicFloat }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds v, which must not be negative.
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic("obs: counter decreased")
	}
	c.v.Add(v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomicFloat }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v.Store(v) }

// Add increments the value by v (may be negative).
func (g *Gauge) Add(v float64) { g.v.Add(v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.Load() }

// Histogram counts observations into fixed buckets (upper bounds), plus a
// running sum and count. An implicit +Inf bucket always exists.
type Histogram struct {
	upper  []float64
	counts []atomic.Uint64 // len(upper)+1; last is the +Inf bucket
	sum    atomicFloat
	count  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// ExpBuckets returns n exponentially growing bucket bounds starting at
// start and multiplied by factor at each step.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: invalid exponential buckets")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// CounterVec is a family of Counters keyed by the value of one label.
type CounterVec struct {
	label string
	mu    sync.RWMutex
	kids  map[string]*Counter
}

// With returns (creating if needed) the counter for the label value.
func (v *CounterVec) With(value string) *Counter {
	v.mu.RLock()
	c := v.kids[value]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.kids[value]; c == nil {
		c = &Counter{}
		v.kids[value] = c
	}
	return c
}

// GaugeVec is a family of Gauges keyed by the value of one label.
type GaugeVec struct {
	label string
	mu    sync.RWMutex
	kids  map[string]*Gauge
}

// With returns (creating if needed) the gauge for the label value.
func (v *GaugeVec) With(value string) *Gauge {
	v.mu.RLock()
	g := v.kids[value]
	v.mu.RUnlock()
	if g != nil {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g = v.kids[value]; g == nil {
		g = &Gauge{}
		v.kids[value] = g
	}
	return g
}

// HistogramVec is a family of Histograms keyed by the value of one label.
type HistogramVec struct {
	label string
	upper []float64
	mu    sync.RWMutex
	kids  map[string]*Histogram
}

// With returns (creating if needed) the histogram for the label value.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.RLock()
	h := v.kids[value]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h = v.kids[value]; h == nil {
		h = newHistogram(v.upper)
		v.kids[value] = h
	}
	return h
}

func newHistogram(upper []float64) *Histogram {
	return &Histogram{upper: upper, counts: make([]atomic.Uint64, len(upper)+1)}
}

// family is one registered metric family.
type family struct {
	name, help, typ string
	metric          any // *Counter, *Gauge, *Histogram, *CounterVec, *HistogramVec
}

// Registry holds metric families and renders them in the Prometheus text
// format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fams: map[string]*family{}} }

// register returns the existing family for name after checking the type
// matches, or records a new one. Re-registering with a different type or
// shape panics: that is always a programming error.
func (r *Registry) register(name, help, typ string, mk func() any) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.typ != typ {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s, was %s", name, typ, f.typ))
		}
		return f.metric
	}
	m := mk()
	r.fams[name] = &family{name: name, help: help, typ: typ, metric: m}
	return m
}

// Counter registers (or returns the existing) counter with the name.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, "counter", func() any { return &Counter{} }).(*Counter)
}

// Gauge registers (or returns the existing) gauge with the name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, "gauge", func() any { return &Gauge{} }).(*Gauge)
}

// Histogram registers (or returns the existing) histogram with the name.
// buckets are the upper bounds and must be sorted increasing.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if !sort.Float64sAreSorted(buckets) {
		panic(fmt.Sprintf("obs: histogram %q buckets not sorted", name))
	}
	return r.register(name, help, "histogram", func() any { return newHistogram(buckets) }).(*Histogram)
}

// CounterVec registers (or returns the existing) counter family keyed by
// the given label name.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	return r.register(name, help, "counter", func() any {
		return &CounterVec{label: label, kids: map[string]*Counter{}}
	}).(*CounterVec)
}

// GaugeVec registers (or returns the existing) gauge family keyed by the
// given label name.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	return r.register(name, help, "gauge", func() any {
		return &GaugeVec{label: label, kids: map[string]*Gauge{}}
	}).(*GaugeVec)
}

// HistogramVec registers (or returns the existing) histogram family keyed
// by the given label name.
func (r *Registry) HistogramVec(name, help, label string, buckets []float64) *HistogramVec {
	if !sort.Float64sAreSorted(buckets) {
		panic(fmt.Sprintf("obs: histogram %q buckets not sorted", name))
	}
	return r.register(name, help, "histogram", func() any {
		return &HistogramVec{label: label, upper: buckets, kids: map[string]*Histogram{}}
	}).(*HistogramVec)
}

// WritePrometheus renders every registered family in the text exposition
// format, families and label values in lexicographic order so the output
// is deterministic (golden-tested).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	fams := make([]*family, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.fams[n])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		switch m := f.metric.(type) {
		case *Counter:
			writeSample(&b, f.name, "", "", m.Value())
		case *Gauge:
			writeSample(&b, f.name, "", "", m.Value())
		case *Histogram:
			writeHistogram(&b, f.name, "", "", m)
		case *CounterVec:
			m.mu.RLock()
			for _, v := range sortedKeys(m.kids) {
				writeSample(&b, f.name, m.label, v, m.kids[v].Value())
			}
			m.mu.RUnlock()
		case *GaugeVec:
			m.mu.RLock()
			for _, v := range sortedKeys(m.kids) {
				writeSample(&b, f.name, m.label, v, m.kids[v].Value())
			}
			m.mu.RUnlock()
		case *HistogramVec:
			m.mu.RLock()
			for _, v := range sortedKeys(m.kids) {
				writeHistogram(&b, f.name, m.label, v, m.kids[v])
			}
			m.mu.RUnlock()
		case *HDRHistogram:
			writeHDR(&b, f.name, "", "", m)
		case *HDRVec:
			m.mu.RLock()
			for _, v := range sortedKeys(m.kids) {
				writeHDR(&b, f.name, m.label, v, m.kids[v])
			}
			m.mu.RUnlock()
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// writeSample emits one sample line, with up to one label pair.
func writeSample(b *strings.Builder, name, label, value string, v float64) {
	b.WriteString(name)
	if label != "" {
		fmt.Fprintf(b, `{%s="%s"}`, label, escapeLabel(value))
	}
	b.WriteByte(' ')
	b.WriteString(formatValue(v))
	b.WriteByte('\n')
}

// writeHistogram emits the cumulative _bucket series plus _sum and _count.
func writeHistogram(b *strings.Builder, name, label, value string, h *Histogram) {
	labels := func(le string) string {
		if label == "" {
			return fmt.Sprintf(`{le="%s"}`, le)
		}
		return fmt.Sprintf(`{%s="%s",le="%s"}`, label, escapeLabel(value), le)
	}
	var cum uint64
	for i, up := range h.upper {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, labels(formatValue(up)), cum)
	}
	cum += h.counts[len(h.upper)].Load()
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, labels("+Inf"), cum)
	suffix := ""
	if label != "" {
		suffix = fmt.Sprintf(`{%s="%s"}`, label, escapeLabel(value))
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", name, suffix, formatValue(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, suffix, h.Count())
}

// writeHDR emits an HDR histogram as cumulative _bucket series at the
// occupied bucket boundaries (plus +Inf), then _sum and _count. Buckets
// carrying an exemplar get an OpenMetrics-style exemplar suffix
// (`# {trace_id="..."} value`), which is how a tail bucket links to the
// trace of the request that landed in it.
func writeHDR(b *strings.Builder, name, label, value string, h *HDRHistogram) {
	labels := func(le string) string {
		if label == "" {
			return fmt.Sprintf(`{le="%s"}`, le)
		}
		return fmt.Sprintf(`{%s="%s",le="%s"}`, label, escapeLabel(value), le)
	}
	for _, bk := range h.NonEmptyBuckets() {
		fmt.Fprintf(b, "%s_bucket%s %d", name, labels(strconv.FormatInt(bk.Hi, 10)), bk.Cum)
		if bk.ExemplarID != 0 {
			fmt.Fprintf(b, ` # {trace_id="%s"} %d`, FormatID(bk.ExemplarID), bk.ExemplarValue)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, labels("+Inf"), h.Count())
	suffix := ""
	if label != "" {
		suffix = fmt.Sprintf(`{%s="%s"}`, label, escapeLabel(value))
	}
	fmt.Fprintf(b, "%s_sum%s %d\n", name, suffix, h.Sum())
	fmt.Fprintf(b, "%s_count%s %d\n", name, suffix, h.Count())
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }

// Handler returns an http.Handler serving the exposition (a /metrics
// endpoint).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

package obs

import (
	"io"
	"log/slog"
	"os"
	"strings"
)

// LogEnv is the environment variable configuring the run logger of the
// commands. It holds comma-separated tokens: a level (debug, info, warn,
// error) and/or "json" to switch to JSON output.
//
//	HP_LOG=debug hpserve
//	HP_LOG=json,info hpsched ...
const LogEnv = "HP_LOG"

// NewLogger builds the structured run logger shared by the commands:
// text (or JSON) records on w at Info level, raised to Debug by verbose
// or overridden by the HP_LOG environment variable. A nil w discards
// everything.
func NewLogger(w io.Writer, verbose bool) *slog.Logger {
	if w == nil {
		w = io.Discard
	}
	level := slog.LevelInfo
	if verbose {
		level = slog.LevelDebug
	}
	json := false
	for _, tok := range strings.Split(os.Getenv(LogEnv), ",") {
		switch strings.ToLower(strings.TrimSpace(tok)) {
		case "debug":
			level = slog.LevelDebug
		case "info":
			level = slog.LevelInfo
		case "warn", "warning":
			level = slog.LevelWarn
		case "error":
			level = slog.LevelError
		case "json":
			json = true
		}
	}
	opts := &slog.HandlerOptions{Level: level}
	if json {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}

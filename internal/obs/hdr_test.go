package obs

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestHDRBucketIndexBoundsRoundTrip(t *testing.T) {
	// Every bucket's bounds must contain exactly the values that map to it.
	for i := 0; i < hdrNumBuckets; i++ {
		lo, hi := HDRBucketBounds(i)
		if lo > hi {
			t.Fatalf("bucket %d: lo %d > hi %d", i, lo, hi)
		}
		if got := hdrBucketIndex(lo); got != i {
			t.Fatalf("bucket %d: lo %d maps to bucket %d", i, lo, got)
		}
		if got := hdrBucketIndex(hi); got != i {
			t.Fatalf("bucket %d: hi %d maps to bucket %d", i, hi, got)
		}
	}
	// Buckets tile the range with no gaps.
	for i := 1; i < hdrNumBuckets; i++ {
		_, prevHi := HDRBucketBounds(i - 1)
		lo, _ := HDRBucketBounds(i)
		if lo != prevHi+1 {
			t.Fatalf("gap between bucket %d (hi %d) and %d (lo %d)", i-1, prevHi, i, lo)
		}
	}
	if hdrBucketIndex(hdrMaxValue) != hdrNumBuckets-1 {
		t.Fatalf("hdrMaxValue not in last bucket")
	}
}

func TestHDRRelativeErrorBound(t *testing.T) {
	// Bucket width relative to its lower bound is <= 1/hdrSubCount for all
	// values >= hdrSubCount (below that, buckets are exact).
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20000; trial++ {
		v := int64(hdrSubCount) + rng.Int63n(int64(1)<<40)
		lo, hi := HDRBucketBounds(hdrBucketIndex(v))
		if v < lo || v > hi {
			t.Fatalf("v=%d outside its bucket [%d,%d]", v, lo, hi)
		}
		if relErr := float64(hi-lo) / float64(lo); relErr > 1.0/hdrSubCount {
			t.Fatalf("v=%d bucket [%d,%d] relative width %g > %g", v, lo, hi, relErr, 1.0/hdrSubCount)
		}
	}
}

func TestHDRBasicStats(t *testing.T) {
	h := NewHDR()
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 || h.Min() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram not all-zero")
	}
	for _, v := range []int64{10, 20, 30, 40} {
		h.Record(v)
	}
	if h.Count() != 4 || h.Sum() != 100 || h.Max() != 40 || h.Min() != 10 || h.Mean() != 25 {
		t.Fatalf("stats: count=%d sum=%d max=%d min=%d mean=%g",
			h.Count(), h.Sum(), h.Max(), h.Min(), h.Mean())
	}
	// Out-of-range records clamp instead of panicking.
	h.Record(-5)
	h.Record(hdrMaxValue + 100)
	if h.Min() != 0 || h.Max() != hdrMaxValue {
		t.Fatalf("clamping: min=%d max=%d", h.Min(), h.Max())
	}
}

func TestHDRQuantileExactBelowLinearRange(t *testing.T) {
	// Values < hdrSubCount land in width-1 buckets: quantiles are exact.
	h := NewHDR()
	for v := int64(1); v <= 20; v++ {
		h.Record(v)
	}
	cases := []struct {
		p    float64
		want int64
	}{{0, 1}, {0.05, 1}, {0.5, 10}, {0.95, 19}, {1, 20}}
	for _, c := range cases {
		if got := h.Quantile(c.p); got != c.want {
			t.Errorf("Quantile(%g) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestHDRQuantilePropertyMonotoneAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		h := NewHDR()
		n := 1 + rng.Intn(2000)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = rng.Int63n(1 << uint(5+rng.Intn(30)))
			h.Record(vals[i])
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		prev := int64(-1)
		for _, p := range []float64{0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
			q := h.Quantile(p)
			if q < prev {
				t.Fatalf("trial %d: quantile not monotone: Quantile(%g)=%d < previous %d", trial, p, q, prev)
			}
			prev = q
			// The estimate is >= the true order statistic (bucket upper
			// bound) and within one bucket relative width of it.
			rank := int(math.Ceil(p * float64(n)))
			if rank < 1 {
				rank = 1
			}
			exact := vals[rank-1]
			if q < exact {
				t.Fatalf("trial %d: Quantile(%g)=%d < exact order statistic %d", trial, p, q, exact)
			}
			limit := exact + exact/hdrSubCount + 1
			if q > limit {
				t.Fatalf("trial %d: Quantile(%g)=%d exceeds error bound %d (exact %d)", trial, p, q, limit, exact)
			}
		}
		if h.Quantile(1) > h.Max() {
			t.Fatalf("trial %d: Quantile(1)=%d > max %d", trial, h.Quantile(1), h.Max())
		}
	}
}

func TestHDRMergeCommutes(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		a1, a2 := NewHDR(), NewHDR()
		b1, b2 := NewHDR(), NewHDR()
		for i := 0; i < 500; i++ {
			v := rng.Int63n(1 << 20)
			id := uint64(rng.Int63n(50)) // some zero -> no exemplar
			if i%2 == 0 {
				a1.RecordExemplar(v, id)
				a2.RecordExemplar(v, id)
			} else {
				b1.RecordExemplar(v, id)
				b2.RecordExemplar(v, id)
			}
		}
		// Merge(a,b) vs Merge(b,a) into fresh targets.
		m1, m2 := NewHDR(), NewHDR()
		m1.Merge(a1)
		m1.Merge(b1)
		m2.Merge(b2)
		m2.Merge(a2)
		if m1.Count() != m2.Count() || m1.Sum() != m2.Sum() || m1.Max() != m2.Max() || m1.Min() != m2.Min() {
			t.Fatalf("trial %d: merged aggregates differ", trial)
		}
		bk1, bk2 := m1.NonEmptyBuckets(), m2.NonEmptyBuckets()
		if len(bk1) != len(bk2) {
			t.Fatalf("trial %d: bucket count %d vs %d", trial, len(bk1), len(bk2))
		}
		for i := range bk1 {
			if bk1[i] != bk2[i] {
				t.Fatalf("trial %d bucket %d: %+v vs %+v", trial, i, bk1[i], bk2[i])
			}
		}
		for _, p := range []float64{0.5, 0.99, 0.999} {
			if m1.Quantile(p) != m2.Quantile(p) {
				t.Fatalf("trial %d: Quantile(%g) differs after merge order swap", trial, p)
			}
		}
	}
}

func TestHDRBucketInvariants(t *testing.T) {
	h := NewHDR()
	rng := rand.New(rand.NewSource(3))
	var total uint64
	for i := 0; i < 3000; i++ {
		h.Record(rng.Int63n(1 << 22))
		total++
	}
	var sumCounts uint64
	var prevHi int64 = -1
	for _, b := range h.NonEmptyBuckets() {
		if b.Lo <= prevHi {
			t.Fatalf("buckets out of order: lo %d after hi %d", b.Lo, prevHi)
		}
		prevHi = b.Hi
		sumCounts += b.Count
		if b.Cum != sumCounts {
			t.Fatalf("cumulative count mismatch: %d vs %d", b.Cum, sumCounts)
		}
	}
	if sumCounts != total {
		t.Fatalf("bucket counts sum %d, recorded %d", sumCounts, total)
	}
}

func TestHDRExemplars(t *testing.T) {
	h := NewHDR()
	h.RecordExemplar(100, 0xabc) // bucket of 100
	h.RecordExemplar(3, 0)       // no exemplar stored
	var found bool
	for _, b := range h.NonEmptyBuckets() {
		if b.Lo <= 100 && 100 <= b.Hi {
			if b.ExemplarID != 0xabc || b.ExemplarValue != 100 {
				t.Fatalf("exemplar = (%x, %d)", b.ExemplarID, b.ExemplarValue)
			}
			found = true
		} else if b.ExemplarID != 0 {
			t.Fatalf("unexpected exemplar in bucket [%d,%d]", b.Lo, b.Hi)
		}
	}
	if !found {
		t.Fatalf("bucket holding 100 not found")
	}
}

func TestHDRConcurrentRecord(t *testing.T) {
	h := NewHDR()
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.RecordExemplar(rng.Int63n(1<<18), uint64(seed))
			}
		}(int64(w + 1))
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
}

func TestHDRVecAndExposition(t *testing.T) {
	r := NewRegistry()
	vec := r.HDRVec("hp_latency_request_us", "request latency", "kind")
	vec.With("schedule").RecordExemplar(1234, 0xdeadbeef)
	vec.With("compare").Record(50)
	solo := r.HDR("hp_latency_solo_us", "solo")
	solo.Record(7)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE hp_latency_request_us histogram",
		`hp_latency_request_us_bucket{kind="compare",le="50"} 1`,
		`hp_latency_request_us_bucket{kind="schedule",le="+Inf"} 1`,
		`hp_latency_request_us_sum{kind="schedule"} 1234`,
		`hp_latency_request_us_count{kind="compare"} 1`,
		`# {trace_id="00000000deadbeef"} 1234`,
		"hp_latency_solo_us_bucket{le=\"7\"} 1",
		"hp_latency_solo_us_sum 7",
		"hp_latency_solo_us_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Same-name re-registration returns the same underlying family.
	if r.HDRVec("hp_latency_request_us", "request latency", "kind") != vec {
		t.Fatalf("HDRVec re-registration returned a new vec")
	}
}

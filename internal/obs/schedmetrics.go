package obs

import (
	"sync"

	"repro/internal/platform"
)

// Metric names of the scheduler catalog (see the Observability sections of
// README.md and DESIGN.md). Declared as constants so dashboards and tests
// reference one spelling.
const (
	MetricTasksQueued    = "hp_tasks_queued_total"
	MetricTasksCompleted = "hp_tasks_completed_total"
	MetricSpoliations    = "hp_spoliations_total"
	MetricWastedWork     = "hp_spoliation_wasted_ms_total"
	MetricQueueDepth     = "hp_queue_depth"
	MetricTaskDuration   = "hp_task_duration_ms"
	MetricQueueWait      = "hp_queue_wait_ms"
	MetricWorkerIdle     = "hp_worker_idle_events_total"
)

// SchedulerMetrics is an Observer that feeds a Registry with live
// counters, gauges and histograms for the quantities the paper's analysis
// is phrased in: completed tasks, spoliations and their wasted work, queue
// depth, task durations and queue-wait times. It is safe for concurrent
// use by several simultaneous runs; the queue-wait histogram is then an
// aggregate over all of them (task IDs of concurrent runs may collide, in
// which case a wait sample is attributed to the latest queue entry).
type SchedulerMetrics struct {
	TasksQueued    *Counter
	TasksCompleted *Counter
	Spoliations    *Counter
	WastedWork     *Counter
	QueueDepth     *Gauge
	TaskDuration   *Histogram
	QueueWait      *Histogram
	IdleEvents     *CounterVec

	// idleByKind caches the per-class children of IdleEvents: WorkerIdle
	// fires for every idle worker at every scheduling round, and going
	// through CounterVec.With there would put a lock, a map lookup, and a
	// first-use allocation on the scheduler's hot path.
	idleByKind [platform.NumKinds]*Counter

	mu       sync.Mutex
	queuedAt map[int]float64
}

// NewSchedulerMetrics registers the scheduler metric catalog in r and
// returns the Observer feeding it. Histogram buckets span the simulated
// durations of the paper's workloads (sub-millisecond kernels up to
// multi-second makespans).
func NewSchedulerMetrics(r *Registry) *SchedulerMetrics {
	buckets := ExpBuckets(0.5, 2, 16) // 0.5 ms .. ~16 s
	m := &SchedulerMetrics{
		TasksQueued:    r.Counter(MetricTasksQueued, "Tasks inserted into the ready queue."),
		TasksCompleted: r.Counter(MetricTasksCompleted, "Tasks that finished a successful run."),
		Spoliations:    r.Counter(MetricSpoliations, "Runs aborted by spoliation."),
		WastedWork:     r.Counter(MetricWastedWork, "Simulated milliseconds of work lost to aborted runs."),
		QueueDepth:     r.Gauge(MetricQueueDepth, "Ready-queue depth at the last scheduler decision point."),
		TaskDuration:   r.Histogram(MetricTaskDuration, "Successful run durations in simulated milliseconds.", buckets),
		QueueWait:      r.Histogram(MetricQueueWait, "Simulated milliseconds tasks spent in the ready queue before starting.", buckets),
		IdleEvents:     r.CounterVec(MetricWorkerIdle, "Worker-idle observations at scheduling rounds, by resource class.", "class"),
		queuedAt:       map[int]float64{},
	}
	for k := range m.idleByKind {
		m.idleByKind[k] = m.IdleEvents.With(platform.Kind(k).String())
	}
	return m
}

func (m *SchedulerMetrics) TaskQueued(now float64, t platform.Task, depth int) {
	m.TasksQueued.Inc()
	m.QueueDepth.Set(float64(depth))
	m.mu.Lock()
	m.queuedAt[t.ID] = now //hplint:allow allocflow queue-wait bookkeeping, bounded by tasks concurrently in the ready queue
	m.mu.Unlock()
}

func (m *SchedulerMetrics) TaskStarted(now float64, _ int, _ platform.Kind, t platform.Task, _ float64, spoliation bool) {
	if spoliation {
		// Restarts never pass through the queue.
		return
	}
	m.mu.Lock()
	at, ok := m.queuedAt[t.ID]
	if ok {
		delete(m.queuedAt, t.ID)
	}
	m.mu.Unlock()
	if ok {
		m.QueueWait.Observe(now - at)
	}
}

func (m *SchedulerMetrics) TaskSpoliated(_ float64, _, _ int, _ platform.Task, wasted float64) {
	m.Spoliations.Inc()
	m.WastedWork.Add(wasted)
}

func (m *SchedulerMetrics) TaskCompleted(now float64, _ int, _ platform.Kind, _ platform.Task, start float64) {
	m.TasksCompleted.Inc()
	m.TaskDuration.Observe(now - start)
}

func (m *SchedulerMetrics) WorkerIdle(_ float64, _ int, kind platform.Kind) {
	m.idleByKind[kind].Inc()
}

func (m *SchedulerMetrics) QueueDepthSample(_ float64, depth int) {
	m.QueueDepth.Set(float64(depth))
}

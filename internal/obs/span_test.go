package obs

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"repro/internal/platform"
)

// spinFor burns wall time without sleeping, giving spans measurable,
// ordered durations (sleepsync bans time.Sleep in tests).
func spinFor(d time.Duration) {
	for t0 := time.Now(); time.Since(t0) < d; {
	}
}

func TestSpanTreeShape(t *testing.T) {
	tr := NewTracer(4)
	root := tr.StartTrace("request")
	root.Annotate("kind", "schedule")

	admit := root.StartChild("admission")
	admit.AnnotateInt("queue_depth", 3)
	spinFor(time.Millisecond)
	admit.End()

	cache := root.StartChild("cache")
	compute := cache.StartChild("compute")
	spinFor(time.Millisecond)
	compute.End()
	cache.End()

	id := root.TraceID()
	dur := root.End()
	if dur <= 0 {
		t.Fatalf("root duration %v", dur)
	}

	td := tr.Trace(id)
	if td == nil {
		t.Fatalf("trace %x not retained", id)
	}
	if !td.Finished() || td.Duration() != dur {
		t.Fatalf("finished=%v duration=%v want %v", td.Finished(), td.Duration(), dur)
	}

	tree := td.Tree()
	if tree.TraceID != FormatID(id) || tree.Name != "request" {
		t.Fatalf("tree identity: %+v", tree)
	}
	if len(tree.Spans) != 1 {
		t.Fatalf("want single root, got %d", len(tree.Spans))
	}
	rt := tree.Spans[0]
	if rt.Name != "request" || len(rt.Children) != 2 {
		t.Fatalf("root node: %+v", rt)
	}
	if rt.Annotations["kind"] != "schedule" {
		t.Fatalf("root annotations: %v", rt.Annotations)
	}
	var names []string
	tree.Walk(func(n *SpanNode) { names = append(names, n.Name) })
	if len(names) != 4 {
		t.Fatalf("walk visited %v", names)
	}
	// Self time: children's durations are subtracted from the parent.
	for _, c := range rt.Children {
		if c.Name == "admission" {
			if c.Annotations["queue_depth"] != int64(3) {
				t.Fatalf("int annotation: %v", c.Annotations)
			}
		}
		if c.Name == "cache" {
			if len(c.Children) != 1 || c.Children[0].Name != "compute" {
				t.Fatalf("cache children: %+v", c.Children)
			}
			if c.SelfUS > c.DurationUS {
				t.Fatalf("self %d > duration %d", c.SelfUS, c.DurationUS)
			}
		}
	}
	if rt.SelfUS > rt.DurationUS {
		t.Fatalf("root self %d > duration %d", rt.SelfUS, rt.DurationUS)
	}
	// Tree marshals to JSON.
	if _, err := json.Marshal(tree); err != nil {
		t.Fatal(err)
	}
}

func TestTracerRingEvictsOldest(t *testing.T) {
	tr := NewTracer(2)
	var ids []uint64
	for i := 0; i < 3; i++ {
		sp := tr.StartTrace("r")
		ids = append(ids, sp.TraceID())
		sp.End()
	}
	if tr.Trace(ids[0]) != nil {
		t.Fatalf("oldest trace not evicted")
	}
	if tr.Trace(ids[1]) == nil || tr.Trace(ids[2]) == nil {
		t.Fatalf("recent traces missing")
	}
	rec := tr.Recent()
	if len(rec) != 2 || rec[0].ID != ids[2] || rec[1].ID != ids[1] {
		t.Fatalf("Recent() not newest-first: %v (want %x then %x)", rec, ids[2], ids[1])
	}
}

func TestTracerOnFinish(t *testing.T) {
	tr := NewTracer(4)
	var mu sync.Mutex
	var got []*TraceData
	tr.OnFinish = func(td *TraceData) {
		mu.Lock()
		got = append(got, td)
		mu.Unlock()
	}
	sp := tr.StartTrace("r")
	child := sp.StartChild("c")
	child.End() // non-root End must not fire the hook
	id := sp.TraceID()
	sp.End()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0].ID != id {
		t.Fatalf("OnFinish fired %d times", len(got))
	}
}

func TestSpanDropBound(t *testing.T) {
	tr := NewTracer(1)
	root := tr.StartTrace("r")
	for i := 0; i < maxSpansPerTrace+10; i++ {
		root.StartChild("c").End()
	}
	root.End()
	rec := tr.Recent()
	if len(rec) != 1 {
		t.Fatalf("want 1 retained trace")
	}
	if got := len(rec[0].Spans()); got != maxSpansPerTrace {
		t.Fatalf("retained %d spans, want %d", got, maxSpansPerTrace)
	}
	// 10 children + the root span itself arrived after the cap.
	if d := rec[0].Dropped(); d != 11 {
		t.Fatalf("dropped = %d, want 11", d)
	}
	if rec[0].Tree().Dropped != 11 {
		t.Fatalf("tree dropped mismatch")
	}
}

func TestSpanIDsUniqueAndMixed(t *testing.T) {
	tr := NewTracer(16)
	seen := map[uint64]bool{}
	for i := 0; i < 16; i++ {
		sp := tr.StartTrace("r")
		id := sp.TraceID()
		if id == 0 || seen[id] {
			t.Fatalf("trace ID %x duplicate or zero", id)
		}
		seen[id] = true
		sp.End()
	}
}

func TestFormatParseID(t *testing.T) {
	for _, id := range []uint64{0, 1, 0xdeadbeef, ^uint64(0)} {
		s := FormatID(id)
		if len(s) != 16 {
			t.Fatalf("FormatID(%x) = %q", id, s)
		}
		back, ok := ParseID(s)
		if !ok || back != id {
			t.Fatalf("round trip %x -> %q -> %x", id, s, back)
		}
	}
	if _, ok := ParseID("zzz"); ok {
		t.Fatalf("ParseID accepted garbage")
	}
	if _, ok := ParseID(""); ok {
		t.Fatalf("ParseID accepted empty")
	}
}

func TestSpanContext(t *testing.T) {
	if SpanFromContext(context.Background()) != nil {
		t.Fatalf("empty context yielded a span")
	}
	tr := NewTracer(1)
	sp := tr.StartTrace("r")
	ctx := ContextWithSpan(context.Background(), sp)
	if SpanFromContext(ctx) != sp {
		t.Fatalf("span not round-tripped through context")
	}
	sp.End()
}

func TestSpanAnnotationBound(t *testing.T) {
	tr := NewTracer(1)
	sp := tr.StartTrace("r")
	for i := 0; i < maxAnnotations+5; i++ {
		sp.AnnotateInt("k", int64(i))
	}
	sp.End()
	td := tr.Recent()[0]
	spans := td.Spans()
	if len(spans) != 1 || spans[0].NAnn != maxAnnotations {
		t.Fatalf("annotations retained: %d", spans[0].NAnn)
	}
}

func TestSpanObserverBridge(t *testing.T) {
	tr := NewTracer(1)
	sp := tr.StartTrace("compute")
	o := NewSpanObserver(sp)
	var obs Observer = o // must satisfy the scheduler Observer contract
	var task platform.Task
	obs.TaskQueued(0, task, 1)
	obs.TaskQueued(1, task, 2)
	obs.TaskStarted(2, 0, 0, task, 10, false)
	obs.TaskSpoliated(5, 1, 0, task, 4.2)
	obs.TaskCompleted(12.7, 0, 0, task, 2)
	obs.WorkerIdle(12.7, 1, 0)
	obs.QueueDepthSample(12.7, 0)
	o.Finish()
	sp.End()

	spans := tr.Recent()[0].Spans()
	ann := map[string]int64{}
	for _, a := range spans[0].Annots[:spans[0].NAnn] {
		ann[a.Key] = a.Int
	}
	want := map[string]int64{
		"sim_tasks_queued":    2,
		"sim_tasks_completed": 1,
		"sim_spoliations":     1,
		"sim_wasted_ms":       4, // 4.2 rounded
		"sim_makespan_ms":     13,
	}
	for k, v := range want {
		if ann[k] != v {
			t.Errorf("%s = %d, want %d (all: %v)", k, ann[k], v, ann)
		}
	}
}

func TestSpanConcurrentChildren(t *testing.T) {
	tr := NewTracer(8)
	root := tr.StartTrace("r")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				c := root.StartChild("cell")
				c.AnnotateInt("cell_index", int64(i))
				c.End()
			}
		}(i)
	}
	wg.Wait()
	root.End()
	td := tr.Recent()[0]
	if got := len(td.Spans()); got != 8*200+1 {
		t.Fatalf("spans = %d, want %d", got, 8*200+1)
	}
}

package obs

import (
	"context"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/platform"
)

// Request-scoped span tracing: a Trace is a tree of timed Spans covering
// one request's path through the serving stack (admission wait, cache
// lookup, coalescing, scheduler compute, response render, per-cell
// simulation). The design goals mirror the observer hooks' contract:
//
//   - the hot path (StartChild / Annotate / End) is allocation-free in
//     steady state — Spans are drawn from a sync.Pool and finished span
//     records append into a capacity-reused slice (BenchmarkSpanStartEnd
//     gates 0 allocs/op);
//   - emission sites in library code are nil-guarded (`if sp != nil`),
//     so an untraced call path pays one context lookup and nothing else
//     (the obsguard analyzer enforces this in internal/engine and
//     internal/serve, and spanend checks every started span is ended);
//   - finished traces are retained in a bounded ring, served by hpserve
//     at /traces (slowest-first list) and /trace/{id} (span tree), and
//     linked from HDR latency buckets through exemplar trace IDs.

// maxAnnotations bounds per-span key=value pairs; extras are dropped
// (the fixed array is what keeps Annotate allocation-free).
const maxAnnotations = 8

// maxSpansPerTrace bounds the retained spans of one trace; spans beyond
// it are counted in TraceData.Dropped instead of retained, so a runaway
// request cannot grow a trace without bound.
const maxSpansPerTrace = 4096

// Annotation is one key=value pair on a span. Values are either strings
// or int64s; the two-field form avoids boxing (an `any` field would
// allocate on every AnnotateInt).
type Annotation struct {
	Key   string
	Str   string
	Int   int64
	IsInt bool
}

// Value renders the annotation value for JSON trees and reports.
func (a Annotation) Value() any {
	if a.IsInt {
		return a.Int
	}
	return a.Str
}

// SpanData is the retained record of one finished span.
type SpanData struct {
	ID     uint64
	Parent uint64 // 0 for the root span
	Name   string
	Start  int64 // ns, wall clock
	End    int64 // ns, wall clock
	Annots [maxAnnotations]Annotation
	NAnn   int
}

// Duration returns the span's wall-clock duration.
func (s SpanData) Duration() time.Duration { return time.Duration(s.End - s.Start) }

// TraceData is one finished (or still-accumulating) trace: the spans
// recorded so far plus identity. It is retained in the Tracer's ring
// after the root span ends and is never recycled, so a reader holding a
// *TraceData can never observe it being reused for a new request.
type TraceData struct {
	// ID is the process-unique trace ID (also the exemplar ID in HDR
	// histograms and the /trace/{id} path segment).
	ID uint64
	// Name is the root span's name (the handler that started the trace).
	Name string
	// Start is the root span's start instant (ns, wall clock).
	Start int64

	nextSpan atomic.Uint64

	mu       sync.Mutex
	spans    []SpanData
	dropped  int
	durNS    int64
	finished bool
}

// Spans returns a copy of the retained spans, ordered by start time
// (ties by span ID, so the order is deterministic).
func (t *TraceData) Spans() []SpanData {
	t.mu.Lock()
	out := append([]SpanData(nil), t.spans...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Dropped returns how many spans were discarded by the per-trace bound.
func (t *TraceData) Dropped() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Finished reports whether the root span has ended.
func (t *TraceData) Finished() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.finished
}

// Duration returns the root span's duration (0 while unfinished).
func (t *TraceData) Duration() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return time.Duration(t.durNS)
}

// Span is one live, timed operation within a trace. Spans are pooled:
// after End the Span object is reused, so callers must not retain or
// touch a Span after ending it. A nil *Span is not usable — library call
// sites guard emission with `if sp != nil`, which is also what keeps the
// untraced path free.
type Span struct {
	tracer *Tracer
	trace  *TraceData
	id     uint64
	parent uint64
	name   string
	start  int64
	annots [maxAnnotations]Annotation
	nann   int
}

// TraceID returns the owning trace's ID.
func (s *Span) TraceID() uint64 { return s.trace.ID }

// Annotate attaches a key=value string pair (dropped beyond the
// per-span annotation bound).
//
//hplint:hotpath
func (s *Span) Annotate(key, value string) {
	if s.nann < maxAnnotations {
		s.annots[s.nann] = Annotation{Key: key, Str: value}
		s.nann++
	}
}

// AnnotateInt attaches a key=value integer pair without allocating.
//
//hplint:hotpath
func (s *Span) AnnotateInt(key string, value int64) {
	if s.nann < maxAnnotations {
		s.annots[s.nann] = Annotation{Key: key, Int: value, IsInt: true}
		s.nann++
	}
}

// StartChild starts a sub-span of s. The child must be ended by the
// caller; it may outlive s (its record lands in the same trace).
func (s *Span) StartChild(name string) *Span {
	child := s.tracer.getSpan()
	child.tracer = s.tracer
	child.trace = s.trace
	child.id = s.trace.nextSpan.Add(1)
	child.parent = s.id
	child.name = name
	child.nann = 0
	child.start = time.Now().UnixNano()
	return child
}

// End finishes the span, retains its record in the trace, returns the
// span object to the pool, and — for a root span — moves the trace into
// the tracer's ring and fires the OnFinish hook. It returns the span's
// duration so call sites can feed latency metrics without re-reading
// the clock.
func (s *Span) End() time.Duration {
	end := time.Now().UnixNano()
	td, tr, root := s.trace, s.tracer, s.parent == 0
	dur := end - s.start
	sd := SpanData{
		ID: s.id, Parent: s.parent, Name: s.name,
		Start: s.start, End: end,
		Annots: s.annots, NAnn: s.nann,
	}
	td.mu.Lock()
	if len(td.spans) < maxSpansPerTrace {
		//hplint:allow allocflow one span record per finished span, capped at maxSpansPerTrace; the trace buffer is the tracer's product
		td.spans = append(td.spans, sd)
	} else {
		td.dropped++
	}
	if root {
		td.durNS = dur
		td.finished = true
	}
	td.mu.Unlock()
	s.tracer, s.trace = nil, nil
	tr.spanPool.Put(s)
	if root {
		tr.retain(td)
	}
	return time.Duration(dur)
}

// Tracer mints traces, pools spans, and retains finished traces in a
// bounded ring (oldest evicted first). Safe for concurrent use.
type Tracer struct {
	spanPool sync.Pool
	nextID   atomic.Uint64
	// OnFinish, when non-nil, runs synchronously after a trace's root
	// span ends (in the ending goroutine). hpserve uses it to feed the
	// HDR latency families and their exemplars. Set it before the first
	// StartTrace; it must be safe for concurrent calls.
	OnFinish func(*TraceData)

	mu   sync.Mutex
	ring []*TraceData
	next int
	full bool
}

// NewTracer returns a tracer retaining the last capacity finished
// traces (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	t := &Tracer{ring: make([]*TraceData, capacity)}
	t.spanPool.New = func() any { return new(Span) }
	return t
}

func (t *Tracer) getSpan() *Span { return t.spanPool.Get().(*Span) }

// mixID is the splitmix64 finalizer: trace IDs are minted from a counter
// but exposed well-mixed, so IDs from different processes or restarts
// rarely collide in dashboards and logs.
func mixID(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// StartTrace mints a new trace and returns its root span. Each trace
// allocates its TraceData (per-request cost); the spans within it are
// pooled.
func (t *Tracer) StartTrace(name string) *Span {
	now := time.Now().UnixNano()
	td := &TraceData{
		ID:    mixID(t.nextID.Add(1) ^ uint64(now)),
		Name:  name,
		Start: now,
	}
	sp := t.getSpan()
	sp.tracer = t
	sp.trace = td
	sp.id = td.nextSpan.Add(1)
	sp.parent = 0
	sp.name = name
	sp.nann = 0
	sp.start = now
	return sp
}

// retain inserts a finished trace into the ring and fires OnFinish.
func (t *Tracer) retain(td *TraceData) {
	t.mu.Lock()
	t.ring[t.next] = td
	t.next++
	if t.next == len(t.ring) {
		t.next, t.full = 0, true
	}
	t.mu.Unlock()
	if f := t.OnFinish; f != nil {
		f(td)
	}
}

// Trace returns the retained trace with the given ID, or nil.
func (t *Tracer) Trace(id uint64) *TraceData {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, td := range t.ring {
		if td != nil && td.ID == id {
			return td
		}
	}
	return nil
}

// Recent returns the retained traces, newest first.
func (t *Tracer) Recent() []*TraceData {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	if t.full {
		n = len(t.ring)
	}
	out := make([]*TraceData, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, t.ring[(t.next-i+len(t.ring))%len(t.ring)])
	}
	return out
}

// FormatID renders a trace or span ID as fixed-width hex (the /trace/{id}
// path segment, the X-Trace-Id header, and the exemplar label value).
func FormatID(id uint64) string {
	const hexdigits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexdigits[id&0xf]
		id >>= 4
	}
	return string(b[:])
}

// ParseID parses FormatID's output (any hex spelling of a uint64).
func ParseID(s string) (uint64, bool) {
	v, err := strconv.ParseUint(s, 16, 64)
	return v, err == nil
}

// spanCtxKey keys the active span in a context.
type spanCtxKey struct{}

// ContextWithSpan returns a context carrying sp as the active span.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// SpanFromContext returns the active span, or nil when the request is
// untraced. Callers must nil-guard everything they do with the result.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}

// SpanNode is one span in the rendered trace tree (the /trace/{id}
// payload and the shape hpload's phase breakdown parses).
type SpanNode struct {
	ID     string `json:"id"`
	Parent string `json:"parent,omitempty"`
	Name   string `json:"name"`
	// StartUS is the span start relative to the trace start.
	StartUS    int64 `json:"start_us"`
	DurationUS int64 `json:"duration_us"`
	// SelfUS is DurationUS minus the children's durations (clamped at
	// zero): the time spent in this phase itself. Self times over a
	// trace sum to the root duration up to scheduling gaps, which is
	// what makes a slow request's latency explainable phase by phase.
	SelfUS      int64          `json:"self_us"`
	Annotations map[string]any `json:"annotations,omitempty"`
	Children    []*SpanNode    `json:"children,omitempty"`
}

// TraceTree is the rendered form of one trace.
type TraceTree struct {
	TraceID    string      `json:"trace_id"`
	Name       string      `json:"name"`
	Finished   bool        `json:"finished"`
	DurationUS int64       `json:"duration_us"`
	Dropped    int         `json:"dropped_spans,omitempty"`
	Spans      []*SpanNode `json:"spans"`
}

// Tree renders the trace as a parent-linked span tree. Spans whose
// parent record is missing (dropped, or still running when read) are
// promoted to roots, so the tree is total over the retained spans.
func (t *TraceData) Tree() *TraceTree {
	spans := t.Spans()
	t.mu.Lock()
	tree := &TraceTree{
		TraceID:    FormatID(t.ID),
		Name:       t.Name,
		Finished:   t.finished,
		DurationUS: t.durNS / int64(time.Microsecond),
		Dropped:    t.dropped,
	}
	start := t.Start
	t.mu.Unlock()

	nodes := make(map[uint64]*SpanNode, len(spans))
	for _, sd := range spans {
		n := &SpanNode{
			ID:         FormatID(sd.ID),
			Name:       sd.Name,
			StartUS:    (sd.Start - start) / int64(time.Microsecond),
			DurationUS: int64(sd.Duration() / time.Microsecond),
		}
		n.SelfUS = n.DurationUS
		if sd.NAnn > 0 {
			n.Annotations = make(map[string]any, sd.NAnn)
			for _, a := range sd.Annots[:sd.NAnn] {
				n.Annotations[a.Key] = a.Value()
			}
		}
		nodes[sd.ID] = n
	}
	for _, sd := range spans {
		n := nodes[sd.ID]
		if p, ok := nodes[sd.Parent]; ok && sd.Parent != sd.ID {
			n.Parent = FormatID(sd.Parent)
			p.Children = append(p.Children, n)
			p.SelfUS -= n.DurationUS
			if p.SelfUS < 0 {
				p.SelfUS = 0
			}
		} else {
			tree.Spans = append(tree.Spans, n)
		}
	}
	return tree
}

// Walk visits every node of the tree depth-first.
func (t *TraceTree) Walk(visit func(*SpanNode)) {
	var rec func(n *SpanNode)
	rec = func(n *SpanNode) {
		visit(n)
		for _, c := range n.Children {
			rec(c)
		}
	}
	for _, n := range t.Spans {
		rec(n)
	}
}

// SpanObserver bridges the zero-alloc scheduler Observer hooks (emitted
// by internal/core's event loops and internal/runtime's live executor)
// into a span: it accumulates per-run aggregates with atomics — nothing
// allocates per event — and Finish annotates the span with the simulated
// quantities, so a compute span explains not just how long the scheduler
// ran but what it did (tasks, spoliations, wasted work, makespan).
type SpanObserver struct {
	queued      atomic.Int64
	completed   atomic.Int64
	spoliations atomic.Int64
	wastedMS    atomicFloat
	maxNowMS    atomicFloat

	span *Span
}

// NewSpanObserver returns a SpanObserver annotating sp (must be non-nil)
// when Finish is called.
func NewSpanObserver(sp *Span) *SpanObserver { return &SpanObserver{span: sp} }

// maxStore lifts f to max(f, v) with a CAS loop.
func maxStore(f *atomicFloat, v float64) {
	for {
		old := f.Load()
		if v <= old || f.bits.CompareAndSwap(math.Float64bits(old), math.Float64bits(v)) {
			return
		}
	}
}

func (o *SpanObserver) TaskQueued(now float64, _ platform.Task, _ int) {
	o.queued.Add(1)
	maxStore(&o.maxNowMS, now)
}

func (o *SpanObserver) TaskStarted(now float64, _ int, _ platform.Kind, _ platform.Task, _ float64, _ bool) {
	maxStore(&o.maxNowMS, now)
}

func (o *SpanObserver) TaskSpoliated(now float64, _, _ int, _ platform.Task, wasted float64) {
	o.spoliations.Add(1)
	o.wastedMS.Add(wasted)
	maxStore(&o.maxNowMS, now)
}

func (o *SpanObserver) TaskCompleted(now float64, _ int, _ platform.Kind, _ platform.Task, _ float64) {
	o.completed.Add(1)
	maxStore(&o.maxNowMS, now)
}

func (o *SpanObserver) WorkerIdle(now float64, _ int, _ platform.Kind) {
	maxStore(&o.maxNowMS, now)
}

func (o *SpanObserver) QueueDepthSample(now float64, _ int) {
	maxStore(&o.maxNowMS, now)
}

// Finish annotates the span with the accumulated schedule quantities.
// Call it before ending the span; the observer must not receive further
// events afterwards.
func (o *SpanObserver) Finish() {
	o.span.AnnotateInt("sim_tasks_queued", o.queued.Load())
	o.span.AnnotateInt("sim_tasks_completed", o.completed.Load())
	o.span.AnnotateInt("sim_spoliations", o.spoliations.Load())
	o.span.AnnotateInt("sim_wasted_ms", int64(o.wastedMS.Load()+0.5))
	o.span.AnnotateInt("sim_makespan_ms", int64(o.maxNowMS.Load()+0.5))
}

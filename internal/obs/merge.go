package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file implements parsing and merging of the Prometheus text
// exposition this registry writes, so a router fronting N replicas can
// serve one aggregated /metrics view instead of only its own registry.
//
// Merging rules:
//
//   - counters and gauges: samples with the same series identity (name +
//     label pairs) are summed;
//   - histograms (fixed-bucket and HDR): cumulative _bucket series are
//     merged at the union of all bucket boundaries. This is exact for
//     every histogram this package emits: fixed-bucket families share
//     their boundaries by construction, and HDR families draw occupied
//     buckets from one universal log-linear grid, so a boundary absent
//     from a source means the source has zero observations there and its
//     cumulative count at that boundary is its count at the next lower
//     boundary it does emit;
//   - exemplars are dropped (an exemplar's trace ID only resolves on the
//     replica that recorded it);
//   - HELP and TYPE come from the first exposition mentioning the family.

// Exposition is a parsed text exposition: an ordered set of metric
// families with their samples. It is a value snapshot — merging or
// rendering it never touches live metrics.
type Exposition struct {
	fams map[string]*expFamily
}

// expFamily is one parsed metric family.
type expFamily struct {
	name, help, typ string
	// plain holds non-histogram samples (and a histogram family's _sum
	// and _count series), keyed by the sample's label text (possibly "").
	plain map[string]float64
	// hist holds cumulative bucket counts per series (labels minus `le`).
	hist map[string]*expBuckets
}

// expBuckets is one histogram series: cumulative counts at its emitted
// upper bounds. +Inf is represented as math.Inf(1).
type expBuckets struct {
	bounds []float64 // sorted
	cum    map[float64]float64
}

// cumAt returns the series' cumulative count at bound b: the count at
// the greatest emitted bound <= b (zero below the first). This is exact
// when every bound between the two carries no observations, which holds
// for same-grid histograms (see the file comment).
func (e *expBuckets) cumAt(b float64) float64 {
	i := sort.SearchFloat64s(e.bounds, b)
	if i < len(e.bounds) && e.bounds[i] == b {
		return e.cum[b]
	}
	if i == 0 {
		return 0
	}
	return e.cum[e.bounds[i-1]]
}

// ParseExposition parses a text exposition produced by WritePrometheus
// (or any single-label-depth Prometheus text). Unparseable sample lines
// are an error: the merger must not silently drop replica data.
func ParseExposition(text string) (*Exposition, error) {
	exp := &Exposition{fams: map[string]*expFamily{}}
	types := map[string]string{}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, ok := parseMetaLine(line)
			if !ok {
				continue // unknown comment
			}
			f := exp.family(name)
			switch kind {
			case "HELP":
				f.help = rest
			case "TYPE":
				f.typ = rest
				types[name] = rest
			}
			continue
		}
		name, labels, value, err := parseSampleLine(line)
		if err != nil {
			return nil, err
		}
		base, suffix := splitHistogramName(name, types)
		f := exp.family(base)
		if suffix == "_bucket" {
			le, restLabels, err := extractLe(labels)
			if err != nil {
				return nil, fmt.Errorf("obs: %q: %w", line, err)
			}
			f.addBucket(restLabels, le, value)
			continue
		}
		// _sum and _count ride in plain under their full suffixed name so
		// rendering keeps them adjacent to their buckets.
		if suffix != "" {
			f = exp.family(base)
			f.addPlain(suffix+"\x00"+labels, value)
			continue
		}
		f.addPlain("\x00"+labels, value)
	}
	return exp, nil
}

func (e *Exposition) family(name string) *expFamily {
	f := e.fams[name]
	if f == nil {
		f = &expFamily{name: name, plain: map[string]float64{}, hist: map[string]*expBuckets{}}
		e.fams[name] = f
	}
	return f
}

func (f *expFamily) addPlain(key string, v float64) { f.plain[key] += v }

func (f *expFamily) addBucket(labels string, le, v float64) {
	b := f.hist[labels]
	if b == nil {
		b = &expBuckets{cum: map[float64]float64{}}
		f.hist[labels] = b
	}
	if _, ok := b.cum[le]; !ok {
		b.bounds = append(b.bounds, le)
		sort.Float64s(b.bounds)
	}
	b.cum[le] += v
}

// parseMetaLine parses "# HELP name text" / "# TYPE name type".
func parseMetaLine(line string) (kind, name, rest string, ok bool) {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || fields[0] != "#" || (fields[1] != "HELP" && fields[1] != "TYPE") {
		return "", "", "", false
	}
	rest = ""
	if len(fields) == 4 {
		rest = fields[3]
	}
	return fields[1], fields[2], rest, true
}

// parseSampleLine splits "name{labels} value [# exemplar]" into its
// parts. The exemplar suffix, when present, is discarded.
func parseSampleLine(line string) (name, labels string, value float64, err error) {
	if i := strings.Index(line, " # "); i >= 0 {
		line = strings.TrimSpace(line[:i])
	}
	sp := strings.LastIndexByte(line, ' ')
	if sp < 0 {
		return "", "", 0, fmt.Errorf("obs: malformed sample line %q", line)
	}
	series, valText := line[:sp], line[sp+1:]
	value, err = parseSampleValue(valText)
	if err != nil {
		return "", "", 0, fmt.Errorf("obs: bad value in %q: %w", line, err)
	}
	if i := strings.IndexByte(series, '{'); i >= 0 {
		if !strings.HasSuffix(series, "}") {
			return "", "", 0, fmt.Errorf("obs: malformed labels in %q", line)
		}
		return series[:i], series[i+1 : len(series)-1], value, nil
	}
	return series, "", value, nil
}

func parseSampleValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// splitHistogramName maps "fam_bucket"/"fam_sum"/"fam_count" back to its
// family when fam was TYPEd as a histogram; other names pass through.
func splitHistogramName(name string, types map[string]string) (base, suffix string) {
	for _, sfx := range []string{"_bucket", "_sum", "_count"} {
		b := strings.TrimSuffix(name, sfx)
		if b != name && types[b] == "histogram" {
			return b, sfx
		}
	}
	return name, ""
}

// extractLe removes the le label from a label text and returns its
// numeric value plus the remaining labels (order preserved).
func extractLe(labels string) (le float64, rest string, err error) {
	parts := strings.Split(labels, ",")
	kept := parts[:0]
	found := false
	for _, p := range parts {
		if v, ok := strings.CutPrefix(p, `le="`); ok {
			found = true
			le, err = parseSampleValue(strings.TrimSuffix(v, `"`))
			if err != nil {
				return 0, "", fmt.Errorf("bad le: %w", err)
			}
			continue
		}
		kept = append(kept, p)
	}
	if !found {
		return 0, "", fmt.Errorf("bucket sample without le label")
	}
	return le, strings.Join(kept, ","), nil
}

// MergeExpositions folds any number of parsed expositions into one.
func MergeExpositions(exps ...*Exposition) *Exposition {
	out := &Exposition{fams: map[string]*expFamily{}}
	for _, e := range exps {
		if e == nil {
			continue
		}
		for name, f := range e.fams {
			o := out.family(name)
			if o.help == "" {
				o.help = f.help
			}
			if o.typ == "" {
				o.typ = f.typ
			}
			for k, v := range f.plain {
				o.plain[k] += v
			}
			for labels, b := range f.hist {
				ob := o.hist[labels]
				if ob == nil {
					ob = &expBuckets{cum: map[float64]float64{}}
					o.hist[labels] = ob
				}
				mergeBuckets(ob, b)
			}
		}
	}
	return out
}

// mergeBuckets adds src's cumulative distribution into dst at the union
// of both bound sets.
func mergeBuckets(dst, src *expBuckets) {
	union := make([]float64, 0, len(dst.bounds)+len(src.bounds))
	union = append(union, dst.bounds...)
	for _, b := range src.bounds {
		if _, ok := dst.cum[b]; !ok {
			union = append(union, b)
		}
	}
	sort.Float64s(union)
	merged := make(map[float64]float64, len(union))
	for _, b := range union {
		merged[b] = dst.cumAt(b) + src.cumAt(b)
	}
	dst.bounds = union
	dst.cum = merged
}

// Value returns the summed value of a plain (counter/gauge) family
// across all of its series, or 0 when the family is absent.
func (e *Exposition) Value(name string) float64 {
	f := e.fams[name]
	if f == nil {
		return 0
	}
	var total float64
	for k, v := range f.plain {
		if strings.HasPrefix(k, "\x00") {
			total += v
		}
	}
	return total
}

// HistBucket is one merged histogram bucket: the upper bound and the
// cumulative count at it.
type HistBucket struct {
	Le  float64
	Cum float64
}

// Histogram returns a family's cumulative bucket distribution summed
// across all of its series (e.g. all handler labels), sorted by bound.
// The result is empty when the family has no bucket samples.
func (e *Exposition) Histogram(name string) []HistBucket {
	f := e.fams[name]
	if f == nil || len(f.hist) == 0 {
		return nil
	}
	agg := &expBuckets{cum: map[float64]float64{}}
	for _, labels := range sortedKeys(f.hist) {
		mergeBuckets(agg, f.hist[labels])
	}
	out := make([]HistBucket, 0, len(agg.bounds))
	for _, b := range agg.bounds {
		out = append(out, HistBucket{Le: b, Cum: agg.cum[b]})
	}
	return out
}

// Render writes the exposition back out in the text format: families
// sorted by name, series sorted within a family, bucket bounds ascending
// with +Inf last. Counts that are whole numbers print as integers, so a
// merged exposition stays readable by the same scrapers.
func (e *Exposition) Render(w io.Writer) error {
	var b strings.Builder
	for _, name := range sortedKeys(e.fams) {
		f := e.fams[name]
		if f.help != "" || f.typ != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		}
		// Bare series first, then buckets, then _sum/_count — the shape
		// WritePrometheus produces.
		for _, key := range sortedKeys(f.plain) {
			if strings.HasPrefix(key, "\x00") {
				writeRawSample(&b, f.name, strings.TrimPrefix(key, "\x00"), f.plain[key])
			}
		}
		for _, labels := range sortedKeys(f.hist) {
			bk := f.hist[labels]
			for _, bound := range bk.bounds {
				writeRawSample(&b, f.name+"_bucket", joinLabels(labels, bound), bk.cum[bound])
			}
		}
		for _, sfx := range []string{"_sum", "_count"} {
			for _, key := range sortedKeys(f.plain) {
				if rest, ok := strings.CutPrefix(key, sfx+"\x00"); ok {
					writeRawSample(&b, f.name+sfx, rest, f.plain[key])
				}
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// joinLabels appends the le pair to a (possibly empty) label text.
func joinLabels(labels string, bound float64) string {
	le := formatMergedValue(bound)
	if labels == "" {
		return `le="` + le + `"`
	}
	return labels + `,le="` + le + `"`
}

func writeRawSample(b *strings.Builder, name, labels string, v float64) {
	b.WriteString(name)
	if labels != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatMergedValue(v))
	b.WriteByte('\n')
}

// formatMergedValue prints whole numbers as integers (bucket and counter
// samples) and everything else in the registry's 'g' format.
func formatMergedValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 && !math.IsInf(v, 0) {
		return strconv.FormatInt(int64(v), 10)
	}
	return formatValue(v)
}

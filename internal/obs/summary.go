package obs

import (
	"math"
	"sync"
	"time"

	"repro/internal/platform"
	"repro/internal/sim"
)

// RunSummary is the canonical per-run record shared by the commands and
// the /runs endpoint: every quantity of the paper's evaluation (makespan,
// ratio to the lower bound, per-class busy/idle time, spoliation count and
// wasted area, equivalent acceleration factors) in one struct, replacing
// the ad-hoc per-command field sets.
type RunSummary struct {
	ID       string    `json:"id,omitempty"`
	When     time.Time `json:"when"`
	Workload string    `json:"workload,omitempty"`
	Alg      string    `json:"alg,omitempty"`
	N        int       `json:"n,omitempty"`
	Seed     int64     `json:"seed,omitempty"`
	CPUs     int       `json:"cpus"`
	GPUs     int       `json:"gpus"`

	Tasks       int     `json:"tasks"`
	Makespan    float64 `json:"makespan_ms"`
	LowerBound  float64 `json:"lower_bound_ms"`
	Ratio       float64 `json:"ratio"`
	Spoliations int     `json:"spoliations"`
	WastedWork  float64 `json:"wasted_work_ms"`

	CPUBusy       float64 `json:"cpu_busy_ms"`
	CPUIdle       float64 `json:"cpu_idle_ms"`
	GPUBusy       float64 `json:"gpu_busy_ms"`
	GPUIdle       float64 `json:"gpu_idle_ms"`
	CPUEquivAccel float64 `json:"cpu_equiv_accel"`
	GPUEquivAccel float64 `json:"gpu_equiv_accel"`

	// Elapsed is the wall-clock time of the scheduling computation (not
	// simulated time), in milliseconds.
	Elapsed float64 `json:"elapsed_ms,omitempty"`
}

// Summarize derives a RunSummary from a finished schedule: every field
// that can be computed from the schedule, the instance and the lower
// bound. Identification fields (ID, When, Workload, ...) are the caller's.
// NaN metrics (e.g. the equivalent acceleration of a class that executed
// nothing) are reported as zero so summaries always marshal to JSON.
func Summarize(s *sim.Schedule, in platform.Instance, lower float64) RunSummary {
	sum := RunSummary{
		CPUs:        s.Platform.CPUs,
		GPUs:        s.Platform.GPUs,
		Tasks:       len(in),
		Makespan:    s.Makespan(),
		LowerBound:  lower,
		Spoliations: s.SpoliationCount(),
	}
	if lower > 0 {
		sum.Ratio = sum.Makespan / lower
	}
	for _, e := range s.Entries {
		if e.Aborted {
			sum.WastedWork += e.Duration()
		}
	}
	sum.CPUBusy = s.BusyTime(platform.CPU)
	sum.CPUIdle = s.IdleTime(platform.CPU)
	sum.GPUBusy = s.BusyTime(platform.GPU)
	sum.GPUIdle = s.IdleTime(platform.GPU)
	sum.CPUEquivAccel = finiteOrZero(s.EquivalentAccel(in, platform.CPU))
	sum.GPUEquivAccel = finiteOrZero(s.EquivalentAccel(in, platform.GPU))
	return sum
}

func finiteOrZero(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// RunLog is a bounded, concurrency-safe ring of recent run summaries
// backing the /runs endpoint.
type RunLog struct {
	mu   sync.Mutex
	buf  []RunSummary
	next int
	full bool
}

// NewRunLog returns a ring keeping the last capacity summaries.
func NewRunLog(capacity int) *RunLog {
	if capacity < 1 {
		capacity = 1
	}
	return &RunLog{buf: make([]RunSummary, capacity)}
}

// Add records a summary, evicting the oldest once the ring is full.
func (l *RunLog) Add(s RunSummary) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf[l.next] = s
	l.next++
	if l.next == len(l.buf) {
		l.next, l.full = 0, true
	}
}

// Recent returns the recorded summaries, newest first.
func (l *RunLog) Recent() []RunSummary {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.next
	if l.full {
		n = len(l.buf)
	}
	out := make([]RunSummary, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, l.buf[(l.next-i+len(l.buf))%len(l.buf)])
	}
	return out
}

package obs

import (
	"context"
	"log/slog"
	"strings"
	"testing"
)

func TestNewLoggerLevels(t *testing.T) {
	t.Setenv(LogEnv, "")
	var b strings.Builder
	l := NewLogger(&b, false)
	l.Debug("hidden")
	l.Info("shown", "k", "v")
	out := b.String()
	if strings.Contains(out, "hidden") {
		t.Error("debug shown at info level")
	}
	if !strings.Contains(out, "shown") || !strings.Contains(out, "k=v") {
		t.Errorf("info record missing: %q", out)
	}

	b.Reset()
	NewLogger(&b, true).Debug("verbose-on")
	if !strings.Contains(b.String(), "verbose-on") {
		t.Error("verbose flag did not enable debug")
	}
}

func TestNewLoggerEnv(t *testing.T) {
	t.Setenv(LogEnv, "json,debug")
	var b strings.Builder
	l := NewLogger(&b, false)
	l.Debug("dbg", "n", 1)
	out := b.String()
	if !strings.Contains(out, `"msg":"dbg"`) {
		t.Errorf("HP_LOG=json,debug not honored: %q", out)
	}

	t.Setenv(LogEnv, "error")
	if !NewLogger(nil, false).Enabled(context.Background(), slog.LevelError) {
		t.Error("error level not enabled")
	}
	if NewLogger(nil, true).Enabled(context.Background(), slog.LevelInfo) {
		t.Error("HP_LOG=error should override -v")
	}
}

// Package obs is the observability layer of the repository: live event
// hooks emitted by the scheduling loops (package core), a dependency-free
// metrics registry with Prometheus text exposition, per-run summaries in
// the paper's vocabulary (makespan, per-class idle time, spoliation wasted
// work, equivalent acceleration), a live event timeline that bridges to
// the Perfetto trace exporter, and the structured run logger shared by the
// commands.
//
// The paper's entire analysis (Sections 4-6) is phrased in observable
// schedule quantities; this package makes them visible *while a run
// unfolds* instead of post hoc from a finished sim.Schedule. Runtime
// systems in the StarPU family ship the same kind of built-in counters
// because scheduler pathologies (spoliation storms, queue starvation) are
// invisible in end-state makespans.
package obs

import "repro/internal/platform"

// Observer receives scheduling events at each simulated-clock decision
// point of a run. Implementations must be cheap: the hooks fire inside the
// scheduler's hot loop. All emission sites in package core are guarded so
// that a nil Observer costs nothing — zero additional allocations and no
// dynamic calls (see BenchmarkScheduleIndependent at the repository root).
//
// Events arrive in simulated-time order within one run. Implementations
// used across concurrent runs (e.g. SchedulerMetrics behind a server)
// must be safe for concurrent use.
type Observer interface {
	// TaskQueued fires when a task enters the ready queue (initial fill,
	// dependency release, or online arrival). depth is the queue length
	// including the new task.
	TaskQueued(now float64, t platform.Task, depth int)
	// TaskStarted fires when a worker begins executing a task. estEnd is
	// the completion time the scheduler believes in (nominal processing
	// time); spoliation marks restarts caused by a spoliation.
	TaskStarted(now float64, worker int, kind platform.Kind, t platform.Task, estEnd float64, spoliation bool)
	// TaskSpoliated fires when an idle worker aborts a run on the other
	// resource class: the victim run on worker victim is killed and the
	// task restarts on worker thief. wasted is the simulated time the
	// victim had already spent (all of it lost).
	TaskSpoliated(now float64, victim, thief int, t platform.Task, wasted float64)
	// TaskCompleted fires when a run finishes successfully. start is the
	// run's start time, so now-start is the actual execution duration.
	TaskCompleted(now float64, worker int, kind platform.Kind, t platform.Task, start float64)
	// WorkerIdle fires for each worker left idle after a scheduling round
	// while unfinished tasks remain (the quantity the paper's idle-time
	// analysis bounds).
	WorkerIdle(now float64, worker int, kind platform.Kind)
	// QueueDepthSample fires once per scheduling round with the ready
	// queue depth after all assignments.
	QueueDepthSample(now float64, depth int)
}

// Nop is an Observer that does nothing. Storing it in an interface does
// not allocate (empty struct), so it is the reference point for the
// zero-overhead guarantee of the emission sites.
type Nop struct{}

func (Nop) TaskQueued(float64, platform.Task, int)                                {}
func (Nop) TaskStarted(float64, int, platform.Kind, platform.Task, float64, bool) {}
func (Nop) TaskSpoliated(float64, int, int, platform.Task, float64)               {}
func (Nop) TaskCompleted(float64, int, platform.Kind, platform.Task, float64)     {}
func (Nop) WorkerIdle(float64, int, platform.Kind)                                {}
func (Nop) QueueDepthSample(float64, int)                                         {}

// multi fans events out to several observers in order.
type multi []Observer

// Multi returns an Observer that forwards every event to each of obs in
// order. Nil entries are skipped; Multi() returns nil so the result can be
// stored directly in core.Options.Observer without defeating the nil
// fast path.
func Multi(obs ...Observer) Observer {
	var out multi
	for _, o := range obs {
		if o != nil {
			out = append(out, o)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}

func (m multi) TaskQueued(now float64, t platform.Task, depth int) {
	for _, o := range m {
		o.TaskQueued(now, t, depth)
	}
}

func (m multi) TaskStarted(now float64, worker int, kind platform.Kind, t platform.Task, estEnd float64, spoliation bool) {
	for _, o := range m {
		o.TaskStarted(now, worker, kind, t, estEnd, spoliation)
	}
}

func (m multi) TaskSpoliated(now float64, victim, thief int, t platform.Task, wasted float64) {
	for _, o := range m {
		o.TaskSpoliated(now, victim, thief, t, wasted)
	}
}

func (m multi) TaskCompleted(now float64, worker int, kind platform.Kind, t platform.Task, start float64) {
	for _, o := range m {
		o.TaskCompleted(now, worker, kind, t, start)
	}
}

func (m multi) WorkerIdle(now float64, worker int, kind platform.Kind) {
	for _, o := range m {
		o.WorkerIdle(now, worker, kind)
	}
}

func (m multi) QueueDepthSample(now float64, depth int) {
	for _, o := range m {
		o.QueueDepthSample(now, depth)
	}
}

package obs

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
)

// HDR-style latency histogram: log-linear bucketing in the spirit of
// HdrHistogram/DDSketch, sized for latency measurements. Values are
// non-negative int64s in whatever unit the caller picks (this repository
// records microseconds); buckets below hdrSubCount have width 1 and above
// it every power of two is split into hdrSubCount linear sub-buckets, so
// the relative quantile error is bounded by 1/hdrSubCount (~3.1%)
// everywhere. Recording is lock-free (a handful of atomics, zero
// allocations — BenchmarkHDRRecord gates this) and two histograms with
// the same layout merge by bucket-wise addition, which commutes, so
// per-worker histograms combine deterministically.

const (
	// hdrSubBits sets the resolution: 2^hdrSubBits linear sub-buckets per
	// power of two, bounding relative error at 2^-hdrSubBits.
	hdrSubBits  = 5
	hdrSubCount = 1 << hdrSubBits
	// hdrMaxValue is the largest trackable value; larger records clamp.
	// At microsecond resolution it is ~146 thousand years of latency.
	hdrMaxValue = int64(1) << 62
)

// hdrNumBuckets is the fixed counter-array size covering [0, hdrMaxValue].
var hdrNumBuckets = hdrBucketIndex(hdrMaxValue) + 1

// hdrBucketIndex maps a value in [0, hdrMaxValue] to its bucket.
func hdrBucketIndex(v int64) int {
	if v < hdrSubCount {
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1
	shift := e - hdrSubBits
	return shift*hdrSubCount + int(v>>uint(shift))
}

// HDRBucketBounds returns the inclusive value range [lo, hi] of bucket i:
// every value recorded into bucket i satisfies lo <= v <= hi.
func HDRBucketBounds(i int) (lo, hi int64) {
	if i < hdrSubCount {
		return int64(i), int64(i)
	}
	shift := i/hdrSubCount - 1
	sub := int64(i - shift*hdrSubCount) // in [hdrSubCount, 2*hdrSubCount)
	lo = sub << uint(shift)
	hi = (sub+1)<<uint(shift) - 1
	return lo, hi
}

// HDRHistogram is a mergeable log-linear latency histogram with
// per-bucket exemplars. The zero value is not usable; call NewHDR. All
// methods are safe for concurrent use; Record and RecordExemplar are
// lock-free and allocation-free.
type HDRHistogram struct {
	counts []atomic.Uint64
	// Exemplars: per bucket, the ID (e.g. a trace ID; 0 = none) and value
	// of one representative observation. The two words are not written
	// atomically together — an exemplar is a debugging pointer, not an
	// accounting quantity — but each word is itself race-free.
	exIDs  []atomic.Uint64
	exVals []atomic.Int64
	count  atomic.Uint64
	sum    atomic.Int64
	max    atomic.Int64
	min    atomic.Int64
}

// NewHDR returns an empty histogram. The bucket layout is fixed (see the
// package constants), so any two HDRHistograms are merge-compatible.
func NewHDR() *HDRHistogram {
	h := &HDRHistogram{
		counts: make([]atomic.Uint64, hdrNumBuckets),
		exIDs:  make([]atomic.Uint64, hdrNumBuckets),
		exVals: make([]atomic.Int64, hdrNumBuckets),
	}
	h.min.Store(math.MaxInt64)
	return h
}

// clampHDR folds out-of-range values into the trackable range.
func clampHDR(v int64) int64 {
	if v < 0 {
		return 0
	}
	if v > hdrMaxValue {
		return hdrMaxValue
	}
	return v
}

// Record adds one observation.
//
//hplint:hotpath
func (h *HDRHistogram) Record(v int64) {
	v = clampHDR(v)
	h.counts[hdrBucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
	for {
		old := h.min.Load()
		if v >= old || h.min.CompareAndSwap(old, v) {
			break
		}
	}
}

// RecordExemplar adds one observation and, when id is non-zero, installs
// it as the bucket's exemplar. Later exemplars overwrite earlier ones, so
// each bucket points at a recent representative — following the exemplar
// of a tail bucket leads to a live trace of a slow request.
//
//hplint:hotpath
func (h *HDRHistogram) RecordExemplar(v int64, id uint64) {
	h.Record(v)
	if id == 0 {
		return
	}
	i := hdrBucketIndex(clampHDR(v))
	h.exVals[i].Store(clampHDR(v))
	h.exIDs[i].Store(id)
}

// Count returns the number of observations.
func (h *HDRHistogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all recorded (clamped) values.
func (h *HDRHistogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest recorded value (0 when empty).
func (h *HDRHistogram) Max() int64 {
	if h.count.Load() == 0 {
		return 0
	}
	return h.max.Load()
}

// Min returns the smallest recorded value (0 when empty).
func (h *HDRHistogram) Min() int64 {
	if h.count.Load() == 0 {
		return 0
	}
	return h.min.Load()
}

// Mean returns the arithmetic mean of recorded values (0 when empty).
func (h *HDRHistogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns an estimate of the p-quantile (p in [0, 1]): the
// upper bound of the bucket holding the observation of rank ceil(p*n),
// clamped to the recorded maximum. The estimate is deterministic given
// the recorded multiset and within one bucket width (<= 1/32 relative
// error) of the true order statistic; it is non-decreasing in p.
func (h *HDRHistogram) Quantile(p float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := uint64(math.Ceil(p * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			_, hi := HDRBucketBounds(i)
			if m := h.max.Load(); hi > m {
				hi = m
			}
			return hi
		}
	}
	return h.Max()
}

// Merge adds o's observations into h. Merging is commutative and
// associative in every count-derived reading (Count, Sum, Quantile,
// Min/Max); the per-bucket exemplar is resolved commutatively too, by
// keeping the exemplar with the larger value (ties to the larger ID).
// Merge must not run concurrently with writes to o.
func (h *HDRHistogram) Merge(o *HDRHistogram) {
	for i := range o.counts {
		c := o.counts[i].Load()
		if c == 0 {
			continue
		}
		h.counts[i].Add(c)
		oid := o.exIDs[i].Load()
		if oid == 0 {
			continue
		}
		ov := o.exVals[i].Load()
		hid, hv := h.exIDs[i].Load(), h.exVals[i].Load()
		if hid == 0 || ov > hv || (ov == hv && oid > hid) {
			h.exVals[i].Store(ov)
			h.exIDs[i].Store(oid)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	if om := o.max.Load(); o.count.Load() > 0 {
		for {
			old := h.max.Load()
			if om <= old || h.max.CompareAndSwap(old, om) {
				break
			}
		}
		omin := o.min.Load()
		for {
			old := h.min.Load()
			if omin >= old || h.min.CompareAndSwap(old, omin) {
				break
			}
		}
	}
}

// HDRBucket is one non-empty bucket in a snapshot.
type HDRBucket struct {
	// Lo and Hi bound the values recorded in the bucket (inclusive).
	Lo, Hi int64
	// Count is the bucket's own count; Cum is cumulative including it.
	Count, Cum uint64
	// ExemplarID/ExemplarValue identify one representative observation
	// (ID 0 = no exemplar recorded).
	ExemplarID    uint64
	ExemplarValue int64
}

// NonEmptyBuckets snapshots the occupied buckets in increasing value
// order, with cumulative counts — the exposition shape.
func (h *HDRHistogram) NonEmptyBuckets() []HDRBucket {
	var out []HDRBucket
	var cum uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		lo, hi := HDRBucketBounds(i)
		out = append(out, HDRBucket{
			Lo: lo, Hi: hi, Count: c, Cum: cum,
			ExemplarID: h.exIDs[i].Load(), ExemplarValue: h.exVals[i].Load(),
		})
	}
	return out
}

// HDRVec is a family of HDRHistograms keyed by the value of one label.
type HDRVec struct {
	label string
	mu    sync.RWMutex
	kids  map[string]*HDRHistogram
}

// With returns (creating if needed) the histogram for the label value.
func (v *HDRVec) With(value string) *HDRHistogram {
	v.mu.RLock()
	h := v.kids[value]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h = v.kids[value]; h == nil {
		h = NewHDR()
		v.kids[value] = h
	}
	return h
}

// HDR registers (or returns the existing) HDR histogram with the name.
func (r *Registry) HDR(name, help string) *HDRHistogram {
	return r.register(name, help, "histogram", func() any { return NewHDR() }).(*HDRHistogram)
}

// HDRVec registers (or returns the existing) HDR histogram family keyed
// by the given label name.
func (r *Registry) HDRVec(name, help, label string) *HDRVec {
	return r.register(name, help, "histogram", func() any {
		return &HDRVec{label: label, kids: map[string]*HDRHistogram{}}
	}).(*HDRVec)
}

package obs

import (
	"math"
	"strings"
	"testing"
)

func renderRegistry(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return b.String()
}

func parseText(t *testing.T, text string) *Exposition {
	t.Helper()
	exp, err := ParseExposition(text)
	if err != nil {
		t.Fatalf("ParseExposition: %v\n%s", err, text)
	}
	return exp
}

func TestParseExpositionRoundTripsRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("hp_m_requests_total", "requests").Add(7)
	r.Gauge("hp_m_inflight", "inflight").Set(3)
	r.CounterVec("hp_m_by_code_total", "by code", "code").With("200").Add(5)
	r.CounterVec("hp_m_by_code_total", "by code", "code").With("500").Add(1)
	h := r.Histogram("hp_m_seconds", "latency", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(2)
	hdr := r.HDR("hp_m_us", "hdr latency")
	hdr.Record(3)
	hdr.Record(5000)

	text := renderRegistry(t, r)
	exp := parseText(t, text)
	if got := exp.Value("hp_m_requests_total"); got != 7 {
		t.Fatalf("counter = %v", got)
	}
	if got := exp.Value("hp_m_inflight"); got != 3 {
		t.Fatalf("gauge = %v", got)
	}
	if got := exp.Value("hp_m_by_code_total"); got != 6 {
		t.Fatalf("labelled counter sum = %v", got)
	}
	bks := exp.Histogram("hp_m_seconds")
	if len(bks) == 0 {
		t.Fatalf("no buckets parsed")
	}
	last := bks[len(bks)-1]
	if !math.IsInf(last.Le, 1) || last.Cum != 2 {
		t.Fatalf("last bucket = %+v", last)
	}
	// Rendering the parse output and re-parsing must be a fixed point.
	var out strings.Builder
	if err := exp.Render(&out); err != nil {
		t.Fatalf("Render: %v", err)
	}
	exp2 := parseText(t, out.String())
	if exp2.Value("hp_m_by_code_total") != 6 || exp2.Value("hp_m_requests_total") != 7 {
		t.Fatalf("render/reparse changed values:\n%s", out.String())
	}
	var out2 strings.Builder
	if err := exp2.Render(&out2); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if out.String() != out2.String() {
		t.Fatalf("Render is not a fixed point:\n--- first\n%s\n--- second\n%s", out.String(), out2.String())
	}
}

func TestMergeSumsPlainFamilies(t *testing.T) {
	a := parseText(t, "# HELP hp_x_total x\n# TYPE hp_x_total counter\nhp_x_total 2\nhp_l_total{code=\"200\"} 4\n")
	b := parseText(t, "hp_x_total 3\nhp_l_total{code=\"200\"} 1\nhp_l_total{code=\"500\"} 9\n")
	m := MergeExpositions(a, b, nil)
	if got := m.Value("hp_x_total"); got != 5 {
		t.Fatalf("merged bare counter = %v", got)
	}
	if got := m.Value("hp_l_total"); got != 14 {
		t.Fatalf("merged labelled counter = %v", got)
	}
	var out strings.Builder
	if err := m.Render(&out); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !strings.Contains(out.String(), "# TYPE hp_x_total counter") {
		t.Fatalf("merged render lost TYPE line:\n%s", out.String())
	}
	if !strings.Contains(out.String(), `hp_l_total{code="200"} 5`) {
		t.Fatalf("merged render wrong:\n%s", out.String())
	}
}

// TestMergeHDRHistogramsExact is the load-bearing property for the
// router's merged /metrics: merging two HDR expositions at the union of
// their emitted bucket boundaries must equal recording every observation
// into one histogram, even when the two sources occupy disjoint buckets.
func TestMergeHDRHistogramsExact(t *testing.T) {
	ra, rb, rboth := NewRegistry(), NewRegistry(), NewRegistry()
	ha := ra.HDR("hp_lat_us", "lat")
	hb := rb.HDR("hp_lat_us", "lat")
	hboth := rboth.HDR("hp_lat_us", "lat")
	// Disjoint ranges: a records small values, b records large ones.
	for i := int64(1); i <= 100; i++ {
		ha.Record(i)
		hboth.Record(i)
	}
	for i := int64(0); i < 50; i++ {
		v := 100000 + i*977
		hb.Record(v)
		hboth.Record(v)
	}
	merged := MergeExpositions(
		parseText(t, renderRegistry(t, ra)),
		parseText(t, renderRegistry(t, rb)),
	)
	want := parseText(t, renderRegistry(t, rboth))
	gotB, wantB := merged.Histogram("hp_lat_us"), want.Histogram("hp_lat_us")
	if len(gotB) == 0 {
		t.Fatalf("merged histogram empty")
	}
	// Every boundary the single histogram emits must carry the identical
	// cumulative count in the merge.
	for _, wb := range wantB {
		found := false
		for _, gb := range gotB {
			if gb.Le == wb.Le {
				if gb.Cum != wb.Cum {
					t.Fatalf("cum at le=%v: merged %v, direct %v", wb.Le, gb.Cum, wb.Cum)
				}
				found = true
				break
			}
		}
		if !found && wb.Cum != 0 {
			t.Fatalf("bound %v missing from merge", wb.Le)
		}
	}
	if last := gotB[len(gotB)-1]; !math.IsInf(last.Le, 1) || last.Cum != 150 {
		t.Fatalf("merged +Inf bucket = %+v, want cum 150", last)
	}
}

func TestMergeDropsExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.HDR("hp_e_us", "lat")
	h.RecordExemplar(42, 0xabcdef)
	text := renderRegistry(t, r)
	if !strings.Contains(text, "# {") {
		t.Fatalf("precondition: registry did not render an exemplar:\n%s", text)
	}
	exp := parseText(t, text)
	var out strings.Builder
	if err := exp.Render(&out); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if strings.Contains(out.String(), "# {") {
		t.Fatalf("exemplar survived the merge path:\n%s", out.String())
	}
	if got := exp.Histogram("hp_e_us"); len(got) == 0 || got[len(got)-1].Cum != 1 {
		t.Fatalf("exemplar stripping lost the sample: %+v", got)
	}
}

func TestMergeHistogramSumCount(t *testing.T) {
	ra, rb := NewRegistry(), NewRegistry()
	ra.Histogram("hp_s_seconds", "s", []float64{1, 5}).Observe(0.5)
	rb.Histogram("hp_s_seconds", "s", []float64{1, 5}).Observe(3)
	m := MergeExpositions(parseText(t, renderRegistry(t, ra)), parseText(t, renderRegistry(t, rb)))
	var out strings.Builder
	if err := m.Render(&out); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !strings.Contains(out.String(), "hp_s_seconds_count 2") {
		t.Fatalf("merged _count wrong:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "hp_s_seconds_sum 3.5") {
		t.Fatalf("merged _sum wrong:\n%s", out.String())
	}
	if !strings.Contains(out.String(), `hp_s_seconds_bucket{le="+Inf"} 2`) {
		t.Fatalf("merged +Inf bucket wrong:\n%s", out.String())
	}
}

func TestParseExpositionErrors(t *testing.T) {
	for _, bad := range []string{
		"hp_only_name",
		"hp_x not-a-number",
		"hp_b{le=\"oops\" 3",
	} {
		if _, err := ParseExposition(bad); err == nil {
			t.Fatalf("ParseExposition(%q) accepted garbage", bad)
		}
	}
	// Unknown comments and blank lines are fine.
	exp := parseText(t, "\n# EOF\n# HELP hp_ok_total fine\n# TYPE hp_ok_total counter\nhp_ok_total 1\n\n")
	if exp.Value("hp_ok_total") != 1 {
		t.Fatalf("tolerant parse failed")
	}
}

func TestExpositionAccessorsAbsent(t *testing.T) {
	exp := parseText(t, "")
	if exp.Value("nope") != 0 {
		t.Fatalf("absent Value != 0")
	}
	if exp.Histogram("nope") != nil {
		t.Fatalf("absent Histogram != nil")
	}
	if m := MergeExpositions(); m == nil {
		t.Fatalf("empty merge returned nil")
	}
}

package obs

import (
	"encoding/json"
	"testing"

	"repro/internal/platform"
	"repro/internal/sim"
)

// record counts events for Multi/fan-out tests.
type record struct{ queued, started, spoliated, completed, idle, depth int }

func (r *record) TaskQueued(float64, platform.Task, int) { r.queued++ }
func (r *record) TaskStarted(float64, int, platform.Kind, platform.Task, float64, bool) {
	r.started++
}
func (r *record) TaskSpoliated(float64, int, int, platform.Task, float64) { r.spoliated++ }
func (r *record) TaskCompleted(float64, int, platform.Kind, platform.Task, float64) {
	r.completed++
}
func (r *record) WorkerIdle(float64, int, platform.Kind) { r.idle++ }
func (r *record) QueueDepthSample(float64, int)          { r.depth++ }

func TestMulti(t *testing.T) {
	if Multi() != nil {
		t.Error("Multi() should be nil")
	}
	if Multi(nil, nil) != nil {
		t.Error("Multi(nil, nil) should be nil")
	}
	a, b := &record{}, &record{}
	if got := Multi(a, nil); got != Observer(a) {
		t.Error("Multi with one observer should return it directly")
	}
	m := Multi(a, b)
	m.TaskQueued(0, platform.Task{}, 1)
	m.TaskStarted(0, 0, platform.CPU, platform.Task{}, 1, false)
	m.TaskSpoliated(1, 0, 1, platform.Task{}, 1)
	m.TaskCompleted(2, 0, platform.CPU, platform.Task{}, 0)
	m.WorkerIdle(2, 1, platform.GPU)
	m.QueueDepthSample(2, 0)
	for _, r := range []*record{a, b} {
		if r.queued != 1 || r.started != 1 || r.spoliated != 1 || r.completed != 1 || r.idle != 1 || r.depth != 1 {
			t.Errorf("fan-out missed events: %+v", *r)
		}
	}
}

func TestSchedulerMetricsObserver(t *testing.T) {
	r := NewRegistry()
	m := NewSchedulerMetrics(r)
	task := platform.Task{ID: 3, CPUTime: 10, GPUTime: 2}

	m.TaskQueued(0, task, 1)
	m.TaskStarted(4, 0, platform.GPU, task, 6, false)
	m.TaskCompleted(6, 0, platform.GPU, task, 4)
	m.TaskSpoliated(6, 1, 0, task, 2.5)
	m.WorkerIdle(6, 1, platform.CPU)
	m.QueueDepthSample(6, 0)

	if got := m.TasksCompleted.Value(); got != 1 {
		t.Errorf("completed = %v", got)
	}
	if got := m.Spoliations.Value(); got != 1 {
		t.Errorf("spoliations = %v", got)
	}
	if got := m.WastedWork.Value(); got != 2.5 {
		t.Errorf("wasted = %v", got)
	}
	if got := m.QueueDepth.Value(); got != 0 {
		t.Errorf("queue depth = %v", got)
	}
	if got := m.QueueWait.Sum(); got != 4 {
		t.Errorf("queue wait sum = %v, want 4", got)
	}
	if got := m.TaskDuration.Sum(); got != 2 {
		t.Errorf("duration sum = %v, want 2", got)
	}
	// A spoliation restart must not record a queue wait.
	m.TaskQueued(10, task, 1)
	m.TaskStarted(12, 0, platform.GPU, task, 14, true)
	if got := m.QueueWait.Count(); got != 1 {
		t.Errorf("restart recorded a queue wait (count=%d)", got)
	}
}

func TestSummarize(t *testing.T) {
	pl := platform.NewPlatform(1, 1)
	in := platform.Instance{
		{ID: 0, CPUTime: 10, GPUTime: 2},
		{ID: 1, CPUTime: 4, GPUTime: 4},
	}
	s := &sim.Schedule{Platform: pl, Entries: []sim.Entry{
		{TaskID: 0, Worker: 1, Kind: platform.GPU, Start: 0, End: 2},
		{TaskID: 1, Worker: 0, Kind: platform.CPU, Start: 0, End: 3, Aborted: true},
		{TaskID: 1, Worker: 1, Kind: platform.GPU, Start: 3, End: 7, Spoliation: true},
	}}
	sum := Summarize(s, in, 5)
	if sum.Makespan != 7 || sum.Ratio != 7.0/5 {
		t.Errorf("makespan/ratio = %v/%v", sum.Makespan, sum.Ratio)
	}
	if sum.Spoliations != 1 || sum.WastedWork != 3 {
		t.Errorf("spoliations/wasted = %d/%v", sum.Spoliations, sum.WastedWork)
	}
	if sum.GPUBusy != 6 || sum.GPUIdle != 1 {
		t.Errorf("gpu busy/idle = %v/%v", sum.GPUBusy, sum.GPUIdle)
	}
	// The CPU executed nothing successfully: its equivalent acceleration is
	// NaN in the paper's definition and must sanitize to 0 for JSON.
	if sum.CPUEquivAccel != 0 {
		t.Errorf("cpu equiv accel = %v, want 0", sum.CPUEquivAccel)
	}
	if _, err := json.Marshal(sum); err != nil {
		t.Errorf("summary does not marshal: %v", err)
	}
}

func TestRunLogRing(t *testing.T) {
	l := NewRunLog(3)
	if got := l.Recent(); len(got) != 0 {
		t.Errorf("empty log returned %d entries", len(got))
	}
	for i := 1; i <= 5; i++ {
		l.Add(RunSummary{Tasks: i})
	}
	got := l.Recent()
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	for i, want := range []int{5, 4, 3} {
		if got[i].Tasks != want {
			t.Errorf("recent[%d].Tasks = %d, want %d", i, got[i].Tasks, want)
		}
	}
}

func TestTimelineSchedule(t *testing.T) {
	pl := platform.NewPlatform(1, 1)
	tl := NewTimeline()
	a := platform.Task{ID: 0, CPUTime: 10, GPUTime: 1}
	b := platform.Task{ID: 1, CPUTime: 10, GPUTime: 2}

	tl.TaskQueued(0, a, 1)
	tl.TaskQueued(0, b, 2)
	tl.TaskStarted(0, 1, platform.GPU, a, 1, false)
	tl.TaskStarted(0, 0, platform.CPU, b, 10, false)
	tl.TaskCompleted(1, 1, platform.GPU, a, 0)
	// GPU spoliates b from the CPU and restarts it.
	tl.TaskSpoliated(1, 0, 1, b, 1)
	tl.TaskStarted(1, 1, platform.GPU, b, 3, true)
	tl.TaskCompleted(3, 1, platform.GPU, b, 1)
	tl.QueueDepthSample(3, 0)

	s := tl.Schedule(pl)
	if len(s.Entries) != 3 {
		t.Fatalf("entries = %d, want 3", len(s.Entries))
	}
	if s.SpoliationCount() != 1 {
		t.Errorf("spoliations = %d, want 1", s.SpoliationCount())
	}
	if s.Makespan() != 3 {
		t.Errorf("makespan = %v, want 3", s.Makespan())
	}
	if err := s.Validate(platform.Instance{a, b}, nil); err != nil {
		t.Errorf("reconstructed schedule invalid: %v", err)
	}
	if tl.Len() != 9 {
		t.Errorf("timeline len = %d, want 9", tl.Len())
	}

	// An open run at snapshot time is closed and marked aborted.
	tl2 := NewTimeline()
	tl2.TaskStarted(0, 0, platform.CPU, a, 10, false)
	tl2.QueueDepthSample(4, 0)
	s2 := tl2.Schedule(pl)
	if len(s2.Entries) != 1 || !s2.Entries[0].Aborted || s2.Entries[0].End != 4 {
		t.Errorf("open run not closed as aborted: %+v", s2.Entries)
	}
}

func TestEventKindString(t *testing.T) {
	names := map[EventKind]string{
		EventQueued: "queued", EventStarted: "started", EventSpoliated: "spoliated",
		EventCompleted: "completed", EventIdle: "idle", EventQueueDepth: "queue-depth",
		EventKind(99): "unknown",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

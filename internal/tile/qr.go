package tile

import (
	"fmt"
	"math"

	"repro/internal/cancel"
)

// Tiled QR factorization (flat tree, compact-WY representation), the third
// real factorization of the substrate. Conventions per tile (row-major,
// b x b):
//
//	GEQRT(a, t):   QR of one tile. R lands in the upper triangle of a
//	               (incl. diagonal), the Householder vectors V in the
//	               strict lower triangle (unit diagonal implicit), and the
//	               T factor of the compact-WY form Q = I - V*T*V^T in t.
//	LARFB(c, v, t): c <- Q^T c for the GEQRT factors (v, t).
//	TSQRT(r, a, t): QR of the 2b x b stack [R; A] with R upper triangular
//	               (updated in place) and A full; V's bottom block lands
//	               in a, T in t. The top block of each Householder vector
//	               is the identity column e_j.
//	TSMQR(cTop, cBot, v, t): applies the TSQRT reflectors to the stacked
//	               pair [C_top; C_bot].
//
// The numerical test uses the identity A^T A = R^T R (Q orthonormal), so
// no explicit Q assembly is needed.

// GEQRT factors tile a in place and writes the T factor (b x b, upper
// triangular) into t.
func GEQRT(a, t []float64, b int) { GEQRTCancel(a, t, b, nil) }

// GEQRTCancel is GEQRT with a cancellation poll per column block.
func GEQRTCancel(a, t []float64, b int, flag *cancel.Flag) bool {
	for i := range t {
		t[i] = 0
	}
	for j := 0; j < b; j++ {
		if j%blockDim == 0 && flag.Cancelled() {
			return false
		}
		// Householder vector for column j.
		alpha := a[j*b+j]
		var normx2 float64
		for i := j + 1; i < b; i++ {
			normx2 += a[i*b+j] * a[i*b+j]
		}
		var tau float64
		if normx2 == 0 {
			// Column already reduced; reflector is the identity.
			t[j*b+j] = 0
			continue
		}
		beta := -math.Copysign(math.Sqrt(alpha*alpha+normx2), alpha)
		tau = (beta - alpha) / beta
		scale := 1 / (alpha - beta)
		for i := j + 1; i < b; i++ {
			a[i*b+j] *= scale
		}
		a[j*b+j] = beta
		// Apply (I - tau v v^T) to the remaining columns.
		for k := j + 1; k < b; k++ {
			w := a[j*b+k]
			for i := j + 1; i < b; i++ {
				w += a[i*b+j] * a[i*b+k]
			}
			w *= tau
			a[j*b+k] -= w
			for i := j + 1; i < b; i++ {
				a[i*b+k] -= a[i*b+j] * w
			}
		}
		// T factor column: T[0:j, j] = -tau * T[0:j, 0:j] * (V^T v_j).
		t[j*b+j] = tau
		if j > 0 {
			z := make([]float64, j)
			for c := 0; c < j; c++ {
				// v^(c)T v^(j): v^(c) has 1 at row c and entries below.
				s := a[j*b+c] // v^(c)[j] * v^(j)[j] with v^(j)[j] = 1
				for i := j + 1; i < b; i++ {
					s += a[i*b+c] * a[i*b+j]
				}
				z[c] = s
			}
			for r := 0; r < j; r++ {
				var s float64
				for c := r; c < j; c++ {
					s += t[r*b+c] * z[c]
				}
				t[r*b+j] = -tau * s
			}
		}
	}
	return true
}

// LARFB applies Q^T = I - V T^T V^T (GEQRT factors v, t) to tile c.
func LARFB(c, v, t []float64, b int) { LARFBCancel(c, v, t, b, nil) }

// LARFBCancel is LARFB with a cancellation poll per row block of the
// intermediate W computation.
func LARFBCancel(c, v, t []float64, b int, flag *cancel.Flag) bool {
	// W = V^T C, with V unit lower triangular (strict lower of v).
	w := make([]float64, b*b)
	for j := 0; j < b; j++ {
		if j%blockDim == 0 && flag.Cancelled() {
			return false
		}
		for k := 0; k < b; k++ {
			s := c[j*b+k]
			for i := j + 1; i < b; i++ {
				s += v[i*b+j] * c[i*b+k]
			}
			w[j*b+k] = s
		}
	}
	// W = T^T W (T upper triangular => T^T lower).
	for j := b - 1; j >= 0; j-- {
		for k := 0; k < b; k++ {
			var s float64
			for r := 0; r <= j; r++ {
				s += t[r*b+j] * w[r*b+k]
			}
			w[j*b+k] = s
		}
	}
	// C -= V W.
	for i := 0; i < b; i++ {
		for k := 0; k < b; k++ {
			s := w[i*b+k] // unit diagonal contribution
			for j := 0; j < i; j++ {
				s += v[i*b+j] * w[j*b+k]
			}
			c[i*b+k] -= s
		}
	}
	return true
}

// TSQRT factors the stack [R; A] in place: r (upper triangular) is
// updated, a receives the bottom blocks of the Householder vectors, t the
// T factor.
func TSQRT(r, a, t []float64, b int) { TSQRTCancel(r, a, t, b, nil) }

// TSQRTCancel is TSQRT with a cancellation poll per column block.
func TSQRTCancel(r, a, t []float64, b int, flag *cancel.Flag) bool {
	for i := range t {
		t[i] = 0
	}
	for j := 0; j < b; j++ {
		if j%blockDim == 0 && flag.Cancelled() {
			return false
		}
		alpha := r[j*b+j]
		var normx2 float64
		for i := 0; i < b; i++ {
			normx2 += a[i*b+j] * a[i*b+j]
		}
		if normx2 == 0 {
			t[j*b+j] = 0
			continue
		}
		beta := -math.Copysign(math.Sqrt(alpha*alpha+normx2), alpha)
		tau := (beta - alpha) / beta
		scale := 1 / (alpha - beta)
		for i := 0; i < b; i++ {
			a[i*b+j] *= scale
		}
		r[j*b+j] = beta
		// Apply to remaining columns: top part of v is e_j.
		for k := j + 1; k < b; k++ {
			w := r[j*b+k]
			for i := 0; i < b; i++ {
				w += a[i*b+j] * a[i*b+k]
			}
			w *= tau
			r[j*b+k] -= w
			for i := 0; i < b; i++ {
				a[i*b+k] -= a[i*b+j] * w
			}
		}
		t[j*b+j] = tau
		if j > 0 {
			z := make([]float64, j)
			for c := 0; c < j; c++ {
				// Tops e_c and e_j are orthogonal for c != j.
				var s float64
				for i := 0; i < b; i++ {
					s += a[i*b+c] * a[i*b+j]
				}
				z[c] = s
			}
			for rr := 0; rr < j; rr++ {
				var s float64
				for c := rr; c < j; c++ {
					s += t[rr*b+c] * z[c]
				}
				t[rr*b+j] = -tau * s
			}
		}
	}
	return true
}

// TSMQR applies the TSQRT reflectors (v bottom block, t) to the stacked
// pair [C_top; C_bot].
func TSMQR(cTop, cBot, v, t []float64, b int) { TSMQRCancel(cTop, cBot, v, t, b, nil) }

// TSMQRCancel is TSMQR with a cancellation poll per row block of the
// intermediate W computation.
func TSMQRCancel(cTop, cBot, v, t []float64, b int, flag *cancel.Flag) bool {
	// W = C_top + V^T C_bot.
	w := make([]float64, b*b)
	for j := 0; j < b; j++ {
		if j%blockDim == 0 && flag.Cancelled() {
			return false
		}
		for k := 0; k < b; k++ {
			s := cTop[j*b+k]
			for i := 0; i < b; i++ {
				s += v[i*b+j] * cBot[i*b+k]
			}
			w[j*b+k] = s
		}
	}
	// W = T^T W.
	for j := b - 1; j >= 0; j-- {
		for k := 0; k < b; k++ {
			var s float64
			for r := 0; r <= j; r++ {
				s += t[r*b+j] * w[r*b+k]
			}
			w[j*b+k] = s
		}
	}
	// C_top -= W; C_bot -= V W.
	for i := 0; i < b; i++ {
		for k := 0; k < b; k++ {
			cTop[i*b+k] -= w[i*b+k]
		}
	}
	for i := 0; i < b; i++ {
		for k := 0; k < b; k++ {
			var s float64
			for j := 0; j < b; j++ {
				s += v[i*b+j] * w[j*b+k]
			}
			cBot[i*b+k] -= s
		}
	}
	return true
}

// QRTiled factors the tiled matrix in place with the flat-tree tiled QR.
// After the call, the block upper triangle holds R and the lower parts
// hold the Householder blocks. It returns nothing extra; use QRExtractR
// for the triangular factor.
func QRTiled(td *Tiled) error {
	nt, b := td.NT, td.B
	t1 := make([]float64, b*b)
	t2 := make([]float64, b*b)
	for k := 0; k < nt; k++ {
		GEQRT(td.Tile(k, k), t1, b)
		for j := k + 1; j < nt; j++ {
			LARFB(td.Tile(k, j), td.Tile(k, k), t1, b)
		}
		for i := k + 1; i < nt; i++ {
			TSQRT(td.Tile(k, k), td.Tile(i, k), t2, b)
			for j := k + 1; j < nt; j++ {
				TSMQR(td.Tile(k, j), td.Tile(i, j), td.Tile(i, k), t2, b)
			}
		}
	}
	return nil
}

// QRExtractR returns the dense upper-triangular R factor of a QRTiled
// result.
func QRExtractR(td *Tiled) *Matrix {
	n := td.NT * td.B
	m := td.Assemble()
	r := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			r.Set(i, j, m.At(i, j))
		}
	}
	return r
}

// GramDiff returns max |(A^T A - R^T R)_{ij}|, the orthogonality-free
// correctness measure of a QR factorization.
func GramDiff(a, r *Matrix) (float64, error) {
	if a.Rows != a.Cols || r.Rows != r.Cols || a.Rows != r.Rows {
		return 0, fmt.Errorf("tile: GramDiff shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, r.Rows, r.Cols)
	}
	n := a.Rows
	var worst float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var sa, sr float64
			for k := 0; k < n; k++ {
				sa += a.At(k, i) * a.At(k, j)
				sr += r.At(k, i) * r.At(k, j)
			}
			if d := math.Abs(sa - sr); d > worst {
				worst = d
			}
		}
	}
	return worst, nil
}

package tile

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned by GETRF variants on a (near-)zero pivot.
var ErrSingular = errors.New("tile: matrix is singular to working precision")

// The LU kernels implement the tiled LU factorization without pivoting
// (valid for diagonally dominant matrices, which the generators produce):
//
//	GETRF: A_kk -> L_kk \ U_kk   (unit lower / upper, packed in place)
//	TRSMLower: A_kj -> L_kk^-1 * A_kj      (row panel update)
//	TRSMUpper: A_ik -> A_ik * U_kk^-1      (column panel update)
//	GEMM: A_ij -= A_ik * A_kj   (shared with Cholesky's GEMMNT below)
//
// Note the LU update is C -= A*B (no transpose), unlike the Cholesky
// GEMM's C -= A*B^T, so it gets its own kernel pair.

// GETRF factors the tile in place into unit-lower L and upper U.
func GETRF(a []float64, b int) error {
	for k := 0; k < b; k++ {
		pivot := a[k*b+k]
		if math.Abs(pivot) < 1e-12 {
			return fmt.Errorf("%w (pivot %d = %v)", ErrSingular, k, pivot)
		}
		for i := k + 1; i < b; i++ {
			a[i*b+k] /= pivot
			l := a[i*b+k]
			for j := k + 1; j < b; j++ {
				a[i*b+j] -= l * a[k*b+j]
			}
		}
	}
	return nil
}

// TRSMLower solves L * X = A in place (L unit lower triangular from a
// GETRF'd tile; only its strictly lower part is read).
func TRSMLower(a, l []float64, b int) {
	for i := 1; i < b; i++ {
		for k := 0; k < i; k++ {
			lik := l[i*b+k]
			if lik == 0 {
				continue
			}
			arow := a[k*b : (k+1)*b]
			xrow := a[i*b : (i+1)*b]
			for j := 0; j < b; j++ {
				xrow[j] -= lik * arow[j]
			}
		}
	}
}

// TRSMUpper solves X * U = A in place (U upper triangular from a GETRF'd
// tile, including its diagonal).
func TRSMUpper(a, u []float64, b int) {
	for i := 0; i < b; i++ {
		row := a[i*b : (i+1)*b]
		for j := 0; j < b; j++ {
			s := row[j]
			for k := 0; k < j; k++ {
				s -= row[k] * u[k*b+j]
			}
			row[j] = s / u[j*b+j]
		}
	}
}

// GEMMNT updates c -= a * b2 (no transpose), naive loop order.
func GEMMNT(c, a, b2 []float64, b int) {
	for i := 0; i < b; i++ {
		for j := 0; j < b; j++ {
			s := c[i*b+j]
			for k := 0; k < b; k++ {
				s -= a[i*b+k] * b2[k*b+j]
			}
			c[i*b+j] = s
		}
	}
}

// GEMMNTFast is the blocked variant of GEMMNT (ikj order with row reuse).
func GEMMNTFast(c, a, b2 []float64, b int) {
	for kk := 0; kk < b; kk += blockDim {
		kmax := min(kk+blockDim, b)
		for i := 0; i < b; i++ {
			arow := a[i*b : (i+1)*b]
			crow := c[i*b : (i+1)*b]
			for k := kk; k < kmax; k++ {
				aik := arow[k]
				if aik == 0 {
					continue
				}
				brow := b2[k*b : (k+1)*b]
				for j := 0; j < b; j++ {
					crow[j] -= aik * brow[j]
				}
			}
		}
	}
}

// LUTiled factors the tiled matrix in place with the right-looking tiled
// LU without pivoting; fast selects the blocked GEMM.
func LUTiled(td *Tiled, fast bool) error {
	gemm := GEMMNT
	if fast {
		gemm = GEMMNTFast
	}
	nt, b := td.NT, td.B
	for k := 0; k < nt; k++ {
		if err := GETRF(td.Tile(k, k), b); err != nil {
			return fmt.Errorf("tile: GETRF(%d): %w", k, err)
		}
		for j := k + 1; j < nt; j++ {
			TRSMLower(td.Tile(k, j), td.Tile(k, k), b)
		}
		for i := k + 1; i < nt; i++ {
			TRSMUpper(td.Tile(i, k), td.Tile(k, k), b)
		}
		for i := k + 1; i < nt; i++ {
			for j := k + 1; j < nt; j++ {
				gemm(td.Tile(i, j), td.Tile(i, k), td.Tile(k, j), b)
			}
		}
	}
	return nil
}

// LUDense factors a copy of the matrix with unblocked LU (no pivoting) and
// returns the packed L\U factors — ground truth for tests.
func LUDense(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("tile: matrix %dx%d not square", a.Rows, a.Cols)
	}
	lu := a.Clone()
	if err := GETRF(lu.Data, lu.Rows); err != nil {
		return nil, err
	}
	return lu, nil
}

// LUReconstruct multiplies the packed factors back: returns L*U where L is
// unit lower and U upper, both packed in lu.
func LUReconstruct(lu *Matrix) *Matrix {
	n := lu.Rows
	out := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			kmax := min(i, j)
			var s float64
			for k := 0; k <= kmax; k++ {
				lv := lu.At(i, k)
				if k == i {
					lv = 1
				}
				var uv float64
				if k <= j {
					uv = lu.At(k, j)
				}
				s += lv * uv
			}
			out.Set(i, j, s)
		}
	}
	return out
}

// RandomDiagDominant returns a random diagonally dominant matrix (safe for
// LU without pivoting).
func RandomDiagDominant(n int, rng interface{ Float64() float64 }) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		var sum float64
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := rng.Float64()*2 - 1
			m.Set(i, j, v)
			sum += math.Abs(v)
		}
		m.Set(i, i, sum+1+rng.Float64())
	}
	return m
}

package tile

import (
	"fmt"
	"math/rand"
	"testing"
)

// The kernel benches document the *real* acceleration factors of the two
// implementation classes — the measured analogue of Table 1 for this
// substrate (run with -bench=Kernel to compare ns/op of the pairs).

func benchTiles(b *testing.B, n int) (x, y, c []float64) {
	rng := rand.New(rand.NewSource(1))
	mk := func() []float64 {
		t := make([]float64, n*n)
		for i := range t {
			t[i] = rng.Float64()
		}
		return t
	}
	b.Helper()
	return mk(), mk(), mk()
}

func BenchmarkKernelGEMMRef(b *testing.B) {
	for _, n := range []int{64, 128} {
		b.Run(fmt.Sprintf("b=%d", n), func(b *testing.B) {
			x, y, c := benchTiles(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				GEMM(c, x, y, n)
			}
		})
	}
}

func BenchmarkKernelGEMMFast(b *testing.B) {
	for _, n := range []int{64, 128} {
		b.Run(fmt.Sprintf("b=%d", n), func(b *testing.B) {
			x, y, c := benchTiles(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				GEMMFast(c, x, y, n)
			}
		})
	}
}

func BenchmarkKernelSYRKRef(b *testing.B) {
	x, _, c := benchTiles(b, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SYRK(c, x, 128)
	}
}

func BenchmarkKernelSYRKFast(b *testing.B) {
	x, _, c := benchTiles(b, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SYRKFast(c, x, 128)
	}
}

func BenchmarkKernelPOTRF(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	src := RandomSPD(128, rng)
	work := make([]float64, len(src.Data))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, src.Data)
		if err := POTRF(work, 128); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelGEQRT(b *testing.B) {
	x, _, _ := benchTiles(b, 128)
	t := make([]float64, 128*128)
	work := make([]float64, len(x))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, x)
		GEQRT(work, t, 128)
	}
}

func BenchmarkCholeskyTiled(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	a := RandomSPD(384, rng)
	for _, v := range []Variant{Reference, Fast} {
		b.Run(v.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				td, err := NewTiled(a, 96)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if err := CholeskyTiled(td, v); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

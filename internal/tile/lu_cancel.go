package tile

import (
	"math"

	"repro/internal/cancel"
)

// Cancellable LU kernels (see cancel.go for the contract: false means the
// run was abandoned and the tile contents are unspecified).

// GETRFCancel is GETRF with a cancellation poll per pivot block.
func GETRFCancel(a []float64, b int, flag *cancel.Flag) (bool, error) {
	for k := 0; k < b; k++ {
		if k%blockDim == 0 && flag.Cancelled() {
			return false, nil
		}
		pivot := a[k*b+k]
		if math.Abs(pivot) < 1e-12 {
			return true, ErrSingular
		}
		for i := k + 1; i < b; i++ {
			a[i*b+k] /= pivot
			l := a[i*b+k]
			for j := k + 1; j < b; j++ {
				a[i*b+j] -= l * a[k*b+j]
			}
		}
	}
	return true, nil
}

// TRSMLowerCancel is TRSMLower with a cancellation poll per row.
func TRSMLowerCancel(a, l []float64, b int, flag *cancel.Flag) bool {
	for i := 1; i < b; i++ {
		if i%blockDim == 0 && flag.Cancelled() {
			return false
		}
		for k := 0; k < i; k++ {
			lik := l[i*b+k]
			if lik == 0 {
				continue
			}
			arow := a[k*b : (k+1)*b]
			xrow := a[i*b : (i+1)*b]
			for j := 0; j < b; j++ {
				xrow[j] -= lik * arow[j]
			}
		}
	}
	return true
}

// TRSMUpperCancel is TRSMUpper with a cancellation poll per row block.
func TRSMUpperCancel(a, u []float64, b int, flag *cancel.Flag) bool {
	for i := 0; i < b; i++ {
		if i%blockDim == 0 && flag.Cancelled() {
			return false
		}
		row := a[i*b : (i+1)*b]
		for j := 0; j < b; j++ {
			s := row[j]
			for k := 0; k < j; k++ {
				s -= row[k] * u[k*b+j]
			}
			row[j] = s / u[j*b+j]
		}
	}
	return true
}

// GEMMNTCancel is GEMMNTFast with a cancellation poll per k panel.
func GEMMNTCancel(c, a, b2 []float64, b int, flag *cancel.Flag) bool {
	for kk := 0; kk < b; kk += blockDim {
		if flag.Cancelled() {
			return false
		}
		kmax := min(kk+blockDim, b)
		for i := 0; i < b; i++ {
			arow := a[i*b : (i+1)*b]
			crow := c[i*b : (i+1)*b]
			for k := kk; k < kmax; k++ {
				aik := arow[k]
				if aik == 0 {
					continue
				}
				brow := b2[k*b : (k+1)*b]
				for j := 0; j < b; j++ {
					crow[j] -= aik * brow[j]
				}
			}
		}
	}
	return true
}

// GEMMNTRefCancel is the naive GEMMNT with a cancellation poll per row.
func GEMMNTRefCancel(c, a, b2 []float64, b int, flag *cancel.Flag) bool {
	for i := 0; i < b; i++ {
		if flag.Cancelled() {
			return false
		}
		for j := 0; j < b; j++ {
			s := c[i*b+j]
			for k := 0; k < b; k++ {
				s -= a[i*b+k] * b2[k*b+j]
			}
			c[i*b+j] = s
		}
	}
	return true
}

package tile

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned by POTRF variants when a non-positive
// pivot is encountered.
var ErrNotPositiveDefinite = errors.New("tile: matrix is not positive definite")

// The kernels operate in place on row-major b x b tiles and implement the
// four operations of the right-looking tiled Cholesky factorization
// (lower-triangular convention):
//
//	POTRF: A        -> L            with A = L * L^T
//	TRSM:  A_ik     -> A_ik * L_kk^-T
//	SYRK:  A_ii     -= A_ik * A_ik^T   (lower part)
//	GEMM:  A_ij     -= A_ik * A_jk^T
//
// Each kernel has a reference implementation (naive loop order, the
// "CPU-class" variant) and an optimized implementation ("Fast" suffix,
// the "accelerator-class" variant) using loop reordering and blocking.

// POTRF factors the tile in place into its lower Cholesky factor; entries
// above the diagonal are left untouched.
func POTRF(a []float64, b int) error {
	for k := 0; k < b; k++ {
		pivot := a[k*b+k]
		for j := 0; j < k; j++ {
			pivot -= a[k*b+j] * a[k*b+j]
		}
		if pivot <= 0 {
			return fmt.Errorf("%w (pivot %d = %v)", ErrNotPositiveDefinite, k, pivot)
		}
		d := math.Sqrt(pivot)
		a[k*b+k] = d
		for i := k + 1; i < b; i++ {
			s := a[i*b+k]
			for j := 0; j < k; j++ {
				s -= a[i*b+j] * a[k*b+j]
			}
			a[i*b+k] = s / d
		}
	}
	return nil
}

// TRSM solves X * L^T = A for X in place: a = a * transpose(inverse(l)),
// with l lower triangular (only its lower part is read).
func TRSM(a, l []float64, b int) {
	for i := 0; i < b; i++ {
		row := a[i*b : (i+1)*b]
		for j := 0; j < b; j++ {
			s := row[j]
			for k := 0; k < j; k++ {
				s -= row[k] * l[j*b+k]
			}
			row[j] = s / l[j*b+j]
		}
	}
}

// SYRK updates the lower part of c: c -= a * a^T (naive loop order).
func SYRK(c, a []float64, b int) {
	for i := 0; i < b; i++ {
		for j := 0; j <= i; j++ {
			s := c[i*b+j]
			for k := 0; k < b; k++ {
				s -= a[i*b+k] * a[j*b+k]
			}
			c[i*b+j] = s
		}
	}
}

// GEMM updates c -= a * b2^T with the naive ijk loop order (poor locality
// on b2; this is the deliberately slow reference variant).
func GEMM(c, a, b2 []float64, b int) {
	for i := 0; i < b; i++ {
		for j := 0; j < b; j++ {
			s := c[i*b+j]
			for k := 0; k < b; k++ {
				s -= a[i*b+k] * b2[j*b+k]
			}
			c[i*b+j] = s
		}
	}
}

// blockDim is the register/cache blocking factor of the fast variants.
const blockDim = 32

// GEMMFast updates c -= a * b2^T with jki-blocked loops and an unrolled
// inner kernel; on typical hardware it runs several times faster than
// GEMM, playing the role of the accelerator implementation.
func GEMMFast(c, a, b2 []float64, b int) {
	for kk := 0; kk < b; kk += blockDim {
		kmax := min(kk+blockDim, b)
		for jj := 0; jj < b; jj += blockDim {
			jmax := min(jj+blockDim, b)
			for i := 0; i < b; i++ {
				arow := a[i*b : (i+1)*b]
				crow := c[i*b : (i+1)*b]
				for j := jj; j < jmax; j++ {
					brow := b2[j*b : (j+1)*b]
					var s float64
					k := kk
					for ; k+4 <= kmax; k += 4 {
						s += arow[k]*brow[k] + arow[k+1]*brow[k+1] +
							arow[k+2]*brow[k+2] + arow[k+3]*brow[k+3]
					}
					for ; k < kmax; k++ {
						s += arow[k] * brow[k]
					}
					crow[j] -= s
				}
			}
		}
	}
}

// SYRKFast updates the lower part of c -= a * a^T with the blocked kernel.
func SYRKFast(c, a []float64, b int) {
	for kk := 0; kk < b; kk += blockDim {
		kmax := min(kk+blockDim, b)
		for i := 0; i < b; i++ {
			arow := a[i*b : (i+1)*b]
			crow := c[i*b : (i+1)*b]
			for j := 0; j <= i; j++ {
				brow := a[j*b : (j+1)*b]
				var s float64
				k := kk
				for ; k+4 <= kmax; k += 4 {
					s += arow[k]*brow[k] + arow[k+1]*brow[k+1] +
						arow[k+2]*brow[k+2] + arow[k+3]*brow[k+3]
				}
				for ; k < kmax; k++ {
					s += arow[k] * brow[k]
				}
				crow[j] -= s
			}
		}
	}
}

// TRSMFast is the accelerator-class TRSM: same dependency pattern, with
// the dot products unrolled.
func TRSMFast(a, l []float64, b int) {
	for i := 0; i < b; i++ {
		row := a[i*b : (i+1)*b]
		for j := 0; j < b; j++ {
			lrow := l[j*b : (j+1)*b]
			var s float64
			k := 0
			for ; k+4 <= j; k += 4 {
				s += row[k]*lrow[k] + row[k+1]*lrow[k+1] +
					row[k+2]*lrow[k+2] + row[k+3]*lrow[k+3]
			}
			for ; k < j; k++ {
				s += row[k] * lrow[k]
			}
			row[j] = (row[j] - s) / lrow[j]
		}
	}
}

// POTRFFast is the accelerator-class POTRF; the panel factorization is
// inherently sequential, so it is barely faster than the reference —
// exactly the Table 1 pattern (acceleration factor near 1).
func POTRFFast(a []float64, b int) error {
	return POTRF(a, b)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

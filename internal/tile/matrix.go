// Package tile implements the dense linear-algebra substrate behind the
// paper's workloads: square float64 tiles with the four Cholesky kernels
// (POTRF, TRSM, SYRK, GEMM), each in two implementations — a naive
// reference ("CPU-class") and a cache-blocked, loop-reordered variant
// ("accelerator-class", several times faster on update kernels). The speed
// gap between the two variants reproduces, with real computation, the
// affinity structure of Table 1: update kernels accelerate a lot, the
// panel factorization barely at all.
//
// A tiled Cholesky driver on top of the kernels provides the numerical
// ground truth used to validate the runtime executor.
package tile

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len = Rows*Cols, row-major
}

// NewMatrix returns a zeroed r x c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("tile: negative dimensions %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set stores element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// RandomSPD returns a random symmetric positive-definite n x n matrix:
// A = M*M^T + n*I with M uniform in [0,1).
func RandomSPD(n int, rng *rand.Rand) *Matrix {
	m := NewMatrix(n, n)
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += m.At(i, k) * m.At(j, k)
			}
			if i == j {
				s += float64(n)
			}
			a.Set(i, j, s)
			a.Set(j, i, s)
		}
	}
	return a
}

// MaxAbsDiff returns max |a_ij - b_ij|; the matrices must have identical
// shapes.
func MaxAbsDiff(a, b *Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tile: shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	var d float64
	for i := range a.Data {
		d = math.Max(d, math.Abs(a.Data[i]-b.Data[i]))
	}
	return d
}

// LowerTimesTranspose returns L * L^T for a lower-triangular matrix stored
// in the lower part of l (upper part ignored).
func LowerTimesTranspose(l *Matrix) *Matrix {
	n := l.Rows
	out := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			kmax := i
			if j < i {
				kmax = j
			}
			var s float64
			for k := 0; k <= kmax; k++ {
				s += l.At(i, k) * l.At(j, k)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

// Tiled is an n x n matrix partitioned into nt x nt square tiles of size
// b (n = nt*b). Tiles are stored contiguously so kernels enjoy locality.
type Tiled struct {
	NT int // tiles per dimension
	B  int // tile size
	// T[i*NT+j] is tile (i, j), a row-major B x B block.
	T [][]float64
}

// NewTiled partitions m (which must be square with size divisible by b).
func NewTiled(m *Matrix, b int) (*Tiled, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("tile: matrix %dx%d not square", m.Rows, m.Cols)
	}
	if b <= 0 || m.Rows%b != 0 {
		return nil, fmt.Errorf("tile: size %d not divisible by tile size %d", m.Rows, b)
	}
	nt := m.Rows / b
	td := &Tiled{NT: nt, B: b, T: make([][]float64, nt*nt)}
	for ti := 0; ti < nt; ti++ {
		for tj := 0; tj < nt; tj++ {
			t := make([]float64, b*b)
			for i := 0; i < b; i++ {
				copy(t[i*b:(i+1)*b], m.Data[(ti*b+i)*m.Cols+tj*b:(ti*b+i)*m.Cols+tj*b+b])
			}
			td.T[ti*nt+tj] = t
		}
	}
	return td, nil
}

// Tile returns tile (i, j).
func (td *Tiled) Tile(i, j int) []float64 { return td.T[i*td.NT+j] }

// Assemble reconstructs the dense matrix.
func (td *Tiled) Assemble() *Matrix {
	n := td.NT * td.B
	m := NewMatrix(n, n)
	for ti := 0; ti < td.NT; ti++ {
		for tj := 0; tj < td.NT; tj++ {
			t := td.Tile(ti, tj)
			for i := 0; i < td.B; i++ {
				copy(m.Data[(ti*td.B+i)*n+tj*td.B:(ti*td.B+i)*n+tj*td.B+td.B], t[i*td.B:(i+1)*td.B])
			}
		}
	}
	return m
}

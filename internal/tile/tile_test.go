package tile

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatal("Set/At broken")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Fatal("Clone shares storage")
	}
	defer func() {
		if recover() == nil {
			t.Error("negative dims should panic")
		}
	}()
	NewMatrix(-1, 1)
}

func TestMaxAbsDiffPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch should panic")
		}
	}()
	MaxAbsDiff(NewMatrix(1, 2), NewMatrix(2, 1))
}

func TestRandomSPDIsFactorable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := RandomSPD(24, rng)
	l, err := CholeskyDense(a)
	if err != nil {
		t.Fatal(err)
	}
	rec := LowerTimesTranspose(l)
	if d := MaxAbsDiff(a, rec); d > 1e-8 {
		t.Errorf("reconstruction error %v", d)
	}
}

func TestPOTRFNotPD(t *testing.T) {
	a := []float64{1, 0, 0, -4} // 2x2 with negative trailing pivot
	if err := POTRF(a, 2); err == nil {
		t.Error("non-PD matrix accepted")
	}
}

func TestTiledRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := RandomSPD(12, rng)
	td, err := NewTiled(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	if td.NT != 3 || td.B != 4 {
		t.Fatalf("tiling shape %d/%d", td.NT, td.B)
	}
	back := td.Assemble()
	if d := MaxAbsDiff(a, back); d != 0 {
		t.Errorf("round trip error %v", d)
	}
}

func TestNewTiledErrors(t *testing.T) {
	if _, err := NewTiled(NewMatrix(3, 4), 1); err == nil {
		t.Error("non-square accepted")
	}
	if _, err := NewTiled(NewMatrix(4, 4), 3); err == nil {
		t.Error("non-divisible tile size accepted")
	}
	if _, err := NewTiled(NewMatrix(4, 4), 0); err == nil {
		t.Error("zero tile size accepted")
	}
}

// Fast kernels must agree with the reference kernels bit-for-bit in
// structure (same math, different order => same result up to rounding).
func TestFastKernelsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const b = 48
	randTile := func() []float64 {
		x := make([]float64, b*b)
		for i := range x {
			x[i] = rng.Float64()*2 - 1
		}
		return x
	}
	lowerTile := func() []float64 {
		x := randTile()
		for i := 0; i < b; i++ {
			x[i*b+i] = 2 + rng.Float64() // well-conditioned diagonal
		}
		return x
	}

	// GEMM.
	c1, c2 := randTile(), make([]float64, b*b)
	copy(c2, c1)
	a, bb := randTile(), randTile()
	GEMM(c1, a, bb, b)
	GEMMFast(c2, a, bb, b)
	if d := maxDiff(c1, c2); d > 1e-10 {
		t.Errorf("GEMM variants differ by %v", d)
	}

	// SYRK.
	c1, c2 = randTile(), make([]float64, b*b)
	copy(c2, c1)
	SYRK(c1, a, b)
	SYRKFast(c2, a, b)
	if d := maxDiff(c1, c2); d > 1e-10 {
		t.Errorf("SYRK variants differ by %v", d)
	}

	// TRSM.
	l := lowerTile()
	c1, c2 = randTile(), make([]float64, b*b)
	copy(c2, c1)
	TRSM(c1, l, b)
	TRSMFast(c2, l, b)
	if d := maxDiff(c1, c2); d > 1e-9 {
		t.Errorf("TRSM variants differ by %v", d)
	}
}

func maxDiff(a, b []float64) float64 {
	var d float64
	for i := range a {
		d = math.Max(d, math.Abs(a[i]-b[i]))
	}
	return d
}

func TestTRSMSolves(t *testing.T) {
	// X * L^T = A  =>  X L^T recovers A.
	const b = 8
	rng := rand.New(rand.NewSource(4))
	l := make([]float64, b*b)
	for i := 0; i < b; i++ {
		for j := 0; j <= i; j++ {
			l[i*b+j] = rng.Float64()
		}
		l[i*b+i] += 2
	}
	a := make([]float64, b*b)
	for i := range a {
		a[i] = rng.Float64()
	}
	x := make([]float64, b*b)
	copy(x, a)
	TRSM(x, l, b)
	// Recompute X * L^T.
	for i := 0; i < b; i++ {
		for j := 0; j < b; j++ {
			var s float64
			for k := 0; k <= j; k++ {
				s += x[i*b+k] * l[j*b+k]
			}
			if math.Abs(s-a[i*b+j]) > 1e-9 {
				t.Fatalf("TRSM residual at (%d,%d): %v vs %v", i, j, s, a[i*b+j])
			}
		}
	}
}

func TestCholeskyTiledBothVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := RandomSPD(48, rng)
	want, err := CholeskyDense(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []Variant{Reference, Fast} {
		td, err := NewTiled(a, 12)
		if err != nil {
			t.Fatal(err)
		}
		if err := CholeskyTiled(td, v); err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		got := td.Assemble()
		// Compare lower triangles.
		var d float64
		for i := 0; i < a.Rows; i++ {
			for j := 0; j <= i; j++ {
				d = math.Max(d, math.Abs(got.At(i, j)-want.At(i, j)))
			}
		}
		if d > 1e-8 {
			t.Errorf("%v: tiled factor differs from dense by %v", v, d)
		}
	}
}

func TestCholeskyTiledNotPD(t *testing.T) {
	m := NewMatrix(4, 4) // all zeros: not PD
	td, err := NewTiled(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := CholeskyTiled(td, Reference); err == nil {
		t.Error("zero matrix accepted")
	}
}

func TestCholeskyDenseNonSquare(t *testing.T) {
	if _, err := CholeskyDense(NewMatrix(2, 3)); err == nil {
		t.Error("non-square accepted")
	}
}

func TestVariantString(t *testing.T) {
	if Reference.String() != "reference" || Fast.String() != "fast" || Variant(9).String() == "" {
		t.Error("variant strings wrong")
	}
}

// Property: for random small SPD matrices, tiled and dense factorization
// agree for every valid tile size.
func TestCholeskyTiledProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := RandomSPD(12, rng)
		want, err := CholeskyDense(a)
		if err != nil {
			return false
		}
		for _, b := range []int{1, 2, 3, 4, 6, 12} {
			td, err := NewTiled(a, b)
			if err != nil {
				return false
			}
			if err := CholeskyTiled(td, Fast); err != nil {
				return false
			}
			got := td.Assemble()
			for i := 0; i < 12; i++ {
				for j := 0; j <= i; j++ {
					if math.Abs(got.At(i, j)-want.At(i, j)) > 1e-8 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

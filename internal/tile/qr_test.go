package tile

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// denseQRGram factors a copy of m with plain Householder QR and returns
// its R — the single-tile ground truth (GEQRT with b = n).
func denseQRGram(m *Matrix) *Matrix {
	n := m.Rows
	a := m.Clone()
	t := make([]float64, n*n)
	GEQRT(a.Data, t, n)
	r := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			r.Set(i, j, a.At(i, j))
		}
	}
	return r
}

func TestGEQRTSingleTile(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 16
	a := NewMatrix(n, n)
	for i := range a.Data {
		a.Data[i] = rng.Float64()*2 - 1
	}
	r := denseQRGram(a)
	d, err := GramDiff(a, r)
	if err != nil {
		t.Fatal(err)
	}
	if d > 1e-10*float64(n) {
		t.Errorf("A^T A != R^T R by %v", d)
	}
	// R is upper triangular by construction; sanity-check the diagonal is
	// nonzero for a random matrix.
	for i := 0; i < n; i++ {
		if r.At(i, i) == 0 {
			t.Errorf("zero diagonal at %d", i)
		}
	}
}

func TestGEQRTZeroColumn(t *testing.T) {
	// A tile whose subdiagonal column is already zero exercises the
	// tau = 0 path.
	const n = 4
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			a.Set(i, j, float64(1+i+j))
		}
	}
	r := denseQRGram(a)
	d, err := GramDiff(a, r)
	if err != nil {
		t.Fatal(err)
	}
	if d > 1e-10 {
		t.Errorf("triangular input mishandled: %v", d)
	}
}

func TestTSQRTStackOfTwo(t *testing.T) {
	// Factor [R; A] where R comes from a GEQRT'd tile: the result must
	// satisfy the Gram identity for the stacked 2b x b matrix.
	rng := rand.New(rand.NewSource(2))
	const b = 8
	top := make([]float64, b*b)
	bot := make([]float64, b*b)
	for i := range top {
		top[i] = rng.Float64()*2 - 1
		bot[i] = rng.Float64()*2 - 1
	}
	// Gram of the stack before factorization.
	gram := func(t1, t2 []float64) []float64 {
		g := make([]float64, b*b)
		for i := 0; i < b; i++ {
			for j := 0; j < b; j++ {
				var s float64
				for k := 0; k < b; k++ {
					s += t1[k*b+i]*t1[k*b+j] + t2[k*b+i]*t2[k*b+j]
				}
				g[i*b+j] = s
			}
		}
		return g
	}
	// First reduce the top tile to R, then verify TSQRT directly: the
	// Gram matrix of the stack [R; bot] must be preserved by the TSQRT
	// reduction (its Q is orthonormal).
	tf := make([]float64, b*b)
	GEQRT(top, tf, b)
	r := make([]float64, b*b)
	for i := 0; i < b; i++ {
		for j := i; j < b; j++ {
			r[i*b+j] = top[i*b+j]
		}
	}
	beforeStack := gram(r, bot)
	t2 := make([]float64, b*b)
	TSQRT(r, bot, t2, b)
	rOnly := make([]float64, b*b)
	for i := 0; i < b; i++ {
		for j := i; j < b; j++ {
			rOnly[i*b+j] = r[i*b+j]
		}
	}
	zero := make([]float64, b*b)
	after := gram(rOnly, zero)
	var worst float64
	for i := range after {
		worst = math.Max(worst, math.Abs(after[i]-beforeStack[i]))
	}
	if worst > 1e-9 {
		t.Errorf("TSQRT broke the Gram identity by %v", worst)
	}
}

func TestQRTiledMatchesGram(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, cfg := range []struct{ n, b int }{{16, 4}, {24, 8}, {36, 12}} {
		a := NewMatrix(cfg.n, cfg.n)
		for i := range a.Data {
			a.Data[i] = rng.Float64()*2 - 1
		}
		td, err := NewTiled(a, cfg.b)
		if err != nil {
			t.Fatal(err)
		}
		if err := QRTiled(td); err != nil {
			t.Fatal(err)
		}
		r := QRExtractR(td)
		d, err := GramDiff(a, r)
		if err != nil {
			t.Fatal(err)
		}
		if d > 1e-9*float64(cfg.n) {
			t.Errorf("n=%d b=%d: A^T A != R^T R by %v", cfg.n, cfg.b, d)
		}
	}
}

func TestQRTiledMatchesDenseR(t *testing.T) {
	// Up to column signs, the tiled R must match the single-tile R.
	rng := rand.New(rand.NewSource(4))
	const n = 24
	a := NewMatrix(n, n)
	for i := range a.Data {
		a.Data[i] = rng.Float64()*2 - 1
	}
	dense := denseQRGram(a)
	td, err := NewTiled(a, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := QRTiled(td); err != nil {
		t.Fatal(err)
	}
	tiled := QRExtractR(td)
	var worst float64
	for i := 0; i < n; i++ {
		// Signs of row i may differ; compare |R|.
		for j := i; j < n; j++ {
			worst = math.Max(worst, math.Abs(math.Abs(dense.At(i, j))-math.Abs(tiled.At(i, j))))
		}
	}
	if worst > 1e-8 {
		t.Errorf("tiled R differs from dense R (up to signs) by %v", worst)
	}
}

func TestGramDiffShapeMismatch(t *testing.T) {
	if _, err := GramDiff(NewMatrix(2, 2), NewMatrix(3, 3)); err == nil {
		t.Error("shape mismatch accepted")
	}
	if _, err := GramDiff(NewMatrix(2, 3), NewMatrix(2, 3)); err == nil {
		t.Error("non-square accepted")
	}
}

// Property: the Gram identity holds for random matrices and every valid
// tile size.
func TestQRTiledProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 12
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = rng.Float64()*2 - 1
		}
		for _, b := range []int{2, 3, 4, 6} {
			td, err := NewTiled(a, b)
			if err != nil {
				return false
			}
			if err := QRTiled(td); err != nil {
				return false
			}
			d, err := GramDiff(a, QRExtractR(td))
			if err != nil || d > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

package tile

import (
	"math/rand"
	"testing"

	"repro/internal/cancel"
)

func randTileN(rng *rand.Rand, b int) []float64 {
	x := make([]float64, b*b)
	for i := range x {
		x[i] = rng.Float64()*2 - 1
	}
	return x
}

func lowerTileN(rng *rand.Rand, b int) []float64 {
	x := randTileN(rng, b)
	for i := 0; i < b; i++ {
		x[i*b+i] = 2 + rng.Float64()
	}
	return x
}

func spdTileN(rng *rand.Rand, b int) []float64 {
	x := make([]float64, b*b)
	for i := 0; i < b; i++ {
		for j := 0; j <= i; j++ {
			v := rng.Float64()
			x[i*b+j] = v
			x[j*b+i] = v
		}
		x[i*b+i] += float64(b)
	}
	return x
}

// Uncancelled cancellable kernels must equal their plain counterparts.
func TestCancellableKernelsMatchPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const b = 64

	a, b2 := randTileN(rng, b), randTileN(rng, b)
	c1 := randTileN(rng, b)
	c2 := append([]float64(nil), c1...)
	c3 := append([]float64(nil), c1...)
	GEMMFast(c1, a, b2, b)
	if !GEMMCancel(c2, a, b2, b, nil) {
		t.Fatal("nil flag must never cancel")
	}
	GEMM(c3, a, b2, b)
	if d := maxDiff(c1, c2); d != 0 {
		t.Errorf("GEMMCancel differs from GEMMFast by %v", d)
	}
	cRef := append([]float64(nil), c3...)
	_ = cRef
	c4 := randTileN(rng, b)
	c5 := append([]float64(nil), c4...)
	GEMM(c4, a, b2, b)
	if !GEMMRefCancel(c5, a, b2, b, nil) {
		t.Fatal("ref cancel with nil flag")
	}
	if d := maxDiff(c4, c5); d != 0 {
		t.Errorf("GEMMRefCancel differs from GEMM by %v", d)
	}

	s1 := randTileN(rng, b)
	s2 := append([]float64(nil), s1...)
	s3 := append([]float64(nil), s1...)
	SYRKFast(s1, a, b)
	SYRKCancel(s2, a, b, nil)
	SYRK(s3, a, b)
	if d := maxDiff(s1, s2); d != 0 {
		t.Errorf("SYRKCancel differs by %v", d)
	}
	s4 := append([]float64(nil), s3...)
	copy(s4, s3)
	s5 := randTileN(rng, b)
	s6 := append([]float64(nil), s5...)
	SYRK(s5, a, b)
	SYRKRefCancel(s6, a, b, nil)
	if d := maxDiff(s5, s6); d != 0 {
		t.Errorf("SYRKRefCancel differs by %v", d)
	}

	l := lowerTileN(rng, b)
	t1 := randTileN(rng, b)
	t2 := append([]float64(nil), t1...)
	t3 := append([]float64(nil), t1...)
	TRSMFast(t1, l, b)
	TRSMCancel(t2, l, b, nil)
	TRSM(t3, l, b)
	if d := maxDiff(t1, t2); d != 0 {
		t.Errorf("TRSMCancel differs by %v", d)
	}
	t4 := randTileN(rng, b)
	t5 := append([]float64(nil), t4...)
	TRSM(t4, l, b)
	TRSMRefCancel(t5, l, b, nil)
	if d := maxDiff(t4, t5); d != 0 {
		t.Errorf("TRSMRefCancel differs by %v", d)
	}

	p1 := spdTileN(rng, b)
	p2 := append([]float64(nil), p1...)
	if err := POTRF(p1, b); err != nil {
		t.Fatal(err)
	}
	done, err := POTRFCancel(p2, b, nil)
	if err != nil || !done {
		t.Fatalf("POTRFCancel: done=%v err=%v", done, err)
	}
	if d := maxDiff(p1, p2); d != 0 {
		t.Errorf("POTRFCancel differs by %v", d)
	}
}

// Pre-cancelled kernels must abandon immediately and report false.
func TestCancelledKernelsAbort(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	const b = 64
	flag := &cancel.Flag{}
	flag.Cancel()
	a, b2 := randTileN(rng, b), randTileN(rng, b)
	l := lowerTileN(rng, b)
	c := randTileN(rng, b)
	if GEMMCancel(c, a, b2, b, flag) {
		t.Error("GEMMCancel ignored cancellation")
	}
	if GEMMRefCancel(c, a, b2, b, flag) {
		t.Error("GEMMRefCancel ignored cancellation")
	}
	if SYRKCancel(c, a, b, flag) {
		t.Error("SYRKCancel ignored cancellation")
	}
	if SYRKRefCancel(c, a, b, flag) {
		t.Error("SYRKRefCancel ignored cancellation")
	}
	if TRSMCancel(c, l, b, flag) {
		t.Error("TRSMCancel ignored cancellation")
	}
	if TRSMRefCancel(c, l, b, flag) {
		t.Error("TRSMRefCancel ignored cancellation")
	}
	p := spdTileN(rng, b)
	done, err := POTRFCancel(p, b, flag)
	if done || err != nil {
		t.Errorf("POTRFCancel: done=%v err=%v, want cancelled", done, err)
	}
}

func TestPOTRFCancelNotPD(t *testing.T) {
	a := []float64{1, 0, 0, -4}
	done, err := POTRFCancel(a, 2, nil)
	if !done || err == nil {
		t.Errorf("non-PD: done=%v err=%v, want completed with error", done, err)
	}
}

package tile

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cancel"
)

func TestGETRFSingular(t *testing.T) {
	a := []float64{0, 1, 1, 1} // zero pivot
	if err := GETRF(a, 2); err == nil {
		t.Error("singular tile accepted")
	}
}

func TestLUDenseReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := RandomDiagDominant(24, rng)
	lu, err := LUDense(a)
	if err != nil {
		t.Fatal(err)
	}
	rec := LUReconstruct(lu)
	if d := MaxAbsDiff(a, rec); d > 1e-9 {
		t.Errorf("L*U differs from A by %v", d)
	}
}

func TestLUDenseNonSquare(t *testing.T) {
	if _, err := LUDense(NewMatrix(2, 3)); err == nil {
		t.Error("non-square accepted")
	}
}

func TestTRSMLowerSolves(t *testing.T) {
	// After GETRF on l, TRSMLower(a, l) must satisfy L * X = A_orig.
	const b = 8
	rng := rand.New(rand.NewSource(2))
	l := RandomDiagDominant(b, rng)
	if err := GETRF(l.Data, b); err != nil {
		t.Fatal(err)
	}
	orig := make([]float64, b*b)
	for i := range orig {
		orig[i] = rng.Float64()
	}
	x := append([]float64(nil), orig...)
	TRSMLower(x, l.Data, b)
	// Recompute L*X (L unit lower from l).
	for i := 0; i < b; i++ {
		for j := 0; j < b; j++ {
			s := x[i*b+j]
			for k := 0; k < i; k++ {
				s += l.Data[i*b+k] * x[k*b+j]
			}
			if math.Abs(s-orig[i*b+j]) > 1e-9 {
				t.Fatalf("L*X != A at (%d,%d): %v vs %v", i, j, s, orig[i*b+j])
			}
		}
	}
}

func TestTRSMUpperSolves(t *testing.T) {
	const b = 8
	rng := rand.New(rand.NewSource(3))
	u := RandomDiagDominant(b, rng)
	if err := GETRF(u.Data, b); err != nil {
		t.Fatal(err)
	}
	orig := make([]float64, b*b)
	for i := range orig {
		orig[i] = rng.Float64()
	}
	x := append([]float64(nil), orig...)
	TRSMUpper(x, u.Data, b)
	// Recompute X*U (U upper incl. diagonal from u).
	for i := 0; i < b; i++ {
		for j := 0; j < b; j++ {
			var s float64
			for k := 0; k <= j; k++ {
				s += x[i*b+k] * u.Data[k*b+j]
			}
			if math.Abs(s-orig[i*b+j]) > 1e-9 {
				t.Fatalf("X*U != A at (%d,%d): %v vs %v", i, j, s, orig[i*b+j])
			}
		}
	}
}

func TestGEMMNTVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const b = 48
	a, b2 := randTileN(rng, b), randTileN(rng, b)
	c1 := randTileN(rng, b)
	c2 := append([]float64(nil), c1...)
	GEMMNT(c1, a, b2, b)
	GEMMNTFast(c2, a, b2, b)
	if d := maxDiff(c1, c2); d > 1e-10 {
		t.Errorf("GEMMNT variants differ by %v", d)
	}
}

func TestLUTiledMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := RandomDiagDominant(48, rng)
	want, err := LUDense(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, fast := range []bool{false, true} {
		td, err := NewTiled(a, 12)
		if err != nil {
			t.Fatal(err)
		}
		if err := LUTiled(td, fast); err != nil {
			t.Fatalf("fast=%v: %v", fast, err)
		}
		got := td.Assemble()
		if d := MaxAbsDiff(got, want); d > 1e-8 {
			t.Errorf("fast=%v: tiled LU differs from dense by %v", fast, d)
		}
	}
}

func TestLUTiledSingular(t *testing.T) {
	m := NewMatrix(4, 4)
	td, err := NewTiled(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := LUTiled(td, false); err == nil {
		t.Error("singular matrix accepted")
	}
}

// Property: tiled LU reconstructs the original matrix for every valid tile
// size.
func TestLUTiledProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := RandomDiagDominant(12, rng)
		for _, b := range []int{1, 2, 3, 4, 6, 12} {
			td, err := NewTiled(a, b)
			if err != nil {
				return false
			}
			if err := LUTiled(td, true); err != nil {
				return false
			}
			rec := LUReconstruct(td.Assemble())
			if MaxAbsDiff(a, rec) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestLUCancellableMatchPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const b = 64
	dd := RandomDiagDominant(b, rng)
	g1 := dd.Clone()
	g2 := dd.Clone()
	if err := GETRF(g1.Data, b); err != nil {
		t.Fatal(err)
	}
	done, err := GETRFCancel(g2.Data, b, nil)
	if !done || err != nil {
		t.Fatalf("GETRFCancel: %v %v", done, err)
	}
	if d := MaxAbsDiff(g1, g2); d != 0 {
		t.Errorf("GETRFCancel differs by %v", d)
	}

	a1 := randTileN(rng, b)
	a2 := append([]float64(nil), a1...)
	TRSMLower(a1, g1.Data, b)
	if !TRSMLowerCancel(a2, g1.Data, b, nil) {
		t.Fatal("TRSMLowerCancel cancelled with nil flag")
	}
	if d := maxDiff(a1, a2); d != 0 {
		t.Errorf("TRSMLowerCancel differs by %v", d)
	}

	u1 := randTileN(rng, b)
	u2 := append([]float64(nil), u1...)
	TRSMUpper(u1, g1.Data, b)
	if !TRSMUpperCancel(u2, g1.Data, b, nil) {
		t.Fatal("TRSMUpperCancel cancelled with nil flag")
	}
	if d := maxDiff(u1, u2); d != 0 {
		t.Errorf("TRSMUpperCancel differs by %v", d)
	}

	x, y := randTileN(rng, b), randTileN(rng, b)
	c1 := randTileN(rng, b)
	c2 := append([]float64(nil), c1...)
	GEMMNTFast(c1, x, y, b)
	if !GEMMNTCancel(c2, x, y, b, nil) {
		t.Fatal("GEMMNTCancel cancelled with nil flag")
	}
	if d := maxDiff(c1, c2); d != 0 {
		t.Errorf("GEMMNTCancel differs by %v", d)
	}
}

func TestLUCancelledAbort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const b = 64
	flag := &cancel.Flag{}
	flag.Cancel()
	dd := RandomDiagDominant(b, rng)
	if done, _ := GETRFCancel(dd.Data, b, flag); done {
		t.Error("GETRFCancel ignored cancellation")
	}
	l := dd.Clone()
	a := randTileN(rng, b)
	if TRSMLowerCancel(a, l.Data, b, flag) {
		t.Error("TRSMLowerCancel ignored cancellation")
	}
	if TRSMUpperCancel(a, l.Data, b, flag) {
		t.Error("TRSMUpperCancel ignored cancellation")
	}
	x, y := randTileN(rng, b), randTileN(rng, b)
	if GEMMNTCancel(a, x, y, b, flag) {
		t.Error("GEMMNTCancel ignored cancellation")
	}
	if GEMMNTRefCancel(a, x, y, b, flag) {
		t.Error("GEMMNTRefCancel ignored cancellation")
	}
}

func TestGEMMNTRefCancelMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const b = 48
	x, y := randTileN(rng, b), randTileN(rng, b)
	c1 := randTileN(rng, b)
	c2 := append([]float64(nil), c1...)
	GEMMNT(c1, x, y, b)
	if !GEMMNTRefCancel(c2, x, y, b, nil) {
		t.Fatal("cancelled with nil flag")
	}
	if d := maxDiff(c1, c2); d != 0 {
		t.Errorf("GEMMNTRefCancel differs by %v", d)
	}
}

package tile

import (
	"math"

	"repro/internal/cancel"
)

// The cancellable kernels return false if they were cancelled before
// completing; the output tile contents are then unspecified and the task
// must be re-run on restored inputs.

// GEMMCancel is GEMMFast with a cancellation poll per row panel.
func GEMMCancel(c, a, b2 []float64, b int, flag *cancel.Flag) bool {
	for kk := 0; kk < b; kk += blockDim {
		if flag.Cancelled() {
			return false
		}
		kmax := min(kk+blockDim, b)
		for jj := 0; jj < b; jj += blockDim {
			jmax := min(jj+blockDim, b)
			for i := 0; i < b; i++ {
				arow := a[i*b : (i+1)*b]
				crow := c[i*b : (i+1)*b]
				for j := jj; j < jmax; j++ {
					brow := b2[j*b : (j+1)*b]
					var s float64
					k := kk
					for ; k+4 <= kmax; k += 4 {
						s += arow[k]*brow[k] + arow[k+1]*brow[k+1] +
							arow[k+2]*brow[k+2] + arow[k+3]*brow[k+3]
					}
					for ; k < kmax; k++ {
						s += arow[k] * brow[k]
					}
					crow[j] -= s
				}
			}
		}
	}
	return true
}

// SYRKCancel is SYRKFast with a cancellation poll per row panel.
func SYRKCancel(c, a []float64, b int, flag *cancel.Flag) bool {
	for kk := 0; kk < b; kk += blockDim {
		if flag.Cancelled() {
			return false
		}
		kmax := min(kk+blockDim, b)
		for i := 0; i < b; i++ {
			arow := a[i*b : (i+1)*b]
			crow := c[i*b : (i+1)*b]
			for j := 0; j <= i; j++ {
				brow := a[j*b : (j+1)*b]
				var s float64
				k := kk
				for ; k+4 <= kmax; k += 4 {
					s += arow[k]*brow[k] + arow[k+1]*brow[k+1] +
						arow[k+2]*brow[k+2] + arow[k+3]*brow[k+3]
				}
				for ; k < kmax; k++ {
					s += arow[k] * brow[k]
				}
				crow[j] -= s
			}
		}
	}
	return true
}

// TRSMCancel is TRSMFast with a cancellation poll per block of rows.
func TRSMCancel(a, l []float64, b int, flag *cancel.Flag) bool {
	for i := 0; i < b; i++ {
		if i%blockDim == 0 && flag.Cancelled() {
			return false
		}
		row := a[i*b : (i+1)*b]
		for j := 0; j < b; j++ {
			lrow := l[j*b : (j+1)*b]
			var s float64
			k := 0
			for ; k+4 <= j; k += 4 {
				s += row[k]*lrow[k] + row[k+1]*lrow[k+1] +
					row[k+2]*lrow[k+2] + row[k+3]*lrow[k+3]
			}
			for ; k < j; k++ {
				s += row[k] * lrow[k]
			}
			row[j] = (row[j] - s) / lrow[j]
		}
	}
	return true
}

// POTRFCancel is POTRF with a cancellation poll per pivot block. The first
// return is false if the run was cancelled (the tile is then left in an
// unspecified state and the task must be re-run on restored inputs).
func POTRFCancel(a []float64, b int, flag *cancel.Flag) (bool, error) {
	for k := 0; k < b; k++ {
		if k%blockDim == 0 && flag.Cancelled() {
			return false, nil
		}
		pivot := a[k*b+k]
		for j := 0; j < k; j++ {
			pivot -= a[k*b+j] * a[k*b+j]
		}
		if pivot <= 0 {
			return true, ErrNotPositiveDefinite
		}
		d := math.Sqrt(pivot)
		a[k*b+k] = d
		for i := k + 1; i < b; i++ {
			s := a[i*b+k]
			for j := 0; j < k; j++ {
				s -= a[i*b+j] * a[k*b+j]
			}
			a[i*b+k] = s / d
		}
	}
	return true, nil
}

// GEMMRefCancel is the naive reference GEMM with a cancellation poll per
// row (the slow "CPU-class" implementation in cancellable form).
func GEMMRefCancel(c, a, b2 []float64, b int, flag *cancel.Flag) bool {
	for i := 0; i < b; i++ {
		if flag.Cancelled() {
			return false
		}
		for j := 0; j < b; j++ {
			s := c[i*b+j]
			for k := 0; k < b; k++ {
				s -= a[i*b+k] * b2[j*b+k]
			}
			c[i*b+j] = s
		}
	}
	return true
}

// SYRKRefCancel is the naive reference SYRK with a cancellation poll per
// row.
func SYRKRefCancel(c, a []float64, b int, flag *cancel.Flag) bool {
	for i := 0; i < b; i++ {
		if flag.Cancelled() {
			return false
		}
		for j := 0; j <= i; j++ {
			s := c[i*b+j]
			for k := 0; k < b; k++ {
				s -= a[i*b+k] * a[j*b+k]
			}
			c[i*b+j] = s
		}
	}
	return true
}

// TRSMRefCancel is the naive reference TRSM with a cancellation poll per
// row.
func TRSMRefCancel(a, l []float64, b int, flag *cancel.Flag) bool {
	for i := 0; i < b; i++ {
		if flag.Cancelled() {
			return false
		}
		row := a[i*b : (i+1)*b]
		for j := 0; j < b; j++ {
			s := row[j]
			for k := 0; k < j; k++ {
				s -= row[k] * l[j*b+k]
			}
			row[j] = s / l[j*b+j]
		}
	}
	return true
}

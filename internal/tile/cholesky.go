package tile

import "fmt"

// Variant selects a kernel implementation class.
type Variant int

const (
	// Reference uses the naive kernels (the "CPU-class" implementations).
	Reference Variant = iota
	// Fast uses the blocked/unrolled kernels (the "accelerator-class"
	// implementations).
	Fast
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case Reference:
		return "reference"
	case Fast:
		return "fast"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Kernels bundles one implementation of each Cholesky kernel.
type Kernels struct {
	POTRF func(a []float64, b int) error
	TRSM  func(a, l []float64, b int)
	SYRK  func(c, a []float64, b int)
	GEMM  func(c, a, b2 []float64, b int)
}

// KernelsFor returns the kernel set of a variant.
func KernelsFor(v Variant) Kernels {
	switch v {
	case Fast:
		return Kernels{POTRF: POTRFFast, TRSM: TRSMFast, SYRK: SYRKFast, GEMM: GEMMFast}
	default:
		return Kernels{POTRF: POTRF, TRSM: TRSM, SYRK: SYRK, GEMM: GEMM}
	}
}

// CholeskyTiled factors the tiled SPD matrix in place into its lower
// Cholesky factor using the right-looking tiled algorithm with the given
// kernel variant. This is the sequential reference against which the
// runtime executor is validated.
func CholeskyTiled(td *Tiled, v Variant) error {
	k := KernelsFor(v)
	nt, b := td.NT, td.B
	for kk := 0; kk < nt; kk++ {
		if err := k.POTRF(td.Tile(kk, kk), b); err != nil {
			return fmt.Errorf("tile: POTRF(%d): %w", kk, err)
		}
		for i := kk + 1; i < nt; i++ {
			k.TRSM(td.Tile(i, kk), td.Tile(kk, kk), b)
		}
		for i := kk + 1; i < nt; i++ {
			k.SYRK(td.Tile(i, i), td.Tile(i, kk), b)
			for j := kk + 1; j < i; j++ {
				k.GEMM(td.Tile(i, j), td.Tile(i, kk), td.Tile(j, kk), b)
			}
		}
	}
	return nil
}

// CholeskyDense factors an SPD matrix (returning the lower factor in a
// copy) with the unblocked algorithm — ground truth for tests.
func CholeskyDense(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("tile: matrix %dx%d not square", a.Rows, a.Cols)
	}
	l := a.Clone()
	if err := POTRF(l.Data, l.Rows); err != nil {
		return nil, err
	}
	// Zero the strict upper triangle for cleanliness.
	for i := 0; i < l.Rows; i++ {
		for j := i + 1; j < l.Cols; j++ {
			l.Set(i, j, 0)
		}
	}
	return l, nil
}

package sched

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bounds"
	"repro/internal/dag"
	"repro/internal/platform"
)

func task(id int, p, q float64) platform.Task {
	return platform.Task{ID: id, CPUTime: p, GPUTime: q}
}

func randInstance(rng *rand.Rand, maxTasks int) platform.Instance {
	T := 1 + rng.Intn(maxTasks)
	var in platform.Instance
	for i := 0; i < T; i++ {
		in = append(in, task(i, 0.1+rng.Float64()*10, 0.1+rng.Float64()*10))
	}
	return in
}

func TestRankingString(t *testing.T) {
	if RankFIFO.String() != "fifo" || RankAvg.String() != "avg" || RankMin.String() != "min" {
		t.Error("ranking strings wrong")
	}
	if Ranking(9).String() == "" {
		t.Error("unknown ranking string empty")
	}
}

func TestWorkerTimelineInsertion(t *testing.T) {
	var w workerTimeline
	if got := w.earliestSlot(0, 5); got != 0 {
		t.Errorf("empty timeline slot = %v, want 0", got)
	}
	w.insert(0, 5)
	w.insert(10, 5)
	// Gap [5,10) fits a 4-unit task.
	if got := w.earliestSlot(0, 4); got != 5 {
		t.Errorf("gap slot = %v, want 5", got)
	}
	// 6-unit task must go after the last interval.
	if got := w.earliestSlot(0, 6); got != 15 {
		t.Errorf("tail slot = %v, want 15", got)
	}
	// est inside a busy interval.
	if got := w.earliestSlot(2, 1); got != 5 {
		t.Errorf("est-in-busy slot = %v, want 5", got)
	}
}

func TestHEFTChainPicksGPU(t *testing.T) {
	g := dag.Chain(3, platform.Task{CPUTime: 4, GPUTime: 1})
	pl := platform.NewPlatform(2, 1)
	s, err := HEFT(g, pl, dag.WeightAvg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(g.Tasks(), g); err != nil {
		t.Fatal(err)
	}
	if s.Makespan() != 3 {
		t.Errorf("makespan = %v, want 3", s.Makespan())
	}
}

func TestHEFTRespectsDependencies(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		g := dag.RandomLayered(dag.DefaultRandomLayeredConfig(), rng)
		pl := platform.NewPlatform(1+rng.Intn(4), 1+rng.Intn(3))
		for _, w := range []dag.Weighting{dag.WeightAvg, dag.WeightMin} {
			s, err := HEFT(g, pl, w)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Validate(g.Tasks(), g); err != nil {
				t.Fatalf("trial %d (%v): %v", trial, w, err)
			}
		}
	}
}

func TestHEFTInsertionUsesGaps(t *testing.T) {
	// One source on CPU leaves the GPU idle early; a later independent task
	// must be insertable before the critical chain's GPU work finishes.
	g := dag.New()
	a := g.AddTask(platform.Task{CPUTime: 10, GPUTime: 2, Name: "a"})
	b := g.AddTask(platform.Task{CPUTime: 10, GPUTime: 3, Name: "b"})
	g.AddEdge(a, b)
	// Independent cheap task; rank lower than a and b.
	g.AddTask(platform.Task{CPUTime: 0.5, GPUTime: 1, Name: "c"})
	pl := platform.NewPlatform(1, 1)
	s, err := HEFT(g, pl, dag.WeightMin)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(g.Tasks(), g); err != nil {
		t.Fatal(err)
	}
	if ms := s.Makespan(); ms > 5+1e-9 {
		t.Errorf("makespan = %v, want 5 (a,b on GPU with c inserted elsewhere)", ms)
	}
}

func TestHEFTIndependentPreservesIDs(t *testing.T) {
	in := platform.Instance{
		{ID: 42, CPUTime: 4, GPUTime: 1},
		{ID: 7, CPUTime: 1, GPUTime: 4},
	}
	pl := platform.NewPlatform(1, 1)
	s, err := HEFTIndependent(in, pl, dag.WeightAvg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(in, nil); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, e := range s.Entries {
		seen[e.TaskID] = true
	}
	if !seen[42] || !seen[7] {
		t.Errorf("task IDs not preserved: %v", seen)
	}
	// Each task lands on its favorite class; both take 1 time unit.
	if s.Makespan() != 1 {
		t.Errorf("makespan = %v, want 1", s.Makespan())
	}
}

func TestHEFTInvalidInputs(t *testing.T) {
	g := dag.New()
	g.AddTask(task(0, -1, 1))
	if _, err := HEFT(g, platform.NewPlatform(1, 1), dag.WeightAvg); err == nil {
		t.Error("invalid task accepted")
	}
	if _, err := HEFT(dag.New(), platform.Platform{}, dag.WeightAvg); err == nil {
		t.Error("invalid platform accepted")
	}
	if _, err := HEFTIndependent(platform.Instance{task(0, -1, 1)}, platform.NewPlatform(1, 1), dag.WeightAvg); err == nil {
		t.Error("invalid instance accepted")
	}
}

func TestListHomogeneous(t *testing.T) {
	ms, placement := ListHomogeneous([]float64{3, 2, 2, 1}, 2)
	// m0: 3, m1: 2+2=4 then 1 -> m0: 3+1=4. Actually: 3->m0, 2->m1, 2->m1? No:
	// least loaded after {3,2} is m1(2): 2->m1 (4), 1->m0 (4). Makespan 4.
	if ms != 4 {
		t.Errorf("makespan = %v, want 4", ms)
	}
	if len(placement) != 4 {
		t.Errorf("placement size %d", len(placement))
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic with 0 machines")
		}
	}()
	ListHomogeneous([]float64{1}, 0)
}

func TestDualHPIndependentSimple(t *testing.T) {
	// Two tasks, each clearly better on one class.
	in := platform.Instance{task(0, 10, 1), task(1, 1, 10)}
	pl := platform.NewPlatform(1, 1)
	s, err := DualHPIndependent(in, pl)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(in, nil); err != nil {
		t.Fatal(err)
	}
	if s.Makespan() > 2+1e-6 {
		t.Errorf("makespan = %v, want <= 2 (2-approx of opt 1)", s.Makespan())
	}
}

func TestDualHPIndependentInvalid(t *testing.T) {
	if _, err := DualHPIndependent(platform.Instance{task(0, -1, 1)}, platform.NewPlatform(1, 1)); err == nil {
		t.Error("invalid instance accepted")
	}
	if _, err := DualHPIndependent(platform.Instance{task(0, 1, 1)}, platform.Platform{}); err == nil {
		t.Error("invalid platform accepted")
	}
}

func TestDualHPIndependentEmpty(t *testing.T) {
	s, err := DualHPIndependent(nil, platform.NewPlatform(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan() != 0 {
		t.Errorf("makespan = %v, want 0", s.Makespan())
	}
}

// DualHP is a 2-approximation for independent tasks; verify against the
// exact optimum on random small instances, and validate schedules.
func TestDualHPTwoApproxProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 80; trial++ {
		in := randInstance(rng, 9)
		pl := platform.NewPlatform(1+rng.Intn(3), 1+rng.Intn(2))
		s, err := DualHPIndependent(in, pl)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(in, nil); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		opt, err := OptimalIndependent(in, pl)
		if err != nil {
			t.Fatal(err)
		}
		if s.Makespan() > 2*opt+1e-6 {
			t.Fatalf("trial %d: DualHP %v > 2*opt %v", trial, s.Makespan(), 2*opt)
		}
	}
}

func TestDualHPDAGSimple(t *testing.T) {
	g := dag.Chain(4, platform.Task{CPUTime: 4, GPUTime: 1})
	pl := platform.NewPlatform(1, 1)
	for _, r := range []Ranking{RankFIFO, RankAvg, RankMin} {
		s, err := DualHPDAGWithPriorities(g, pl, r)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(g.Tasks(), g); err != nil {
			t.Fatalf("%v: %v", r, err)
		}
		if s.Makespan() != 4 {
			t.Errorf("%v: makespan = %v, want 4", r, s.Makespan())
		}
	}
}

func TestDualHPDAGRandomValid(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		g := dag.RandomLayered(dag.DefaultRandomLayeredConfig(), rng)
		pl := platform.NewPlatform(1+rng.Intn(4), 1+rng.Intn(2))
		for _, r := range []Ranking{RankFIFO, RankAvg, RankMin} {
			s, err := DualHPDAGWithPriorities(g, pl, r)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Validate(g.Tasks(), g); err != nil {
				t.Fatalf("trial %d %v: %v", trial, r, err)
			}
			lb, err := bounds.DAGLower(g, pl)
			if err != nil {
				t.Fatal(err)
			}
			if s.Makespan() < lb-1e-6 {
				t.Fatalf("trial %d %v: makespan %v below bound %v", trial, r, s.Makespan(), lb)
			}
		}
	}
}

func TestDualHPDAGInvalid(t *testing.T) {
	g := dag.New()
	a := g.AddTask(task(0, 1, 1))
	b := g.AddTask(task(1, 1, 1))
	g.AddEdge(a, b)
	g.AddEdge(b, a)
	if _, err := DualHPDAG(g, platform.NewPlatform(1, 1), RankFIFO); err == nil {
		t.Error("cyclic graph accepted")
	}
	if _, err := DualHPDAG(dag.New(), platform.Platform{}, RankFIFO); err == nil {
		t.Error("invalid platform accepted")
	}
}

func TestOptimalIndependentKnown(t *testing.T) {
	// Theorem 8 instance: opt = 1.
	phi := (1 + math.Sqrt(5)) / 2
	in := platform.Instance{task(0, phi, 1), task(1, 1, 1/phi)}
	opt, err := OptimalIndependent(in, platform.NewPlatform(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(opt-1) > 1e-9 {
		t.Errorf("opt = %v, want 1", opt)
	}
}

func TestOptimalIndependentEdgeCases(t *testing.T) {
	if _, err := OptimalIndependent(randInstance(rand.New(rand.NewSource(1)), 5), platform.Platform{}); err == nil {
		t.Error("invalid platform accepted")
	}
	if _, err := OptimalIndependent(platform.Instance{task(0, -1, 1)}, platform.NewPlatform(1, 1)); err == nil {
		t.Error("invalid instance accepted")
	}
	big := make(platform.Instance, MaxExactTasks+1)
	for i := range big {
		big[i] = task(i, 1, 1)
	}
	if _, err := OptimalIndependent(big, platform.NewPlatform(1, 1)); err == nil {
		t.Error("oversized instance accepted")
	}
	opt, err := OptimalIndependent(nil, platform.NewPlatform(1, 1))
	if err != nil || opt != 0 {
		t.Errorf("empty instance opt = %v, %v", opt, err)
	}
}

// Property: the exact optimum is sandwiched between the lower bound and
// any heuristic's makespan.
func TestOptimalSandwichProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		in := randInstance(rng, 8)
		pl := platform.NewPlatform(1+rng.Intn(3), 1+rng.Intn(2))
		opt, err := OptimalIndependent(in, pl)
		if err != nil {
			t.Fatal(err)
		}
		lb, err := bounds.Lower(in, pl)
		if err != nil {
			t.Fatal(err)
		}
		if opt < lb-1e-6 {
			t.Fatalf("trial %d: opt %v below lower bound %v", trial, opt, lb)
		}
		s, err := DualHPIndependent(in, pl)
		if err != nil {
			t.Fatal(err)
		}
		if s.Makespan() < opt-1e-6 {
			t.Fatalf("trial %d: DualHP %v beats exact opt %v", trial, s.Makespan(), opt)
		}
		h, err := HEFTIndependent(in, pl, dag.WeightAvg)
		if err != nil {
			t.Fatal(err)
		}
		if h.Makespan() < opt-1e-6 {
			t.Fatalf("trial %d: HEFT %v beats exact opt %v", trial, h.Makespan(), opt)
		}
	}
}

func TestSortedByPriorityDesc(t *testing.T) {
	in := platform.Instance{
		{ID: 0, CPUTime: 1, GPUTime: 1, Priority: 1},
		{ID: 1, CPUTime: 1, GPUTime: 1, Priority: 3},
		{ID: 2, CPUTime: 1, GPUTime: 1, Priority: 2},
	}
	got := sortedByPriorityDesc(in)
	if got[0].ID != 1 || got[1].ID != 2 || got[2].ID != 0 {
		t.Errorf("order = %v", got)
	}
	if in[0].ID != 0 || in[1].ID != 1 || in[2].ID != 2 {
		t.Errorf("input mutated: %v", in)
	}
}

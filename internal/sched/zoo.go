package sched

// Shared plumbing for the competitor zoo (DESIGN.md §15): the related-work
// schedulers (ER-LS, HLP, CLB2C, PriorityAware, Affinity) all decompose
// into "pick a class for the next task, put it on the least-loaded worker
// of that class" (independent instances) or "hand each idle worker the
// next task its class's queue offers" (DAG instances). The helpers below
// factor those two skeletons out so each algorithm file only contains its
// allocation rule and queue discipline, and all of them inherit the same
// deterministic tie-breaking (worker index via loadHeap, task arrival
// sequence via classQueue).

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/sim"
)

// classPlacer builds an independent-task schedule by placing each task on
// the least-loaded worker of a chosen class (ties to the smallest worker
// index). It is the offline counterpart of the online event loop: with
// independent tasks, "least-loaded worker" is exactly the worker that
// would idle first.
type classPlacer struct {
	pl    platform.Platform
	heaps [platform.NumKinds]loadHeap
	s     *sim.Schedule
}

func newClassPlacer(pl platform.Platform) *classPlacer {
	cp := &classPlacer{pl: pl, s: &sim.Schedule{Platform: pl}}
	for w := 0; w < pl.Workers(); w++ {
		cp.heaps[pl.KindOf(w)].push(loadEntry{worker: w})
	}
	return cp
}

// has reports whether the platform has any worker of class k.
func (cp *classPlacer) has(k platform.Kind) bool { return cp.heaps[k].len() > 0 }

// end returns the completion time t would have if placed now on class k,
// which must be non-empty.
func (cp *classPlacer) end(t platform.Task, k platform.Kind) float64 {
	return cp.heaps[k].min().load + t.Time(k)
}

// place puts t on the least-loaded worker of class k. If the platform has
// no worker of class k, the task falls back to the other class (callers
// that care about failover semantics check has() first).
func (cp *classPlacer) place(t platform.Task, k platform.Kind) {
	if !cp.has(k) {
		k = k.Other()
	}
	h := &cp.heaps[k]
	e := h.min()
	d := t.Time(k)
	cp.s.Entries = append(cp.s.Entries, sim.Entry{
		TaskID: t.ID, Worker: e.worker, Kind: k,
		Start: e.load, End: e.load + d,
	})
	h.increaseMin(d)
}

// schedule returns the accumulated schedule.
func (cp *classPlacer) schedule() *sim.Schedule { return cp.s }

// zooTaskEntry is one pending task in a classQueue, tagged with its
// arrival sequence number for deterministic tie-breaking.
type zooTaskEntry struct {
	t   platform.Task
	seq int
}

// classQueue is a pending pool picking tasks by decreasing priority, with
// arrival order breaking ties — the queue discipline shared by the zoo's
// priority-list DAG schedulers.
type classQueue struct {
	pending []zooTaskEntry
}

func (q *classQueue) add(t platform.Task, seq int) {
	q.pending = append(q.pending, zooTaskEntry{t, seq})
}

func (q *classQueue) empty() bool { return len(q.pending) == 0 }

// pop removes and returns the highest-priority pending task (earliest
// arrival on ties); ok is false when the queue is empty.
func (q *classQueue) pop() (platform.Task, bool) {
	best := -1
	for i, p := range q.pending {
		if best < 0 {
			best = i
			continue
		}
		b := q.pending[best]
		if p.t.Priority > b.t.Priority ||
			//hplint:allow floateq priorities are copied inputs; == only routes equal-priority pairs to the stable seq tie-break
			(p.t.Priority == b.t.Priority && p.seq < b.seq) {
			best = i
		}
	}
	if best < 0 {
		return platform.Task{}, false
	}
	t := q.pending[best].t
	q.pending = append(q.pending[:best], q.pending[best+1:]...)
	return t, true
}

// runOnlineList drives the shared online list-scheduling event loop: admit
// receives the IDs of tasks that just became ready, pick hands idle worker
// w of class kind its next task (ok=false when nothing is available for
// that class). GPUs are served before CPUs at each decision point, like
// every other event loop in this package.
func runOnlineList(g *dag.Graph, pl platform.Platform,
	admit func(ids []int), pick func(w int, kind platform.Kind) (platform.Task, bool)) (*sim.Schedule, error) {
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	k := sim.NewKernel(pl)
	rt := dag.NewReadyTracker(g)
	admit(rt.Drain())
	for {
		for _, kind := range []platform.Kind{platform.GPU, platform.CPU} {
			for _, w := range k.IdleWorkers(kind) {
				t, ok := pick(w, kind)
				if !ok {
					break
				}
				k.Start(w, t, false)
			}
		}
		run, ok := k.CompleteNext()
		if !ok {
			break
		}
		rt.Complete(run.Task.ID)
		admit(rt.Drain())
	}
	if !rt.Done() {
		return nil, fmt.Errorf("sched: online list scheduler finished with %d tasks remaining", rt.Remaining())
	}
	return k.Schedule(), nil
}

package sched

import (
	"repro/internal/bounds"
	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/sim"
)

// PriorityAware reconstructs the priority-aware CPU-GPU scheduler of Chen
// and Marculescu (arXiv 1712.03246) in this repository's model: a global
// allocation oracle fixes each task's class before dispatch, and tasks are
// then dispatched strictly by priority. The oracle here is the optimal
// divisible-load solution (bounds.Area): tasks whose fractional CPU share
// rounds to a whole class are pinned there, and the at-most-one split task
// of Lemma 2 stays flexible, going wherever it completes earliest at
// dispatch time. The original targets measured-power mobile platforms, so
// this is a reconstruction in spirit; its contract in the ratio suite is a
// pinned empirical bound, not a theorem from the paper.

// priAwareEps separates "pinned to a class" from "split" fractions.
const priAwareEps = 1e-9

// priAwareKind resolves one task's class from its fractional CPU share f:
// pinned classes win, and split tasks take the class completing them
// earliest right now (ties to CPU). Empty classes defer to the other side.
func priAwareKind(t platform.Task, f float64, cp *classPlacer) platform.Kind {
	switch {
	case !cp.has(platform.GPU):
		return platform.CPU
	case !cp.has(platform.CPU):
		return platform.GPU
	case f >= 1-priAwareEps:
		return platform.CPU
	case f <= priAwareEps:
		return platform.GPU
	}
	if cp.end(t, platform.CPU) <= cp.end(t, platform.GPU) {
		return platform.CPU
	}
	return platform.GPU
}

// PriorityAwareIndependent schedules an independent instance with the
// priority-aware policy: area-bound allocation oracle, priority-descending
// dispatch, least-loaded worker within the class.
func PriorityAwareIndependent(in platform.Instance, pl platform.Platform) (*sim.Schedule, error) {
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	sol, err := bounds.Area(in, pl)
	if err != nil {
		return nil, err
	}
	cp := newClassPlacer(pl)
	for _, t := range sortedByPriorityDesc(in) {
		cp.place(t, priAwareKind(t, sol.CPUFraction[t.ID], cp))
	}
	return cp.schedule(), nil
}

// PriorityAwareDAG schedules a task graph with the online form of the
// policy: the allocation oracle is computed once over all tasks of the
// graph, and each idle worker takes the highest-priority ready task that
// is pinned to its class or split (arrival order breaks priority ties).
func PriorityAwareDAG(g *dag.Graph, pl platform.Platform) (*sim.Schedule, error) {
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	sol, err := bounds.Area(g.Tasks(), pl)
	if err != nil {
		return nil, err
	}
	// eligible reports whether a ready task may run on class kind: pinned
	// tasks only on their class, split tasks on either (single-class
	// platforms take everything).
	eligible := func(t platform.Task, kind platform.Kind) bool {
		if pl.Count(kind.Other()) == 0 {
			return true
		}
		f := sol.CPUFraction[t.ID]
		if kind == platform.CPU {
			return f > priAwareEps
		}
		return f < 1-priAwareEps
	}
	var pending []zooTaskEntry
	seq := 0
	admit := func(ids []int) {
		for _, id := range ids {
			pending = append(pending, zooTaskEntry{g.Task(id), seq})
			seq++
		}
	}
	pick := func(_ int, kind platform.Kind) (platform.Task, bool) {
		best := -1
		for i, p := range pending {
			if !eligible(p.t, kind) {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			b := pending[best]
			if p.t.Priority > b.t.Priority ||
				//hplint:allow floateq priorities are copied inputs; == only routes equal-priority pairs to the stable seq tie-break
				(p.t.Priority == b.t.Priority && p.seq < b.seq) {
				best = i
			}
		}
		if best < 0 {
			return platform.Task{}, false
		}
		t := pending[best].t
		pending = append(pending[:best], pending[best+1:]...)
		return t, true
	}
	return runOnlineList(g, pl, admit, pick)
}

// PriorityAwareDAGWithPriorities assigns bottom-level priorities under the
// given weighting and runs PriorityAwareDAG.
func PriorityAwareDAGWithPriorities(g *dag.Graph, pl platform.Platform, w dag.Weighting) (*sim.Schedule, error) {
	if _, err := g.AssignBottomLevelPriorities(w, pl); err != nil {
		return nil, err
	}
	return PriorityAwareDAG(g, pl)
}

package sched

// loadEntry is one worker's accumulated load in a loadHeap.
type loadEntry struct {
	load   float64
	worker int
}

// loadHeap is a binary min-heap on load, with ties broken by worker index
// for determinism. It supports the two operations DualHP's fitting pass
// needs: inspect the minimum and add work to it.
type loadHeap struct {
	xs []loadEntry
}

func (h *loadHeap) len() int { return len(h.xs) }

func (h *loadHeap) less(i, j int) bool {
	if h.xs[i].load != h.xs[j].load {
		return h.xs[i].load < h.xs[j].load
	}
	return h.xs[i].worker < h.xs[j].worker
}

func (h *loadHeap) push(e loadEntry) {
	h.xs = append(h.xs, e)
	i := len(h.xs) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.xs[p], h.xs[i] = h.xs[i], h.xs[p]
		i = p
	}
}

// min returns the least-loaded entry; the heap must be non-empty.
func (h *loadHeap) min() loadEntry { return h.xs[0] }

// increaseMin adds d to the minimum entry's load and restores heap order.
func (h *loadHeap) increaseMin(d float64) {
	h.xs[0].load += d
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.xs) && h.less(l, small) {
			small = l
		}
		if r < len(h.xs) && h.less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		h.xs[i], h.xs[small] = h.xs[small], h.xs[i]
		i = small
	}
}

package sched

import (
	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/sim"
)

// CLB2C is the Cluster Load Balancing algorithm for two clusters surveyed
// in Beaumont, Eyraud-Dubois et al., "Scheduling on Two Types of
// Resources: a Survey" (arXiv 1909.11365): the tasks sit in one list
// sorted by acceleration factor; at each step the two candidate moves are
// "the least-loaded CPU takes the least-accelerated remaining task" and
// "the least-loaded GPU takes the most-accelerated remaining task", and
// the move that completes earlier is committed (ties go to the CPU side).
//
// The survey proves makespan <= 2*OPT whenever every task is small
// (max(p_i, q_i) <= OPT); without that condition the ratio is unbounded,
// which TestZooWorstCases exhibits with a single GPU-hungry task. The
// ratio suite therefore checks the 2*OPT contract only on trials where
// the smallness condition holds, and counts how often it applied.

// CLB2CIndependent schedules an independent instance with CLB2C.
func CLB2CIndependent(in platform.Instance, pl platform.Platform) (*sim.Schedule, error) {
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	sorted := in.Clone()
	sorted.SortByAccelDesc()
	cp := newClassPlacer(pl)
	lo, hi := 0, len(sorted)-1
	for lo <= hi {
		useCPU := false
		switch {
		case !cp.has(platform.GPU):
			useCPU = true
		case !cp.has(platform.CPU):
			useCPU = false
		default:
			useCPU = cp.end(sorted[hi], platform.CPU) <= cp.end(sorted[lo], platform.GPU)
		}
		if useCPU {
			cp.place(sorted[hi], platform.CPU)
			hi--
		} else {
			cp.place(sorted[lo], platform.GPU)
			lo++
		}
	}
	return cp.schedule(), nil
}

// CLB2CDAG schedules a task graph with the online adaptation of CLB2C:
// ready tasks are kept sorted by acceleration factor, and an idle GPU
// takes the most-accelerated ready task while an idle CPU takes the
// least-accelerated one (the completion-time comparison of the offline
// rule degenerates online, since only idle workers ask for work).
func CLB2CDAG(g *dag.Graph, pl platform.Platform) (*sim.Schedule, error) {
	var dq accelDeque
	admit := func(ids []int) {
		for _, id := range ids {
			dq.insert(g.Task(id))
		}
	}
	pick := func(_ int, kind platform.Kind) (platform.Task, bool) {
		if dq.empty() {
			return platform.Task{}, false
		}
		if kind == platform.GPU {
			return dq.popFront(), true
		}
		return dq.popBack(), true
	}
	return runOnlineList(g, pl, admit, pick)
}

// accelDeque is a deque of tasks kept sorted by non-increasing
// acceleration factor (ties by increasing task ID, so insertion order
// never matters). GPU-side consumers pop the front, CPU-side consumers
// the back. It is shared by CLB2C's and Affinity's DAG variants.
type accelDeque struct {
	tasks []platform.Task
}

func (d *accelDeque) empty() bool { return len(d.tasks) == 0 }
func (d *accelDeque) len() int    { return len(d.tasks) }

// insert places t at its sorted position.
func (d *accelDeque) insert(t platform.Task) {
	a := t.Accel()
	i := len(d.tasks)
	for i > 0 {
		prev := d.tasks[i-1]
		pa := prev.Accel()
		if pa > a || (pa == a && prev.ID < t.ID) { //hplint:allow floateq equal factors fall through to the ID tie-break; both orderings are valid, one is picked deterministically
			break
		}
		i--
	}
	d.tasks = append(d.tasks, platform.Task{})
	copy(d.tasks[i+1:], d.tasks[i:])
	d.tasks[i] = t
}

// popFront removes and returns the most-accelerated task.
func (d *accelDeque) popFront() platform.Task {
	t := d.tasks[0]
	d.tasks = d.tasks[1:]
	return t
}

// popBack removes and returns the least-accelerated task.
func (d *accelDeque) popBack() platform.Task {
	t := d.tasks[len(d.tasks)-1]
	d.tasks = d.tasks[:len(d.tasks)-1]
	return t
}

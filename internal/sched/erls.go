package sched

import (
	"math"

	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/sim"
)

// ER-LS is the Enhanced Rules list scheduler of Amaris, Lucarelli,
// Mommessin and Trystram ("Generic algorithms for scheduling applications
// on hybrid multi-core machines", arXiv 1711.06433): each task is
// allocated to the CPU class when p_j/sqrt(m) <= q_j/sqrt(n) and to the
// GPU class otherwise, then a greedy list schedule runs each class. The
// sqrt rule balances the two terms of the per-class load bound, giving a
// proven competitive ratio of 3+2*sqrt(2) (~5.83) that holds online and
// for DAGs — independent instances are the edge-free special case.

// ERLSKind returns the class the ER-LS allocation rule gives t on pl:
// CPU when p/sqrt(m) <= q/sqrt(n), GPU otherwise. Degenerate platforms
// fall back to the only populated class.
func ERLSKind(t platform.Task, pl platform.Platform) platform.Kind {
	switch {
	case pl.GPUs == 0:
		return platform.CPU
	case pl.CPUs == 0:
		return platform.GPU
	}
	if t.CPUTime/math.Sqrt(float64(pl.CPUs)) <= t.GPUTime/math.Sqrt(float64(pl.GPUs)) {
		return platform.CPU
	}
	return platform.GPU
}

// ERLSIndependent schedules an independent instance with ER-LS: tasks are
// taken in priority order (highest first, input order on ties), allocated
// by the sqrt rule, and placed on the least-loaded worker of their class.
func ERLSIndependent(in platform.Instance, pl platform.Platform) (*sim.Schedule, error) {
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	cp := newClassPlacer(pl)
	for _, t := range sortedByPriorityDesc(in) {
		cp.place(t, ERLSKind(t, pl))
	}
	return cp.schedule(), nil
}

// ERLSDAG schedules a task graph online with ER-LS: tasks are allocated to
// their class the moment they become ready, and each class runs a priority
// list schedule (assign priorities first, e.g. with
// AssignBottomLevelPriorities; zero priorities degrade to ready order).
func ERLSDAG(g *dag.Graph, pl platform.Platform) (*sim.Schedule, error) {
	var queues [platform.NumKinds]classQueue
	seq := 0
	admit := func(ids []int) {
		for _, id := range ids {
			t := g.Task(id)
			queues[ERLSKind(t, pl)].add(t, seq)
			seq++
		}
	}
	pick := func(_ int, kind platform.Kind) (platform.Task, bool) {
		return queues[kind].pop()
	}
	return runOnlineList(g, pl, admit, pick)
}

// ERLSDAGWithPriorities assigns bottom-level priorities under the given
// weighting and runs ERLSDAG.
func ERLSDAGWithPriorities(g *dag.Graph, pl platform.Platform, w dag.Weighting) (*sim.Schedule, error) {
	if _, err := g.AssignBottomLevelPriorities(w, pl); err != nil {
		return nil, err
	}
	return ERLSDAG(g, pl)
}

package sched

import (
	"math"
	"sort"

	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/sim"
)

// The greedy baselines below fill out the comparison space around
// HeteroPrio: MCT is the classic "earliest completion time" rule most
// runtime systems default to (and the historical scheduler the paper's
// Section 2.1 describes), and LPTPerClass is the affinity-blind
// longest-processing-time heuristic. Both are list schedulers without
// spoliation, so neither has a bounded approximation ratio on unrelated
// resources (Section 3) — tests exhibit the gap.

// MCTIndependent schedules independent tasks with the Minimum Completion
// Time rule: tasks are taken in priority order (highest first, then input
// order) and placed on the worker that completes them earliest.
func MCTIndependent(in platform.Instance, pl platform.Platform) (*sim.Schedule, error) {
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	order := in.Clone()
	sort.SliceStable(order, func(i, j int) bool { return order[i].Priority > order[j].Priority })
	loads := make([]float64, pl.Workers())
	s := &sim.Schedule{Platform: pl}
	for _, t := range order {
		best, bestEnd := -1, math.Inf(1)
		for w := 0; w < pl.Workers(); w++ {
			if end := loads[w] + t.Time(pl.KindOf(w)); end < bestEnd {
				best, bestEnd = w, end
			}
		}
		k := pl.KindOf(best)
		s.Entries = append(s.Entries, sim.Entry{
			TaskID: t.ID, Worker: best, Kind: k,
			Start: loads[best], End: bestEnd,
		})
		loads[best] = bestEnd
	}
	return s, nil
}

// MCTDAG schedules a task graph online with the MCT rule: whenever a
// worker would idle, the ready task with the highest priority is placed
// on the worker completing it earliest among the currently idle ones.
func MCTDAG(g *dag.Graph, pl platform.Platform) (*sim.Schedule, error) {
	return MCTDAGTimed(g, pl, nil)
}

// MCTDAGTimed is MCTDAG with an explicit duration model (nil means
// nominal): decisions use nominal times, runs take actual durations.
func MCTDAGTimed(g *dag.Graph, pl platform.Platform, actual func(t platform.Task, k platform.Kind) float64) (*sim.Schedule, error) {
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if actual == nil {
		actual = func(t platform.Task, k platform.Kind) float64 { return t.Time(k) }
	}
	k := sim.NewKernel(pl)
	rt := dag.NewReadyTracker(g)
	var ready []int
	admit := func() { ready = append(ready, rt.Drain()...) }
	assign := func() {
		for len(ready) > 0 {
			// Highest-priority ready task first.
			best := 0
			for i := 1; i < len(ready); i++ {
				if g.Task(ready[i]).Priority > g.Task(ready[best]).Priority {
					best = i
				}
			}
			t := g.Task(ready[best])
			// Idle worker with the earliest completion for t.
			bw, bend := -1, math.Inf(1)
			for w := 0; w < pl.Workers(); w++ {
				if k.Busy(w) {
					continue
				}
				if end := k.Now + t.Time(pl.KindOf(w)); end < bend {
					bw, bend = w, end
				}
			}
			if bw < 0 {
				return
			}
			ready = append(ready[:best], ready[best+1:]...)
			k.StartTimed(bw, t, actual(t, pl.KindOf(bw)), false)
		}
	}
	admit()
	for {
		assign()
		run, ok := k.CompleteNext()
		if !ok {
			break
		}
		rt.Complete(run.Task.ID)
		admit()
	}
	return k.Schedule(), nil
}

// LPTPerClass schedules independent tasks with the affinity-blind
// longest-processing-time rule: tasks sorted by decreasing min duration,
// each placed on the worker finishing it earliest (ties to CPUs). It is a
// strawman showing what ignoring acceleration factors costs.
func LPTPerClass(in platform.Instance, pl platform.Platform) (*sim.Schedule, error) {
	sorted := in.Clone()
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].MinTime() > sorted[j].MinTime() })
	for i := range sorted {
		sorted[i].Priority = 0
	}
	return MCTIndependent(sorted, pl)
}

package sched

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/sim"
)

// ReplayAssignment executes a fixed task-to-worker assignment online with
// an explicit duration model: whenever a worker is free, it starts the
// highest-rank ready task assigned to it. This turns an offline plan
// (e.g. HEFT's) into an executable policy under estimation noise — the
// worker choices are kept, the start times adapt to the actual durations.
func ReplayAssignment(g *dag.Graph, pl platform.Platform, assign []int, rank []float64,
	actual func(t platform.Task, k platform.Kind) float64) (*sim.Schedule, error) {
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if len(assign) != g.Len() || len(rank) != g.Len() {
		return nil, fmt.Errorf("sched: assignment/rank size %d/%d, want %d", len(assign), len(rank), g.Len())
	}
	for id, w := range assign {
		if w < 0 || w >= pl.Workers() {
			return nil, fmt.Errorf("sched: task %d assigned to invalid worker %d", id, w)
		}
	}
	if actual == nil {
		actual = func(t platform.Task, k platform.Kind) float64 { return t.Time(k) }
	}

	k := sim.NewKernel(pl)
	rt := dag.NewReadyTracker(g)
	// readyOn[w] holds ready-unstarted task IDs assigned to worker w.
	readyOn := make([][]int, pl.Workers())
	admit := func() {
		for _, id := range rt.Drain() {
			w := assign[id]
			readyOn[w] = append(readyOn[w], id)
		}
	}
	assignIdle := func() {
		for w := 0; w < pl.Workers(); w++ {
			if k.Busy(w) || len(readyOn[w]) == 0 {
				continue
			}
			best := 0
			for i := 1; i < len(readyOn[w]); i++ {
				if rank[readyOn[w][i]] > rank[readyOn[w][best]] {
					best = i
				}
			}
			id := readyOn[w][best]
			readyOn[w] = append(readyOn[w][:best], readyOn[w][best+1:]...)
			t := g.Task(id)
			k.StartTimed(w, t, actual(t, pl.KindOf(w)), false)
		}
	}

	admit()
	for {
		assignIdle()
		run, ok := k.CompleteNext()
		if !ok {
			break
		}
		rt.Complete(run.Task.ID)
		admit()
	}
	if !rt.Done() {
		return nil, fmt.Errorf("sched: replay stalled with %d tasks remaining", rt.Remaining())
	}
	return k.Schedule(), nil
}

// HEFTTimed plans with HEFT on the nominal processing times and replays
// the resulting task-to-worker assignment with the actual durations.
// With actual == nil it is equivalent in assignment (though not always in
// intra-worker order) to HEFT itself.
func HEFTTimed(g *dag.Graph, pl platform.Platform, w dag.Weighting,
	actual func(t platform.Task, k platform.Kind) float64) (*sim.Schedule, error) {
	plan, err := HEFT(g, pl, w)
	if err != nil {
		return nil, err
	}
	assign := make([]int, g.Len())
	for _, e := range plan.Entries {
		assign[e.TaskID] = e.Worker
	}
	rank, err := g.BottomLevels(w, pl)
	if err != nil {
		return nil, err
	}
	return ReplayAssignment(g, pl, assign, rank, actual)
}

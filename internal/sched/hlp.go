package sched

import (
	"fmt"
	"sort"

	"repro/internal/dag"
	"repro/internal/lp"
	"repro/internal/platform"
	"repro/internal/sim"
)

// HLP is the LP-rounding allocator of the generic-algorithms family
// (Amaris, Lucarelli, Mommessin, Trystram, arXiv 1711.06433): solve the
// fractional allocation LP — minimize lambda subject to the two class area
// constraints and, per task, x_j*p_j + (1-x_j)*q_j <= lambda — then round
// x_j >= 1/2 to the CPU class and list-schedule each class greedily.
//
// The rounding argument gives a self-contained 4-approximation for
// independent tasks (the bound TestZooRatioProperties pins):
//
//	class work after rounding <= 2 * (fractional class work) <= 2*m*lambda
//	rounded per-task time     <= lambda / max(x, 1-x)        <= 2*lambda
//	greedy class makespan     <= work/m + max task           <= 4*lambda
//
// and lambda <= OPT because the integral optimum is LP-feasible. The DAG
// variant adds fractional completion-time variables along edges before
// rounding; its list phase is online, so its contract in the ratio suite
// is a pinned empirical bound rather than a theorem.

// hlpAllocIndependent solves the independent-task allocation LP and
// returns the rounded class of each task (index-aligned with in) together
// with the LP optimum lambda.
func hlpAllocIndependent(in platform.Instance, pl platform.Platform) ([]platform.Kind, float64, error) {
	kinds := make([]platform.Kind, len(in))
	if done, err := hlpDegenerate(kinds, pl); done || err != nil {
		return kinds, 0, err
	}
	n := len(in)
	if n == 0 {
		return kinds, 0, nil
	}
	// Variables: x_0..x_{n-1} (CPU fractions), then lambda.
	nv := n + 1
	obj := make([]float64, nv)
	obj[n] = 1
	rows := make([]lp.Constraint, 0, n*2+2)
	rows = append(rows, hlpAreaRows(in, pl, nv, n)...)
	for i, t := range in {
		// x_i*p_i + (1-x_i)*q_i <= lambda
		c := lp.Constraint{Coeffs: make([]float64, nv), Rel: lp.LE, Bound: -t.GPUTime}
		c.Coeffs[i] = t.CPUTime - t.GPUTime
		c.Coeffs[n] = -1
		rows = append(rows, c)
		// x_i <= 1
		u := lp.Constraint{Coeffs: make([]float64, nv), Rel: lp.LE, Bound: 1}
		u.Coeffs[i] = 1
		rows = append(rows, u)
	}
	x, lambda, err := hlpSolve(obj, rows)
	if err != nil {
		return nil, 0, err
	}
	for i := range in {
		kinds[i] = hlpRound(x[i])
	}
	return kinds, lambda, nil
}

// hlpDegenerate fills kinds for single-class platforms, reporting whether
// it did (no LP needed).
func hlpDegenerate(kinds []platform.Kind, pl platform.Platform) (bool, error) {
	if err := pl.Validate(); err != nil {
		return false, err
	}
	switch {
	case pl.GPUs == 0:
		return true, nil // zero value is CPU
	case pl.CPUs == 0:
		for i := range kinds {
			kinds[i] = platform.GPU
		}
		return true, nil
	}
	return false, nil
}

// hlpAreaRows builds the two aggregate capacity rows shared by both LPs:
// sum x_i p_i <= m*lambda and sum (1-x_i) q_i <= n*lambda. lambdaAt is the
// column index of lambda; task i's fraction lives in column i.
func hlpAreaRows(in platform.Instance, pl platform.Platform, nv, lambdaAt int) []lp.Constraint {
	cpu := lp.Constraint{Coeffs: make([]float64, nv), Rel: lp.LE}
	gpu := lp.Constraint{Coeffs: make([]float64, nv), Rel: lp.LE}
	var totalQ float64
	for i, t := range in {
		cpu.Coeffs[i] = t.CPUTime
		gpu.Coeffs[i] = -t.GPUTime
		totalQ += t.GPUTime
	}
	cpu.Coeffs[lambdaAt] = -float64(pl.CPUs)
	gpu.Coeffs[lambdaAt] = -float64(pl.GPUs)
	gpu.Bound = -totalQ
	return []lp.Constraint{cpu, gpu}
}

// hlpSolve runs the simplex and surfaces non-optimal outcomes as errors.
func hlpSolve(obj []float64, rows []lp.Constraint) ([]float64, float64, error) {
	sol, err := lp.Solve(&lp.Problem{Objective: obj, Rows: rows})
	if err != nil {
		return nil, 0, err
	}
	if sol.Status != lp.Optimal {
		return nil, 0, fmt.Errorf("sched: HLP allocation LP returned %v", sol.Status)
	}
	return sol.X, sol.Value, nil
}

// hlpRound maps a fractional CPU share to a class: x >= 1/2 rounds to CPU.
func hlpRound(x float64) platform.Kind {
	if x >= 0.5 {
		return platform.CPU
	}
	return platform.GPU
}

// HLPIndependent schedules an independent instance with HLP: LP
// allocation, rounding, then longest-processing-time list scheduling
// within each class on the least-loaded worker.
func HLPIndependent(in platform.Instance, pl platform.Platform) (*sim.Schedule, error) {
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	kinds, _, err := hlpAllocIndependent(in, pl)
	if err != nil {
		return nil, err
	}
	// LPT within the assigned class (stable, so equal durations keep input
	// order). Sorting an index slice keeps the input instance untouched.
	idx := make([]int, len(in))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return in[idx[a]].Time(kinds[idx[a]]) > in[idx[b]].Time(kinds[idx[b]])
	})
	cp := newClassPlacer(pl)
	for _, i := range idx {
		cp.place(in[i], kinds[i])
	}
	return cp.schedule(), nil
}

// hlpAllocDAG solves the DAG allocation LP (fractional allocations plus
// per-task completion times chained along edges) and returns the rounded
// class of each task, indexed by task ID.
func hlpAllocDAG(g *dag.Graph, pl platform.Platform) ([]platform.Kind, error) {
	in := g.Tasks()
	kinds := make([]platform.Kind, len(in))
	if done, err := hlpDegenerate(kinds, pl); done || err != nil {
		return kinds, err
	}
	n := len(in)
	if n == 0 {
		return kinds, nil
	}
	// Variables: x_0..x_{n-1}, C_0..C_{n-1}, lambda.
	nv := 2*n + 1
	obj := make([]float64, nv)
	obj[2*n] = 1
	rows := make([]lp.Constraint, 0, 3*n+g.Edges()+2)
	rows = append(rows, hlpAreaRows(in, pl, nv, 2*n)...)
	for i, t := range in {
		// C_i >= x_i*p_i + (1-x_i)*q_i (duration of the task itself).
		c := lp.Constraint{Coeffs: make([]float64, nv), Rel: lp.LE, Bound: -t.GPUTime}
		c.Coeffs[i] = t.CPUTime - t.GPUTime
		c.Coeffs[n+i] = -1
		rows = append(rows, c)
		// C_i <= lambda.
		l := lp.Constraint{Coeffs: make([]float64, nv), Rel: lp.LE}
		l.Coeffs[n+i] = 1
		l.Coeffs[2*n] = -1
		rows = append(rows, l)
		// x_i <= 1.
		u := lp.Constraint{Coeffs: make([]float64, nv), Rel: lp.LE, Bound: 1}
		u.Coeffs[i] = 1
		rows = append(rows, u)
		// Precedence: C_v >= C_u + duration(v) for each edge (u, v).
		for _, v := range g.Succs(t.ID) {
			tv := g.Task(v)
			e := lp.Constraint{Coeffs: make([]float64, nv), Rel: lp.LE, Bound: -tv.GPUTime}
			e.Coeffs[n+t.ID] = 1
			e.Coeffs[n+v] = -1
			e.Coeffs[v] = tv.CPUTime - tv.GPUTime
			rows = append(rows, e)
		}
	}
	x, _, err := hlpSolve(obj, rows)
	if err != nil {
		return nil, err
	}
	for i := range in {
		kinds[i] = hlpRound(x[i])
	}
	return kinds, nil
}

// HLPDAG schedules a task graph with HLP: the DAG allocation LP fixes each
// task's class up front, then an online priority list schedule runs each
// class (assign priorities first, e.g. with AssignBottomLevelPriorities).
func HLPDAG(g *dag.Graph, pl platform.Platform) (*sim.Schedule, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	kinds, err := hlpAllocDAG(g, pl)
	if err != nil {
		return nil, err
	}
	var queues [platform.NumKinds]classQueue
	seq := 0
	admit := func(ids []int) {
		for _, id := range ids {
			queues[kinds[id]].add(g.Task(id), seq)
			seq++
		}
	}
	pick := func(_ int, kind platform.Kind) (platform.Task, bool) {
		return queues[kind].pop()
	}
	return runOnlineList(g, pl, admit, pick)
}

// HLPDAGWithPriorities assigns bottom-level priorities under the given
// weighting and runs HLPDAG.
func HLPDAGWithPriorities(g *dag.Graph, pl platform.Platform, w dag.Weighting) (*sim.Schedule, error) {
	if _, err := g.AssignBottomLevelPriorities(w, pl); err != nil {
		return nil, err
	}
	return HLPDAG(g, pl)
}

package sched

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/sim"
)

// Ranking selects the order in which DualHP processes the tasks assigned to
// a resource class (Section 6.2).
type Ranking int

const (
	// RankFIFO keeps the order in which tasks became ready (or input order
	// for independent instances).
	RankFIFO Ranking = iota
	// RankAvg orders by decreasing priority, where priorities are expected
	// to be bottom levels under the avg weighting.
	RankAvg
	// RankMin orders by decreasing priority computed with min weighting.
	RankMin
)

// String implements fmt.Stringer.
func (r Ranking) String() string {
	switch r {
	case RankFIFO:
		return "fifo"
	case RankAvg:
		return "avg"
	case RankMin:
		return "min"
	default:
		return fmt.Sprintf("Ranking(%d)", int(r))
	}
}

// dualAssign implements the core of DualHP for one guess lambda: given
// per-worker initial loads and the tasks sorted by non-increasing
// acceleration factor, it either fills out[i] with a worker for sorted[i]
// such that no worker's total load exceeds 2*lambda, or reports failure
// (meaning lambda < C_max^Opt, up to the heuristic's guarantee).
//
// Following the paper's description: any task with processing time more
// than lambda on one resource class is assigned to the other class; then
// remaining tasks are assigned to the GPUs by decreasing acceleration
// factor while they fit under 2*lambda, and the rest goes to the CPUs.
func dualAssign(sorted platform.Instance, pl platform.Platform, initLoad []float64, lambda float64, out []int) bool {
	var heaps [platform.NumKinds]loadHeap
	for w := 0; w < pl.Workers(); w++ {
		heaps[pl.KindOf(w)].push(loadEntry{load: initLoad[w], worker: w})
	}
	place := func(t platform.Task, k platform.Kind) (int, bool) {
		h := &heaps[k]
		if h.len() == 0 {
			return -1, false
		}
		e := h.min()
		if e.load+t.Time(k) > 2*lambda+1e-9 {
			return -1, false
		}
		h.increaseMin(t.Time(k))
		return e.worker, true
	}

	// Forced pass: tasks too long for one class go to the other.
	for i, t := range sorted {
		out[i] = -1
		pBig := t.CPUTime > lambda+1e-12
		qBig := t.GPUTime > lambda+1e-12
		switch {
		case pBig && qBig:
			return false
		case pBig:
			w, ok := place(t, platform.GPU)
			if !ok {
				return false
			}
			out[i] = w
		case qBig:
			w, ok := place(t, platform.CPU)
			if !ok {
				return false
			}
			out[i] = w
		}
	}
	// Remaining pass: GPUs by decreasing acceleration factor while they
	// fit, then CPUs.
	gpuOpen := pl.GPUs > 0
	for i, t := range sorted {
		if out[i] >= 0 {
			continue
		}
		if gpuOpen {
			if w, ok := place(t, platform.GPU); ok {
				out[i] = w
				continue
			}
			gpuOpen = false
		}
		w, ok := place(t, platform.CPU)
		if !ok {
			return false
		}
		out[i] = w
	}
	return true
}

// dualSearch binary-searches the smallest feasible lambda. It returns the
// tasks sorted by non-increasing acceleration factor and, aligned with
// them, the per-task worker assignment of the best feasible lambda.
func dualSearch(tasks platform.Instance, pl platform.Platform, initLoad []float64) (platform.Instance, []int, error) {
	sorted := tasks.Clone()
	sorted.SortByAccelDesc()
	best := make([]int, len(sorted))
	out := make([]int, len(sorted))
	hi := dualUpperBound(sorted, pl, initLoad)
	lo := 0.0
	if !dualAssign(sorted, pl, initLoad, hi, best) {
		return nil, nil, fmt.Errorf("sched: DualHP upper bound %v infeasible", hi)
	}
	for i := 0; i < 60 && hi-lo > 1e-6*hi; i++ {
		mid := (lo + hi) / 2
		if dualAssign(sorted, pl, initLoad, mid, out) {
			copy(best, out)
			hi = mid
		} else {
			lo = mid
		}
	}
	return sorted, best, nil
}

// dualUpperBound returns a lambda that is certainly feasible: the largest
// initial load plus the total work if every task ran on its best class on a
// single worker.
func dualUpperBound(tasks platform.Instance, pl platform.Platform, initLoad []float64) float64 {
	hi := 1.0
	for _, l := range initLoad {
		hi = math.Max(hi, l)
	}
	for _, t := range tasks {
		if pl.GPUs == 0 {
			hi += t.CPUTime
		} else if pl.CPUs == 0 {
			hi += t.GPUTime
		} else {
			hi += t.MinTime()
		}
	}
	return hi
}

// DualHPIndependent schedules an independent instance with the DualHP
// dual-approximation algorithm: binary search for the smallest lambda whose
// dual assignment fits in 2*lambda, then execute each worker's tasks back
// to back.
func DualHPIndependent(in platform.Instance, pl platform.Platform) (*sim.Schedule, error) {
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	sorted, assign, err := dualSearch(in, pl, make([]float64, pl.Workers()))
	if err != nil {
		return nil, err
	}
	s := &sim.Schedule{Platform: pl}
	loads := make([]float64, pl.Workers())
	for i, t := range sorted {
		w := assign[i]
		k := pl.KindOf(w)
		d := t.Time(k)
		s.Entries = append(s.Entries, sim.Entry{
			TaskID: t.ID, Worker: w, Kind: k,
			Start: loads[w], End: loads[w] + d,
		})
		loads[w] += d
	}
	return s, nil
}

// DualHPDAG schedules a task graph with the DAG adaptation of DualHP
// described in Section 6.2: each time a task becomes ready, the assignment
// of all ready-but-unstarted tasks is recomputed with the dual
// approximation, taking the remaining load of currently executing tasks
// into account; within a class, tasks are started in ranking order
// (fifo, or decreasing priority for avg/min — priorities must already be
// assigned to the graph, e.g. with AssignBottomLevelPriorities).
func DualHPDAG(g *dag.Graph, pl platform.Platform, rank Ranking) (*sim.Schedule, error) {
	return DualHPDAGTimed(g, pl, rank, nil)
}

// DualHPDAGTimed is DualHPDAG with an explicit duration model: actual, if
// non-nil, gives the true execution time of each run while all scheduling
// decisions (dual assignments, load estimates) keep using the nominal
// processing times — the estimation-noise setting.
func DualHPDAGTimed(g *dag.Graph, pl platform.Platform, rank Ranking, actual func(t platform.Task, k platform.Kind) float64) (*sim.Schedule, error) {
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if actual == nil {
		actual = func(t platform.Task, k platform.Kind) float64 { return t.Time(k) }
	}
	k := sim.NewKernel(pl)
	rt := dag.NewReadyTracker(g)

	// pending holds ready-but-unstarted tasks with their arrival order.
	type pendingTask struct {
		t   platform.Task
		seq int
	}
	var pending []pendingTask
	seq := 0
	// classOf maps task ID to its currently assigned class.
	classOf := make(map[int]platform.Kind, g.Len())

	admit := func() {
		for _, id := range rt.Drain() {
			pending = append(pending, pendingTask{g.Task(id), seq})
			seq++
		}
	}

	initLoad := make([]float64, pl.Workers())
	recompute := func() error {
		if len(pending) == 0 {
			return nil
		}
		for w := 0; w < pl.Workers(); w++ {
			initLoad[w] = 0
			if k.Busy(w) {
				// The scheduler only knows the estimated remaining time.
				if rem := k.RunOf(w).EstEnd - k.Now; rem > 0 {
					initLoad[w] = rem
				}
			}
		}
		tasks := make(platform.Instance, len(pending))
		for i, p := range pending {
			tasks[i] = p.t
		}
		sorted, assign, err := dualSearch(tasks, pl, initLoad)
		if err != nil {
			return err
		}
		for i := range sorted {
			classOf[sorted[i].ID] = pl.KindOf(assign[i])
		}
		return nil
	}

	// pick removes and returns the next pending task assigned to class
	// kind, honoring the ranking order. ok is false if none is pending.
	pick := func(kind platform.Kind) (platform.Task, bool) {
		best := -1
		for i, p := range pending {
			if classOf[p.t.ID] != kind {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			b := pending[best]
			switch rank {
			case RankFIFO:
				if p.seq < b.seq {
					best = i
				}
			default:
				if p.t.Priority > b.t.Priority ||
					//hplint:allow floateq priorities are copied inputs; == only routes equal-priority pairs to the stable seq tie-break
					(p.t.Priority == b.t.Priority && p.seq < b.seq) {
					best = i
				}
			}
		}
		if best < 0 {
			return platform.Task{}, false
		}
		t := pending[best].t
		pending = append(pending[:best], pending[best+1:]...)
		return t, true
	}

	assignWorkers := func() {
		for _, kind := range []platform.Kind{platform.GPU, platform.CPU} {
			for _, w := range k.IdleWorkers(kind) {
				t, ok := pick(kind)
				if !ok {
					break
				}
				k.StartTimed(w, t, actual(t, kind), false)
			}
		}
	}

	admit()
	if err := recompute(); err != nil {
		return nil, err
	}
	for {
		assignWorkers()
		run, ok := k.CompleteNext()
		if !ok {
			break
		}
		rt.Complete(run.Task.ID)
		before := len(pending)
		admit()
		if len(pending) != before {
			if err := recompute(); err != nil {
				return nil, err
			}
		}
	}
	if !rt.Done() {
		return nil, fmt.Errorf("sched: DualHP DAG finished with %d tasks remaining", rt.Remaining())
	}
	return k.Schedule(), nil
}

// DualHPDAGWithPriorities assigns bottom-level priorities for the ranking
// scheme (avg or min weighting; fifo skips priorities) and runs DualHPDAG.
func DualHPDAGWithPriorities(g *dag.Graph, pl platform.Platform, rank Ranking) (*sim.Schedule, error) {
	switch rank {
	case RankAvg:
		if _, err := g.AssignBottomLevelPriorities(dag.WeightAvg, pl); err != nil {
			return nil, err
		}
	case RankMin:
		if _, err := g.AssignBottomLevelPriorities(dag.WeightMin, pl); err != nil {
			return nil, err
		}
	}
	return DualHPDAG(g, pl, rank)
}

// sortedByPriorityDesc is a helper used in tests and experiments. It
// returns a sorted clone: scheduler inputs are read-only (see the purity
// analyzer), so even helpers follow the clone-then-sort discipline.
func sortedByPriorityDesc(in platform.Instance) platform.Instance {
	order := in.Clone()
	sort.SliceStable(order, func(i, j int) bool { return order[i].Priority > order[j].Priority })
	return order
}

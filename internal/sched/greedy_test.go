package sched

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/platform"
)

func TestMCTIndependentSimple(t *testing.T) {
	// Each task completes earliest on its favorite class.
	in := platform.Instance{task(0, 10, 1), task(1, 1, 10)}
	pl := platform.NewPlatform(1, 1)
	s, err := MCTIndependent(in, pl)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(in, nil); err != nil {
		t.Fatal(err)
	}
	if s.Makespan() != 1 {
		t.Errorf("makespan = %v, want 1", s.Makespan())
	}
}

func TestMCTIndependentInvalid(t *testing.T) {
	if _, err := MCTIndependent(platform.Instance{task(0, -1, 1)}, platform.NewPlatform(1, 1)); err == nil {
		t.Error("invalid instance accepted")
	}
	if _, err := MCTIndependent(nil, platform.Platform{}); err == nil {
		t.Error("invalid platform accepted")
	}
}

// TestMCTAffinityBlindness shows the cost of ignoring acceleration
// factors: a batch of barely-accelerated panel tasks followed by strongly
// accelerated update tasks. MCT greedily parks panels on the GPU early
// (their completion there is marginally earlier), so the updates later
// queue behind them; HeteroPrio routes panels to the CPU and updates to
// the GPU from the start.
func TestMCTAffinityBlindness(t *testing.T) {
	var in platform.Instance
	id := 0
	for i := 0; i < 10; i++ { // panels: accel ~1.1
		in = append(in, task(id, 1, 0.9))
		id++
	}
	for i := 0; i < 10; i++ { // updates: accel 50
		in = append(in, task(id, 50, 1))
		id++
	}
	pl := platform.NewPlatform(1, 1)
	mct, err := MCTIndependent(in, pl)
	if err != nil {
		t.Fatal(err)
	}
	if err := mct.Validate(in, nil); err != nil {
		t.Fatal(err)
	}
	hp, err := core.ScheduleIndependent(in, pl, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if mct.Makespan() <= hp.Makespan()*1.2 {
		t.Errorf("expected MCT clearly worse than HeteroPrio: %v vs %v",
			mct.Makespan(), hp.Makespan())
	}
}

func TestMCTDAGValidAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		g := dag.RandomLayered(dag.DefaultRandomLayeredConfig(), rng)
		pl := platform.NewPlatform(1+rng.Intn(3), 1+rng.Intn(2))
		if _, err := g.AssignBottomLevelPriorities(dag.WeightMin, pl); err != nil {
			t.Fatal(err)
		}
		s, err := MCTDAG(g, pl)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(g.Tasks(), g); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestMCTDAGInvalid(t *testing.T) {
	g := dag.New()
	a := g.AddTask(task(0, 1, 1))
	b := g.AddTask(task(1, 1, 1))
	g.AddEdge(a, b)
	g.AddEdge(b, a)
	if _, err := MCTDAG(g, platform.NewPlatform(1, 1)); err == nil {
		t.Error("cyclic graph accepted")
	}
	if _, err := MCTDAG(dag.New(), platform.Platform{}); err == nil {
		t.Error("invalid platform accepted")
	}
}

func TestLPTPerClass(t *testing.T) {
	in := platform.Instance{task(0, 3, 3), task(1, 2, 2), task(2, 2, 2), task(3, 1, 1)}
	pl := platform.NewPlatform(2, 0)
	s, err := LPTPerClass(in, pl)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(in, nil); err != nil {
		t.Fatal(err)
	}
	// LPT on {3,2,2,1} with 2 machines: 3+1 / 2+2 -> makespan 4.
	if s.Makespan() != 4 {
		t.Errorf("makespan = %v, want 4", s.Makespan())
	}
}

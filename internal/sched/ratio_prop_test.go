package sched

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// -ratio.paperscale grows the property instances to the paper's
// experimental sizes (thousands of tasks); the nightly job passes it, the
// default run keeps the suite fast.
var paperScale = flag.Bool("ratio.paperscale", false,
	"run the Table-2 ratio properties at paper-scale instance sizes (n up to 2000)")

// ratioTolerance absorbs float64 rounding in makespan/bound arithmetic;
// the theorems themselves are exact.
const ratioTolerance = 1e-9

// table2Ratio is the proven HeteroPrio approximation ratio for the
// platform shape (Table 2 of the paper): phi on 1+1 (Theorem 7), 1+phi on
// m+1 (Theorem 9), 2+sqrt(2) in general (Theorem 12).
func table2Ratio(pl platform.Platform) float64 {
	switch {
	case pl.CPUs == 1 && pl.GPUs == 1:
		return workloads.Phi
	case pl.GPUs == 1:
		return 1 + workloads.Phi
	default:
		return 2 + math.Sqrt2
	}
}

// propInstance draws one random independent instance. The generator
// rotates through the workload families (uniform spread, bimodal
// kernel-like, log-normal acceleration) so the property is not an
// artifact of one distribution; acceleration factors include rho < 1
// (CPU-favoring tasks) in every family.
func propInstance(caseIdx, maxTasks int, rng *rand.Rand) platform.Instance {
	n := 1 + rng.Intn(maxTasks)
	switch caseIdx % 3 {
	case 0:
		return workloads.UniformInstance(n, 0.1, 50, 0.2, 40, rng)
	case 1:
		return workloads.BimodalInstance(n, 0.2+0.6*rng.Float64(), rng)
	default:
		return workloads.LogNormalAccelInstance(n, rng.Float64()*2-0.5, 0.5+rng.Float64(), rng)
	}
}

// TestTable2RatioProperties is the property-test form of Table 2, in two
// layers per platform shape:
//
// Exact layer — on instances small enough for the branch-and-bound
// solver, the makespan never exceeds the shape's proven ratio times the
// exact optimum. This is the literal theorem statement.
//
// Area layer — on larger instances (where the optimum is out of reach)
// the makespan never exceeds (2+sqrt(2)) times bounds.Lower. Only the
// general ratio is valid here: the proofs of the shape-specific ratios
// compare against the optimum, which the fractional area bound can
// under-estimate. Concretely, seed DeriveSeed(20170529, 618) on 20 CPUs +
// 1 GPU yields 13 GPU-hungry tasks where HeteroPrio IS optimal at
// makespan 22.50 yet makespan/bounds.Lower = 2.98 > 1+phi — asserting
// shape ratios against the lower bound would reject a correct scheduler.
func TestTable2RatioProperties(t *testing.T) {
	const seedBase = 20170529 // paper's IPDPS year+month+day, fixed forever
	trials, maxTasks := 200, 60
	if *paperScale {
		maxTasks = 2000
	}
	shapes := []struct{ m, n int }{
		{1, 1},
		{2, 1}, {6, 1}, {20, 1},
		{3, 2}, {4, 3}, {8, 4},
	}
	for si, shape := range shapes {
		shape := shape
		pl := platform.NewPlatform(shape.m, shape.n)
		ratio := table2Ratio(pl)
		t.Run(fmt.Sprintf("%dCPU+%dGPU", shape.m, shape.n), func(t *testing.T) {
			t.Parallel()
			worstOpt, worstLower := 0.0, 0.0
			for trial := 0; trial < trials; trial++ {
				// One independent stream per (shape, trial): cases stay
				// reproducible in isolation (-run with -v pins the failure).
				rng := rand.New(rand.NewSource(engine.DeriveSeed(seedBase, si*trials+trial)))
				exact := trial%2 == 0
				limit := maxTasks
				if exact {
					limit = MaxExactTasks
				}
				in := propInstance(trial, limit, rng)
				res, err := core.ScheduleIndependent(in, pl, core.Options{})
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				if err := res.Schedule.Validate(in, nil); err != nil {
					t.Fatalf("trial %d: invalid schedule: %v", trial, err)
				}
				if exact {
					opt, err := OptimalIndependent(in, pl)
					if err != nil {
						t.Fatalf("trial %d: %v", trial, err)
					}
					got := res.Makespan() / opt
					if got > worstOpt {
						worstOpt = got
					}
					if res.Makespan() > ratio*opt*(1+ratioTolerance) {
						t.Fatalf("trial %d (%d tasks): makespan %v > %v x optimum %v (ratio %v)",
							trial, len(in), res.Makespan(), ratio, opt, got)
					}
				} else {
					lower, err := bounds.Lower(in, pl)
					if err != nil {
						t.Fatalf("trial %d: %v", trial, err)
					}
					got := res.Makespan() / lower
					if got > worstLower {
						worstLower = got
					}
					if res.Makespan() > (2+math.Sqrt2)*lower*(1+ratioTolerance) {
						t.Fatalf("trial %d (%d tasks): makespan %v > (2+sqrt2) x lower bound %v (ratio %v)",
							trial, len(in), res.Makespan(), lower, got)
					}
				}
			}
			t.Logf("worst makespan/optimum = %.4f (proven %.4f); worst makespan/lower = %.4f (proven %.4f)",
				worstOpt, ratio, worstLower, 2+math.Sqrt2)
		})
	}
}

// TestSection5WorstCaseRatios pins the Section 5 adversarial families to
// their closed-form makespans: these instances are the proof that Table 2
// is tight, so the scheduler drifting off them (e.g. a spoliation-rule
// change) silently weakens the reproduction even while every upper bound
// still holds.
func TestSection5WorstCaseRatios(t *testing.T) {
	t.Run("Theorem8", func(t *testing.T) {
		// 1 CPU + 1 GPU: two tasks reach exactly phi against optimum 1.
		in, pl := workloads.Theorem8Instance()
		res, err := core.ScheduleIndependent(in, pl, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		opt, err := OptimalIndependent(in, pl)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(opt-1) > ratioTolerance {
			t.Fatalf("optimum %v, want 1", opt)
		}
		ratio := res.Makespan() / opt
		if math.Abs(ratio-workloads.Phi) > ratioTolerance {
			t.Errorf("achieved ratio %v, want phi = %v", ratio, workloads.Phi)
		}
		if ratio > table2Ratio(pl)*(1+ratioTolerance) {
			t.Errorf("ratio %v exceeds the proven bound %v", ratio, table2Ratio(pl))
		}
	})
	t.Run("Theorem11", func(t *testing.T) {
		// m CPUs + 1 GPU: makespan x + phi against optimum 1, approaching
		// 1 + phi as m grows.
		for _, m := range []int{2, 5, 10, 40} {
			in, pl := workloads.Theorem11Instance(m, 4)
			res, err := core.ScheduleIndependent(in, pl, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			want := workloads.Theorem11ExpectedMakespan(m)
			if math.Abs(res.Makespan()-want) > ratioTolerance {
				t.Errorf("m=%d: achieved ratio %v, want %v", m, res.Makespan(), want)
			}
			if res.Makespan() > table2Ratio(pl)*(1+ratioTolerance) {
				t.Errorf("m=%d: ratio %v exceeds the proven bound %v", m, res.Makespan(), table2Ratio(pl))
			}
		}
	})
	t.Run("Theorem14", func(t *testing.T) {
		// (m, n) general case: the family approaches 2 + 2/sqrt(3), below
		// the proven 2 + sqrt(2). The filler tasks quantize the x-long
		// phases (granularity x/K with K=2), so the achieved makespan
		// matches the closed form to ~1e-7, not 1e-9; the bound checks
		// below are still strict.
		for _, k := range []int{1, 2, 3} {
			in, pl := workloads.Theorem14Instance(k, 2)
			res, err := core.ScheduleIndependent(in, pl, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			opt := workloads.Theorem14OptimalMakespan(k)
			ratio := res.Makespan() / opt
			want := workloads.Theorem14ExpectedMakespan(k) / opt
			if math.Abs(ratio-want) > 1e-6 {
				t.Errorf("k=%d: achieved ratio %v, want %v", k, ratio, want)
			}
			if ratio > 2+2/math.Sqrt(3)+ratioTolerance {
				t.Errorf("k=%d: ratio %v exceeds the family limit 2+2/sqrt(3)", k, ratio)
			}
			if ratio > table2Ratio(pl)*(1+ratioTolerance) {
				t.Errorf("k=%d: ratio %v exceeds the proven bound %v", k, ratio, table2Ratio(pl))
			}
		}
	})
}

// ---------------------------------------------------------------------------
// Zoo bound suite (DESIGN.md §15): the related-work schedulers each carry a
// two-layer contract mirroring TestTable2RatioProperties. The exact layer
// compares against the branch-and-bound optimum; entries with proven=true
// assert a theorem (ER-LS's 3+2*sqrt(2) from arXiv 1711.06433, HLP's
// self-contained rounding bound of 4, CLB2C's conditional 2 from arXiv
// 1909.11365), entries with proven=false pin an empirical contract — a
// regression tripwire calibrated on this suite's seeds, not a claim about
// the algorithm. The area layer compares against bounds.Lower, which can
// under-estimate the optimum (see the (20,1) counterexample above), so
// every area constant is a pinned contract. TestZooBoundsAreFalsifiable
// feeds a deliberately broken scheduler through the same checks to prove
// each one can fail.

// indepScheduler is the shared independent-task scheduler signature.
type indepScheduler func(platform.Instance, platform.Platform) (*sim.Schedule, error)

// zooBound is one scheduler's row in the table-driven bound suite.
type zooBound struct {
	name string
	run  indepScheduler
	// exactRatio bounds makespan/optimum on exact-layer trials.
	exactRatio float64
	// proven marks exactRatio as theorem-backed; false is a pinned
	// empirical contract.
	proven bool
	// smallOnly restricts the exact bound to trials where every task is
	// small (max(p_i,q_i) <= OPT) — CLB2C's conditional guarantee.
	smallOnly bool
	// areaRatio bounds makespan/bounds.Lower on area-layer trials
	// (always a pinned contract; the fractional bound can sit well below
	// the optimum on GPU-starved shapes).
	areaRatio float64
	// maxAreaTasks caps the area-layer instance size (0 = suite default);
	// HLP uses it because its LP is cubic in the task count.
	maxAreaTasks int
}

// The empirical pins (PriorityAware, Affinity, and every areaRatio) were
// calibrated by running this suite with sentinel bounds at default and
// paper scale and taking the worst observed ratio plus ~30% headroom —
// the suite's seeds are fixed forever, so the observed worst is
// deterministic and the headroom only absorbs legitimate algorithm
// evolution. Affinity's pins are large because a dual-ended list
// scheduler without spoliation has no constant ratio (Section 3 of the
// paper — exactly the gap HeteroPrio's spoliation closes); its entry is a
// tripwire against silent behavior drift, not an approximation claim.
func zooBounds() []zooBound {
	return []zooBound{
		{name: "ERLS", run: ERLSIndependent, exactRatio: 3 + 2*math.Sqrt2, proven: true, areaRatio: 3 + 2*math.Sqrt2},
		{name: "HLP", run: HLPIndependent, exactRatio: 4, proven: true, areaRatio: 4, maxAreaTasks: 120},
		{name: "CLB2C", run: CLB2CIndependent, exactRatio: 2, proven: true, smallOnly: true, areaRatio: 4.5},
		{name: "PriorityAware", run: PriorityAwareIndependent, exactRatio: 7, areaRatio: 8.5},
		{name: "Affinity", run: AffinityIndependent, exactRatio: 30, areaRatio: 24},
	}
}

// checkZooExact runs the scheduler and compares its makespan against
// ratio*opt. It returns the bound violation (nil when the bound holds),
// whether the bound applied (false only for smallOnly entries whose
// condition failed), and any infrastructure error.
func checkZooExact(run indepScheduler, ratio float64, smallOnly bool, in platform.Instance, pl platform.Platform, opt float64) (violation error, applied bool, err error) {
	s, err := run(in, pl)
	if err != nil {
		return nil, false, err
	}
	if err := s.Validate(in, nil); err != nil {
		return nil, false, err
	}
	if smallOnly {
		var maxTime float64
		for _, t := range in {
			maxTime = math.Max(maxTime, t.MaxTime())
		}
		if maxTime > opt*(1+ratioTolerance) {
			return nil, false, nil
		}
	}
	if ms := s.Makespan(); ms > ratio*opt*(1+ratioTolerance) {
		return fmt.Errorf("makespan %v > %v x optimum %v (ratio %v, %d tasks)",
			ms, ratio, opt, ms/opt, len(in)), true, nil
	}
	return nil, true, nil
}

// checkZooArea runs the scheduler and compares its makespan against
// ratio*bounds.Lower.
func checkZooArea(run indepScheduler, ratio float64, in platform.Instance, pl platform.Platform, lower float64) (violation error, err error) {
	s, err := run(in, pl)
	if err != nil {
		return nil, err
	}
	if err := s.Validate(in, nil); err != nil {
		return nil, err
	}
	if ms := s.Makespan(); ms > ratio*lower*(1+ratioTolerance) {
		return fmt.Errorf("makespan %v > %v x lower bound %v (ratio %v, %d tasks)",
			ms, ratio, lower, ms/lower, len(in)), nil
	}
	return nil, nil
}

// TestZooRatioProperties is the table-driven two-layer bound suite over
// the same shape grid and workload families as TestTable2RatioProperties.
// The instance, optimum and lower bound are computed once per trial and
// shared by every algorithm. smallOnly entries additionally require their
// condition to apply on a sane fraction of exact trials, so the
// conditional bound cannot silently become vacuous.
func TestZooRatioProperties(t *testing.T) {
	const seedBase = 19092020 // arXiv 1909.11365's survey rev date, fixed forever
	trials, maxTasks := 120, 60
	if *paperScale {
		maxTasks = 2000
	}
	shapes := []struct{ m, n int }{
		{1, 1},
		{2, 1}, {6, 1}, {20, 1},
		{3, 2}, {4, 3}, {8, 4},
	}
	entries := zooBounds()
	for si, shape := range shapes {
		shape := shape
		pl := platform.NewPlatform(shape.m, shape.n)
		t.Run(fmt.Sprintf("%dCPU+%dGPU", shape.m, shape.n), func(t *testing.T) {
			t.Parallel()
			worstExact := make([]float64, len(entries))
			worstArea := make([]float64, len(entries))
			applied := make([]int, len(entries))
			exactTrials := 0
			for trial := 0; trial < trials; trial++ {
				rng := rand.New(rand.NewSource(engine.DeriveSeed(seedBase, si*trials+trial)))
				exact := trial%2 == 0
				limit := maxTasks
				if exact {
					limit = MaxExactTasks
				}
				in := propInstance(trial, limit, rng)
				var opt, lower float64
				var err error
				if exact {
					exactTrials++
					opt, err = OptimalIndependent(in, pl)
				} else {
					lower, err = bounds.Lower(in, pl)
				}
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				for ei, e := range entries {
					if exact {
						violation, ok, err := checkZooExact(e.run, e.exactRatio, e.smallOnly, in, pl, opt)
						if err != nil {
							t.Fatalf("%s trial %d: %v", e.name, trial, err)
						}
						if violation != nil {
							t.Fatalf("%s trial %d: %v", e.name, trial, violation)
						}
						if ok {
							applied[ei]++
							s, _ := e.run(in, pl)
							worstExact[ei] = math.Max(worstExact[ei], s.Makespan()/opt)
						}
					} else {
						if e.maxAreaTasks > 0 && len(in) > e.maxAreaTasks {
							continue
						}
						violation, err := checkZooArea(e.run, e.areaRatio, in, pl, lower)
						if err != nil {
							t.Fatalf("%s trial %d: %v", e.name, trial, err)
						}
						if violation != nil {
							t.Fatalf("%s trial %d: %v", e.name, trial, violation)
						}
						s, _ := e.run(in, pl)
						worstArea[ei] = math.Max(worstArea[ei], s.Makespan()/lower)
					}
				}
			}
			for ei, e := range entries {
				kind := "pinned"
				if e.proven {
					kind = "proven"
				}
				t.Logf("%-13s worst makespan/optimum = %.4f (%s %.4f, %d/%d trials); worst makespan/lower = %.4f (pinned %.4f)",
					e.name, worstExact[ei], kind, e.exactRatio, applied[ei], exactTrials, worstArea[ei], e.areaRatio)
			}
		})
	}
}

// worstSerialScheduler is the mutation used to prove the bound checks can
// fail: every task runs back to back on worker 0, the textbook worst list
// schedule. It is a valid schedule — just a terrible one.
func worstSerialScheduler(in platform.Instance, pl platform.Platform) (*sim.Schedule, error) {
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	s := &sim.Schedule{Platform: pl}
	k := pl.KindOf(0)
	var load float64
	for _, t := range in {
		d := t.Time(k)
		s.Entries = append(s.Entries, sim.Entry{
			TaskID: t.ID, Worker: 0, Kind: k,
			Start: load, End: load + d,
		})
		load += d
	}
	return s, nil
}

// TestZooBoundsAreFalsifiable feeds worstSerialScheduler through the exact
// same bound checks the property suite uses and requires every entry to
// flag it, on an instance where the entry's real scheduler passes — proof
// that none of the pinned bounds is vacuously true. Unconditional entries
// get an extreme instance (serializing it on a CPU costs 60x the optimum,
// above every pin); CLB2C gets a milder one whose smallness premise holds,
// since the extreme instance would void its conditional bound instead of
// breaching it.
func TestZooBoundsAreFalsifiable(t *testing.T) {
	pl := platform.NewPlatform(2, 1)
	build := func(n int, p float64) platform.Instance {
		in := make(platform.Instance, n)
		for i := range in {
			in[i] = platform.Task{ID: i, Name: "mut", CPUTime: p, GPUTime: 1}
		}
		return in
	}
	extreme := build(16, 60) // opt 16 (all on the GPU); serial on CPU0 960
	small := build(12, 8)    // opt 10, max(p,q)=8 <= opt; serial on CPU0 96
	for _, e := range zooBounds() {
		in := extreme
		if e.smallOnly {
			in = small
		}
		opt, err := OptimalIndependent(in, pl)
		if err != nil {
			t.Fatal(err)
		}
		lower, err := bounds.Lower(in, pl)
		if err != nil {
			t.Fatal(err)
		}
		violation, applied, err := checkZooExact(worstSerialScheduler, e.exactRatio, e.smallOnly, in, pl, opt)
		if err != nil {
			t.Fatalf("%s: %v", e.name, err)
		}
		if !applied {
			t.Errorf("%s: exact bound did not apply to the mutant instance", e.name)
		}
		if violation == nil {
			t.Errorf("%s: exact-layer check failed to flag the serial mutant (ratio %v)", e.name, e.exactRatio)
		}
		if violation, err = checkZooArea(worstSerialScheduler, e.areaRatio, in, pl, lower); err != nil {
			t.Fatalf("%s: %v", e.name, err)
		}
		if violation == nil {
			t.Errorf("%s: area-layer check failed to flag the serial mutant (ratio %v)", e.name, e.areaRatio)
		}
		// The real scheduler passes both layers on the same instance, so
		// the mutant's failure is the check working, not the instance
		// being impossible.
		violation, applied, err = checkZooExact(e.run, e.exactRatio, e.smallOnly, in, pl, opt)
		if err != nil {
			t.Fatalf("%s: %v", e.name, err)
		}
		if !applied || violation != nil {
			t.Errorf("%s: real scheduler rejected on the mutant instance (applied=%v): %v", e.name, applied, violation)
		}
		if violation, err = checkZooArea(e.run, e.areaRatio, in, pl, lower); err != nil {
			t.Fatalf("%s: %v", e.name, err)
		}
		if violation != nil {
			t.Errorf("%s: real scheduler breaches its area contract on the mutant instance: %v", e.name, violation)
		}
	}
}

// TestCLB2CConditionalBound exercises CLB2C's conditional 2-approximation
// (arXiv 1909.11365) on instances engineered to satisfy its premise: many
// near-homogeneous tasks, so every max(p_i, q_i) sits well below the
// optimum. The premise is checked against the branch-and-bound optimum on
// every trial and must actually hold on at least 90% of them — the random
// suite above cannot provide that (its heavy-tailed task families almost
// always contain one task longer than OPT, which is exactly the regime
// where CLB2C's ratio is unbounded; see TestZooWorstCases).
func TestCLB2CConditionalBound(t *testing.T) {
	const seedBase = 19091136 // arXiv 1909.11365, fixed forever
	shapes := []struct{ m, n int }{{1, 1}, {2, 1}, {3, 2}}
	const trialsPerShape = 60
	applied, total := 0, 0
	worst := 0.0
	for si, shape := range shapes {
		pl := platform.NewPlatform(shape.m, shape.n)
		for trial := 0; trial < trialsPerShape; trial++ {
			rng := rand.New(rand.NewSource(engine.DeriveSeed(seedBase, si*trialsPerShape+trial)))
			// MaxExactTasks near-unit tasks: total min work >> any single
			// max(p, q), so OPT dominates every task.
			in := make(platform.Instance, MaxExactTasks)
			for i := range in {
				p := 1 + rng.Float64()
				a := 0.5 + 2*rng.Float64()
				in[i] = platform.Task{ID: i, Name: "small", CPUTime: p, GPUTime: p / a}
			}
			opt, err := OptimalIndependent(in, pl)
			if err != nil {
				t.Fatalf("shape %v trial %d: %v", pl, trial, err)
			}
			violation, ok, err := checkZooExact(CLB2CIndependent, 2, true, in, pl, opt)
			if err != nil {
				t.Fatalf("shape %v trial %d: %v", pl, trial, err)
			}
			total++
			if !ok {
				continue
			}
			applied++
			if violation != nil {
				t.Errorf("shape %v trial %d: %v", pl, trial, violation)
			}
			s, err := CLB2CIndependent(in, pl)
			if err != nil {
				t.Fatal(err)
			}
			worst = math.Max(worst, s.Makespan()/opt)
		}
	}
	if applied < total*9/10 {
		t.Errorf("smallness premise held on only %d/%d trials — generator no longer exercises the conditional bound", applied, total)
	}
	t.Logf("premise held on %d/%d trials; worst makespan/optimum = %.4f (proven 2)", applied, total, worst)
}

package sched

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/platform"
	"repro/internal/workloads"
)

// -ratio.paperscale grows the property instances to the paper's
// experimental sizes (thousands of tasks); the nightly job passes it, the
// default run keeps the suite fast.
var paperScale = flag.Bool("ratio.paperscale", false,
	"run the Table-2 ratio properties at paper-scale instance sizes (n up to 2000)")

// ratioTolerance absorbs float64 rounding in makespan/bound arithmetic;
// the theorems themselves are exact.
const ratioTolerance = 1e-9

// table2Ratio is the proven HeteroPrio approximation ratio for the
// platform shape (Table 2 of the paper): phi on 1+1 (Theorem 7), 1+phi on
// m+1 (Theorem 9), 2+sqrt(2) in general (Theorem 12).
func table2Ratio(pl platform.Platform) float64 {
	switch {
	case pl.CPUs == 1 && pl.GPUs == 1:
		return workloads.Phi
	case pl.GPUs == 1:
		return 1 + workloads.Phi
	default:
		return 2 + math.Sqrt2
	}
}

// propInstance draws one random independent instance. The generator
// rotates through the workload families (uniform spread, bimodal
// kernel-like, log-normal acceleration) so the property is not an
// artifact of one distribution; acceleration factors include rho < 1
// (CPU-favoring tasks) in every family.
func propInstance(caseIdx, maxTasks int, rng *rand.Rand) platform.Instance {
	n := 1 + rng.Intn(maxTasks)
	switch caseIdx % 3 {
	case 0:
		return workloads.UniformInstance(n, 0.1, 50, 0.2, 40, rng)
	case 1:
		return workloads.BimodalInstance(n, 0.2+0.6*rng.Float64(), rng)
	default:
		return workloads.LogNormalAccelInstance(n, rng.Float64()*2-0.5, 0.5+rng.Float64(), rng)
	}
}

// TestTable2RatioProperties is the property-test form of Table 2, in two
// layers per platform shape:
//
// Exact layer — on instances small enough for the branch-and-bound
// solver, the makespan never exceeds the shape's proven ratio times the
// exact optimum. This is the literal theorem statement.
//
// Area layer — on larger instances (where the optimum is out of reach)
// the makespan never exceeds (2+sqrt(2)) times bounds.Lower. Only the
// general ratio is valid here: the proofs of the shape-specific ratios
// compare against the optimum, which the fractional area bound can
// under-estimate. Concretely, seed DeriveSeed(20170529, 618) on 20 CPUs +
// 1 GPU yields 13 GPU-hungry tasks where HeteroPrio IS optimal at
// makespan 22.50 yet makespan/bounds.Lower = 2.98 > 1+phi — asserting
// shape ratios against the lower bound would reject a correct scheduler.
func TestTable2RatioProperties(t *testing.T) {
	const seedBase = 20170529 // paper's IPDPS year+month+day, fixed forever
	trials, maxTasks := 200, 60
	if *paperScale {
		maxTasks = 2000
	}
	shapes := []struct{ m, n int }{
		{1, 1},
		{2, 1}, {6, 1}, {20, 1},
		{3, 2}, {4, 3}, {8, 4},
	}
	for si, shape := range shapes {
		shape := shape
		pl := platform.NewPlatform(shape.m, shape.n)
		ratio := table2Ratio(pl)
		t.Run(fmt.Sprintf("%dCPU+%dGPU", shape.m, shape.n), func(t *testing.T) {
			t.Parallel()
			worstOpt, worstLower := 0.0, 0.0
			for trial := 0; trial < trials; trial++ {
				// One independent stream per (shape, trial): cases stay
				// reproducible in isolation (-run with -v pins the failure).
				rng := rand.New(rand.NewSource(engine.DeriveSeed(seedBase, si*trials+trial)))
				exact := trial%2 == 0
				limit := maxTasks
				if exact {
					limit = MaxExactTasks
				}
				in := propInstance(trial, limit, rng)
				res, err := core.ScheduleIndependent(in, pl, core.Options{})
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				if err := res.Schedule.Validate(in, nil); err != nil {
					t.Fatalf("trial %d: invalid schedule: %v", trial, err)
				}
				if exact {
					opt, err := OptimalIndependent(in, pl)
					if err != nil {
						t.Fatalf("trial %d: %v", trial, err)
					}
					got := res.Makespan() / opt
					if got > worstOpt {
						worstOpt = got
					}
					if res.Makespan() > ratio*opt*(1+ratioTolerance) {
						t.Fatalf("trial %d (%d tasks): makespan %v > %v x optimum %v (ratio %v)",
							trial, len(in), res.Makespan(), ratio, opt, got)
					}
				} else {
					lower, err := bounds.Lower(in, pl)
					if err != nil {
						t.Fatalf("trial %d: %v", trial, err)
					}
					got := res.Makespan() / lower
					if got > worstLower {
						worstLower = got
					}
					if res.Makespan() > (2+math.Sqrt2)*lower*(1+ratioTolerance) {
						t.Fatalf("trial %d (%d tasks): makespan %v > (2+sqrt2) x lower bound %v (ratio %v)",
							trial, len(in), res.Makespan(), lower, got)
					}
				}
			}
			t.Logf("worst makespan/optimum = %.4f (proven %.4f); worst makespan/lower = %.4f (proven %.4f)",
				worstOpt, ratio, worstLower, 2+math.Sqrt2)
		})
	}
}

// TestSection5WorstCaseRatios pins the Section 5 adversarial families to
// their closed-form makespans: these instances are the proof that Table 2
// is tight, so the scheduler drifting off them (e.g. a spoliation-rule
// change) silently weakens the reproduction even while every upper bound
// still holds.
func TestSection5WorstCaseRatios(t *testing.T) {
	t.Run("Theorem8", func(t *testing.T) {
		// 1 CPU + 1 GPU: two tasks reach exactly phi against optimum 1.
		in, pl := workloads.Theorem8Instance()
		res, err := core.ScheduleIndependent(in, pl, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		opt, err := OptimalIndependent(in, pl)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(opt-1) > ratioTolerance {
			t.Fatalf("optimum %v, want 1", opt)
		}
		ratio := res.Makespan() / opt
		if math.Abs(ratio-workloads.Phi) > ratioTolerance {
			t.Errorf("achieved ratio %v, want phi = %v", ratio, workloads.Phi)
		}
		if ratio > table2Ratio(pl)*(1+ratioTolerance) {
			t.Errorf("ratio %v exceeds the proven bound %v", ratio, table2Ratio(pl))
		}
	})
	t.Run("Theorem11", func(t *testing.T) {
		// m CPUs + 1 GPU: makespan x + phi against optimum 1, approaching
		// 1 + phi as m grows.
		for _, m := range []int{2, 5, 10, 40} {
			in, pl := workloads.Theorem11Instance(m, 4)
			res, err := core.ScheduleIndependent(in, pl, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			want := workloads.Theorem11ExpectedMakespan(m)
			if math.Abs(res.Makespan()-want) > ratioTolerance {
				t.Errorf("m=%d: achieved ratio %v, want %v", m, res.Makespan(), want)
			}
			if res.Makespan() > table2Ratio(pl)*(1+ratioTolerance) {
				t.Errorf("m=%d: ratio %v exceeds the proven bound %v", m, res.Makespan(), table2Ratio(pl))
			}
		}
	})
	t.Run("Theorem14", func(t *testing.T) {
		// (m, n) general case: the family approaches 2 + 2/sqrt(3), below
		// the proven 2 + sqrt(2). The filler tasks quantize the x-long
		// phases (granularity x/K with K=2), so the achieved makespan
		// matches the closed form to ~1e-7, not 1e-9; the bound checks
		// below are still strict.
		for _, k := range []int{1, 2, 3} {
			in, pl := workloads.Theorem14Instance(k, 2)
			res, err := core.ScheduleIndependent(in, pl, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			opt := workloads.Theorem14OptimalMakespan(k)
			ratio := res.Makespan() / opt
			want := workloads.Theorem14ExpectedMakespan(k) / opt
			if math.Abs(ratio-want) > 1e-6 {
				t.Errorf("k=%d: achieved ratio %v, want %v", k, ratio, want)
			}
			if ratio > 2+2/math.Sqrt(3)+ratioTolerance {
				t.Errorf("k=%d: ratio %v exceeds the family limit 2+2/sqrt(3)", k, ratio)
			}
			if ratio > table2Ratio(pl)*(1+ratioTolerance) {
				t.Errorf("k=%d: ratio %v exceeds the proven bound %v", k, ratio, table2Ratio(pl))
			}
		}
	})
}

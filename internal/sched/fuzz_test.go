package sched

import (
	"math"
	"testing"

	"repro/internal/bounds"
	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/sim"
)

// Fuzzing for the competitor zoo, extending the FuzzHeteroPrioInvariants
// pattern of internal/core: arbitrary byte strings decode into instances
// (and layered DAGs) and every zoo scheduler must produce a structurally
// valid schedule sandwiched between the combined lower bound and the
// fully-serialized upper bound. Unlike the core decoder, this one also
// emits single-class platforms (0 CPUs or 0 GPUs) to drive each
// algorithm's degenerate-class failover, and it assigns one of three
// kernel names per task so Affinity's window-scan path actually fires.

// checkScheduleInvariants is the shared harness: structural validity
// against the instance (and graph when scheduling a DAG), plus the
// universal makespan envelope lower <= makespan <= sum of max(p, q).
func checkScheduleInvariants(t *testing.T, alg string, in platform.Instance, pl platform.Platform, g *dag.Graph, s *sim.Schedule) {
	t.Helper()
	if err := s.Validate(in, g); err != nil {
		t.Fatalf("%s: invalid schedule: %v", alg, err)
	}
	lower, err := bounds.Lower(in, pl)
	if err != nil {
		t.Fatalf("%s: lower bound: %v", alg, err)
	}
	serial := 0.0
	for _, tk := range in {
		serial += math.Max(tk.CPUTime, tk.GPUTime)
	}
	ms := s.Makespan()
	if ms < lower-1e-6*math.Max(1, lower) {
		t.Fatalf("%s: makespan %v beats the lower bound %v", alg, ms, lower)
	}
	if ms > serial+1e-6*math.Max(1, serial) {
		t.Fatalf("%s: makespan %v exceeds the serial envelope %v", alg, ms, serial)
	}
}

// zooFuzzDecode turns fuzz bytes into an instance, a platform and a
// layered DAG over the same tasks. Header: CPU count (0..6) and GPU count
// (0..4), at least one nonzero. Body: two bytes per task — CPU time and
// an acceleration bucket whose low bits also pick the kernel name and the
// task's incoming edges (previous task, and one three-back fan-in).
func zooFuzzDecode(data []byte) (platform.Instance, platform.Platform, *dag.Graph, bool) {
	if len(data) < 4 {
		return nil, platform.Platform{}, nil, false
	}
	m := int(data[0]) % 7
	n := int(data[1]) % 5
	if m+n == 0 {
		m = 1
	}
	data = data[2:]
	var in platform.Instance
	g := dag.New()
	for i := 0; i+1 < len(data) && len(in) < 32; i += 2 {
		p := 0.1 + float64(data[i])/8
		accel := math.Exp((float64(data[i+1])/255)*6 - 2) // ~[0.14, 55]
		tk := platform.Task{
			ID:      len(in),
			Name:    string(rune('a' + data[i+1]%3)),
			CPUTime: p,
			GPUTime: p / accel,
		}
		in = append(in, tk)
		id := g.AddTask(tk)
		if id > 0 && data[i+1]&4 != 0 {
			g.AddEdge(id-1, id)
		}
		if id > 2 && data[i]&3 == 0 {
			g.AddEdge(id-3, id)
		}
	}
	if len(in) == 0 {
		return nil, platform.Platform{}, nil, false
	}
	return in, platform.NewPlatform(m, n), g, true
}

// FuzzZooInvariants runs every zoo scheduler — independent and DAG entry
// points — through checkScheduleInvariants on decoded instances.
func FuzzZooInvariants(f *testing.F) {
	// Tie-breaking: four tasks with identical acceleration factor, name
	// and priority — deque order and seq tie-breaks decide everything.
	f.Add([]byte{2, 1, 16, 128, 16, 128, 16, 128, 16, 128})
	// Failover: CPU-only and GPU-only platforms force every algorithm
	// through its empty-class fallback (ER-LS's degenerate kind rule,
	// classPlacer's Other() fallback, CLB2C's one-sided candidates).
	f.Add([]byte{3, 0, 100, 200, 50, 10, 30, 128})
	f.Add([]byte{0, 2, 100, 200, 50, 10, 30, 128})
	// Affinity window: alternating kernel names (accel buckets 0,1,2)
	// with enough tasks that the window scan skips past the deque ends.
	f.Add([]byte{1, 1, 40, 30, 40, 31, 40, 32, 40, 30, 40, 31, 40, 32, 40, 30, 40, 31})
	// Spread of shapes, sizes and accel buckets plus DAG edge bits set.
	f.Add([]byte{5, 3, 12, 255, 200, 4, 7, 133, 90, 64, 3, 247, 60, 12})

	indep := []struct {
		name string
		run  indepScheduler
	}{
		{"ERLS", ERLSIndependent},
		{"HLP", HLPIndependent},
		{"CLB2C", CLB2CIndependent},
		{"PriorityAware", PriorityAwareIndependent},
		{"Affinity", AffinityIndependent},
	}
	dagRuns := []struct {
		name string
		run  func(*dag.Graph, platform.Platform) (*sim.Schedule, error)
	}{
		{"ERLSDAG", ERLSDAG},
		{"HLPDAG", HLPDAG},
		{"CLB2CDAG", CLB2CDAG},
		{"PriorityAwareDAG", PriorityAwareDAG},
		{"AffinityDAG", AffinityDAG},
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		in, pl, g, ok := zooFuzzDecode(data)
		if !ok {
			t.Skip()
		}
		for _, alg := range indep {
			s, err := alg.run(in, pl)
			if err != nil {
				t.Fatalf("%s: %v", alg.name, err)
			}
			checkScheduleInvariants(t, alg.name, in, pl, nil, s)
		}
		for _, alg := range dagRuns {
			s, err := alg.run(g, pl)
			if err != nil {
				t.Fatalf("%s: %v", alg.name, err)
			}
			checkScheduleInvariants(t, alg.name, g.Tasks(), pl, g, s)
		}
	})
}

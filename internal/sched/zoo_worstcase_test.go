package sched

import (
	"math"
	"testing"

	"repro/internal/platform"
	"repro/internal/workloads"
)

// Worst-case regressions for the competitor zoo: each algorithm gets the
// adversarial instance that exhibits its characteristic failure mode, with
// the makespan pinned to the exact value the failure produces. The pins
// are derived by tracing the algorithm by hand (the derivations are in the
// case comments) and double-checked against the B&B optimum, so any change
// to allocation rules, tie-breaking or queue order that shifts these
// traces fails loudly.

func TestZooWorstCases(t *testing.T) {
	// ER-LS misrouting family on m CPUs + 1 GPU: a task with
	// p/sqrt(m) <= q lands on CPU even when q << p, which is exactly how
	// the sqrt(m/k) lower-bound family of Emeretlis et al. is built.
	erlsSingle := platform.Instance{{Name: "mis", CPUTime: 4, GPUTime: 1.0000001}}
	erlsSingle.Renumber()

	// Five tasks on 4 CPUs + 1 GPU: X(p=2, q=1+1e-6) satisfies
	// p/sqrt(4) = 1 <= q so ER-LS sends it to a CPU; the four G tasks
	// (p=2+2e-6, q=1) have p/sqrt(4) > 1 > ... > q so they serialize on
	// the single GPU, makespan 4. The optimum flips the allocation:
	// X on the GPU, the G's one per CPU, makespan 2+2e-6.
	erlsFamily := platform.Instance{{Name: "X", CPUTime: 2, GPUTime: 1.000001}}
	for i := 0; i < 4; i++ {
		erlsFamily = append(erlsFamily, platform.Task{Name: "G", CPUTime: 2.000002, GPUTime: 1})
	}
	erlsFamily.Renumber()

	// Graham's list-scheduling trap routed through CLB2C on 2 CPUs +
	// 1 GPU: with q = 100 the GPU candidate never wins a completion
	// comparison, so CLB2C degenerates to least-loaded CPU greedy
	// consuming the accel-sorted deque from the back — sizes 2,2,2,3,3 —
	// giving loads (2,2)(4,5)(7): makespan 7 versus the 3+3 | 2+2+2
	// optimum of 6.
	graham := platform.Instance{}
	for _, p := range []float64{3, 3, 2, 2, 2} {
		graham = append(graham, platform.Task{Name: "t", CPUTime: p, GPUTime: 100})
	}
	graham.Renumber()

	// PriorityAware's area oracle on 4 CPUs + 2 GPUs: six tasks with
	// acceleration factors 8-16 fit on the GPUs in 2 time units, but the
	// area balance pins part of the set to the CPU class, where a single
	// task already takes 6-12 units. Found by exhaustive search over
	// small instances; the oracle's fractional split ignores that CPU
	// processing times are an order of magnitude larger integrally.
	priTrap := platform.Instance{
		{Name: "t", CPUTime: 5, GPUTime: 0.625},
		{Name: "t", CPUTime: 10, GPUTime: 0.625},
		{Name: "t", CPUTime: 10, GPUTime: 0.625},
		{Name: "t", CPUTime: 12, GPUTime: 0.75},
		{Name: "t", CPUTime: 6, GPUTime: 0.75},
		{Name: "t", CPUTime: 8, GPUTime: 0.5},
	}
	priTrap.Renumber()

	// The paper's Theorem 8 instance (1 CPU + 1 GPU, X(phi, 1) and
	// Y(1, 1/phi)): the dual-ended deque gives Y to the GPU and X to the
	// CPU, makespan phi. HeteroPrio pays the same phi here — the point
	// of pinning Affinity on it is that phi is also its floor: with no
	// spoliation there is no mechanism to ever undo the misallocation.
	theorem8In, theorem8Pl := workloads.Theorem8Instance()

	cases := []struct {
		name    string
		run     indepScheduler
		in      platform.Instance
		pl      platform.Platform
		wantMS  float64
		wantOpt float64
	}{
		{"ERLS/sqrt-m-misroute", ERLSIndependent, erlsSingle, platform.NewPlatform(16, 1), 4, 1.0000001},
		{"ERLS/allocation-family", ERLSIndependent, erlsFamily, platform.NewPlatform(4, 1), 4, 2.000002},
		// HLP on the same family: the LP vertex keeps every task on the
		// CPU side (the per-task rows make lambda = 2+2e-6 feasible with
		// all-CPU area 2+... <= m*lambda), so LPT stacks X and one G on
		// a shared CPU: makespan 4+2e-6, within its 4-approx but twice
		// the optimum — the price of rounding an area-feasible split.
		{"HLP/rounding-family", HLPIndependent, erlsFamily, platform.NewPlatform(4, 1), 4.000002, 2.000002},
		{"CLB2C/graham-trap", CLB2CIndependent, graham, platform.NewPlatform(2, 1), 7, 6},
		{"PriorityAware/area-split-trap", PriorityAwareIndependent, priTrap, platform.NewPlatform(4, 2), 6, 2},
		{"Affinity/theorem8-no-spoliation", AffinityIndependent, theorem8In, theorem8Pl, workloads.Phi, 1},
	}
	const tol = 1e-9
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			s, err := tc.run(tc.in, tc.pl)
			if err != nil {
				t.Fatalf("scheduler: %v", err)
			}
			if err := s.Validate(tc.in, nil); err != nil {
				t.Fatalf("invalid schedule: %v", err)
			}
			if ms := s.Makespan(); math.Abs(ms-tc.wantMS) > tol {
				t.Errorf("makespan = %v, pinned %v", ms, tc.wantMS)
			}
			opt, err := OptimalIndependent(tc.in, tc.pl)
			if err != nil {
				t.Fatalf("optimal: %v", err)
			}
			if math.Abs(opt-tc.wantOpt) > tol {
				t.Errorf("B&B optimum = %v, derivation says %v", opt, tc.wantOpt)
			}
		})
	}
}

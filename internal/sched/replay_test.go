package sched

import (
	"math/rand"
	"testing"

	"repro/internal/dag"
	"repro/internal/platform"
)

func TestReplayAssignmentValidation(t *testing.T) {
	g := dag.Chain(3, task(0, 2, 1))
	pl := platform.NewPlatform(1, 1)
	if _, err := ReplayAssignment(g, pl, []int{0}, []float64{1, 2, 3}, nil); err == nil {
		t.Error("short assignment accepted")
	}
	if _, err := ReplayAssignment(g, pl, []int{0, 1, 9}, []float64{1, 2, 3}, nil); err == nil {
		t.Error("invalid worker accepted")
	}
	if _, err := ReplayAssignment(g, platform.Platform{}, nil, nil, nil); err == nil {
		t.Error("invalid platform accepted")
	}
	cyc := dag.New()
	a := cyc.AddTask(task(0, 1, 1))
	b := cyc.AddTask(task(1, 1, 1))
	cyc.AddEdge(a, b)
	cyc.AddEdge(b, a)
	if _, err := ReplayAssignment(cyc, pl, []int{0, 0}, []float64{1, 2}, nil); err == nil {
		t.Error("cyclic graph accepted")
	}
}

func TestReplayAssignmentNominalMatchesPlan(t *testing.T) {
	// With nominal durations, replaying a plan produces a valid schedule
	// whose per-task worker matches the plan.
	rng := rand.New(rand.NewSource(9))
	g := dag.RandomLayered(dag.DefaultRandomLayeredConfig(), rng)
	pl := platform.NewPlatform(3, 2)
	plan, err := HEFT(g, pl, dag.WeightAvg)
	if err != nil {
		t.Fatal(err)
	}
	assign := make([]int, g.Len())
	for _, e := range plan.Entries {
		assign[e.TaskID] = e.Worker
	}
	rank, err := g.BottomLevels(dag.WeightAvg, pl)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ReplayAssignment(g, pl, assign, rank, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(g.Tasks(), g); err != nil {
		t.Fatal(err)
	}
	for _, e := range s.Entries {
		if e.Worker != assign[e.TaskID] {
			t.Fatalf("task %d ran on %d, plan says %d", e.TaskID, e.Worker, assign[e.TaskID])
		}
	}
}

func TestHEFTTimedWithNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := dag.RandomLayered(dag.DefaultRandomLayeredConfig(), rng)
	pl := platform.NewPlatform(2, 1)
	// Every run takes 1.5x its nominal time.
	actual := func(t platform.Task, k platform.Kind) float64 { return 1.5 * t.Time(k) }
	s, err := HEFTTimed(g, pl, dag.WeightMin, actual)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ValidateTimed(g.Tasks(), g, actual); err != nil {
		t.Fatal(err)
	}
	// Uniform scaling must scale the makespan of the same assignment.
	base, err := HEFTTimed(g, pl, dag.WeightMin, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan() < base.Makespan() {
		t.Errorf("1.5x durations gave shorter makespan: %v vs %v", s.Makespan(), base.Makespan())
	}
}

func TestMCTDAGTimed(t *testing.T) {
	g := dag.Chain(4, task(0, 4, 1))
	pl := platform.NewPlatform(1, 1)
	actual := func(t platform.Task, k platform.Kind) float64 { return 2 * t.Time(k) }
	s, err := MCTDAGTimed(g, pl, actual)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ValidateTimed(g.Tasks(), g, actual); err != nil {
		t.Fatal(err)
	}
	// Chain of 4 on the GPU at 2x nominal: makespan 8.
	if s.Makespan() != 8 {
		t.Errorf("makespan = %v, want 8", s.Makespan())
	}
}

// Package sched implements the baseline schedulers the paper compares
// HeteroPrio against (Section 6): the classic HEFT algorithm with avg and
// min ranking schemes, the DualHP dual-approximation algorithm of Bleuse et
// al. [15] in both its independent-task and DAG-adapted forms, a Graham
// list scheduler on one homogeneous resource class (the Lemma 6 / Figure 4
// scaffolding), and an exact branch-and-bound solver for small independent
// instances used to verify approximation ratios in tests.
package sched

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/sim"
)

// workerTimeline tracks the occupied intervals of one worker for
// insertion-based scheduling.
type workerTimeline struct {
	// entries sorted by start time; non-overlapping.
	busy []struct{ start, end float64 }
}

// earliestSlot returns the earliest start >= est of a gap of length d.
func (w *workerTimeline) earliestSlot(est, d float64) float64 {
	cur := est
	for _, iv := range w.busy {
		if iv.start-cur >= d-1e-12 {
			return cur
		}
		if iv.end > cur {
			cur = iv.end
		}
	}
	return cur
}

// insert reserves [start, start+d).
func (w *workerTimeline) insert(start, d float64) {
	iv := struct{ start, end float64 }{start, start + d}
	i := sort.Search(len(w.busy), func(i int) bool { return w.busy[i].start >= iv.start })
	w.busy = append(w.busy, struct{ start, end float64 }{})
	copy(w.busy[i+1:], w.busy[i:])
	w.busy[i] = iv
}

// HEFT schedules the task graph with the Heterogeneous Earliest Finish
// Time algorithm: tasks are ordered by decreasing upward rank (bottom
// level) computed with the given weighting scheme, and each task is placed
// on the worker minimizing its earliest finish time, with insertion into
// idle gaps. Communication costs are zero (single shared-memory node).
func HEFT(g *dag.Graph, pl platform.Platform, w dag.Weighting) (*sim.Schedule, error) {
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	ranks, err := g.BottomLevels(w, pl)
	if err != nil {
		return nil, err
	}
	order := make([]int, g.Len())
	for i := range order {
		order[i] = i
	}
	// Decreasing rank; ties by smaller ID for determinism. Positive node
	// weights make ranks strictly decrease along edges, so this order is a
	// valid topological order.
	sort.SliceStable(order, func(i, j int) bool {
		ri, rj := ranks[order[i]], ranks[order[j]]
		if ri != rj {
			return ri > rj
		}
		return order[i] < order[j]
	})

	timelines := make([]workerTimeline, pl.Workers())
	finish := make([]float64, g.Len())
	s := &sim.Schedule{Platform: pl}
	for _, id := range order {
		t := g.Task(id)
		var ready float64
		for _, p := range g.Preds(id) {
			ready = math.Max(ready, finish[p])
		}
		bestW, bestStart, bestEFT := -1, 0.0, math.Inf(1)
		for wk := 0; wk < pl.Workers(); wk++ {
			d := t.Time(pl.KindOf(wk))
			start := timelines[wk].earliestSlot(ready, d)
			if eft := start + d; eft < bestEFT-1e-12 {
				bestW, bestStart, bestEFT = wk, start, eft
			}
		}
		d := t.Time(pl.KindOf(bestW))
		timelines[bestW].insert(bestStart, d)
		finish[id] = bestStart + d
		s.Entries = append(s.Entries, sim.Entry{
			TaskID: id,
			Worker: bestW,
			Kind:   pl.KindOf(bestW),
			Start:  bestStart,
			End:    bestStart + d,
		})
	}
	return s, nil
}

// HEFTIndependent schedules an independent instance with HEFT (the graph
// with no edges). The rank of a task is then just its node weight.
func HEFTIndependent(in platform.Instance, pl platform.Platform, w dag.Weighting) (*sim.Schedule, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	g := dag.FromInstance(in)
	s, err := HEFT(g, pl, w)
	if err != nil {
		return nil, err
	}
	// Map graph IDs (0..len-1 in slice order) back to the caller's task IDs.
	for i := range s.Entries {
		s.Entries[i].TaskID = in[s.Entries[i].TaskID].ID
	}
	return s, nil
}

// ListHomogeneous performs Graham list scheduling of the given durations,
// in slice order, on n identical machines. It returns the makespan and the
// per-task (machine, start) assignment. It is the scaffolding behind
// Lemma 6 and the Figure 4 good/bad orders of the Theorem 14 instance.
func ListHomogeneous(durations []float64, n int) (float64, []struct {
	Machine int
	Start   float64
}) {
	if n <= 0 {
		panic(fmt.Sprintf("sched: ListHomogeneous with %d machines", n))
	}
	loads := make([]float64, n)
	placement := make([]struct {
		Machine int
		Start   float64
	}, len(durations))
	for i, d := range durations {
		best := 0
		for m := 1; m < n; m++ {
			if loads[m] < loads[best]-1e-15 {
				best = m
			}
		}
		placement[i] = struct {
			Machine int
			Start   float64
		}{best, loads[best]}
		loads[best] += d
	}
	var ms float64
	for _, l := range loads {
		ms = math.Max(ms, l)
	}
	return ms, placement
}

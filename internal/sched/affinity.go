package sched

import (
	"errors"

	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/sim"
)

// Affinity reconstructs the XKaapi dual-ended heuristic of Bleuse,
// Gautier, Lima, Mounié and Trystram ("Scheduling Data Flow Program in
// XKaapi", arXiv 1402.6601): ready tasks sit in one deque sorted by
// acceleration factor, GPU workers take work from the most-accelerated
// end and CPU workers from the least-accelerated end, and each worker
// scans a small window at its end preferring a task with the same kernel
// name as the one it just ran (the affinity stands in for XKaapi's
// locality-aware cache of valid data copies). There is no spoliation;
// TestZooWorstCases pins what that costs on the paper's Theorem 8
// instance. Like PriorityAware this is a reconstruction in spirit, with a
// pinned empirical contract in the ratio suite.

// affinityWindow is how deep into its end of the deque a worker looks for
// a kernel-name match before settling for the endmost task.
const affinityWindow = 4

// affinityTake removes and returns the task worker w should run from its
// class's end of the deque, honoring the affinity window.
func affinityTake(dq *accelDeque, kind platform.Kind, lastName string) platform.Task {
	limit := affinityWindow
	if dq.len() < limit {
		limit = dq.len()
	}
	if lastName != "" {
		for off := 0; off < limit; off++ {
			i := off
			if kind == platform.CPU {
				i = dq.len() - 1 - off
			}
			if dq.tasks[i].Name == lastName {
				t := dq.tasks[i]
				dq.tasks = append(dq.tasks[:i], dq.tasks[i+1:]...)
				return t
			}
		}
	}
	if kind == platform.GPU {
		return dq.popFront()
	}
	return dq.popBack()
}

// AffinityIndependent schedules an independent instance with the affinity
// heuristic, simulating the workers' race for the deque: whenever a worker
// idles it takes its next task per affinityTake, so which worker gets
// which task depends on completion order exactly as in the runtime.
func AffinityIndependent(in platform.Instance, pl platform.Platform) (*sim.Schedule, error) {
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	sorted := in.Clone()
	sorted.SortByAccelDesc()
	dq := accelDeque{tasks: sorted}
	k := sim.NewKernel(pl)
	last := make([]string, pl.Workers())
	assign := func() {
		for _, kind := range []platform.Kind{platform.GPU, platform.CPU} {
			for _, w := range k.IdleWorkers(kind) {
				if dq.empty() {
					return
				}
				t := affinityTake(&dq, kind, last[w])
				last[w] = t.Name
				k.Start(w, t, false)
			}
		}
	}
	assign()
	for {
		if _, ok := k.CompleteNext(); !ok {
			break
		}
		assign()
	}
	if !dq.empty() {
		return nil, errors.New("sched: affinity deque not drained")
	}
	return k.Schedule(), nil
}

// AffinityDAG schedules a task graph with the online affinity heuristic:
// the deque holds the ready tasks, refilled as predecessors complete.
func AffinityDAG(g *dag.Graph, pl platform.Platform) (*sim.Schedule, error) {
	var dq accelDeque
	last := make([]string, pl.Workers())
	admit := func(ids []int) {
		for _, id := range ids {
			dq.insert(g.Task(id))
		}
	}
	pick := func(w int, kind platform.Kind) (platform.Task, bool) {
		if dq.empty() {
			return platform.Task{}, false
		}
		t := affinityTake(&dq, kind, last[w])
		last[w] = t.Name
		return t, true
	}
	return runOnlineList(g, pl, admit, pick)
}

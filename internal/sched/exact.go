package sched

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/platform"
)

// MaxExactTasks bounds the instance size accepted by OptimalIndependent;
// the branch-and-bound search is exponential in the worst case.
const MaxExactTasks = 16

// OptimalIndependent computes the exact optimal makespan of an independent
// instance on the platform by branch-and-bound over per-worker
// assignments, with symmetry breaking between identical workers and an
// area-based pruning bound. It is intended for small instances (tests and
// the Table 2 worst-case verification); it returns an error for instances
// larger than MaxExactTasks.
func OptimalIndependent(in platform.Instance, pl platform.Platform) (float64, error) {
	if err := pl.Validate(); err != nil {
		return 0, err
	}
	if err := in.Validate(); err != nil {
		return 0, err
	}
	if len(in) > MaxExactTasks {
		return 0, fmt.Errorf("sched: exact solver limited to %d tasks, got %d", MaxExactTasks, len(in))
	}
	if len(in) == 0 {
		return 0, nil
	}
	tasks := in.Clone()
	// Larger tasks first dramatically improves pruning.
	sort.SliceStable(tasks, func(i, j int) bool { return tasks[i].MinTime() > tasks[j].MinTime() })

	nw := pl.Workers()
	loads := make([]float64, nw)
	// Suffix sums of the minimum remaining work, an optimistic bound used
	// for pruning: remaining tasks need at least suffixMin[i]/nw more time
	// somewhere, and each remaining task needs at least its min time.
	suffixMin := make([]float64, len(tasks)+1)
	for i := len(tasks) - 1; i >= 0; i-- {
		suffixMin[i] = suffixMin[i+1] + tasks[i].MinTime()
	}

	best := math.Inf(1)
	// Greedy warm start: each task on the least-loaded worker by finish time.
	{
		warm := make([]float64, nw)
		for _, t := range tasks {
			bw, bf := -1, math.Inf(1)
			for w := 0; w < nw; w++ {
				f := warm[w] + t.Time(pl.KindOf(w))
				if f < bf {
					bw, bf = w, f
				}
			}
			warm[bw] += t.Time(pl.KindOf(bw))
		}
		var ms float64
		for _, l := range warm {
			ms = math.Max(ms, l)
		}
		best = ms
	}

	maxLoad := func() float64 {
		var m float64
		for _, l := range loads {
			m = math.Max(m, l)
		}
		return m
	}

	var dfs func(i int)
	dfs = func(i int) {
		cur := maxLoad()
		if cur >= best-1e-12 {
			return
		}
		if i == len(tasks) {
			best = cur
			return
		}
		// Area bound: the final total work is at least the current load plus
		// each remaining task's min time, so the makespan is at least the
		// even spread of that work over all workers.
		var totalLoad float64
		for _, l := range loads {
			totalLoad += l
		}
		if (totalLoad+suffixMin[i])/float64(nw) >= best-1e-12 {
			return
		}
		t := tasks[i]
		// Try each worker, skipping workers of the same class with the same
		// current load (symmetric branches).
		type key struct {
			k platform.Kind
			l float64
		}
		seen := make(map[key]bool, nw)
		for w := 0; w < nw; w++ {
			k := pl.KindOf(w)
			kk := key{k, loads[w]}
			if seen[kk] {
				continue
			}
			seen[kk] = true
			d := t.Time(k)
			if loads[w]+d >= best-1e-12 {
				continue
			}
			loads[w] += d
			dfs(i + 1)
			loads[w] -= d
		}
	}
	dfs(0)
	return best, nil
}

// Package cancel provides the cooperative cancellation token shared by the
// computational kernels (package tile) and the real-time executor
// (package runtime). Spoliation in a real runtime cannot preempt a running
// kernel; instead the kernel polls its flag between row blocks and
// abandons the run, after which the task restarts from restored inputs on
// the other resource class.
package cancel

import "sync/atomic"

// Flag is a one-shot cooperative cancellation token. The zero value is
// ready to use. A nil *Flag is never cancelled, so kernels can take nil
// when cancellation is not needed.
type Flag struct {
	v atomic.Bool
}

// Cancel requests cancellation. It is safe to call from any goroutine and
// more than once.
func (f *Flag) Cancel() { f.v.Store(true) }

// Cancelled reports whether cancellation was requested.
func (f *Flag) Cancelled() bool {
	return f != nil && f.v.Load()
}

package cancel

import (
	"sync"
	"testing"
)

func TestFlagZeroValue(t *testing.T) {
	var f Flag
	if f.Cancelled() {
		t.Error("zero flag should not be cancelled")
	}
	f.Cancel()
	if !f.Cancelled() {
		t.Error("flag should be cancelled after Cancel")
	}
	f.Cancel() // idempotent
	if !f.Cancelled() {
		t.Error("flag should stay cancelled")
	}
}

func TestNilFlag(t *testing.T) {
	var f *Flag
	if f.Cancelled() {
		t.Error("nil flag should never be cancelled")
	}
}

func TestFlagConcurrent(t *testing.T) {
	var f Flag
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				f.Cancelled()
			}
		}()
	}
	f.Cancel()
	wg.Wait()
	if !f.Cancelled() {
		t.Error("flag lost its cancellation")
	}
}

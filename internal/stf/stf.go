// Package stf implements the sequential-task-flow (STF) programming model
// of StarPU-like runtime systems, the submission interface behind the
// paper's workloads: the application submits tasks in sequential order,
// declaring which data each task reads and writes, and the runtime infers
// the dependency DAG from the data accesses (read-after-write,
// write-after-read and write-after-write hazards).
//
// Example (tiled Cholesky panel update):
//
//	f := stf.New()
//	akk := f.Data("A(0,0)")
//	aik := f.Data("A(1,0)")
//	f.Submit(potrf, stf.RW(akk))
//	f.Submit(trsm, stf.R(akk), stf.RW(aik))  // depends on the POTRF
//	g := f.Graph()                            // ready to schedule
package stf

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/platform"
)

// Handle identifies a piece of data registered with the flow.
type Handle int

// AccessMode is how a task touches a handle.
type AccessMode int8

const (
	// Read declares a read-only access.
	Read AccessMode = iota
	// Write declares a write-only access.
	Write
	// ReadWrite declares an in-place update.
	ReadWrite
)

// String implements fmt.Stringer.
func (m AccessMode) String() string {
	switch m {
	case Read:
		return "R"
	case Write:
		return "W"
	case ReadWrite:
		return "RW"
	default:
		return fmt.Sprintf("AccessMode(%d)", int8(m))
	}
}

// Access pairs a handle with its mode.
type Access struct {
	Handle Handle
	Mode   AccessMode
}

// R declares a read access.
func R(h Handle) Access { return Access{h, Read} }

// W declares a write access.
func W(h Handle) Access { return Access{h, Write} }

// RW declares a read-write access.
func RW(h Handle) Access { return Access{h, ReadWrite} }

// Flow accumulates submitted tasks and infers dependencies.
type Flow struct {
	g     *dag.Graph
	names []string
	// lastWriter[h] is the last task that wrote h (-1 if none).
	lastWriter []int
	// readersSince[h] are tasks that read h since its last write.
	readersSince [][]int
}

// New returns an empty flow.
func New() *Flow { return &Flow{g: dag.New()} }

// Data registers a new piece of data and returns its handle.
func (f *Flow) Data(name string) Handle {
	h := Handle(len(f.lastWriter))
	f.names = append(f.names, name)
	f.lastWriter = append(f.lastWriter, -1)
	f.readersSince = append(f.readersSince, nil)
	return h
}

// DataName returns the registered name of a handle.
func (f *Flow) DataName(h Handle) string { return f.names[h] }

// NumData returns the number of registered handles.
func (f *Flow) NumData() int { return len(f.lastWriter) }

// Submit appends a task with the given data accesses and returns its ID.
// Dependencies are inferred in submission order:
//
//   - a read depends on the last writer (RAW);
//   - a write depends on the last writer (WAW) and on every reader since
//     that write (WAR).
//
// Duplicate and conflicting accesses to the same handle are merged with
// the strongest mode.
func (f *Flow) Submit(t platform.Task, accesses ...Access) (int, error) {
	merged := make(map[Handle]AccessMode, len(accesses))
	for _, a := range accesses {
		if int(a.Handle) < 0 || int(a.Handle) >= len(f.lastWriter) {
			return 0, fmt.Errorf("stf: task %q uses unregistered handle %d", t.Name, a.Handle)
		}
		if cur, ok := merged[a.Handle]; !ok {
			merged[a.Handle] = a.Mode
		} else if cur != a.Mode {
			merged[a.Handle] = ReadWrite
		}
	}
	id := f.g.AddTask(t)
	for h, mode := range merged {
		switch mode {
		case Read:
			if w := f.lastWriter[h]; w >= 0 {
				f.g.AddEdge(w, id)
			}
			f.readersSince[h] = append(f.readersSince[h], id)
		case Write, ReadWrite:
			if w := f.lastWriter[h]; w >= 0 {
				f.g.AddEdge(w, id)
			}
			for _, r := range f.readersSince[h] {
				if r != id {
					f.g.AddEdge(r, id)
				}
			}
			f.lastWriter[h] = id
			f.readersSince[h] = f.readersSince[h][:0]
		}
	}
	return id, nil
}

// MustSubmit is Submit that panics on error (convenient in generators
// where handles are created locally and cannot be invalid).
func (f *Flow) MustSubmit(t platform.Task, accesses ...Access) int {
	id, err := f.Submit(t, accesses...)
	if err != nil {
		panic(err)
	}
	return id
}

// Graph returns the inferred task graph. The flow remains usable; the
// graph is shared, so callers should stop submitting once scheduling
// begins.
func (f *Flow) Graph() *dag.Graph { return f.g }

// Len returns the number of submitted tasks.
func (f *Flow) Len() int { return f.g.Len() }

package stf

import (
	"testing"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/workloads"
)

func task(name string) platform.Task {
	return platform.Task{Name: name, CPUTime: 1, GPUTime: 1}
}

func TestAccessModeString(t *testing.T) {
	if Read.String() != "R" || Write.String() != "W" || ReadWrite.String() != "RW" {
		t.Error("mode strings wrong")
	}
	if AccessMode(9).String() == "" {
		t.Error("unknown mode string empty")
	}
}

func TestRAWDependency(t *testing.T) {
	f := New()
	x := f.Data("x")
	w, err := f.Submit(task("writer"), W(x))
	if err != nil {
		t.Fatal(err)
	}
	r, err := f.Submit(task("reader"), R(x))
	if err != nil {
		t.Fatal(err)
	}
	g := f.Graph()
	if len(g.Preds(r)) != 1 || g.Preds(r)[0] != w {
		t.Errorf("reader preds = %v, want [%d]", g.Preds(r), w)
	}
}

func TestWARDependency(t *testing.T) {
	f := New()
	x := f.Data("x")
	f.MustSubmit(task("w0"), W(x))
	r1 := f.MustSubmit(task("r1"), R(x))
	r2 := f.MustSubmit(task("r2"), R(x))
	w1 := f.MustSubmit(task("w1"), W(x))
	g := f.Graph()
	preds := g.Preds(w1)
	want := map[int]bool{0: true, r1: true, r2: true}
	if len(preds) != 3 {
		t.Fatalf("w1 preds = %v, want writer and both readers", preds)
	}
	for _, p := range preds {
		if !want[p] {
			t.Errorf("unexpected pred %d", p)
		}
	}
}

func TestWAWAndIndependentReads(t *testing.T) {
	f := New()
	x := f.Data("x")
	w0 := f.MustSubmit(task("w0"), W(x))
	w1 := f.MustSubmit(task("w1"), W(x))
	g := f.Graph()
	if len(g.Preds(w1)) != 1 || g.Preds(w1)[0] != w0 {
		t.Errorf("WAW missing: preds = %v", g.Preds(w1))
	}
	// Two readers of the same version do not depend on each other.
	r1 := f.MustSubmit(task("r1"), R(x))
	r2 := f.MustSubmit(task("r2"), R(x))
	for _, p := range g.Preds(r2) {
		if p == r1 {
			t.Error("readers of the same version must be independent")
		}
	}
}

func TestMergedAccess(t *testing.T) {
	f := New()
	x := f.Data("x")
	f.MustSubmit(task("w0"), W(x))
	// Declaring both R and W on the same handle merges to RW (one
	// dependency on the writer, then becomes the new writer).
	rw := f.MustSubmit(task("rw"), R(x), W(x))
	r := f.MustSubmit(task("r"), R(x))
	g := f.Graph()
	if len(g.Preds(rw)) != 1 {
		t.Errorf("rw preds = %v", g.Preds(rw))
	}
	if len(g.Preds(r)) != 1 || g.Preds(r)[0] != rw {
		t.Errorf("r preds = %v, want [rw]", g.Preds(r))
	}
}

func TestInvalidHandle(t *testing.T) {
	f := New()
	if _, err := f.Submit(task("bad"), R(Handle(7))); err == nil {
		t.Error("unregistered handle accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustSubmit should panic on invalid handle")
		}
	}()
	f.MustSubmit(task("bad"), R(Handle(7)))
}

func TestDataNames(t *testing.T) {
	f := New()
	h := f.Data("A(0,0)")
	if f.DataName(h) != "A(0,0)" || f.NumData() != 1 {
		t.Error("data registration wrong")
	}
}

// TestCholeskySTFMatchesHandBuilt is the cross-validation: the STF-inferred
// Cholesky graph must have the same size and produce the same HeteroPrio
// makespan as the hand-built generator (the dependency structures may
// differ in redundant edges, but admissible schedules coincide).
func TestCholeskySTFMatchesHandBuilt(t *testing.T) {
	for _, N := range []int{1, 2, 4, 6, 10} {
		gSTF, err := CholeskySTF(N)
		if err != nil {
			t.Fatal(err)
		}
		gHand := workloads.Cholesky(N)
		if gSTF.Len() != gHand.Len() {
			t.Fatalf("N=%d: STF %d tasks, hand-built %d", N, gSTF.Len(), gHand.Len())
		}
		pl := platform.NewPlatform(4, 2)
		rSTF, err := core.ScheduleDAG(gSTF, pl, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rHand, err := core.ScheduleDAG(gHand, pl, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if d := rSTF.Makespan() - rHand.Makespan(); d > 1e-9 || d < -1e-9 {
			t.Errorf("N=%d: STF makespan %v, hand-built %v", N, rSTF.Makespan(), rHand.Makespan())
		}
		if err := rSTF.Schedule.Validate(gSTF.Tasks(), gSTF); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCholeskySTFInvalid(t *testing.T) {
	if _, err := CholeskySTF(0); err == nil {
		t.Error("N=0 accepted")
	}
}

package stf

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/workloads"
)

// CholeskySTF builds the tiled Cholesky task graph of workloads.Cholesky
// through the STF interface: kernels are submitted in the sequential
// right-looking order with their tile accesses, and every dependency is
// inferred from the data hazards. Used to cross-validate the hand-built
// generators (the inferred graph must allow exactly the same schedules).
func CholeskySTF(N int) (*dag.Graph, error) {
	if N < 1 {
		return nil, fmt.Errorf("stf: tile count %d < 1", N)
	}
	f := New()
	tiles := make([][]Handle, N)
	for i := 0; i < N; i++ {
		tiles[i] = make([]Handle, i+1)
		for j := 0; j <= i; j++ {
			tiles[i][j] = f.Data(fmt.Sprintf("A(%d,%d)", i, j))
		}
	}
	for k := 0; k < N; k++ {
		potrf := workloads.DPOTRF.Task()
		potrf.Name = fmt.Sprintf("POTRF(%d,%d,%d)", k, k, k)
		if _, err := f.Submit(potrf, RW(tiles[k][k])); err != nil {
			return nil, err
		}
		for i := k + 1; i < N; i++ {
			trsm := workloads.DTRSM.Task()
			trsm.Name = fmt.Sprintf("TRSM(%d,%d,%d)", i, k, k)
			if _, err := f.Submit(trsm, R(tiles[k][k]), RW(tiles[i][k])); err != nil {
				return nil, err
			}
		}
		for i := k + 1; i < N; i++ {
			for j := k + 1; j <= i; j++ {
				if i == j {
					syrk := workloads.DSYRK.Task()
					syrk.Name = fmt.Sprintf("SYRK(%d,%d,%d)", i, i, k)
					if _, err := f.Submit(syrk, R(tiles[i][k]), RW(tiles[i][i])); err != nil {
						return nil, err
					}
				} else {
					gemm := workloads.DGEMM.Task()
					gemm.Name = fmt.Sprintf("GEMM(%d,%d,%d)", i, j, k)
					if _, err := f.Submit(gemm, R(tiles[i][k]), R(tiles[j][k]), RW(tiles[i][j])); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return f.Graph(), nil
}

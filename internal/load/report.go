package load

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteJSON writes the report as an indented JSON artifact.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText renders the human-readable SLO report.
func (r *Report) WriteText(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "hpload SLO report — %s\n", r.Target)
	fmt.Fprintf(&b, "  plan       seed=%d requests=%d rate=%g/s hash=%s\n",
		r.Plan.Seed, r.Plan.Requests, r.Plan.Rate, r.Plan.Hash)
	fmt.Fprintf(&b, "  mix        %s (planned %s)\n", mixString(r.Plan.Mix), countsString(r.Plan.MixCounts))
	fmt.Fprintf(&b, "  run        concurrency=%d elapsed=%.1fms achieved=%.1f/s\n",
		r.Concurrency, r.ElapsedMS, r.AchievedRate)
	fmt.Fprintf(&b, "  status     ok=%d shed=%d deadline=%d error=%d\n",
		r.Status.OK, r.Status.Shed, r.Status.Deadline, r.Status.Errors)
	fmt.Fprintf(&b, "  slo        hit_rate=%.1f%% shed_rate=%.1f%%\n",
		r.HitRate*100, r.ShedRate*100)
	fmt.Fprintf(&b, "  latency    p50=%dus p99=%dus p999=%dus max=%dus mean=%dus\n",
		r.Latency.P50, r.Latency.P99, r.Latency.P999, r.Latency.Max, r.Latency.Mean)
	if t := r.Tiers; t != nil {
		fmt.Fprintf(&b, "  tiers      lookups=%d l1=%d (%.1f%%) l2=%d (%.1f%%) computed=%d\n",
			t.Lookups, t.L1Hits, t.L1HitRate*100, t.L2Hits, t.L2HitRate*100, t.Computed)
	}
	if len(r.Replicas) > 0 {
		fmt.Fprintf(&b, "  replicas   (requests / runs / l1 / l2 / server p50/p99/p999 us)\n")
		for _, rs := range r.Replicas {
			lat := "-"
			if rs.Latency != nil {
				lat = fmt.Sprintf("%d/%d/%d", rs.Latency.P50, rs.Latency.P99, rs.Latency.P999)
			}
			fmt.Fprintf(&b, "    %-28s %-6d %-6d %-6d %-6d %s\n",
				rs.URL, rs.Requests, rs.Runs, rs.L1Hits, rs.L2Hits, lat)
		}
	}
	if len(r.Phases) > 0 {
		fmt.Fprintf(&b, "  phases     (from %d sampled traces; p50/p99 us)\n", r.SampledTraces)
		for _, p := range r.Phases {
			fmt.Fprintf(&b, "    %-10s n=%-5d %d/%d\n", p.Phase, p.Count, p.P50, p.P99)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func mixString(mix []MixEntry) string {
	parts := make([]string, 0, len(mix))
	for _, m := range mix {
		parts = append(parts, fmt.Sprintf("%s=%d", m.Kind, m.Weight))
	}
	return strings.Join(parts, ",")
}

func countsString(counts map[string]int) string {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, counts[k]))
	}
	return strings.Join(parts, " ")
}

package load

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

func mustParse(t *testing.T, text string) *obs.Exposition {
	t.Helper()
	exp, err := obs.ParseExposition(text)
	if err != nil {
		t.Fatalf("ParseExposition: %v", err)
	}
	return exp
}

func TestDiscoverReplicas(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/replicas", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"vnodes":64,"replicas":[
			{"index":0,"url":"http://a:1","healthy":true},
			{"index":1,"url":"http://b:2","healthy":false}]}`)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	urls, err := DiscoverReplicas(context.Background(), nil, srv.URL+"/")
	if err != nil {
		t.Fatalf("DiscoverReplicas: %v", err)
	}
	if len(urls) != 2 || urls[0] != "http://a:1" || urls[1] != "http://b:2" {
		t.Fatalf("urls = %v", urls)
	}

	// A plain replica (no /replicas endpoint) is an error, not a panic.
	plain := httptest.NewServer(http.NotFoundHandler())
	t.Cleanup(plain.Close)
	if _, err := DiscoverReplicas(context.Background(), nil, plain.URL); err == nil {
		t.Fatal("404 target accepted")
	}

	empty := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"replicas":[]}`)
	}))
	t.Cleanup(empty.Close)
	if _, err := DiscoverReplicas(context.Background(), nil, empty.URL); err == nil {
		t.Fatal("empty replica list accepted")
	}
}

func TestTierBreakdown(t *testing.T) {
	before := mustParse(t, "hp_cache_hits_total 10\nhp_cache_misses_total 4\nhp_cache_l2_hits_total 1\n")
	after := mustParse(t, "hp_cache_hits_total 40\nhp_cache_misses_total 14\nhp_cache_l2_hits_total 5\n")
	tb := tierBreakdown(before, after)
	if tb == nil {
		t.Fatal("nil breakdown")
	}
	want := TierBreakdown{Lookups: 40, L1Hits: 30, L2Hits: 4, Computed: 6, L1HitRate: 0.75, L2HitRate: 0.1}
	if *tb != want {
		t.Fatalf("breakdown %+v, want %+v", *tb, want)
	}
	// No after scrape: no breakdown. No before scrape: absolute values.
	if tierBreakdown(before, nil) != nil {
		t.Fatal("breakdown from a failed after-scrape")
	}
	if tb := tierBreakdown(nil, after); tb.Lookups != 54 || tb.L1Hits != 40 {
		t.Fatalf("absolute breakdown %+v", tb)
	}
}

func TestHistDeltaAndServerLatency(t *testing.T) {
	// Same-grid cumulative snapshots: before has observations only in the
	// low buckets, after adds a tail. The delta at each bound must read
	// before's cumulative count at the next lower emitted bound.
	before := []obs.HistBucket{{Le: 100, Cum: 5}, {Le: 200, Cum: 8}, {Le: math.Inf(1), Cum: 8}}
	after := []obs.HistBucket{
		{Le: 100, Cum: 5}, {Le: 200, Cum: 95}, {Le: 400, Cum: 99},
		{Le: 800, Cum: 100}, {Le: math.Inf(1), Cum: 100},
	}
	delta := histDelta(before, after)
	wantCums := []float64{0, 87, 91, 92, 92} // 400 and 800 inherit before's cum at 200
	for i, w := range wantCums {
		if delta[i].Cum != w {
			t.Fatalf("delta[%d] = %+v, want cum %g (full: %+v)", i, delta[i], w, delta)
		}
	}
	lat := serverLatency(delta)
	if lat == nil || lat.Count != 92 {
		t.Fatalf("latency %+v", lat)
	}
	if lat.P50 != 200 || lat.P99 != 800 || lat.P999 != 800 {
		t.Fatalf("quantiles %+v", lat)
	}

	if serverLatency(nil) != nil {
		t.Fatal("latency from no buckets")
	}
	if serverLatency(histDelta(after, after)) != nil {
		t.Fatal("latency from an all-zero delta")
	}
	if histDelta(before, nil) != nil {
		t.Fatal("delta from a missing after-snapshot")
	}
	// Missing before-snapshot: absolute counts.
	abs := histDelta(nil, before)
	if abs[len(abs)-1].Cum != 8 {
		t.Fatalf("absolute delta %+v", abs)
	}
}

// multiTargetStub fakes a router plus two replicas: the router serves the
// plan traffic and a merged /metrics; each replica serves only /metrics
// with its own counters and a TYPEd request-latency histogram.
func multiTargetStub(t *testing.T) (router *httptest.Server, replicas []string) {
	t.Helper()
	var reqs atomic.Int64
	routerMux := http.NewServeMux()
	handler := func(w http.ResponseWriter, r *http.Request) {
		reqs.Add(1)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"ok":true}`)
	}
	routerMux.HandleFunc("/schedule", handler)
	routerMux.HandleFunc("/compare", handler)
	routerMux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		n := reqs.Load()
		fmt.Fprintf(w, "hp_cache_hits_total %d\nhp_cache_misses_total 6\nhp_cache_l2_hits_total 2\n", n)
	})
	router = httptest.NewServer(routerMux)
	t.Cleanup(router.Close)

	for i := 0; i < 2; i++ {
		i := i
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			n := reqs.Load()
			fmt.Fprintf(w, "hp_http_requests_total %d\nhp_runs_total %d\n", n/2+int64(i), 3+int64(i))
			fmt.Fprintf(w, "hp_cache_hits_total %d\nhp_cache_l2_hits_total %d\n", n/2, int64(i))
			fmt.Fprint(w, "# TYPE hp_latency_request_us histogram\n")
			fmt.Fprintf(w, "hp_latency_request_us_bucket{le=\"500\"} %d\n", n/2)
			fmt.Fprintf(w, "hp_latency_request_us_bucket{le=\"1000\"} %d\n", n/2+2)
			fmt.Fprintf(w, "hp_latency_request_us_bucket{le=\"+Inf\"} %d\n", n/2+2)
			fmt.Fprintf(w, "hp_latency_request_us_sum %d\nhp_latency_request_us_count %d\n", n*100, n/2+2)
		})
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		replicas = append(replicas, srv.URL)
	}
	return router, replicas
}

func TestRunMultiTarget(t *testing.T) {
	router, replicas := multiTargetStub(t)
	rep, err := Run(context.Background(), Config{
		BaseURL:     router.URL,
		Plan:        PlanConfig{Requests: 24, Rate: 4000, Seed: 5},
		Concurrency: 4,
		Replicas:    replicas,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tiers == nil {
		t.Fatal("multi-target run produced no tier breakdown")
	}
	// The stub's hit counter equals the request counter, so the delta over
	// 24 requests is 24 L1 hits, zero new misses.
	if rep.Tiers.L1Hits != 24 || rep.Tiers.Lookups != 24 || rep.Tiers.Computed != 0 {
		t.Fatalf("tiers %+v", rep.Tiers)
	}
	if rep.HitRate != 1 {
		t.Fatalf("hit rate %g", rep.HitRate)
	}
	if len(rep.Replicas) != 2 {
		t.Fatalf("replica stats %+v", rep.Replicas)
	}
	for i, rs := range rep.Replicas {
		if rs.URL != replicas[i] {
			t.Fatalf("replica %d url %q", i, rs.URL)
		}
		// Each replica's request counter moved by half the plan; runs and L2
		// hits are constant in the stub so their deltas are zero.
		if rs.Requests != 12 || rs.Runs != 0 || rs.L2Hits != 0 {
			t.Fatalf("replica %d stats %+v", i, rs)
		}
		if rs.Latency == nil || rs.Latency.Count != 12 || rs.Latency.P50 != 500 {
			t.Fatalf("replica %d latency %+v", i, rs.Latency)
		}
	}

	var text strings.Builder
	if err := rep.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"tiers", "lookups=24", "replicas", replicas[0]} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, text.String())
		}
	}
}

// TestRunSingleTargetNoReplicaSection pins that plain runs stay plain:
// no Replicas section, but the tier breakdown still lands.
func TestRunSingleTargetNoReplicaSection(t *testing.T) {
	srv, _ := stubServer(t)
	rep, err := Run(context.Background(), Config{
		BaseURL: srv.URL,
		Plan:    PlanConfig{Requests: 10, Rate: 4000, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Replicas) != 0 {
		t.Fatalf("unexpected replica stats: %+v", rep.Replicas)
	}
	if rep.Tiers == nil || rep.Tiers.Lookups == 0 {
		t.Fatalf("tier breakdown missing: %+v", rep.Tiers)
	}
}

package load

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestBuildPlanDeterministic(t *testing.T) {
	cfg := PlanConfig{Requests: 200, Rate: 500, Seed: 42}
	a, err := BuildPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash != b.Hash {
		t.Fatalf("same seed, different hashes: %s vs %s", a.Hash, b.Hash)
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs: %+v vs %+v", i, a.Requests[i], b.Requests[i])
		}
	}
	c, err := BuildPlan(PlanConfig{Requests: 200, Rate: 500, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if c.Hash == a.Hash {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestBuildPlanShape(t *testing.T) {
	plan, err := BuildPlan(PlanConfig{Requests: 300, Rate: 1000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var last time.Duration
	for _, r := range plan.Requests {
		if r.Offset < last {
			t.Fatalf("offsets not monotone at %d: %v < %v", r.Index, r.Offset, last)
		}
		last = r.Offset
		switch r.Kind {
		case KindSchedule:
			if r.Alg == "" || !strings.Contains(r.Query, "alg=") {
				t.Fatalf("schedule request missing alg: %+v", r)
			}
		case KindCompare:
			if r.Alg != "" {
				t.Fatalf("compare request carries alg: %+v", r)
			}
		default:
			t.Fatalf("unknown kind %q", r.Kind)
		}
		if r.N < planNMin || r.N > planNMax {
			t.Fatalf("n out of range: %+v", r)
		}
	}
	// With the default 9:1 mix over 300 draws both kinds must appear, and
	// schedule must dominate.
	if plan.MixCounts[KindSchedule] <= plan.MixCounts[KindCompare] || plan.MixCounts[KindCompare] == 0 {
		t.Fatalf("mix counts implausible for 9:1: %v", plan.MixCounts)
	}
	if plan.MixCounts[KindSchedule]+plan.MixCounts[KindCompare] != 300 {
		t.Fatalf("mix counts don't sum: %v", plan.MixCounts)
	}
	// Mean gap should be near 1ms (rate 1000/s): accept a generous band.
	mean := plan.Requests[len(plan.Requests)-1].Offset / time.Duration(len(plan.Requests))
	if mean < 300*time.Microsecond || mean > 3*time.Millisecond {
		t.Fatalf("mean inter-arrival %v far from 1ms", mean)
	}
}

func TestBuildPlanErrors(t *testing.T) {
	if _, err := BuildPlan(PlanConfig{Requests: 0, Rate: 10}); err == nil {
		t.Error("zero requests accepted")
	}
	if _, err := BuildPlan(PlanConfig{Requests: 10, Rate: 0}); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestParseMix(t *testing.T) {
	mix, err := ParseMix("schedule=3,compare=2")
	if err != nil {
		t.Fatal(err)
	}
	want := []MixEntry{{KindSchedule, 3}, {KindCompare, 2}}
	if len(mix) != 2 || mix[0] != want[0] || mix[1] != want[1] {
		t.Fatalf("mix %v", mix)
	}
	if mix, err := ParseMix(""); err != nil || len(mix) != 2 {
		t.Fatalf("empty mix: %v %v", mix, err)
	}
	for _, bad := range []string{"schedule", "schedule=0", "schedule=x", "bogus=1"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("mix %q accepted", bad)
		}
	}
}

// stubServer mimics hpserve's surface closely enough to exercise the
// executor: JSON bodies, X-Trace-Id headers, a resolvable /trace/{id},
// cache counters on /metrics, and a deterministic shed on one request.
func stubServer(t *testing.T) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var reqs atomic.Int64
	var hits atomic.Int64
	mux := http.NewServeMux()
	handler := func(w http.ResponseWriter, r *http.Request) {
		n := reqs.Add(1)
		w.Header().Set("X-Trace-Id", fmt.Sprintf("%016x", n))
		if n == 3 { // one deterministic shed
			http.Error(w, "shed", http.StatusTooManyRequests)
			return
		}
		hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"ok":true}`)
	}
	mux.HandleFunc("/schedule", handler)
	mux.HandleFunc("/compare", handler)
	mux.HandleFunc("/trace/{id}", func(w http.ResponseWriter, r *http.Request) {
		tree := map[string]any{
			"trace_id": r.PathValue("id"),
			"spans": []map[string]any{{
				"name": "req", "start_us": 0, "duration_us": 900, "self_us": 100,
				"children": []map[string]any{
					{"name": "admission", "start_us": 0, "duration_us": 100},
					{"name": "cache", "start_us": 100, "duration_us": 700,
						"children": []map[string]any{
							{"name": "compute", "start_us": 150, "duration_us": 600},
						}},
					{"name": "render", "start_us": 800, "duration_us": 100},
				},
			}},
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(tree)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "hp_cache_hits_total %d\nhp_cache_misses_total 2\n", hits.Load())
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, &reqs
}

func TestRunAgainstStub(t *testing.T) {
	srv, reqs := stubServer(t)
	cfg := Config{
		BaseURL:     srv.URL,
		Plan:        PlanConfig{Requests: 20, Rate: 2000, Seed: 1},
		Concurrency: 4,
		TraceSample: 2,
	}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 20 planned requests plus 2 metrics scrapes plus sampled trace reads.
	if got := reqs.Load(); got < 20 {
		t.Fatalf("stub saw %d requests", got)
	}
	if rep.Status.OK != 19 || rep.Status.Shed != 1 {
		t.Fatalf("status %+v", rep.Status)
	}
	if rep.ShedRate != 1.0/20 {
		t.Fatalf("shed rate %g", rep.ShedRate)
	}
	if rep.HitRate <= 0 || rep.HitRate > 1 {
		t.Fatalf("hit rate %g", rep.HitRate)
	}
	if rep.Latency.P50 <= 0 || rep.Latency.P99 < rep.Latency.P50 || rep.Latency.Max < rep.Latency.P99 {
		t.Fatalf("latency stats not ordered: %+v", rep.Latency)
	}
	if rep.SampledTraces == 0 || len(rep.Phases) == 0 {
		t.Fatalf("no sampled phase breakdown: %+v", rep)
	}
	// Phases come back in canonical pipeline order.
	var names []string
	for _, p := range rep.Phases {
		names = append(names, p.Phase)
	}
	want := []string{"admission", "cache", "compute", "render"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("phase order %v, want %v", names, want)
	}
	if rep.Plan.Hash == "" || rep.Plan.MixCounts[KindSchedule] == 0 {
		t.Fatalf("plan summary incomplete: %+v", rep.Plan)
	}

	// Both renderings must carry the headline numbers.
	var text strings.Builder
	if err := rep.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, wantStr := range []string{"hpload SLO report", "hash=" + rep.Plan.Hash, "shed=1", "admission"} {
		if !strings.Contains(text.String(), wantStr) {
			t.Errorf("text report missing %q:\n%s", wantStr, text.String())
		}
	}
	var buf strings.Builder
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal([]byte(buf.String()), &back); err != nil {
		t.Fatalf("JSON report round-trip: %v", err)
	}
	if back.Plan.Hash != rep.Plan.Hash || back.Status != rep.Status {
		t.Fatalf("JSON round-trip mismatch: %+v vs %+v", back, rep)
	}
}

// TestRunPlanIndependentOfConcurrency is the determinism contract the CI
// smoke job relies on: the plan section of the report is identical for a
// fixed seed no matter the concurrency cap.
func TestRunPlanIndependentOfConcurrency(t *testing.T) {
	srv, _ := stubServer(t)
	var hashes []string
	for _, conc := range []int{1, 4, 16} {
		rep, err := Run(context.Background(), Config{
			BaseURL:     srv.URL,
			Plan:        PlanConfig{Requests: 15, Rate: 3000, Seed: 99},
			Concurrency: conc,
		})
		if err != nil {
			t.Fatal(err)
		}
		planJSON, err := json.Marshal(rep.Plan)
		if err != nil {
			t.Fatal(err)
		}
		hashes = append(hashes, string(planJSON))
	}
	if hashes[0] != hashes[1] || hashes[1] != hashes[2] {
		t.Fatalf("plan summary varies with concurrency:\n%s\n%s\n%s", hashes[0], hashes[1], hashes[2])
	}
}

func TestRunCancelled(t *testing.T) {
	srv, _ := stubServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, Config{
		BaseURL: srv.URL,
		Plan:    PlanConfig{Requests: 5, Rate: 10, Seed: 1},
	}); err == nil {
		t.Fatal("cancelled run returned no error")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{BaseURL: "", Plan: PlanConfig{Requests: 1, Rate: 1}}); err == nil {
		t.Fatal("empty base URL accepted")
	}
}

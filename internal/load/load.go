// Package load is a deterministic open-loop load harness for hpserve.
//
// The harness separates *what* is sent from *how fast the target copes*:
// a seeded Plan fixes every request (arrival offset, endpoint, workload
// parameters) before the first byte is sent, so the same seed produces a
// byte-identical plan at any concurrency; the executor then replays the
// plan open-loop — requests are launched at their planned arrival times
// and latency is measured from the *planned* arrival, not from dispatch,
// so a saturated target shows its queueing delay instead of hiding it
// (the coordinated-omission trap of closed-loop harnesses).
//
// Per-request latency lands in an obs.HDRHistogram; a sampled subset of
// requests is resolved through the server's /trace/{id} endpoint to
// break the tail down by phase (admission, cache, compute, render). The
// result is an SLO Report renderable as text or JSON.
package load

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// MixEntry is one weighted request kind in the workload mix.
type MixEntry struct {
	Kind   string `json:"kind"`
	Weight int    `json:"weight"`
}

// Kinds the planner knows how to generate.
const (
	KindSchedule = "schedule"
	KindCompare  = "compare"
)

// DefaultMix leans on the cheap endpoint, with a minority of expensive
// all-algorithm comparisons — roughly a dashboard's traffic shape.
func DefaultMix() []MixEntry {
	return []MixEntry{{Kind: KindSchedule, Weight: 9}, {Kind: KindCompare, Weight: 1}}
}

// ParseMix parses "schedule=9,compare=1" into mix entries, preserving
// the order given (order matters: it is part of the plan's seed stream).
func ParseMix(s string) ([]MixEntry, error) {
	if strings.TrimSpace(s) == "" {
		return DefaultMix(), nil
	}
	var mix []MixEntry
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("load: mix entry %q is not kind=weight", part)
		}
		w, err := strconv.Atoi(kv[1])
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("load: mix weight %q must be a positive integer", kv[1])
		}
		switch kv[0] {
		case KindSchedule, KindCompare:
		default:
			return nil, fmt.Errorf("load: unknown request kind %q", kv[0])
		}
		mix = append(mix, MixEntry{Kind: kv[0], Weight: w})
	}
	return mix, nil
}

// PlanConfig seeds the deterministic request plan.
type PlanConfig struct {
	Requests int        `json:"requests"`
	Rate     float64    `json:"rate"` // mean arrivals per second (Poisson)
	Seed     int64      `json:"seed"`
	Mix      []MixEntry `json:"mix"`
}

// PlannedRequest is one fully-determined request: when it arrives and
// what it asks for. Query is the encoded parameter string (the target
// path is derived from Kind).
type PlannedRequest struct {
	Index    int           `json:"index"`
	Offset   time.Duration `json:"offset_ns"`
	Kind     string        `json:"kind"`
	Workload string        `json:"workload"`
	N        int           `json:"n"`
	Alg      string        `json:"alg,omitempty"`
	Query    string        `json:"query"`
}

// Plan is the precomputed request sequence plus its fingerprint. Two
// plans built from the same PlanConfig are identical — the executor's
// concurrency never feeds back into the plan.
type Plan struct {
	Config    PlanConfig     `json:"config"`
	Hash      string         `json:"hash"` // sha256 of the request sequence
	MixCounts map[string]int `json:"mix_counts"`
	Requests  []PlannedRequest
}

// The planner's closed parameter space: small enough that a few dozen
// requests revisit combinations (exercising the result cache), large
// enough that the mix is not trivial.
var (
	planWorkloads = []string{"cholesky", "qr", "lu", "wavefront", "chains"}
	planAlgs      = []string{"HeteroPrio-min", "HEFT-avg", "DualHP-fifo"}
	planNMin      = 4
	planNMax      = 7 // inclusive
)

// BuildPlan derives the full request sequence from the seed. All
// randomness is drawn sequentially from one source, so the plan is a
// pure function of PlanConfig.
func BuildPlan(cfg PlanConfig) (*Plan, error) {
	if cfg.Requests <= 0 {
		return nil, fmt.Errorf("load: requests must be positive, got %d", cfg.Requests)
	}
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("load: rate must be positive, got %g", cfg.Rate)
	}
	mix := cfg.Mix
	if len(mix) == 0 {
		mix = DefaultMix()
		cfg.Mix = mix
	}
	total := 0
	for _, m := range mix {
		total += m.Weight
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	plan := &Plan{Config: cfg, MixCounts: map[string]int{}}
	h := sha256.New()
	var offset time.Duration
	for i := 0; i < cfg.Requests; i++ {
		// Poisson arrivals: exponential inter-arrival gaps at the mean rate.
		gap := time.Duration(rng.ExpFloat64() / cfg.Rate * float64(time.Second))
		offset += gap

		pick := rng.Intn(total)
		kind := mix[len(mix)-1].Kind
		for _, m := range mix {
			if pick < m.Weight {
				kind = m.Kind
				break
			}
			pick -= m.Weight
		}

		req := PlannedRequest{
			Index:    i,
			Offset:   offset,
			Kind:     kind,
			Workload: planWorkloads[rng.Intn(len(planWorkloads))],
			N:        planNMin + rng.Intn(planNMax-planNMin+1),
		}
		q := url.Values{
			"workload": {req.Workload},
			"n":        {strconv.Itoa(req.N)},
			"cpus":     {"4"},
			"gpus":     {"2"},
			"format":   {"json"},
		}
		if kind == KindSchedule {
			req.Alg = planAlgs[rng.Intn(len(planAlgs))]
			q.Set("alg", req.Alg)
		}
		req.Query = q.Encode()
		plan.Requests = append(plan.Requests, req)
		plan.MixCounts[kind]++
		fmt.Fprintf(h, "%d|%d|%s|%s\n", i, offset.Nanoseconds(), kind, req.Query)
	}
	plan.Hash = hex.EncodeToString(h.Sum(nil))[:16]
	return plan, nil
}

// Path returns the request path (with query) for a planned request.
func (r PlannedRequest) Path() string {
	return "/" + r.Kind + "?" + r.Query
}

// Config drives one load run.
type Config struct {
	BaseURL     string
	Plan        PlanConfig
	Concurrency int           // in-flight request cap (dispatch gate only)
	Timeout     time.Duration // per-request client timeout
	TraceSample int           // resolve every Nth OK request's trace; 0 disables
	Client      *http.Client  // optional; defaults to one with Timeout
	// Replicas lists replica base URLs to scrape individually before and
	// after the run (multi-target mode against a router). Usually filled
	// via DiscoverReplicas; empty means single-target reporting.
	Replicas []string
}

// StatusCounts buckets request outcomes by the server's SLO-relevant
// status classes.
type StatusCounts struct {
	OK       int `json:"ok"`
	Shed     int `json:"shed"`     // 429: admission queue full
	Deadline int `json:"deadline"` // 503: per-request deadline expired
	Errors   int `json:"errors"`   // transport errors and other statuses
}

// LatencyStats summarises an HDR histogram in microseconds.
type LatencyStats struct {
	P50  int64 `json:"p50_us"`
	P99  int64 `json:"p99_us"`
	P999 int64 `json:"p999_us"`
	Max  int64 `json:"max_us"`
	Mean int64 `json:"mean_us"`
}

func latencyStats(h *obs.HDRHistogram) LatencyStats {
	return LatencyStats{
		P50:  h.Quantile(0.50),
		P99:  h.Quantile(0.99),
		P999: h.Quantile(0.999),
		Max:  h.Max(),
		Mean: int64(h.Mean() + 0.5),
	}
}

// PhaseStat is the per-phase latency breakdown from sampled traces.
type PhaseStat struct {
	Phase string `json:"phase"`
	Count int64  `json:"count"`
	P50   int64  `json:"p50_us"`
	P99   int64  `json:"p99_us"`
}

// PlanSummary is the deterministic part of the report: for a fixed seed
// it is identical at any concurrency (the CI smoke job diffs it).
type PlanSummary struct {
	Seed      int64          `json:"seed"`
	Requests  int            `json:"requests"`
	Rate      float64        `json:"rate"`
	Mix       []MixEntry     `json:"mix"`
	MixCounts map[string]int `json:"mix_counts"`
	Hash      string         `json:"hash"`
}

// Report is the SLO report for one run.
type Report struct {
	Target        string         `json:"target"`
	Concurrency   int            `json:"concurrency"`
	Plan          PlanSummary    `json:"plan"`
	ElapsedMS     float64        `json:"elapsed_ms"`
	AchievedRate  float64        `json:"achieved_rate"`
	Status        StatusCounts   `json:"status"`
	HitRate       float64        `json:"hit_rate"`  // Δ L1 hits / Δ lookups, from /metrics
	ShedRate      float64        `json:"shed_rate"` // shed / planned requests
	Latency       LatencyStats   `json:"latency"`
	Tiers         *TierBreakdown `json:"tiers,omitempty"`    // cache-tier deltas off the target
	Replicas      []ReplicaStats `json:"replicas,omitempty"` // per-replica deltas (multi-target mode)
	Phases        []PhaseStat    `json:"phases"`
	SampledTraces int            `json:"sampled_traces"`
}

// Run builds the plan and replays it against cfg.BaseURL.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	plan, err := BuildPlan(cfg.Plan)
	if err != nil {
		return nil, err
	}
	return RunPlan(ctx, cfg, plan)
}

// RunPlan replays a prebuilt plan. The concurrency cap gates dispatch
// only: arrival times and latency zero-points come from the plan, so a
// small cap converts into visible queueing latency, never into a lighter
// plan.
func RunPlan(ctx context.Context, cfg Config, plan *Plan) (*Report, error) {
	base := strings.TrimSuffix(cfg.BaseURL, "/")
	if base == "" {
		return nil, fmt.Errorf("load: base URL required")
	}
	conc := cfg.Concurrency
	if conc <= 0 {
		conc = 8
	}
	client := cfg.Client
	if client == nil {
		timeout := cfg.Timeout
		if timeout <= 0 {
			timeout = 30 * time.Second
		}
		// One target host at up to `conc` in-flight requests: the default
		// transport's 2 idle connections per host would turn the harness
		// into a connection-churn benchmark. Size the idle pool to the
		// concurrency cap so the measured latency is the target's.
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConns = 2 * conc
		tr.MaxIdleConnsPerHost = conc
		client = &http.Client{Timeout: timeout, Transport: tr}
	}

	var (
		hist = obs.NewHDR()
		mu   sync.Mutex // guards status, phases, sampled
		st   StatusCounts
		// phases accumulates span durations from sampled traces, keyed by
		// span name.
		phases  = map[string]*obs.HDRHistogram{}
		sampled int
	)

	before := scrapeExposition(ctx, client, base)
	replicaBefore := scrapeReplicas(ctx, client, cfg.Replicas)

	sem := make(chan struct{}, conc)
	var wg sync.WaitGroup
	start := time.Now()
	for _, req := range plan.Requests {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Open loop: wait for the planned arrival, then launch. The
		// semaphore is acquired inside the worker so a saturated target
		// delays *dispatch*, and the delay is charged to the request.
		sleepUntil(ctx, start.Add(req.Offset))
		wg.Add(1)
		go func(req PlannedRequest, arrival time.Time) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()

			traceID, class := doRequest(ctx, client, base, req)
			lat := time.Since(arrival)
			hist.Record(lat.Microseconds())

			mu.Lock()
			switch class {
			case http.StatusOK:
				st.OK++
			case http.StatusTooManyRequests:
				st.Shed++
			case http.StatusServiceUnavailable:
				st.Deadline++
			default:
				st.Errors++
			}
			wantTrace := class == http.StatusOK && traceID != "" &&
				cfg.TraceSample > 0 && req.Index%cfg.TraceSample == 0
			mu.Unlock()

			if !wantTrace {
				return
			}
			tree, err := fetchTrace(ctx, client, base, traceID)
			if err != nil {
				return
			}
			mu.Lock()
			sampled++
			recordPhases(phases, tree)
			mu.Unlock()
		}(req, start.Add(req.Offset))
	}
	wg.Wait()
	elapsed := time.Since(start)

	after := scrapeExposition(ctx, client, base)
	replicaAfter := scrapeReplicas(ctx, client, cfg.Replicas)

	rep := &Report{
		Target:      base,
		Concurrency: conc,
		Plan: PlanSummary{
			Seed:      plan.Config.Seed,
			Requests:  plan.Config.Requests,
			Rate:      plan.Config.Rate,
			Mix:       plan.Config.Mix,
			MixCounts: plan.MixCounts,
			Hash:      plan.Hash,
		},
		ElapsedMS:     float64(elapsed) / float64(time.Millisecond),
		AchievedRate:  float64(len(plan.Requests)) / elapsed.Seconds(),
		Status:        st,
		ShedRate:      float64(st.Shed) / float64(len(plan.Requests)),
		Latency:       latencyStats(hist),
		SampledTraces: sampled,
	}
	rep.Tiers = tierBreakdown(before, after)
	if rep.Tiers != nil && rep.Tiers.Lookups > 0 {
		rep.HitRate = rep.Tiers.L1HitRate
	}
	for i, u := range cfg.Replicas {
		rep.Replicas = append(rep.Replicas, replicaStats(u, replicaBefore[i], replicaAfter[i]))
	}
	for _, name := range phaseOrder(phases) {
		h := phases[name]
		rep.Phases = append(rep.Phases, PhaseStat{
			Phase: name, Count: int64(h.Count()), P50: h.Quantile(0.50), P99: h.Quantile(0.99),
		})
	}
	return rep, nil
}

// sleepUntil waits for the wall-clock deadline, returning early if the
// context dies (the caller re-checks ctx).
func sleepUntil(ctx context.Context, t time.Time) {
	d := time.Until(t)
	if d <= 0 {
		return
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-ctx.Done():
	}
}

// doRequest issues one planned request, draining the body, and returns
// the trace ID header and the HTTP status (0 on transport error).
func doRequest(ctx context.Context, client *http.Client, base string, pr PlannedRequest) (string, int) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+pr.Path(), nil)
	if err != nil {
		return "", 0
	}
	resp, err := client.Do(req)
	if err != nil {
		return "", 0
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.Header.Get("X-Trace-Id"), resp.StatusCode
}

// fetchTrace resolves a finished request trace into its span tree.
func fetchTrace(ctx context.Context, client *http.Client, base, id string) (*obs.TraceTree, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/trace/"+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("load: trace %s: status %d", id, resp.StatusCode)
	}
	var tree obs.TraceTree
	if err := json.NewDecoder(resp.Body).Decode(&tree); err != nil {
		return nil, err
	}
	return &tree, nil
}

// recordPhases folds every non-root span of a trace into the per-phase
// histograms.
func recordPhases(phases map[string]*obs.HDRHistogram, tree *obs.TraceTree) {
	var walk func(n *obs.SpanNode, root bool)
	walk = func(n *obs.SpanNode, root bool) {
		if !root {
			h := phases[n.Name]
			if h == nil {
				h = obs.NewHDR()
				phases[n.Name] = h
			}
			h.Record(n.DurationUS)
		}
		for _, c := range n.Children {
			walk(c, false)
		}
	}
	for _, r := range tree.Spans {
		walk(r, true)
	}
}

// canonicalPhases orders the report's phase table by request flow; any
// phase outside the known pipeline sorts alphabetically after them.
var canonicalPhases = []string{"admission", "cache", "coalesce", "compute", "cell", "render"}

func phaseOrder(phases map[string]*obs.HDRHistogram) []string {
	rank := map[string]int{}
	for i, p := range canonicalPhases {
		rank[p] = i
	}
	names := make([]string, 0, len(phases))
	for name := range phases {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		ri, iok := rank[names[i]]
		rj, jok := rank[names[j]]
		switch {
		case iok && jok:
			return ri < rj
		case iok:
			return true
		case jok:
			return false
		default:
			return names[i] < names[j]
		}
	})
	return names
}

// scrapeReplicas snapshots each replica's exposition; a failed scrape
// leaves a nil slot (its deltas read as zero).
func scrapeReplicas(ctx context.Context, client *http.Client, urls []string) []*obs.Exposition {
	if len(urls) == 0 {
		return nil
	}
	out := make([]*obs.Exposition, len(urls))
	for i, u := range urls {
		out[i] = scrapeExposition(ctx, client, u)
	}
	return out
}

package load

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"

	"repro/internal/obs"
)

// This file is the multi-target side of the harness: when the target is
// a replica router, hpload scrapes every replica's /metrics before and
// after the run and reports per-replica request counts, cache-tier hits
// and server-side latency quantiles next to the aggregate report.

// DiscoverReplicas asks a router target for its replica list (the
// /replicas endpoint). A plain single-replica hpserve has no such
// endpoint; callers treat an error as "no replicas to break down".
func DiscoverReplicas(ctx context.Context, client *http.Client, base string) ([]string, error) {
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimSuffix(base, "/")+"/replicas", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("load: /replicas: status %d", resp.StatusCode)
	}
	var listing struct {
		Replicas []struct {
			URL string `json:"url"`
		} `json:"replicas"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		return nil, err
	}
	urls := make([]string, 0, len(listing.Replicas))
	for _, r := range listing.Replicas {
		urls = append(urls, r.URL)
	}
	if len(urls) == 0 {
		return nil, fmt.Errorf("load: /replicas listed no replicas")
	}
	return urls, nil
}

// TierBreakdown is the cache-tier accounting of a run, from the target's
// /metrics deltas (on a router target the merged view, so the counts
// cover the whole cluster). Counts are exact; with router affinity and
// no sheds they are a pure function of the plan, independent of client
// concurrency — the property the shard-smoke CI diff asserts.
type TierBreakdown struct {
	Lookups   int64   `json:"lookups"`
	L1Hits    int64   `json:"l1_hits"` // includes coalesced shares
	L2Hits    int64   `json:"l2_hits"`
	Computed  int64   `json:"computed"`
	L1HitRate float64 `json:"l1_hit_rate"`
	L2HitRate float64 `json:"l2_hit_rate"`
}

// ServerLatency is a server-side latency summary derived from HDR bucket
// deltas of hp_latency_request_us — quantiles of what the replica
// measured, free of client queueing.
type ServerLatency struct {
	Count int64 `json:"count"`
	P50   int64 `json:"p50_us"`
	P99   int64 `json:"p99_us"`
	P999  int64 `json:"p999_us"`
}

// ReplicaStats is one replica's share of the run.
type ReplicaStats struct {
	URL      string         `json:"url"`
	Requests int64          `json:"requests"` // HTTP requests handled
	Runs     int64          `json:"runs"`     // simulations actually executed
	L1Hits   int64          `json:"l1_hits"`
	L2Hits   int64          `json:"l2_hits"`
	Latency  *ServerLatency `json:"latency,omitempty"`
}

// scrapeExposition fetches and parses a /metrics exposition; failures
// degrade to nil (the report omits what it cannot measure).
func scrapeExposition(ctx context.Context, client *http.Client, base string) *obs.Exposition {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimSuffix(base, "/")+"/metrics", nil)
	if err != nil {
		return nil
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		return nil
	}
	exp, err := obs.ParseExposition(string(body))
	if err != nil {
		return nil
	}
	return exp
}

// expDelta reads the increase of a summed family between two scrapes.
// Either side being nil reads as zero.
func expDelta(before, after *obs.Exposition, name string) float64 {
	if after == nil {
		return 0
	}
	d := after.Value(name)
	if before != nil {
		d -= before.Value(name)
	}
	return d
}

// tierBreakdown derives the tier accounting from target scrapes.
func tierBreakdown(before, after *obs.Exposition) *TierBreakdown {
	if after == nil {
		return nil
	}
	l1 := int64(expDelta(before, after, "hp_cache_hits_total"))
	misses := int64(expDelta(before, after, "hp_cache_misses_total"))
	l2 := int64(expDelta(before, after, "hp_cache_l2_hits_total"))
	t := &TierBreakdown{
		Lookups:  l1 + misses,
		L1Hits:   l1,
		L2Hits:   l2,
		Computed: misses - l2,
	}
	if t.Lookups > 0 {
		t.L1HitRate = float64(t.L1Hits) / float64(t.Lookups)
		t.L2HitRate = float64(t.L2Hits) / float64(t.Lookups)
	}
	return t
}

// replicaStats derives one replica's share from its scrape pair.
func replicaStats(url string, before, after *obs.Exposition) ReplicaStats {
	rs := ReplicaStats{
		URL:      url,
		Requests: int64(expDelta(before, after, "hp_http_requests_total")),
		Runs:     int64(expDelta(before, after, "hp_runs_total")),
		L1Hits:   int64(expDelta(before, after, "hp_cache_hits_total")),
		L2Hits:   int64(expDelta(before, after, "hp_cache_l2_hits_total")),
	}
	if after != nil {
		rs.Latency = serverLatency(histDelta(
			histBuckets(before, "hp_latency_request_us"),
			histBuckets(after, "hp_latency_request_us")))
	}
	return rs
}

func histBuckets(exp *obs.Exposition, name string) []obs.HistBucket {
	if exp == nil {
		return nil
	}
	return exp.Histogram(name)
}

// histDelta subtracts two cumulative bucket snapshots at after's
// boundaries. A boundary absent from before reads as before's cumulative
// count at the next lower boundary it does emit — exact for same-grid
// histograms (the merge-side argument in obs/merge.go).
func histDelta(before, after []obs.HistBucket) []obs.HistBucket {
	if len(after) == 0 {
		return nil
	}
	out := make([]obs.HistBucket, len(after))
	for i, b := range after {
		out[i] = obs.HistBucket{Le: b.Le, Cum: b.Cum - cumAtBound(before, b.Le)}
	}
	return out
}

// cumAtBound reads a cumulative snapshot at bound b (zero below the
// first emitted bound).
func cumAtBound(bks []obs.HistBucket, b float64) float64 {
	cum := 0.0
	for _, bk := range bks {
		if bk.Le > b {
			break
		}
		cum = bk.Cum
	}
	return cum
}

// serverLatency summarises a delta distribution into quantiles. Each
// quantile reports the upper bound of the bucket containing it — the
// same ~3% relative-error contract as the HDR histogram itself.
func serverLatency(delta []obs.HistBucket) *ServerLatency {
	if len(delta) == 0 {
		return nil
	}
	total := delta[len(delta)-1].Cum
	if total <= 0 {
		return nil
	}
	q := func(p float64) int64 {
		target := p * total
		last := 0.0
		for _, bk := range delta {
			if bk.Cum >= target && bk.Cum > 0 {
				if math.IsInf(bk.Le, 1) {
					return int64(last)
				}
				return int64(bk.Le)
			}
			if !math.IsInf(bk.Le, 1) {
				last = bk.Le
			}
		}
		return int64(last)
	}
	return &ServerLatency{Count: int64(total), P50: q(0.50), P99: q(0.99), P999: q(0.999)}
}

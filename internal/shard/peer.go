package shard

import (
	"context"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// Metric names of the HTTP peer-fill tier (DESIGN.md §14 catalog).
const (
	MetricL2PeerErrors = "hp_cache_l2_peer_errors_total"
)

// L2Path is the internal endpoint prefix replicas serve their local L2
// store under; an entry's URL is L2Path + hex(key).
const L2Path = "/internal/l2/"

// PeerL2 shards the L2 tier across replica processes by the same
// consistent-hash placement the router uses: every key has one home
// replica, whose local MemoryL2 holds the bytes; Get and Put from any
// other replica travel over HTTP to the home's L2Path endpoint. Because
// placement is a pure function of the shared peer list and the key,
// every replica independently agrees where each entry lives — no
// directory, no invalidation (entries are content-addressed by the
// canonical request key, so they can never be stale).
//
// All failures degrade to misses: L2 is an optimization, and a dead peer
// must never take the serving path down with it.
type PeerL2 struct {
	ring   *Ring
	self   int
	local  *MemoryL2
	client *http.Client
	errors *obs.Counter
}

// NewPeerL2 builds the peer tier for one replica. peers is the full
// replica URL list — identical, in the same order, on every replica —
// and self must be one of its entries (this process). vnodes must also
// agree across replicas (0 selects DefaultVNodes). local holds this
// replica's share of the tier and is what Handler serves to peers.
func NewPeerL2(peers []string, self string, vnodes int, local *MemoryL2, client *http.Client, reg *obs.Registry) (*PeerL2, error) {
	selfIdx := -1
	for i, p := range peers {
		if p == self {
			selfIdx = i
			break
		}
	}
	if selfIdx < 0 {
		return nil, fmt.Errorf("shard: self %q is not in the peer list %v", self, peers)
	}
	if local == nil {
		return nil, fmt.Errorf("shard: peer tier needs a local store")
	}
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Second}
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &PeerL2{
		ring:   NewRing(peers, vnodes),
		self:   selfIdx,
		local:  local,
		client: client,
		errors: reg.Counter(MetricL2PeerErrors,
			"L2 peer-fill round trips that failed (network or non-2xx); each degrades to a tier miss."),
	}, nil
}

// Local returns this replica's local share of the tier.
func (p *PeerL2) Local() *MemoryL2 { return p.local }

// Get implements L2: a local lookup when this replica is the key's home,
// an HTTP GET to the home replica otherwise.
func (p *PeerL2) Get(ctx context.Context, k serve.Key) ([]byte, bool) {
	home := p.ring.Lookup(k)
	if home == p.self {
		return p.local.Get(ctx, k)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.entryURL(home, k), nil)
	if err != nil {
		p.errors.Inc()
		return nil, false
	}
	resp, err := p.client.Do(req)
	if err != nil {
		p.errors.Inc()
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, false
	}
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		p.errors.Inc()
		return nil, false
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		p.errors.Inc()
		return nil, false
	}
	return raw, true
}

// Put implements L2: a local store when this replica is the key's home,
// an HTTP PUT to the home replica otherwise. Failures are dropped — the
// entry simply stays uncached and the next miss recomputes it.
func (p *PeerL2) Put(ctx context.Context, k serve.Key, v []byte) {
	home := p.ring.Lookup(k)
	if home == p.self {
		p.local.Put(ctx, k, v)
		return
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, p.entryURL(home, k), strings.NewReader(string(v)))
	if err != nil {
		p.errors.Inc()
		return
	}
	resp, err := p.client.Do(req)
	if err != nil {
		p.errors.Inc()
		return
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode/100 != 2 {
		p.errors.Inc()
	}
}

func (p *PeerL2) entryURL(home int, k serve.Key) string {
	return strings.TrimSuffix(p.ring.Replicas()[home], "/") + L2Path + hex.EncodeToString(k[:])
}

// L2Handler serves a local store at L2Path for peers: GET returns the
// bytes (200) or 404, PUT stores the body (204). The route pattern to
// register it under is L2Path + "{key}".
func L2Handler(store *MemoryL2) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		raw, err := hex.DecodeString(r.PathValue("key"))
		if err != nil || len(raw) != len(serve.Key{}) {
			http.Error(w, "malformed l2 key", http.StatusBadRequest)
			return
		}
		var k serve.Key
		copy(k[:], raw)
		switch r.Method {
		case http.MethodGet:
			v, ok := store.Get(r.Context(), k)
			if !ok {
				http.NotFound(w, r)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			_, _ = w.Write(v)
		case http.MethodPut:
			body, err := io.ReadAll(io.LimitReader(r.Body, maxL2EntryBytes+1))
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if len(body) > maxL2EntryBytes {
				http.Error(w, "l2 entry too large", http.StatusRequestEntityTooLarge)
				return
			}
			store.Put(r.Context(), k, body)
			w.WriteHeader(http.StatusNoContent)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
}

// maxL2EntryBytes bounds one peer-filled entry; a rendered schedule page
// stays well under it, and the cap keeps a confused peer from wedging a
// store.
const maxL2EntryBytes = 4 << 20

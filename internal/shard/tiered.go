package shard

import (
	"context"

	"repro/internal/obs"
	"repro/internal/serve"
)

// Metric names of the shared L2 cache tier (DESIGN.md §14 catalog).
const (
	MetricL2Hits   = "hp_cache_l2_hits_total"
	MetricL2Misses = "hp_cache_l2_misses_total"
	MetricL2Fills  = "hp_cache_l2_fills_total"
)

// L2 is the shared second cache tier: an opaque byte store keyed by the
// canonical request key. Implementations must be safe for concurrent
// use. Get returns the stored bytes (callers must treat them as
// immutable); a miss, a lost entry or a peer failure all read as
// (nil, false) — L2 is an optimization, never an authority. Put is
// best-effort for the same reason.
type L2 interface {
	Get(ctx context.Context, k serve.Key) ([]byte, bool)
	Put(ctx context.Context, k serve.Key, v []byte)
}

// Outcome says how a Tiered.DoCtx call was served.
type Outcome int

const (
	// Computed: every tier missed; this call ran compute.
	Computed Outcome = iota
	// HitL1: served from the local LRU.
	HitL1
	// HitL2: the local tier missed but the shared tier had the bytes; the
	// decoded value was promoted into L1.
	HitL2
	// CoalescedTier: an identical call was already in flight on this
	// replica; this call shared its result (whatever tier produced it).
	CoalescedTier
)

// String implements fmt.Stringer for test failure messages.
func (o Outcome) String() string {
	switch o {
	case Computed:
		return "computed"
	case HitL1:
		return "hit_l1"
	case HitL2:
		return "hit_l2"
	case CoalescedTier:
		return "coalesced"
	default:
		return "unknown"
	}
}

// Tiered layers the shared L2 tier under a replica's L1 serve.Cache:
//
//	L1 hit                    -> return (HitL1)
//	L1 in-flight              -> coalesce onto it (CoalescedTier)
//	L1 miss -> L2 hit         -> decode, populate L1, return (HitL2)
//	L1 miss -> L2 miss        -> compute, fill L2 + L1 (Computed)
//
// The L2 consult runs inside L1's single-flight window, so concurrent
// identical requests still cost at most one L2 round trip plus at most
// one compute, and errors are never cached in either tier (L1 refuses
// them, and the L2 fill only happens after a successful compute). With a
// nil L2 a Tiered degrades to the plain L1 cache.
type Tiered[V any] struct {
	l1     *serve.Cache[V]
	l2     L2
	encode func(V) ([]byte, error)
	decode func([]byte) (V, error)

	l2hits   *obs.Counter
	l2misses *obs.Counter
	l2fills  *obs.Counter
}

// NewTiered builds a two-tier cache over an existing L1. encode/decode
// translate values to the opaque bytes L2 stores; a decode failure on an
// L2 hit degrades to a miss (the entry is recomputed, never trusted).
// Metrics are registered in reg, or in a private registry when reg is
// nil. l2 may be nil.
func NewTiered[V any](l1 *serve.Cache[V], l2 L2, encode func(V) ([]byte, error), decode func([]byte) (V, error), reg *obs.Registry) *Tiered[V] {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Tiered[V]{
		l1:     l1,
		l2:     l2,
		encode: encode,
		decode: decode,
		l2hits: reg.Counter(MetricL2Hits,
			"L1 misses served from the shared L2 cache tier."),
		l2misses: reg.Counter(MetricL2Misses,
			"L1 misses that also missed the shared L2 tier and ran compute."),
		l2fills: reg.Counter(MetricL2Fills,
			"Computed results written into the shared L2 tier."),
	}
}

// L1 returns the underlying local cache.
func (t *Tiered[V]) L1() *serve.Cache[V] { return t.l1 }

// DoCtx returns the value for k, consulting L1, then L2, then compute.
// Context and tracing semantics match serve.Cache.DoCtx; on a traced
// request the cache span additionally carries an "l2" annotation (hit /
// miss) when the shared tier was consulted.
func (t *Tiered[V]) DoCtx(ctx context.Context, k serve.Key, compute func(context.Context) (V, error)) (V, Outcome, error) {
	// fromL2 is written only by the single-flight winner's closure, which
	// runs synchronously in this goroutine exactly when the L1 outcome is
	// Miss — the only case the value is read.
	fromL2 := false
	v, out, err := t.l1.DoCtx(ctx, k, func(cctx context.Context) (V, error) {
		if t.l2 != nil {
			if raw, ok := t.l2.Get(cctx, k); ok {
				dv, derr := t.decode(raw)
				if derr == nil {
					t.l2hits.Inc()
					fromL2 = true
					if sp := obs.SpanFromContext(cctx); sp != nil {
						sp.Annotate("l2", "hit")
					}
					return dv, nil
				}
				// Undecodable bytes: treat as a miss and recompute.
			}
			t.l2misses.Inc()
			if sp := obs.SpanFromContext(cctx); sp != nil {
				sp.Annotate("l2", "miss")
			}
		}
		cv, cerr := compute(cctx)
		if cerr == nil && t.l2 != nil {
			if raw, eerr := t.encode(cv); eerr == nil {
				t.l2.Put(cctx, k, raw)
				t.l2fills.Inc()
			}
		}
		return cv, cerr
	})
	switch out {
	case serve.Hit:
		return v, HitL1, err
	case serve.Coalesced:
		return v, CoalescedTier, err
	}
	if err == nil && fromL2 {
		return v, HitL2, nil
	}
	return v, Computed, err
}

// Get returns the L1-cached value without consulting L2 or computing.
func (t *Tiered[V]) Get(k serve.Key) (V, bool) { return t.l1.Get(k) }

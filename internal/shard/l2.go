package shard

import (
	"container/list"
	"context"
	"sync"

	"repro/internal/obs"
	"repro/internal/serve"
)

// Metric names of the L2 byte store (DESIGN.md §14 catalog).
const (
	MetricL2Entries   = "hp_cache_l2_entries"
	MetricL2Evictions = "hp_cache_l2_evictions_total"
)

// memEntry is one stored entry in the MemoryL2 LRU list.
type memEntry struct {
	key serve.Key
	val []byte
}

// MemoryL2 is a bounded in-process LRU byte store: the shared tier for
// in-process replica clusters and tests, and the local backing store of
// a PeerL2 node. Values are stored and returned by reference; callers
// must treat them as immutable (the tiered cache only ever decodes
// them). The zero value is not usable; call NewMemoryL2.
type MemoryL2 struct {
	capacity  int
	entries   *obs.Gauge
	evictions *obs.Counter

	mu    sync.Mutex
	ll    *list.List // front = most recently used; values are *memEntry
	items map[serve.Key]*list.Element
}

// NewMemoryL2 returns a store holding at most capacity entries (minimum
// 1). Metrics are registered in reg, or in a private registry when reg
// is nil.
func NewMemoryL2(capacity int, reg *obs.Registry) *MemoryL2 {
	if capacity < 1 {
		capacity = 1
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &MemoryL2{
		capacity: capacity,
		entries: reg.Gauge(MetricL2Entries,
			"Entries currently resident in the shared L2 cache tier."),
		evictions: reg.Counter(MetricL2Evictions,
			"L2 entries evicted by the LRU capacity bound."),
		ll:    list.New(),
		items: make(map[serve.Key]*list.Element),
	}
}

// Len returns the number of resident entries.
func (m *MemoryL2) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ll.Len()
}

// Get implements L2.
func (m *MemoryL2) Get(_ context.Context, k serve.Key) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.items[k]; ok {
		m.ll.MoveToFront(el)
		return el.Value.(*memEntry).val, true
	}
	return nil, false
}

// Put implements L2. Re-putting an existing key keeps the resident bytes
// (first write wins — both encode the same pure result, and keeping the
// resident copy preserves byte identity with everything already served
// from it).
func (m *MemoryL2) Put(_ context.Context, k serve.Key, v []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.items[k]; ok {
		m.ll.MoveToFront(el)
		return
	}
	// The entries gauge moves by deltas, matching the L1 convention, so
	// stores sharing a registry aggregate instead of stomping each other.
	m.items[k] = m.ll.PushFront(&memEntry{key: k, val: v})
	m.entries.Add(1)
	for m.ll.Len() > m.capacity {
		oldest := m.ll.Back()
		m.ll.Remove(oldest)
		delete(m.items, oldest.Value.(*memEntry).key)
		m.evictions.Inc()
		m.entries.Add(-1)
	}
}

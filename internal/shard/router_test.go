package shard

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
	"repro/internal/serve"
)

// testKeyFunc keys a request by its "name" query parameter.
func testKeyFunc(r *http.Request) (serve.Key, error) {
	name := r.URL.Query().Get("name")
	if name == "" {
		return serve.Key{}, fmt.Errorf("missing name")
	}
	return sha256.Sum256([]byte(name)), nil
}

// newTestCluster starts n replica servers whose /schedule handler echoes
// "replica-<i>" plus the request's name, with a per-replica metrics
// registry.
func newTestCluster(t *testing.T, n int) (urls []string, srvs []*httptest.Server, regs []*obs.Registry) {
	t.Helper()
	for i := 0; i < n; i++ {
		reg := obs.NewRegistry()
		mux := http.NewServeMux()
		idx := i
		mux.HandleFunc("/schedule", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintf(w, "replica-%d:%s", idx, r.URL.Query().Get("name"))
		})
		mux.HandleFunc("/runs", func(w http.ResponseWriter, _ *http.Request) {
			fmt.Fprintf(w, "runs-from-%d", idx)
		})
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			_ = reg.WritePrometheus(w)
		})
		mux.HandleFunc("/trace/{id}", func(w http.ResponseWriter, r *http.Request) {
			if r.PathValue("id") == "feed" && idx == n-1 {
				fmt.Fprintf(w, "trace-body-%d", idx)
				return
			}
			http.NotFound(w, r)
		})
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		urls = append(urls, srv.URL)
		srvs = append(srvs, srv)
		regs = append(regs, reg)
	}
	return urls, srvs, regs
}

func newTestRouter(t *testing.T, urls []string, clk clock.Clock, reg *obs.Registry) *Router {
	t.Helper()
	rt, err := NewRouter(RouterConfig{
		Backends: urls,
		VNodes:   16,
		Key:      testKeyFunc,
		Clock:    clk,
		Cooldown: 50 * time.Millisecond,
		Registry: reg,
	})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	return rt
}

func get(t *testing.T, h http.Handler, path string) (*httptest.ResponseRecorder, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	body, _ := io.ReadAll(rec.Result().Body)
	return rec, string(body)
}

func TestRouterDeterministicPlacement(t *testing.T) {
	urls, _, _ := newTestCluster(t, 3)
	rt := newTestRouter(t, urls, nil, obs.NewRegistry())
	hits := map[string]int{}
	for i := 0; i < 60; i++ {
		name := fmt.Sprintf("req-%d", i)
		rec, body := get(t, rt, "/schedule?name="+name)
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d for %s", rec.Code, name)
		}
		if !strings.HasSuffix(body, ":"+name) {
			t.Fatalf("replica echoed %q for %s", body, name)
		}
		replica := rec.Header().Get("X-Shard-Replica")
		if replica == "" {
			t.Fatalf("missing X-Shard-Replica header")
		}
		hits[strings.SplitN(body, ":", 2)[0]]++
		// Same key again: same replica.
		_, body2 := get(t, rt, "/schedule?name="+name)
		if body2 != body {
			t.Fatalf("key %s moved: %q then %q", name, body, body2)
		}
	}
	if len(hits) != 3 {
		t.Fatalf("60 keys landed on %d of 3 replicas: %v", len(hits), hits)
	}
	// Placement matches the ring directly.
	k, _ := testKeyFunc(httptest.NewRequest(http.MethodGet, "/schedule?name=req-0", nil))
	_, body := get(t, rt, "/schedule?name=req-0")
	want := fmt.Sprintf("replica-%d", rt.Ring().Lookup(k))
	if !strings.HasPrefix(body, want) {
		t.Fatalf("ring says %s, router picked %q", want, body)
	}
}

func TestRouterFailoverAndCooldown(t *testing.T) {
	urls, srvs, _ := newTestCluster(t, 3)
	clk := clock.NewManual(time.Unix(1000, 0))
	reg := obs.NewRegistry()
	rt := newTestRouter(t, urls, clk, reg)

	// Find a key homed on replica 0 and kill that replica.
	name := ""
	for i := 0; ; i++ {
		cand := fmt.Sprintf("fo-%d", i)
		k := sha256.Sum256([]byte(cand))
		if rt.Ring().Lookup(k) == 0 {
			name = cand
			break
		}
	}
	srvs[0].Close()
	rec, body := get(t, rt, "/schedule?name="+name)
	if rec.Code != http.StatusOK {
		t.Fatalf("failover status %d", rec.Code)
	}
	if strings.HasPrefix(body, "replica-0") {
		t.Fatalf("dead replica served the request")
	}
	if got := metric(t, reg, MetricShardRetries); got < 1 {
		t.Fatalf("%s = %v, want >= 1", MetricShardRetries, got)
	}
	// The dead replica is now in cooldown: /replicas reports it unhealthy
	// and further requests for its keys go straight to the successor
	// (no retry increment).
	_, repBody := get(t, rt, "/replicas")
	var listing struct {
		Replicas []struct {
			URL     string `json:"url"`
			Healthy bool   `json:"healthy"`
		} `json:"replicas"`
	}
	if err := json.Unmarshal([]byte(repBody), &listing); err != nil {
		t.Fatalf("bad /replicas JSON: %v", err)
	}
	if len(listing.Replicas) != 3 || listing.Replicas[0].Healthy || !listing.Replicas[1].Healthy {
		t.Fatalf("replica listing wrong: %+v", listing.Replicas)
	}
	before := metric(t, reg, MetricShardRetries)
	_, body2 := get(t, rt, "/schedule?name="+name)
	if body2 != body {
		t.Fatalf("failover placement unstable: %q then %q", body, body2)
	}
	if got := metric(t, reg, MetricShardRetries); got != before {
		t.Fatalf("in-cooldown request still counted a retry (%v -> %v)", before, got)
	}
	// After the cooldown the request probes replica 0 again (still dead:
	// one retry, same successor answer).
	clk.Advance(time.Second)
	before = metric(t, reg, MetricShardRetries)
	_, body3 := get(t, rt, "/schedule?name="+name)
	if body3 != body {
		t.Fatalf("post-cooldown placement unstable: %q", body3)
	}
	if got := metric(t, reg, MetricShardRetries); got != before+1 {
		t.Fatalf("post-cooldown probe did not retry (%v -> %v)", before, got)
	}
}

func TestRouterAllReplicasDown(t *testing.T) {
	urls, srvs, _ := newTestCluster(t, 2)
	reg := obs.NewRegistry()
	rt := newTestRouter(t, urls, nil, reg)
	srvs[0].Close()
	srvs[1].Close()
	rec, _ := get(t, rt, "/schedule?name=x")
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("status %d, want 502", rec.Code)
	}
	if got := metric(t, reg, MetricShardErrors); got != 1 {
		t.Fatalf("%s = %v, want 1", MetricShardErrors, got)
	}
}

func TestRouterBadKeyIsLocal400(t *testing.T) {
	urls, _, _ := newTestCluster(t, 2)
	reg := obs.NewRegistry()
	rt := newTestRouter(t, urls, nil, reg)
	rec, body := get(t, rt, "/schedule") // no name parameter
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", rec.Code)
	}
	if !strings.Contains(body, "missing name") {
		t.Fatalf("body %q", body)
	}
	if got := metric(t, reg, MetricShardRequests); got != 0 {
		t.Fatalf("a 400 reached a replica (%s = %v)", MetricShardRequests, got)
	}
}

func TestRouterMergedMetrics(t *testing.T) {
	urls, _, regs := newTestCluster(t, 2)
	regs[0].Counter("hp_test_requests_total", "test").Add(2)
	regs[1].Counter("hp_test_requests_total", "test").Add(3)
	routerReg := obs.NewRegistry()
	rt := newTestRouter(t, urls, nil, routerReg)
	// Route one request so the router's own families have samples.
	get(t, rt, "/schedule?name=m")

	rec, body := get(t, rt, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	exp, err := obs.ParseExposition(body)
	if err != nil {
		t.Fatalf("merged exposition does not parse: %v", err)
	}
	if got := exp.Value("hp_test_requests_total"); got != 5 {
		t.Fatalf("merged replica counter = %v, want 5", got)
	}
	if got := exp.Value(MetricShardRequests); got != 1 {
		t.Fatalf("router family missing from merged view: %v", got)
	}
}

func TestRouterDefaultPathAffinity(t *testing.T) {
	urls, srvs, _ := newTestCluster(t, 3)
	rt := newTestRouter(t, urls, nil, obs.NewRegistry())
	_, body := get(t, rt, "/runs")
	if body != "runs-from-0" {
		t.Fatalf("unkeyed path went to %q, want replica 0", body)
	}
	srvs[0].Close()
	rec, body := get(t, rt, "/runs")
	if rec.Code != http.StatusOK || body != "runs-from-1" {
		t.Fatalf("unkeyed failover: %d %q", rec.Code, body)
	}
}

func TestRouterTraceScatter(t *testing.T) {
	urls, _, _ := newTestCluster(t, 3)
	rt := newTestRouter(t, urls, nil, obs.NewRegistry())
	// Only the last replica knows trace "feed"; the router scatters until
	// it finds it.
	rec, body := get(t, rt, "/trace/feed")
	if rec.Code != http.StatusOK || body != "trace-body-2" {
		t.Fatalf("scatter: %d %q", rec.Code, body)
	}
	rec, _ = get(t, rt, "/trace/0123456789abcdef")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown trace: %d, want 404", rec.Code)
	}
}

func TestRouterOwnTraces(t *testing.T) {
	urls, _, _ := newTestCluster(t, 2)
	rt := newTestRouter(t, urls, nil, obs.NewRegistry())
	rec, _ := get(t, rt, "/schedule?name=tr")
	id := rec.Header().Get("X-Shard-Trace-Id")
	if id == "" {
		t.Fatalf("routed response missing X-Shard-Trace-Id")
	}
	_, listing := get(t, rt, "/traces")
	if !strings.Contains(listing, id) {
		t.Fatalf("/traces does not list routing trace %s: %s", id, listing)
	}
	rec, tree := get(t, rt, "/trace/"+id)
	if rec.Code != http.StatusOK || !strings.Contains(tree, `"route"`) {
		t.Fatalf("routing trace tree: %d %q", rec.Code, tree)
	}
	if !strings.Contains(tree, `"forward"`) {
		t.Fatalf("routing trace has no forward span: %s", tree)
	}
}

func TestRouterCandidatesOrdering(t *testing.T) {
	urls, _, _ := newTestCluster(t, 4)
	clk := clock.NewManual(time.Unix(0, 0))
	rt := newTestRouter(t, urls, clk, obs.NewRegistry())
	buf := make([]int, 0, rt.Ring().Size())
	base := rt.Candidates(12345, buf)
	baseCopy := append([]int(nil), base...)
	// Mark the ring owner down: it must move to the back, everyone else
	// keeps relative order.
	rt.markDown(baseCopy[0], clk.Now())
	got := rt.Candidates(12345, buf)
	want := append(append([]int(nil), baseCopy[1:]...), baseCopy[0])
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("candidates after markDown = %v, want %v", got, want)
		}
	}
	// Cooldown expiry restores ring order.
	clk.Advance(time.Second)
	got = rt.Candidates(12345, buf)
	for i := range baseCopy {
		if got[i] != baseCopy[i] {
			t.Fatalf("candidates after cooldown = %v, want %v", got, baseCopy)
		}
	}
}

func TestRouterConfigValidation(t *testing.T) {
	if _, err := NewRouter(RouterConfig{Key: testKeyFunc}); err == nil {
		t.Fatalf("empty backend list accepted")
	}
	if _, err := NewRouter(RouterConfig{Backends: []string{"http://a"}}); err == nil {
		t.Fatalf("nil key func accepted")
	}
	if _, err := NewRouter(RouterConfig{Backends: []string{"not-a-url"}, Key: testKeyFunc}); err == nil {
		t.Fatalf("non-http backend accepted")
	}
}

package shard

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/serve"
)

func TestMemoryL2LRU(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMemoryL2(2, reg)
	ctx := context.Background()
	k1, k2, k3 := keyFromUint(1), keyFromUint(2), keyFromUint(3)

	m.Put(ctx, k1, []byte("one"))
	m.Put(ctx, k2, []byte("two"))
	if v, ok := m.Get(ctx, k1); !ok || string(v) != "one" {
		t.Fatalf("Get(k1) = %q, %v", v, ok)
	}
	// k1 was just used; inserting k3 must evict k2.
	m.Put(ctx, k3, []byte("three"))
	if _, ok := m.Get(ctx, k2); ok {
		t.Fatalf("k2 survived eviction; LRU order wrong")
	}
	if _, ok := m.Get(ctx, k1); !ok {
		t.Fatalf("k1 evicted despite recent use")
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	if got := metric(t, reg, MetricL2Evictions); got != 1 {
		t.Fatalf("%s = %v, want 1", MetricL2Evictions, got)
	}
	if got := metric(t, reg, MetricL2Entries); got != 2 {
		t.Fatalf("%s = %v, want 2", MetricL2Entries, got)
	}
}

func TestMemoryL2FirstWriteWins(t *testing.T) {
	m := NewMemoryL2(8, nil)
	ctx := context.Background()
	k := keyFromUint(9)
	m.Put(ctx, k, []byte("first"))
	m.Put(ctx, k, []byte("second"))
	if v, _ := m.Get(ctx, k); string(v) != "first" {
		t.Fatalf("re-put replaced resident bytes: %q", v)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestMemoryL2MinimumCapacity(t *testing.T) {
	m := NewMemoryL2(0, nil)
	ctx := context.Background()
	m.Put(ctx, keyFromUint(1), []byte("a"))
	m.Put(ctx, keyFromUint(2), []byte("b"))
	if m.Len() != 1 {
		t.Fatalf("capacity floor broken: Len = %d", m.Len())
	}
}

// newL2Server serves a MemoryL2 at L2Path the way a replica does.
func newL2Server(store *MemoryL2) *httptest.Server {
	mux := http.NewServeMux()
	mux.Handle(L2Path+"{key}", L2Handler(store))
	return httptest.NewServer(mux)
}

func TestPeerL2HomePlacement(t *testing.T) {
	storeA, storeB := NewMemoryL2(64, nil), NewMemoryL2(64, nil)
	srvA, srvB := newL2Server(storeA), newL2Server(storeB)
	defer srvA.Close()
	defer srvB.Close()
	peers := []string{srvA.URL, srvB.URL}
	reg := obs.NewRegistry()
	pa, err := NewPeerL2(peers, srvA.URL, 16, storeA, nil, reg)
	if err != nil {
		t.Fatalf("NewPeerL2: %v", err)
	}
	pb, err := NewPeerL2(peers, srvB.URL, 16, storeB, nil, obs.NewRegistry())
	if err != nil {
		t.Fatalf("NewPeerL2: %v", err)
	}
	ring := NewRing(peers, 16)

	// One key homed on each replica.
	var homeA, homeB serve.Key
	foundA, foundB := false, false
	for i := 0; !(foundA && foundB); i++ {
		k := sha256.Sum256([]byte(fmt.Sprintf("peer-%d", i)))
		if ring.Lookup(k) == 0 && !foundA {
			homeA, foundA = k, true
		}
		if ring.Lookup(k) == 1 && !foundB {
			homeB, foundB = k, true
		}
	}
	ctx := context.Background()

	// Put from the non-home replica travels to the home's store.
	pb.Put(ctx, homeA, []byte("on-a"))
	if v, ok := storeA.Get(ctx, homeA); !ok || string(v) != "on-a" {
		t.Fatalf("remote put did not land on home store: %q %v", v, ok)
	}
	if storeB.Len() != 0 {
		t.Fatalf("remote put also stored locally")
	}
	// Get from the non-home replica fetches from the home.
	if v, ok := pa.Get(ctx, homeB); ok {
		t.Fatalf("unexpected hit for unstored key: %q", v)
	}
	pa.Put(ctx, homeB, []byte("on-b"))
	if v, ok := pa.Get(ctx, homeB); !ok || string(v) != "on-b" {
		t.Fatalf("cross-replica get = %q, %v", v, ok)
	}
	// Home-local operations never touch the network.
	pa.Put(ctx, homeA, []byte("re-put")) // first write wins: still "on-a"
	if v, ok := pa.Get(ctx, homeA); !ok || string(v) != "on-a" {
		t.Fatalf("local get = %q, %v", v, ok)
	}
	if got := metric(t, reg, MetricL2PeerErrors); got != 0 {
		t.Fatalf("%s = %v on a healthy cluster", MetricL2PeerErrors, got)
	}
	if pa.Local() != storeA {
		t.Fatalf("Local() returned the wrong store")
	}
}

func TestPeerL2DeadPeerDegradesToMiss(t *testing.T) {
	storeA, storeB := NewMemoryL2(64, nil), NewMemoryL2(64, nil)
	srvA, srvB := newL2Server(storeA), newL2Server(storeB)
	defer srvA.Close()
	peers := []string{srvA.URL, srvB.URL}
	reg := obs.NewRegistry()
	pa, err := NewPeerL2(peers, srvA.URL, 16, storeA, nil, reg)
	if err != nil {
		t.Fatalf("NewPeerL2: %v", err)
	}
	ring := NewRing(peers, 16)
	var homeB serve.Key
	for i := 0; ; i++ {
		if k := sha256.Sum256([]byte(fmt.Sprintf("dead-%d", i))); ring.Lookup(k) == 1 {
			homeB = k
			break
		}
	}
	srvB.Close() // the home replica dies
	ctx := context.Background()
	if _, ok := pa.Get(ctx, homeB); ok {
		t.Fatalf("dead peer produced a hit")
	}
	pa.Put(ctx, homeB, []byte("lost")) // must not panic or error out
	if got := metric(t, reg, MetricL2PeerErrors); got < 2 {
		t.Fatalf("%s = %v, want >= 2", MetricL2PeerErrors, got)
	}
}

func TestPeerL2ConstructorValidation(t *testing.T) {
	store := NewMemoryL2(4, nil)
	if _, err := NewPeerL2([]string{"http://a"}, "http://missing", 8, store, nil, nil); err == nil {
		t.Fatalf("self outside peer list accepted")
	}
	if _, err := NewPeerL2([]string{"http://a"}, "http://a", 8, nil, nil, nil); err == nil {
		t.Fatalf("nil local store accepted")
	}
}

func TestL2HandlerProtocol(t *testing.T) {
	store := NewMemoryL2(8, nil)
	srv := newL2Server(store)
	defer srv.Close()
	k := keyFromUint(5)
	url := srv.URL + L2Path + fmt.Sprintf("%x", k[:])

	// GET before any put: 404.
	resp, err := http.Get(url)
	if err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get before put: %v %v", resp.Status, err)
	}
	resp.Body.Close()
	// PUT stores; GET round-trips the bytes.
	req, _ := http.NewRequest(http.MethodPut, url, bytes.NewReader([]byte("payload")))
	resp, err = http.DefaultClient.Do(req)
	if err != nil || resp.StatusCode != http.StatusNoContent {
		t.Fatalf("put: %v %v", resp.Status, err)
	}
	resp.Body.Close()
	resp, err = http.Get(url)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("get after put: %v %v", resp.Status, err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "payload" {
		t.Fatalf("round trip = %q", body)
	}
	// Malformed key: 400.
	resp, err = http.Get(srv.URL + L2Path + "zz")
	if err != nil || resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad key: %v %v", resp.Status, err)
	}
	resp.Body.Close()
	// Oversized entry: 413.
	big := strings.NewReader(strings.Repeat("x", maxL2EntryBytes+1))
	req, _ = http.NewRequest(http.MethodPut, url, big)
	resp, err = http.DefaultClient.Do(req)
	if err != nil || resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized put: %v %v", resp.Status, err)
	}
	resp.Body.Close()
	// Unsupported method: 405.
	req, _ = http.NewRequest(http.MethodDelete, url, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil || resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("delete: %v %v", resp.Status, err)
	}
	resp.Body.Close()
}

package shard

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
	"repro/internal/serve"
)

// Metric names of the replica router (DESIGN.md §14 catalog).
const (
	MetricShardRequests  = "hp_shard_requests_total"
	MetricShardRetries   = "hp_shard_retries_total"
	MetricShardErrors    = "hp_shard_errors_total"
	MetricShardReplicaUp = "hp_shard_replica_up"
	MetricShardInflight  = "hp_shard_inflight"
	MetricShardForward   = "hp_shard_forward_us"
)

// KeyFunc derives the canonical request key a request routes by. It must
// be a pure function of the request (every router instance and every
// replica must agree), and should return an error for malformed requests
// (mapped to HTTP 400 without touching any replica).
type KeyFunc func(*http.Request) (serve.Key, error)

// RouterConfig assembles a Router.
type RouterConfig struct {
	// Backends are the replica base URLs; order fixes replica indices and
	// must match across routers for deterministic placement.
	Backends []string
	// VNodes is the virtual-node count per replica (0 = DefaultVNodes).
	VNodes int
	// Key routes requests on the paths listed in KeyedPaths.
	Key KeyFunc
	// Client issues the forwarded requests; nil gets a 10s-timeout client.
	Client *http.Client
	// Clock drives the failure cooldown; nil means the wall clock.
	Clock clock.Clock
	// Cooldown is how long a replica stays skipped after a transport
	// failure before a request probes it again (0 = 1s).
	Cooldown time.Duration
	// Registry receives the hp_shard_* metric families (nil = private).
	Registry *obs.Registry
	// TraceEntries bounds the router's ring of finished routing traces
	// (0 = 256).
	TraceEntries int
	// Logger receives per-hop debug and failure lines; nil discards.
	Logger *slog.Logger
}

// KeyedPaths are the request paths routed by consistent hash of their
// canonical key; everything else is forwarded to the lowest-index
// available replica (dashboard affinity).
var KeyedPaths = []string{"/schedule", "/compare", "/trace"}

// Router fans requests across replicas by consistent hash of their
// canonical request keys. A replica that fails at the transport level is
// marked down and skipped for a cooldown; its keys fail over to the next
// replica on the ring (where the shared L2 tier usually turns the
// recomputation into a byte-identical cache fill). The router serves a
// merged view of every replica's /metrics plus its own hp_shard_*
// families, and keeps routing traces with per-hop annotations.
type Router struct {
	ring     *Ring
	key      KeyFunc
	client   *http.Client
	clk      clock.Clock
	cooldown time.Duration
	log      *slog.Logger
	reg      *obs.Registry
	tracer   *obs.Tracer
	mux      *http.ServeMux

	reqs     *obs.CounterVec
	retries  *obs.Counter
	failures *obs.Counter
	up       *obs.GaugeVec
	inflight *obs.GaugeVec
	fwd      *obs.HDRVec

	mu sync.Mutex
	// downUntil[i] non-zero means replica i failed recently and is
	// skipped until the instant passes (then the next request probes it).
	downUntil []time.Time
}

// NewRouter validates cfg and builds the router.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("shard: router needs at least one backend")
	}
	if cfg.Key == nil {
		return nil, fmt.Errorf("shard: router needs a key function")
	}
	for _, b := range cfg.Backends {
		if !strings.HasPrefix(b, "http://") && !strings.HasPrefix(b, "https://") {
			return nil, fmt.Errorf("shard: backend %q is not an http(s) URL", b)
		}
	}
	client := cfg.Client
	if client == nil {
		// The default transport keeps only 2 idle connections per host,
		// which makes every forward past the second concurrent request
		// open a fresh TCP connection — the router would spend its time
		// in connection churn, not proxying. Size the idle pool for a
		// proxy's fan-in instead.
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConns = 512
		tr.MaxIdleConnsPerHost = 256
		client = &http.Client{Timeout: 10 * time.Second, Transport: tr}
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.Wall{}
	}
	cooldown := cfg.Cooldown
	if cooldown <= 0 {
		cooldown = time.Second
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	traceEntries := cfg.TraceEntries
	if traceEntries <= 0 {
		traceEntries = 256
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	names := make([]string, len(cfg.Backends))
	for i, b := range cfg.Backends {
		names[i] = strings.TrimSuffix(b, "/")
	}
	rt := &Router{
		ring:     NewRing(names, cfg.VNodes),
		key:      cfg.Key,
		client:   client,
		clk:      clk,
		cooldown: cooldown,
		log:      logger,
		reg:      reg,
		tracer:   obs.NewTracer(traceEntries),
		mux:      http.NewServeMux(),
		reqs: reg.CounterVec(MetricShardRequests,
			"Requests forwarded to each replica (successful transport, any HTTP status).", "replica"),
		retries: reg.Counter(MetricShardRetries,
			"Forward attempts retried on another replica after a transport failure."),
		failures: reg.Counter(MetricShardErrors,
			"Requests that failed on every candidate replica (returned 502)."),
		up: reg.GaugeVec(MetricShardReplicaUp,
			"1 when the replica's last forward succeeded at the transport level, 0 while it is in failure cooldown.", "replica"),
		inflight: reg.GaugeVec(MetricShardInflight,
			"Requests currently being forwarded to each replica.", "replica"),
		fwd: reg.HDRVec(MetricShardForward,
			"Per-replica forward latency in microseconds (HDR): transport round trip of routed requests.", "replica"),
		downUntil: make([]time.Time, len(names)),
	}
	for _, n := range names { // pre-seed so every replica scrapes from the start
		rt.reqs.With(n)
		rt.inflight.With(n)
		rt.up.With(n).Set(1)
	}
	for _, p := range KeyedPaths {
		rt.mux.HandleFunc(p, rt.handleKeyed)
	}
	rt.mux.HandleFunc("/metrics", rt.handleMetrics)
	rt.mux.HandleFunc("/replicas", rt.handleReplicas)
	rt.mux.HandleFunc("/traces", rt.handleTraces)
	rt.mux.HandleFunc("/trace/{id}", rt.handleTraceTree)
	rt.mux.HandleFunc("/", rt.handleDefault)
	return rt, nil
}

// Ring returns the router's placement ring.
func (rt *Router) Ring() *Ring { return rt.ring }

func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

// available reports whether replica i should be attempted: up, or down
// with its cooldown expired (the request doubles as the health probe).
func (rt *Router) available(i int, now time.Time) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.downUntil[i].IsZero() || !now.Before(rt.downUntil[i])
}

// markDown puts replica i into failure cooldown.
func (rt *Router) markDown(i int, now time.Time) {
	rt.mu.Lock()
	rt.downUntil[i] = now.Add(rt.cooldown)
	rt.mu.Unlock()
	rt.up.With(rt.ring.names[i]).Set(0)
}

// markUp clears replica i's cooldown after a successful forward.
func (rt *Router) markUp(i int) {
	rt.mu.Lock()
	wasDown := !rt.downUntil[i].IsZero()
	rt.downUntil[i] = time.Time{}
	rt.mu.Unlock()
	if wasDown {
		rt.up.With(rt.ring.names[i]).Set(1)
	}
}

// Candidates fills buf[:0] with the attempt order for a ring point: the
// key's ring successors, with replicas in failure cooldown moved to the
// back (still present — when everything is down, the request probes them
// anyway rather than failing without trying). With cap(buf) >= Size()
// the call performs no allocations; this is the router's per-request hot
// path, pinned at 0 allocs/op by BenchmarkRouterCandidates.
func (rt *Router) Candidates(point uint64, buf []int) []int {
	buf = rt.ring.Successors(point, buf)
	now := rt.clk.Now()
	// Stable in-place partition: available replicas keep ring order up
	// front, cooling-down ones keep ring order at the back.
	placed := 0
	for i := 0; i < len(buf); i++ {
		if !rt.available(buf[i], now) {
			continue
		}
		rep := buf[i]
		copy(buf[placed+1:i+1], buf[placed:i])
		buf[placed] = rep
		placed++
	}
	return buf
}

// handleKeyed routes one keyed request: derive the canonical key, walk
// the candidate replicas, forward to the first that answers. Transport
// failures mark the replica down, count a retry, and move on; exhausting
// every candidate returns 502.
func (rt *Router) handleKeyed(w http.ResponseWriter, r *http.Request) {
	sp := rt.tracer.StartTrace("route")
	defer sp.End()
	sp.Annotate("path", r.URL.Path)
	w.Header().Set("X-Shard-Trace-Id", obs.FormatID(sp.TraceID()))
	k, err := rt.key(r)
	if err != nil {
		sp.Annotate("outcome", "bad_request")
		jsonError(w, err, http.StatusBadRequest)
		return
	}
	cands := rt.Candidates(Point(k), make([]int, 0, rt.ring.Size()))
	for attempt, rep := range cands {
		if attempt > 0 {
			rt.retries.Inc()
		}
		if rt.forward(w, r, rep, attempt, sp) {
			return
		}
	}
	rt.failures.Inc()
	sp.Annotate("outcome", "exhausted")
	jsonError(w, fmt.Errorf("shard: no replica reachable for %s", r.URL.Path), http.StatusBadGateway)
}

// forward proxies r to replica rep and reports whether a response was
// written. A transport failure (no HTTP response at all) marks the
// replica down and returns false so the caller can fail over; any HTTP
// response — including a 4xx/5xx the replica chose to send — is the
// answer and is relayed as-is.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, rep, attempt int, sp *obs.Span) bool {
	name := rt.ring.names[rep]
	var fsp *obs.Span
	if sp != nil {
		fsp = sp.StartChild("forward")
	}
	if fsp != nil {
		fsp.Annotate("replica", name)
		fsp.AnnotateInt("attempt", int64(attempt))
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, name+r.URL.RequestURI(), nil)
	if err != nil {
		if fsp != nil {
			fsp.Annotate("outcome", "bad_url")
			fsp.End()
		}
		return false
	}
	req.Header.Set("X-Forwarded-By", "hpserve-router")
	g := rt.inflight.With(name)
	g.Add(1)
	start := rt.clk.Now()
	resp, err := rt.client.Do(req)
	g.Add(-1)
	if err != nil {
		rt.markDown(rep, rt.clk.Now())
		rt.log.Warn("replica forward failed", "replica", name, "path", r.URL.Path, "err", err)
		if fsp != nil {
			fsp.Annotate("outcome", "transport_error")
			fsp.End()
		}
		return false
	}
	defer resp.Body.Close()
	rt.fwd.With(name).Record(int64(rt.clk.Since(start) / time.Microsecond))
	rt.markUp(rep)
	rt.reqs.With(name).Inc()
	hdr := w.Header()
	for key, vals := range resp.Header {
		for _, v := range vals {
			hdr.Add(key, v)
		}
	}
	hdr.Set("X-Shard-Replica", name)
	w.WriteHeader(resp.StatusCode)
	if _, err := io.Copy(w, resp.Body); err != nil {
		// The response is already committed; all we can do is log.
		rt.log.Warn("response relay interrupted", "replica", name, "err", err)
	}
	if fsp != nil {
		fsp.AnnotateInt("status", int64(resp.StatusCode))
		fsp.End()
	}
	return true
}

// handleDefault forwards unkeyed paths (the dashboard page, /runs, ...)
// to the lowest-index available replica, so the router address serves
// the whole UI.
func (rt *Router) handleDefault(w http.ResponseWriter, r *http.Request) {
	sp := rt.tracer.StartTrace("route")
	defer sp.End()
	sp.Annotate("path", r.URL.Path)
	now := rt.clk.Now()
	for rep := range rt.ring.names {
		if !rt.available(rep, now) {
			continue
		}
		if rt.forward(w, r, rep, 0, sp) {
			return
		}
	}
	for rep := range rt.ring.names {
		if rt.available(rep, rt.clk.Now()) {
			continue
		}
		rt.retries.Inc()
		if rt.forward(w, r, rep, 1, sp) {
			return
		}
	}
	rt.failures.Inc()
	jsonError(w, fmt.Errorf("shard: no replica reachable"), http.StatusBadGateway)
}

// handleMetrics serves the merged metrics view: the router's own
// registry plus every reachable replica's /metrics, summed family by
// family (HDR and fixed-bucket histograms merge at bucket granularity;
// see obs.MergeExpositions). Unreachable replicas are skipped — the
// merged view degrades instead of failing, mirroring the serving path.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var own strings.Builder
	_ = rt.reg.WritePrometheus(&own)
	exps := make([]*obs.Exposition, 0, rt.ring.Size()+1)
	if e, err := obs.ParseExposition(own.String()); err == nil {
		exps = append(exps, e)
	}
	for _, name := range rt.ring.names {
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, name+"/metrics", nil)
		if err != nil {
			continue
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			rt.log.Warn("metrics scrape failed", "replica", name, "err", err)
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		e, err := obs.ParseExposition(string(body))
		if err != nil {
			rt.log.Warn("metrics parse failed", "replica", name, "err", err)
			continue
		}
		exps = append(exps, e)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.MergeExpositions(exps...).Render(w)
}

// replicaStatus is one row of the /replicas listing.
type replicaStatus struct {
	Index   int    `json:"index"`
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
}

// handleReplicas serves the replica table as JSON — hpload's -replicas
// auto discovery endpoint.
func (rt *Router) handleReplicas(w http.ResponseWriter, _ *http.Request) {
	now := rt.clk.Now()
	rows := make([]replicaStatus, rt.ring.Size())
	for i, name := range rt.ring.names {
		rows[i] = replicaStatus{Index: i, URL: name, Healthy: rt.available(i, now)}
	}
	writeJSON(w, struct {
		VNodes   int             `json:"vnodes"`
		Replicas []replicaStatus `json:"replicas"`
	}{VNodes: rt.ring.vnodes, Replicas: rows})
}

// routeListEntry is one row of the router's /traces listing.
type routeListEntry struct {
	TraceID    string `json:"trace_id"`
	Name       string `json:"name"`
	DurationUS int64  `json:"duration_us"`
	Spans      int    `json:"spans"`
}

// handleTraces lists retained routing traces slowest-first.
func (rt *Router) handleTraces(w http.ResponseWriter, _ *http.Request) {
	rec := rt.tracer.Recent()
	rows := make([]routeListEntry, 0, len(rec))
	for _, td := range rec {
		rows = append(rows, routeListEntry{
			TraceID:    obs.FormatID(td.ID),
			Name:       td.Name,
			DurationUS: int64(td.Duration() / time.Microsecond),
			Spans:      len(td.Spans()),
		})
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].DurationUS > rows[j].DurationUS })
	writeJSON(w, struct {
		Traces []routeListEntry `json:"traces"`
	}{Traces: rows})
}

// handleTraceTree serves one trace: the router's own routing trace when
// the ID is in its ring, otherwise scattered to the replicas so a trace
// ID handed out by any replica resolves through the router too.
func (rt *Router) handleTraceTree(w http.ResponseWriter, r *http.Request) {
	if id, ok := obs.ParseID(r.PathValue("id")); ok {
		if td := rt.tracer.Trace(id); td != nil {
			writeJSON(w, td.Tree())
			return
		}
	}
	now := rt.clk.Now()
	for rep, name := range rt.ring.names {
		if !rt.available(rep, now) {
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, name+r.URL.RequestURI(), nil)
		if err != nil {
			continue
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			continue
		}
		if resp.StatusCode == http.StatusOK {
			w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
			w.Header().Set("X-Shard-Replica", name)
			_, _ = io.Copy(w, resp.Body)
			resp.Body.Close()
			return
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	jsonError(w, fmt.Errorf("trace %s not found on any replica", r.PathValue("id")), http.StatusNotFound)
}

func writeJSON(w http.ResponseWriter, v any) {
	body, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		jsonError(w, err, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(body)
}

func jsonError(w http.ResponseWriter, err error, status int) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

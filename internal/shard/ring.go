// Package shard scales the serving front end horizontally: a consistent-
// hash ring places canonical request keys on replicas (ring.go), a thin
// HTTP router fans requests across them with retry-on-replica-death
// (router.go), and a two-tier cache layers a shared L2 over each
// replica's L1 LRU so a result computed on any replica is a hit on all
// of them (tiered.go, l2.go, peer.go).
//
// Everything is deterministic by construction: ring placement is a pure
// function of the replica name list and the request's SHA-256 key, so
// every router and every replica derives the same placement without
// coordination, and a cached value crosses tiers as opaque bytes — the
// bytes the first computation produced are the bytes every later hit
// returns, whichever replica serves it.
package shard

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"

	"repro/internal/serve"
)

// ringPoint is one virtual node: a position on the 64-bit ring owned by
// a replica.
type ringPoint struct {
	hash    uint64
	replica int
}

// Ring is a consistent-hash ring over a fixed replica list. Placement is
// deterministic: the same names (order matters — it fixes replica
// indices) and vnode count produce the same ring everywhere. The zero
// value is not usable; call NewRing. A Ring is immutable after
// construction and therefore safe for concurrent use.
type Ring struct {
	names  []string
	points []ringPoint // sorted by (hash, replica)
	vnodes int
}

// DefaultVNodes balances placement smoothness against ring size: at 64
// virtual nodes per replica the max/mean key-share imbalance stays
// within ~30% for small clusters.
const DefaultVNodes = 64

// NewRing builds a ring with vnodes virtual nodes per replica (minimum
// 1; 0 or negative selects DefaultVNodes). names must be non-empty and
// are copied.
func NewRing(names []string, vnodes int) *Ring {
	if len(names) == 0 {
		panic("shard: ring needs at least one replica")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{
		names:  append([]string(nil), names...),
		points: make([]ringPoint, 0, len(names)*vnodes),
		vnodes: vnodes,
	}
	for i, name := range r.names {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: vnodeHash(name, v), replica: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].replica < r.points[b].replica
	})
	return r
}

// vnodeHash positions one virtual node: the first 8 bytes of
// SHA-256("name#v"), the same hash family as the request keys, so vnode
// positions and key points draw from one uniform distribution.
func vnodeHash(name string, v int) uint64 {
	h := sha256.New()
	h.Write([]byte(name))
	h.Write([]byte("#"))
	h.Write([]byte(strconv.Itoa(v)))
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return binary.BigEndian.Uint64(sum[:8])
}

// Replicas returns the replica names in index order. Callers must not
// mutate the returned slice.
func (r *Ring) Replicas() []string { return r.names }

// Size returns the number of replicas.
func (r *Ring) Size() int { return len(r.names) }

// Point maps a canonical request key onto the ring: its first 8 bytes
// as a big-endian word. SHA-256 output is uniform, so key points spread
// evenly regardless of the request distribution.
func Point(k serve.Key) uint64 { return binary.BigEndian.Uint64(k[:8]) }

// Lookup returns the replica index owning key k: the replica of the
// first virtual node at or clockwise after the key's point (wrapping).
// It performs no allocations.
func (r *Ring) Lookup(k serve.Key) int { return r.LookupPoint(Point(k)) }

// LookupPoint is Lookup for a precomputed ring point.
func (r *Ring) LookupPoint(p uint64) int {
	// Manual binary search: first point with hash >= p.
	lo, hi := 0, len(r.points)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.points[mid].hash < p {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(r.points) {
		lo = 0 // wrap past the last vnode
	}
	return r.points[lo].replica
}

// Successors appends to buf[:0] the distinct replica indices in ring
// order starting at the key's owner — the retry order when the owner is
// dead. Every replica appears exactly once. With cap(buf) >= Size() the
// call performs no allocations.
func (r *Ring) Successors(p uint64, buf []int) []int {
	buf = buf[:0]
	lo, hi := 0, len(r.points)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.points[mid].hash < p {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for i := 0; i < len(r.points) && len(buf) < len(r.names); i++ {
		rep := r.points[(lo+i)%len(r.points)].replica
		seen := false
		for _, b := range buf {
			if b == rep {
				seen = true
				break
			}
		}
		if !seen {
			buf = append(buf, rep)
		}
	}
	return buf
}

package shard

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"testing"

	"repro/internal/serve"
)

func keyFromUint(u uint64) serve.Key {
	var k serve.Key
	binary.BigEndian.PutUint64(k[:8], u)
	return k
}

func TestRingDeterministicPlacement(t *testing.T) {
	names := []string{"http://a:1", "http://b:2", "http://c:3"}
	r1 := NewRing(names, 64)
	r2 := NewRing(names, 64)
	for i := 0; i < 10000; i++ {
		k := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
		if r1.Lookup(k) != r2.Lookup(k) {
			t.Fatalf("rings built from the same names disagree on key %d", i)
		}
	}
}

func TestRingLookupMatchesLinearScan(t *testing.T) {
	r := NewRing([]string{"a", "b", "c", "d"}, 16)
	// Reference implementation: scan all points for the first hash >= p.
	ref := func(p uint64) int {
		best := -1
		var bestHash uint64
		for _, pt := range r.points {
			if pt.hash >= p && (best == -1 || pt.hash < bestHash) {
				best, bestHash = pt.replica, pt.hash
			}
		}
		if best == -1 { // wrap: smallest hash overall
			for i, pt := range r.points {
				if i == 0 || pt.hash < bestHash {
					best, bestHash = pt.replica, pt.hash
				}
			}
		}
		return best
	}
	for i := 0; i < 5000; i++ {
		k := sha256.Sum256([]byte(fmt.Sprintf("probe-%d", i)))
		p := Point(k)
		if got, want := r.LookupPoint(p), ref(p); got != want {
			t.Fatalf("LookupPoint(%x) = %d, linear scan says %d", p, got, want)
		}
	}
	// Exact boundary: a point equal to a vnode hash lands on that vnode.
	pt := r.points[len(r.points)/2]
	if got := r.LookupPoint(pt.hash); got != ref(pt.hash) {
		t.Fatalf("boundary point %x: got %d want %d", pt.hash, got, ref(pt.hash))
	}
	// Wrap: a point past the last vnode lands on the first.
	last := r.points[len(r.points)-1].hash
	if last != ^uint64(0) {
		if got, want := r.LookupPoint(last+1), r.points[0].replica; got != want {
			t.Fatalf("wrap lookup = %d, want first vnode's replica %d", got, want)
		}
	}
}

func TestRingBalance(t *testing.T) {
	names := make([]string, 4)
	for i := range names {
		names[i] = fmt.Sprintf("http://replica-%d:8080", i)
	}
	r := NewRing(names, DefaultVNodes)
	counts := make([]int, len(names))
	const n = 100000
	for i := 0; i < n; i++ {
		k := sha256.Sum256([]byte(fmt.Sprintf("bal-%d", i)))
		counts[r.Lookup(k)]++
	}
	mean := float64(n) / float64(len(names))
	for i, c := range counts {
		dev := float64(c)/mean - 1
		if dev < -0.5 || dev > 0.5 {
			t.Fatalf("replica %d owns %d of %d keys (%.0f%% of mean) — ring badly unbalanced: %v",
				i, c, n, 100*float64(c)/mean, counts)
		}
	}
}

func TestRingMinimalDisruption(t *testing.T) {
	// Consistent hashing's point: adding a replica moves only the keys the
	// new replica captures (~1/k of them), nothing shuffles between
	// survivors.
	small := NewRing([]string{"a", "b", "c"}, DefaultVNodes)
	big := NewRing([]string{"a", "b", "c", "d"}, DefaultVNodes)
	const n = 20000
	moved, movedElsewhere := 0, 0
	for i := 0; i < n; i++ {
		k := sha256.Sum256([]byte(fmt.Sprintf("mv-%d", i)))
		before, after := small.Lookup(k), big.Lookup(k)
		if before != after {
			moved++
			if after != 3 { // not captured by the new replica
				movedElsewhere++
			}
		}
	}
	if movedElsewhere != 0 {
		t.Fatalf("%d keys moved between surviving replicas; consistent hashing must only move keys to the new replica", movedElsewhere)
	}
	frac := float64(moved) / n
	if frac < 0.10 || frac > 0.45 {
		t.Fatalf("adding 4th replica moved %.1f%% of keys; expected ~25%%", 100*frac)
	}
}

func TestRingSuccessorsDistinctAndComplete(t *testing.T) {
	r := NewRing([]string{"a", "b", "c", "d", "e"}, 32)
	buf := make([]int, 0, r.Size())
	for i := 0; i < 2000; i++ {
		k := sha256.Sum256([]byte(fmt.Sprintf("succ-%d", i)))
		p := Point(k)
		got := r.Successors(p, buf)
		if len(got) != r.Size() {
			t.Fatalf("Successors returned %d replicas, want %d", len(got), r.Size())
		}
		seen := map[int]bool{}
		for _, rep := range got {
			if rep < 0 || rep >= r.Size() || seen[rep] {
				t.Fatalf("Successors(%x) = %v: duplicate or out-of-range replica", p, got)
			}
			seen[rep] = true
		}
		if got[0] != r.LookupPoint(p) {
			t.Fatalf("Successors(%x)[0] = %d, but Lookup says %d", p, got[0], r.LookupPoint(p))
		}
	}
}

func TestRingSingleReplica(t *testing.T) {
	r := NewRing([]string{"only"}, 0) // 0 selects DefaultVNodes
	if r.vnodes != DefaultVNodes {
		t.Fatalf("vnodes = %d, want default %d", r.vnodes, DefaultVNodes)
	}
	for i := 0; i < 100; i++ {
		k := sha256.Sum256([]byte(fmt.Sprintf("s-%d", i)))
		if r.Lookup(k) != 0 {
			t.Fatalf("single-replica ring sent key %d elsewhere", i)
		}
	}
	if got := r.Successors(0, nil); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Successors on single-replica ring = %v", got)
	}
}

func TestRingPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("NewRing(nil) did not panic")
		}
	}()
	NewRing(nil, 8)
}

func TestRingNamesCopied(t *testing.T) {
	names := []string{"a", "b"}
	r := NewRing(names, 8)
	names[0] = "mutated"
	if r.Replicas()[0] != "a" {
		t.Fatalf("ring aliased the caller's name slice")
	}
}

func TestPointUsesKeyPrefix(t *testing.T) {
	k := keyFromUint(0xdeadbeefcafef00d)
	if Point(k) != 0xdeadbeefcafef00d {
		t.Fatalf("Point = %x", Point(k))
	}
}

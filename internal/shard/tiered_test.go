package shard

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/serve"
)

func intCodec() (func(int) ([]byte, error), func([]byte) (int, error)) {
	enc := func(v int) ([]byte, error) { return []byte(strconv.Itoa(v)), nil }
	dec := func(b []byte) (int, error) { return strconv.Atoi(string(b)) }
	return enc, dec
}

func newIntTiered(l2 L2, reg *obs.Registry) *Tiered[int] {
	enc, dec := intCodec()
	return NewTiered(serve.NewCache[int](16, reg), l2, enc, dec, reg)
}

func metric(t *testing.T, reg *obs.Registry, name string) float64 {
	t.Helper()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	exp, err := obs.ParseExposition(b.String())
	if err != nil {
		t.Fatalf("ParseExposition: %v", err)
	}
	return exp.Value(name)
}

func TestTieredComputeThenL1ThenL2(t *testing.T) {
	reg := obs.NewRegistry()
	shared := NewMemoryL2(32, reg)
	a := newIntTiered(shared, reg)
	k := keyFromUint(42)
	computes := 0
	compute := func(context.Context) (int, error) { computes++; return 99, nil }

	v, out, err := a.DoCtx(context.Background(), k, compute)
	if err != nil || v != 99 || out != Computed {
		t.Fatalf("first call: v=%d out=%v err=%v", v, out, err)
	}
	v, out, err = a.DoCtx(context.Background(), k, compute)
	if err != nil || v != 99 || out != HitL1 {
		t.Fatalf("second call: v=%d out=%v err=%v", v, out, err)
	}
	// A different replica (fresh L1) sharing the same L2 hits the shared tier.
	b := newIntTiered(shared, obs.NewRegistry())
	v, out, err = b.DoCtx(context.Background(), k, func(context.Context) (int, error) {
		t.Fatalf("compute ran despite L2 entry")
		return 0, nil
	})
	if err != nil || v != 99 || out != HitL2 {
		t.Fatalf("cross-replica call: v=%d out=%v err=%v", v, out, err)
	}
	// ...and promoted it into its own L1.
	if _, out, _ = b.DoCtx(context.Background(), k, compute); out != HitL1 {
		t.Fatalf("post-promotion call: out=%v", out)
	}
	if computes != 1 {
		t.Fatalf("compute ran %d times, want 1", computes)
	}
	if got := metric(t, reg, MetricL2Fills); got != 1 {
		t.Fatalf("%s = %v, want 1", MetricL2Fills, got)
	}
	if got := metric(t, reg, MetricL2Misses); got != 1 {
		t.Fatalf("%s = %v, want 1", MetricL2Misses, got)
	}
}

func TestTieredErrorsNeverCached(t *testing.T) {
	reg := obs.NewRegistry()
	shared := NewMemoryL2(32, reg)
	tc := newIntTiered(shared, reg)
	k := keyFromUint(7)
	boom := errors.New("boom")
	calls := 0
	fail := func(context.Context) (int, error) { calls++; return 0, boom }

	if _, out, err := tc.DoCtx(context.Background(), k, fail); !errors.Is(err, boom) || out != Computed {
		t.Fatalf("error call: out=%v err=%v", out, err)
	}
	if shared.Len() != 0 {
		t.Fatalf("error was written into L2")
	}
	if _, out, err := tc.DoCtx(context.Background(), k, fail); !errors.Is(err, boom) || out != Computed {
		t.Fatalf("retry call: out=%v err=%v", out, err)
	}
	if calls != 2 {
		t.Fatalf("failed compute cached somewhere: ran %d times, want 2", calls)
	}
}

func TestTieredCoalescing(t *testing.T) {
	shared := NewMemoryL2(32, nil)
	tc := newIntTiered(shared, obs.NewRegistry())
	k := keyFromUint(11)
	started := make(chan struct{})
	release := make(chan struct{})
	var computes int32
	var wg sync.WaitGroup
	outcomes := make([]Outcome, 8)
	wg.Add(len(outcomes))
	for i := range outcomes {
		go func(i int) {
			defer wg.Done()
			if i == 0 {
				v, out, err := tc.DoCtx(context.Background(), k, func(context.Context) (int, error) {
					close(started)
					<-release
					computes++
					return 5, nil
				})
				if err != nil || v != 5 {
					t.Errorf("winner: v=%d err=%v", v, err)
				}
				outcomes[0] = out
				return
			}
			<-started
			v, out, err := tc.DoCtx(context.Background(), k, func(context.Context) (int, error) {
				t.Errorf("loser %d ran compute", i)
				return 0, nil
			})
			if err != nil || v != 5 {
				t.Errorf("loser %d: v=%d err=%v", i, v, err)
			}
			outcomes[i] = out
		}(i)
	}
	<-started
	close(release)
	wg.Wait()
	if computes != 1 {
		t.Fatalf("compute ran %d times", computes)
	}
	if outcomes[0] != Computed {
		t.Fatalf("winner outcome = %v", outcomes[0])
	}
	for i, out := range outcomes[1:] {
		if out != CoalescedTier && out != HitL1 {
			t.Fatalf("waiter %d outcome = %v", i+1, out)
		}
	}
}

func TestTieredUndecodableEntryRecomputes(t *testing.T) {
	reg := obs.NewRegistry()
	shared := NewMemoryL2(32, reg)
	k := keyFromUint(3)
	shared.Put(context.Background(), k, []byte("not-an-int"))
	tc := newIntTiered(shared, reg)
	v, out, err := tc.DoCtx(context.Background(), k, func(context.Context) (int, error) { return 8, nil })
	if err != nil || v != 8 || out != Computed {
		t.Fatalf("v=%d out=%v err=%v", v, out, err)
	}
	if got := metric(t, reg, MetricL2Hits); got != 0 {
		t.Fatalf("undecodable entry counted as an L2 hit")
	}
}

func TestTieredNilL2DegradesToL1(t *testing.T) {
	tc := newIntTiered(nil, obs.NewRegistry())
	k := keyFromUint(21)
	if _, out, err := tc.DoCtx(context.Background(), k, func(context.Context) (int, error) { return 1, nil }); err != nil || out != Computed {
		t.Fatalf("out=%v err=%v", out, err)
	}
	if _, out, _ := tc.DoCtx(context.Background(), k, nil); out != HitL1 {
		t.Fatalf("out=%v", out)
	}
	if v, ok := tc.Get(k); !ok || v != 1 {
		t.Fatalf("Get = %d, %v", v, ok)
	}
	if tc.L1() == nil {
		t.Fatalf("L1 accessor returned nil")
	}
}

func TestTieredSpanAnnotations(t *testing.T) {
	tr := obs.NewTracer(8)
	shared := NewMemoryL2(32, nil)
	tc := newIntTiered(shared, obs.NewRegistry())
	k := keyFromUint(77)

	run := func(want string) {
		sp := tr.StartTrace("req")
		ctx := obs.ContextWithSpan(context.Background(), sp)
		_, _, _ = tc.DoCtx(ctx, k, func(context.Context) (int, error) { return 4, nil })
		sp.End()
		td := tr.Recent()[0]
		found := ""
		for _, sd := range td.Spans() {
			for _, a := range sd.Annots[:sd.NAnn] {
				if a.Key == "l2" {
					found = fmt.Sprint(a.Value())
				}
			}
		}
		if found != want {
			t.Fatalf("l2 annotation = %q, want %q", found, want)
		}
	}
	run("miss")
	// Fresh L1, same L2: traced request annotates the hit.
	tc = newIntTiered(shared, obs.NewRegistry())
	run("hit")
}

func TestOutcomeString(t *testing.T) {
	for out, want := range map[Outcome]string{
		Computed: "computed", HitL1: "hit_l1", HitL2: "hit_l2",
		CoalescedTier: "coalesced", Outcome(99): "unknown",
	} {
		if out.String() != want {
			t.Fatalf("Outcome(%d).String() = %q, want %q", int(out), out.String(), want)
		}
	}
}

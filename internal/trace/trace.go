// Package trace exports schedule traces to standard visualization
// formats: the Chrome/Perfetto trace-event JSON format (load in
// chrome://tracing or ui.perfetto.dev) and a standalone SVG Gantt chart.
package trace

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/sim"
)

// chromeEvent is one complete event ("ph":"X") of the trace-event format.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeMeta struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// Chrome renders the schedule as Chrome trace-event JSON. Schedule times
// are interpreted as milliseconds. Each worker becomes a thread; the two
// resource classes become two processes. Aborted runs are tagged.
func Chrome(s *sim.Schedule, names map[int]string) ([]byte, error) {
	var out []json.RawMessage
	add := func(v any) error {
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		out = append(out, b)
		return nil
	}
	for _, kind := range []platform.Kind{platform.CPU, platform.GPU} {
		if err := add(chromeMeta{
			Name: "process_name", Ph: "M", PID: int(kind), TID: 0,
			Args: map[string]any{"name": kind.String() + " class"},
		}); err != nil {
			return nil, err
		}
	}
	for w := 0; w < s.Platform.Workers(); w++ {
		if err := add(chromeMeta{
			Name: "thread_name", Ph: "M", PID: int(s.Platform.KindOf(w)), TID: w,
			Args: map[string]any{"name": s.Platform.WorkerName(w)},
		}); err != nil {
			return nil, err
		}
	}
	for _, e := range s.Entries {
		name := names[e.TaskID]
		if name == "" {
			name = fmt.Sprintf("task %d", e.TaskID)
		}
		args := map[string]string{}
		if e.Aborted {
			args["state"] = "aborted (spoliated)"
			// The run's whole duration is lost work — the paper's
			// "spoliation wasted area", surfaced per run in the viewer.
			args["wasted_ms"] = strconv.FormatFloat(e.Duration(), 'g', -1, 64)
		} else if e.Spoliation {
			args["state"] = "restarted by spoliation"
		}
		if err := add(chromeEvent{
			Name: name, Ph: "X",
			Ts:  e.Start * 1000, // ms -> us
			Dur: math.Max(e.Duration()*1000, 0.001),
			PID: int(e.Kind), TID: e.Worker,
			Args: args,
		}); err != nil {
			return nil, err
		}
	}
	return json.MarshalIndent(out, "", " ")
}

// ChromeLive exports a live-captured obs.Timeline as Chrome trace-event
// JSON: the bridge from the observer event stream to the same Perfetto
// format as post-hoc schedules. The timeline may still be open — runs
// without a completion event yet are rendered as aborted at their last
// observed instant.
func ChromeLive(tl *obs.Timeline, pl platform.Platform, names map[int]string) ([]byte, error) {
	return Chrome(tl.Schedule(pl), names)
}

// SVG renders the schedule as a standalone SVG Gantt chart of the given
// pixel width. Colors cycle per task; aborted runs are hatched red.
func SVG(s *sim.Schedule, width int) string {
	const rowH, pad, legendH = 22, 4, 20
	if width < 100 {
		width = 100
	}
	ms := s.Makespan()
	if ms <= 0 {
		ms = 1
	}
	workers := s.Platform.Workers()
	height := workers*(rowH+pad) + legendH + pad
	labelW := 60.0
	scale := (float64(width) - labelW - 10) / ms

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="11">`+"\n", width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	for w := 0; w < workers; w++ {
		y := float64(w*(rowH+pad)) + legendH
		fmt.Fprintf(&b, `<text x="2" y="%.1f">%s</text>`+"\n", y+rowH-7, s.Platform.WorkerName(w))
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%d" fill="#f0f0f0"/>`+"\n",
			labelW, y, ms*scale, rowH)
	}
	entries := append([]sim.Entry(nil), s.Entries...)
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].Start < entries[j].Start })
	palette := []string{"#4e79a7", "#f28e2b", "#59a14f", "#b07aa1", "#76b7b2", "#edc948", "#ff9da7", "#9c755f"}
	for _, e := range entries {
		y := float64(e.Worker*(rowH+pad)) + legendH
		x := labelW + e.Start*scale
		wpx := math.Max(e.Duration()*scale, 0.5)
		fill := palette[e.TaskID%len(palette)]
		if e.Aborted {
			fill = "#d62728"
		}
		opacity := 1.0
		if e.Aborted {
			opacity = 0.45
		}
		fmt.Fprintf(&b, `<rect x="%.2f" y="%.1f" width="%.2f" height="%d" fill="%s" fill-opacity="%.2f" stroke="black" stroke-width="0.3"><title>task %d [%.4g, %.4g)%s</title></rect>`+"\n",
			x, y+1, wpx, rowH-2, fill, opacity, e.TaskID, e.Start, e.End, abortTag(e))
	}
	fmt.Fprintf(&b, `<text x="%.1f" y="14">makespan %.4g — red = aborted (spoliated) run</text>`+"\n", labelW, ms)
	b.WriteString("</svg>\n")
	return b.String()
}

func abortTag(e sim.Entry) string {
	if e.Aborted {
		return " ABORTED"
	}
	if e.Spoliation {
		return " (restarted by spoliation)"
	}
	return ""
}

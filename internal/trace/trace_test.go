package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/sim"
)

func demoSchedule(t *testing.T) (*sim.Schedule, platform.Instance) {
	t.Helper()
	in := platform.Instance{
		{ID: 0, Name: "a", CPUTime: 10, GPUTime: 1},
		{ID: 1, Name: "b", CPUTime: 10, GPUTime: 2},
	}
	pl := platform.NewPlatform(1, 1)
	res, err := core.ScheduleIndependent(in, pl, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Schedule, in
}

func TestChromeValidJSON(t *testing.T) {
	s, in := demoSchedule(t)
	names := map[int]string{}
	for _, task := range in {
		names[task.ID] = task.Name
	}
	raw, err := Chrome(s, names)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	var complete, meta, aborted, wastedTagged int
	for _, e := range events {
		switch e["ph"] {
		case "X":
			complete++
			if args, ok := e["args"].(map[string]any); ok {
				if strings.Contains(asString(args["state"]), "aborted") {
					aborted++
				}
				if asString(args["wasted_ms"]) != "" {
					wastedTagged++
				}
			}
		case "M":
			meta++
		}
	}
	// 2 process metas + 2 thread metas; 3 runs (one aborted by spoliation).
	if meta != 4 {
		t.Errorf("meta events = %d, want 4", meta)
	}
	if complete != 3 {
		t.Errorf("complete events = %d, want 3", complete)
	}
	if aborted != 1 {
		t.Errorf("aborted events = %d, want 1", aborted)
	}
	if wastedTagged != aborted {
		t.Errorf("wasted_ms tagged on %d events, want %d (every aborted run)", wastedTagged, aborted)
	}
	if !strings.Contains(string(raw), "\"a\"") {
		t.Error("task names missing from trace")
	}
}

func asString(v any) string {
	s, _ := v.(string)
	return s
}

func TestChromeUnnamedTasks(t *testing.T) {
	s, _ := demoSchedule(t)
	raw, err := Chrome(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "task 0") {
		t.Error("fallback task names missing")
	}
}

// TestChromeLiveMatchesPostHoc runs the scheduler with a live Timeline
// observer attached and checks the bridged export agrees with the post-hoc
// trace of the finished schedule: same task set, same makespan, same
// aborted runs with their wasted-work tags.
func TestChromeLiveMatchesPostHoc(t *testing.T) {
	in := platform.Instance{
		{ID: 0, Name: "a", CPUTime: 10, GPUTime: 1},
		{ID: 1, Name: "b", CPUTime: 10, GPUTime: 2},
	}
	pl := platform.NewPlatform(1, 1)
	tl := obs.NewTimeline()
	res, err := core.ScheduleIndependent(in, pl, core.Options{Observer: tl})
	if err != nil {
		t.Fatal(err)
	}

	live := tl.Schedule(pl)
	if got, want := live.Makespan(), res.Schedule.Makespan(); got != want {
		t.Errorf("live makespan %v, post-hoc %v", got, want)
	}
	if got, want := live.SpoliationCount(), res.Schedule.SpoliationCount(); got != want {
		t.Errorf("live spoliations %d, post-hoc %d", got, want)
	}
	if err := live.Validate(in, nil); err != nil {
		t.Errorf("live-reconstructed schedule invalid: %v", err)
	}

	raw, err := ChromeLive(tl, pl, map[int]string{0: "a", 1: "b"})
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	var complete int
	var wasted bool
	for _, e := range events {
		if e["ph"] == "X" {
			complete++
			if args, ok := e["args"].(map[string]any); ok && asString(args["wasted_ms"]) != "" {
				wasted = true
			}
		}
	}
	if complete != len(res.Schedule.Entries) {
		t.Errorf("live trace has %d runs, schedule has %d", complete, len(res.Schedule.Entries))
	}
	if res.Spoliations > 0 && !wasted {
		t.Error("spoliated run not tagged with wasted_ms in live trace")
	}
}

func TestSVG(t *testing.T) {
	s, _ := demoSchedule(t)
	svg := SVG(s, 640)
	for _, want := range []string{"<svg", "CPU0", "GPU0", "ABORTED", "</svg>"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Tiny width is clamped, empty schedule does not divide by zero.
	empty := &sim.Schedule{Platform: platform.NewPlatform(1, 0)}
	if out := SVG(empty, 10); !strings.Contains(out, "<svg") {
		t.Error("empty schedule SVG broken")
	}
}

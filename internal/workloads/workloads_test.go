package workloads

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dag"
	"repro/internal/platform"
)

func TestTable1AccelerationFactors(t *testing.T) {
	want := map[string]float64{
		"DPOTRF": 1.72,
		"DTRSM":  8.72,
		"DSYRK":  26.96,
		"DGEMM":  28.80,
	}
	got := Table1()
	for name, w := range want {
		if g, ok := got[name]; !ok || math.Abs(g-w) > 1e-9 {
			t.Errorf("%s: accel = %v, want %v", name, g, w)
		}
	}
}

func TestKernelTask(t *testing.T) {
	tk := DGEMM.Task()
	if tk.Name != "DGEMM" || tk.CPUTime != DGEMM.CPUTime || tk.GPUTime != DGEMM.GPUTime {
		t.Errorf("Task() = %+v", tk)
	}
	if len(CholeskyKernels()) != 4 || len(QRKernels()) != 4 || len(LUKernels()) != 3 {
		t.Error("kernel family sizes wrong")
	}
}

func TestJitter(t *testing.T) {
	in := platform.Instance{{ID: 0, CPUTime: 10, GPUTime: 1}}
	rng := rand.New(rand.NewSource(3))
	out := Jitter(in, 0.1, rng)
	if out[0].CPUTime == 10 && out[0].GPUTime == 1 {
		t.Error("jitter did not perturb times")
	}
	if in[0].CPUTime != 10 {
		t.Error("jitter mutated the input")
	}
	if err := out.Validate(); err != nil {
		t.Error(err)
	}
	// Zero sigma is the identity.
	same := Jitter(in, 0, rng)
	if same[0].CPUTime != 10 || same[0].GPUTime != 1 {
		t.Error("sigma=0 should not change times")
	}
}

func choleskyCounts(N int) (potrf, trsm, syrk, gemm int) {
	return N, N * (N - 1) / 2, N * (N - 1) / 2, N * (N - 1) * (N - 2) / 6
}

func TestCholeskyShape(t *testing.T) {
	for _, N := range []int{1, 2, 3, 5, 8} {
		g := Cholesky(N)
		if err := g.Validate(); err != nil {
			t.Fatalf("N=%d: %v", N, err)
		}
		p, tr, sy, ge := choleskyCounts(N)
		if g.Len() != p+tr+sy+ge {
			t.Errorf("N=%d: %d tasks, want %d", N, g.Len(), p+tr+sy+ge)
		}
		counts := map[string]int{}
		for _, task := range g.Tasks() {
			counts[task.Name[:4]]++
		}
		if counts["POTR"] != p || counts["TRSM"] != tr || counts["SYRK"] != sy || counts["GEMM"] != ge {
			t.Errorf("N=%d: kernel counts %v", N, counts)
		}
	}
}

func TestCholeskyCriticalStructure(t *testing.T) {
	// The final POTRF must be a sink-reachable task depending on the whole
	// elimination; with N=2: POTRF(0) -> TRSM(1,0) -> SYRK(1,1) -> POTRF(1).
	g := Cholesky(2)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 4 {
		t.Fatalf("N=2 should have 4 tasks, got %d", len(order))
	}
	last := order[len(order)-1]
	if g.Task(last).Name != "POTRF(1,1,1)" {
		t.Errorf("last task = %s, want POTRF(1,1,1)", g.Task(last).Name)
	}
	if len(g.Sinks()) != 1 {
		t.Errorf("Cholesky(2) should have exactly one sink, got %v", g.Sinks())
	}
}

func TestQRShape(t *testing.T) {
	for _, N := range []int{1, 2, 3, 5} {
		g := QR(N)
		if err := g.Validate(); err != nil {
			t.Fatalf("N=%d: %v", N, err)
		}
		geqrt := N
		ormqr := N * (N - 1) / 2
		tsqrt := N * (N - 1) / 2
		tsmqr := (N - 1) * N * (2*N - 1) / 6
		if g.Len() != geqrt+ormqr+tsqrt+tsmqr {
			t.Errorf("N=%d: %d tasks, want %d", N, g.Len(), geqrt+ormqr+tsqrt+tsmqr)
		}
	}
}

func TestLUShape(t *testing.T) {
	for _, N := range []int{1, 2, 3, 5} {
		g := LU(N)
		if err := g.Validate(); err != nil {
			t.Fatalf("N=%d: %v", N, err)
		}
		getrf := N
		trsm := N * (N - 1)
		gemm := (N - 1) * N * (2*N - 1) / 6
		if g.Len() != getrf+trsm+gemm {
			t.Errorf("N=%d: %d tasks, want %d", N, g.Len(), getrf+trsm+gemm)
		}
	}
}

func TestFactorizationChainsAreSequential(t *testing.T) {
	// With one worker of each class the DAG must still be executable; a
	// quick sanity check that the builders produce connected elimination
	// chains: the critical path with min weights grows with N.
	for _, f := range Factorizations() {
		g4, err := Build(f, 4)
		if err != nil {
			t.Fatal(err)
		}
		g8, err := Build(f, 8)
		if err != nil {
			t.Fatal(err)
		}
		pl := platform.NewPlatform(1, 1)
		cp4, err := g4.CriticalPath(dag.WeightMin, pl)
		if err != nil {
			t.Fatal(err)
		}
		cp8, err := g8.CriticalPath(dag.WeightMin, pl)
		if err != nil {
			t.Fatal(err)
		}
		if cp8 <= cp4 {
			t.Errorf("%s: critical path did not grow with N: %v vs %v", f, cp4, cp8)
		}
	}
}

func TestBuildUnknown(t *testing.T) {
	if _, err := Build(Factorization("nope"), 4); err == nil {
		t.Error("unknown factorization accepted")
	}
	if _, err := IndependentTasks(Factorization("nope"), 4); err == nil {
		t.Error("unknown factorization accepted")
	}
}

func TestIndependentTasks(t *testing.T) {
	in, err := IndependentTasks(FactCholesky, 4)
	if err != nil {
		t.Fatal(err)
	}
	g := Cholesky(4)
	if len(in) != g.Len() {
		t.Errorf("independent set size %d, want %d", len(in), g.Len())
	}
	if err := in.Validate(); err != nil {
		t.Error(err)
	}
}

func TestValidateTilesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for N=0")
		}
	}()
	Cholesky(0)
}

func TestTheorem8Instance(t *testing.T) {
	in, pl := Theorem8Instance()
	if pl.CPUs != 1 || pl.GPUs != 1 {
		t.Errorf("platform = %v", pl)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, task := range in {
		if math.Abs(task.Accel()-Phi) > 1e-12 {
			t.Errorf("task %s accel %v, want phi", task.Name, task.Accel())
		}
	}
}

func TestTheorem11InstanceStructure(t *testing.T) {
	m, K := 10, 4
	in, pl := Theorem11Instance(m, K)
	if pl.CPUs != m || pl.GPUs != 1 {
		t.Errorf("platform = %v", pl)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(in) != K+2+m*K {
		t.Errorf("size %d, want %d", len(in), K+2+m*K)
	}
	// Total CPU filler work = m*x: every CPU busy until x.
	x := float64(m-1) / (float64(m) + Phi)
	var t3 float64
	for _, task := range in {
		if task.Name == "T3" {
			t3 += task.CPUTime
		}
	}
	if math.Abs(t3-float64(m)*x) > 1e-9 {
		t.Errorf("T3 total %v, want %v", t3, float64(m)*x)
	}
}

func TestTheorem11Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for m=1")
		}
	}()
	Theorem11Instance(1, 1)
}

func TestTheorem14R(t *testing.T) {
	// r solves n/r + 2n - 1 = n*r/3.
	for _, n := range []int{6, 12, 60, 600} {
		r := Theorem14R(n)
		lhs := float64(n)/r + 2*float64(n) - 1
		rhs := float64(n) * r / 3
		if math.Abs(lhs-rhs) > 1e-6 {
			t.Errorf("n=%d: r=%v does not satisfy the equation (%v vs %v)", n, r, lhs, rhs)
		}
	}
	// Limit: 3 + 2*sqrt(3).
	if r := Theorem14R(60000); math.Abs(r-(3+2*math.Sqrt(3))) > 1e-3 {
		t.Errorf("r limit = %v, want %v", r, 3+2*math.Sqrt(3))
	}
}

func TestTheorem14T2SetProperties(t *testing.T) {
	for _, k := range []int{1, 2, 4} {
		n := 6 * k
		times := Theorem14T2GPUTimes(k)
		if len(times) != 2*n+1 {
			t.Fatalf("k=%d: %d tasks, want %d", k, len(times), 2*n+1)
		}
		var total float64
		for _, d := range times {
			total += d
		}
		// Total work = n*n (fits exactly on n machines in time n).
		if math.Abs(total-float64(n*n)) > 1e-9 {
			t.Errorf("k=%d: total work %v, want %v", k, total, n*n)
		}
		// Smallest task is 2k = Cmax/3.
		min := math.Inf(1)
		for _, d := range times {
			min = math.Min(min, d)
		}
		if min != float64(2*k) {
			t.Errorf("k=%d: min length %v, want %v", k, min, 2*k)
		}
	}
}

func TestTheorem14GoodPacking(t *testing.T) {
	for _, k := range []int{1, 2, 3} {
		n := 6 * k
		packing := Theorem14T2GoodPacking(k)
		if len(packing) != n {
			t.Fatalf("k=%d: %d machines, want %d", k, len(packing), n)
		}
		// Each machine's load is exactly n, and the multiset of lengths
		// matches Theorem14T2GPUTimes.
		counts := map[float64]int{}
		for _, mach := range packing {
			var load float64
			for _, d := range mach {
				load += d
				counts[d]++
			}
			if math.Abs(load-float64(n)) > 1e-9 {
				t.Errorf("k=%d: machine load %v, want %v", k, load, n)
			}
		}
		for _, d := range Theorem14T2GPUTimes(k) {
			counts[d]--
		}
		for d, c := range counts {
			if c != 0 {
				t.Errorf("k=%d: length %v count mismatch %d", k, d, c)
			}
		}
	}
}

func TestTheorem14InstanceStructure(t *testing.T) {
	k, K := 1, 2
	in, pl := Theorem14Instance(k, K)
	n := 6 * k
	if pl.GPUs != n || pl.CPUs != n*n {
		t.Errorf("platform = %v", pl)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	want := n*K + n + (2*n + 1) + n*n*K
	if len(in) != want {
		t.Errorf("size %d, want %d", len(in), want)
	}
	r := Theorem14R(n)
	lo, hi := in.AccelRange()
	if math.Abs(hi-r) > 1e-9 || math.Abs(lo-1) > 1e-9 {
		t.Errorf("accel range [%v, %v], want [1, %v]", lo, hi, r)
	}
}

func TestWorstCasePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"T2 times":     func() { Theorem14T2GPUTimes(0) },
		"good packing": func() { Theorem14T2GoodPacking(0) },
		"instance":     func() { Theorem14Instance(0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestRandomGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	uni := UniformInstance(50, 1, 10, 0.5, 20, rng)
	if len(uni) != 50 {
		t.Fatalf("uniform size %d", len(uni))
	}
	if err := uni.Validate(); err != nil {
		t.Fatal(err)
	}
	lo, hi := uni.AccelRange()
	if lo < 0.5-1e-9 || hi > 20+1e-9 {
		t.Errorf("uniform accel range [%v, %v] outside [0.5, 20]", lo, hi)
	}
	bim := BimodalInstance(100, 0.7, rng)
	if err := bim.Validate(); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, task := range bim {
		names[task.Name] = true
	}
	if !names["update"] || !names["panel"] {
		t.Error("bimodal should produce both modes")
	}
	logn := LogNormalAccelInstance(100, 1, 1, rng)
	if err := logn.Validate(); err != nil {
		t.Fatal(err)
	}
}

package workloads

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/platform"
)

// Wavefront builds an n x n 2D wavefront (stencil sweep) DAG: cell (i,j)
// depends on its north and west neighbours. Border cells use the border
// task times, interior cells the interior times — mirroring sweeps whose
// interior kernels vectorize well on accelerators while boundary handling
// does not.
func Wavefront(n int, border, interior platform.Task) *dag.Graph {
	validateTiles(n)
	g := dag.New()
	ids := make([][]int, n)
	for i := 0; i < n; i++ {
		ids[i] = make([]int, n)
		for j := 0; j < n; j++ {
			t := interior
			if i == 0 || j == 0 {
				t = border
			}
			t.Name = fmt.Sprintf("cell(%d,%d)", i, j)
			ids[i][j] = g.AddTask(t)
			if i > 0 {
				g.AddEdge(ids[i-1][j], ids[i][j])
			}
			if j > 0 {
				g.AddEdge(ids[i][j-1], ids[i][j])
			}
		}
	}
	return g
}

// DefaultWavefront returns a wavefront with the STF example's task times:
// borders barely accelerated, interiors strongly accelerated.
func DefaultWavefront(n int) *dag.Graph {
	border := platform.Task{CPUTime: 3, GPUTime: 2.5}
	interior := platform.Task{CPUTime: 10, GPUTime: 0.8}
	return Wavefront(n, border, interior)
}

// BagOfChains builds c independent chains of length l (a classic runtime
// stress shape: lots of parallelism, long individual critical paths).
// Chain i alternates the two task profiles so both classes stay relevant.
func BagOfChains(c, l int, even, odd platform.Task) *dag.Graph {
	validateTiles(c)
	validateTiles(l)
	g := dag.New()
	for i := 0; i < c; i++ {
		prev := -1
		for j := 0; j < l; j++ {
			t := even
			if j%2 == 1 {
				t = odd
			}
			t.Name = fmt.Sprintf("chain%d[%d]", i, j)
			id := g.AddTask(t)
			if prev >= 0 {
				g.AddEdge(prev, id)
			}
			prev = id
		}
	}
	return g
}

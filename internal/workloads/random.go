package workloads

import (
	"math"
	"math/rand"

	"repro/internal/platform"
)

// UniformInstance returns n tasks with CPU times uniform in [pMin, pMax]
// and acceleration factors uniform in [aMin, aMax].
func UniformInstance(n int, pMin, pMax, aMin, aMax float64, rng *rand.Rand) platform.Instance {
	in := make(platform.Instance, 0, n)
	for i := 0; i < n; i++ {
		p := pMin + rng.Float64()*(pMax-pMin)
		a := aMin + rng.Float64()*(aMax-aMin)
		in = append(in, platform.Task{ID: i, Name: "uni", CPUTime: p, GPUTime: p / a})
	}
	return in
}

// BimodalInstance returns n tasks drawn from two kernel-like modes: a
// "GEMM-like" mode (large acceleration factor) with probability pGPU, and
// a "panel-like" mode (factor near 1) otherwise. This mimics the
// affinity structure of dense linear algebra kernels.
func BimodalInstance(n int, pGPU float64, rng *rand.Rand) platform.Instance {
	in := make(platform.Instance, 0, n)
	for i := 0; i < n; i++ {
		var t platform.Task
		if rng.Float64() < pGPU {
			p := 40 + rng.Float64()*20
			a := 20 + rng.Float64()*15
			t = platform.Task{ID: i, Name: "update", CPUTime: p, GPUTime: p / a}
		} else {
			p := 8 + rng.Float64()*8
			a := 0.8 + rng.Float64()*1.5
			t = platform.Task{ID: i, Name: "panel", CPUTime: p, GPUTime: p / a}
		}
		in = append(in, t)
	}
	return in
}

// LogNormalAccelInstance returns n tasks whose acceleration factors follow
// a log-normal distribution centered on exp(mu) — a heavy-tailed spread of
// affinities that stresses the two-ended queue.
func LogNormalAccelInstance(n int, mu, sigma float64, rng *rand.Rand) platform.Instance {
	in := make(platform.Instance, 0, n)
	for i := 0; i < n; i++ {
		p := 1 + rng.Float64()*50
		a := math.Exp(mu + sigma*rng.NormFloat64())
		in = append(in, platform.Task{ID: i, Name: "logn", CPUTime: p, GPUTime: p / a})
	}
	return in
}

package workloads

import (
	"testing"

	"repro/internal/dag"
	"repro/internal/platform"
)

func TestWavefrontShape(t *testing.T) {
	g := DefaultWavefront(5)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Len() != 25 {
		t.Fatalf("tasks = %d, want 25", g.Len())
	}
	// Edges: 2*n*(n-1) = 40 for n=5.
	if g.Edges() != 40 {
		t.Errorf("edges = %d, want 40", g.Edges())
	}
	// Exactly one source (0,0) and one sink (n-1,n-1).
	if len(g.Sources()) != 1 || len(g.Sinks()) != 1 {
		t.Errorf("sources/sinks = %v/%v", g.Sources(), g.Sinks())
	}
	// Critical path visits 2n-1 cells.
	cp, err := g.CriticalPath(dag.WeightMin, platform.NewPlatform(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Path: corner border (2.5) + ... the min-duration path length must be
	// at least (2n-1) * min cell duration (0.8).
	if cp < float64(2*5-1)*0.8 {
		t.Errorf("critical path %v too short", cp)
	}
}

func TestWavefrontBorderTimes(t *testing.T) {
	border := platform.Task{CPUTime: 7, GPUTime: 5}
	interior := platform.Task{CPUTime: 1, GPUTime: 1}
	g := Wavefront(3, border, interior)
	borders := 0
	for _, task := range g.Tasks() {
		if task.CPUTime == 7 {
			borders++
		}
	}
	if borders != 5 { // row 0 (3 cells) + column 0 (3) - corner counted once
		t.Errorf("border cells = %d, want 5", borders)
	}
}

func TestBagOfChains(t *testing.T) {
	even := platform.Task{CPUTime: 2, GPUTime: 1}
	odd := platform.Task{CPUTime: 1, GPUTime: 2}
	g := BagOfChains(4, 6, even, odd)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Len() != 24 || g.Edges() != 4*5 {
		t.Fatalf("shape %d tasks %d edges", g.Len(), g.Edges())
	}
	if len(g.Sources()) != 4 || len(g.Sinks()) != 4 {
		t.Errorf("sources/sinks = %d/%d, want 4/4", len(g.Sources()), len(g.Sinks()))
	}
	// Alternating profiles: equal counts.
	var evens int
	for _, task := range g.Tasks() {
		if task.CPUTime == 2 {
			evens++
		}
	}
	if evens != 12 {
		t.Errorf("even-profile tasks = %d, want 12", evens)
	}
}

func TestStencilPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"wavefront": func() { DefaultWavefront(0) },
		"chains": func() {
			BagOfChains(0, 3, platform.Task{CPUTime: 1, GPUTime: 1}, platform.Task{CPUTime: 1, GPUTime: 1})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

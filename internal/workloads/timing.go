// Package workloads generates the task sets and task graphs used in the
// paper's evaluation (Section 6): tiled Cholesky, QR and LU factorization
// DAGs with a kernel timing model calibrated against Table 1, the
// corresponding independent-task instances, the adversarial worst-case
// instances of Theorems 8, 11 and 14 (including the Figure 4 task set),
// and random instance generators for stress testing.
package workloads

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/platform"
)

// Kernel identifies one dense linear-algebra tile kernel.
type Kernel struct {
	// Name is the BLAS/LAPACK-style kernel name (e.g. "DGEMM").
	Name string
	// CPUTime and GPUTime are the per-tile processing times in
	// milliseconds for a 960x960 tile.
	CPUTime float64
	GPUTime float64
}

// Accel returns the kernel's acceleration factor.
func (k Kernel) Accel() float64 { return k.CPUTime / k.GPUTime }

// Task materializes the kernel as a schedulable task (ID must be assigned
// by the caller or a graph).
func (k Kernel) Task() platform.Task {
	return platform.Task{Name: k.Name, CPUTime: k.CPUTime, GPUTime: k.GPUTime}
}

// Kernel timing model, tile size 960.
//
// Cholesky CPU times are set from the tile flop counts at ~35 GFlop/s
// (one Haswell core running MKL-class BLAS): GEMM 2·960³ ≈ 1.77 GFlop,
// SYRK and TRSM half of that, POTRF one third of SYRK. GPU times are then
// *derived from the acceleration factors of Table 1 of the paper*, which
// this model reproduces exactly (1.72, 8.72, 26.96, 28.80).
//
// QR and LU kernels do not appear in Table 1; their acceleration factors
// follow the well-documented pattern of the Chameleon/MAGMA kernels on
// K40-class GPUs: panel factorizations barely accelerate (they are
// latency- and dependency-bound), triangular solves accelerate modestly,
// and the large update kernels (TSMQR, GEMM) accelerate the most — though
// TSMQR, being a composed kernel, stays well below GEMM.
var (
	// Cholesky kernels (Table 1).
	DPOTRF = Kernel{Name: "DPOTRF", CPUTime: 11.8, GPUTime: 11.8 / 1.72}
	DTRSM  = Kernel{Name: "DTRSM", CPUTime: 28.0, GPUTime: 28.0 / 8.72}
	DSYRK  = Kernel{Name: "DSYRK", CPUTime: 25.0, GPUTime: 25.0 / 26.96}
	DGEMM  = Kernel{Name: "DGEMM", CPUTime: 50.0, GPUTime: 50.0 / 28.80}

	// QR kernels.
	DGEQRT = Kernel{Name: "DGEQRT", CPUTime: 32.0, GPUTime: 32.0 / 2.0}
	DORMQR = Kernel{Name: "DORMQR", CPUTime: 54.0, GPUTime: 54.0 / 10.0}
	DTSQRT = Kernel{Name: "DTSQRT", CPUTime: 38.0, GPUTime: 38.0 / 2.6}
	DTSMQR = Kernel{Name: "DTSMQR", CPUTime: 74.0, GPUTime: 74.0 / 13.0}

	// LU kernels (tile LU without pivoting; TRSM and GEMM shared with
	// Cholesky).
	DGETRF = Kernel{Name: "DGETRF", CPUTime: 24.0, GPUTime: 24.0 / 1.9}
)

// CholeskyKernels returns the four Cholesky kernels in Table 1 order.
func CholeskyKernels() []Kernel { return []Kernel{DPOTRF, DTRSM, DSYRK, DGEMM} }

// QRKernels returns the four tiled-QR kernels.
func QRKernels() []Kernel { return []Kernel{DGEQRT, DORMQR, DTSQRT, DTSMQR} }

// LUKernels returns the three tile-LU kernels.
func LUKernels() []Kernel { return []Kernel{DGETRF, DTRSM, DGEMM} }

// Table1 returns the acceleration factors of the Cholesky kernels, the
// content of Table 1 of the paper.
func Table1() map[string]float64 {
	out := make(map[string]float64, 4)
	for _, k := range CholeskyKernels() {
		out[k.Name] = k.Accel()
	}
	return out
}

// Jitter returns a copy of the instance with every processing time
// multiplied by an independent log-normal factor exp(sigma*N(0,1)),
// modelling measurement noise on a real machine. Acceleration factors are
// jittered too (CPU and GPU draws are independent).
func Jitter(in platform.Instance, sigma float64, rng *rand.Rand) platform.Instance {
	out := in.Clone()
	for i := range out {
		out[i].CPUTime *= math.Exp(sigma * rng.NormFloat64())
		out[i].GPUTime *= math.Exp(sigma * rng.NormFloat64())
	}
	return out
}

// validateTiles panics on a non-positive tile count; the generators are
// used with literal arguments in experiments and tests.
func validateTiles(n int) {
	if n < 1 {
		panic(fmt.Sprintf("workloads: tile count %d < 1", n))
	}
}

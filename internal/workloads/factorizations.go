package workloads

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/platform"
)

// tileWriters tracks, for each tile of the matrix, the last task that wrote
// it; the next task touching the tile depends on it (true dependency chain
// of the in-place tiled algorithms).
type tileWriters struct {
	n    int
	last []int
}

func newTileWriters(n int) *tileWriters {
	tw := &tileWriters{n: n, last: make([]int, n*n)}
	for i := range tw.last {
		tw.last[i] = -1
	}
	return tw
}

func (tw *tileWriters) dep(g *dag.Graph, task, i, j int) {
	if w := tw.last[i*tw.n+j]; w >= 0 && w != task {
		g.AddEdge(w, task)
	}
}

func (tw *tileWriters) write(task, i, j int) { tw.last[i*tw.n+j] = task }

// Cholesky builds the task graph of the right-looking tiled Cholesky
// factorization of an N x N tile matrix:
//
//	for k = 0..N-1:
//	    POTRF(k,k)
//	    TRSM(i,k)            for i > k
//	    SYRK(i,k)  on (i,i)  for i > k
//	    GEMM(i,j,k) on (i,j) for k < j < i
//
// Task counts: N POTRF, N(N-1)/2 TRSM, N(N-1)/2 SYRK, N(N-1)(N-2)/6 GEMM.
func Cholesky(N int) *dag.Graph {
	validateTiles(N)
	g := dag.New()
	tw := newTileWriters(N)
	for k := 0; k < N; k++ {
		potrf := addKernelTask(g, DPOTRF, "POTRF", k, k, k)
		tw.dep(g, potrf, k, k)
		tw.write(potrf, k, k)
		trsm := make([]int, N)
		for i := k + 1; i < N; i++ {
			t := addKernelTask(g, DTRSM, "TRSM", i, k, k)
			g.AddEdge(potrf, t)
			tw.dep(g, t, i, k)
			tw.write(t, i, k)
			trsm[i] = t
		}
		for i := k + 1; i < N; i++ {
			for j := k + 1; j <= i; j++ {
				var t int
				if i == j {
					t = addKernelTask(g, DSYRK, "SYRK", i, i, k)
					g.AddEdge(trsm[i], t)
				} else {
					t = addKernelTask(g, DGEMM, "GEMM", i, j, k)
					g.AddEdge(trsm[i], t)
					g.AddEdge(trsm[j], t)
				}
				tw.dep(g, t, i, j)
				tw.write(t, i, j)
			}
		}
	}
	return g
}

// QR builds the task graph of the tiled QR factorization (flat reduction
// tree, the Chameleon default):
//
//	for k = 0..N-1:
//	    GEQRT(k,k)
//	    ORMQR(k,j,k)  for j > k
//	    TSQRT(i,k)    for i > k   (chained down column k)
//	    TSMQR(i,j,k)  for i > k, j > k (chained down each column j)
//
// Task counts: N GEQRT, N(N-1)/2 ORMQR, N(N-1)/2 TSQRT, N(N-1)(N-2)/... —
// TSMQR count is sum_k (N-1-k)^2 = (N-1)N(2N-1)/6.
func QR(N int) *dag.Graph {
	validateTiles(N)
	g := dag.New()
	tw := newTileWriters(N)
	for k := 0; k < N; k++ {
		geqrt := addKernelTask(g, DGEQRT, "GEQRT", k, k, k)
		tw.dep(g, geqrt, k, k)
		tw.write(geqrt, k, k)
		// Row updates of the panel factorization.
		rowOp := make([]int, N) // last op having updated tile (k,j) chain
		for j := k + 1; j < N; j++ {
			t := addKernelTask(g, DORMQR, "ORMQR", k, j, k)
			g.AddEdge(geqrt, t)
			tw.dep(g, t, k, j)
			tw.write(t, k, j)
			rowOp[j] = t
		}
		colOp := geqrt // chain of TSQRT down column k
		for i := k + 1; i < N; i++ {
			ts := addKernelTask(g, DTSQRT, "TSQRT", i, k, k)
			g.AddEdge(colOp, ts)
			tw.dep(g, ts, i, k)
			tw.write(ts, i, k)
			// TSQRT also updates the (k,k) R factor.
			tw.write(ts, k, k)
			colOp = ts
			for j := k + 1; j < N; j++ {
				t := addKernelTask(g, DTSMQR, "TSMQR", i, j, k)
				g.AddEdge(ts, t)
				g.AddEdge(rowOp[j], t)
				tw.dep(g, t, i, j)
				tw.write(t, i, j)
				// TSMQR updates both tiles (i,j) and (k,j).
				tw.write(t, k, j)
				rowOp[j] = t
			}
		}
	}
	return g
}

// LU builds the task graph of the tiled LU factorization without pivoting:
//
//	for k = 0..N-1:
//	    GETRF(k,k)
//	    TRSM(k,j,k) for j > k   (U panel)
//	    TRSM(i,k,k) for i > k   (L panel)
//	    GEMM(i,j,k) for i > k, j > k
//
// Task counts: N GETRF, N(N-1) TRSM, sum_k (N-1-k)^2 GEMM.
func LU(N int) *dag.Graph {
	validateTiles(N)
	g := dag.New()
	tw := newTileWriters(N)
	for k := 0; k < N; k++ {
		getrf := addKernelTask(g, DGETRF, "GETRF", k, k, k)
		tw.dep(g, getrf, k, k)
		tw.write(getrf, k, k)
		rowT := make([]int, N)
		colT := make([]int, N)
		for j := k + 1; j < N; j++ {
			t := addKernelTask(g, DTRSM, "TRSM", k, j, k)
			g.AddEdge(getrf, t)
			tw.dep(g, t, k, j)
			tw.write(t, k, j)
			rowT[j] = t
		}
		for i := k + 1; i < N; i++ {
			t := addKernelTask(g, DTRSM, "TRSM", i, k, k)
			g.AddEdge(getrf, t)
			tw.dep(g, t, i, k)
			tw.write(t, i, k)
			colT[i] = t
		}
		for i := k + 1; i < N; i++ {
			for j := k + 1; j < N; j++ {
				t := addKernelTask(g, DGEMM, "GEMM", i, j, k)
				g.AddEdge(colT[i], t)
				g.AddEdge(rowT[j], t)
				tw.dep(g, t, i, j)
				tw.write(t, i, j)
			}
		}
	}
	return g
}

// addKernelTask adds a kernel instance named like "GEMM(3,2,1)".
func addKernelTask(g *dag.Graph, k Kernel, op string, i, j, it int) int {
	t := k.Task()
	t.Name = fmt.Sprintf("%s(%d,%d,%d)", op, i, j, it)
	return g.AddTask(t)
}

// Factorization names a workload family used across the experiments.
type Factorization string

const (
	FactCholesky Factorization = "cholesky"
	FactQR       Factorization = "qr"
	FactLU       Factorization = "lu"
)

// Factorizations lists the three families in the paper's order.
func Factorizations() []Factorization {
	return []Factorization{FactCholesky, FactQR, FactLU}
}

// Build returns the task graph of the factorization with N tiles.
func Build(f Factorization, N int) (*dag.Graph, error) {
	switch f {
	case FactCholesky:
		return Cholesky(N), nil
	case FactQR:
		return QR(N), nil
	case FactLU:
		return LU(N), nil
	default:
		return nil, fmt.Errorf("workloads: unknown factorization %q", f)
	}
}

// IndependentTasks returns the tasks of the factorization as an
// independent instance (the Section 6.1 setting: the measured kernel
// instances of one factorization, dependencies dropped).
func IndependentTasks(f Factorization, N int) (platform.Instance, error) {
	g, err := Build(f, N)
	if err != nil {
		return nil, err
	}
	return g.Tasks().Clone(), nil
}

package workloads

import (
	"fmt"
	"math"

	"repro/internal/platform"
)

// Phi is the golden ratio, the approximation ratio of HeteroPrio on one
// CPU and one GPU (Theorem 7).
var Phi = (1 + math.Sqrt(5)) / 2

// The adversarial instances of Theorems 8, 11 and 14 rely on
// acceleration-factor ties resolved by the stable queue order. In float64,
// a naive q = p/accel can make p/q land one ulp on either side of the
// intended common value, silently reordering the queue. Only the order
// matters, so the helpers below nudge one operand by ulps until the
// quotient is on the required side of (and as close as possible to) the
// canonical tie value.

// taskWithAccelAtLeast returns a task with CPU time exactly p and
// Accel() >= accel, tight to the ulp (GPU time nudged).
func taskWithAccelAtLeast(name string, p, accel float64) platform.Task {
	q := p / accel
	for p/q < accel {
		q = math.Nextafter(q, 0)
	}
	return platform.Task{Name: name, CPUTime: p, GPUTime: q}
}

// taskWithAccelAtLeastQ returns a task with GPU time exactly q and
// Accel() >= accel, tight to the ulp (CPU time nudged).
func taskWithAccelAtLeastQ(name string, q, accel float64) platform.Task {
	p := q * accel
	for p/q < accel {
		p = math.Nextafter(p, math.Inf(1))
	}
	return platform.Task{Name: name, CPUTime: p, GPUTime: q}
}

// Theorem8Instance returns the tight worst-case instance of Theorem 8 for
// 1 CPU + 1 GPU: two tasks X(p=phi, q=1) and Y(p=1, q=1/phi), both with
// acceleration factor phi. The instance order (Y before X) makes the
// stable HeteroPrio queue give Y to the GPU and X to the CPU, reaching
// makespan phi while the optimum is 1.
func Theorem8Instance() (platform.Instance, platform.Platform) {
	in := platform.Instance{
		taskWithAccelAtLeast("Y", 1, Phi),
		{Name: "X", CPUTime: Phi, GPUTime: 1}, // accel = Phi/1, exact
	}
	in.Renumber()
	return in, platform.NewPlatform(1, 1)
}

// Theorem11Instance returns the worst-case family of Theorem 11 for
// m CPUs + 1 GPU with filler granularity x/K (K filler tasks per worker).
// HeteroPrio reaches makespan x + phi with x = (m-1)/(m+phi), while the
// optimum is 1; the ratio tends to 1 + phi as m grows.
//
// Instance order matters: the stable queue must hold [T4..., T1, T2,
// T3...] so that the GPU consumes the T4 fillers then T1, while the CPUs
// consume T3 fillers from the back and then T2.
func Theorem11Instance(m, K int) (platform.Instance, platform.Platform) {
	if m < 2 || K < 1 {
		panic(fmt.Sprintf("workloads: Theorem11Instance(m=%d, K=%d) needs m >= 2, K >= 1", m, K))
	}
	x := float64(m-1) / (float64(m) + Phi)
	eps := x / float64(K)
	var in platform.Instance
	// T1: p=1, q=1/phi (rho = phi). T2 below has accel exactly Phi; the
	// queue order [T4..., T1, T2] requires accel(T4) >= accel(T1) >= Phi.
	t1 := taskWithAccelAtLeast("T1", 1, Phi)
	// T4: GPU fillers, rho = phi (K tasks, eps each -> GPU busy until x).
	t4 := taskWithAccelAtLeastQ("T4", eps, t1.Accel())
	for i := 0; i < K; i++ {
		in = append(in, t4)
	}
	in = append(in, t1)
	// T2: p=phi, q=1 (rho = phi); ends on a CPU, never profitably spoliated.
	in = append(in, platform.Task{Name: "T2", CPUTime: Phi, GPUTime: 1})
	// T3: CPU fillers, rho = 1 (m*K tasks -> every CPU busy until x).
	for i := 0; i < m*K; i++ {
		in = append(in, platform.Task{Name: "T3", CPUTime: eps, GPUTime: eps})
	}
	in.Renumber()
	return in, platform.NewPlatform(m, 1)
}

// Theorem11ExpectedMakespan returns the HeteroPrio makespan x + phi of the
// Theorem 11 instance (optimum 1).
func Theorem11ExpectedMakespan(m int) float64 {
	return float64(m-1)/(float64(m)+Phi) + Phi
}

// Theorem14R returns r(n), the positive root of n/r + 2n - 1 = n*r/3,
// i.e. n*r^2 - 3*(2n-1)*r - 3n = 0. It tends to 3 + 2*sqrt(3) as n grows.
func Theorem14R(n int) float64 {
	nn := float64(n)
	b := 3 * (2*nn - 1)
	return (b + math.Sqrt(b*b+12*nn*nn)) / (2 * nn)
}

// Theorem14T2GPUTimes returns the GPU durations of the Figure 4 task set
// T2 for n = 6k homogeneous processors, in the *bad list order*: first six
// tasks of length 2k+i for i = 0..k-1, then six of length 4k-1-i for
// i = 0..k-1, then the single task of length 6k. A list schedule consuming
// them in this order on n machines takes 2n-1, while an optimal packing
// takes n.
func Theorem14T2GPUTimes(k int) []float64 {
	if k < 1 {
		panic(fmt.Sprintf("workloads: Theorem14T2GPUTimes(k=%d) needs k >= 1", k))
	}
	var out []float64
	for i := 0; i < k; i++ {
		for c := 0; c < 6; c++ {
			out = append(out, float64(2*k+i))
		}
	}
	for i := 0; i < k; i++ {
		for c := 0; c < 6; c++ {
			out = append(out, float64(4*k-1-i))
		}
	}
	out = append(out, float64(6*k))
	return out
}

// Theorem14T2GoodPacking returns, for each of the n = 6k machines, the
// task lengths it executes in an optimal packing of the T2 set with
// makespan exactly n (the left schedule of Figure 4).
func Theorem14T2GoodPacking(k int) [][]float64 {
	if k < 1 {
		panic(fmt.Sprintf("workloads: Theorem14T2GoodPacking(k=%d) needs k >= 1", k))
	}
	var machines [][]float64
	// Pairs (2k+i, 4k-i) for i = 1..k-1, six of each.
	for i := 1; i < k; i++ {
		for c := 0; c < 6; c++ {
			machines = append(machines, []float64{float64(2*k + i), float64(4*k - i)})
		}
	}
	// Six tasks of length 3k pair among themselves on 3 machines.
	for c := 0; c < 3; c++ {
		machines = append(machines, []float64{float64(3 * k), float64(3 * k)})
	}
	// Six tasks of length 2k on two machines (three each), the 6k task on
	// the last machine.
	machines = append(machines,
		[]float64{float64(2 * k), float64(2 * k), float64(2 * k)},
		[]float64{float64(2 * k), float64(2 * k), float64(2 * k)},
		[]float64{float64(6 * k)},
	)
	return machines
}

// Theorem14Instance returns the worst-case family of Theorem 12/14 for
// n = 6k GPUs and m = n^2 CPUs, with filler granularity K. HeteroPrio can
// reach makespan x + n*r/3 with x = (m-n)*n/(m+n*r) while the optimum is
// n, so the ratio tends to 2 + 2/sqrt(3) ~ 3.15 as k grows.
//
// The instance relies on two tie-breaking levers of the implementation,
// both matching the paper's "the order can be arbitrary" argument:
// stable queue order for equal acceleration factors, and task-ID order for
// spoliation victims with equal completion times. T2 tasks are therefore
// created in the bad list order of Theorem14T2GPUTimes.
func Theorem14Instance(k, K int) (platform.Instance, platform.Platform) {
	if k < 1 || K < 1 {
		panic(fmt.Sprintf("workloads: Theorem14Instance(k=%d, K=%d) needs k, K >= 1", k, K))
	}
	n := 6 * k
	m := n * n
	r := Theorem14R(n)
	x := float64(m-n) * float64(n) / (float64(m) + float64(n)*r)
	eps := x / float64(K)
	var in platform.Instance
	// T1's acceleration factor is the canonical float value of the rho = r
	// tie shared by T4, T1 and the shortest T2 tasks; the queue order
	// [T4..., T1..., T2...] requires accel(T4) >= accel(T1) >= accel(T2).
	t1 := platform.Task{Name: "T1", CPUTime: float64(n), GPUTime: float64(n) / r}
	rr := t1.Accel()
	// T4: GPU fillers, rho = r (n*K tasks of GPU length exactly eps).
	t4 := taskWithAccelAtLeastQ("T4", eps, rr)
	for i := 0; i < n*K; i++ {
		in = append(in, t4)
	}
	// T1: n tasks, p = n, q = n/r (rho = r).
	for i := 0; i < n; i++ {
		in = append(in, t1)
	}
	// T2: CPU time r*n/3 (identical for all T2 so they complete
	// simultaneously on the CPUs), GPU times in the bad list order. The
	// shortest T2 (q = 2k) mathematically ties rho = r with T1/T4; nudge
	// the common CPU time down by ulps so its float acceleration factor
	// does not exceed the tie (it must not pass T1 in the queue).
	p2 := r * float64(n) / 3
	for p2/float64(2*k) > rr {
		p2 = math.Nextafter(p2, 0)
	}
	for _, q := range Theorem14T2GPUTimes(k) {
		in = append(in, platform.Task{Name: "T2", CPUTime: p2, GPUTime: q})
	}
	// T3: CPU fillers, rho = 1 (m*K tasks of length eps).
	for i := 0; i < m*K; i++ {
		in = append(in, platform.Task{Name: "T3", CPUTime: eps, GPUTime: eps})
	}
	in.Renumber()
	return in, platform.NewPlatform(m, n)
}

// Theorem14ExpectedMakespan returns the adversarial HeteroPrio makespan
// x + n*r/3 of the Theorem 14 instance (optimum n).
func Theorem14ExpectedMakespan(k int) float64 {
	n := 6 * k
	m := n * n
	r := Theorem14R(n)
	x := float64(m-n) * float64(n) / (float64(m) + float64(n)*r)
	return x + float64(n)*r/3
}

// Theorem14OptimalMakespan returns the optimal makespan n of the
// Theorem 14 instance.
func Theorem14OptimalMakespan(k int) float64 { return float64(6 * k) }

package expr

import (
	"fmt"

	"repro/internal/platform"
	"repro/internal/plot"
	"repro/internal/workloads"
)

// Fig6Charts returns one ratio-vs-N chart per kernel family (the three
// panels of Figure 6).
func Fig6Charts(rows []Fig6Row) map[string]*plot.Chart {
	charts := map[string]*plot.Chart{}
	for _, fact := range workloads.Factorizations() {
		c := &plot.Chart{
			Title:  fmt.Sprintf("Fig. 6 — %s, independent tasks", fact),
			XLabel: "number of tiles N",
			YLabel: "makespan / area bound",
		}
		for _, alg := range IndepAlgorithms() {
			s := plot.Series{Name: alg}
			for _, r := range rows {
				if r.Kernel != fact {
					continue
				}
				s.X = append(s.X, float64(r.N))
				s.Y = append(s.Y, r.Ratio[alg])
			}
			c.Series = append(c.Series, s)
		}
		charts["fig6_"+string(fact)] = c
	}
	return charts
}

// Fig7Charts returns one ratio-vs-N chart per kernel family (the three
// panels of Figure 7).
func Fig7Charts(rows []Fig7Row) map[string]*plot.Chart {
	charts := map[string]*plot.Chart{}
	for _, fact := range workloads.Factorizations() {
		c := &plot.Chart{
			Title:  fmt.Sprintf("Fig. 7 — %s DAG", fact),
			XLabel: "number of tiles N",
			YLabel: "makespan / lower bound",
		}
		for _, alg := range DAGAlgorithms() {
			s := plot.Series{Name: alg}
			for _, r := range rows {
				if r.Kernel != fact {
					continue
				}
				s.X = append(s.X, float64(r.N))
				s.Y = append(s.Y, r.Ratio[alg])
			}
			c.Series = append(c.Series, s)
		}
		charts["fig7_"+string(fact)] = c
	}
	return charts
}

// Fig8Charts returns one chart per kernel with the CPU-side equivalent
// acceleration factor of each algorithm (the paper's Figure 8 message).
func Fig8Charts(rows []Fig7Row) map[string]*plot.Chart {
	charts := map[string]*plot.Chart{}
	for _, fact := range workloads.Factorizations() {
		c := &plot.Chart{
			Title:  fmt.Sprintf("Fig. 8 — %s, CPU equivalent acceleration factor", fact),
			XLabel: "number of tiles N",
			YLabel: "equivalent accel of CPU tasks",
		}
		for _, alg := range DAGAlgorithms() {
			s := plot.Series{Name: alg}
			for _, r := range rows {
				if r.Kernel != fact {
					continue
				}
				s.X = append(s.X, float64(r.N))
				s.Y = append(s.Y, r.EquivAccel[alg][platform.CPU])
			}
			c.Series = append(c.Series, s)
		}
		charts["fig8_"+string(fact)] = c
	}
	return charts
}

// Fig9Charts returns one chart per kernel with the normalized CPU idle
// time of each algorithm (the paper's Figure 9 message).
func Fig9Charts(rows []Fig7Row) map[string]*plot.Chart {
	charts := map[string]*plot.Chart{}
	for _, fact := range workloads.Factorizations() {
		c := &plot.Chart{
			Title:  fmt.Sprintf("Fig. 9 — %s, normalized CPU idle time", fact),
			XLabel: "number of tiles N",
			YLabel: "idle time / lower-bound CPU usage",
		}
		for _, alg := range DAGAlgorithms() {
			s := plot.Series{Name: alg}
			for _, r := range rows {
				if r.Kernel != fact {
					continue
				}
				s.X = append(s.X, float64(r.N))
				s.Y = append(s.Y, r.NormIdle[alg][platform.CPU])
			}
			c.Series = append(c.Series, s)
		}
		charts["fig9_"+string(fact)] = c
	}
	return charts
}

package expr

import (
	"strings"
	"testing"
)

func TestTransferSweep(t *testing.T) {
	rows, err := Transfer(8, []float64{0, 1, 4}, PaperPlatform())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("%d rows, want 9", len(rows))
	}
	for _, r := range rows {
		if r.Delta == 0 && r.Inflation != 1 {
			t.Errorf("%s: zero-delta inflation %v != 1", r.Kernel, r.Inflation)
		}
		if r.Inflation < 0.9 || r.Inflation > 10 {
			t.Errorf("%s delta %v: inflation %v out of range", r.Kernel, r.Delta, r.Inflation)
		}
	}
	if md := TransferTable(rows).Markdown(); !strings.Contains(md, "inflation") {
		t.Error("table rendering")
	}
}

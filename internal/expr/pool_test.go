package expr

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/workloads"
)

// TestPoolDriversMatchSequential runs every pooled sweep driver at width
// 1 and width 8 and requires identical rows: the fan-out must be
// invisible in the output (the CI determinism job asserts the same at the
// cmd/experiments level, byte-for-byte on the CSV files).
func TestPoolDriversMatchSequential(t *testing.T) {
	ctx := context.Background()
	seq := engine.NewPool(1, nil)
	par := engine.NewPool(8, nil)
	pl := PaperPlatform()
	Ns := []int{4, 8}

	check := func(name string, run func(p *engine.Pool) (any, error)) {
		t.Helper()
		want, err := run(seq)
		if err != nil {
			t.Fatalf("%s sequential: %v", name, err)
		}
		got, err := run(par)
		if err != nil {
			t.Fatalf("%s parallel: %v", name, err)
		}
		// Compare formatted output rather than reflect.DeepEqual: some rows
		// legitimately contain NaN (unused resource classes), and NaN is not
		// DeepEqual to itself. fmt prints maps in sorted key order, so this
		// is still an exact structural comparison.
		if ws, gs := fmt.Sprintf("%+v", want), fmt.Sprintf("%+v", got); ws != gs {
			t.Errorf("%s: parallel rows differ from sequential rows\nseq: %s\npar: %s", name, ws, gs)
		}
	}

	check("fig6", func(p *engine.Pool) (any, error) { return Fig6Pool(ctx, p, Ns, pl) })
	check("fig7", func(p *engine.Pool) (any, error) { return Fig7Pool(ctx, p, Ns, pl) })
	check("ablation", func(p *engine.Pool) (any, error) { return AblationPool(ctx, p, []int{4}, pl) })
	check("boundscmp", func(p *engine.Pool) (any, error) { return BoundsCmpPool(ctx, p, []int{4}, pl) })
	check("kernelmix", func(p *engine.Pool) (any, error) {
		return KernelMixPool(ctx, p, workloads.FactCholesky, 8, pl)
	})
	check("distribution", func(p *engine.Pool) (any, error) {
		return DistributionPool(ctx, p, 24, 60, pl, 2017)
	})
	check("robustness", func(p *engine.Pool) (any, error) {
		return RobustnessPool(ctx, p, workloads.FactCholesky, 8, []float64{0, 0.2}, 3, pl)
	})
	check("adversary", func(p *engine.Pool) (any, error) { return AdversaryPool(ctx, p, 60, 7) })
	check("tournament", func(p *engine.Pool) (any, error) {
		return TournamentPool(ctx, p, QuickTournament())
	})
}

package expr

import (
	"strings"
	"testing"
)

func TestFigCharts(t *testing.T) {
	pl := PaperPlatform()
	rows6, err := Fig6([]int{4, 8}, pl)
	if err != nil {
		t.Fatal(err)
	}
	c6 := Fig6Charts(rows6)
	if len(c6) != 3 {
		t.Fatalf("fig6 charts = %d, want 3", len(c6))
	}
	for name, c := range c6 {
		svg := c.SVG(760, 420)
		if !strings.Contains(svg, "HeteroPrio") {
			t.Errorf("%s: missing series", name)
		}
	}

	rows7, err := Fig7([]int{4, 8}, pl)
	if err != nil {
		t.Fatal(err)
	}
	for setName, charts := range map[string]int{"7": 3, "8": 3, "9": 3} {
		var got int
		switch setName {
		case "7":
			got = len(Fig7Charts(rows7))
		case "8":
			got = len(Fig8Charts(rows7))
		case "9":
			got = len(Fig9Charts(rows7))
		}
		if got != charts {
			t.Errorf("fig%s charts = %d, want %d", setName, got, charts)
		}
	}
	svg := Fig7Charts(rows7)["fig7_cholesky"].SVG(760, 420)
	if !strings.Contains(svg, "DualHP-fifo") {
		t.Error("fig7 chart missing algorithm")
	}
}

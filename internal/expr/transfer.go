package expr

import (
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// TransferRow reports HeteroPrio-min's makespan inflation when cross-class
// data transfers cost delta: one row per (kernel, delta), relative to the
// zero-delay makespan. DeltaRel expresses delta as a fraction of the mean
// GPU kernel time, so rows are comparable across kernels.
type TransferRow struct {
	Kernel      workloads.Factorization
	N           int
	Delta       float64
	Makespan    float64
	Inflation   float64 // makespan / zero-delay makespan
	Spoliations int
}

// Transfer sweeps the transfer delay on the factorization DAGs. Deltas
// are absolute times in the timing model's unit (milliseconds).
func Transfer(N int, deltas []float64, pl platform.Platform) ([]TransferRow, error) {
	var rows []TransferRow
	for _, fact := range workloads.Factorizations() {
		var base float64
		for i, delta := range deltas {
			g, err := workloads.Build(fact, N)
			if err != nil {
				return nil, err
			}
			if _, err := g.AssignBottomLevelPriorities(dag.WeightMin, pl); err != nil {
				return nil, err
			}
			res, err := core.ScheduleDAG(g, pl, core.Options{UsePriorities: true, TransferDelay: delta})
			if err != nil {
				return nil, err
			}
			if err := res.Schedule.ValidateRelaxed(g.Tasks(), g); err != nil {
				return nil, err
			}
			if i == 0 {
				base = res.Makespan()
			}
			rows = append(rows, TransferRow{
				Kernel: fact, N: N, Delta: delta,
				Makespan:    res.Makespan(),
				Inflation:   res.Makespan() / base,
				Spoliations: res.Spoliations,
			})
		}
	}
	return rows, nil
}

// TransferTable renders the rows.
func TransferTable(rows []TransferRow) *stats.Table {
	t := &stats.Table{
		Title: "Transfer sweep — HeteroPrio-min under cross-class data-transfer delays " +
			"(inflation relative to the first delta of the sweep)",
		Columns: []string{"kernel", "N", "delta (ms)", "makespan (ms)", "inflation", "spoliations"},
	}
	for _, r := range rows {
		t.AddRow(string(r.Kernel), r.N, r.Delta, r.Makespan, r.Inflation, r.Spoliations)
	}
	return t
}

package expr

import (
	"context"
	"fmt"
	"math"

	"repro/internal/bounds"
	"repro/internal/engine"
	"repro/internal/platform"
	"repro/internal/plot"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// The tournament sweep (ROADMAP item 4, DESIGN.md §15) answers "who wins
// where": every independent-task scheduler — the paper's and the zoo's —
// runs on the same random instances across a grid of platform shapes
// (m CPUs × n GPUs) and acceleration-factor spreads (the sigma of the
// log-normal rho distribution), and each cell reports per-algorithm
// geometric-mean ratios to the lower bound plus win counts (an algorithm
// wins an instance when its makespan is within 1e-9 of the cell's best;
// ties award every co-winner). Cells are engine cells, so the CSV is
// byte-identical at any worker count — CI diffs 1 vs 8 workers.

// TournamentConfig parameterizes a tournament sweep.
type TournamentConfig struct {
	// Shapes is the platform grid (m CPUs × n GPUs per entry).
	Shapes []platform.Platform
	// Spreads lists the sigma values of the log-normal acceleration
	// factor distribution (mu is log 2, so the median rho is 2).
	Spreads []float64
	// Instances is the number of random instances per cell.
	Instances int
	// Tasks is the instance size.
	Tasks int
	// Seed is the base seed of the sweep.
	Seed int64
}

// DefaultTournament is the full grid: 6 shapes × 4 spreads × 10 instances
// of 120 tasks.
func DefaultTournament() TournamentConfig {
	return TournamentConfig{
		Shapes:    TournamentShapes(),
		Spreads:   TournamentSpreads(),
		Instances: 10,
		Tasks:     120,
		Seed:      20170529,
	}
}

// QuickTournament is the reduced grid used by -quick runs, CI determinism
// diffs and tests: 3 shapes × 3 spreads × 4 instances of 40 tasks.
func QuickTournament() TournamentConfig {
	return TournamentConfig{
		Shapes:    []platform.Platform{platform.NewPlatform(1, 1), platform.NewPlatform(4, 1), platform.NewPlatform(8, 2)},
		Spreads:   []float64{0.25, 1, 2},
		Instances: 4,
		Tasks:     40,
		Seed:      20170529,
	}
}

// TournamentShapes is the platform grid of the full tournament, from the
// paper's 20+4 node down to a symmetric 1+1.
func TournamentShapes() []platform.Platform {
	return []platform.Platform{
		platform.NewPlatform(1, 1),
		platform.NewPlatform(4, 1),
		platform.NewPlatform(8, 2),
		platform.NewPlatform(16, 4),
		platform.NewPlatform(20, 4),
		platform.NewPlatform(4, 4),
	}
}

// TournamentSpreads is the sigma grid of the full tournament: from nearly
// homogeneous acceleration factors to a heavy-tailed mix.
func TournamentSpreads() []float64 { return []float64{0.25, 0.5, 1, 2} }

// TournamentRow is one (shape, spread) cell of the sweep.
type TournamentRow struct {
	CPUs, GPUs int
	Spread     float64
	Tasks      int
	Instances  int
	// Ratio maps algorithm name to the geometric mean of makespan /
	// bounds.Lower over the cell's instances.
	Ratio map[string]float64
	// Wins maps algorithm name to the number of instances it won (ties
	// award every co-winner).
	Wins map[string]int
	// Best is the algorithm with the most wins, earliest catalog position
	// breaking ties.
	Best string
}

// Tournament runs the sweep on the default pool.
func Tournament(cfg TournamentConfig) ([]TournamentRow, error) {
	return TournamentPool(context.Background(), engine.Default(), cfg)
}

// TournamentPool is Tournament fanned out on p: one engine cell per
// (shape, spread) pair, with per-cell derived RNG seeds, so rows are
// byte-identical to a sequential run at any pool width.
func TournamentPool(ctx context.Context, p *engine.Pool, cfg TournamentConfig) ([]TournamentRow, error) {
	type cell struct {
		pl     platform.Platform
		spread float64
	}
	var cells []cell
	for _, pl := range cfg.Shapes {
		for _, sp := range cfg.Spreads {
			cells = append(cells, cell{pl, sp})
		}
	}
	algs := AllIndepAlgorithms()
	mu := math.Log(2)
	return engine.Map(ctx, p, engine.Job{Cells: len(cells), Seed: cfg.Seed}, func(_ context.Context, c engine.Cell) (TournamentRow, error) {
		pl, spread := cells[c.Index].pl, cells[c.Index].spread
		row := TournamentRow{
			CPUs: pl.CPUs, GPUs: pl.GPUs, Spread: spread,
			Tasks: cfg.Tasks, Instances: cfg.Instances,
			Ratio: map[string]float64{},
			Wins:  map[string]int{},
		}
		rng := c.Rand()
		logSum := make([]float64, len(algs))
		wins := make([]int, len(algs))
		for trial := 0; trial < cfg.Instances; trial++ {
			in := workloads.LogNormalAccelInstance(cfg.Tasks, mu, spread, rng)
			lower, err := bounds.Lower(in, pl)
			if err != nil {
				return TournamentRow{}, err
			}
			ms := make([]float64, len(algs))
			best := math.Inf(1)
			for i, alg := range algs {
				s, err := RunIndependent(alg, in, pl)
				if err != nil {
					return TournamentRow{}, fmt.Errorf("tournament %s on %s: %w", alg, pl, err)
				}
				if err := s.Validate(in, nil); err != nil {
					return TournamentRow{}, fmt.Errorf("tournament %s on %s: %w", alg, pl, err)
				}
				ms[i] = s.Makespan()
				best = math.Min(best, ms[i])
			}
			for i := range algs {
				logSum[i] += math.Log(ms[i] / lower)
				if ms[i] <= best*(1+1e-9) {
					wins[i]++
				}
			}
		}
		bestAlg, bestWins := "", -1
		for i, alg := range algs {
			row.Ratio[alg] = math.Exp(logSum[i] / float64(cfg.Instances))
			row.Wins[alg] = wins[i]
			if wins[i] > bestWins {
				bestAlg, bestWins = alg, wins[i]
			}
		}
		row.Best = bestAlg
		return row, nil
	})
}

// TournamentTable renders the per-cell geometric-mean ratios, one column
// per algorithm.
func TournamentTable(rows []TournamentRow) *stats.Table {
	t := &stats.Table{
		Title:   "Tournament — geomean makespan / lower bound per (platform, rho spread) cell",
		Columns: append([]string{"cpus", "gpus", "sigma", "tasks", "instances"}, AllIndepAlgorithms()...),
	}
	for _, r := range rows {
		vals := []interface{}{r.CPUs, r.GPUs, r.Spread, r.Tasks, r.Instances}
		for _, alg := range AllIndepAlgorithms() {
			vals = append(vals, r.Ratio[alg])
		}
		t.AddRow(vals...)
	}
	return t
}

// TournamentWinsTable renders the win counts and each cell's overall
// winner.
func TournamentWinsTable(rows []TournamentRow) *stats.Table {
	t := &stats.Table{
		Title:   "Tournament — wins per cell (ties award every co-winner)",
		Columns: append(append([]string{"cpus", "gpus", "sigma"}, AllIndepAlgorithms()...), "best"),
	}
	for _, r := range rows {
		vals := []interface{}{r.CPUs, r.GPUs, r.Spread}
		for _, alg := range AllIndepAlgorithms() {
			vals = append(vals, r.Wins[alg])
		}
		vals = append(vals, r.Best)
		t.AddRow(vals...)
	}
	return t
}

// TournamentCharts returns one ratio-vs-spread chart per platform shape.
func TournamentCharts(rows []TournamentRow) map[string]*plot.Chart {
	charts := map[string]*plot.Chart{}
	for _, r := range rows {
		name := fmt.Sprintf("tournament_%dc%dg", r.CPUs, r.GPUs)
		c, ok := charts[name]
		if !ok {
			c = &plot.Chart{
				Title:  fmt.Sprintf("Tournament — %d CPUs + %d GPUs", r.CPUs, r.GPUs),
				XLabel: "rho spread (log-normal sigma)",
				YLabel: "geomean makespan / lower bound",
			}
			for _, alg := range AllIndepAlgorithms() {
				c.Series = append(c.Series, plot.Series{Name: alg})
			}
			charts[name] = c
		}
		for i, alg := range AllIndepAlgorithms() {
			c.Series[i].X = append(c.Series[i].X, r.Spread)
			c.Series[i].Y = append(c.Series[i].Y, r.Ratio[alg])
		}
	}
	return charts
}

package expr

import (
	"context"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/engine"
	"repro/internal/platform"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// BoundsCmpRow compares the lower-bound variants on one DAG workload,
// together with the best heuristic makespan (HeteroPrio-min) so the
// remaining gap is visible.
type BoundsCmpRow struct {
	Kernel workloads.Factorization
	N      int
	// Area is the plain divisible-load bound, CP the min-duration critical
	// path, Base their max (the Figure 7 baseline), Refined the
	// dependency-restricted sweep, HP the HeteroPrio-min makespan.
	Area, CP, Base, Refined, HP float64
}

// BoundsCmp computes the rows for every factorization at the given tile
// counts.
func BoundsCmp(Ns []int, pl platform.Platform) ([]BoundsCmpRow, error) {
	return BoundsCmpPool(context.Background(), engine.Default(), Ns, pl)
}

// BoundsCmpPool is BoundsCmp fanned out on p: one cell per (kernel, tile
// count) pair. The refined sweep is the most expensive bound and gains
// the most from the fan-out.
func BoundsCmpPool(ctx context.Context, p *engine.Pool, Ns []int, pl platform.Platform) ([]BoundsCmpRow, error) {
	cells := factorizationCells(Ns)
	return engine.Map(ctx, p, engine.Job{Cells: len(cells)}, func(_ context.Context, c engine.Cell) (BoundsCmpRow, error) {
		fact, N := cells[c.Index].fact, cells[c.Index].n
		g, err := workloads.Build(fact, N)
		if err != nil {
			return BoundsCmpRow{}, err
		}
		area, err := bounds.AreaBound(g.Tasks(), pl)
		if err != nil {
			return BoundsCmpRow{}, err
		}
		cp, err := g.CriticalPath(dag.WeightMin, pl)
		if err != nil {
			return BoundsCmpRow{}, err
		}
		base, err := bounds.DAGLower(g, pl)
		if err != nil {
			return BoundsCmpRow{}, err
		}
		refined, err := bounds.DAGLowerRefined(g, pl)
		if err != nil {
			return BoundsCmpRow{}, err
		}
		if _, err := g.AssignBottomLevelPriorities(dag.WeightMin, pl); err != nil {
			return BoundsCmpRow{}, err
		}
		res, err := core.ScheduleDAG(g, pl, core.Options{UsePriorities: true})
		if err != nil {
			return BoundsCmpRow{}, err
		}
		return BoundsCmpRow{
			Kernel: fact, N: N,
			Area: area, CP: cp, Base: base, Refined: refined,
			HP: res.Makespan(),
		}, nil
	})
}

// BoundsCmpTable renders the rows.
func BoundsCmpTable(rows []BoundsCmpRow) *stats.Table {
	t := &stats.Table{
		Title: "Lower bounds — area vs critical path vs refined sweep, against the HeteroPrio-min makespan",
		Columns: []string{"kernel", "N", "area", "critical path", "base = max",
			"refined sweep", "HeteroPrio-min", "gap base", "gap refined"},
	}
	for _, r := range rows {
		t.AddRow(string(r.Kernel), r.N, r.Area, r.CP, r.Base, r.Refined, r.HP,
			r.HP/r.Base, r.HP/r.Refined)
	}
	return t
}

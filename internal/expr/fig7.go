package expr

import (
	"context"

	"repro/internal/bounds"
	"repro/internal/engine"
	"repro/internal/platform"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Fig7Row is one point of Figures 7, 8 and 9: one kernel family, one tile
// count, and per-algorithm metrics of the produced schedule.
type Fig7Row struct {
	Kernel workloads.Factorization
	N      int
	Tasks  int
	// Lower is the DAG-aware lower bound (area bound + critical path).
	Lower float64
	// Ratio maps algorithm to makespan / Lower (Figure 7).
	Ratio map[string]float64
	// EquivAccel maps algorithm to the equivalent acceleration factor of
	// the tasks executed on each class (Figure 8).
	EquivAccel map[string]map[platform.Kind]float64
	// NormIdle maps algorithm to the normalized idle time per class
	// (Figure 9): idle time (aborted work counts as idle) divided by the
	// class usage in the area-bound solution.
	NormIdle map[string]map[platform.Kind]float64
}

// Fig7 reproduces Figures 7-9 ("Results for different DAGs", "Equivalent
// acceleration factors", "Normalized idle time"): the seven algorithms on
// Cholesky/QR/LU task graphs.
func Fig7(Ns []int, pl platform.Platform) ([]Fig7Row, error) {
	return Fig7Pool(context.Background(), engine.Default(), Ns, pl)
}

// Fig7Pool is Fig7 fanned out on p: one cell per (kernel, tile count)
// pair, each building its own graph so cells share no mutable state.
func Fig7Pool(ctx context.Context, p *engine.Pool, Ns []int, pl platform.Platform) ([]Fig7Row, error) {
	cells := factorizationCells(Ns)
	return engine.Map(ctx, p, engine.Job{Cells: len(cells)}, func(_ context.Context, c engine.Cell) (Fig7Row, error) {
		fact, N := cells[c.Index].fact, cells[c.Index].n
		g, err := workloads.Build(fact, N)
		if err != nil {
			return Fig7Row{}, err
		}
		lb, err := bounds.DAGLower(g, pl)
		if err != nil {
			return Fig7Row{}, err
		}
		area, err := bounds.Area(g.Tasks(), pl)
		if err != nil {
			return Fig7Row{}, err
		}
		// Class usage in the lower-bound solution, the Figure 9
		// normalizer.
		usage := map[platform.Kind]float64{}
		for _, t := range g.Tasks() {
			x := area.CPUFraction[t.ID]
			usage[platform.CPU] += x * t.CPUTime
			usage[platform.GPU] += (1 - x) * t.GPUTime
		}
		row := Fig7Row{
			Kernel:     fact,
			N:          N,
			Tasks:      g.Len(),
			Lower:      lb,
			Ratio:      map[string]float64{},
			EquivAccel: map[string]map[platform.Kind]float64{},
			NormIdle:   map[string]map[platform.Kind]float64{},
		}
		for _, alg := range DAGAlgorithms() {
			s, err := RunDAG(alg, g, pl)
			if err != nil {
				return Fig7Row{}, err
			}
			if err := s.Validate(g.Tasks(), g); err != nil {
				return Fig7Row{}, err
			}
			row.Ratio[alg] = s.Makespan() / lb
			row.EquivAccel[alg] = map[platform.Kind]float64{
				platform.CPU: s.EquivalentAccel(g.Tasks(), platform.CPU),
				platform.GPU: s.EquivalentAccel(g.Tasks(), platform.GPU),
			}
			row.NormIdle[alg] = map[platform.Kind]float64{
				platform.CPU: s.NormalizedIdleTime(platform.CPU, usage[platform.CPU]),
				platform.GPU: s.NormalizedIdleTime(platform.GPU, usage[platform.GPU]),
			}
		}
		return row, nil
	})
}

// Fig7Table renders the makespan ratios (Figure 7).
func Fig7Table(rows []Fig7Row) *stats.Table {
	t := &stats.Table{
		Title:   "Figure 7 — DAGs, ratio to the dependency-aware lower bound",
		Columns: append([]string{"kernel", "N", "tasks", "lower bound (ms)"}, DAGAlgorithms()...),
	}
	for _, r := range rows {
		vals := []interface{}{string(r.Kernel), r.N, r.Tasks, r.Lower}
		for _, alg := range DAGAlgorithms() {
			vals = append(vals, r.Ratio[alg])
		}
		t.AddRow(vals...)
	}
	return t
}

// Fig8Table renders the equivalent acceleration factors (Figure 8).
func Fig8Table(rows []Fig7Row) *stats.Table {
	cols := []string{"kernel", "N"}
	for _, alg := range DAGAlgorithms() {
		cols = append(cols, alg+" CPU", alg+" GPU")
	}
	t := &stats.Table{
		Title:   "Figure 8 — equivalent acceleration factor of the tasks executed on each class",
		Columns: cols,
	}
	for _, r := range rows {
		vals := []interface{}{string(r.Kernel), r.N}
		for _, alg := range DAGAlgorithms() {
			vals = append(vals, r.EquivAccel[alg][platform.CPU], r.EquivAccel[alg][platform.GPU])
		}
		t.AddRow(vals...)
	}
	return t
}

// Fig9Table renders the normalized idle times (Figure 9).
func Fig9Table(rows []Fig7Row) *stats.Table {
	cols := []string{"kernel", "N"}
	for _, alg := range DAGAlgorithms() {
		cols = append(cols, alg+" CPU", alg+" GPU")
	}
	t := &stats.Table{
		Title:   "Figure 9 — normalized idle time per class (aborted work counts as idle)",
		Columns: cols,
	}
	for _, r := range rows {
		vals := []interface{}{string(r.Kernel), r.N}
		for _, alg := range DAGAlgorithms() {
			vals = append(vals, r.NormIdle[alg][platform.CPU], r.NormIdle[alg][platform.GPU])
		}
		t.AddRow(vals...)
	}
	return t
}

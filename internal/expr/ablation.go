package expr

import (
	"context"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/engine"
	"repro/internal/platform"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// AblationRow compares HeteroPrio design choices on one DAG workload:
// the full algorithm, the algorithm without spoliation, and the algorithm
// without priority tie-breaking. Ratios are to the DAG lower bound.
type AblationRow struct {
	Kernel workloads.Factorization
	N      int
	// Full is HeteroPrio with min priorities and spoliation.
	Full float64
	// NoSpoliation disables the spoliation mechanism.
	NoSpoliation float64
	// NoPriorities keeps spoliation but drops the tie-breaking scheme.
	NoPriorities float64
	// Spoliations is the number of aborted runs in the full algorithm.
	Spoliations int
}

// Ablation quantifies the contribution of spoliation and priorities to
// HeteroPrio's DAG performance (the design choices DESIGN.md calls out).
func Ablation(Ns []int, pl platform.Platform) ([]AblationRow, error) {
	return AblationPool(context.Background(), engine.Default(), Ns, pl)
}

// AblationPool is Ablation fanned out on p: one cell per (kernel, tile
// count) pair, running the three scheduler variants back to back on its
// own graph.
func AblationPool(ctx context.Context, p *engine.Pool, Ns []int, pl platform.Platform) ([]AblationRow, error) {
	cells := factorizationCells(Ns)
	return engine.Map(ctx, p, engine.Job{Cells: len(cells)}, func(_ context.Context, c engine.Cell) (AblationRow, error) {
		fact, N := cells[c.Index].fact, cells[c.Index].n
		g, err := workloads.Build(fact, N)
		if err != nil {
			return AblationRow{}, err
		}
		lb, err := bounds.DAGLower(g, pl)
		if err != nil {
			return AblationRow{}, err
		}
		if _, err := g.AssignBottomLevelPriorities(dag.WeightMin, pl); err != nil {
			return AblationRow{}, err
		}
		full, err := core.ScheduleDAG(g, pl, core.Options{UsePriorities: true})
		if err != nil {
			return AblationRow{}, err
		}
		noSpol, err := core.ScheduleDAG(g, pl, core.Options{UsePriorities: true, DisableSpoliation: true})
		if err != nil {
			return AblationRow{}, err
		}
		noPrio, err := core.ScheduleDAG(g, pl, core.Options{})
		if err != nil {
			return AblationRow{}, err
		}
		return AblationRow{
			Kernel:       fact,
			N:            N,
			Full:         full.Makespan() / lb,
			NoSpoliation: noSpol.Makespan() / lb,
			NoPriorities: noPrio.Makespan() / lb,
			Spoliations:  full.Spoliations,
		}, nil
	})
}

// AblationTable renders the ablation rows.
func AblationTable(rows []AblationRow) *stats.Table {
	t := &stats.Table{
		Title: "Ablation — HeteroPrio design choices (ratio to DAG lower bound)",
		Columns: []string{"kernel", "N", "full (min prio + spoliation)",
			"no spoliation", "no priorities", "spoliations"},
	}
	for _, r := range rows {
		t.AddRow(string(r.Kernel), r.N, r.Full, r.NoSpoliation, r.NoPriorities, r.Spoliations)
	}
	return t
}

package expr

import (
	"context"

	"repro/internal/bounds"
	"repro/internal/engine"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// DistributionRow summarizes the ratio-to-lower-bound distribution of one
// algorithm over many random independent instances: typical behaviour
// (median), tail (p90/p99) and the worst draw. It quantifies the distance
// between the proven worst cases (Table 2) and what random instances
// actually exhibit.
type DistributionRow struct {
	Algorithm string
	Samples   int
	P50       float64
	P90       float64
	P99       float64
	Max       float64
}

// DistributionAlgorithms lists the schedulers of the distribution study.
func DistributionAlgorithms() []string {
	return []string{"HeteroPrio", "DualHP", "HEFT", "MCT"}
}

// Distribution draws `samples` random bimodal instances (the dense
// linear-algebra-like affinity mix) of `tasks` tasks on pl and summarizes
// each algorithm's ratio to the combined lower bound.
func Distribution(samples, tasks int, pl platform.Platform, seed int64) ([]DistributionRow, error) {
	return DistributionPool(context.Background(), engine.Default(), samples, tasks, pl, seed)
}

// DistributionPool is Distribution fanned out on p: one cell per sample.
// Each cell derives its own RNG from (seed, sample index) — the earlier
// sequential version threaded one shared source through every sample,
// which would have made the draws depend on execution order.
func DistributionPool(ctx context.Context, p *engine.Pool, samples, tasks int, pl platform.Platform, seed int64) ([]DistributionRow, error) {
	perSample, err := engine.Map(ctx, p, engine.Job{Cells: samples, Seed: seed}, func(_ context.Context, c engine.Cell) (map[string]float64, error) {
		rng := c.Rand()
		in := workloads.BimodalInstance(tasks, 0.6+0.3*rng.Float64(), rng)
		lb, err := bounds.Lower(in, pl)
		if err != nil {
			return nil, err
		}
		out := map[string]float64{}
		for _, alg := range DistributionAlgorithms() {
			var ms float64
			if alg == "MCT" {
				s, err := sched.MCTIndependent(in, pl)
				if err != nil {
					return nil, err
				}
				ms = s.Makespan()
			} else {
				s, err := RunIndependent(alg, in, pl)
				if err != nil {
					return nil, err
				}
				ms = s.Makespan()
			}
			out[alg] = ms / lb
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	ratios := map[string][]float64{}
	for _, sample := range perSample {
		for _, alg := range DistributionAlgorithms() {
			ratios[alg] = append(ratios[alg], sample[alg])
		}
	}
	var rows []DistributionRow
	for _, alg := range DistributionAlgorithms() {
		xs := ratios[alg]
		rows = append(rows, DistributionRow{
			Algorithm: alg,
			Samples:   len(xs),
			P50:       stats.Quantile(xs, 0.5),
			P90:       stats.Quantile(xs, 0.9),
			P99:       stats.Quantile(xs, 0.99),
			Max:       stats.Max(xs),
		})
	}
	return rows, nil
}

// DistributionTable renders the rows.
func DistributionTable(rows []DistributionRow) *stats.Table {
	t := &stats.Table{
		Title:   "Ratio distribution — random bimodal instances, ratio to the lower bound",
		Columns: []string{"algorithm", "samples", "p50", "p90", "p99", "max"},
	}
	for _, r := range rows {
		t.AddRow(r.Algorithm, r.Samples, r.P50, r.P90, r.P99, r.Max)
	}
	return t
}

package expr

import (
	"context"

	"repro/internal/bounds"
	"repro/internal/engine"
	"repro/internal/platform"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Fig6Row is one point of Figure 6: one kernel family, one tile count, the
// area bound and each algorithm's ratio to it.
type Fig6Row struct {
	Kernel    workloads.Factorization
	N         int
	Tasks     int
	AreaBound float64
	// Ratio maps algorithm name to makespan / area bound.
	Ratio map[string]float64
}

// Fig6 reproduces Figure 6 ("Results for independent tasks"): for each
// factorization kernel family and tile count, the kernel instances are
// scheduled as independent tasks by HeteroPrio, DualHP and HEFT, and
// compared against the area bound.
func Fig6(Ns []int, pl platform.Platform) ([]Fig6Row, error) {
	return Fig6Pool(context.Background(), engine.Default(), Ns, pl)
}

// Fig6Pool is Fig6 fanned out on p: one cell per (kernel, tile count)
// pair. Cells are pure functions of their pair, so rows come back in the
// sequential loop's order whatever the pool width.
func Fig6Pool(ctx context.Context, p *engine.Pool, Ns []int, pl platform.Platform) ([]Fig6Row, error) {
	cells := factorizationCells(Ns)
	return engine.Map(ctx, p, engine.Job{Cells: len(cells)}, func(_ context.Context, c engine.Cell) (Fig6Row, error) {
		fact, N := cells[c.Index].fact, cells[c.Index].n
		in, err := workloads.IndependentTasks(fact, N)
		if err != nil {
			return Fig6Row{}, err
		}
		lb, err := bounds.AreaBound(in, pl)
		if err != nil {
			return Fig6Row{}, err
		}
		row := Fig6Row{
			Kernel:    fact,
			N:         N,
			Tasks:     len(in),
			AreaBound: lb,
			Ratio:     map[string]float64{},
		}
		for _, alg := range IndepAlgorithms() {
			s, err := RunIndependent(alg, in, pl)
			if err != nil {
				return Fig6Row{}, err
			}
			if err := s.Validate(in, nil); err != nil {
				return Fig6Row{}, err
			}
			row.Ratio[alg] = s.Makespan() / lb
		}
		return row, nil
	})
}

// Fig6Table renders the rows as a table with one column per algorithm.
func Fig6Table(rows []Fig6Row) *stats.Table {
	t := &stats.Table{
		Title:   "Figure 6 — independent tasks, ratio to area bound (platform 20 CPUs + 4 GPUs)",
		Columns: append([]string{"kernel", "N", "tasks", "area bound (ms)"}, IndepAlgorithms()...),
	}
	for _, r := range rows {
		vals := []interface{}{string(r.Kernel), r.N, r.Tasks, r.AreaBound}
		for _, alg := range IndepAlgorithms() {
			vals = append(vals, r.Ratio[alg])
		}
		t.AddRow(vals...)
	}
	return t
}

package expr

import (
	"math"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// ShapeRow is one platform shape of the shape study: HeteroPrio's ratio
// to the area bound on a fixed independent workload, as the CPU/GPU mix
// varies. It connects the theory (the proven bound depends on the shape:
// phi for (1,1), 1+phi for (m,1), 2+sqrt(2) for (m,n)) to typical
// behaviour.
type ShapeRow struct {
	CPUs, GPUs int
	Bound      float64 // proven approximation bound for this shape
	Ratio      float64 // HeteroPrio makespan / area bound
	Spoliated  int
}

// Shape runs HeteroPrio on the Cholesky-kernel independent instance with
// the given tile count over a sweep of platform shapes.
func Shape(N int, shapes [][2]int) ([]ShapeRow, error) {
	in, err := workloads.IndependentTasks(workloads.FactCholesky, N)
	if err != nil {
		return nil, err
	}
	var rows []ShapeRow
	for _, sh := range shapes {
		pl := platform.NewPlatform(sh[0], sh[1])
		res, err := core.ScheduleIndependent(in, pl, core.Options{})
		if err != nil {
			return nil, err
		}
		lb, err := bounds.Lower(in, pl)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ShapeRow{
			CPUs: sh[0], GPUs: sh[1],
			Bound:     provenBound(pl),
			Ratio:     res.Makespan() / lb,
			Spoliated: res.Spoliations,
		})
	}
	return rows, nil
}

// provenBound returns the Table 2 approximation bound for a shape.
func provenBound(pl platform.Platform) float64 {
	switch {
	case pl.CPUs == 1 && pl.GPUs == 1:
		return workloads.Phi
	case pl.GPUs == 1:
		return 1 + workloads.Phi
	default:
		return 2 + math.Sqrt2
	}
}

// ShapeTable renders the rows.
func ShapeTable(rows []ShapeRow) *stats.Table {
	t := &stats.Table{
		Title:   "Shape study — HeteroPrio ratio to the area bound across platform shapes (Cholesky kernels as independent tasks)",
		Columns: []string{"CPUs", "GPUs", "proven bound", "observed ratio", "spoliations"},
	}
	for _, r := range rows {
		t.AddRow(r.CPUs, r.GPUs, r.Bound, r.Ratio, r.Spoliated)
	}
	return t
}

// DefaultShapes returns the sweep used by cmd/experiments.
func DefaultShapes() [][2]int {
	return [][2]int{
		{1, 1}, {4, 1}, {20, 1}, {4, 2}, {10, 2}, {20, 4}, {40, 4}, {20, 8},
	}
}

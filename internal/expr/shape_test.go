package expr

import (
	"strings"
	"testing"
)

func TestShapeStudy(t *testing.T) {
	rows, err := Shape(8, DefaultShapes())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(DefaultShapes()) {
		t.Fatalf("%d rows, want %d", len(rows), len(DefaultShapes()))
	}
	for _, r := range rows {
		if r.Ratio < 1-1e-9 {
			t.Errorf("(%d,%d): ratio %v below 1", r.CPUs, r.GPUs, r.Ratio)
		}
		// The area bound underestimates the optimum, so the ratio to it can
		// exceed the proven optimum-relative bound only moderately; a blow-up
		// would indicate a regression.
		if r.Ratio > r.Bound+1 {
			t.Errorf("(%d,%d): ratio %v far above bound %v", r.CPUs, r.GPUs, r.Ratio, r.Bound)
		}
	}
	if md := ShapeTable(rows).Markdown(); !strings.Contains(md, "proven bound") {
		t.Errorf("table rendering:\n%s", md)
	}
}

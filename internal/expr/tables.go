package expr

import (
	"math"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Table1Table renders Table 1 of the paper: acceleration factors of the
// Cholesky kernels in the timing model (exactly the paper's values).
func Table1Table() *stats.Table {
	t := &stats.Table{
		Title:   "Table 1 — acceleration factors for Cholesky kernels (tile size 960)",
		Columns: []string{"kernel", "CPU time (ms)", "GPU time (ms)", "GPU / 1 core"},
	}
	for _, k := range workloads.CholeskyKernels() {
		t.AddRow(k.Name, k.CPUTime, k.GPUTime, k.Accel())
	}
	return t
}

// Table2Row is one platform shape of Table 2: the proven approximation
// ratio, the worst-case example's theoretical ratio, and the ratio this
// implementation actually achieves on the adversarial instance.
type Table2Row struct {
	Shape       string
	Bound       float64
	WorstCaseEx float64
	Achieved    float64
}

// Table2 verifies Table 2 of the paper by running HeteroPrio on the
// adversarial instances of Theorems 8, 11 (m = 40) and 14 (k = 2) and
// reporting the achieved ratio against the known optimal makespan.
func Table2() ([]Table2Row, error) {
	phi := workloads.Phi
	var rows []Table2Row

	// (1, 1): Theorem 8, optimum 1.
	{
		in, pl := workloads.Theorem8Instance()
		res, err := core.ScheduleIndependent(in, pl, core.Options{})
		if err != nil {
			return nil, err
		}
		opt, err := sched.OptimalIndependent(in, pl)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table2Row{
			Shape:       "(1,1)",
			Bound:       phi,
			WorstCaseEx: phi,
			Achieved:    res.Makespan() / opt,
		})
	}

	// (m, 1): Theorem 11 with m = 40, optimum 1.
	{
		m := 40
		in, pl := workloads.Theorem11Instance(m, 4)
		res, err := core.ScheduleIndependent(in, pl, core.Options{})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table2Row{
			Shape:       "(m,1)",
			Bound:       1 + phi,
			WorstCaseEx: 1 + phi,
			Achieved:    res.Makespan() / 1.0,
		})
	}

	// (m, n): Theorem 14 with k = 2, optimum n = 12.
	{
		k := 2
		in, pl := workloads.Theorem14Instance(k, 4)
		res, err := core.ScheduleIndependent(in, pl, core.Options{})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table2Row{
			Shape:       "(m,n)",
			Bound:       2 + math.Sqrt2,
			WorstCaseEx: 2 + 2/math.Sqrt(3),
			Achieved:    res.Makespan() / workloads.Theorem14OptimalMakespan(k),
		})
	}
	return rows, nil
}

// Table2Table renders Table 2 rows.
func Table2Table(rows []Table2Row) *stats.Table {
	t := &stats.Table{
		Title: "Table 2 — approximation ratios: proven bound, worst-case example, and the " +
			"ratio achieved by this implementation on the adversarial instance",
		Columns: []string{"(#CPUs,#GPUs)", "proven ratio", "worst case ex.", "achieved here"},
	}
	for _, r := range rows {
		t.AddRow(r.Shape, r.Bound, r.WorstCaseEx, r.Achieved)
	}
	return t
}

// Package expr implements the paper's evaluation harness: one experiment
// per table and figure of Section 6, each returning typed rows and
// rendering to Markdown/CSV. The experiments run entirely on the simulated
// platform (see DESIGN.md for the substitutions).
package expr

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// factCell is one (kernel family, tile count) cell of a sweep fan-out.
type factCell struct {
	fact workloads.Factorization
	n    int
}

// factorizationCells flattens the kernel × tile-count grid in the order
// the sequential loops used, so ordered reduction reproduces their rows.
func factorizationCells(Ns []int) []factCell {
	var cells []factCell
	for _, fact := range workloads.Factorizations() {
		for _, n := range Ns {
			cells = append(cells, factCell{fact, n})
		}
	}
	return cells
}

// PaperPlatform returns the evaluation platform of Section 6: 20 CPU cores
// and 4 GPUs.
func PaperPlatform() platform.Platform { return platform.NewPlatform(20, 4) }

// PaperNs returns the tile-count sweep of the paper (N from 4 to 64).
func PaperNs() []int { return []int{4, 8, 12, 16, 20, 24, 28, 32, 40, 48, 56, 64} }

// SmallNs returns a reduced sweep for quick runs (tests, benchmarks).
func SmallNs() []int { return []int{4, 8, 12, 16} }

// IndepAlgorithms lists the independent-task schedulers of Figure 6.
func IndepAlgorithms() []string { return []string{"HeteroPrio", "DualHP", "HEFT"} }

// ZooIndepAlgorithms lists the related-work competitors (DESIGN.md §15).
// They are kept out of IndepAlgorithms so the paper figures keep their
// original algorithm set (and their sweep cost: HLP solves an LP per
// instance).
func ZooIndepAlgorithms() []string {
	return []string{"ERLS", "HLP", "CLB2C", "PriorityAware", "Affinity"}
}

// AllIndepAlgorithms lists every independent-task scheduler: the paper's
// plus the zoo. This is the set hpsched's -alg all and the tournament
// sweep use.
func AllIndepAlgorithms() []string {
	return append(IndepAlgorithms(), ZooIndepAlgorithms()...)
}

// RunIndependent executes the named independent-task scheduler.
func RunIndependent(name string, in platform.Instance, pl platform.Platform) (*sim.Schedule, error) {
	return RunIndependentObserved(name, in, pl, nil)
}

// RunIndependentObserved is RunIndependent with a live Observer attached.
// Only the HeteroPrio event loop emits events; the comparison schedulers
// (DualHP, HEFT) run unobserved and their metrics are derived post hoc
// from the returned schedule.
func RunIndependentObserved(name string, in platform.Instance, pl platform.Platform, o obs.Observer) (*sim.Schedule, error) {
	switch name {
	case "HeteroPrio":
		res, err := core.ScheduleIndependent(in, pl, core.Options{Observer: o})
		if err != nil {
			return nil, err
		}
		return res.Schedule, nil
	case "DualHP":
		return sched.DualHPIndependent(in, pl)
	case "HEFT":
		return sched.HEFTIndependent(in, pl, dag.WeightAvg)
	case "ERLS":
		return sched.ERLSIndependent(in, pl)
	case "HLP":
		return sched.HLPIndependent(in, pl)
	case "CLB2C":
		return sched.CLB2CIndependent(in, pl)
	case "PriorityAware":
		return sched.PriorityAwareIndependent(in, pl)
	case "Affinity":
		return sched.AffinityIndependent(in, pl)
	default:
		return nil, fmt.Errorf("expr: unknown independent algorithm %q", name)
	}
}

// DAGAlgorithms lists the seven DAG schedulers of Figure 7, in the paper's
// grouping: HeteroPrio, DualHP and HEFT with their ranking schemes.
func DAGAlgorithms() []string {
	return []string{
		"HeteroPrio-min", "HeteroPrio-avg",
		"DualHP-min", "DualHP-avg", "DualHP-fifo",
		"HEFT-min", "HEFT-avg",
	}
}

// ZooDAGAlgorithms lists the DAG entry points of the zoo competitors.
func ZooDAGAlgorithms() []string {
	return []string{
		"ERLS-min", "ERLS-avg",
		"HLP-min",
		"CLB2C",
		"PriorityAware-min",
		"Affinity",
	}
}

// AllDAGAlgorithms lists every DAG scheduler: the paper's plus the zoo.
func AllDAGAlgorithms() []string {
	return append(DAGAlgorithms(), ZooDAGAlgorithms()...)
}

// RunDAG executes the named DAG scheduler on a copy of the graph's
// priority state (bottom levels are reassigned per the algorithm's
// scheme).
func RunDAG(name string, g *dag.Graph, pl platform.Platform) (*sim.Schedule, error) {
	return RunDAGObserved(name, g, pl, nil)
}

// RunDAGObserved is RunDAG with a live Observer attached. Only the
// HeteroPrio event loop emits events; the comparison schedulers run
// unobserved and their metrics are derived post hoc from the returned
// schedule.
func RunDAGObserved(name string, g *dag.Graph, pl platform.Platform, o obs.Observer) (*sim.Schedule, error) {
	switch name {
	case "HeteroPrio-min":
		if _, err := g.AssignBottomLevelPriorities(dag.WeightMin, pl); err != nil {
			return nil, err
		}
		res, err := core.ScheduleDAG(g, pl, core.Options{UsePriorities: true, Observer: o})
		if err != nil {
			return nil, err
		}
		return res.Schedule, nil
	case "HeteroPrio-avg":
		if _, err := g.AssignBottomLevelPriorities(dag.WeightAvg, pl); err != nil {
			return nil, err
		}
		res, err := core.ScheduleDAG(g, pl, core.Options{UsePriorities: true, Observer: o})
		if err != nil {
			return nil, err
		}
		return res.Schedule, nil
	case "DualHP-min":
		return sched.DualHPDAGWithPriorities(g, pl, sched.RankMin)
	case "DualHP-avg":
		return sched.DualHPDAGWithPriorities(g, pl, sched.RankAvg)
	case "DualHP-fifo":
		return sched.DualHPDAGWithPriorities(g, pl, sched.RankFIFO)
	case "HEFT-min":
		return sched.HEFT(g, pl, dag.WeightMin)
	case "HEFT-avg":
		return sched.HEFT(g, pl, dag.WeightAvg)
	case "ERLS-min":
		return sched.ERLSDAGWithPriorities(g, pl, dag.WeightMin)
	case "ERLS-avg":
		return sched.ERLSDAGWithPriorities(g, pl, dag.WeightAvg)
	case "HLP-min":
		return sched.HLPDAGWithPriorities(g, pl, dag.WeightMin)
	case "CLB2C":
		return sched.CLB2CDAG(g, pl)
	case "PriorityAware-min":
		return sched.PriorityAwareDAGWithPriorities(g, pl, dag.WeightMin)
	case "Affinity":
		return sched.AffinityDAG(g, pl)
	default:
		return nil, fmt.Errorf("expr: unknown DAG algorithm %q", name)
	}
}

package expr

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/engine"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// RobustnessRow is one point of the estimation-noise study: one kernel
// family, one noise level, and the mean ratio (over seeds) of each
// algorithm's makespan to the lower bound computed on the *actual*
// durations. The schedulers only ever see the nominal (noise-free)
// processing times; every run takes its jittered actual duration.
type RobustnessRow struct {
	Kernel workloads.Factorization
	N      int
	Sigma  float64
	Seeds  int
	Ratio  map[string]float64
}

// RobustnessAlgorithms lists the schedulers of the noise study.
func RobustnessAlgorithms() []string {
	return []string{"HeteroPrio-min", "DualHP-min", "HEFT-min", "MCT"}
}

// Robustness runs the estimation-noise study motivated by the paper's
// introduction ("NUMA effects ... render the precise estimation of the
// duration of tasks extremely difficult"): per-run durations are the
// nominal times multiplied by log-normal noise exp(sigma*N(0,1)), unknown
// to the schedulers.
func Robustness(fact workloads.Factorization, N int, sigmas []float64, seeds int, pl platform.Platform) ([]RobustnessRow, error) {
	return RobustnessPool(context.Background(), engine.Default(), fact, N, sigmas, seeds, pl)
}

// RobustnessPool is Robustness fanned out on p: one cell per (sigma,
// seed) pair. The jitter RNG was already derived per cell (from the seed
// index), so parallel cells draw exactly the sequential run's noise; the
// per-sigma means are then reduced in seed order, keeping the float
// addition order — and hence the output bytes — of the sequential loop.
func RobustnessPool(ctx context.Context, p *engine.Pool, fact workloads.Factorization, N int, sigmas []float64, seeds int, pl platform.Platform) ([]RobustnessRow, error) {
	type cell struct {
		sigma float64
		seed  int
	}
	var cells []cell
	for _, sigma := range sigmas {
		for seed := 0; seed < seeds; seed++ {
			cells = append(cells, cell{sigma, seed})
		}
	}
	ratios, err := engine.Map(ctx, p, engine.Job{Cells: len(cells)}, func(_ context.Context, c engine.Cell) (map[string]float64, error) {
		sigma, seed := cells[c.Index].sigma, cells[c.Index].seed
		g, err := workloads.Build(fact, N)
		if err != nil {
			return nil, err
		}
		if _, err := g.AssignBottomLevelPriorities(dag.WeightMin, pl); err != nil {
			return nil, err
		}
		actual, actualFn := jitteredDurations(g, sigma, rand.New(rand.NewSource(int64(seed)+7)))
		lb, err := actualLowerBound(g, pl, actual)
		if err != nil {
			return nil, err
		}
		out := map[string]float64{}
		for _, alg := range RobustnessAlgorithms() {
			s, err := runRobust(alg, g, pl, actualFn)
			if err != nil {
				return nil, err
			}
			if err := s.ValidateTimed(g.Tasks(), g, actualFn); err != nil {
				return nil, err
			}
			out[alg] = s.Makespan() / lb
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	var rows []RobustnessRow
	for si, sigma := range sigmas {
		row := RobustnessRow{Kernel: fact, N: N, Sigma: sigma, Seeds: seeds, Ratio: map[string]float64{}}
		sums := map[string]float64{}
		for seed := 0; seed < seeds; seed++ {
			for _, alg := range RobustnessAlgorithms() {
				sums[alg] += ratios[si*seeds+seed][alg]
			}
		}
		for alg, sum := range sums {
			row.Ratio[alg] = sum / float64(seeds)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// jitteredDurations draws one actual duration per (task, class) pair and
// returns both the table and the lookup function.
func jitteredDurations(g *dag.Graph, sigma float64, rng *rand.Rand) ([][platform.NumKinds]float64, func(t platform.Task, k platform.Kind) float64) {
	actual := make([][platform.NumKinds]float64, g.Len())
	for id := 0; id < g.Len(); id++ {
		t := g.Task(id)
		actual[id][platform.CPU] = t.CPUTime * math.Exp(sigma*rng.NormFloat64())
		actual[id][platform.GPU] = t.GPUTime * math.Exp(sigma*rng.NormFloat64())
	}
	return actual, func(t platform.Task, k platform.Kind) float64 {
		return actual[t.ID][k]
	}
}

// actualLowerBound computes the DAG lower bound on the actual durations.
func actualLowerBound(g *dag.Graph, pl platform.Platform, actual [][platform.NumKinds]float64) (float64, error) {
	// Rebuild a graph with the actual durations as nominal times.
	h := dag.New()
	for id := 0; id < g.Len(); id++ {
		t := g.Task(id)
		t.CPUTime = actual[id][platform.CPU]
		t.GPUTime = actual[id][platform.GPU]
		h.AddTask(t)
	}
	for u := 0; u < g.Len(); u++ {
		for _, v := range g.Succs(u) {
			h.AddEdge(u, v)
		}
	}
	return bounds.DAGLower(h, pl)
}

// runRobust executes one algorithm under the duration model.
func runRobust(alg string, g *dag.Graph, pl platform.Platform, actual func(t platform.Task, k platform.Kind) float64) (*sim.Schedule, error) {
	switch alg {
	case "HeteroPrio-min":
		res, err := core.ScheduleDAG(g, pl, core.Options{UsePriorities: true, ActualTime: actual})
		if err != nil {
			return nil, err
		}
		return res.Schedule, nil
	case "DualHP-min":
		return sched.DualHPDAGTimed(g, pl, sched.RankMin, actual)
	case "HEFT-min":
		return sched.HEFTTimed(g, pl, dag.WeightMin, actual)
	case "MCT":
		return sched.MCTDAGTimed(g, pl, actual)
	default:
		return nil, fmt.Errorf("expr: unknown robustness algorithm %q", alg)
	}
}

// RobustnessTable renders the rows.
func RobustnessTable(rows []RobustnessRow) *stats.Table {
	t := &stats.Table{
		Title:   "Robustness — mean ratio to the actual-duration lower bound under log-normal estimation noise",
		Columns: append([]string{"kernel", "N", "sigma", "seeds"}, RobustnessAlgorithms()...),
	}
	for _, r := range rows {
		vals := []interface{}{string(r.Kernel), r.N, r.Sigma, r.Seeds}
		for _, alg := range RobustnessAlgorithms() {
			vals = append(vals, r.Ratio[alg])
		}
		t.AddRow(vals...)
	}
	return t
}

package expr

import (
	"strings"
	"testing"
)

func TestDistribution(t *testing.T) {
	rows, err := Distribution(40, 60, PaperPlatform(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(DistributionAlgorithms()) {
		t.Fatalf("%d rows", len(rows))
	}
	byAlg := map[string]DistributionRow{}
	for _, r := range rows {
		byAlg[r.Algorithm] = r
		if r.Samples != 40 {
			t.Errorf("%s: %d samples", r.Algorithm, r.Samples)
		}
		if r.P50 < 1-1e-9 || r.P50 > r.P90+1e-9 || r.P90 > r.P99+1e-9 || r.P99 > r.Max+1e-9 {
			t.Errorf("%s: quantiles disordered: %+v", r.Algorithm, r)
		}
	}
	// HeteroPrio's tail should not exceed the affinity-blind MCT's tail on
	// this affinity-structured workload.
	if byAlg["HeteroPrio"].P90 > byAlg["MCT"].P90+1e-9 {
		t.Errorf("HeteroPrio p90 %v above MCT p90 %v", byAlg["HeteroPrio"].P90, byAlg["MCT"].P90)
	}
	if md := DistributionTable(rows).Markdown(); !strings.Contains(md, "p99") {
		t.Error("table rendering")
	}
}

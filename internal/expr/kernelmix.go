package expr

import (
	"context"
	"sort"
	"strings"

	"repro/internal/engine"
	"repro/internal/platform"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// KernelMixRow reports, for one algorithm on one factorization DAG, the
// fraction of each kernel type's instances executed on the GPU class.
// This quantifies the paper's Section 2.1 narrative: affinity-based
// scheduling should send GEMM/SYRK (factor ~28) to the GPUs and POTRF
// (factor 1.7) to the CPUs.
type KernelMixRow struct {
	Kernel    workloads.Factorization
	N         int
	Algorithm string
	// GPUShare maps kernel base name (POTRF, TRSM, ...) to the fraction of
	// its instances whose successful run executed on a GPU.
	GPUShare map[string]float64
}

// KernelMix computes the rows for every Figure 7 algorithm.
func KernelMix(fact workloads.Factorization, N int, pl platform.Platform) ([]KernelMixRow, error) {
	return KernelMixPool(context.Background(), engine.Default(), fact, N, pl)
}

// KernelMixPool is KernelMix fanned out on p: one cell per algorithm,
// each scheduling its own freshly built graph.
func KernelMixPool(ctx context.Context, p *engine.Pool, fact workloads.Factorization, N int, pl platform.Platform) ([]KernelMixRow, error) {
	algs := DAGAlgorithms()
	return engine.Map(ctx, p, engine.Job{Cells: len(algs)}, func(_ context.Context, c engine.Cell) (KernelMixRow, error) {
		alg := algs[c.Index]
		g, err := workloads.Build(fact, N)
		if err != nil {
			return KernelMixRow{}, err
		}
		s, err := RunDAG(alg, g, pl)
		if err != nil {
			return KernelMixRow{}, err
		}
		total := map[string]int{}
		gpu := map[string]int{}
		byID := g.Tasks().ByID()
		for _, e := range s.SuccessfulEntries() {
			name := kernelBase(byID[e.TaskID].Name)
			total[name]++
			if e.Kind == platform.GPU {
				gpu[name]++
			}
		}
		share := map[string]float64{}
		for name, c := range total {
			share[name] = float64(gpu[name]) / float64(c)
		}
		return KernelMixRow{Kernel: fact, N: N, Algorithm: alg, GPUShare: share}, nil
	})
}

// kernelBase strips the "(i,j,k)" suffix of generated task names.
func kernelBase(name string) string {
	if i := strings.IndexByte(name, '('); i > 0 {
		return name[:i]
	}
	return name
}

// KernelMixTable renders the rows with one column per kernel type.
func KernelMixTable(rows []KernelMixRow) *stats.Table {
	kernelSet := map[string]bool{}
	for _, r := range rows {
		for name := range r.GPUShare {
			kernelSet[name] = true
		}
	}
	kernels := make([]string, 0, len(kernelSet))
	for name := range kernelSet {
		kernels = append(kernels, name)
	}
	sort.Strings(kernels)
	t := &stats.Table{
		Title:   "Kernel mix — fraction of each kernel type executed on the GPU class",
		Columns: append([]string{"kernel", "N", "algorithm"}, kernels...),
	}
	for _, r := range rows {
		vals := []interface{}{string(r.Kernel), r.N, r.Algorithm}
		for _, k := range kernels {
			if share, ok := r.GPUShare[k]; ok {
				vals = append(vals, share)
			} else {
				vals = append(vals, "")
			}
		}
		t.AddRow(vals...)
	}
	return t
}

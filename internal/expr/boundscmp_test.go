package expr

import (
	"strings"
	"testing"
)

func TestBoundsCmp(t *testing.T) {
	rows, err := BoundsCmp([]int{4, 8}, PaperPlatform())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Base < r.Area-1e-9 || r.Base < r.CP-1e-9 {
			t.Errorf("%s N=%d: base %v below components %v/%v", r.Kernel, r.N, r.Base, r.Area, r.CP)
		}
		if r.Refined < r.Base-1e-9 {
			t.Errorf("%s N=%d: refined %v below base %v", r.Kernel, r.N, r.Refined, r.Base)
		}
		if r.HP < r.Refined-1e-6 {
			t.Errorf("%s N=%d: makespan %v below refined bound %v", r.Kernel, r.N, r.HP, r.Refined)
		}
	}
	if md := BoundsCmpTable(rows).Markdown(); !strings.Contains(md, "refined sweep") {
		t.Error("table rendering")
	}
}

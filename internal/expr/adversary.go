package expr

import (
	"context"
	"fmt"

	"repro/internal/adversary"
	"repro/internal/engine"
	"repro/internal/platform"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// AdversaryRow is the outcome of one worst-case search: the platform
// shape, the proven bound, the tight example's value, and the worst ratio
// the automated hill climber found against the exact optimum.
type AdversaryRow struct {
	CPUs, GPUs int
	Bound      float64
	WorstFound float64
	Tasks      int
	Evals      int
}

// Adversary runs the automated worst-case search on the three platform
// shapes of Table 2 (kept tiny so the exact solver stays fast). It is the
// empirical companion of the Section 5 constructions: the search
// rediscovers golden-ratio-like instances on (1,1) without being told
// about phi.
func Adversary(iters int, seed int64) ([]AdversaryRow, error) {
	return AdversaryPool(context.Background(), engine.Default(), iters, seed)
}

// AdversaryPool is Adversary fanned out on p: one cell per platform
// shape. Each hill climb is already seeded per shape, so parallel cells
// rediscover exactly the sequential run's instances.
func AdversaryPool(ctx context.Context, p *engine.Pool, iters int, seed int64) ([]AdversaryRow, error) {
	shapes := []struct{ m, n int }{{1, 1}, {3, 1}, {2, 2}}
	return engine.Map(ctx, p, engine.Job{Cells: len(shapes)}, func(_ context.Context, c engine.Cell) (AdversaryRow, error) {
		sh := shapes[c.Index]
		pl := platform.NewPlatform(sh.m, sh.n)
		res, err := adversary.Search(adversary.Config{
			Platform: pl,
			MaxTasks: 6,
			Iters:    iters,
			Seed:     seed,
		})
		if err != nil {
			return AdversaryRow{}, err
		}
		return AdversaryRow{
			CPUs: sh.m, GPUs: sh.n,
			Bound:      provenBound(pl),
			WorstFound: res.Ratio,
			Tasks:      len(res.Instance),
			Evals:      res.Evals,
		}, nil
	})
}

// AdversaryTable renders the rows.
func AdversaryTable(rows []AdversaryRow) *stats.Table {
	t := &stats.Table{
		Title: fmt.Sprintf("Adversarial search — worst HeteroPrio/optimum ratio found by hill climbing "+
			"vs the proven bounds (sup for (1,1) is phi = %.4f)", workloads.Phi),
		Columns: []string{"CPUs", "GPUs", "proven bound", "worst found", "tasks", "exact evals"},
	}
	for _, r := range rows {
		t.AddRow(r.CPUs, r.GPUs, r.Bound, r.WorstFound, r.Tasks, r.Evals)
	}
	return t
}

package expr

import (
	"strings"
	"testing"

	"repro/internal/workloads"
)

func TestRobustnessZeroSigmaMatchesNominal(t *testing.T) {
	pl := PaperPlatform()
	rows, err := Robustness(workloads.FactCholesky, 8, []float64{0}, 2, pl)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	for alg, ratio := range rows[0].Ratio {
		if ratio < 1-1e-9 {
			t.Errorf("%s: ratio %v below 1", alg, ratio)
		}
		if ratio > 3 {
			t.Errorf("%s: ratio %v implausible at sigma 0", alg, ratio)
		}
	}
}

func TestRobustnessNoiseSweep(t *testing.T) {
	pl := PaperPlatform()
	rows, err := Robustness(workloads.FactCholesky, 8, []float64{0, 0.3}, 2, pl)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		for alg, ratio := range r.Ratio {
			if ratio < 1-1e-9 || ratio > 10 {
				t.Errorf("sigma %v %s: ratio %v out of range", r.Sigma, alg, ratio)
			}
		}
	}
	md := RobustnessTable(rows).Markdown()
	if !strings.Contains(md, "HeteroPrio-min") || !strings.Contains(md, "MCT") {
		t.Errorf("table rendering:\n%s", md)
	}
}

package expr

import (
	"strings"
	"testing"

	"repro/internal/workloads"
)

func TestKernelMix(t *testing.T) {
	rows, err := KernelMix(workloads.FactCholesky, 12, PaperPlatform())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(DAGAlgorithms()) {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		for name, share := range r.GPUShare {
			if share < 0 || share > 1 {
				t.Errorf("%s %s: share %v out of [0,1]", r.Algorithm, name, share)
			}
		}
	}
	// HeteroPrio's affinity rule: GEMM (factor 28.8) overwhelmingly on the
	// GPU, and at least as GPU-heavy as POTRF (factor 1.72).
	for _, r := range rows {
		if !strings.HasPrefix(r.Algorithm, "HeteroPrio") {
			continue
		}
		// (POTRF can legitimately reach 100% GPU share at small N: panels
		// are often the only ready task while GPUs idle, so no cross-kernel
		// ordering is asserted here.)
		if r.GPUShare["GEMM"] < 0.5 {
			t.Errorf("%s: GEMM GPU share %v < 0.5", r.Algorithm, r.GPUShare["GEMM"])
		}
	}
	md := KernelMixTable(rows).Markdown()
	if !strings.Contains(md, "GEMM") || !strings.Contains(md, "POTRF") {
		t.Errorf("table:\n%s", md)
	}
}

func TestKernelBase(t *testing.T) {
	if kernelBase("GEMM(3,2,1)") != "GEMM" || kernelBase("plain") != "plain" {
		t.Error("kernelBase wrong")
	}
}

package expr

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/platform"
	"repro/internal/workloads"
)

func TestPaperConfig(t *testing.T) {
	pl := PaperPlatform()
	if pl.CPUs != 20 || pl.GPUs != 4 {
		t.Errorf("paper platform = %v", pl)
	}
	ns := PaperNs()
	if ns[0] != 4 || ns[len(ns)-1] != 64 {
		t.Errorf("paper Ns = %v", ns)
	}
	if len(SmallNs()) == 0 {
		t.Error("SmallNs empty")
	}
}

func TestRunIndependentUnknown(t *testing.T) {
	if _, err := RunIndependent("nope", nil, PaperPlatform()); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestRunDAGUnknown(t *testing.T) {
	g := workloads.Cholesky(2)
	if _, err := RunDAG("nope", g, PaperPlatform()); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestFig6Small(t *testing.T) {
	rows, err := Fig6([]int{4, 8}, PaperPlatform())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // 3 kernels x 2 Ns
		t.Fatalf("%d rows, want 6", len(rows))
	}
	for _, r := range rows {
		if r.AreaBound <= 0 {
			t.Errorf("%s N=%d: area bound %v", r.Kernel, r.N, r.AreaBound)
		}
		for alg, ratio := range r.Ratio {
			if ratio < 1-1e-9 {
				t.Errorf("%s N=%d %s: ratio %v below 1 (beat the lower bound)", r.Kernel, r.N, alg, ratio)
			}
			if ratio > 10 {
				t.Errorf("%s N=%d %s: ratio %v implausibly large", r.Kernel, r.N, alg, ratio)
			}
		}
	}
	table := Fig6Table(rows)
	if !strings.Contains(table.Markdown(), "HeteroPrio") {
		t.Error("Fig6 table missing algorithm column")
	}
}

func TestFig7SmallAndViews(t *testing.T) {
	rows, err := Fig7([]int{4, 8}, PaperPlatform())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6", len(rows))
	}
	for _, r := range rows {
		for alg, ratio := range r.Ratio {
			if ratio < 1-1e-9 {
				t.Errorf("%s N=%d %s: ratio %v below 1", r.Kernel, r.N, alg, ratio)
			}
		}
		for _, alg := range DAGAlgorithms() {
			ea := r.EquivAccel[alg]
			// GPU-side equivalent accel should be at least the CPU-side one
			// for a sensible affinity-aware schedule; only check it is
			// defined for the GPU side (the CPU may execute nothing at
			// small N).
			if v, ok := ea[platform.GPU]; !ok || math.IsNaN(v) && r.N > 4 {
				t.Errorf("%s N=%d %s: GPU equivalent accel undefined", r.Kernel, r.N, alg)
			}
			ni := r.NormIdle[alg]
			if v := ni[platform.GPU]; !math.IsNaN(v) && v < -1e-9 {
				t.Errorf("%s N=%d %s: negative idle %v", r.Kernel, r.N, alg, v)
			}
		}
	}
	for _, tb := range []interface{ Markdown() string }{Fig7Table(rows), Fig8Table(rows), Fig9Table(rows)} {
		if len(tb.Markdown()) == 0 {
			t.Error("empty table rendering")
		}
	}
}

func TestTable1(t *testing.T) {
	tb := Table1Table()
	md := tb.Markdown()
	for _, want := range []string{"DPOTRF", "DTRSM", "DSYRK", "DGEMM", "1.72", "8.72", "26.96", "28.8"} {
		if !strings.Contains(md, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, md)
		}
	}
}

func TestTable2(t *testing.T) {
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	phi := workloads.Phi
	// (1,1): achieved ratio must equal phi exactly (tight example).
	if math.Abs(rows[0].Achieved-phi) > 1e-9 {
		t.Errorf("(1,1) achieved %v, want %v", rows[0].Achieved, phi)
	}
	// (m,1): achieved approaches 1+phi from below.
	if rows[1].Achieved < 2.4 || rows[1].Achieved > rows[1].Bound {
		t.Errorf("(m,1) achieved %v outside (2.4, %v)", rows[1].Achieved, rows[1].Bound)
	}
	// (m,n): achieved between 2.5 and the worst-case example value.
	if rows[2].Achieved < 2.5 || rows[2].Achieved > rows[2].WorstCaseEx+1e-9 {
		t.Errorf("(m,n) achieved %v outside (2.5, %v)", rows[2].Achieved, rows[2].WorstCaseEx)
	}
	if md := Table2Table(rows).Markdown(); !strings.Contains(md, "(m,n)") {
		t.Errorf("Table 2 rendering:\n%s", md)
	}
}

func TestAblationSmall(t *testing.T) {
	rows, err := Ablation([]int{4, 8}, PaperPlatform())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6", len(rows))
	}
	for _, r := range rows {
		if r.Full < 1-1e-9 || r.NoSpoliation < 1-1e-9 || r.NoPriorities < 1-1e-9 {
			t.Errorf("%s N=%d: ratio below 1: %+v", r.Kernel, r.N, r)
		}
		// Spoliation never hurts on these workloads (it only replaces runs
		// that finish strictly earlier elsewhere); allow small slack for
		// divergent downstream decisions.
		if r.Full > r.NoSpoliation*1.5 {
			t.Errorf("%s N=%d: full %v much worse than no-spoliation %v", r.Kernel, r.N, r.Full, r.NoSpoliation)
		}
	}
	if md := AblationTable(rows).Markdown(); !strings.Contains(md, "no spoliation") {
		t.Error("ablation table rendering")
	}
}

// TestAlgorithmCatalog pins the registry contract of the zoo (DESIGN.md
// §15): the catalog lists are disjoint unions, and every listed name —
// paper set and zoo alike — runs and validates on a small workload. A
// name in the catalog that RunIndependent/RunDAG cannot dispatch, or a
// scheduler that emits an invalid schedule, fails here before it can
// break the tournament sweep or hpsched -alg all.
func TestAlgorithmCatalog(t *testing.T) {
	if got, want := len(AllIndepAlgorithms()), len(IndepAlgorithms())+len(ZooIndepAlgorithms()); got != want {
		t.Fatalf("AllIndepAlgorithms has %d entries, want %d", got, want)
	}
	if got, want := len(AllDAGAlgorithms()), len(DAGAlgorithms())+len(ZooDAGAlgorithms()); got != want {
		t.Fatalf("AllDAGAlgorithms has %d entries, want %d", got, want)
	}
	pl := platform.NewPlatform(4, 2)
	// Names are deduplicated per mode: CLB2C and Affinity keep their bare
	// name in both catalogs because their DAG entry has no ranking
	// variants, and hpsched dispatches by mode.
	seen := map[string]bool{}
	rng := rand.New(rand.NewSource(42))
	in := workloads.UniformInstance(24, 1, 20, 0.5, 10, rng)
	for _, alg := range AllIndepAlgorithms() {
		if seen[alg] {
			t.Errorf("duplicate independent algorithm %q", alg)
		}
		seen[alg] = true
		s, err := RunIndependent(alg, in, pl)
		if err != nil {
			t.Errorf("%s: %v", alg, err)
			continue
		}
		if err := s.Validate(in, nil); err != nil {
			t.Errorf("%s: invalid schedule: %v", alg, err)
		}
	}
	seen = map[string]bool{}
	for _, alg := range AllDAGAlgorithms() {
		if seen[alg] {
			t.Errorf("duplicate DAG algorithm %q", alg)
		}
		seen[alg] = true
		g, err := workloads.Build(workloads.FactCholesky, 4)
		if err != nil {
			t.Fatal(err)
		}
		s, err := RunDAG(alg, g, pl)
		if err != nil {
			t.Errorf("%s: %v", alg, err)
			continue
		}
		if err := s.Validate(g.Tasks(), g); err != nil {
			t.Errorf("%s: invalid schedule: %v", alg, err)
		}
	}
}

package expr

import (
	"strings"
	"testing"
)

func TestAdversaryExperiment(t *testing.T) {
	rows, err := Adversary(600, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.WorstFound > r.Bound+1e-6 {
			t.Errorf("(%d,%d): worst found %v exceeds the proven bound %v", r.CPUs, r.GPUs, r.WorstFound, r.Bound)
		}
		if r.WorstFound < 1 {
			t.Errorf("(%d,%d): ratio %v below 1", r.CPUs, r.GPUs, r.WorstFound)
		}
	}
	if md := AdversaryTable(rows).Markdown(); !strings.Contains(md, "worst found") {
		t.Error("table rendering")
	}
}

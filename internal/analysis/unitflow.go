package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// UnitFlow is a taint-style dimensional analysis over the quantities the
// paper's bounds are arithmetic on: times (in seconds or milliseconds),
// areas (time x workers, the denominator of the area bound), and
// dimensionless ratios (acceleration factors rho = p/q, fractions,
// phi-family constants). Units are seeded from the repository's naming
// conventions (a float named "*_ms" or "StartMs" is a time in
// milliseconds, "Area" an area, "Accel"/"Ratio"/"rho" a ratio, ...) and
// propagated flow-sensitively through assignments and unit-preserving
// arithmetic; additions and comparisons that mix dimensions — or mix
// milliseconds with seconds — are flagged. The multiplicative algebra is
// deliberately conservative: an operand of unknown unit makes the result
// unknown, so generic scaling code stays silent.
var UnitFlow = &Analyzer{
	Name:      "unitflow",
	Doc:       "no arithmetic or comparison mixing time with area or ratio, or ms with s",
	Packages:  []string{"internal/sim", "internal/bounds", "internal/core", "internal/lp"},
	SkipTests: true,
	Run:       runUnitFlow,
}

// dim is the dimension component of a unit.
type dim uint8

const (
	dimUnknown dim = iota
	dimTime
	dimArea  // time x worker-count (the area-bound denominator is per worker)
	dimRatio // dimensionless: acceleration factors, fractions, phi constants
)

func (d dim) String() string {
	switch d {
	case dimTime:
		return "time"
	case dimArea:
		return "area"
	case dimRatio:
		return "ratio"
	}
	return "unknown"
}

// tscale is the scale component of a time unit.
type tscale uint8

const (
	scaleAny tscale = iota // a time of unspecified scale
	scaleMs
	scaleS
)

func (s tscale) String() string {
	switch s {
	case scaleMs:
		return "milliseconds"
	case scaleS:
		return "seconds"
	}
	return "unspecified scale"
}

// unit is one point of the unit lattice: a dimension plus, for times, a
// scale. The lattice is flat under dimUnknown (any disagreement joins to
// unknown), so propagation can only lose information, never invent it.
type unit struct {
	d dim
	s tscale
}

var noUnit = unit{}

// known reports whether the unit carries any information.
func (u unit) known() bool { return u.d != dimUnknown }

func (u unit) String() string {
	if u.d == dimTime && u.s != scaleAny {
		return "time (" + u.s.String() + ")"
	}
	return u.d.String()
}

// compatible reports whether two known units may meet in an additive
// operation (+, -, comparison) without mixing dimensions or scales.
func compatible(a, b unit) bool {
	if a.d != b.d {
		return false
	}
	if a.d == dimTime && a.s != scaleAny && b.s != scaleAny && a.s != b.s {
		return false
	}
	return true
}

// joinUnits is the lattice join: equal units survive, a known unit meets
// scaleAny by keeping the more specific scale, everything else drops to
// unknown.
func joinUnits(a, b unit) unit {
	if a == b {
		return a
	}
	if !a.known() || !b.known() {
		return noUnit
	}
	if a.d == b.d && a.d == dimTime {
		if a.s == scaleAny {
			return b
		}
		if b.s == scaleAny {
			return a
		}
	}
	return noUnit
}

// splitWords lowercases and splits an identifier on underscores and
// case boundaries: "TFirstIdleMs" -> [t first idle ms].
func splitWords(name string) []string {
	var words []string
	var cur []rune
	flush := func() {
		if len(cur) > 0 {
			words = append(words, strings.ToLower(string(cur)))
			cur = nil
		}
	}
	runes := []rune(name)
	for i, r := range runes {
		switch {
		case r == '_':
			flush()
		case r >= 'A' && r <= 'Z':
			// Boundary before an upper rune unless we are inside an acronym
			// run ("GPU"); a lower rune after the run starts a new word.
			if i > 0 && (runes[i-1] < 'A' || runes[i-1] > 'Z') {
				flush()
			} else if i+1 < len(runes) && runes[i+1] >= 'a' && runes[i+1] <= 'z' && len(cur) > 1 {
				flush()
			}
			cur = append(cur, r)
		default:
			cur = append(cur, r)
		}
	}
	flush()
	return words
}

var (
	msWords = map[string]bool{"ms": true, "millis": true, "milliseconds": true, "msec": true}
	sWords  = map[string]bool{"sec": true, "secs": true, "second": true, "seconds": true}
	// ratioWords cover acceleration factors and the paper's dimensionless
	// constants; "frac"/"fraction" appear in utilization accounting.
	ratioWords = map[string]bool{
		"ratio": true, "rho": true, "accel": true, "acceleration": true,
		"fraction": true, "frac": true, "speedup": true, "phi": true,
	}
	timeWords = map[string]bool{
		"time": true, "duration": true, "makespan": true, "elapsed": true,
		"latency": true, "horizon": true, "busy": true, "idle": true,
		"wait": true, "wasted": true, "start": true, "end": true,
		"finish": true, "deadline": true, "release": true, "cmax": true,
	}
)

// seedUnit derives a unit from an identifier name, or noUnit. Precedence:
// an explicit scale suffix wins; then "bound" (every *Bound in this
// repository is a makespan lower bound, i.e. a time — AreaBound included);
// then ratio words; then "area"; then generic time words.
func seedUnit(name string) unit {
	words := splitWords(name)
	for _, w := range words {
		if msWords[w] {
			return unit{dimTime, scaleMs}
		}
		if sWords[w] {
			return unit{dimTime, scaleS}
		}
	}
	for _, w := range words {
		if w == "bound" {
			return unit{d: dimTime}
		}
	}
	for _, w := range words {
		if ratioWords[w] {
			return unit{d: dimRatio}
		}
	}
	for _, w := range words {
		if w == "area" {
			return unit{d: dimArea}
		}
	}
	for _, w := range words {
		if timeWords[w] {
			return unit{d: dimTime}
		}
	}
	return noUnit
}

// unitEnv is the dataflow fact: the inferred unit of each float object at
// a program point. Facts are immutable; transfer clones before writing.
type unitEnv map[types.Object]unit

func (e unitEnv) clone() unitEnv {
	c := make(unitEnv, len(e))
	for k, v := range e {
		c[k] = v
	}
	return c
}

func joinUnitEnv(a, b unitEnv) unitEnv {
	out := make(unitEnv)
	for k, va := range a {
		if vb, ok := b[k]; ok {
			if j := joinUnits(va, vb); j.known() {
				out[k] = j
			}
		}
	}
	return out
}

func equalUnitEnv(a, b unitEnv) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		if vb, ok := b[k]; !ok || va != vb {
			return false
		}
	}
	return true
}

// unitflow ties one function's analysis together.
type unitflow struct {
	pass *Pass
}

// objectOf resolves an identifier to its object (use or def).
func (u *unitflow) objectOf(id *ast.Ident) types.Object {
	if o := u.pass.Info.Uses[id]; o != nil {
		return o
	}
	return u.pass.Info.Defs[id]
}

// unitOf evaluates the unit of a float expression under env. report, when
// non-nil, is called for mixed-unit binary operations (the reporting pass
// passes it; the transfer pass leaves it nil).
func (u *unitflow) unitOf(env unitEnv, e ast.Expr, report func(pos token.Pos, op token.Token, a, b unit)) unit {
	if !isFloat(u.pass.Info.TypeOf(e)) {
		return noUnit
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return u.unitOf(env, e.X, report)
	case *ast.UnaryExpr:
		if e.Op == token.SUB || e.Op == token.ADD {
			return u.unitOf(env, e.X, report)
		}
	case *ast.Ident:
		obj := u.objectOf(e)
		if obj == nil {
			return noUnit
		}
		if v, ok := env[obj]; ok {
			return v
		}
		return seedUnit(e.Name)
	case *ast.SelectorExpr:
		// Field access x.Start: the field's name seeds the unit (fields are
		// not tracked flow-sensitively; their declarations are the source of
		// truth). Package-qualified idents (math.Pi) resolve here too.
		if obj := u.pass.Info.Uses[e.Sel]; obj != nil {
			if _, isField := obj.(*types.Var); isField {
				return seedUnit(e.Sel.Name)
			}
		}
		return noUnit
	case *ast.CallExpr:
		// A conversion float64(x) preserves the unit of x.
		if tv, ok := u.pass.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			if isFloat(u.pass.Info.TypeOf(e.Args[0])) {
				return u.unitOf(env, e.Args[0], report)
			}
			return noUnit // int->float conversions carry no unit
		}
		// A call's result is seeded from the callee's name (AreaBound(...)
		// is a time, (Task).Accel() a ratio).
		switch fn := e.Fun.(type) {
		case *ast.Ident:
			return seedUnit(fn.Name)
		case *ast.SelectorExpr:
			return seedUnit(fn.Sel.Name)
		}
		return noUnit
	case *ast.BinaryExpr:
		a := u.unitOf(env, e.X, report)
		b := u.unitOf(env, e.Y, report)
		switch e.Op {
		case token.ADD, token.SUB:
			if a.known() && b.known() {
				if !compatible(a, b) {
					if report != nil {
						report(e.OpPos, e.Op, a, b)
					}
					return noUnit
				}
				return joinAdditive(a, b)
			}
			// One side unknown: trust the known side (the unknown operand
			// is most often a seeded-free intermediate of the same unit).
			if a.known() {
				return a
			}
			return b
		case token.MUL:
			return mulUnit(a, b)
		case token.QUO:
			if a.d == dimTime && b.d == dimTime && a.s != scaleAny && b.s != scaleAny && a.s != b.s {
				if report != nil {
					report(e.OpPos, e.Op, a, b)
				}
				return noUnit
			}
			return quoUnit(a, b)
		}
		return noUnit
	}
	return noUnit
}

// joinAdditive merges two compatible units after +/-: the more specific
// time scale survives.
func joinAdditive(a, b unit) unit {
	if a.d == dimTime && a.s == scaleAny {
		return b
	}
	return a
}

// mulUnit is the conservative multiplicative algebra: both operands must
// be known for the result to be, so dimensionless scaling code (counts,
// factors read from flags) never pollutes the analysis.
func mulUnit(a, b unit) unit {
	switch {
	case !a.known() || !b.known():
		return noUnit
	case a.d == dimTime && b.d == dimRatio:
		return a
	case a.d == dimRatio && b.d == dimTime:
		return b
	case a.d == dimRatio && b.d == dimRatio:
		return unit{d: dimRatio}
	case a.d == dimTime && b.d == dimTime:
		return unit{d: dimArea}
	}
	return noUnit
}

func quoUnit(a, b unit) unit {
	switch {
	case !a.known() || !b.known():
		return noUnit
	case a.d == dimTime && b.d == dimTime:
		return unit{d: dimRatio}
	case a.d == dimTime && b.d == dimRatio:
		return a
	case a.d == dimArea && b.d == dimTime:
		return unit{d: dimTime}
	case a.d == dimRatio && b.d == dimRatio:
		return unit{d: dimRatio}
	}
	return noUnit
}

// transferUnits applies a block's effect on the environment; when report
// is non-nil it also emits diagnostics (the reporting replay).
func (u *unitflow) transferUnits(b *Block, in unitEnv, report func(pos token.Pos, op token.Token, a, b unit)) unitEnv {
	env := in
	mutated := false
	write := func(obj types.Object, v unit) {
		if obj == nil {
			return
		}
		if !mutated {
			env = env.clone()
			mutated = true
		}
		if v.known() {
			env[obj] = v
		} else {
			delete(env, obj)
		}
	}
	for _, n := range b.Nodes {
		InspectShallow(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.BinaryExpr:
				switch m.Op {
				case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
					// Comparisons are additive meets too.
					a := u.unitOf(env, m.X, report)
					bb := u.unitOf(env, m.Y, report)
					if a.known() && bb.known() && !compatible(a, bb) && report != nil {
						report(m.OpPos, m.Op, a, bb)
					}
					return false // operands already evaluated (with reporting)
				case token.ADD, token.SUB, token.MUL, token.QUO:
					// Arithmetic in any other position (return values, call
					// arguments, ...): evaluate for its reporting side effects.
					u.unitOf(env, m, report)
					return false
				}
			case *ast.AssignStmt:
				u.transferAssign(m, env, write, report)
				return false
			}
			return true
		})
	}
	return env
}

// transferAssign updates the environment for one assignment and flags
// stores of a unit incompatible with the destination's declared (seeded)
// unit.
func (u *unitflow) transferAssign(as *ast.AssignStmt, env unitEnv, write func(types.Object, unit), report func(pos token.Pos, op token.Token, a, b unit)) {
	// Compound ops x += e are an additive meet of x and e.
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		a := u.unitOf(env, as.Lhs[0], report)
		b := u.unitOf(env, as.Rhs[0], report)
		if a.known() && b.known() && !compatible(a, b) && report != nil {
			report(as.TokPos, token.ADD, a, b)
		}
		return
	case token.MUL_ASSIGN, token.QUO_ASSIGN:
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			a := u.unitOf(env, as.Lhs[0], report)
			b := u.unitOf(env, as.Rhs[0], report)
			res := mulUnit(a, b)
			if as.Tok == token.QUO_ASSIGN {
				res = quoUnit(a, b)
			}
			write(u.objectOf(id), res)
		}
		return
	}
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
		return
	}
	// Only the 1:1 and n:n value forms bind units; tuple-returning calls
	// give every LHS an unknown unit.
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		rhs := u.unitOf(env, as.Rhs[i], report)
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := u.objectOf(id)
		if obj == nil || !isFloat(obj.Type()) {
			continue
		}
		declared := seedUnit(id.Name)
		if declared.known() && rhs.known() && !compatible(declared, rhs) && report != nil {
			report(as.TokPos, token.ASSIGN, declared, rhs)
		}
		switch {
		case rhs.known():
			write(obj, rhs)
		case declared.known():
			write(obj, declared)
		default:
			write(obj, noUnit)
		}
	}
}

func runUnitFlow(pass *Pass) {
	u := &unitflow{pass: pass}
	for _, fb := range FunctionsOf(pass.Files) {
		entry := make(unitEnv)
		seedFields := func(fl *ast.FieldList) {
			if fl == nil {
				return
			}
			for _, f := range fl.List {
				for _, name := range f.Names {
					obj := pass.Info.Defs[name]
					if obj != nil && isFloat(obj.Type()) {
						if su := seedUnit(name.Name); su.known() {
							entry[obj] = su
						}
					}
				}
			}
		}
		seedFields(fb.Recv)
		seedFields(fb.Type.Params)
		seedFields(fb.Type.Results)
		g := BuildCFG(fb.Body)
		res := Solve(&FlowProblem[unitEnv]{
			CFG:   g,
			Entry: entry,
			Join:  joinUnitEnv,
			Equal: equalUnitEnv,
			Transfer: func(b *Block, in unitEnv) unitEnv {
				return u.transferUnits(b, in, nil)
			},
		})
		// Reporting replay, deduplicated per position (a block may be
		// re-walked only once here, but x+y inside a condition is seen by
		// the condition's own block only).
		seen := map[token.Pos]bool{}
		for _, b := range g.Blocks {
			if !res.Reached[b.Index] {
				continue
			}
			u.transferUnits(b, res.In[b.Index], func(pos token.Pos, op token.Token, a, bu unit) {
				if seen[pos] {
					return
				}
				seen[pos] = true
				what := "mixes " + a.String() + " and " + bu.String()
				if a.d == dimTime && bu.d == dimTime {
					what = "mixes " + a.s.String() + " and " + bu.s.String()
				}
				pass.Reportf(pos, "%s %s in %s (operator %s)", fb.Name, what, opContext(op), op)
			})
		}
	}
}

// opContext names the operation class for diagnostics.
func opContext(op token.Token) string {
	switch op {
	case token.ADD, token.SUB:
		return "an additive expression"
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		return "a comparison"
	case token.QUO:
		return "a division"
	case token.ASSIGN:
		return "an assignment"
	}
	return "an expression"
}

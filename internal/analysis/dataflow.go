package analysis

// This file implements the generic forward-dataflow fixpoint the
// flow-sensitive analyzers share. An analysis instantiates FlowProblem
// with its fact type F (an abstract state treated as immutable), a join
// over the lattice of facts, and a block transfer function; Solve runs a
// worklist to fixpoint and returns each block's input fact. The analyzer
// then makes one reporting pass, replaying its per-node transfer from
// each block's input fact to diagnose individual statements.

// FlowProblem describes one forward dataflow analysis over a CFG.
type FlowProblem[F any] struct {
	CFG *CFG
	// Entry is the fact at function entry.
	Entry F
	// Join combines the facts of two incoming paths. It must be
	// commutative, associative and idempotent, and must not mutate its
	// arguments.
	Join func(a, b F) F
	// Equal reports whether two facts are equal (the fixpoint test).
	Equal func(a, b F) bool
	// Transfer computes the fact after executing block b from the fact
	// before it. It must not mutate in.
	Transfer func(b *Block, in F) F
}

// FlowResult carries the fixpoint: the input fact of every block, and
// which blocks are reachable from the entry (facts of unreachable blocks
// are zero values and must not be interpreted).
type FlowResult[F any] struct {
	In      []F
	Reached []bool
}

// Solve runs the worklist algorithm to fixpoint. Termination is
// guaranteed for monotone transfers over finite-height lattices; a
// defensive iteration cap (generous for any realistic function) bounds
// the damage of a non-monotone client.
func Solve[F any](p *FlowProblem[F]) FlowResult[F] {
	n := len(p.CFG.Blocks)
	res := FlowResult[F]{In: make([]F, n), Reached: make([]bool, n)}
	if n == 0 {
		return res
	}
	entry := p.CFG.Blocks[0].Index
	res.In[entry] = p.Entry
	res.Reached[entry] = true
	work := []int{entry}
	inWork := make([]bool, n)
	inWork[entry] = true
	budget := 256 * n
	for len(work) > 0 && budget > 0 {
		budget--
		i := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[i] = false
		out := p.Transfer(p.CFG.Blocks[i], res.In[i])
		for _, s := range p.CFG.Blocks[i].Succs {
			j := s.Index
			changed := false
			if !res.Reached[j] {
				res.In[j] = out
				res.Reached[j] = true
				changed = true
			} else if next := p.Join(res.In[j], out); !p.Equal(next, res.In[j]) {
				res.In[j] = next
				changed = true
			}
			if changed && !inWork[j] {
				work = append(work, j)
				inWork[j] = true
			}
		}
	}
	return res
}

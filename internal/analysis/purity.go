package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Purity enforces the scheduler contract: a scheduler must treat its
// inputs — the Platform, task slices/Instances, and DAGs — as read-only,
// so the same instance can be handed to several schedulers (and to the
// bounds) without order-dependent results. The analysis taints every
// parameter and receiver whose type aliases caller state (slices,
// pointers and maps over platform/dag types), propagates the taint
// flow-sensitively through assignments, slicing and address-taking, and
// flags stores through tainted values and in-place sorts of tainted
// slices. Call results are deliberately untainted: `in.Clone()` and
// `g.Tasks()` produce (or are treated as producing) fresh values — the
// one known hole, Tasks() returning the backing slice, is documented in
// DESIGN.md §8.
//
// With a call graph available (hplint v3), the check is one level
// interprocedural: passing a tainted value to an in-module helper whose
// mutation summary (summary.go) says it stores through or sorts that
// parameter is reported at the call site, even when the helper lives in
// a package purity does not scope.
var Purity = &Analyzer{
	Name:      "purity",
	Doc:       "schedulers must not mutate Platform, task slices, or DAG inputs",
	Packages:  []string{"internal/sched"},
	SkipTests: true,
	Run:       runPurity,
}

// isProtectedType reports whether t reaches a platform/dag type through
// slices, pointers, arrays or maps — i.e. whether a value of this type
// can alias scheduler-input state worth protecting. By-value structs
// (platform.Platform, platform.Task) are copies and need no protection.
func isProtectedType(t types.Type, depth int) bool {
	if depth > 6 {
		return false
	}
	switch t := t.(type) {
	case *types.Pointer:
		return protectedNamed(t.Elem()) || isProtectedType(t.Elem(), depth+1)
	case *types.Slice:
		return protectedNamed(t.Elem()) || isProtectedType(t.Elem(), depth+1)
	case *types.Array:
		return protectedNamed(t.Elem()) || isProtectedType(t.Elem(), depth+1)
	case *types.Map:
		return protectedNamed(t.Elem()) || isProtectedType(t.Elem(), depth+1)
	case *types.Named:
		// A named slice type (platform.Instance = []Task) is itself
		// reference-like.
		if _, ok := t.Underlying().(*types.Slice); ok {
			return protectedNamed(t) || isProtectedType(t.Underlying(), depth+1)
		}
		return false
	}
	return false
}

// protectedNamed reports whether t is one of the protected named types
// from internal/platform or internal/dag.
func protectedNamed(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	if !strings.HasSuffix(path, "internal/platform") && !strings.HasSuffix(path, "internal/dag") {
		return false
	}
	switch obj.Name() {
	case "Task", "Instance", "Platform", "Graph":
		return true
	}
	return false
}

// protectedCarrier is the taint-carrier predicate for the purity
// analyzer proper: only values that can alias platform/dag state.
func protectedCarrier(t types.Type) bool { return isProtectedType(t, 0) }

// taintSet is the dataflow fact: objects that may alias scheduler input.
type taintSet map[types.Object]bool

func (s taintSet) clone() taintSet {
	c := make(taintSet, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

// joinTaint is set union: taint is a may-analysis.
func joinTaint(a, b taintSet) taintSet {
	out := make(taintSet, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func equalTaint(a, b taintSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// taintTracker is the reusable alias-taint machinery: the purity
// analyzer instantiates it with the platform/dag carrier predicate, the
// mutation summaries (summary.go) with a generic reference-like one.
type taintTracker struct {
	info *types.Info
}

func (p *taintTracker) objectOf(id *ast.Ident) types.Object {
	if o := p.info.Uses[id]; o != nil {
		return o
	}
	return p.info.Defs[id]
}

// taintedExpr reports whether e may alias tainted state: a tainted
// identifier, or an index/slice/field/deref/address chain rooted at one.
// Calls break the chain (their results are fresh by contract).
func (p *taintTracker) taintedExpr(ts taintSet, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		obj := p.info.Uses[e]
		if obj == nil {
			obj = p.info.Defs[e]
		}
		return obj != nil && ts[obj]
	case *ast.ParenExpr:
		return p.taintedExpr(ts, e.X)
	case *ast.IndexExpr:
		return p.taintedExpr(ts, e.X)
	case *ast.SliceExpr:
		return p.taintedExpr(ts, e.X)
	case *ast.SelectorExpr:
		// Field of a tainted struct pointer; method values break the chain.
		if _, isField := p.info.Uses[e.Sel].(*types.Var); isField {
			return p.taintedExpr(ts, e.X)
		}
		return false
	case *ast.StarExpr:
		return p.taintedExpr(ts, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return p.taintedExpr(ts, e.X)
		}
	}
	return false
}

// transferTaint propagates taint through a block's assignments. Only
// destinations satisfying the carrier predicate can hold taint: `t :=
// in[0]` copies a by-value element and owns the copy.
func (p *taintTracker) transferTaint(b *Block, in taintSet, carrier func(types.Type) bool) taintSet {
	ts := in
	mutated := false
	set := func(obj types.Object, tainted bool) {
		if obj == nil {
			return
		}
		if ts[obj] == tainted {
			return
		}
		if !mutated {
			ts = ts.clone()
			mutated = true
		}
		if tainted {
			ts[obj] = true
		} else {
			delete(ts, obj)
		}
	}
	for _, n := range b.Nodes {
		InspectShallow(n, func(m ast.Node) bool {
			as, ok := m.(*ast.AssignStmt)
			if !ok || (as.Tok != token.ASSIGN && as.Tok != token.DEFINE) {
				return true
			}
			if len(as.Lhs) != len(as.Rhs) {
				// Tuple-from-call: results are fresh, clear the LHS.
				for _, lhs := range as.Lhs {
					if id, isID := lhs.(*ast.Ident); isID && id.Name != "_" {
						set(p.objectOf(id), false)
					}
				}
				return true
			}
			for i, lhs := range as.Lhs {
				id, isID := lhs.(*ast.Ident)
				if !isID || id.Name == "_" {
					continue
				}
				obj := p.objectOf(id)
				tainted := p.taintedExpr(ts, as.Rhs[i]) && obj != nil && carrier(obj.Type())
				set(obj, tainted)
			}
			return true
		})
	}
	return ts
}

// sortFuncs are the in-place sorters from the standard library.
var sortFuncs = map[string]bool{
	"Sort": true, "Stable": true, "Slice": true, "SliceStable": true,
	"Float64s": true, "Ints": true, "Strings": true, "SortFunc": true,
	"SortStableFunc": true, "Reverse": true,
}

// rootOf returns the leftmost identifier of an lvalue chain, or nil.
func rootOf(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			return x
		default:
			return nil
		}
	}
}

// findMutations reports, via the callback, each operation in n that
// mutates state reachable from a tainted object given the taint state
// before the node: stores and increments through an alias, and in-place
// sorts of tainted slices.
func (p *taintTracker) findMutations(n ast.Node, ts taintSet, report func(pos token.Pos, msg string)) {
	InspectShallow(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.AssignStmt:
			for _, lhs := range m.Lhs {
				root := rootOf(lhs)
				if root == nil {
					continue
				}
				// A plain rebind `x = ...` of a tainted local only changes
				// the local; a store `x[i] = ...` / `x.f = ...` / `*x = ...`
				// writes through the alias.
				if _, isIdent := lhs.(*ast.Ident); isIdent {
					continue
				}
				obj := p.objectOf(root)
				if obj != nil && ts[obj] {
					report(lhs.Pos(), "store through "+root.Name+" mutates scheduler input (schedulers must treat Platform, task slices and DAGs as read-only)")
				}
			}
		case *ast.IncDecStmt:
			if root := rootOf(m.X); root != nil {
				if _, isIdent := m.X.(*ast.Ident); !isIdent {
					obj := p.objectOf(root)
					if obj != nil && ts[obj] {
						report(m.Pos(), "increment through "+root.Name+" mutates scheduler input")
					}
				}
			}
		case *ast.CallExpr:
			sel, isSel := m.Fun.(*ast.SelectorExpr)
			if !isSel {
				return true
			}
			// sort.Slice(in, ...) / slices.SortFunc(in, ...) on a tainted arg.
			if pkgID, isPkg := sel.X.(*ast.Ident); isPkg {
				if _, isPkgName := p.info.Uses[pkgID].(*types.PkgName); isPkgName {
					if (pkgID.Name == "sort" || pkgID.Name == "slices") && sortFuncs[sel.Sel.Name] && len(m.Args) > 0 {
						if p.taintedExpr(ts, m.Args[0]) {
							root := rootOf(m.Args[0])
							name := "argument"
							if root != nil {
								name = root.Name
							}
							report(m.Pos(), pkgID.Name+"."+sel.Sel.Name+" sorts "+name+" in place, mutating scheduler input — sort a Clone() instead")
						}
					}
					return true
				}
			}
			// Method with "Sort" in the name on a tainted receiver.
			if strings.Contains(sel.Sel.Name, "Sort") && p.taintedExpr(ts, sel.X) {
				root := rootOf(sel.X)
				name := "receiver"
				if root != nil {
					name = root.Name
				}
				report(m.Pos(), name+"."+sel.Sel.Name+" may reorder scheduler input in place — operate on a Clone() instead")
			}
		}
		return true
	})
}

// checkCallSites is the interprocedural half: a tainted value passed to
// an in-module callee whose mutation summary says it stores through that
// entry is a mutation of scheduler input, reported here at the call site.
func checkCallSites(pass *Pass, tr *taintTracker, n ast.Node, ts taintSet) {
	InspectShallow(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil {
			return true
		}
		node := pass.Prog.NodeOf(fn)
		if node == nil {
			return true
		}
		for _, idx := range pass.Prog.MutatesParams(node) {
			if idx == -1 {
				if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel && tr.taintedExpr(ts, sel.X) {
					pass.Reportf(call.Pos(), "call to %s mutates its receiver in place, and the receiver aliases scheduler input — operate on a Clone() instead", node.Name)
				}
			} else if idx < len(call.Args) && tr.taintedExpr(ts, call.Args[idx]) {
				pass.Reportf(call.Args[idx].Pos(), "call to %s mutates this argument in place, and it aliases scheduler input — pass a Clone() instead", node.Name)
			}
		}
		return true
	})
}

func runPurity(pass *Pass) {
	tr := &taintTracker{info: pass.Info}
	for _, fb := range FunctionsOf(pass.Files) {
		entry := make(taintSet)
		for _, fl := range []*ast.FieldList{fb.Recv, fb.Type.Params} {
			if fl == nil {
				continue
			}
			for _, f := range fl.List {
				for _, name := range f.Names {
					obj := pass.Info.Defs[name]
					if obj != nil && isProtectedType(obj.Type(), 0) {
						entry[obj] = true
					}
				}
			}
		}
		if len(entry) == 0 {
			continue
		}
		g := BuildCFG(fb.Body)
		res := Solve(&FlowProblem[taintSet]{
			CFG:   g,
			Entry: entry,
			Join:  joinTaint,
			Equal: equalTaint,
			Transfer: func(b *Block, in taintSet) taintSet {
				return tr.transferTaint(b, in, protectedCarrier)
			},
		})
		for _, b := range g.Blocks {
			if !res.Reached[b.Index] {
				continue
			}
			ts := res.In[b.Index]
			for _, n := range b.Nodes {
				tr.findMutations(n, ts, func(pos token.Pos, msg string) {
					pass.Reportf(pos, "%s", msg)
				})
				if pass.Prog != nil {
					checkCallSites(pass, tr, n, ts)
				}
				ts = tr.transferTaint(&Block{Nodes: []ast.Node{n}}, ts, protectedCarrier)
			}
		}
	}
}

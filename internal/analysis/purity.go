package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Purity enforces the scheduler contract: a scheduler must treat its
// inputs — the Platform, task slices/Instances, and DAGs — as read-only,
// so the same instance can be handed to several schedulers (and to the
// bounds) without order-dependent results. The analysis taints every
// parameter and receiver whose type aliases caller state (slices,
// pointers and maps over platform/dag types), propagates the taint
// flow-sensitively through assignments, slicing and address-taking, and
// flags stores through tainted values and in-place sorts of tainted
// slices. Call results are deliberately untainted: `in.Clone()` and
// `g.Tasks()` produce (or are treated as producing) fresh values — the
// one known hole, Tasks() returning the backing slice, is documented in
// DESIGN.md §8.
var Purity = &Analyzer{
	Name:      "purity",
	Doc:       "schedulers must not mutate Platform, task slices, or DAG inputs",
	Packages:  []string{"internal/sched"},
	SkipTests: true,
	Run:       runPurity,
}

// isProtectedType reports whether t reaches a platform/dag type through
// slices, pointers, arrays or maps — i.e. whether a value of this type
// can alias scheduler-input state worth protecting. By-value structs
// (platform.Platform, platform.Task) are copies and need no protection.
func isProtectedType(t types.Type, depth int) bool {
	if depth > 6 {
		return false
	}
	switch t := t.(type) {
	case *types.Pointer:
		return protectedNamed(t.Elem()) || isProtectedType(t.Elem(), depth+1)
	case *types.Slice:
		return protectedNamed(t.Elem()) || isProtectedType(t.Elem(), depth+1)
	case *types.Array:
		return protectedNamed(t.Elem()) || isProtectedType(t.Elem(), depth+1)
	case *types.Map:
		return protectedNamed(t.Elem()) || isProtectedType(t.Elem(), depth+1)
	case *types.Named:
		// A named slice type (platform.Instance = []Task) is itself
		// reference-like.
		if _, ok := t.Underlying().(*types.Slice); ok {
			return protectedNamed(t) || isProtectedType(t.Underlying(), depth+1)
		}
		return false
	}
	return false
}

// protectedNamed reports whether t is one of the protected named types
// from internal/platform or internal/dag.
func protectedNamed(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	if !strings.HasSuffix(path, "internal/platform") && !strings.HasSuffix(path, "internal/dag") {
		return false
	}
	switch obj.Name() {
	case "Task", "Instance", "Platform", "Graph":
		return true
	}
	return false
}

// taintSet is the dataflow fact: objects that may alias scheduler input.
type taintSet map[types.Object]bool

func (s taintSet) clone() taintSet {
	c := make(taintSet, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

// joinTaint is set union: taint is a may-analysis.
func joinTaint(a, b taintSet) taintSet {
	out := make(taintSet, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func equalTaint(a, b taintSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

type purity struct {
	pass *Pass
}

// taintedExpr reports whether e may alias tainted state: a tainted
// identifier, or an index/slice/field/deref/address chain rooted at one.
// Calls break the chain (their results are fresh by contract).
func (p *purity) taintedExpr(ts taintSet, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		obj := p.pass.Info.Uses[e]
		if obj == nil {
			obj = p.pass.Info.Defs[e]
		}
		return obj != nil && ts[obj]
	case *ast.ParenExpr:
		return p.taintedExpr(ts, e.X)
	case *ast.IndexExpr:
		return p.taintedExpr(ts, e.X)
	case *ast.SliceExpr:
		return p.taintedExpr(ts, e.X)
	case *ast.SelectorExpr:
		// Field of a tainted struct pointer; method values break the chain.
		if _, isField := p.pass.Info.Uses[e.Sel].(*types.Var); isField {
			return p.taintedExpr(ts, e.X)
		}
		return false
	case *ast.StarExpr:
		return p.taintedExpr(ts, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return p.taintedExpr(ts, e.X)
		}
	}
	return false
}

// transferTaint propagates taint through a block's assignments.
func (p *purity) transferTaint(b *Block, in taintSet) taintSet {
	ts := in
	mutated := false
	set := func(obj types.Object, tainted bool) {
		if obj == nil {
			return
		}
		if ts[obj] == tainted {
			return
		}
		if !mutated {
			ts = ts.clone()
			mutated = true
		}
		if tainted {
			ts[obj] = true
		} else {
			delete(ts, obj)
		}
	}
	for _, n := range b.Nodes {
		InspectShallow(n, func(m ast.Node) bool {
			as, ok := m.(*ast.AssignStmt)
			if !ok || (as.Tok != token.ASSIGN && as.Tok != token.DEFINE) {
				return true
			}
			if len(as.Lhs) != len(as.Rhs) {
				// Tuple-from-call: results are fresh, clear the LHS.
				for _, lhs := range as.Lhs {
					if id, isID := lhs.(*ast.Ident); isID && id.Name != "_" {
						set(p.objectOf(id), false)
					}
				}
				return true
			}
			for i, lhs := range as.Lhs {
				id, isID := lhs.(*ast.Ident)
				if !isID || id.Name == "_" {
					continue
				}
				obj := p.objectOf(id)
				// Only reference-like destinations can carry taint:
				// `t := in[0]` copies a by-value Task and owns the copy.
				tainted := p.taintedExpr(ts, as.Rhs[i]) && obj != nil && isProtectedType(obj.Type(), 0)
				set(obj, tainted)
			}
			return true
		})
	}
	return ts
}

func (p *purity) objectOf(id *ast.Ident) types.Object {
	if o := p.pass.Info.Uses[id]; o != nil {
		return o
	}
	return p.pass.Info.Defs[id]
}

// sortFuncs are the in-place sorters from the standard library.
var sortFuncs = map[string]bool{
	"Sort": true, "Stable": true, "Slice": true, "SliceStable": true,
	"Float64s": true, "Ints": true, "Strings": true, "SortFunc": true,
	"SortStableFunc": true, "Reverse": true,
}

// rootOf returns the leftmost identifier of an lvalue chain, or nil.
func rootOf(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			return x
		default:
			return nil
		}
	}
}

// reportBlock flags the impure operations of one node given the taint
// state before it.
func (p *purity) reportNode(n ast.Node, ts taintSet) {
	InspectShallow(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.AssignStmt:
			for _, lhs := range m.Lhs {
				root := rootOf(lhs)
				if root == nil {
					continue
				}
				// A plain rebind `x = ...` of a tainted local only changes
				// the local; a store `x[i] = ...` / `x.f = ...` / `*x = ...`
				// writes through the alias.
				if _, isIdent := lhs.(*ast.Ident); isIdent {
					continue
				}
				obj := p.objectOf(root)
				if obj != nil && ts[obj] {
					p.pass.Reportf(lhs.Pos(), "store through %s mutates scheduler input (schedulers must treat Platform, task slices and DAGs as read-only)", root.Name)
				}
			}
		case *ast.IncDecStmt:
			if root := rootOf(m.X); root != nil {
				if _, isIdent := m.X.(*ast.Ident); !isIdent {
					obj := p.objectOf(root)
					if obj != nil && ts[obj] {
						p.pass.Reportf(m.Pos(), "increment through %s mutates scheduler input", root.Name)
					}
				}
			}
		case *ast.CallExpr:
			sel, isSel := m.Fun.(*ast.SelectorExpr)
			if !isSel {
				return true
			}
			// sort.Slice(in, ...) / slices.SortFunc(in, ...) on a tainted arg.
			if pkgID, isPkg := sel.X.(*ast.Ident); isPkg {
				if _, isPkgName := p.pass.Info.Uses[pkgID].(*types.PkgName); isPkgName {
					if (pkgID.Name == "sort" || pkgID.Name == "slices") && sortFuncs[sel.Sel.Name] && len(m.Args) > 0 {
						if p.taintedExpr(ts, m.Args[0]) {
							root := rootOf(m.Args[0])
							name := "argument"
							if root != nil {
								name = root.Name
							}
							p.pass.Reportf(m.Pos(), "%s.%s sorts %s in place, mutating scheduler input — sort a Clone() instead", pkgID.Name, sel.Sel.Name, name)
						}
					}
					return true
				}
			}
			// Method with "Sort" in the name on a tainted receiver.
			if strings.Contains(sel.Sel.Name, "Sort") && p.taintedExpr(ts, sel.X) {
				root := rootOf(sel.X)
				name := "receiver"
				if root != nil {
					name = root.Name
				}
				p.pass.Reportf(m.Pos(), "%s.%s may reorder scheduler input in place — operate on a Clone() instead", name, sel.Sel.Name)
			}
		}
		return true
	})
}

func runPurity(pass *Pass) {
	p := &purity{pass: pass}
	for _, fb := range FunctionsOf(pass.Files) {
		entry := make(taintSet)
		for _, fl := range []*ast.FieldList{fb.Recv, fb.Type.Params} {
			if fl == nil {
				continue
			}
			for _, f := range fl.List {
				for _, name := range f.Names {
					obj := pass.Info.Defs[name]
					if obj != nil && isProtectedType(obj.Type(), 0) {
						entry[obj] = true
					}
				}
			}
		}
		if len(entry) == 0 {
			continue
		}
		g := BuildCFG(fb.Body)
		res := Solve(&FlowProblem[taintSet]{
			CFG:      g,
			Entry:    entry,
			Join:     joinTaint,
			Equal:    equalTaint,
			Transfer: p.transferTaint,
		})
		for _, b := range g.Blocks {
			if !res.Reached[b.Index] {
				continue
			}
			ts := res.In[b.Index]
			for _, n := range b.Nodes {
				p.reportNode(n, ts)
				ts = p.transferTaint(&Block{Nodes: []ast.Node{n}}, ts)
			}
		}
	}
}

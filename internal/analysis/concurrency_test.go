package analysis

import (
	"strings"
	"testing"
)

// loadFixtureProgram loads one testdata fixture directory under the given
// module-relative path and builds its call-graph program.
func loadFixtureProgram(t *testing.T, dir, rel string) ([]*Package, *Program) {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadDir(dir, rel)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages loaded from %s", dir)
	}
	return pkgs, BuildProgram(pkgs)
}

// TestLockGraphDeterministic dumps the lock acquisition graph of the
// lockorder fixture from two independently built programs and requires
// byte equality — the -lockgraph output is part of the CI contract.
func TestLockGraphDeterministic(t *testing.T) {
	_, prog1 := loadFixtureProgram(t, "testdata/lockorder", "internal/lockfixture")
	_, prog2 := loadFixtureProgram(t, "testdata/lockorder", "internal/lockfixture")
	d1 := prog1.DumpLockGraph()
	d2 := prog2.DumpLockGraph()
	if d1 == "" {
		t.Fatal("lock graph of the lockorder fixture is empty")
	}
	if d1 != d2 {
		t.Errorf("lock graph dump differs across builds:\n--- first\n%s--- second\n%s", d1, d2)
	}
	// Re-dumping the same program hits the edge cache and must agree too.
	if again := prog1.DumpLockGraph(); again != d1 {
		t.Errorf("cached lock graph dump differs:\n--- first\n%s--- cached\n%s", d1, again)
	}
}

// TestLockGraphEdges pins the fixture's expected edges: the AB/BA pair,
// the self-loop, the consistent-order edge from ok.go, and the allowed
// pair — and the absence of any edge from the goroutine spawn (a spawned
// body runs with its own held set).
func TestLockGraphEdges(t *testing.T) {
	_, prog := loadFixtureProgram(t, "testdata/lockorder", "internal/lockfixture")
	dump := prog.DumpLockGraph()
	for _, want := range []string{
		"fixture.alpha.mu -> fixture.beta.mu [fixture.lockAlphaThenBeta → fixture.bumpBeta]\n",
		"fixture.beta.mu -> fixture.alpha.mu [fixture.lockBetaThenAlpha]\n",
		"fixture.gamma.mu -> fixture.gamma.mu [fixture.reentrant]\n",
		"fixture.outer.mu -> fixture.inner.mu [fixture.okNested]\n",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("lock graph missing edge %q; got:\n%s", want, dump)
		}
	}
	if strings.Contains(dump, "fixture.inner.mu -> ") {
		t.Errorf("goroutine acquisition leaked into the spawner's held set:\n%s", dump)
	}
	cycles := prog.LockCycles()
	if len(cycles) != 3 {
		t.Errorf("got %d cycles, want 3 (AB/BA, self-loop, allowed pair): %+v", len(cycles), cycles)
	}
}

// TestParseRaceOutput feeds a canned -race report through the parser and
// checks the extracted top frames.
func TestParseRaceOutput(t *testing.T) {
	out := `=== RUN   TestMap
==================
WARNING: DATA RACE
Write at 0x00c000120010 by goroutine 8:
  repro/internal/engine.Map.func1()
      /work/repo/internal/engine/engine.go:224 +0x44

Previous write at 0x00c000120010 by main goroutine:
  repro/internal/engine.Map()
      /work/repo/internal/engine/engine.go:230 +0x30

Goroutine 8 (running) created at:
  repro/internal/engine.Map()
      /work/repo/internal/engine/engine.go:217 +0x104
==================
--- FAIL: TestMap (0.01s)
    testing.go:1490: race detected during execution of test
FAIL
`
	blocks := ParseRaceOutput(out)
	if len(blocks) != 1 {
		t.Fatalf("got %d blocks, want 1: %+v", len(blocks), blocks)
	}
	want := []RaceLoc{
		{File: "/work/repo/internal/engine/engine.go", Line: 224},
		{File: "/work/repo/internal/engine/engine.go", Line: 230},
	}
	if len(blocks[0]) != len(want) {
		t.Fatalf("got %d locs, want %d: %+v", len(blocks[0]), len(want), blocks[0])
	}
	for i, loc := range blocks[0] {
		if loc != want[i] {
			t.Errorf("loc %d = %+v, want %+v", i, loc, want[i])
		}
	}
	if got := ParseRaceOutput("ok  \trepro/internal/engine\t0.5s\n"); len(got) != 0 {
		t.Errorf("clean output produced blocks: %+v", got)
	}
}

// TestCaptureCandidatesFixture: every capturecheck report line and the
// full span of each implicated goroutine literal must be in the candidate
// set the -race differential validation checks against.
func TestCaptureCandidatesFixture(t *testing.T) {
	pkgs, prog := loadFixtureProgram(t, "testdata/capturecheck", "internal/engine")
	cands := CaptureCandidates(pkgs, prog)
	total := 0
	for _, lines := range cands {
		total += len(lines)
	}
	if total == 0 {
		t.Fatal("capturecheck fixture produced an empty candidate set")
	}
	// The suppressed finding in allowed.go must still be a candidate: the
	// race detector does not honor lint escapes.
	found := false
	for file, lines := range cands {
		if strings.HasSuffix(file, "allowed.go") && len(lines) > 0 {
			found = true
		}
		_ = lines
	}
	if !found {
		t.Errorf("allowed.go spans missing from the raw candidate set: %v", cands)
	}
}

// TestStaleAllowsFixture checks both directions on the stalecheck
// fixture: the live allow stays quiet, the stale one is reported.
func TestStaleAllowsFixture(t *testing.T) {
	pkgs, prog := loadFixtureProgram(t, "testdata/stalecheck", "internal/sched")
	suite := All()
	var raw []Diagnostic
	for _, p := range pkgs {
		_, r := RunAnalyzersProgramRaw(suite, p, prog)
		raw = append(raw, r...)
	}
	stale := StaleAllows(suite, pkgs, prog, raw)
	if len(stale) != 1 {
		t.Fatalf("got %d stale allows, want 1: %v", len(stale), stale)
	}
	d := stale[0]
	if !strings.Contains(d.Message, "stale hplint:allow maporder") {
		t.Errorf("unexpected message: %s", d.Message)
	}
	if base := d.Pos.Filename; !strings.HasSuffix(base, "fixture.go") || d.Pos.Line != 17 {
		t.Errorf("stale allow reported at %s:%d, want fixture.go:17", d.Pos.Filename, d.Pos.Line)
	}
	if d.Analyzer != "hplint" {
		t.Errorf("stale allow attributed to %q, want hplint", d.Analyzer)
	}
}

package fixture

func racyReadByDesign(c *counter) float64 {
	//hplint:allow lockcheck approximate metric read, staleness is acceptable here
	return c.n
}

package fixture

// Accesses to guarded fields (declared after their mutex) that some path
// reaches without the lock held.

func badWrite(c *counter) {
	c.n++ // want "write to c.n guarded by mu"
}

func badRead(c *counter) float64 {
	return c.n // want "read of c.n guarded by mu"
}

func badAfterUnlock(c *counter) float64 {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	return c.n // want "read of c.n guarded by mu"
}

func badOnOnePath(c *counter, b bool) {
	if b {
		c.mu.Lock()
	}
	c.n++ // want "write to c.n guarded by mu"
	if b {
		c.mu.Unlock()
	}
}

func badWriteUnderRLock(g *gauge, x float64) {
	g.mu.RLock()
	g.v = x // want "write to g.v guarded by mu"
	g.mu.RUnlock()
}

package fixture

import "sync"

// counter follows the positional convention: mu guards n (declared after
// it) but not label (declared before it).
type counter struct {
	label string
	mu    sync.Mutex
	n     float64
}

type gauge struct {
	mu sync.RWMutex
	v  float64
}

func okWrite(c *counter) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func okDeferred(c *counter, x float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += x
}

func (c *counter) Add(x float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += x
}

func okReadUnderRLock(g *gauge) float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.v
}

func okUnguardedField(c *counter) string {
	return c.label // declared before mu: not guarded
}

func okConstructor() *counter {
	c := &counter{}
	c.n = 1 // local value, not yet shared: the constructor idiom
	return c
}

func okDoubleChecked(g *gauge, x float64) float64 {
	g.mu.RLock()
	v := g.v
	g.mu.RUnlock()
	if v > 0 {
		return v
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.v = x
	return g.v
}

package fixture

// A live allow (the analyzer would still fire underneath) and a stale one
// (the code was rewritten and the escape now suppresses nothing).

func liveAllow(m map[int]float64) []int {
	var ids []int
	//hplint:allow maporder fixture consumer tolerates any order
	for id := range m {
		ids = append(ids, id)
	}
	return ids
}

func staleAllow(xs []int) []int {
	var out []int
	//hplint:allow maporder this loop was rewritten over a slice
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

package fixture

// sameBits compares floats copied from the same slice, where equal bits
// mean the same element.
func sameBits(a, b float64) bool {
	//hplint:allow floateq fixture exercises the escape-comment path
	return a == b
}

package fixture

func equalExact(a, b float64) bool {
	return a == b // want "exact float =="
}

func notEqualExact(a, b float64) bool {
	return a != b // want "exact float !="
}

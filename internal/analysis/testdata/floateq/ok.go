package fixture

import "math"

const eps = 1e-9

// equalEps is the sanctioned epsilon comparison.
func equalEps(a, b float64) bool { return math.Abs(a-b) <= eps }

// less is the sanctioned deterministic three-way comparator idiom.
func less(a, b float64, i, j int) bool {
	if a != b {
		return a < b
	}
	return i < j
}

// intEqual compares integers: exact equality is fine outside floats.
func intEqual(a, b int) bool { return a == b }

package fixture

import (
	"math/rand"
	"time"
)

func wallClock() float64 {
	start := time.Now()   // want "time.Now in scheduling code"
	_ = time.Since(start) // want "time.Since in scheduling code"
	return rand.Float64() // want "global rand.Float64 in scheduling code"
}

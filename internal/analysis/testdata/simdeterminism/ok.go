package fixture

import (
	"math/rand"
	"time"
)

// seededDraw draws from an injected, seeded source: methods on *rand.Rand
// are the sanctioned form of randomness.
func seededDraw(r *rand.Rand) float64 { return r.Float64() }

// makeSource builds such a source; rand.New and rand.NewSource do not
// touch the global source and are allowed.
func makeSource(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// horizon only does duration arithmetic, never reads the clock.
func horizon(d time.Duration) float64 { return d.Seconds() }

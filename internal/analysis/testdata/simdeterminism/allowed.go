package fixture

import "time"

func epoch() time.Time {
	//hplint:allow simdeterminism fixture exercises the escape-comment path
	return time.Now()
}

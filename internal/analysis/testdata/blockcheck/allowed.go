package fixture

// The escape hatch: a justified allow on the line above suppresses the
// finding.

func allowedDeadRecv() int {
	ch := make(chan int)
	//hplint:allow blockcheck fixture exercises the suppression path
	return <-ch
}

package fixture

import (
	"context"
	"sync"
)

// Sanctioned shapes: counterparts present somewhere in the module,
// select escapes, buffered handoffs, and identities the analysis must
// leave alone (parameters, aliased values).

func okPaired() int {
	ch := make(chan int, 1)
	ch <- 1
	return <-ch
}

func okWaitGroup() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		wg.Done()
	}()
	wg.Wait()
}

func okCond() {
	var mu sync.Mutex
	c := sync.NewCond(&mu)
	go func() {
		c.Broadcast()
	}()
	mu.Lock()
	c.Wait()
	mu.Unlock()
}

// A default case means the select never blocks, whatever the channels do.
func okSelectDefault() int {
	idle := make(chan int)
	select {
	case v := <-idle:
		return v
	default:
		return 0
	}
}

// A case receiving from an out-of-module channel (the runtime fires
// ctx.Done eventually) is an escape for the whole select.
func okCtxEscape(ctx context.Context) {
	idle := make(chan int)
	select {
	case <-idle:
	case <-ctx.Done():
	}
}

// Parameters may be fed from anywhere: no deadness conclusion is sound.
func okParamChan(ch chan int) int {
	return <-ch
}

// An aliased channel (passed to another function) leaves the analysis.
func okAliased() int {
	ch := make(chan int)
	feed(ch)
	return <-ch
}

func feed(ch chan int) {
	go func() {
		ch <- 7
	}()
}

// A buffered handoff under a lock cannot deadlock on the receiver.
func okBufferedUnderLock(c *courier) {
	ch := make(chan int, 1)
	go func() {
		<-ch
	}()
	c.mu.Lock()
	ch <- 1
	c.mu.Unlock()
}

package fixture

import "sync"

// Blocking operations whose counterpart exists nowhere in the module, and
// the unbuffered-send-under-lock deadlock shape.

func deadReceive() int {
	ch := make(chan int)
	return <-ch // want "receive on channel ch has no send or close anywhere in the module"
}

func deadSendForever() {
	done := make(chan struct{})
	done <- struct{}{} // want "send on channel done has no receive anywhere in the module"
}

func waitNoDone() {
	var wg sync.WaitGroup
	wg.Add(1)
	wg.Wait() // want "wg.Wait has no matching Done anywhere in the module"
}

func condWaitNoSignal() {
	var mu sync.Mutex
	c := sync.NewCond(&mu)
	mu.Lock()
	c.Wait() // want "c.Wait has no Signal or Broadcast anywhere in the module"
	mu.Unlock()
}

// Every case of this select is provably dead and there is no escape.
func deadSelect() {
	never := make(chan int)
	select { // want "every case of this select can block forever"
	case <-never:
	}
}

type courier struct {
	mu sync.Mutex
	n  int
}

// The receiver of an unbuffered channel may need the lock the sender
// holds; the handoff must happen outside the critical section.
func sendWhileLocked(c *courier) {
	ch := make(chan int)
	go func() {
		<-ch
	}()
	c.mu.Lock()
	c.n++
	ch <- c.n // want "send on unbuffered channel ch while holding"
	c.mu.Unlock()
}

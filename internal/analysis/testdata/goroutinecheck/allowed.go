package fixture

func detachedServerLoop() {
	//hplint:allow goroutinecheck serve loop runs for the process lifetime, joined by process exit
	go work3()
}

func work3() {}

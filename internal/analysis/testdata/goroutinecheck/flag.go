package fixture

import (
	"math/rand"
	"sync"
)

func fireAndForget() {
	go func() { // want "no visible join"
		work2()
	}()
}

func namedFunction() {
	go work2() // want "named function"
}

func capturedGenerator() {
	rng := rand.New(rand.NewSource(1))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = rng.Int63() // want "crosses a goroutine boundary"
	}()
	wg.Wait()
}

func generatorArgument() {
	rng := rand.New(rand.NewSource(2))
	var wg sync.WaitGroup
	wg.Add(1)
	go func(r *rand.Rand) {
		defer wg.Done()
		_ = r.Int63()
	}(rng) // want "passed across a goroutine boundary"
	wg.Wait()
}

func work2() {}

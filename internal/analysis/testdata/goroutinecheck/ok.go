package fixture

import (
	"math/rand"
	"sync"
)

// The three sanctioned join signals, and the sanctioned RNG pattern:
// every goroutine derives its own generator from a plain seed.

func joinedByWaitGroup() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

func joinedByChannelSend() {
	done := make(chan struct{})
	go func() {
		work()
		done <- struct{}{}
	}()
	<-done
}

func joinedByClose() {
	done := make(chan struct{})
	go func() {
		defer close(done)
		work()
	}()
	<-done
}

func perGoroutineGenerator(seed int64) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(seed))
		_ = rng.Int63()
	}()
	wg.Wait()
}

func work() {}

package fixture

// Sanctioned arithmetic: same-dimension sums, the unit-preserving
// multiplicative algebra, and conservative silence around unknowns.

func sumTimes(makespan, idleTime float64) float64 {
	return makespan + idleTime
}

func scaleByRatio(makespan, accel float64) float64 {
	return makespan * accel // time x ratio -> time
}

func accelOf(cpuTime, gpuTime float64) float64 {
	ratio := cpuTime / gpuTime // time / time -> ratio
	return ratio
}

func areaFromTimes(busyTime, horizon float64) float64 {
	area := busyTime * horizon // time x time -> area
	return area
}

func unknownStaysSilent(makespan float64, cols int) float64 {
	scale := float64(cols) / makespan // int operand is unit-free
	return scale * makespan
}

func scaleConversion(spanSec float64) float64 {
	// Multiplying by a bare literal loses the unit (the analysis cannot
	// know 1000 is a scale factor), so the ms-named destination is fine.
	spanMs := spanSec * 1000.0
	return spanMs
}

func boundsAreTimes(areaBound, makespan float64) bool {
	// Every *Bound in this repository is a makespan lower bound — a time.
	return areaBound <= makespan
}

func flowTracksReassignment(makespan, accel float64) float64 {
	v := makespan
	v = accel // v is now a ratio...
	return v * makespan
}

package fixture

// Each function mixes units the dimensional analysis must catch.

func mixTimeRatio(makespan, accel float64) float64 {
	return makespan + accel // want "mixes time and ratio"
}

func mixScales(elapsedMs, waitSec float64) float64 {
	return elapsedMs + waitSec // want "mixes milliseconds and seconds"
}

func compareAreaTime(area, makespan float64) bool {
	return area > makespan // want "mixes area and time"
}

func assignMismatch(spanSec float64) float64 {
	totalMs := spanSec // want "mixes milliseconds and seconds"
	return totalMs
}

func flowMix(makespan, accel float64) float64 {
	v := makespan
	return v + accel // want "mixes time and ratio"
}

func compoundMix(idleTime, rho float64) float64 {
	total := idleTime
	total += rho // want "mixes time and ratio"
	return total
}

func divideScales(busyMs, horizonSec float64) float64 {
	return busyMs / horizonSec // want "mixes milliseconds and seconds"
}

package fixture

func deliberateMix(makespan, accel float64) float64 {
	//hplint:allow unitflow demonstration of an intentionally dimensionless merge
	return makespan + accel
}

package fixture

import (
	"sort"

	"repro/internal/dag"
	"repro/internal/platform"
)

// The sanctioned forms: clone before sorting, write only to scratch
// state, reads are always fine.

func okCloneSort(in platform.Instance) platform.Instance {
	order := in.Clone()
	sort.SliceStable(order, func(i, j int) bool { return order[i].Priority > order[j].Priority })
	return order
}

func okScratchWrite(in platform.Instance, out []int) {
	for i := range in {
		out[i] = in[i].ID // []int scratch is not scheduler input
	}
}

func okRebind(in platform.Instance) int {
	in = in[:0] // rebinding the local parameter copies no caller state
	return len(in)
}

func okCloneReassign(in platform.Instance) platform.Instance {
	in = in.Clone() // the local name now aliases a fresh slice...
	in[0].Priority = 1
	return in
}

func okReadGraph(g *dag.Graph, pl platform.Platform) float64 {
	var total float64
	for _, t := range g.Tasks() {
		total += t.Time(platform.CPU)
	}
	_ = pl
	return total
}

func okValueCopy(in platform.Instance) platform.Task {
	t := in[0] // Task is a value type; the copy is ours
	t.Priority = 9
	return t
}

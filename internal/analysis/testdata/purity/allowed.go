package fixture

import "repro/internal/platform"

func sanctionedMutation(in platform.Instance) {
	//hplint:allow purity priority annotation pass owns its input by contract
	in[0].Priority = 7
}

package fixture

import (
	"sort"

	"repro/internal/platform"
)

// Schedulers must not mutate their inputs: stores through aliases of the
// caller's slices and in-place sorts are flagged.

func badSort(in platform.Instance) {
	sort.SliceStable(in, func(i, j int) bool { return in[i].Priority > in[j].Priority }) // want "sorts in in place"
}

func badStore(in platform.Instance) {
	in[0].Priority = 1 // want "store through in"
}

func badAliasStore(in platform.Instance) {
	view := in[1:]
	view[0].Priority = 2 // want "store through view"
}

func badPtrStore(ts []*platform.Task) {
	ts[0].Priority = 3 // want "store through ts"
}

func badMaybeAlias(in platform.Instance, b bool) {
	work := make(platform.Instance, len(in))
	if b {
		work = in
	}
	work[0].Priority = 4 // want "store through work"
}

func badIncrement(in platform.Instance) {
	in[0].Priority++ // want "increment through in"
}

// Interprocedural: passing scheduler input to a helper that mutates its
// parameter is flagged at the call site, with the helper's own store
// flagged where it happens.

func mutateHelper(ts []*platform.Task) {
	ts[0].Priority = 9 // want "store through ts"
}

func badCallMutator(in []*platform.Task) {
	mutateHelper(in) // want "mutates this argument"
}

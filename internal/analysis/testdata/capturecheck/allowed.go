package fixture

// The escape hatch: a justified allow on the line above suppresses the
// finding.

func allowedRace() int {
	n := 0
	done := make(chan struct{})
	go func() {
		n++
		close(done)
	}()
	//hplint:allow capturecheck fixture exercises the suppression path
	n = 2
	<-done
	return n
}

package fixture

import "sync"

// Goroutine closures capturing variables the spawning function also
// touches without a common lock: the static race candidates.

func writeAfterSpawn() int {
	total := 0
	done := make(chan struct{})
	go func() {
		total += 1
		close(done)
	}()
	total = 5 // want "captured variable total is written both here and by the goroutine spawned at line"
	<-done
	return total
}

func readWhileSpawnWrites() int {
	count := 0
	done := make(chan struct{})
	go func() {
		count = 9
		close(done)
	}()
	snapshot := count // want "captured variable count is read here while the goroutine spawned at line"
	<-done
	return snapshot
}

func loopSpawn(n int) int {
	sum := 0
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { // want "goroutine spawned in a loop writes captured variable sum"
			sum++
			wg.Done()
		}()
	}
	wg.Wait()
	return sum
}

func doubleSpawn() int {
	hits := 0
	done := make(chan struct{}, 2)
	go func() {
		hits++
		done <- struct{}{}
	}()
	go func() { // want "both write captured variable hits without a common lock"
		hits++
		done <- struct{}{}
	}()
	<-done
	<-done
	return hits
}

type counterBox struct {
	n int
}

func bumpCount(c *counterBox) {
	c.n++
}

// The write is invisible in the closure body: it happens through a callee
// the summary layer knows mutates its argument.
func calleeMutates() int {
	box := &counterBox{}
	done := make(chan struct{})
	go func() {
		bumpCount(box)
		close(done)
	}()
	snapshot := box.n // want "mutates its argument"
	<-done
	return snapshot + box.n
}

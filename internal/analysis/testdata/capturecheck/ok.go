package fixture

import (
	"sync"
	"sync/atomic"
)

// Sanctioned shapes: a common lock on both sides, sharded index writes,
// accesses sequenced after a join, and types that synchronize themselves.

func okGuarded() int {
	var mu sync.Mutex
	total := 0
	done := make(chan struct{})
	go func() {
		mu.Lock()
		total++
		mu.Unlock()
		close(done)
	}()
	mu.Lock()
	total += 2
	mu.Unlock()
	<-done
	return total
}

// The engine.Map idiom: every instance writes its own element, indexed by
// a variable declared inside the goroutine.
func okSharded(n int) []int {
	results := make([]int, n)
	var wg sync.WaitGroup
	var next atomic.Int64
	for k := 0; k < n; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			i := int(next.Add(1)) - 1
			results[i] = i * i
		}()
	}
	wg.Wait()
	return results
}

// Reads and writes after the join are sequenced, not racing.
func okAfterJoin() int {
	total := 0
	done := make(chan struct{})
	go func() {
		total = 3
		close(done)
	}()
	<-done
	total++
	return total
}

// Atomics synchronize themselves.
func okAtomic() int64 {
	var n atomic.Int64
	done := make(chan struct{})
	go func() {
		n.Add(1)
		close(done)
	}()
	n.Add(1)
	<-done
	return n.Load()
}

// Values handed in as parameters are fresh per call.
func okParamCopy(seed int) int {
	out := make(chan int, 1)
	go func(s int) {
		out <- s * 2
	}(seed)
	return <-out
}

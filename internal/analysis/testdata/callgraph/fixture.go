// Package fixture exercises every edge kind the call-graph builder
// discovers: static calls, CHA-resolved interface dispatch, closure
// creation, and method values.
package fixture

// Doer has two in-module implementations; a call through it fans out to
// both under CHA.
type Doer interface {
	Do()
}

type Alpha struct{}

func (Alpha) Do() {}

type Beta struct{}

func (*Beta) Do() {}

func viaInterface(d Doer) {
	d.Do()
}

func static() {
	helper()
}

func helper() {}

func methodValue(a Alpha) func() {
	f := a.Do
	return f
}

func closures() int {
	n := 1
	f := func() int { return n + 1 }
	return f()
}

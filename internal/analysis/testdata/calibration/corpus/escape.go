// Package corpus is the calibration ground-truth corpus: small, isolated
// functions whose escape behavior is unambiguous. hplint's calibration
// mode (hplint -calibrate) diffs the allocflow analyzer's AllocEscape
// verdicts against `go build -gcflags=-m` over this package; the
// calibration test requires >=95% agreement. Functions deliberately do
// not call each other, so inlining cannot move escape messages between
// lines.
package corpus

type point struct{ x, y int }

type holder struct{ p *point }

var (
	sink      *point
	sinkSlice []int
	sinkBytes []byte
	sinkMap   map[string]int
	sinkFn    func() int
	sinkHold  holder
)

// NewPoint returns a freshly allocated point: the &point literal escapes
// through the return value.
func NewPoint() *point { return &point{1, 2} }

// StoreGlobal escapes the literal through a package-level variable.
func StoreGlobal() { sink = &point{3, 4} }

// StoreField escapes the literal through a global struct field.
func StoreField() { sinkHold.p = &point{5, 6} }

// SliceLit escapes a slice literal through the return value.
func SliceLit() []int { return []int{1, 2, 3} }

// MakeBuf escapes a make'd buffer through the return value.
func MakeBuf() []byte { return make([]byte, 64) }

// MakeGlobal escapes a make'd slice through a package-level variable.
func MakeGlobal() { sinkBytes = make([]byte, 32) }

// NewInt escapes a new'd int through the return value.
func NewInt() *int { return new(int) }

// MapLit escapes a map literal through the return value.
func MapLit() map[string]int { return map[string]int{"a": 1} }

// MapGlobal escapes a map literal through a package-level variable.
func MapGlobal() { sinkMap = map[string]int{"b": 2} }

// Counter returns a capturing closure: the func literal escapes, and the
// captured counter is moved to the heap (a known analyzer divergence —
// the compiler reports the move at the declaration line, the analyzer
// attributes the whole allocation to the closure).
func Counter() func() int {
	n := 0
	return func() int { n++; return n }
}

// ClosureGlobal escapes a capturing closure through a package-level
// variable.
func ClosureGlobal() {
	k := 7
	sinkFn = func() int { return k }
}

var sinkArr *[3]int

// NewHolder escapes the &holder literal through the return value.
func NewHolder() *holder { return &holder{} }

// MakeInts escapes a make'd int slice through the return value.
func MakeInts() []int { return make([]int, 8) }

// StoreSliceLit escapes a slice literal through a package-level variable.
func StoreSliceLit() { sinkSlice = []int{9, 10} }

// NewPair escapes an &array literal through the return value.
func NewPair() *[2]int { return &[2]int{11, 12} }

// GlobalArray escapes an &array literal through a package-level variable.
func GlobalArray() { sinkArr = &[3]int{13, 14, 15} }

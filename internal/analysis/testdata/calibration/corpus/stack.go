package corpus

// The stack-side of the corpus: allocation-looking syntax whose value
// provably stays local. The compiler reports "does not escape" for each;
// the analyzer must report no AllocEscape site, and every such line
// counts as a matched negative in the calibration report.

// LocalPoint keeps the &point literal on the stack.
func LocalPoint() int {
	p := &point{7, 8}
	return p.x + p.y
}

// LocalSliceLit keeps the slice literal on the stack.
func LocalSliceLit() int {
	s := []int{4, 5, 6}
	return s[0] + s[2]
}

// LocalMake keeps a constant-size make on the stack.
func LocalMake() int {
	buf := make([]byte, 16)
	buf[0] = 1
	return int(buf[0])
}

// LocalNew keeps a new'd value on the stack.
func LocalNew() int {
	n := new(int)
	*n = 9
	return *n
}

// LocalClosure calls a capturing closure without letting it escape.
func LocalClosure() int {
	total := 0
	add := func(v int) { total += v }
	add(3)
	add(4)
	return total
}

// ReadPointer takes a pointer without retaining it.
func ReadPointer(p *point) int { return p.x }

// LocalHolder keeps the &holder literal on the stack.
func LocalHolder() int {
	h := &holder{p: nil}
	if h.p == nil {
		return 1
	}
	return 0
}

// ReadHolder takes a pointer without retaining it.
func ReadHolder(h *holder) bool { return h.p != nil }

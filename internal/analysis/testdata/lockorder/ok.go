package fixture

import "sync"

// Sanctioned shapes: nesting in one consistent order, release-before-
// acquire sequencing, and goroutine bodies whose acquisitions do not
// extend the spawner's held set.

type outer struct {
	mu sync.Mutex
	n  int
}

type inner struct {
	mu sync.Mutex
	n  int
}

// Consistent nesting order everywhere: outer before inner. An edge, but
// no cycle.
func okNested(o *outer, i *inner) {
	o.mu.Lock()
	i.mu.Lock()
	i.n++
	o.n++
	i.mu.Unlock()
	o.mu.Unlock()
}

func okNestedAgain(o *outer, i *inner) {
	o.mu.Lock()
	defer o.mu.Unlock()
	i.mu.Lock()
	i.n--
	i.mu.Unlock()
}

// Sequential critical sections never hold both locks at once, so the
// reversed textual order contributes no edge.
func okSequential(o *outer, i *inner) {
	i.mu.Lock()
	i.n++
	i.mu.Unlock()
	o.mu.Lock()
	o.n++
	o.mu.Unlock()
}

// A goroutine spawned under a lock runs with its own (empty) held set:
// its acquisition is not "while holding" the spawner's lock.
func okSpawn(o *outer, i *inner) {
	o.mu.Lock()
	defer o.mu.Unlock()
	go func() {
		i.mu.Lock()
		i.n++
		i.mu.Unlock()
	}()
	o.n++
}

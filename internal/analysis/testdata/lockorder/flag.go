package fixture

import "sync"

// Two locks acquired in opposite orders across a call chain — the classic
// AB/BA shape the acquisition graph exists to catch — plus a reentrant
// self-lock. The cycle is reported once, anchored at the closing edge
// reached first in the deterministic edge order.

type alpha struct {
	mu sync.Mutex
	n  int
}

type beta struct {
	mu sync.Mutex
	n  int
}

func lockAlphaThenBeta(a *alpha, b *beta) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.n++
	bumpBeta(b) // want "lock-order cycle (potential deadlock)"
}

// bumpBeta's acquisition reaches the graph through the call summary, not
// a direct Lock in the caller.
func bumpBeta(b *beta) {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

func lockBetaThenAlpha(a *alpha, b *beta) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
}

type gamma struct {
	mu sync.Mutex
	n  int
}

func reentrant(g *gamma) {
	g.mu.Lock()
	g.mu.Lock() // want "reacquired while held"
	g.n += 2
	g.mu.Unlock()
	g.mu.Unlock()
}

package fixture

import "sync"

// The escape hatch: a justified allow at the closing edge's anchor site
// suppresses the cycle report.

type pLocked struct {
	mu sync.Mutex
	n  int
}

type qLocked struct {
	mu sync.Mutex
	n  int
}

func allowedOrderOne(p *pLocked, q *qLocked) {
	p.mu.Lock()
	defer p.mu.Unlock()
	//hplint:allow lockorder fixture exercises the suppression path
	q.mu.Lock()
	q.n++
	q.mu.Unlock()
}

func allowedOrderTwo(p *pLocked, q *qLocked) {
	q.mu.Lock()
	defer q.mu.Unlock()
	p.mu.Lock()
	p.n++
	p.mu.Unlock()
}

package fixture

import (
	"errors"
	"fmt"
	"strings"
)

func mightFail() error { return errors.New("boom") }

func parse() (int, error) { return 0, errors.New("bad") }

func okChecked() error {
	err := mightFail()
	if err != nil {
		return err
	}
	return nil
}

func okExplicitDiscard() {
	_ = mightFail()
}

func okTupleDiscard() {
	_, _ = parse()
}

func okFmt() {
	fmt.Println("printer errors are conventionally ignored")
}

func okBuilder() string {
	var b strings.Builder
	b.WriteString("never fails")
	return b.String()
}

func okRetryLoop() error {
	var err error
	for i := 0; i < 3; i++ {
		err = mightFail()
		if err == nil {
			break
		}
	}
	return err
}

func okClosureUse() error {
	err := mightFail()
	f := func() error { return err }
	return f()
}

func okNamedResult() (err error) {
	err = mightFail()
	return
}

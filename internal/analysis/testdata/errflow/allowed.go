package fixture

func bestEffortCleanup() {
	//hplint:allow errflow best-effort cleanup, failure changes nothing
	mightFail()
}

package fixture

// Errors dropped along some path, shadowed errors, and discarded error
// results in statement position.

func dropStatement() {
	mightFail() // want "discards its error result"
}

func dropOnBranch(b bool) error {
	err := mightFail() // want "dropped on some path"
	if b {
		return err
	}
	return nil
}

func dropByOverwrite() error {
	err := mightFail() // want "dropped on some path"
	err = mightFail()
	return err
}

func dropShadowed(b bool) error {
	_, err := parse()
	if err != nil {
		return err
	}
	if b {
		n, err := parse() // want "shadows the outer err"
		if n > 0 {
			return err
		}
	}
	return nil
}

package fixture

// The two escape forms: a positional allow at the allocation site
// (cleans the summary for every caller) and a doc-comment allow that
// contracts a whole callee as accepted cost.

// Record grows the caller's log: the append is the function's product.
//
//hplint:hotpath
func Record(log []string, s string) []string {
	//hplint:allow allocflow the recorded log is this function's product
	return append(log, s)
}

// expensive is contracted: every hot caller accepts its cost.
//
//hplint:allow allocflow fixture contract: scratch setup amortized across the run
func expensive() []byte {
	return make([]byte, 1024)
}

// Checkpoint reaches expensive's allocation only through the contract,
// so no chain is reported.
//
//hplint:hotpath
func Checkpoint() int {
	return len(expensive())
}

package fixture

// The sanctioned forms: hot paths that stay on the stack by filling
// caller-owned buffers by index and reading scalars back out.

// Fill compacts the even values into the caller's buffer.
//
//hplint:hotpath
func Fill(buf []int, n int) int {
	k := 0
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			buf[k] = i
			k++
		}
	}
	return k
}

// Peak calls a clean helper: interprocedural propagation must not
// invent an allocation where none exists.
//
//hplint:hotpath
func Peak(vs []int) int {
	best := 0
	for i := range vs {
		if greater(vs[i], best) {
			best = vs[i]
		}
	}
	return best
}

func greater(a, b int) bool { return a > b }

package fixture

import "fmt"

// Hot paths must not allocate, directly or through any realizable call
// chain. The chain below is four frames deep and crosses an interface
// dispatch: Step → fire → (Emitter.Emit) → Sink.Emit → Sink.record.

// Emitter is the dispatch point of the deep chain.
type Emitter interface {
	Emit(n int)
}

// Sink implements Emitter with an allocating chain behind it.
type Sink struct{ lines []string }

func (s *Sink) Emit(n int) { s.record(n) }

func (s *Sink) record(n int) {
	s.lines = append(s.lines, describe(n))
}

func describe(n int) string {
	return fmt.Sprintf("n=%d", n)
}

// Step is a hot root reaching the allocation only interprocedurally.
//
//hplint:hotpath
func Step(e Emitter, n int) {
	fire(e, n) // want "reaches an allocation"
}

func fire(e Emitter, n int) {
	e.Emit(n)
}

// Box allocates in its own body: boxing a concrete int into any.
//
//hplint:hotpath
func Box(v int) {
	sinkAny(v) // want "interface boxing of int argument"
}

func sinkAny(v any) { _ = v }

// Grow allocates in its own body: append may grow the backing array.
//
//hplint:hotpath
func Grow(vs []int, v int) []int {
	return append(vs, v) // want "append may grow the backing array"
}

// misplaced carries the marker inside the body, where it protects
// nothing — that must fail loudly.
func misplaced() int {
	//hplint:hotpath // want "not attached to a function declaration"
	return 0
}

package fixture

import "repro/internal/obs"

func emitEscaped(o obs.Observer, now float64) {
	//hplint:allow obsguard fixture exercises the escape-comment path
	o.QueueDepthSample(now, 0)
}

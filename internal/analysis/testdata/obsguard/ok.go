package fixture

import (
	"repro/internal/obs"
	"repro/internal/platform"
)

func emitGuarded(o obs.Observer, now float64, t platform.Task) {
	if o != nil {
		o.TaskQueued(now, t, 1)
	}
	// The nil check may sit among other conjuncts.
	if now > 0 && o != nil {
		o.QueueDepthSample(now, 2)
	}
}

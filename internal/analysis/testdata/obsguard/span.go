package fixture

import (
	"context"
	"fmt"

	"repro/internal/obs"
)

// A SpanFromContext result may be nil (untraced request): calling
// through it without a guard panics.
func spanUnguarded(ctx context.Context) {
	sp := obs.SpanFromContext(ctx)
	sp.Annotate("outcome", "boom") // want "outside an `if sp != nil` guard"
	sp.End()                       // want "outside an `if sp != nil` guard"
}

func spanGuarded(ctx context.Context) {
	sp := obs.SpanFromContext(ctx)
	if sp != nil {
		sp.Annotate("outcome", "ok")
		sp.End()
	}
}

// StartTrace/StartChild never return nil, so spans assigned only from
// them may be used bare.
func spanStartedDirect(tr *obs.Tracer) {
	sp := tr.StartTrace("request")
	sp.Annotate("kind", "ok")
	child := sp.StartChild("phase")
	child.End()
	sp.End()
}

// A `var` declaration poisons the variable (it held nil at some point),
// so uses need guards even after a conditional start.
func spanConditionalStart(ctx context.Context) {
	parent := obs.SpanFromContext(ctx)
	var sp *obs.Span
	if parent != nil {
		sp = parent.StartChild("phase")
	}
	sp.End() // want "outside an `if sp != nil` guard"
}

// Span arguments obey the observer rule: no per-event allocation.
func spanAllocatingArgs(tr *obs.Tracer, n int) {
	sp := tr.StartTrace("request")
	sp.Annotate("detail", fmt.Sprint(n)) // want "allocating argument (fmt.Sprint call)"
	sp.End()
}

package fixture

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/platform"
)

func emitUnguarded(o obs.Observer, now float64) {
	o.QueueDepthSample(now, 0) // want "outside an `if o != nil` guard"
}

func emitAllocating(o obs.Observer, now float64) {
	if o != nil {
		o.TaskQueued(now, platform.Task{ID: 1}, 0)            // want "allocating argument (composite literal)"
		o.WorkerIdle(now, len(fmt.Sprint(now)), platform.CPU) // want "allocating argument (fmt.Sprint call)"
	}
}

package fixture

func keysEscaped(m map[int]float64) []int {
	var ids []int
	//hplint:allow maporder fixture exercises the escape-comment path
	for id := range m {
		ids = append(ids, id)
	}
	return ids
}

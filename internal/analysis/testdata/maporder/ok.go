package fixture

import "sort"

// keysSorted restores a total order after the map iteration.
func keysSorted(m map[int]float64) []int {
	var ids []int
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// perIteration declares the slice inside the loop: no cross-iteration
// order escapes it.
func perIteration(m map[int][]int) int {
	total := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		total += len(local)
	}
	return total
}

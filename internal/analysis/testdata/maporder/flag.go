package fixture

func keysUnsorted(m map[int]float64) []int {
	var ids []int
	for id := range m { // want "nondeterministic order; sort it afterwards"
		ids = append(ids, id)
	}
	return ids
}

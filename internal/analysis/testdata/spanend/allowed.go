package fixture

import "repro/internal/obs"

// A deliberate leak with a recorded justification.
func leakWithReason(tr *obs.Tracer) {
	//hplint:allow spanend fixture exercises the escape-comment path
	sp := tr.StartTrace("request")
	sp.Annotate("kind", "allowed")
}

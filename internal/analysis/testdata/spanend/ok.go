package fixture

import (
	"context"

	"repro/internal/obs"
)

// Straight-line start and end.
func plainEnd(tr *obs.Tracer) {
	sp := tr.StartTrace("request")
	sp.Annotate("kind", "ok")
	sp.End()
}

// A defer discharges the obligation at the defer statement, whether it
// calls End directly or from a closure.
func deferredEnd(tr *obs.Tracer) {
	sp := tr.StartTrace("request")
	defer sp.End()
	sp.Annotate("kind", "ok")
}

func deferredClosureEnd(tr *obs.Tracer) {
	sp := tr.StartTrace("request")
	defer func() { sp.End() }()
	sp.Annotate("kind", "ok")
}

// The conditional-start pattern: the span begins inside an `if parent !=
// nil` guard, and every later use sits behind `if sp != nil`. The false
// branches of those guards are vacuous — the started span is non-nil —
// so they do not count as End-less paths.
func guardedPhases(ctx context.Context, hot bool) {
	parent := obs.SpanFromContext(ctx)
	var sp *obs.Span
	if parent != nil {
		sp = parent.StartChild("phase")
	}
	if hot {
		if sp != nil {
			sp.Annotate("outcome", "hot")
			sp.End()
		}
		return
	}
	if sp != nil {
		sp.Annotate("outcome", "cold")
		sp.End()
	}
}

// End on both arms of an explicit branch.
func branchedEnd(tr *obs.Tracer, hot bool) {
	sp := tr.StartTrace("request")
	if hot {
		sp.Annotate("outcome", "hot")
		sp.End()
	} else {
		sp.Annotate("outcome", "cold")
		sp.End()
	}
}

// A returned span transfers the End obligation to the caller.
func startAndHandOff(tr *obs.Tracer) *obs.Span {
	sp := tr.StartTrace("request")
	sp.Annotate("kind", "handoff")
	return sp
}

// A span stored into a struct escapes the same way.
type holder struct{ sp *obs.Span }

func startAndStore(tr *obs.Tracer, h *holder) {
	sp := tr.StartTrace("request")
	h.sp = sp
}

package fixture

import (
	"context"

	"repro/internal/obs"
)

// A span started and simply abandoned: no End on any path.
func startNoEnd(tr *obs.Tracer) {
	sp := tr.StartTrace("request") // want "not ended on every path"
	sp.Annotate("kind", "leak")
}

// End on one branch only: the else path falls off the function exit
// with the span still open.
func endOnOnePath(tr *obs.Tracer, hot bool) {
	sp := tr.StartTrace("request") // want "not ended on every path"
	if hot {
		sp.Annotate("outcome", "hot")
		sp.End()
		return
	}
	sp.Annotate("outcome", "cold")
}

// An early error return that skips the End at the bottom.
func endAfterEarlyReturn(ctx context.Context, tr *obs.Tracer, fail bool) error {
	sp := tr.StartTrace("request") // want "not ended on every path"
	if fail {
		return context.Canceled
	}
	sp.End()
	return nil
}

// A child span leaks even when the root is handled correctly.
func childLeaks(tr *obs.Tracer) {
	sp := tr.StartTrace("request")
	defer sp.End()
	csp := sp.StartChild("phase") // want "not ended on every path"
	csp.Annotate("outcome", "open")
}

package fixture

import "time"

func sleepyWait() {
	time.Sleep(time.Millisecond) // want "time.Sleep in a test is a flaky synchronization"
}

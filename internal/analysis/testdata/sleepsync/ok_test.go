package fixture

// channelWait synchronizes on an explicit completion signal.
func channelWait(done chan struct{}) {
	<-done
}

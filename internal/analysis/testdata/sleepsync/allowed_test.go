package fixture

import "time"

func pacedKernel() {
	//hplint:allow sleepsync fixture exercises the escape-comment path
	time.Sleep(time.Millisecond)
}

package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
	"testing"
)

// assignedSet is a must-assigned fact: the set of variable names assigned
// on every path reaching a point. Join is set intersection.
type assignedSet map[string]bool

func (s assignedSet) clone() assignedSet {
	c := make(assignedSet, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

func (s assignedSet) names() string {
	var ns []string
	for k := range s {
		ns = append(ns, k)
	}
	sort.Strings(ns)
	return strings.Join(ns, ",")
}

func mustAssigned(t *testing.T, src string) (*CFG, FlowResult[assignedSet]) {
	t.Helper()
	g := parseFuncBody(t, src)
	p := &FlowProblem[assignedSet]{
		CFG:   g,
		Entry: assignedSet{},
		Join: func(a, b assignedSet) assignedSet {
			out := assignedSet{}
			for k := range a {
				if b[k] {
					out[k] = true
				}
			}
			return out
		},
		Equal: func(a, b assignedSet) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
		Transfer: func(b *Block, in assignedSet) assignedSet {
			out := in.clone()
			for _, n := range b.Nodes {
				as, ok := n.(*ast.AssignStmt)
				if !ok {
					continue
				}
				for _, lhs := range as.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
						out[id.Name] = true
					}
				}
			}
			return out
		},
	}
	return g, Solve(p)
}

func TestSolveDiamond(t *testing.T) {
	// x is assigned on both branches, y on only one path (the DeclStmt is
	// not an AssignStmt): at the exit, must-assigned = {c, x, y-via-then}
	// intersected, i.e. it must contain c and x.
	g, res := mustAssigned(t, `
c := true
var y int
if c {
	x := 1
	y = x
} else {
	x := 2
	_ = x
}
_ = y`)
	got := res.In[g.Exit.Index].names()
	if !strings.Contains(got, "c") || !strings.Contains(got, "x") {
		t.Errorf("exit fact %q, want to contain c and x:\n%s", got, g)
	}
	if strings.Contains(got, "y") {
		t.Errorf("y assigned on one branch only but survived the join: %q", got)
	}
}

func TestSolveDiamondDropsOneSided(t *testing.T) {
	g, res := mustAssigned(t, `
c := true
if c {
	y := 1
	_ = y
}
_ = c`)
	fact := res.In[g.Exit.Index]
	if !fact["c"] {
		t.Errorf("c should be must-assigned at exit, fact=%q", fact.names())
	}
	if fact["y"] {
		t.Errorf("y is assigned on only one path but survived the join: %q", fact.names())
	}
}

func TestSolveLoopReachesFixpoint(t *testing.T) {
	// The loop body assigns y; since the loop may run zero times, y must
	// not be must-assigned after the loop. The fixpoint must terminate.
	g, res := mustAssigned(t, `
n := 10
for i := 0; i < n; i++ {
	y := i
	_ = y
}
_ = n`)
	fact := res.In[g.Exit.Index]
	if !fact["n"] {
		t.Errorf("n should be must-assigned at exit, fact=%q", fact.names())
	}
	if fact["y"] {
		t.Errorf("loop-local y escaped the join: %q", fact.names())
	}
}

func TestSolveUnreachableBlocksNotInterpreted(t *testing.T) {
	_, res := mustAssigned(t, `
x := 1
_ = x
return
`)
	// Any block after return is unreachable; Solve must mark it so.
	reachedAll := true
	for _, r := range res.Reached {
		reachedAll = reachedAll && r
	}
	_ = reachedAll // straight-line code may have every block reachable; just
	// assert the invariant that the entry is reached and no panic occurred.
	if !res.Reached[0] {
		t.Fatal("entry not reached")
	}
}

func mustParse(t *testing.T, fset *token.FileSet, src string) *ast.File {
	t.Helper()
	f, err := parser.ParseFile(fset, "p.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}

func TestFunctionsOfCollectsDeclsAndLiterals(t *testing.T) {
	fset := token.NewFileSet()
	f := mustParse(t, fset, `package p
func A() { _ = 1 }
func (r *T) B() { _ = 2 }
type T struct{}
var C = func() { _ = 3 }
func D() {
	g := func() { _ = 4 }
	g()
}`)
	fns := FunctionsOf([]*ast.File{f})
	var names []string
	for _, fn := range fns {
		names = append(names, fn.Name)
	}
	joined := strings.Join(names, ";")
	for _, want := range []string{"A", "B", "D", "func literal"} {
		if !strings.Contains(joined, want) {
			t.Errorf("FunctionsOf missing %q: %v", want, names)
		}
	}
	if len(fns) != 5 { // A, B, C's literal, D, D's literal
		t.Errorf("got %d functions, want 5: %v", len(fns), names)
	}
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// blockcheck flags blocking operations that can stall a goroutine
// forever: channel sends with no receive anywhere in the module,
// receives with no send or close, WaitGroup.Wait with no Done,
// Cond.Wait with no Signal/Broadcast, and sends on unbuffered channels
// made while a mutex is held (the receiver may need the same lock — the
// classic send-under-lock deadlock). "Anywhere in the module" is the
// whole-Program inventory (DESIGN.md §13): an operation is a counterpart
// no matter which function performs it, which over-approximates
// reachability but never flags code whose counterpart merely lives in
// another package. Escape routes are honored: any operation inside a
// `select` that has a `default` case or a case receiving from an
// out-of-module channel (ctx.Done(), time.After, timer.C) is exempt, and
// a select without an escape is only reported when every one of its
// cases is provably dead. Channels are tracked by identity (a local
// variable or an in-module struct field); identities that are aliased —
// passed as arguments, returned, reassigned, or address-taken — leave
// the analysis rather than risk a false positive, as do channels with no
// visible make (they may be handed in from anywhere).
var BlockCheck = &Analyzer{
	Name:      "blockcheck",
	Doc:       "blocking channel and sync operations must have a module-reachable counterpart or an escape route",
	Packages:  []string{"internal/engine", "internal/serve", "internal/shard", "internal/obs", "internal/load"},
	SkipTests: true,
	Run:       runBlockCheck,
}

// syncInventory is the module-wide counterpart census for blockcheck,
// keyed by channel/WaitGroup/Cond identity (the types.Object of the
// variable or field).
type syncInventory struct {
	sends, recvs, closes map[types.Object]bool
	dones, signals       map[types.Object]bool
	// made records identities with a visible make; unbufMake/bufMake
	// split them by capacity (an identity is treated as unbuffered only
	// if every visible make is).
	made, unbufMake, bufMake map[types.Object]bool
	// params are identities declared as parameters, receivers or results
	// somewhere; aliased are identities whose value leaks to another name.
	// Both are excluded from deadness checks.
	params, aliased map[types.Object]bool
}

func newSyncInventory() *syncInventory {
	return &syncInventory{
		sends: map[types.Object]bool{}, recvs: map[types.Object]bool{}, closes: map[types.Object]bool{},
		dones: map[types.Object]bool{}, signals: map[types.Object]bool{},
		made: map[types.Object]bool{}, unbufMake: map[types.Object]bool{}, bufMake: map[types.Object]bool{},
		params: map[types.Object]bool{}, aliased: map[types.Object]bool{},
	}
}

// syncIdent resolves a channel/WaitGroup/Cond expression to its identity:
// a plain variable or a struct field selector. Anything else is nil.
func syncIdent(info *types.Info, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok {
			return v
		}
		if v, ok := info.Defs[x].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if v, ok := info.Uses[x.Sel].(*types.Var); ok && v.IsField() {
			return v
		}
	}
	return nil
}

func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// namedSyncType reports whether t is (a pointer to) sync.<name>.
func namedSyncType(t types.Type, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == name
}

// makeChanCall reports whether e is make(chan ...) and whether the
// capacity is provably zero. An unknown non-constant capacity counts as
// buffered — the conservative direction for every rule keyed on it.
func makeChanCall(info *types.Info, e ast.Expr) (unbuffered, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall || len(call.Args) == 0 {
		return false, false
	}
	id, isIdent := ast.Unparen(call.Fun).(*ast.Ident)
	if !isIdent {
		return false, false
	}
	if b, isB := info.Uses[id].(*types.Builtin); !isB || b.Name() != "make" {
		return false, false
	}
	if !isChanType(info.Types[call.Args[0]].Type) {
		return false, false
	}
	if len(call.Args) == 1 {
		return true, true
	}
	if tv, okT := info.Types[call.Args[1]]; okT && tv.Value != nil {
		return tv.Value.String() == "0", true
	}
	return false, true
}

// syncInventory builds (once) the module-wide counterpart census over
// every base package's non-test files.
func (prog *Program) syncInventory() *syncInventory {
	if prog.chanInv != nil {
		return prog.chanInv
	}
	inv := newSyncInventory()
	for _, n := range prog.Nodes {
		for _, fl := range []*ast.FieldList{n.Recv, n.Type.Params, n.Type.Results} {
			if fl == nil {
				continue
			}
			for _, f := range fl.List {
				for _, name := range f.Names {
					if v, ok := n.Pkg.Info.Defs[name].(*types.Var); ok {
						inv.params[v] = true
					}
				}
			}
		}
	}
	for _, p := range prog.packages() {
		info := p.Info
		for _, f := range p.Files {
			ast.Inspect(f, func(m ast.Node) bool {
				inv.scan(info, m)
				return true
			})
		}
	}
	prog.chanInv = inv
	return inv
}

// recordMake attributes a make(chan ...) on the RHS to the identity on
// the LHS; any other RHS identity becomes an alias.
func (inv *syncInventory) recordMake(info *types.Info, lhs, rhs ast.Expr) {
	if unbuf, ok := makeChanCall(info, rhs); ok {
		if id := syncIdent(info, lhs); id != nil {
			inv.made[id] = true
			if unbuf {
				inv.unbufMake[id] = true
			} else {
				inv.bufMake[id] = true
			}
		}
		return
	}
	if id := inv.trackable(info, rhs); id != nil {
		inv.aliased[id] = true
	}
}

// trackable returns the identity behind e if e is a bare channel/
// WaitGroup/Cond value (the shapes whose aliasing matters), else nil.
func (inv *syncInventory) trackable(info *types.Info, e ast.Expr) types.Object {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = u.X
	}
	id := syncIdent(info, e)
	if id == nil {
		return nil
	}
	t := id.Type()
	if isChanType(t) || namedSyncType(t, "WaitGroup") || namedSyncType(t, "Cond") {
		return id
	}
	return nil
}

func (inv *syncInventory) scan(info *types.Info, m ast.Node) {
	switch x := m.(type) {
	case *ast.SendStmt:
		if id := syncIdent(info, x.Chan); id != nil {
			inv.sends[id] = true
		}
		if id := inv.trackable(info, x.Value); id != nil {
			inv.aliased[id] = true // a channel sent over a channel gains a remote name
		}
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			if id := syncIdent(info, x.X); id != nil {
				inv.recvs[id] = true
			}
		}
	case *ast.RangeStmt:
		if isChanType(info.Types[x.X].Type) {
			if id := syncIdent(info, x.X); id != nil {
				inv.recvs[id] = true
			}
		}
	case *ast.CallExpr:
		if id, isIdent := ast.Unparen(x.Fun).(*ast.Ident); isIdent {
			if b, isB := info.Uses[id].(*types.Builtin); isB && b.Name() == "close" && len(x.Args) == 1 {
				if cid := syncIdent(info, x.Args[0]); cid != nil {
					inv.closes[cid] = true
				}
				return
			}
		}
		if sel, isSel := x.Fun.(*ast.SelectorExpr); isSel {
			recv := info.Types[sel.X].Type
			switch sel.Sel.Name {
			case "Done":
				if recv != nil && namedSyncType(recv, "WaitGroup") {
					if id := syncIdent(info, sel.X); id != nil {
						inv.dones[id] = true
					}
				}
			case "Signal", "Broadcast":
				if recv != nil && namedSyncType(recv, "Cond") {
					if id := syncIdent(info, sel.X); id != nil {
						inv.signals[id] = true
					}
				}
			}
		}
		for _, arg := range x.Args {
			if id := inv.trackable(info, arg); id != nil {
				inv.aliased[id] = true
			}
		}
	case *ast.AssignStmt:
		if len(x.Lhs) == len(x.Rhs) {
			for i := range x.Lhs {
				inv.recordMake(info, x.Lhs[i], x.Rhs[i])
			}
		}
	case *ast.ValueSpec:
		if len(x.Names) == len(x.Values) {
			for i := range x.Names {
				inv.recordMake(info, x.Names[i], x.Values[i])
			}
		}
	case *ast.KeyValueExpr:
		if key, ok := x.Key.(*ast.Ident); ok {
			if v, isVar := info.Uses[key].(*types.Var); isVar && v.IsField() {
				if unbuf, isMake := makeChanCall(info, x.Value); isMake {
					inv.made[v] = true
					if unbuf {
						inv.unbufMake[v] = true
					} else {
						inv.bufMake[v] = true
					}
					return
				}
			}
		}
		if id := inv.trackable(info, x.Value); id != nil {
			inv.aliased[id] = true
		}
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			if id := inv.trackable(info, r); id != nil {
				inv.aliased[id] = true
			}
		}
	}
}

// checkableChan reports whether deadness conclusions about id are sound:
// in-module identity, not a parameter, never aliased, with a visible make.
func (prog *Program) checkableChan(inv *syncInventory, id types.Object) bool {
	return id != nil && prog.objInModule(id) && !inv.params[id] && !inv.aliased[id] && inv.made[id]
}

// checkableSync is the WaitGroup/Cond variant: value identity, in module,
// not a parameter, never aliased. Pointer-typed variables are excluded
// except the NewCond idiom (a *Cond local initialized in place).
func (prog *Program) checkableSync(inv *syncInventory, id types.Object) bool {
	if id == nil || !prog.objInModule(id) || inv.params[id] || inv.aliased[id] {
		return false
	}
	if _, isPtr := id.Type().(*types.Pointer); isPtr && !namedSyncType(id.Type(), "Cond") {
		return false
	}
	return true
}

// blockDead classifies one blocking operation against the inventory.
// It returns a non-empty reason when the op can provably never complete.
type blockOp struct {
	pos    token.Pos
	reason string
}

func (prog *Program) deadSend(inv *syncInventory, info *types.Info, s *ast.SendStmt) (blockOp, bool) {
	id := syncIdent(info, s.Chan)
	if !prog.checkableChan(inv, id) {
		return blockOp{}, false
	}
	if !inv.recvs[id] && !inv.closes[id] {
		return blockOp{s.Pos(), "send on channel " + id.Name() + " has no receive anywhere in the module and can block forever"}, true
	}
	return blockOp{}, false
}

func (prog *Program) deadRecv(inv *syncInventory, info *types.Info, pos token.Pos, ch ast.Expr) (blockOp, bool) {
	id := syncIdent(info, ch)
	if !prog.checkableChan(inv, id) {
		return blockOp{}, false
	}
	if !inv.sends[id] && !inv.closes[id] {
		return blockOp{pos, "receive on channel " + id.Name() + " has no send or close anywhere in the module and can block forever"}, true
	}
	return blockOp{}, false
}

func (prog *Program) deadWait(inv *syncInventory, info *types.Info, call *ast.CallExpr) (blockOp, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Wait" {
		return blockOp{}, false
	}
	recv := info.Types[sel.X].Type
	if recv == nil {
		return blockOp{}, false
	}
	id := syncIdent(info, sel.X)
	switch {
	case namedSyncType(recv, "WaitGroup"):
		if prog.checkableSync(inv, id) && !inv.dones[id] {
			return blockOp{call.Pos(), id.Name() + ".Wait has no matching Done anywhere in the module and can block forever"}, true
		}
	case namedSyncType(recv, "Cond"):
		if prog.checkableSync(inv, id) && !inv.signals[id] {
			return blockOp{call.Pos(), id.Name() + ".Wait has no Signal or Broadcast anywhere in the module and can block forever"}, true
		}
	}
	return blockOp{}, false
}

// selectEscape reports whether the select can always bail out: a default
// case, or a case receiving from a channel the module does not control
// (ctx.Done(), time.After, a stdlib timer field) — the runtime fires
// those eventually.
func (prog *Program) selectEscape(info *types.Info, sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			return true // default
		}
		if ch := commRecvChan(cc.Comm); ch != nil {
			if _, isCall := ast.Unparen(ch).(*ast.CallExpr); isCall {
				return true
			}
			if id := syncIdent(info, ch); id == nil || !prog.objInModule(id) {
				return true
			}
		}
	}
	return false
}

// commRecvChan extracts the channel expression of a receive-shaped comm
// clause, or nil for sends.
func commRecvChan(comm ast.Stmt) ast.Expr {
	var e ast.Expr
	switch s := comm.(type) {
	case *ast.ExprStmt:
		e = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			e = s.Rhs[0]
		}
	}
	if u, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
		return u.X
	}
	return nil
}

func runBlockCheck(pass *Pass) {
	prog := pass.Prog
	if prog == nil {
		return
	}
	inv := prog.syncInventory()
	info := pass.Info

	for _, f := range pass.Files {
		// Pass 1: selects as units — collect their comm ops so the
		// general walk skips them, and report only all-dead selects.
		inSelect := map[ast.Node]bool{}
		ast.Inspect(f, func(m ast.Node) bool {
			sel, ok := m.(*ast.SelectStmt)
			if !ok {
				return true
			}
			escape := prog.selectEscape(info, sel)
			var dead []blockOp
			allDead := true
			for _, c := range sel.Body.List {
				cc, isCC := c.(*ast.CommClause)
				if !isCC || cc.Comm == nil {
					continue
				}
				inSelect[cc.Comm] = true
				if ch := commRecvChan(cc.Comm); ch != nil {
					if u, isU := ast.Unparen(exprOf(cc.Comm)).(*ast.UnaryExpr); isU {
						inSelect[u] = true
					}
					if op, isDead := prog.deadRecv(inv, info, cc.Comm.Pos(), ch); isDead {
						dead = append(dead, op)
					} else {
						allDead = false
					}
				} else if s, isSend := cc.Comm.(*ast.SendStmt); isSend {
					if op, isDead := prog.deadSend(inv, info, s); isDead {
						dead = append(dead, op)
					} else {
						allDead = false
					}
				} else {
					allDead = false
				}
			}
			if !escape && allDead && len(dead) > 0 {
				pass.Reportf(sel.Pos(), "every case of this select can block forever: %s", dead[0].reason)
			}
			return true
		})

		// Pass 2: blocking ops outside selects.
		ast.Inspect(f, func(m ast.Node) bool {
			if inSelect[m] {
				return true
			}
			switch x := m.(type) {
			case *ast.SendStmt:
				if op, dead := prog.deadSend(inv, info, x); dead {
					pass.Reportf(op.pos, "%s", op.reason)
				}
			case *ast.UnaryExpr:
				if x.Op == token.ARROW {
					if op, dead := prog.deadRecv(inv, info, x.Pos(), x.X); dead {
						pass.Reportf(op.pos, "%s", op.reason)
					}
				}
			case *ast.RangeStmt:
				if isChanType(info.Types[x.X].Type) {
					if op, dead := prog.deadRecv(inv, info, x.Pos(), x.X); dead {
						pass.Reportf(op.pos, "%s", op.reason)
					}
				}
			case *ast.CallExpr:
				if op, dead := prog.deadWait(inv, info, x); dead {
					pass.Reportf(op.pos, "%s", op.reason)
				}
			}
			return true
		})
	}

	// Pass 3: unbuffered sends inside a critical section, flow-sensitive
	// over the same must-held lattice lockcheck uses.
	for _, fb := range FunctionsOf(pass.Files) {
		g := BuildCFG(fb.Body)
		res := Solve(&FlowProblem[lockState]{
			CFG:   g,
			Entry: lockState{},
			Join:  joinLockState,
			Equal: equalLockState,
			Transfer: func(b *Block, in lockState) lockState {
				return lockFlowTransfer(info, b, in)
			},
		})
		for _, b := range g.Blocks {
			if !res.Reached[b.Index] {
				continue
			}
			held := res.In[b.Index]
			for _, nd := range b.Nodes {
				if _, isDefer := nd.(*ast.DeferStmt); !isDefer {
					InspectShallow(nd, func(m ast.Node) bool {
						if _, isGo := m.(*ast.GoStmt); isGo {
							return false
						}
						s, ok := m.(*ast.SendStmt)
						if !ok {
							return true
						}
						id := syncIdent(info, s.Chan)
						if id == nil || !prog.objInModule(id) || !inv.unbufMake[id] || inv.bufMake[id] || len(held) == 0 {
							return true
						}
						if sel := enclosingExemptSelect(prog, info, fb, s); sel {
							return true
						}
						for _, lk := range sortedLockLabels(held) {
							pass.Reportf(s.Pos(), "send on unbuffered channel %s while holding %s can deadlock if the receiver needs the lock", id.Name(), lk)
							break
						}
						return true
					})
				}
				held = lockFlowTransfer(info, &Block{Nodes: []ast.Node{nd}}, held)
			}
		}
	}
}

// exprOf returns the expression of an ExprStmt/AssignStmt comm for the
// select bookkeeping.
func exprOf(comm ast.Stmt) ast.Expr {
	switch s := comm.(type) {
	case *ast.ExprStmt:
		return s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			return s.Rhs[0]
		}
	}
	return nil
}

// enclosingExemptSelect reports whether s sits directly in a select that
// can bail out (default or out-of-module receive case).
func enclosingExemptSelect(prog *Program, info *types.Info, fb FuncBody, s *ast.SendStmt) bool {
	exempt := false
	ast.Inspect(fb.Body, func(m ast.Node) bool {
		sel, ok := m.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, c := range sel.Body.List {
			if cc, isCC := c.(*ast.CommClause); isCC && cc.Comm == s {
				if prog.selectEscape(info, sel) {
					exempt = true
				}
			}
		}
		return true
	})
	return exempt
}

// sortedLockLabels renders the held lock keys deterministically for
// messages ("p.mu", "mu").
func sortedLockLabels(held lockState) []string {
	var out []string
	for k := range held {
		label := k.mu.Name()
		if k.base != nil && k.base != types.Object(k.mu) {
			label = k.base.Name() + "." + label
		}
		out = append(out, label)
	}
	sort.Strings(out)
	return out
}

package analysis

import "testing"

// TestRepoIsClean runs the full analyzer suite over the whole module and
// requires zero diagnostics: the repository must stay hplint-clean. CI
// also runs the cmd/hplint binary; this keeps plain `go test ./...`
// self-contained.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	prog := BuildProgram(pkgs)
	for _, p := range pkgs {
		for _, d := range RunAnalyzersProgram(All(), p, prog) {
			t.Errorf("%s", d)
		}
	}
}

package analysis

import "testing"

// TestRepoIsClean runs the full analyzer suite over the whole module and
// requires zero diagnostics — and zero stale hplint:allow escapes: the
// repository must stay hplint-clean. CI also runs the cmd/hplint binary;
// this keeps plain `go test ./...` self-contained.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	prog := BuildProgram(pkgs)
	suite := All()
	var raw []Diagnostic
	for _, p := range pkgs {
		kept, r := RunAnalyzersProgramRaw(suite, p, prog)
		for _, d := range kept {
			t.Errorf("%s", d)
		}
		raw = append(raw, r...)
	}
	for _, d := range StaleAllows(suite, pkgs, prog, raw) {
		t.Errorf("%s", d)
	}
}

package analysis

import (
	"go/ast"
	"go/types"
)

// SleepSync forbids time.Sleep in test files. Sleeping until a concurrent
// effect "should have happened" is the classic flaky-test pattern: it
// couples correctness to machine load and it hides the actual completion
// signal. Tests must synchronize on channels, sync primitives, or polling
// with a deadline; simulated-duration kernels that genuinely need to pace
// themselves document it with an hplint:allow escape.
var SleepSync = &Analyzer{
	Name:      "sleepsync",
	Doc:       "tests must not synchronize with time.Sleep",
	OnlyTests: true,
	Run:       runSleepSync,
}

func runSleepSync(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || fn.Name() != "Sleep" {
				return true
			}
			pass.Reportf(call.Pos(), "time.Sleep in a test is a flaky synchronization; wait on a channel or poll a condition instead")
			return true
		})
	}
}

package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// FloatEq forbids exact ==/!= between floating-point expressions in the
// scheduling and bounds packages. Acceleration-factor (ρ) ties, expected
// completion times, and area-bound comparisons are all derived floats;
// exact equality on them either never fires (noise) or fires
// nondeterministically across refactorings. The sanctioned forms are an
// epsilon comparison or the deterministic three-way tie-break idiom
//
//	if a != b { return a < b }   // then break the tie on a stable key
//
// which the analyzer recognizes and admits.
var FloatEq = &Analyzer{
	Name:      "floateq",
	Doc:       "no exact float equality in scheduler/bounds code; use an epsilon or a deterministic tie-break",
	Packages:  deterministicPackages,
	SkipTests: true,
	Run:       runFloatEq,
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// exprText renders an expression to canonical source text for structural
// comparison of comparator operands.
func exprText(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return ""
	}
	return buf.String()
}

// comparatorIdiomConds collects the conditions of the deterministic
// three-way comparator idiom: an if statement whose condition is `a != b`
// on floats and whose body is exactly `return a < b` or `return a > b`
// over the same two operands (in either order).
func comparatorIdiomConds(fset *token.FileSet, f *ast.File) map[*ast.BinaryExpr]bool {
	ok := make(map[*ast.BinaryExpr]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		ifs, isIf := n.(*ast.IfStmt)
		if !isIf || ifs.Init != nil {
			return true
		}
		cond, isBin := ifs.Cond.(*ast.BinaryExpr)
		if !isBin || cond.Op != token.NEQ {
			return true
		}
		if len(ifs.Body.List) != 1 {
			return true
		}
		ret, isRet := ifs.Body.List[0].(*ast.ReturnStmt)
		if !isRet || len(ret.Results) != 1 {
			return true
		}
		cmp, isCmp := ret.Results[0].(*ast.BinaryExpr)
		if !isCmp || (cmp.Op != token.LSS && cmp.Op != token.GTR) {
			return true
		}
		cx, cy := exprText(fset, cond.X), exprText(fset, cond.Y)
		rx, ry := exprText(fset, cmp.X), exprText(fset, cmp.Y)
		if cx == "" || cy == "" {
			return true
		}
		if (cx == rx && cy == ry) || (cx == ry && cy == rx) {
			ok[cond] = true
		}
		return true
	})
	return ok
}

func runFloatEq(pass *Pass) {
	for _, f := range pass.Files {
		idiom := comparatorIdiomConds(pass.Fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if idiom[bin] {
				return true
			}
			tx := pass.Info.TypeOf(bin.X)
			ty := pass.Info.TypeOf(bin.Y)
			if tx == nil || ty == nil || !isFloat(tx) || !isFloat(ty) {
				return true
			}
			pass.Reportf(bin.OpPos, "exact float %s: compare with an epsilon or a deterministic tie-break", bin.Op)
			return true
		})
	}
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `for range` loops over maps that build up a slice
// (append to a variable declared outside the loop) without a subsequent
// sort in the same function. Go randomizes map iteration order, so such a
// slice feeds whatever consumes it — victim selection, queue fills,
// reports — in a different order on every run, which is exactly the
// nondeterminism the scheduling packages must not contain. Sorting the
// slice afterwards (as the spoliation victim scan does) restores a total
// order and silences the diagnostic.
var MapOrder = &Analyzer{
	Name:      "maporder",
	Doc:       "slices built from map iteration must be sorted before use",
	Packages:  deterministicPackages,
	SkipTests: true,
	Run:       runMapOrder,
}

// sortPackages are the packages whose calls count as establishing a
// deterministic order.
var sortPackages = map[string]bool{"sort": true, "slices": true}

func runMapOrder(pass *Pass) {
	for _, f := range pass.Files {
		// Visit every function body so "after the loop" has a scope.
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body == nil {
				return true
			}
			checkMapRanges(pass, body)
			return true
		})
	}
}

// checkMapRanges inspects the direct statements of one function body.
// Nested function literals are handled by their own visit.
func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false // inner literals get their own pass
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.Info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		for _, target := range appendTargetsOutside(pass.Info, rng) {
			if !sortedAfter(pass, body, target, rng.End()) {
				pass.Reportf(rng.For, "map iteration appends to %q in nondeterministic order; sort it afterwards or tie-break deterministically", target.Name())
			}
		}
		return true
	})
}

// appendTargetsOutside returns the objects of variables declared outside
// the range statement that the loop body appends to.
func appendTargetsOutside(info *types.Info, rng *ast.RangeStmt) []types.Object {
	var out []types.Object
	seen := make(map[types.Object]bool)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun, ok := call.Fun.(*ast.Ident)
		if !ok || fun.Name != "append" {
			return true
		}
		if _, isBuiltin := info.Uses[fun].(*types.Builtin); !isBuiltin {
			return true
		}
		if len(call.Args) == 0 {
			return true
		}
		dst, ok := call.Args[0].(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[dst]
		if obj == nil || seen[obj] {
			return true
		}
		// Declared inside the loop: each iteration gets its own slice, no
		// cross-iteration ordering leaks out.
		if rng.Pos() <= obj.Pos() && obj.Pos() < rng.End() {
			return true
		}
		seen[obj] = true
		out = append(out, obj)
		return true
	})
	return out
}

// sortedAfter reports whether fnBody contains, after pos, a call into the
// sort/slices packages that mentions obj.
func sortedAfter(pass *Pass, fnBody *ast.BlockStmt, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || !sortPackages[fn.Pkg().Path()] {
			return true
		}
		for _, arg := range call.Args {
			mentioned := false
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
					mentioned = true
					return false
				}
				return true
			})
			if mentioned {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockCheck enforces the observability packages' mutex discipline. The
// repository convention (documented in DESIGN.md §8) is positional: a
// sync.Mutex or sync.RWMutex field guards every field declared after it
// in the same struct. LockCheck maps each guarded field to its mutex and
// runs a flow-sensitive must-held analysis per function: an access to a
// guarded field of a parameter or receiver is flagged unless every path
// to it locks the right mutex (writes need the full lock; reads are also
// fine under RLock). Locally-constructed values are exempt — the
// constructor idiom initializes fields before the value is shared.
var LockCheck = &Analyzer{
	Name:      "lockcheck",
	Doc:       "guarded struct fields must only be accessed with their mutex held",
	Packages:  []string{"internal/obs", "internal/serve", "internal/shard", "internal/load", "internal/trace", "cmd/hpserve"},
	SkipTests: true,
	Run:       runLockCheck,
}

// lockLevel is how strongly a mutex is held on every path to a point.
type lockLevel uint8

const (
	lockNone lockLevel = iota // only used transiently; absent from maps
	lockRead                  // RLock held (or better on every path, weakest wins)
	lockWrite
)

// lockKey identifies one mutex instance: the variable holding the struct
// and the mutex field within it.
type lockKey struct {
	base types.Object
	mu   *types.Var
}

// lockState is the dataflow fact: the locks that are held on EVERY path
// reaching a point (a must-analysis — join is intersection with the
// weaker level winning).
type lockState map[lockKey]lockLevel

func (s lockState) clone() lockState {
	c := make(lockState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func joinLockState(a, b lockState) lockState {
	out := make(lockState)
	for k, va := range a {
		if vb, ok := b[k]; ok {
			lv := va
			if vb < lv {
				lv = vb
			}
			out[k] = lv
		}
	}
	return out
}

func equalLockState(a, b lockState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		if vb, ok := b[k]; !ok || va != vb {
			return false
		}
	}
	return true
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (not via
// pointer — the repository embeds mutexes by value).
func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// guardMap maps each guarded field object to the mutex field that guards
// it, per the positional convention.
type guardMap map[*types.Var]*types.Var

// collectGuards builds the guard map for every struct type declared in
// the package.
func collectGuards(pass *Pass) guardMap {
	guards := make(guardMap)
	scope := pass.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		var current *types.Var
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if isMutexType(f.Type()) {
				current = f
				continue
			}
			if current != nil {
				guards[f] = current
			}
		}
	}
	return guards
}

// lockcheck carries one package's analysis.
type lockcheck struct {
	pass   *Pass
	guards guardMap
}

// baseObject resolves the variable at the root of a selector base: for
// `v.mu.Lock()` or `v.kids`, the object of `v`. Only plain identifiers
// qualify — anything more complex (map lookups, calls) is out of scope.
func (l *lockcheck) baseObject(e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			return l.pass.Info.Uses[x]
		default:
			return nil
		}
	}
}

// lockOp decodes a statement-level call `x.mu.Lock()` and friends. It
// returns the affected key and the operation name, or ok=false.
func (l *lockcheck) lockOp(call *ast.CallExpr) (key lockKey, op string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return key, "", false
	}
	op = sel.Sel.Name
	switch op {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return key, "", false
	}
	// sel.X must itself be a selector base.mu with mu a mutex field.
	inner, isSel := sel.X.(*ast.SelectorExpr)
	if !isSel {
		return key, "", false
	}
	muObj, isVar := l.pass.Info.Uses[inner.Sel].(*types.Var)
	if !isVar || !isMutexType(muObj.Type()) {
		return key, "", false
	}
	base := l.baseObject(inner.X)
	if base == nil {
		return key, "", false
	}
	return lockKey{base: base, mu: muObj}, op, true
}

// transferLocks applies a block's lock operations to the state.
func (l *lockcheck) transferLocks(b *Block, in lockState) lockState {
	st := in
	mutated := false
	set := func(k lockKey, lv lockLevel) {
		if !mutated {
			st = st.clone()
			mutated = true
		}
		if lv == lockNone {
			delete(st, k)
		} else {
			st[k] = lv
		}
	}
	for _, n := range b.Nodes {
		if _, isDefer := n.(*ast.DeferStmt); isDefer {
			// defer x.mu.Unlock() releases at return; the lock stays held
			// for the rest of the function body.
			continue
		}
		InspectShallow(n, func(m ast.Node) bool {
			call, isCall := m.(*ast.CallExpr)
			if !isCall {
				return true
			}
			if key, op, ok := l.lockOp(call); ok {
				switch op {
				case "Lock":
					set(key, lockWrite)
				case "RLock":
					set(key, lockRead)
				case "Unlock", "RUnlock":
					set(key, lockNone)
				}
			}
			return true
		})
	}
	return st
}

// interestingBase reports whether accesses through obj are checked:
// parameters and receivers alias caller-visible state; locals are the
// constructor idiom.
func interestingBase(obj types.Object, fb FuncBody, info *types.Info) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	for _, fl := range []*ast.FieldList{fb.Recv, fb.Type.Params} {
		if fl == nil {
			continue
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if info.Defs[name] == v {
					return true
				}
			}
		}
	}
	return false
}

// guardedAccess is one `x.f` touch of a guarded field found in a block.
type guardedAccess struct {
	pos   token.Pos
	key   lockKey
	field *types.Var
	write bool
}

// findAccesses collects the guarded-field accesses a block performs,
// classifying each as read or write.
func (l *lockcheck) findAccesses(b *Block, fb FuncBody) []guardedAccess {
	var out []guardedAccess
	for _, n := range b.Nodes {
		// Writes: selectors appearing as assignment LHS or inc/dec target.
		writes := map[ast.Expr]bool{}
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				writes[lhs] = true
			}
		case *ast.IncDecStmt:
			writes[s.X] = true
		}
		InspectShallow(n, func(m ast.Node) bool {
			sel, isSel := m.(*ast.SelectorExpr)
			if !isSel {
				return true
			}
			fieldObj, isVar := l.pass.Info.Uses[sel.Sel].(*types.Var)
			if !isVar {
				return true
			}
			mu, guarded := l.guards[fieldObj]
			if !guarded {
				return true
			}
			base := l.baseObject(sel.X)
			if base == nil || !interestingBase(base, fb, l.pass.Info) {
				return true
			}
			out = append(out, guardedAccess{
				pos:   sel.Pos(),
				key:   lockKey{base: base, mu: mu},
				field: fieldObj,
				write: writes[sel],
			})
			return true
		})
	}
	return out
}

func runLockCheck(pass *Pass) {
	l := &lockcheck{pass: pass, guards: collectGuards(pass)}
	if len(l.guards) == 0 {
		return
	}
	for _, fb := range FunctionsOf(pass.Files) {
		g := BuildCFG(fb.Body)
		res := Solve(&FlowProblem[lockState]{
			CFG:      g,
			Entry:    lockState{},
			Join:     joinLockState,
			Equal:    equalLockState,
			Transfer: l.transferLocks,
		})
		for _, b := range g.Blocks {
			if !res.Reached[b.Index] {
				continue
			}
			// Conservative within a block: accesses are checked against the
			// block's input state, so `mu.Lock(); x.f = 1` in one block
			// needs the state AFTER the Lock. Re-walk node by node.
			st := res.In[b.Index]
			for _, n := range b.Nodes {
				oneBlock := &Block{Nodes: []ast.Node{n}}
				for _, acc := range l.findAccesses(oneBlock, fb) {
					lv, held := st[acc.key]
					switch {
					case acc.write && lv != lockWrite:
						pass.Reportf(acc.pos, "write to %s.%s guarded by %s without holding it (positional guard convention)", acc.key.base.Name(), acc.field.Name(), acc.key.mu.Name())
					case !acc.write && !held:
						pass.Reportf(acc.pos, "read of %s.%s guarded by %s without holding it (positional guard convention)", acc.key.base.Name(), acc.field.Name(), acc.key.mu.Name())
					}
				}
				st = l.transferLocks(oneBlock, st)
			}
		}
	}
}

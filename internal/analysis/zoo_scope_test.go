package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestZooFilesInAnalyzerScope pins the hplint scope contract the
// competitor zoo relies on: purity (no in-place instance mutation) and
// simdeterminism (no wall clock or global randomness in the simulation
// path) are package-scoped on internal/sched, so every scheduler file —
// including each zoo file added for DESIGN.md §15 — is analyzed without
// needing per-file registration. The test fails if the scopes drop the
// package, or if a zoo file disappears without this roster being updated.
func TestZooFilesInAnalyzerScope(t *testing.T) {
	inScope := func(a *Analyzer) bool {
		for _, p := range a.Packages {
			if p == "internal/sched" {
				return true
			}
		}
		return false
	}
	if !inScope(Purity) {
		t.Errorf("purity no longer covers internal/sched: %v", Purity.Packages)
	}
	if !inScope(SimDeterminism) {
		t.Errorf("simdeterminism no longer covers internal/sched: %v", SimDeterminism.Packages)
	}

	// Package scope means "every non-test file in the directory": verify
	// the zoo roster is actually on disk, and that the loader hands the
	// analyzers every non-test file (nothing is skipped by build tags or
	// naming).
	dir := filepath.Join("..", "sched")
	zoo := []string{"zoo.go", "erls.go", "hlp.go", "clb2c.go", "priaware.go", "affinity.go"}
	onDisk := map[string]bool{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			onDisk[e.Name()] = true
		}
	}
	for _, f := range zoo {
		if !onDisk[f] {
			t.Errorf("zoo file %s missing from internal/sched", f)
		}
	}

	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadDir(dir, "internal/sched")
	if err != nil {
		t.Fatal(err)
	}
	loaded := map[string]bool{}
	for _, p := range pkgs {
		if p.TestOnly {
			continue
		}
		for _, f := range p.Files {
			loaded[filepath.Base(p.Fset.Position(f.Pos()).Filename)] = true
		}
	}
	for name := range onDisk {
		if !loaded[name] {
			t.Errorf("%s is on disk but not loaded for analysis", name)
		}
	}
}

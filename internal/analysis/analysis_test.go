package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

// collectWants reads the fixture sources in dir and returns the expected
// diagnostics as "file.go:line" -> message substrings, taken from
// trailing `// want "substring"` comments.
func collectWants(t *testing.T, dir string) map[string][]string {
	t.Helper()
	wants := make(map[string][]string)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				key := fmt.Sprintf("%s:%d", e.Name(), i+1)
				wants[key] = append(wants[key], m[1])
			}
		}
	}
	return wants
}

// TestAnalyzerFixtures runs each analyzer over its golden fixture package
// (one file tripping the check, one exercising the sanctioned forms, one
// exercising the hplint:allow escape) and compares the diagnostics with
// the `// want` annotations. The fixture directory is loaded under the
// declared module-relative path so the analyzer's package scoping applies.
func TestAnalyzerFixtures(t *testing.T) {
	cases := []struct {
		dir string
		rel string
		az  *Analyzer
	}{
		{"simdeterminism", "internal/sim", SimDeterminism},
		{"floateq", "internal/bounds", FloatEq},
		{"obsguard", "internal/core", ObsGuard},
		{"maporder", "internal/sched", MapOrder},
		{"sleepsync", "internal/sleepfixture", SleepSync},
		{"goroutinecheck", "internal/engine", GoroutineCheck},
		{"unitflow", "internal/sim", UnitFlow},
		{"lockcheck", "internal/obs", LockCheck},
		{"purity", "internal/sched", Purity},
		{"errflow", "internal/runtime", ErrFlow},
		{"spanend", "internal/serve", SpanEnd},
		{"allocflow", "internal/core", AllocFlow},
		{"lockorder", "internal/lockfixture", LockOrder},
		{"blockcheck", "internal/engine", BlockCheck},
		{"capturecheck", "internal/engine", CaptureCheck},
	}
	for _, c := range cases {
		t.Run(c.dir, func(t *testing.T) {
			l, err := NewLoader(".")
			if err != nil {
				t.Fatal(err)
			}
			dir := filepath.Join("testdata", c.dir)
			pkgs, err := l.LoadDir(dir, c.rel)
			if err != nil {
				t.Fatal(err)
			}
			if len(pkgs) == 0 {
				t.Fatalf("no packages loaded from %s", dir)
			}
			prog := BuildProgram(pkgs)
			var got []Diagnostic
			for _, p := range pkgs {
				got = append(got, RunAnalyzersProgram([]*Analyzer{c.az}, p, prog)...)
			}
			wants := collectWants(t, dir)
			for _, d := range got {
				key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
				subs := wants[key]
				found := false
				for i, s := range subs {
					if strings.Contains(d.Message, s) {
						wants[key] = append(subs[:i], subs[i+1:]...)
						found = true
						break
					}
				}
				if !found {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for key, subs := range wants {
				for _, s := range subs {
					t.Errorf("missing diagnostic at %s matching %q", key, s)
				}
			}
		})
	}
}

// TestMalformedAllows checks that broken escape comments are themselves
// diagnostics: the reason is mandatory and the analyzer must exist.
func TestMalformedAllows(t *testing.T) {
	src := `package p

//hplint:allow
func a() {}

//hplint:allow floateq
func b() {}

//hplint:allow nosuchanalyzer because reasons
func c() {}

//hplint:allow floateq a recorded reason
func d() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "allow.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var diags []Diagnostic
	allows := collectAllows(fset, []*ast.File{f}, map[string]bool{"floateq": true}, &diags)
	if len(diags) != 3 {
		t.Fatalf("got %d diagnostics, want 3: %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Analyzer != "hplint" {
			t.Errorf("malformed allow attributed to %q, want hplint", d.Analyzer)
		}
	}
	// The well-formed escape suppresses its own line and the next.
	if !allows[allowKey{"allow.go", 12, "floateq"}] || !allows[allowKey{"allow.go", 13, "floateq"}] {
		t.Errorf("well-formed allow not recorded: %v", allows)
	}
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked unit. Mirroring the go tool, each directory
// yields up to three units: the base package (non-test files, the one
// other packages import), the test-augmented package (base plus
// in-package test files, never imported), and the external _test package.
type Package struct {
	// RelPath is the module-relative import path ("" for the module root).
	RelPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	// TestOnly marks the augmented and external test units: their
	// non-test files (if any) are duplicates of the base unit, so
	// analyzers only visit the *_test.go files.
	TestOnly bool
}

// Loader parses and type-checks the module's packages with a stdlib-only
// pipeline: go/parser for syntax, go/types for semantics, the source
// importer for the standard library, and itself for intra-module imports.
type Loader struct {
	ModuleRoot string
	ModulePath string

	fset       *token.FileSet
	std        types.Importer
	cache      map[string]*Package // keyed by module-relative path
	inProgress map[string]bool
}

// NewLoader returns a loader rooted at the module containing dir (found by
// walking up to the nearest go.mod).
func NewLoader(dir string) (*Loader, error) {
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		cache:      make(map[string]*Package),
		inProgress: make(map[string]bool),
	}, nil
}

func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// Import implements types.Importer: module-local paths are type-checked by
// the loader itself, everything else (the standard library) goes through
// the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		pkg, err := l.loadRel(rel)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// loadRel loads (and caches) the package at the given module-relative path.
func (l *Loader) loadRel(rel string) (*Package, error) {
	if pkg, ok := l.cache[rel]; ok {
		return pkg, nil
	}
	if l.inProgress[rel] {
		return nil, fmt.Errorf("analysis: import cycle through %q", rel)
	}
	l.inProgress[rel] = true
	defer delete(l.inProgress, rel)
	pkg, err := l.checkDir(filepath.Join(l.ModuleRoot, filepath.FromSlash(rel)), rel)
	if err != nil {
		return nil, err
	}
	l.cache[rel] = pkg
	return pkg, nil
}

// listGoFiles returns the sorted .go file names in dir, test files last.
func listGoFiles(dir string) (nonTest, inPkgTest []string, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") {
			inPkgTest = append(inPkgTest, name)
		} else {
			nonTest = append(nonTest, name)
		}
	}
	sort.Strings(nonTest)
	sort.Strings(inPkgTest)
	return nonTest, inPkgTest, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

func (l *Loader) parse(dir, name string) (*ast.File, error) {
	return parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
}

func (l *Loader) check(path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := newInfo()
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return tpkg, info, nil
}

func (l *Loader) importPath(rel string) string {
	if rel == "" {
		return l.ModulePath
	}
	return l.ModulePath + "/" + rel
}

// checkDir parses and type-checks the base (importable) package in dir:
// the non-test files only, exactly what other packages see.
func (l *Loader) checkDir(dir, rel string) (*Package, error) {
	nonTest, _, err := listGoFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(nonTest) == 0 {
		return nil, fmt.Errorf("analysis: no non-test Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range nonTest {
		f, err := l.parse(dir, name)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	tpkg, info, err := l.check(l.importPath(rel), files)
	if err != nil {
		return nil, err
	}
	return &Package{RelPath: rel, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}

// testUnits type-checks the test-augmented unit (non-test files plus
// same-package test files) and the external _test unit of dir, returning
// whichever exist. Both are marked TestOnly: their non-test files are the
// base unit's, re-checked only so the test files resolve.
func (l *Loader) testUnits(dir, rel string) ([]*Package, error) {
	nonTest, testNames, err := listGoFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(testNames) == 0 {
		return nil, nil
	}
	var baseFiles []*ast.File
	baseName := ""
	for _, name := range nonTest {
		f, err := l.parse(dir, name)
		if err != nil {
			return nil, err
		}
		baseName = f.Name.Name
		baseFiles = append(baseFiles, f)
	}
	var inPkg, external []*ast.File
	for _, name := range testNames {
		f, err := l.parse(dir, name)
		if err != nil {
			return nil, err
		}
		if strings.HasSuffix(f.Name.Name, "_test") && f.Name.Name != baseName {
			external = append(external, f)
		} else {
			inPkg = append(inPkg, f)
		}
	}
	var pkgs []*Package
	if len(inPkg) > 0 {
		files := append(append([]*ast.File(nil), baseFiles...), inPkg...)
		tpkg, info, err := l.check(l.importPath(rel), files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, &Package{RelPath: rel, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info, TestOnly: true})
	}
	if len(external) > 0 {
		tpkg, info, err := l.check(l.importPath(rel)+"_test", external)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, &Package{RelPath: rel, Dir: dir, Fset: l.fset, Files: external, Types: tpkg, Info: info, TestOnly: true})
	}
	return pkgs, nil
}

// LoadDir loads the package in dir under the given module-relative path,
// including its test units. Used by the fixture tests, where the declared
// path (not the on-disk location) selects which analyzers apply.
func (l *Loader) LoadDir(dir, rel string) ([]*Package, error) {
	nonTest, _, err := listGoFiles(dir)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	if len(nonTest) > 0 {
		base, err := l.checkDir(dir, rel)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, base)
	}
	tests, err := l.testUnits(dir, rel)
	if err != nil {
		return nil, err
	}
	return append(pkgs, tests...), nil
}

// LoadModule loads every package in the module (skipping testdata and
// hidden directories), including in-package and external test units.
func (l *Loader) LoadModule() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModuleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		nonTest, testNames, err := listGoFiles(path)
		if err != nil {
			return err
		}
		if len(nonTest)+len(testNames) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModuleRoot, dir)
		if err != nil {
			return nil, err
		}
		rel = filepath.ToSlash(rel)
		if rel == "." {
			rel = ""
		}
		nonTest, _, err := listGoFiles(dir)
		if err != nil {
			return nil, err
		}
		if len(nonTest) > 0 {
			base, err := l.loadRel(rel)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, base)
		}
		tests, err := l.testUnits(dir, rel)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, tests...)
	}
	return pkgs, nil
}

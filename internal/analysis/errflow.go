package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// ErrFlow flags errors that leak along control-flow paths in the
// binaries and the live executor: (1) an error assigned to a variable
// that, on some path, is overwritten or falls off the end of the
// function without ever being read — including the shadowed-`err` form
// where an inner `:=` hides the outer variable; (2) a call discarding an
// error result in statement position. Explicit discards (`_ = f()`) are
// intentional and stay silent, as do fmt's printers and the never-fail
// writers (strings.Builder, bytes.Buffer).
var ErrFlow = &Analyzer{
	Name:      "errflow",
	Doc:       "no dropped or shadowed errors along any path",
	Packages:  errflowPackages,
	SkipTests: true,
	Run:       runErrFlow,
}

// errflowPackages are the packages errflow analyzes directly; calls from
// them into helpers elsewhere go through the swallowed-error summaries.
var errflowPackages = []string{"cmd/benchgate", "cmd/experiments", "cmd/hplint", "cmd/hpsched", "cmd/hpserve", "internal/runtime"}

// isErrorType reports whether t is exactly the error interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// hasErrorResult reports whether a call result type includes an error.
func hasErrorResult(t types.Type) bool {
	if isErrorType(t) {
		return true
	}
	tup, ok := t.(*types.Tuple)
	if !ok {
		return false
	}
	for i := 0; i < tup.Len(); i++ {
		if isErrorType(tup.At(i).Type()) {
			return true
		}
	}
	return false
}

type errflow struct {
	pass *Pass
}

func (e *errflow) objectOf(id *ast.Ident) types.Object {
	if o := e.pass.Info.Uses[id]; o != nil {
		return o
	}
	return e.pass.Info.Defs[id]
}

// nodeEffect classifies what one CFG node does to obj: reads it
// (anywhere, including a self-assignment's RHS) and/or overwrites it.
func (e *errflow) nodeEffect(n ast.Node, obj types.Object) (used, assigned bool) {
	var scanUses func(m ast.Node)
	scanUses = func(m ast.Node) {
		InspectShallow(m, func(x ast.Node) bool {
			if id, ok := x.(*ast.Ident); ok && e.pass.Info.Uses[id] == obj {
				used = true
			}
			return true
		})
	}
	InspectShallow(n, func(m ast.Node) bool {
		as, ok := m.(*ast.AssignStmt)
		if !ok {
			if id, isID := m.(*ast.Ident); isID && e.pass.Info.Uses[id] == obj {
				// An identifier outside any assignment LHS is a read.
				used = true
			}
			return true
		}
		for _, r := range as.Rhs {
			scanUses(r)
		}
		for _, l := range as.Lhs {
			if id, isID := l.(*ast.Ident); isID {
				if e.pass.Info.Uses[id] == obj || e.pass.Info.Defs[id] == obj {
					assigned = true
				}
				continue
			}
			scanUses(l) // m[err] = v reads err
		}
		return false
	})
	return used, assigned
}

// droppedOnSomePath reports whether, starting after node startIdx of
// start, some path overwrites obj or reaches the exit without reading it.
func (e *errflow) droppedOnSomePath(g *CFG, start *Block, startIdx int, obj types.Object) bool {
	seen := map[*Block]bool{}
	var walk func(b *Block, idx int) bool
	walk = func(b *Block, idx int) bool {
		for i := idx; i < len(b.Nodes); i++ {
			used, assigned := e.nodeEffect(b.Nodes[i], obj)
			if used {
				return false
			}
			if assigned {
				return true // overwritten before any read
			}
		}
		if b == g.Exit {
			return true // fell off the end unread
		}
		for _, s := range b.Succs {
			if seen[s] {
				continue
			}
			seen[s] = true
			if walk(s, 0) {
				return true
			}
		}
		return false
	}
	return walk(start, startIdx+1)
}

// assignedErrorObjects returns the error objects a top-level CFG node
// assigns, with the defining token (to distinguish := shadows).
func (e *errflow) assignedErrorObjects(n ast.Node) []types.Object {
	as, ok := n.(*ast.AssignStmt)
	if !ok || (as.Tok != token.ASSIGN && as.Tok != token.DEFINE) {
		return nil
	}
	var out []types.Object
	for _, l := range as.Lhs {
		id, isID := l.(*ast.Ident)
		if !isID || id.Name == "_" {
			continue
		}
		obj := e.objectOf(id)
		if obj != nil && isErrorType(obj.Type()) {
			out = append(out, obj)
		}
	}
	return out
}

// shadowsOuterError reports whether obj (defined by :=) hides an
// error-typed variable of the same name in an enclosing scope.
func shadowsOuterError(obj types.Object) bool {
	scope := obj.Parent()
	if scope == nil || scope.Parent() == nil {
		return false
	}
	_, outer := scope.Parent().LookupParent(obj.Name(), obj.Pos())
	if outer == nil || outer == obj {
		return false
	}
	v, ok := outer.(*types.Var)
	return ok && isErrorType(v.Type())
}

// ignoredErrorCallInfo reports whether a statement-position call
// discarding its error is acceptable: fmt printers and the never-fail
// writers. It is shared with the swallowed-error summaries (summary.go).
func ignoredErrorCallInfo(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if p, isPtr := rt.(*types.Pointer); isPtr {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg, name := named.Obj().Pkg().Path(), named.Obj().Name()
	return (pkg == "strings" && name == "Builder") || (pkg == "bytes" && name == "Buffer")
}

// usedInsideFuncLit collects the objects referenced inside function
// literals of body: their uses are invisible to the enclosing CFG, so
// the path analysis must not judge them.
func (e *errflow) usedInsideFuncLit(body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if id, isID := m.(*ast.Ident); isID {
				if obj := e.pass.Info.Uses[id]; obj != nil {
					out[obj] = true
				}
			}
			return true
		})
		return false
	})
	return out
}

// checkSwallowingCallee is the interprocedural half (one level deep,
// available when a call graph was built): a call from an errflow-scoped
// package into an in-module helper whose summary says it silently
// discards an error inside its body is reported at the call site — the
// caller cannot handle an error it never sees. Helpers in errflow-scoped
// packages are exempt here because their bodies are already checked
// directly.
func (e *errflow) checkSwallowingCallee(n ast.Node) {
	if e.pass.Prog == nil {
		return
	}
	InspectShallow(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(e.pass.Info, call)
		if fn == nil {
			return true
		}
		node := e.pass.Prog.NodeOf(fn)
		if node == nil || errflowScoped(node.Pkg.RelPath) {
			return true
		}
		if pos := e.pass.Prog.SwallowsError(node); pos != token.NoPos {
			p := e.pass.Prog.Fset.Position(pos)
			e.pass.Reportf(call.Pos(), "call to %s swallows an error inside its body (%s:%d); the error never reaches this caller — plumb it out or record the justification there", node.Name, filepath.Base(p.Filename), p.Line)
		}
		return true
	})
}

// errflowScoped reports whether relPath is one of the packages errflow
// already analyzes directly.
func errflowScoped(relPath string) bool {
	for _, p := range errflowPackages {
		if p == relPath {
			return true
		}
	}
	return false
}

// namedResults collects the function's named result objects: assigning
// them is a use in itself (the return reads them implicitly).
func (e *errflow) namedResults(fb FuncBody) map[types.Object]bool {
	out := map[types.Object]bool{}
	if fb.Type.Results == nil {
		return out
	}
	for _, f := range fb.Type.Results.List {
		for _, name := range f.Names {
			if obj := e.pass.Info.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

func runErrFlow(pass *Pass) {
	e := &errflow{pass: pass}
	for _, fb := range FunctionsOf(pass.Files) {
		g := BuildCFG(fb.Body)
		escaped := e.usedInsideFuncLit(fb.Body)
		results := e.namedResults(fb)
		for _, b := range g.Blocks {
			for idx, n := range b.Nodes {
				// (3) calls into helpers that swallow errors internally.
				e.checkSwallowingCallee(n)
				// (2) discarded error results in statement position.
				if es, ok := n.(*ast.ExprStmt); ok {
					if call, isCall := es.X.(*ast.CallExpr); isCall {
						if tv, hasType := pass.Info.Types[call]; hasType && hasErrorResult(tv.Type) && !ignoredErrorCallInfo(pass.Info, call) {
							pass.Reportf(call.Pos(), "call discards its error result; handle it or assign to _ explicitly")
						}
					}
					continue
				}
				// (1) error assignments dropped on some path.
				for _, obj := range e.assignedErrorObjects(n) {
					if escaped[obj] || results[obj] {
						continue
					}
					if e.droppedOnSomePath(g, b, idx, obj) {
						if shadowsOuterError(obj) {
							pass.Reportf(n.Pos(), "%s := shadows the outer %s and the inner error is dropped on some path", obj.Name(), obj.Name())
						} else {
							pass.Reportf(n.Pos(), "error assigned to %s is dropped on some path (overwritten or function exits without reading it)", obj.Name())
						}
					}
				}
			}
		}
	}
}

package analysis

import (
	"bufio"
	"fmt"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Calibration mode: the allocflow escape approximation is syntactic and
// deliberately simple, so it is held against compiler ground truth. The
// compiler's escape analysis verdicts (`go build -gcflags=-m`) over the
// golden corpus in testdata/calibration/corpus are diffed line-by-line
// against the analyzer's AllocEscape sites. Only the escape class is
// compared: growth (append, map inserts), boxing, string building, and
// known-allocating externals are allocation mechanisms the compiler's
// escape diagnostics do not describe.
//
// The corpus is constructed so the two almost always agree; the one
// documented divergence (a captured variable "moved to heap" at its
// declaration while the analyzer bills the closure) keeps the metric
// honest. CI and the calibration test require >=95% agreement.

// CalibrationVerdict labels one corpus line in the calibration diff.
type CalibrationVerdict int

const (
	// VerdictMatched: both the analyzer and the compiler report an
	// allocation on the line, or both report none (a compiler "does not
	// escape" line with no analyzer site).
	VerdictMatched CalibrationVerdict = iota
	// VerdictAnalyzerOnly: the analyzer reports an escape the compiler
	// stack-allocates — a false positive of the approximation.
	VerdictAnalyzerOnly
	// VerdictCompilerOnly: the compiler heap-allocates where the analyzer
	// is silent — a false negative of the approximation.
	VerdictCompilerOnly
)

func (v CalibrationVerdict) String() string {
	switch v {
	case VerdictMatched:
		return "matched"
	case VerdictAnalyzerOnly:
		return "analyzer-only"
	case VerdictCompilerOnly:
		return "compiler-only"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// CalibrationLine is one line of the corpus where the analyzer or the
// compiler (or both) had an escape verdict.
type CalibrationLine struct {
	File    string // base filename within the corpus
	Line    int
	Verdict CalibrationVerdict
	// Analyzer and Compiler carry the respective messages ("" when the
	// side was silent).
	Analyzer string
	Compiler string
}

// CalibrationReport is the full diff plus its agreement summary.
type CalibrationReport struct {
	Lines        []CalibrationLine
	Matched      int
	AnalyzerOnly int
	CompilerOnly int
}

// Agreement returns the fraction of diffed lines where the analyzer and
// the compiler agree, in [0, 1]. An empty report (no compiler output —
// usually a build problem) counts as zero agreement rather than perfect.
func (r *CalibrationReport) Agreement() float64 {
	total := r.Matched + r.AnalyzerOnly + r.CompilerOnly
	if total == 0 {
		return 0
	}
	return float64(r.Matched) / float64(total)
}

// Format writes the human-readable diff table and summary.
func (r *CalibrationReport) Format(w io.Writer) {
	for _, l := range r.Lines {
		detail := l.Compiler
		if l.Verdict == VerdictAnalyzerOnly {
			detail = l.Analyzer
		}
		fmt.Fprintf(w, "%-14s %s:%d: analyzer=%v compiler=%v (%s)\n",
			l.Verdict, l.File, l.Line, l.Analyzer != "", l.Compiler != "", detail)
	}
	fmt.Fprintf(w, "calibration: %d matched, %d analyzer-only, %d compiler-only — agreement %.1f%%\n",
		r.Matched, r.AnalyzerOnly, r.CompilerOnly, 100*r.Agreement())
}

// compilerEscapes is the parsed `-gcflags=-m` verdict set: per base
// filename, per line, whether the compiler saw a heap allocation (true)
// or an explicit stack placement (false), plus the message.
type compilerEscape struct {
	heap bool
	msg  string
}

// ParseCompilerEscapes extracts the escape verdicts from `go build
// -gcflags=-m` output: "escapes to heap" and "moved to heap" lines are
// heap verdicts, "does not escape" lines are stack verdicts. Inlining
// chatter and anything else is ignored. Keys are base filenames, so the
// output may use any path prefix.
func ParseCompilerEscapes(out string) map[string]map[int]compilerEscape {
	verdicts := map[string]map[int]compilerEscape{}
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		var heap bool
		switch {
		case strings.HasSuffix(line, " escapes to heap"), strings.Contains(line, "moved to heap: "):
			heap = true
		case strings.HasSuffix(line, " does not escape"):
			heap = false
		default:
			continue
		}
		// path/file.go:LINE:COL: message
		parts := strings.SplitN(line, ":", 4)
		if len(parts) != 4 {
			continue
		}
		ln, err := strconv.Atoi(parts[1])
		if err != nil {
			continue
		}
		file := filepath.Base(parts[0])
		if verdicts[file] == nil {
			verdicts[file] = map[int]compilerEscape{}
		}
		// A heap verdict on a line outweighs a stack verdict (several
		// expressions can share a line).
		if prev, ok := verdicts[file][ln]; ok && prev.heap {
			continue
		}
		verdicts[file][ln] = compilerEscape{heap: heap, msg: strings.TrimSpace(parts[3])}
	}
	return verdicts
}

// Calibrate diffs the analyzer's AllocEscape sites for the program's
// non-test nodes against parsed compiler verdicts. Only files the
// compiler reported on are considered (the corpus package's own files).
func Calibrate(prog *Program, compiler map[string]map[int]compilerEscape) *CalibrationReport {
	type key struct {
		file string
		line int
	}
	analyzer := map[key]string{}
	for _, n := range prog.Nodes {
		if n.Pkg.TestOnly {
			continue
		}
		for _, s := range prog.AllocSitesRaw(n) {
			if s.Class != AllocEscape {
				continue
			}
			pos := prog.Fset.Position(s.Pos)
			analyzer[key{filepath.Base(pos.Filename), pos.Line}] = s.Desc
		}
	}

	rep := &CalibrationReport{}
	seen := map[key]bool{}
	for file, lines := range compiler {
		for ln, ce := range lines {
			k := key{file, ln}
			seen[k] = true
			amsg := analyzer[k]
			l := CalibrationLine{File: file, Line: ln, Analyzer: amsg, Compiler: ce.msg}
			switch {
			case ce.heap && amsg != "":
				l.Verdict = VerdictMatched
			case ce.heap:
				l.Verdict = VerdictCompilerOnly
			case amsg != "":
				l.Verdict = VerdictAnalyzerOnly
			default:
				l.Verdict = VerdictMatched // both say stack
				l.Compiler = ce.msg
			}
			rep.Lines = append(rep.Lines, l)
		}
	}
	// Analyzer sites on lines the compiler said nothing about: the
	// compiler emits a verdict for every heap candidate it sees, so a
	// silent line with an analyzer site is an analyzer false positive —
	// but only within files the compiler actually reported on.
	for k, amsg := range analyzer {
		if seen[k] || compiler[k.file] == nil {
			continue
		}
		rep.Lines = append(rep.Lines, CalibrationLine{
			File: k.file, Line: k.line, Verdict: VerdictAnalyzerOnly, Analyzer: amsg,
		})
	}
	sort.Slice(rep.Lines, func(i, j int) bool {
		a, b := rep.Lines[i], rep.Lines[j]
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})
	for _, l := range rep.Lines {
		switch l.Verdict {
		case VerdictMatched:
			rep.Matched++
		case VerdictAnalyzerOnly:
			rep.AnalyzerOnly++
		case VerdictCompilerOnly:
			rep.CompilerOnly++
		}
	}
	return rep
}

// CalibrateDir runs the full calibration pipeline over the corpus
// package in dir: `go build -gcflags=-m` for compiler ground truth
// (diagnostics are replayed from the build cache, so repeat runs stay
// cheap), the loader + call-graph pipeline for the analyzer's view, and
// a line diff of the two.
func CalibrateDir(dir string) (*CalibrationReport, error) {
	cmd := exec.Command("go", "build", "-gcflags=-m", ".")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("analysis: go build -gcflags=-m in %s: %v\n%s", dir, err, out)
	}
	compiler := ParseCompilerEscapes(string(out))
	if len(compiler) == 0 {
		return nil, fmt.Errorf("analysis: no escape diagnostics from the compiler in %s (unexpected -m format?)", dir)
	}

	l, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		rel = "calibration/corpus"
	}
	pkgs, err := l.LoadDir(dir, filepath.ToSlash(rel))
	if err != nil {
		return nil, err
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("analysis: no packages in corpus %s", dir)
	}
	prog := BuildProgram(pkgs)
	return Calibrate(prog, compiler), nil
}

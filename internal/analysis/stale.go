package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Stale-escape detection: an //hplint:allow comment earns its keep only
// while the named analyzer would still fire at that site. Once the code
// underneath is fixed or refactored away, the allow is a standing
// invitation to reintroduce the problem silently — so hplint reports it
// for deletion. Liveness has two sources: the raw (pre-suppression)
// diagnostic stream of a full-suite, full-module run, and the summary
// layer's raw sites — allocflow/purity/errflow consume callee-side
// allows without ever emitting a diagnostic at the allowed line, so the
// raw AllocSitesRaw / mutation / swallowed-error positions stand in for
// them. A doc-comment allocflow contract (Node.Contracted) is live while
// the function or any direct callee still allocates. Detection runs only
// on full-module, full-suite runs (cmd/hplint without -dir/-enable, and
// the repo self-test): a partial run cannot distinguish "stale" from
// "not exercised here".

// StaleAllows reports every hplint:allow comment in pkgs that no longer
// suppresses anything. raw must be the concatenated RAW diagnostic
// streams (RunAnalyzersProgramRaw) of every package in pkgs, and suite
// the full suite those runs used.
func StaleAllows(suite []*Analyzer, pkgs []*Package, prog *Program, raw []Diagnostic) []Diagnostic {
	known := make(map[string]bool, len(suite))
	for _, a := range suite {
		known[a.Name] = true
	}
	fired := map[allowKey]bool{}
	for _, d := range raw {
		if d.Analyzer == "hplint" {
			continue
		}
		fired[allowKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] = true
	}
	if prog != nil {
		for _, n := range prog.Nodes {
			for _, s := range prog.AllocSitesRaw(n) {
				p := prog.Fset.Position(s.Pos)
				fired[allowKey{p.Filename, p.Line, "allocflow"}] = true
			}
			for _, pos := range prog.mutationSitesRaw(n) {
				p := prog.Fset.Position(pos)
				fired[allowKey{p.Filename, p.Line, "purity"}] = true
			}
			for _, pos := range prog.swallowSitesRaw(n) {
				p := prog.Fset.Position(pos)
				fired[allowKey{p.Filename, p.Line, "errflow"}] = true
			}
		}
	}

	var out []Diagnostic
	seenFile := map[string]bool{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			fname := pkg.Fset.Position(f.Pos()).Filename
			if seenFile[fname] {
				continue
			}
			seenFile[fname] = true
			contracts := contractAllowPositions(pkg, prog, f)
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, allowPrefix)
					if !ok {
						continue
					}
					az, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
					if !known[az] || strings.TrimSpace(reason) == "" {
						continue // malformed allows get their own diagnostics
					}
					pos := pkg.Fset.Position(c.Pos())
					if live, isContract := contracts[c.Pos()]; isContract {
						if !live {
							out = append(out, staleDiag(pos, az))
						}
						continue
					}
					if fired[allowKey{pos.Filename, pos.Line, az}] || fired[allowKey{pos.Filename, pos.Line + 1, az}] {
						continue
					}
					out = append(out, staleDiag(pos, az))
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return out
}

func staleDiag(pos token.Position, az string) Diagnostic {
	return Diagnostic{
		Pos:      pos,
		Analyzer: "hplint",
		Message:  fmt.Sprintf("stale hplint:allow %s — the analyzer no longer fires at this site; delete the escape", az),
	}
}

// contractAllowPositions maps the positions of doc-comment allocflow
// contract allows in f to whether the contract is still live (the
// function or a direct callee still allocates).
func contractAllowPositions(pkg *Package, prog *Program, f *ast.File) map[token.Pos]bool {
	out := map[token.Pos]bool{}
	if prog == nil {
		return out
	}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		for _, c := range fd.Doc.List {
			rest, ok := strings.CutPrefix(c.Text, allowPrefix)
			if !ok {
				continue
			}
			az, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
			if az != "allocflow" || strings.TrimSpace(reason) == "" {
				continue
			}
			out[c.Pos()] = contractLive(prog, pkg, fd)
		}
	}
	return out
}

func contractLive(prog *Program, pkg *Package, fd *ast.FuncDecl) bool {
	fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	node := prog.NodeOf(fn)
	if node == nil {
		return false
	}
	if len(prog.AllocSitesRaw(node)) > 0 {
		return true
	}
	for _, e := range node.Calls {
		if len(prog.AllocSitesRaw(e.Callee)) > 0 || prog.MayAlloc(e.Callee) {
			return true
		}
	}
	return false
}

// mutationSitesRaw collects every parameter/receiver mutation position
// in n, ignoring allows — the raw sibling of MutatesParams for the
// stale-allow liveness check.
func (prog *Program) mutationSitesRaw(n *Node) []token.Pos {
	if n.Obj == nil {
		return nil
	}
	var out []token.Pos
	for _, cand := range entryCandidates(n) {
		tr := &taintTracker{info: n.Pkg.Info}
		g := BuildCFG(n.Body)
		res := Solve(&FlowProblem[taintSet]{
			CFG:      g,
			Entry:    taintSet{cand.obj: true},
			Join:     joinTaint,
			Equal:    equalTaint,
			Transfer: func(b *Block, in taintSet) taintSet { return tr.transferTaint(b, in, isRefLike) },
		})
		for _, b := range g.Blocks {
			if !res.Reached[b.Index] {
				continue
			}
			ts := res.In[b.Index]
			for _, node := range b.Nodes {
				tr.findMutations(node, ts, func(pos token.Pos, _ string) {
					out = append(out, pos)
				})
				ts = tr.transferTaint(&Block{Nodes: []ast.Node{node}}, ts, isRefLike)
			}
		}
	}
	return out
}

// swallowSitesRaw collects every swallowed-error call position in n,
// ignoring allows — the raw sibling of SwallowsError.
func (prog *Program) swallowSitesRaw(n *Node) []token.Pos {
	if n.Obj == nil {
		return nil
	}
	info := n.Pkg.Info
	var out []token.Pos
	inspectOwn(n.Body, n.Lit, func(m ast.Node) bool {
		es, ok := m.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return true
		}
		if tv, okT := info.Types[call]; okT && hasErrorResult(tv.Type) && !ignoredErrorCallInfo(info, call) {
			out = append(out, call.Pos())
		}
		return true
	})
	return out
}

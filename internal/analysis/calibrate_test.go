package analysis

import (
	"os/exec"
	"strings"
	"testing"
)

// TestCalibrationAgreement is the contract behind trusting allocflow on
// the zero-alloc core: the analyzer's escape approximation must agree
// with the compiler's escape analysis on at least 95% of the calibration
// corpus lines. A drop below the floor means the approximation (or the
// corpus) has drifted and allocflow's verdicts can no longer be taken at
// face value.
func TestCalibrationAgreement(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	rep, err := CalibrateDir("testdata/calibration/corpus")
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	rep.Format(&b)
	t.Log("\n" + b.String())
	if got := rep.Agreement(); got < 0.95 {
		t.Fatalf("calibration agreement %.1f%% below the 95%% floor\n%s", 100*got, b.String())
	}
	// The corpus carries exactly one documented divergence (the captured
	// counter moved to heap at its declaration); more disagreement means
	// the approximation drifted, zero means the corpus lost the case
	// keeping the metric honest.
	if rep.CompilerOnly != 1 || rep.AnalyzerOnly != 0 {
		t.Errorf("corpus drift: want exactly 1 compiler-only and 0 analyzer-only lines, got %d and %d\n%s",
			rep.CompilerOnly, rep.AnalyzerOnly, b.String())
	}
}

func TestParseCompilerEscapes(t *testing.T) {
	out := `# repro/internal/analysis/testdata/calibration/corpus
./escape.go:25:33: &point{...} escapes to heap
./escape.go:56:2: moved to heap: n
./escape.go:3:6: can inline NewPoint
./stack.go:10:7: &point{...} does not escape
`
	v := ParseCompilerEscapes(out)
	if e := v["escape.go"][25]; !e.heap || !strings.Contains(e.msg, "escapes to heap") {
		t.Errorf("escape.go:25 = %+v, want heap verdict", e)
	}
	if e := v["escape.go"][56]; !e.heap {
		t.Errorf("escape.go:56 = %+v, want heap verdict (moved to heap)", e)
	}
	if e, ok := v["stack.go"][10]; !ok || e.heap {
		t.Errorf("stack.go:10 = %+v, want stack verdict", e)
	}
	if _, ok := v["escape.go"][3]; ok {
		t.Error("inline chatter leaked into the verdicts")
	}
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file computes the per-function summaries the interprocedural
// analyzers consume, bottom-up over the call graph of callgraph.go:
//
//   - allocation summaries for allocflow: the function's intrinsic
//     allocation sites (detected syntactically over go/ast + go/types,
//     with a deliberately simple escape approximation documented in
//     DESIGN.md §12) and a propagated may-allocate bit;
//   - mutation summaries for purity: which reference-like parameters the
//     function may store through or sort in place;
//   - swallowed-error summaries for errflow: a statement-position call
//     whose error result the function silently discards.
//
// Summaries honor the escape convention at the *callee*: an allocation,
// mutation, or discard site whose line carries the matching
// //hplint:allow comment in the callee's own file is treated as
// contracted-clean and never propagates to callers — one justified
// escape at the defining line covers every call chain through it.

// AllocClass partitions allocation sites by how they are detected and
// how they compare against compiler ground truth (calibration.go).
type AllocClass int

const (
	// AllocEscape: composite literals, &T{}, make, new, and capturing
	// closures whose value escapes per the syntactic approximation. This
	// is the class calibrated against `go build -gcflags=-m`.
	AllocEscape AllocClass = iota
	// AllocGrowth: growing append and map inserts. Amortized, invisible
	// to escape analysis; excluded from calibration.
	AllocGrowth
	// AllocBoxing: interface boxing at call/assign/return sites and
	// variadic ...interface{} calls.
	AllocBoxing
	// AllocString: string concatenation and string<->[]byte/[]rune
	// conversions.
	AllocString
	// AllocExternal: calls to stdlib functions on the known-allocating
	// list (fmt.Sprintf, errors.New, sort.Slice, ...).
	AllocExternal
)

// AllocSite is one intrinsic allocation in a function body.
type AllocSite struct {
	Pos   token.Pos
	Desc  string
	Class AllocClass
}

// knownAllocating lists stdlib functions that allocate on every call.
// Calls to stdlib functions NOT on this list are assumed non-allocating
// (the analyzers enforce contracts on this module's code; the stdlib's
// own behavior is the compiler's problem). Variadic ...interface{}
// functions are additionally caught by the boxing detector.
var knownAllocating = map[string]string{
	"fmt.Sprintf":         "formats into a fresh string",
	"fmt.Sprint":          "formats into a fresh string",
	"fmt.Sprintln":        "formats into a fresh string",
	"fmt.Errorf":          "allocates an error",
	"fmt.Appendf":         "may grow its buffer",
	"errors.New":          "allocates an error",
	"errors.Join":         "allocates an error",
	"strings.Join":        "builds a fresh string",
	"strings.Repeat":      "builds a fresh string",
	"strings.Replace":     "builds a fresh string",
	"strings.ReplaceAll":  "builds a fresh string",
	"strings.Split":       "allocates a slice of strings",
	"strings.Fields":      "allocates a slice of strings",
	"strings.ToUpper":     "builds a fresh string",
	"strings.ToLower":     "builds a fresh string",
	"strconv.Itoa":        "builds a fresh string",
	"strconv.FormatInt":   "builds a fresh string",
	"strconv.FormatFloat": "builds a fresh string",
	"strconv.Quote":       "builds a fresh string",
	"sort.Slice":          "boxes the slice and builds a reflect swapper",
	"sort.SliceStable":    "boxes the slice and builds a reflect swapper",
	"runtime/debug.Stack": "allocates the stack dump",
}

// AllocSitesRaw returns the node's intrinsic allocation sites, unfiltered
// by allow comments (calibration compares these against the compiler).
func (prog *Program) AllocSitesRaw(n *Node) []AllocSite {
	if sites, ok := prog.allocSites[n]; ok {
		return sites
	}
	sites := findAllocSites(n)
	prog.allocSites[n] = sites
	return sites
}

// allowedLines returns the file:line keys suppressed for analyzer name in
// pkg (both the trailing-comment line and the line below, mirroring
// collectAllows). Malformed allows are NOT validated here — that happens
// when pkg itself is analyzed.
func (prog *Program) allowedLines(pkg *Package, name string) map[string]bool {
	out := map[string]bool{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok {
					continue
				}
				az, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
				if az != name || strings.TrimSpace(reason) == "" {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				out[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)] = true
				out[fmt.Sprintf("%s:%d", pos.Filename, pos.Line+1)] = true
			}
		}
	}
	return out
}

// allocSitesEffective filters the raw sites through the node's contract
// and the positional allow comments of its own package: an allowed site
// is clean for every caller, not just at the reporting position.
func (prog *Program) allocSitesEffective(n *Node) []AllocSite {
	if n.Contracted {
		return nil
	}
	raw := prog.AllocSitesRaw(n)
	if len(raw) == 0 {
		return nil
	}
	allowed := prog.allowedLines(n.Pkg, "allocflow")
	if len(allowed) == 0 {
		return raw
	}
	var out []AllocSite
	for _, s := range raw {
		pos := prog.Fset.Position(s.Pos)
		if allowed[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)] {
			continue
		}
		out = append(out, s)
	}
	return out
}

// MayAlloc reports whether n may allocate: an effective intrinsic site,
// or a path through its call edges to a function that has one. The whole
// fixpoint is computed on first use (reverse propagation over the graph).
func (prog *Program) MayAlloc(n *Node) bool {
	if prog.mayAlloc == nil {
		prog.computeMayAlloc()
	}
	return prog.mayAlloc[n]
}

func (prog *Program) computeMayAlloc() {
	prog.mayAlloc = make(map[*Node]bool, len(prog.Nodes))
	callers := map[*Node][]*Node{}
	var work []*Node
	for _, n := range prog.Nodes {
		for _, e := range n.Calls {
			callers[e.Callee] = append(callers[e.Callee], n)
		}
		if len(prog.allocSitesEffective(n)) > 0 && !prog.mayAlloc[n] {
			prog.mayAlloc[n] = true
			work = append(work, n)
		}
	}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		for _, c := range callers[n] {
			if prog.mayAlloc[c] || c.Contracted {
				continue
			}
			prog.mayAlloc[c] = true
			work = append(work, c)
		}
	}
}

// ---- intrinsic allocation-site detection ----

// findAllocSites scans one node's body (literals excluded — they are
// their own nodes) for intrinsic allocations.
func findAllocSites(n *Node) []AllocSite {
	info := n.Pkg.Info
	parents := parentMap(n.Body, n.Lit)
	esc := &escapeScan{info: info, parents: parents, body: n.Body, lit: n.Lit}
	var sites []AllocSite
	add := func(pos token.Pos, class AllocClass, format string, args ...any) {
		sites = append(sites, AllocSite{Pos: pos, Desc: fmt.Sprintf(format, args...), Class: class})
	}
	inspectOwn(n.Body, n.Lit, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.CallExpr:
			// Allocations building a panic argument happen while the program
			// is dying; they are irrelevant to steady-state throughput and
			// exempting them keeps guard-clause panics out of every chain.
			if isPanicCall(info, x) {
				return false
			}
			classifyCall(info, x, esc, add)
			return true
		case *ast.CompositeLit:
			t := info.Types[x].Type
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				if esc.escapes(x) {
					add(x.Pos(), AllocEscape, "slice literal escapes")
				}
			case *types.Map:
				// Map literals always allocate the header + buckets.
				add(x.Pos(), AllocEscape, "map literal allocates")
			default:
				// By-value struct/array literals allocate only through &,
				// handled at the UnaryExpr below.
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, isLit := ast.Unparen(x.X).(*ast.CompositeLit); isLit && esc.escapes(x) {
					add(x.Pos(), AllocEscape, "&%s{} escapes", typeLabel(info, x.X))
				}
			}
		case *ast.FuncLit:
			if capturesOuter(x, n.Body, info) && esc.escapes(x) {
				add(x.Pos(), AllocEscape, "capturing closure escapes")
			}
		case *ast.AssignStmt:
			classifyAssign(info, x, add)
		case *ast.ReturnStmt:
			classifyReturn(info, x, n, add)
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringType(info.Types[x.X].Type) && info.Types[x].Value == nil {
				add(x.Pos(), AllocString, "string concatenation")
			}
		}
		return true
	})
	sort.Slice(sites, func(i, j int) bool { return sites[i].Pos < sites[j].Pos })
	return sites
}

// inspectOwn visits the node's own body without descending into nested
// function literals (their sites belong to their own nodes). When the
// body IS a literal's body (lit != nil), that literal itself is visited.
func inspectOwn(body *ast.BlockStmt, lit *ast.FuncLit, f func(ast.Node) bool) {
	ast.Inspect(body, func(m ast.Node) bool {
		if fl, ok := m.(*ast.FuncLit); ok && (lit == nil || fl != lit) {
			f(fl)        // the creation is the enclosing function's site...
			return false // ...but its body belongs to the literal's node
		}
		return f(m)
	})
}

// classifyCall detects make/new, conversions, known-allocating externals,
// variadic ...interface{} calls, and interface boxing at argument
// positions.
func classifyCall(info *types.Info, call *ast.CallExpr, esc *escapeScan, add func(token.Pos, AllocClass, string, ...any)) {
	// Type conversions: string <-> []byte/[]rune allocate.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type.Underlying()
		from := info.Types[call.Args[0]].Type
		if from != nil {
			if isStringType(to) && isByteOrRuneSlice(from.Underlying()) {
				add(call.Pos(), AllocString, "string(%s) conversion copies", typeLabel(info, call.Args[0]))
			} else if isByteOrRuneSlice(to) && isStringType(from.Underlying()) {
				add(call.Pos(), AllocString, "%s conversion copies", types.TypeString(tv.Type, nil))
			}
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isB := info.Uses[id].(*types.Builtin); isB {
			switch b.Name() {
			case "make":
				if esc.escapes(call) {
					add(call.Pos(), AllocEscape, "make escapes")
				}
			case "new":
				if esc.escapes(call) {
					add(call.Pos(), AllocEscape, "new(T) escapes")
				}
			case "append":
				add(call.Pos(), AllocGrowth, "append may grow the backing array")
			}
			return
		}
	}
	fn := calleeFunc(info, call)
	if fn != nil && fn.Pkg() != nil {
		key := stdlibKey(fn)
		if why, known := knownAllocating[key]; known {
			add(call.Pos(), AllocExternal, "%s %s", key, why)
		}
	}
	// Variadic ...interface{} and per-argument interface boxing.
	sig := callSignature(info, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= params.Len()-1 {
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
			if call.Ellipsis != token.NoPos && i == params.Len()-1 {
				pt = params.At(params.Len() - 1).Type() // `xs...` passes the slice itself
			}
		} else if i < params.Len() {
			pt = params.At(i).Type()
		}
		if pt != nil && boxes(info, arg, pt) {
			add(arg.Pos(), AllocBoxing, "interface boxing of %s argument", typeLabel(info, arg))
		}
	}
}

// classifyAssign flags interface boxing on assignment and map inserts.
func classifyAssign(info *types.Info, as *ast.AssignStmt, add func(token.Pos, AllocClass, string, ...any)) {
	for _, l := range as.Lhs {
		if idx, ok := ast.Unparen(l).(*ast.IndexExpr); ok {
			if t := info.Types[idx.X].Type; t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					add(l.Pos(), AllocGrowth, "map insert may grow the table")
				}
			}
		}
	}
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, l := range as.Lhs {
		lt := info.Types[l].Type
		if lt == nil {
			if id, ok := l.(*ast.Ident); ok {
				if obj := info.Defs[id]; obj != nil {
					lt = obj.Type()
				}
			}
		}
		if lt != nil && boxes(info, as.Rhs[i], lt) {
			add(as.Rhs[i].Pos(), AllocBoxing, "interface boxing of %s on assignment", typeLabel(info, as.Rhs[i]))
		}
	}
}

// classifyReturn flags interface boxing of returned values.
func classifyReturn(info *types.Info, ret *ast.ReturnStmt, n *Node, add func(token.Pos, AllocClass, string, ...any)) {
	if n.Type.Results == nil || len(ret.Results) == 0 {
		return
	}
	var resTypes []types.Type
	for _, f := range n.Type.Results.List {
		t := info.Types[f.Type].Type
		c := len(f.Names)
		if c == 0 {
			c = 1
		}
		for k := 0; k < c; k++ {
			resTypes = append(resTypes, t)
		}
	}
	if len(ret.Results) != len(resTypes) {
		return // tuple-returning call forwarded; no per-value boxing info
	}
	for i, r := range ret.Results {
		if resTypes[i] != nil && boxes(info, r, resTypes[i]) {
			add(r.Pos(), AllocBoxing, "interface boxing of returned %s", typeLabel(info, r))
		}
	}
}

// boxes reports whether storing expr into a target of type to allocates:
// the target is an interface, the expression's static type is concrete,
// and the value is not pointer-shaped (pointers fit in the interface word
// without a heap copy). Constants are skipped: the runtime interns small
// values and the noise outweighs the signal.
func boxes(info *types.Info, expr ast.Expr, to types.Type) bool {
	if to == nil || !types.IsInterface(to) {
		return false
	}
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil || tv.Value != nil {
		return false
	}
	if tv.IsNil() || types.IsInterface(tv.Type) {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	}
	if isZeroSize(tv.Type) {
		// Zero-size values (struct{}, [0]T, context-key types) box to the
		// runtime's shared zerobase pointer without allocating.
		return false
	}
	return true
}

// isPureValue reports whether t has no reference-shaped component, so
// copying a value of t severs every alias to the container it was read
// from (a string field keeps its own backing data alive, but not the
// container). Used by the escape approximation: reading a pure value out
// of a fresh allocation does not make the allocation escape.
func isPureValue(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Kind() != types.UnsafePointer
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if !isPureValue(u.Field(i).Type()) {
				return false
			}
		}
		return true
	case *types.Array:
		return isPureValue(u.Elem())
	}
	return false
}

// isZeroSize reports whether t provably occupies zero bytes.
func isZeroSize(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if !isZeroSize(u.Field(i).Type()) {
				return false
			}
		}
		return true
	case *types.Array:
		return u.Len() == 0 || isZeroSize(u.Elem())
	}
	return false
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

// isPanicCall reports whether call invokes the builtin panic.
func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// calleeFunc resolves a call's static target function object, if any.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// callSignature returns the signature of the called function, if known.
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// stdlibKey renders "fmt.Sprintf" / "runtime/debug.Stack" for the
// known-allocating table.
func stdlibKey(fn *types.Func) string {
	path := fn.Pkg().Path()
	if strings.Contains(path, "/") && !strings.HasPrefix(path, "runtime/") {
		return path[strings.LastIndex(path, "/")+1:] + "." + fn.Name()
	}
	return path + "." + fn.Name()
}

// typeLabel renders a short type name for messages.
func typeLabel(info *types.Info, e ast.Expr) string {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return "value"
	}
	s := types.TypeString(tv.Type, func(p *types.Package) string { return p.Name() })
	if len(s) > 40 {
		s = s[:37] + "..."
	}
	return s
}

// capturesOuter reports whether lit references a variable declared in the
// enclosing function (a capturing closure — the form whose creation
// allocates; non-capturing literals compile to static functions).
func capturesOuter(lit *ast.FuncLit, encBody *ast.BlockStmt, info *types.Info) bool {
	captured := false
	ast.Inspect(lit.Body, func(m ast.Node) bool {
		if captured {
			return false
		}
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Declared inside the enclosing body but outside the literal.
		if v.Pos() >= encBody.Pos() && v.Pos() < encBody.End() &&
			!(v.Pos() >= lit.Pos() && v.Pos() < lit.End()) {
			captured = true
		}
		return true
	})
	return captured
}

// ---- syntactic escape approximation ----

// parentMap records each AST node's parent under root. When root is a
// literal's body, lit is included so position checks stay consistent.
func parentMap(root ast.Node, lit *ast.FuncLit) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	_ = lit
	return parents
}

type escapeScan struct {
	info    *types.Info
	parents map[ast.Node]ast.Node
	body    *ast.BlockStmt
	lit     *ast.FuncLit
}

// escapes decides whether the value created by expr leaves the function:
// returned, passed to a call, stored outside a local, captured, sent, or
// bound to a local that later does any of those. Purely local use stays
// on the stack — mirroring (coarsely) what the compiler's escape
// analysis proves, which is what calibration measures.
func (s *escapeScan) escapes(expr ast.Expr) bool {
	n := ast.Node(expr)
	for {
		p := s.parents[n]
		switch pp := p.(type) {
		case *ast.ParenExpr:
			n = pp
			continue
		case *ast.UnaryExpr:
			if pp.Op == token.AND {
				n = pp
				continue
			}
			return true
		case *ast.ReturnStmt:
			return true
		case *ast.CallExpr:
			if ast.Unparen(pp.Fun) == n {
				return false // calling the literal in place: func(){...}()
			}
			if id, ok := ast.Unparen(pp.Fun).(*ast.Ident); ok {
				if b, isB := s.info.Uses[id].(*types.Builtin); isB {
					switch b.Name() {
					case "len", "cap", "copy", "delete", "clear":
						return false
					case "append":
						return true // appended into someone else's backing array
					}
				}
			}
			return true
		case *ast.AssignStmt:
			return s.assignEscapes(pp, n.(ast.Expr))
		case *ast.ValueSpec:
			for i, v := range pp.Values {
				if v == n && i < len(pp.Names) {
					return s.varEscapes(s.info.Defs[pp.Names[i]])
				}
			}
			return true
		case *ast.ExprStmt:
			return false // value discarded
		case *ast.RangeStmt:
			return pp.X != n // ranging over a fresh value is local
		case *ast.IndexExpr, *ast.SliceExpr, *ast.StarExpr, *ast.SelectorExpr:
			// Direct elementwise use of the fresh value: the access itself
			// is local. A pure-value result (no reference component) is a
			// copy that severs the alias; otherwise the parent decides
			// (e.g. returned afterwards).
			if e, ok := p.(ast.Expr); ok && isPureValue(s.info.Types[e].Type) {
				if _, isSlice := p.(*ast.SliceExpr); !isSlice {
					return false
				}
			}
			n = p
			continue
		case nil:
			return true
		default:
			return true // conservative: sends, composite elements, key-values, ...
		}
	}
}

// assignEscapes resolves where an assignment puts the fresh value.
func (s *escapeScan) assignEscapes(as *ast.AssignStmt, val ast.Expr) bool {
	if len(as.Lhs) != len(as.Rhs) {
		return true
	}
	for i, r := range as.Rhs {
		if r != val && ast.Unparen(r) != val {
			continue
		}
		l := ast.Unparen(as.Lhs[i])
		id, ok := l.(*ast.Ident)
		if !ok {
			return true // x.f = fresh, m[k] = fresh, *p = fresh: escapes
		}
		if id.Name == "_" {
			return false
		}
		obj := s.info.Defs[id]
		if obj == nil {
			obj = s.info.Uses[id]
		}
		return s.varEscapes(obj)
	}
	return true
}

// varEscapes reports whether the local variable obj is ever used in an
// escaping position anywhere in the function: returned, passed to a
// non-builtin call, reassigned onward, address-taken, captured by a
// nested literal, sent, or stored into a non-local destination.
func (s *escapeScan) varEscapes(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return true
	}
	// Package-level or field destination: escapes by definition.
	if v.Parent() == nil || v.Parent().Parent() == types.Universe || v.IsField() {
		return true
	}
	escaped := false
	inLit := func(id *ast.Ident) bool {
		// A use inside a nested literal is a capture.
		for n := ast.Node(id); n != nil; n = s.parents[n] {
			if fl, isLit := n.(*ast.FuncLit); isLit && fl != s.lit {
				return true
			}
		}
		return false
	}
	ast.Inspect(s.body, func(m ast.Node) bool {
		if escaped {
			return false
		}
		id, ok := m.(*ast.Ident)
		if !ok || s.info.Uses[id] != obj {
			return true
		}
		if inLit(id) {
			escaped = true
			return false
		}
		if s.useEscapes(id) {
			escaped = true
			return false
		}
		return true
	})
	return escaped
}

// useEscapes classifies one identifier use of a tracked local.
func (s *escapeScan) useEscapes(id *ast.Ident) bool {
	n := ast.Node(id)
	for {
		p := s.parents[n]
		switch pp := p.(type) {
		case *ast.ParenExpr:
			n = pp
			continue
		case *ast.ReturnStmt:
			return true
		case *ast.SendStmt:
			return true
		case *ast.UnaryExpr:
			return pp.Op == token.AND
		case *ast.CallExpr:
			if ast.Unparen(pp.Fun) == n {
				return false // calling the closure locally
			}
			if fid, ok := ast.Unparen(pp.Fun).(*ast.Ident); ok {
				if b, isB := s.info.Uses[fid].(*types.Builtin); isB {
					switch b.Name() {
					case "len", "cap", "delete", "clear", "copy", "append", "min", "max":
						return false
					}
				}
			}
			return true
		case *ast.AssignStmt:
			// On the LHS: writing to/through the var, not moving it.
			for _, l := range pp.Lhs {
				if containsNode(l, n) {
					return false
				}
			}
			return true // on the RHS: the value moves onward
		case *ast.IndexExpr:
			if pp.Index == n {
				return false
			}
			if isPureValue(s.info.Types[pp].Type) {
				return false // scalar element copy: the reference stays put
			}
			n = pp
			continue
		case *ast.SelectorExpr, *ast.StarExpr:
			if e, ok := p.(ast.Expr); ok && isPureValue(s.info.Types[e].Type) {
				return false // value copy severs the alias
			}
			n = p
			continue
		case *ast.SliceExpr:
			n = p // reslicing keeps the backing array aliased
			continue
		case *ast.BinaryExpr, *ast.IfStmt, *ast.ForStmt, *ast.SwitchStmt, *ast.CaseClause,
			*ast.IncDecStmt, *ast.ExprStmt, *ast.RangeStmt, *ast.BlockStmt, *ast.KeyValueExpr:
			return false
		case nil:
			return false
		default:
			return true
		}
	}
}

func containsNode(root ast.Node, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(m ast.Node) bool {
		if m == target {
			found = true
		}
		return !found
	})
	return found
}

// ---- mutation summaries (purity) ----

// MutatesParams returns the entry positions n may store through or sort
// in place: 0..len(params)-1 for parameters, -1 for the receiver. Only
// reference-like entries (pointer, slice, map, named slice) are
// candidates. Sites carrying a //hplint:allow purity escape in the
// node's own package are contracted-clean.
func (prog *Program) MutatesParams(n *Node) []int {
	if m, ok := prog.mutates[n]; ok {
		return m
	}
	var out []int
	if n.Obj != nil { // literals keep their effects local to their node
		allowed := prog.allowedLines(n.Pkg, "purity")
		for _, cand := range entryCandidates(n) {
			if mutatesEntry(n, cand.obj, allowed, prog.Fset) {
				out = append(out, cand.index)
			}
		}
	}
	prog.mutates[n] = out
	return out
}

type entryCandidate struct {
	index int // -1 = receiver
	obj   types.Object
}

// isRefLike reports whether a value of type t can alias caller state.
func isRefLike(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map:
		return true
	case *types.Interface:
		_ = u
		return false
	}
	return false
}

func entryCandidates(n *Node) []entryCandidate {
	var out []entryCandidate
	info := n.Pkg.Info
	if n.Recv != nil {
		for _, f := range n.Recv.List {
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil && isRefLike(obj.Type()) {
					out = append(out, entryCandidate{index: -1, obj: obj})
				}
			}
		}
	}
	i := 0
	if n.Type.Params != nil {
		for _, f := range n.Type.Params.List {
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil && isRefLike(obj.Type()) {
					out = append(out, entryCandidate{index: i, obj: obj})
				}
				i++
			}
			if len(f.Names) == 0 {
				i++
			}
		}
	}
	return out
}

// mutatesEntry runs the purity taint machinery with a single tainted
// entry object and reports whether any store/sort lands on it.
func mutatesEntry(n *Node, obj types.Object, allowed map[string]bool, fset *token.FileSet) bool {
	tr := &taintTracker{info: n.Pkg.Info}
	g := BuildCFG(n.Body)
	entry := taintSet{obj: true}
	res := Solve(&FlowProblem[taintSet]{
		CFG:      g,
		Entry:    entry,
		Join:     joinTaint,
		Equal:    equalTaint,
		Transfer: func(b *Block, in taintSet) taintSet { return tr.transferTaint(b, in, isRefLike) },
	})
	mutated := false
	for _, b := range g.Blocks {
		if mutated || !res.Reached[b.Index] {
			continue
		}
		ts := res.In[b.Index]
		for _, node := range b.Nodes {
			tr.findMutations(node, ts, func(pos token.Pos, _ string) {
				p := fset.Position(pos)
				if !allowed[fmt.Sprintf("%s:%d", p.Filename, p.Line)] {
					mutated = true
				}
			})
			ts = tr.transferTaint(&Block{Nodes: []ast.Node{node}}, ts, isRefLike)
		}
	}
	return mutated
}

// ---- swallowed-error summaries (errflow) ----

// SwallowsError returns the position of a statement-position call inside
// n whose error result is silently discarded (fmt printers, never-fail
// writers, explicit `_ =` discards, and //hplint:allow errflow lines are
// exempt), or token.NoPos.
func (prog *Program) SwallowsError(n *Node) token.Pos {
	if pos, ok := prog.swallows[n]; ok {
		return pos
	}
	pos := token.NoPos
	if n.Obj != nil {
		allowed := prog.allowedLines(n.Pkg, "errflow")
		info := n.Pkg.Info
		inspectOwn(n.Body, n.Lit, func(m ast.Node) bool {
			if pos != token.NoPos {
				return false
			}
			es, ok := m.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			tv, ok := info.Types[call]
			if !ok || !hasErrorResult(tv.Type) || ignoredErrorCallInfo(info, call) {
				return true
			}
			p := prog.Fset.Position(call.Pos())
			if allowed[fmt.Sprintf("%s:%d", p.Filename, p.Line)] {
				return true
			}
			pos = call.Pos()
			return false
		})
	}
	prog.swallows[n] = pos
	return pos
}

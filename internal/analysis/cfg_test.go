package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseFuncBody parses src as the body of a function and returns its CFG.
func parseFuncBody(t *testing.T, src string) *CFG {
	t.Helper()
	file := "package p\nfunc f() {\n" + src + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg.go", file, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	return BuildCFG(fd.Body)
}

// reachable returns the set of blocks reachable from the entry.
func reachable(g *CFG) map[int]bool {
	seen := map[int]bool{}
	var walk func(b *Block)
	walk = func(b *Block) {
		if seen[b.Index] {
			return
		}
		seen[b.Index] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	if len(g.Blocks) > 0 {
		walk(g.Blocks[0])
	}
	return seen
}

func TestCFGStraightLine(t *testing.T) {
	g := parseFuncBody(t, "x := 1\ny := x\n_ = y")
	if !reachable(g)[g.Exit.Index] {
		t.Fatalf("exit unreachable:\n%s", g)
	}
	if len(g.Blocks[0].Nodes) != 3 {
		t.Errorf("entry block has %d nodes, want 3:\n%s", len(g.Blocks[0].Nodes), g)
	}
}

func TestCFGIfElseJoin(t *testing.T) {
	g := parseFuncBody(t, `
x := 0
if x > 0 {
	x = 1
} else {
	x = 2
}
_ = x`)
	entry := g.Blocks[0]
	if len(entry.Succs) != 2 {
		t.Fatalf("condition block has %d successors, want 2:\n%s", len(entry.Succs), g)
	}
	// Both branches must reconverge on the same join block.
	a, b := entry.Succs[0], entry.Succs[1]
	if len(a.Succs) != 1 || len(b.Succs) != 1 || a.Succs[0] != b.Succs[0] {
		t.Errorf("branches do not reconverge:\n%s", g)
	}
}

func TestCFGIfWithoutElse(t *testing.T) {
	g := parseFuncBody(t, `
x := 0
if x > 0 {
	x = 1
}
_ = x`)
	entry := g.Blocks[0]
	if len(entry.Succs) != 2 {
		t.Fatalf("condition block has %d successors, want 2 (then + skip):\n%s", len(entry.Succs), g)
	}
}

func TestCFGForLoop(t *testing.T) {
	g := parseFuncBody(t, `
s := 0
for i := 0; i < 10; i++ {
	s += i
}
_ = s`)
	// The loop head must have a back edge reaching it and two ways out
	// (into the body and past the loop).
	var head *Block
	for _, b := range g.Blocks {
		if strings.Contains(b.comment, "for.head") {
			head = b
		}
	}
	if head == nil {
		t.Fatalf("no loop head:\n%s", g)
	}
	if len(head.Succs) != 2 {
		t.Errorf("loop head has %d successors, want 2:\n%s", len(head.Succs), g)
	}
	backEdge := false
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s == head && b.Index > head.Index {
				backEdge = true
			}
		}
	}
	if !backEdge {
		t.Errorf("no back edge to the loop head:\n%s", g)
	}
}

func TestCFGRangeLoop(t *testing.T) {
	g := parseFuncBody(t, `
s := 0
for _, v := range []int{1, 2} {
	s += v
}
_ = s`)
	if !reachable(g)[g.Exit.Index] {
		t.Fatalf("exit unreachable:\n%s", g)
	}
	var head *Block
	for _, b := range g.Blocks {
		if strings.Contains(b.comment, "range.head") {
			head = b
		}
	}
	if head == nil || len(head.Succs) != 2 {
		t.Fatalf("range head missing or wrong arity:\n%s", g)
	}
}

func TestCFGReturnTerminates(t *testing.T) {
	g := parseFuncBody(t, `
x := 0
if x > 0 {
	return
}
x = 1
_ = x`)
	// The then-branch must lead straight to the exit, not to the join.
	entry := g.Blocks[0]
	then := entry.Succs[0]
	if len(then.Succs) != 1 || then.Succs[0] != g.Exit {
		t.Errorf("return branch does not lead to exit:\n%s", g)
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	g := parseFuncBody(t, `
x := 0
switch x {
case 0:
	x = 1
	fallthrough
case 1:
	x = 2
default:
	x = 3
}
_ = x`)
	if !reachable(g)[g.Exit.Index] {
		t.Fatalf("exit unreachable:\n%s", g)
	}
	// Find the case-0 block (contains the fallthrough) and check it chains
	// into the next clause, not the join.
	var caseBlocks []*Block
	for _, b := range g.Blocks {
		if strings.Contains(b.comment, "switch.case") {
			caseBlocks = append(caseBlocks, b)
		}
	}
	if len(caseBlocks) != 3 {
		t.Fatalf("got %d case blocks, want 3:\n%s", len(caseBlocks), g)
	}
	if len(caseBlocks[0].Succs) != 1 || caseBlocks[0].Succs[0] != caseBlocks[1] {
		t.Errorf("fallthrough does not chain into the next clause:\n%s", g)
	}
}

func TestCFGSwitchNoDefaultSkips(t *testing.T) {
	g := parseFuncBody(t, `
x := 0
switch x {
case 1:
	x = 2
}
_ = x`)
	// Without a default the head must also branch past every clause.
	var head *Block
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if strings.Contains(s.comment, "switch.case") {
				head = b
			}
		}
	}
	if head == nil {
		t.Fatalf("no switch head:\n%s", g)
	}
	if len(head.Succs) != 2 {
		t.Errorf("switch head has %d successors, want 2 (case + skip):\n%s", len(head.Succs), g)
	}
}

func TestCFGLabeledContinue(t *testing.T) {
	g := parseFuncBody(t, `
outer:
for i := 0; i < 3; i++ {
	for j := 0; j < 3; j++ {
		if j == i {
			continue outer
		}
	}
}`)
	if !reachable(g)[g.Exit.Index] {
		t.Fatalf("exit unreachable:\n%s", g)
	}
}

func TestCFGGotoForward(t *testing.T) {
	g := parseFuncBody(t, `
x := 0
if x == 0 {
	goto done
}
x = 1
done:
_ = x`)
	if !reachable(g)[g.Exit.Index] {
		t.Fatalf("exit unreachable:\n%s", g)
	}
	// The goto block must have exactly one successor: the label block.
	var labelBlock *Block
	for _, b := range g.Blocks {
		if strings.Contains(b.comment, "label.done") {
			labelBlock = b
		}
	}
	if labelBlock == nil {
		t.Fatalf("no label block:\n%s", g)
	}
	preds := 0
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s == labelBlock {
				preds++
			}
		}
	}
	if preds != 2 {
		t.Errorf("label block has %d predecessors, want 2 (goto + fallthrough):\n%s", preds, g)
	}
}

func TestCFGSelect(t *testing.T) {
	g := parseFuncBody(t, `
c := make(chan int)
select {
case v := <-c:
	_ = v
default:
}`)
	if !reachable(g)[g.Exit.Index] {
		t.Fatalf("exit unreachable:\n%s", g)
	}
}

func TestInspectShallowCutsRangeBodyAndFuncLits(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "s.go", `package p
func f(xs []int) int {
	s := 0
	for _, v := range xs {
		s += v
	}
	g := func() { s *= 2 }
	g()
	return s
}`, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	var rs *ast.RangeStmt
	var assign ast.Stmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			rs = n
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 {
				if _, ok := n.Rhs[0].(*ast.FuncLit); ok {
					assign = n
				}
			}
		}
		return true
	})
	// The range body (s += v) must not be visited through the header node.
	InspectShallow(rs, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok && as.Tok == token.ADD_ASSIGN {
			t.Errorf("InspectShallow descended into the range body: %v", as)
		}
		return true
	})
	// The func literal body (s *= 2) must not be visited through the
	// assignment that captures it.
	InspectShallow(assign, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok && as.Tok == token.MUL_ASSIGN {
			t.Errorf("InspectShallow descended into the func literal: %v", as)
		}
		return true
	})
}

package analysis

import (
	"strings"
	"testing"
)

// TestCallGraphFixture checks the builder discovers each edge kind over
// the golden fixture: static calls, interface dispatch fanning out to
// every in-module implementation (with the abstract method recorded as
// the via point), method values, and closure creation.
func TestCallGraphFixture(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadDir("testdata/callgraph", "internal/cgfixture")
	if err != nil {
		t.Fatal(err)
	}
	prog := BuildProgram(pkgs)
	dump := prog.DumpGraph()
	for _, want := range []string{
		"fixture.static -> fixture.helper [static]",
		"fixture.viaInterface -> fixture.Alpha.Do [interface via fixture.Doer.Do]",
		"fixture.viaInterface -> fixture.Beta.Do [interface via fixture.Doer.Do]",
		"fixture.methodValue -> fixture.Alpha.Do [methodvalue]",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("call graph missing edge %q", want)
		}
	}
	if !strings.Contains(dump, "fixture.closures -> fixture.closures$1 [closure]") {
		t.Errorf("call graph missing closure edge; dump:\n%s", dump)
	}
}

// TestDumpGraphDeterministic: two builds over the same fixture must
// render identical graphs (map iteration must not leak into the dump).
func TestDumpGraphDeterministic(t *testing.T) {
	render := func() string {
		l, err := NewLoader(".")
		if err != nil {
			t.Fatal(err)
		}
		pkgs, err := l.LoadDir("testdata/callgraph", "internal/cgfixture")
		if err != nil {
			t.Fatal(err)
		}
		return BuildProgram(pkgs).DumpGraph()
	}
	if a, b := render(), render(); a != b {
		t.Error("DumpGraph output differs between identical builds")
	}
}

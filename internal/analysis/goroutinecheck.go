package analysis

import (
	"go/ast"
	"go/types"
)

// GoroutineCheck enforces the two structural rules the parallel
// experiment engine's determinism rests on, in the packages that spawn
// goroutines around scheduler code:
//
//  1. every go statement must carry a visible join: its func literal
//     body must signal completion through a sync.WaitGroup.Done call, a
//     channel send, or a channel close. A goroutine with no join is
//     either a leak or a data race waiting for a missing happens-before
//     edge. Spawning a named function is flagged too — the join (if any)
//     is hidden from the reader and from this check.
//  2. no *math/rand.Rand value may cross a goroutine boundary, neither
//     captured by the literal nor passed as an argument. rand.Rand is not
//     safe for concurrent use, and sharing one makes the draw sequence
//     depend on interleaving; goroutines must derive their own generator
//     from a seed (engine.Cell.Rand is the sanctioned form).
var GoroutineCheck = &Analyzer{
	Name:     "goroutinecheck",
	Doc:      "goroutines must have a visible join and must not share rand.Rand values",
	Packages: []string{"internal/engine", "internal/expr"},
	Run:      runGoroutineCheck,
}

func runGoroutineCheck(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoStmt(pass, g)
			return true
		})
	}
}

func checkGoStmt(pass *Pass, g *ast.GoStmt) {
	// Rule 2, argument form: a rand.Rand handed to the new goroutine via
	// the call's argument list.
	for _, arg := range g.Call.Args {
		if tv, ok := pass.Info.Types[arg]; ok && isRandRand(tv.Type) {
			pass.Reportf(arg.Pos(), "*rand.Rand passed across a goroutine boundary; derive a per-goroutine generator from a seed instead")
		}
	}

	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		pass.Reportf(g.Pos(), "go statement spawns a named function; its join is invisible here — inline a func literal that signals completion via WaitGroup.Done, a channel send, or close")
		return
	}

	// Rule 1: the literal body must contain a join signal.
	if !hasJoinSignal(pass, lit) {
		pass.Reportf(g.Pos(), "goroutine has no visible join; signal completion via WaitGroup.Done, a channel send, or close")
	}

	// Rule 2, capture form: an identifier of type rand.Rand used inside
	// the literal but declared outside it. One report per object keeps a
	// generator used several times from flooding the output.
	seen := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil || seen[obj] || !isRandRand(obj.Type()) {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			return true // the goroutine's own generator
		}
		seen[obj] = true
		pass.Reportf(id.Pos(), "*rand.Rand %q crosses a goroutine boundary; derive a per-goroutine generator from a seed instead", id.Name)
		return true
	})
}

// hasJoinSignal reports whether the literal's body contains a call to
// sync.WaitGroup.Done (usually deferred), a channel send, or a close
// call — the three completion signals a joiner can wait on.
func hasJoinSignal(pass *Pass, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if b, ok := pass.Info.Uses[fun].(*types.Builtin); ok && b.Name() == "close" {
					found = true
				}
			case *ast.SelectorExpr:
				if fn, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok &&
					fn.Name() == "Done" && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// isRandRand reports whether t is math/rand.Rand or math/rand/v2.Rand,
// possibly behind a pointer.
func isRandRand(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Rand" || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "math/rand" || path == "math/rand/v2"
}

// Package analysis is the repository's static-analysis suite (the hplint
// tool). It enforces, with go/ast and go/types and nothing else, the
// invariants the paper's guarantees rest on and which the rest of the
// repository otherwise protects only by convention:
//
//   - simdeterminism: scheduling code must be a pure function of task
//     durations — no wall clock, no global random source;
//   - floateq: no exact float equality where ρ-ties or bound comparisons
//     need an epsilon or a deterministic tie-break;
//   - obsguard: observer emission in core's event loops must stay behind a
//     nil guard and pass only non-allocating arguments (the zero-alloc
//     guarantee of PR 1);
//   - maporder: no scheduling-relevant slice built from a map iteration
//     without a subsequent sort;
//   - sleepsync: no time.Sleep-based synchronization in tests;
//   - goroutinecheck: goroutines in the experiment engine and the sweep
//     drivers carry a visible join and never share a rand.Rand across
//     the spawn boundary;
//
// plus four flow-sensitive analyzers built on the package's CFG +
// forward-dataflow engine (cfg.go, dataflow.go):
//
//   - unitflow: dimensional analysis — no arithmetic or comparison mixing
//     time with area or ratio, or milliseconds with seconds;
//   - lockcheck: mutex discipline — fields declared after a mutex in
//     their struct are accessed only with it held;
//   - purity: schedulers treat Platform, task slices, and DAGs as
//     read-only;
//   - errflow: no dropped or shadowed errors along any path in the
//     binaries and the live executor.
//
// A diagnostic can be suppressed with a trailing (or immediately
// preceding) comment of the form
//
//	//hplint:allow <analyzer> <reason>
//
// The reason is mandatory: an escape without a recorded justification is
// itself a diagnostic.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check run over a type-checked package.
type Analyzer struct {
	// Name is the identifier used in diagnostics and allow comments.
	Name string
	// Doc is a one-line description of the invariant the analyzer protects.
	Doc string
	// Packages lists the module-relative import paths the analyzer applies
	// to (e.g. "internal/core"). Empty means every package.
	Packages []string
	// TestFiles selects which files the analyzer visits: OnlyTests visits
	// only *_test.go files, SkipTests only non-test files.
	OnlyTests bool
	SkipTests bool
	// Run reports diagnostics for one package via pass.Reportf.
	Run func(pass *Pass)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// RelPath is the module-relative import path ("" for the module root).
	RelPath string
	// Files are the parsed files the analyzer should visit (already
	// filtered by the OnlyTests/SkipTests file selector).
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Prog is the whole-module call graph and summary store (callgraph.go),
	// or nil when packages are analyzed in isolation. Interprocedural
	// checks (allocflow, and the call-site halves of purity and errflow)
	// run only when it is present.
	Prog *Program

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportChain(pos, nil, format, args...)
}

// ReportChain records a diagnostic whose finding is explained by a call
// or acquisition chain (allocflow, lockorder). The chain rides along to
// the JSON output so CI annotations can surface it.
func (p *Pass) ReportChain(pos token.Pos, chain []string, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Chain:    chain,
	})
}

// Diagnostic is one finding, positioned for file.go:line:col rendering.
// Chain, when set, is the step-by-step explanation (a call chain for
// allocflow, the cycle edges for lockorder).
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	Chain    []string
}

// String renders the diagnostic in the conventional positional format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// All returns the full analyzer suite in stable order: the six
// syntactic analyzers, the five flow-sensitive analyzers built on the
// CFG/dataflow engine (cfg.go, dataflow.go), allocflow, and the three
// module-wide concurrency analyzers built on the call graph
// (lockorder.go, blockcheck.go, capturecheck.go).
func All() []*Analyzer {
	return []*Analyzer{
		SimDeterminism,
		FloatEq,
		ObsGuard,
		MapOrder,
		SleepSync,
		GoroutineCheck,
		UnitFlow,
		LockCheck,
		Purity,
		ErrFlow,
		SpanEnd,
		AllocFlow,
		LockOrder,
		BlockCheck,
		CaptureCheck,
	}
}

// deterministicPackages are the packages whose behavior must be a pure
// function of task durations: the simulator substrate, the schedulers,
// the bounds, the DAG machinery, and the live executor (which gets its
// clock injected for exactly this reason).
var deterministicPackages = []string{
	"internal/sim",
	"internal/core",
	"internal/sched",
	"internal/bounds",
	"internal/dag",
	"internal/runtime",
}

// allowKey identifies one (file line, analyzer) suppression.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

const allowPrefix = "//hplint:allow"

// collectAllows scans a file's comments for hplint:allow markers. A marker
// on line N suppresses diagnostics of the named analyzer on line N (the
// trailing-comment form) and line N+1 (the comment-above form). Malformed
// markers — unknown analyzer, or no reason — are reported as diagnostics
// of the pseudo-analyzer "hplint".
func collectAllows(fset *token.FileSet, files []*ast.File, known map[string]bool, diags *[]Diagnostic) map[allowKey]bool {
	allows := make(map[allowKey]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, allowPrefix))
				name, reason, _ := strings.Cut(rest, " ")
				bad := func(msg string) {
					*diags = append(*diags, Diagnostic{Pos: pos, Analyzer: "hplint", Message: msg})
				}
				if name == "" {
					bad("hplint:allow needs an analyzer name and a reason")
					continue
				}
				if !known[name] {
					bad(fmt.Sprintf("hplint:allow names unknown analyzer %q", name))
					continue
				}
				if strings.TrimSpace(reason) == "" {
					bad(fmt.Sprintf("hplint:allow %s needs a reason", name))
					continue
				}
				allows[allowKey{pos.Filename, pos.Line, name}] = true
				allows[allowKey{pos.Filename, pos.Line + 1, name}] = true
			}
		}
	}
	return allows
}

// isTestFile reports whether the file at pos is a *_test.go file.
func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}

// RunAnalyzers runs every analyzer in suite over pkg in isolation (no
// call graph: interprocedural checks stay quiet) and returns the
// surviving diagnostics sorted by position.
func RunAnalyzers(suite []*Analyzer, pkg *Package) []Diagnostic {
	return RunAnalyzersProgram(suite, pkg, nil)
}

// RunAnalyzersProgram runs every analyzer in suite over pkg with the
// whole-module call graph prog available to the interprocedural checks,
// and returns the surviving (non-suppressed) diagnostics sorted by
// position.
func RunAnalyzersProgram(suite []*Analyzer, pkg *Package, prog *Program) []Diagnostic {
	kept, _ := RunAnalyzersProgramRaw(suite, pkg, prog)
	return kept
}

// RunAnalyzersProgramRaw is RunAnalyzersProgram plus the raw diagnostic
// stream before allow-suppression. The raw stream is what the stale-
// allow detector (stale.go) consumes: an allow is live exactly when a
// raw diagnostic fired on one of its lines.
func RunAnalyzersProgramRaw(suite []*Analyzer, pkg *Package, prog *Program) (kept, raw []Diagnostic) {
	known := make(map[string]bool, len(suite))
	for _, a := range suite {
		known[a.Name] = true
	}
	var diags []Diagnostic
	allows := collectAllows(pkg.Fset, pkg.Files, known, &diags)
	for _, a := range suite {
		if len(a.Packages) > 0 {
			hit := false
			for _, p := range a.Packages {
				if pkg.RelPath == p {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
		}
		var files []*ast.File
		for _, f := range pkg.Files {
			test := isTestFile(pkg.Fset, f)
			if pkg.TestOnly && !test {
				continue // duplicate of the base unit
			}
			if (a.OnlyTests && !test) || (a.SkipTests && test) {
				continue
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			RelPath:  pkg.RelPath,
			Files:    files,
			Types:    pkg.Types,
			Info:     pkg.Info,
			Prog:     prog,
			diags:    &diags,
		}
		a.Run(pass)
	}
	raw = diags
	kept = make([]Diagnostic, 0, len(diags))
	for _, d := range diags {
		if allows[allowKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			continue
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept, raw
}

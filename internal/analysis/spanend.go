package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SpanEnd flags spans that are started but not guaranteed to end: a
// *obs.Span local assigned from StartTrace/StartChild must have
// `x.End()` reached on every control-flow path from the start to the
// function exit. A span that is never ended never reaches the trace
// ring (and, being pooled, leaks its slot until GC), so the request it
// belongs to silently loses a phase — exactly the kind of observability
// bug no test notices.
//
// End-containment is checked over whole statements (a `defer x.End()`,
// or a deferred closure calling x.End(), discharges the obligation at
// the defer statement), and paths through the false branch of an
// `if x != nil` guard are vacuous — the started span is non-nil, so only
// the true branch is realizable. Spans that escape (returned, stored
// into a struct/map/slice element) transfer the obligation to the
// consumer and are exempt.
var SpanEnd = &Analyzer{
	Name:      "spanend",
	Doc:       "every span started must reach its End() on all paths",
	Packages:  []string{"cmd/hpserve", "internal/serve", "internal/shard", "internal/engine", "internal/load"},
	SkipTests: true,
	Run:       runSpanEnd,
}

type spanend struct {
	pass *Pass
}

// startedSpanObject returns the span object and source call when node is
// a single-value assignment `x := recv.StartChild(...)` (or StartTrace).
func (s *spanend) startedSpanObject(n ast.Node) types.Object {
	as, ok := n.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
		return nil
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" || !isStartCall(as.Rhs[0]) {
		return nil
	}
	obj := s.pass.Info.Defs[id]
	if obj == nil {
		obj = s.pass.Info.Uses[id]
	}
	if obj == nil || !isSpanType(obj.Type()) {
		return nil
	}
	return obj
}

// containsEnd reports whether node n (a whole statement, searched
// including deferred closures) calls obj.End().
func (s *spanend) containsEnd(n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "End" {
			return true
		}
		if id, isID := sel.X.(*ast.Ident); isID && s.pass.Info.Uses[id] == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

// escapes reports whether obj leaves the function: it appears in a
// return statement, inside a composite literal, or on the right of an
// assignment whose target is not a plain local identifier (field, map,
// or slice element). The End obligation transfers with it.
func (s *spanend) escapes(body *ast.BlockStmt, obj types.Object) bool {
	usesObj := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && s.pass.Info.Uses[id] == obj {
				found = true
			}
			return !found
		})
		return found
	}
	escaped := false
	ast.Inspect(body, func(n ast.Node) bool {
		if escaped {
			return false
		}
		switch x := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if usesObj(r) {
					escaped = true
				}
			}
		case *ast.CompositeLit:
			for _, e := range x.Elts {
				if usesObj(e) {
					escaped = true
				}
			}
		case *ast.AssignStmt:
			for i, l := range x.Lhs {
				if _, isID := l.(*ast.Ident); isID {
					continue
				}
				if i < len(x.Rhs) && usesObj(x.Rhs[i]) {
					escaped = true
				}
				if len(x.Rhs) == 1 && usesObj(x.Rhs[0]) {
					escaped = true
				}
			}
		}
		return !escaped
	})
	return escaped
}

// nilCond classifies a node as a nil comparison of obj: +1 for
// `obj != nil`, -1 for `obj == nil`, 0 otherwise.
func (s *spanend) nilCond(n ast.Node, obj types.Object) int {
	e, ok := n.(ast.Expr)
	if !ok {
		return 0
	}
	for {
		p, isParen := e.(*ast.ParenExpr)
		if !isParen {
			break
		}
		e = p.X
	}
	be, ok := e.(*ast.BinaryExpr)
	if !ok || (be.Op != token.NEQ && be.Op != token.EQL) {
		return 0
	}
	x, y := be.X, be.Y
	if isNilIdent(s.pass.Info, x) {
		x, y = y, x
	}
	if !isNilIdent(s.pass.Info, y) {
		return 0
	}
	id, ok := x.(*ast.Ident)
	if !ok || s.pass.Info.Uses[id] != obj {
		return 0
	}
	if be.Op == token.NEQ {
		return 1
	}
	return -1
}

// missesEndOnSomePath walks the CFG from just after the start node and
// reports whether some realizable path reaches the exit without a
// statement containing obj.End(). The false branch of `if obj != nil`
// is not realizable (obj was just started, hence non-nil); successor
// order for an if condition is [then, else/done] by CFG construction.
func (s *spanend) missesEndOnSomePath(g *CFG, start *Block, startIdx int, obj types.Object) bool {
	seen := map[*Block]bool{}
	var walk func(b *Block, idx int) bool
	walk = func(b *Block, idx int) bool {
		for i := idx; i < len(b.Nodes); i++ {
			if s.containsEnd(b.Nodes[i], obj) {
				return false
			}
		}
		if b == g.Exit {
			return true
		}
		skip := -1
		if len(b.Nodes) > 0 && len(b.Succs) == 2 {
			switch s.nilCond(b.Nodes[len(b.Nodes)-1], obj) {
			case 1:
				skip = 1 // `obj != nil`: the nil branch is dead
			case -1:
				skip = 0 // `obj == nil`: the non-nil branch is Succs[1]
			}
		}
		for i, succ := range b.Succs {
			if i == skip || seen[succ] {
				continue
			}
			seen[succ] = true
			if walk(succ, 0) {
				return true
			}
		}
		return false
	}
	return walk(start, startIdx+1)
}

func runSpanEnd(pass *Pass) {
	s := &spanend{pass: pass}
	for _, fb := range FunctionsOf(pass.Files) {
		g := BuildCFG(fb.Body)
		for _, b := range g.Blocks {
			for idx, n := range b.Nodes {
				obj := s.startedSpanObject(n)
				if obj == nil || s.escapes(fb.Body, obj) {
					continue
				}
				if s.missesEndOnSomePath(g, b, idx, obj) {
					pass.Reportf(n.Pos(), "span %s is started here but not ended on every path (missing %s.End() before some exit)", obj.Name(), obj.Name())
				}
			}
		}
	}
}

package analysis

import (
	"go/token"
	"strings"
)

// AllocFlow is the allocation-contract analyzer: a function marked
//
//	//hplint:hotpath
//
// in its doc comment must not allocate — not in its own body and not
// through any call chain the call graph (callgraph.go) can realize from
// it, interface dispatch included. Findings carry the full chain from
// the root to the allocation site
//
//	hot path core.runList reaches an allocation:
//	core.runList → obs.Observer.TaskQueued → obs.Timeline.TaskQueued →
//	append may grow the backing array
//
// so the fix target is named, not hunted. Justified exceptions use the
// standard escape at the allocation site (which cleans the summary for
// every caller, not just one chain) or a //hplint:allow allocflow
// <reason> line in a function's doc comment to contract the whole
// function as accepted. A hotpath marker not attached to a function
// declaration is itself a finding: a misplaced annotation must fail
// loudly instead of silently protecting nothing.
//
// The analyzer only runs with a whole-module Program (hplint, the repo
// test, and the program-aware fixtures); per-package isolated runs stay
// quiet.
var AllocFlow = &Analyzer{
	Name:      "allocflow",
	Doc:       "no allocation reachable from a //hplint:hotpath root",
	SkipTests: true,
	Run:       runAllocFlow,
}

func runAllocFlow(pass *Pass) {
	prog := pass.Prog
	if prog == nil {
		return
	}
	// Files of this pass, for attributing orphan markers to the package
	// being analyzed.
	inPass := map[string]bool{}
	for _, f := range pass.Files {
		inPass[pass.Fset.Position(f.Pos()).Filename] = true
	}
	for _, pos := range prog.orphanHotpaths {
		if inPass[prog.Fset.Position(pos).Filename] {
			pass.Reportf(pos, "hplint:hotpath is not attached to a function declaration — move it into the function's doc comment")
		}
	}
	for _, root := range prog.Nodes {
		if !root.Hot || root.Pkg.RelPath != pass.RelPath {
			continue
		}
		if !inPass[prog.Fset.Position(root.docPos).Filename] {
			continue
		}
		// Intrinsic allocations in the hot function itself.
		for _, s := range prog.allocSitesEffective(root) {
			pass.Reportf(s.Pos, "hot path %s allocates: %s", root.Name, s.Desc)
		}
		reportChains(pass, prog, root)
	}
}

// reportChains finds, per allocating function reachable from root, the
// shortest realizable call chain and reports it at the first call site
// inside the root. The search prunes to the may-allocate subgraph and
// cuts chains at the first allocating callee: deeper allocations behind
// an already-reported function would only restate the same fix target.
func reportChains(pass *Pass, prog *Program, root *Node) {
	visited := map[*Node]bool{root: true}
	parentNode := map[*Node]*Node{}
	parentEdge := map[*Node]Edge{}
	queue := []*Node{root}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range cur.Calls {
			callee := e.Callee
			if visited[callee] || callee.Contracted || !prog.MayAlloc(callee) {
				continue
			}
			visited[callee] = true
			parentNode[callee] = cur
			parentEdge[callee] = e
			if sites := prog.allocSitesEffective(callee); len(sites) > 0 {
				steps, firstSite := chainSteps(root, callee, parentNode, parentEdge, sites[0])
				pass.ReportChain(firstSite, steps, "hot path %s reaches an allocation: %s", root.Name, strings.Join(steps, " → "))
				continue
			}
			queue = append(queue, callee)
		}
	}
}

// chainSteps walks the BFS parent links back from target to root and
// returns the forward chain as individual steps (for the JSON `chain`
// field), inserting the abstract interface method as a pseudo-step on
// dispatch edges, plus the position of the first call site (the call
// inside the root), which is where the finding anchors.
func chainSteps(root, target *Node, parentNode map[*Node]*Node, parentEdge map[*Node]Edge, site AllocSite) ([]string, token.Pos) {
	var rev []string
	cur := target
	first := parentEdge[target]
	for cur != root {
		e := parentEdge[cur]
		rev = append(rev, cur.Name)
		if e.Via != "" {
			rev = append(rev, e.Via)
		}
		first = e
		cur = parentNode[cur]
	}
	steps := []string{root.Name}
	for i := len(rev) - 1; i >= 0; i-- {
		steps = append(steps, rev[i])
	}
	steps = append(steps, site.Desc)
	return steps, first.Site
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// capturecheck flags static race candidates: a goroutine closure
// (`go func(){...}()`) captures a variable that is also accessed by the
// spawning function while the goroutine may still be running, and no
// lock guards both sides. "May still be running" is a forward dataflow
// over the spawner's CFG — a spawn joins (leaves the active set) at a
// WaitGroup.Wait, a channel receive, or a channel range, the module's
// join idioms. Guards come from the same must-held lattice lockcheck
// and lockorder use: a conflict is benign when the intersection of the
// locks held at the inside accesses and the locks held at the outside
// access is non-empty. Candidates are ranked by provenance: a write the
// summary layer derives from a mutating callee (MutatesParams) names
// the callee in the message. Exemptions keep the repository's sound
// concurrency idioms quiet: channels, sync.* and atomic.* values,
// contexts, per-goroutine sharded element writes (`errs[i] =` with a
// goroutine-local i), and callees that acquire locks of their own
// (internally synchronized types). Spawns inside a loop are checked
// against their own previous iterations (the self-overlap rule).
var CaptureCheck = &Analyzer{
	Name:      "capturecheck",
	Doc:       "goroutine closures must not capture variables raced with the spawning function",
	Packages:  []string{"internal/engine", "internal/serve", "internal/shard", "internal/obs", "internal/load"},
	SkipTests: true,
	Run:       runCaptureCheck,
}

// captureSpawn is one `go func(){...}(...)` statement and what its
// closure does to captured variables.
type captureSpawn struct {
	stmt *ast.GoStmt
	lit  *ast.FuncLit
	line int
	// writes maps a captured variable to "" (direct store) or the name
	// of the mutating callee the write was derived from.
	writes map[*types.Var]string
	reads  map[*types.Var]bool
	// writeGuards/readGuards are the locks held at EVERY inside write /
	// read of the variable (intersection; the must-guard).
	writeGuards map[*types.Var]map[lockKey]bool
	readGuards  map[*types.Var]map[lockKey]bool
}

// exemptCaptureVar excludes variables whose types are concurrency-safe
// by construction or checked elsewhere: channels (blockcheck's domain),
// sync.* (mutexes, wait groups), sync/atomic values, contexts.
func exemptCaptureVar(v *types.Var) bool {
	if v == nil || v.IsField() {
		return true
	}
	t := v.Type()
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	if isChanType(t) {
		return true
	}
	if named, ok := t.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil {
			switch pkg.Path() {
			case "sync", "sync/atomic", "context":
				return true
			}
		}
	}
	return false
}

// captureRoot resolves the variable written through an lvalue or
// &-operand, reporting whether the access path is sharded — indexed by a
// variable declared inside [insideLo, insideHi) (the goroutine-local
// index idiom `errs[i] = ...`, which cannot race between instances).
func captureRoot(info *types.Info, e ast.Expr, insideLo, insideHi token.Pos) (v *types.Var, sharded bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			if id, ok := ast.Unparen(x.Index).(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil && obj.Pos() >= insideLo && obj.Pos() < insideHi {
					sharded = true
				}
			}
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			if vv, ok := info.Uses[x].(*types.Var); ok {
				return vv, sharded
			}
			if vv, ok := info.Defs[x].(*types.Var); ok {
				return vv, sharded
			}
			return nil, sharded
		default:
			return nil, sharded
		}
	}
}

// calleeWrite is a write derived from a mutating callee's summary.
type calleeWrite struct {
	arg ast.Expr
	via string
}

// calleeWrites resolves a call's statically-known callee and maps its
// MutatesParams summary back to argument/receiver expressions. Callees
// that acquire locks of their own are internally synchronized and
// produce no writes.
func calleeWrites(prog *Program, info *types.Info, call *ast.CallExpr) []calleeWrite {
	if prog == nil {
		return nil
	}
	var fn *types.Func
	var recv ast.Expr
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = info.Uses[f].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = info.Uses[f.Sel].(*types.Func)
		recv = f.X
	}
	node := prog.NodeOf(fn)
	if node == nil || len(prog.lockAcquires(node)) > 0 {
		return nil
	}
	var out []calleeWrite
	for _, idx := range prog.MutatesParams(node) {
		if idx == -1 {
			if recv != nil {
				out = append(out, calleeWrite{recv, node.Name})
			}
			continue
		}
		if idx >= 0 && idx < len(call.Args) {
			out = append(out, calleeWrite{call.Args[idx], node.Name})
		}
	}
	return out
}

// heldAtFunc computes the must-held lock state at every statement of
// body and returns a position lookup.
func heldAtFunc(info *types.Info, body *ast.BlockStmt) func(pos token.Pos) lockState {
	type entry struct {
		lo, hi token.Pos
		st     lockState
	}
	g := BuildCFG(body)
	res := Solve(&FlowProblem[lockState]{
		CFG:   g,
		Entry: lockState{},
		Join:  joinLockState,
		Equal: equalLockState,
		Transfer: func(b *Block, in lockState) lockState {
			return lockFlowTransfer(info, b, in)
		},
	})
	var entries []entry
	for _, b := range g.Blocks {
		if !res.Reached[b.Index] {
			continue
		}
		held := res.In[b.Index]
		for _, nd := range b.Nodes {
			entries = append(entries, entry{nd.Pos(), nd.End(), held})
			held = lockFlowTransfer(info, &Block{Nodes: []ast.Node{nd}}, held)
		}
	}
	return func(pos token.Pos) lockState {
		for _, e := range entries {
			if pos >= e.lo && pos < e.hi {
				return e.st
			}
		}
		return lockState{}
	}
}

// analyzeSpawn builds the capture profile of one goroutine literal.
func analyzeSpawn(prog *Program, info *types.Info, g *ast.GoStmt, lit *ast.FuncLit, fset *token.FileSet) *captureSpawn {
	sp := &captureSpawn{
		stmt:        g,
		lit:         lit,
		line:        fset.Position(g.Pos()).Line,
		writes:      map[*types.Var]string{},
		reads:       map[*types.Var]bool{},
		writeGuards: map[*types.Var]map[lockKey]bool{},
		readGuards:  map[*types.Var]map[lockKey]bool{},
	}
	lo, hi := lit.Pos(), lit.End()
	captured := func(v *types.Var) bool {
		return v != nil && !exemptCaptureVar(v) && (v.Pos() < lo || v.Pos() >= hi)
	}
	heldAt := heldAtFunc(info, lit.Body)
	meet := func(guards map[*types.Var]map[lockKey]bool, v *types.Var, pos token.Pos) {
		held := heldAt(pos)
		cur, seen := guards[v]
		if !seen {
			g2 := map[lockKey]bool{}
			for k := range held {
				g2[k] = true
			}
			guards[v] = g2
			return
		}
		for k := range cur {
			if _, ok := held[k]; !ok {
				delete(cur, k)
			}
		}
	}
	addWrite := func(v *types.Var, sharded bool, via string, pos token.Pos) {
		if sharded || !captured(v) {
			return
		}
		if _, ok := sp.writes[v]; !ok || via == "" {
			sp.writes[v] = via
		}
		meet(sp.writeGuards, v, pos)
	}
	ast.Inspect(lit.Body, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				v, sharded := captureRoot(info, lhs, lo, hi)
				addWrite(v, sharded, "", lhs.Pos())
			}
		case *ast.IncDecStmt:
			v, sharded := captureRoot(info, x.X, lo, hi)
			addWrite(v, sharded, "", x.Pos())
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				v, sharded := captureRoot(info, x.X, lo, hi)
				addWrite(v, sharded, "", x.Pos())
			}
		case *ast.CallExpr:
			for _, cw := range calleeWrites(prog, info, x) {
				v, sharded := captureRoot(info, cw.arg, lo, hi)
				addWrite(v, sharded, cw.via, cw.arg.Pos())
			}
		case *ast.Ident:
			if v, ok := info.Uses[x].(*types.Var); ok && captured(v) {
				sp.reads[v] = true
				meet(sp.readGuards, v, x.Pos())
			}
		}
		return true
	})
	return sp
}

// guardsOverlap reports whether two guard sets share a lock.
func guardsOverlap(a lockState, b map[lockKey]bool) bool {
	for k := range a {
		if b[k] {
			return true
		}
	}
	return false
}

func guardSetsOverlap(a, b map[lockKey]bool) bool {
	for k := range a {
		if b[k] {
			return true
		}
	}
	return false
}

// activeJoin / activeEqual implement the may-be-running lattice.
func activeJoin(a, b map[*ast.GoStmt]bool) map[*ast.GoStmt]bool {
	out := make(map[*ast.GoStmt]bool, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func activeEqual(a, b map[*ast.GoStmt]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// isJoinOp reports whether m synchronizes with running goroutines:
// WaitGroup.Wait, a channel receive, or a channel range. All active
// spawns are conservatively considered joined after one.
func isJoinOp(info *types.Info, m ast.Node) bool {
	switch x := m.(type) {
	case *ast.UnaryExpr:
		return x.Op == token.ARROW
	case *ast.RangeStmt:
		return isChanType(info.Types[x.X].Type)
	case *ast.CallExpr:
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
			if t := info.Types[sel.X].Type; t != nil && namedSyncType(t, "WaitGroup") {
				return true
			}
		}
	}
	return false
}

// activeTransfer applies one block's spawns and joins.
func activeTransfer(info *types.Info, spawns map[*ast.GoStmt]*captureSpawn, b *Block, in map[*ast.GoStmt]bool) map[*ast.GoStmt]bool {
	st := in
	mutated := false
	mut := func() {
		if !mutated {
			st = activeJoin(st, nil)
			mutated = true
		}
	}
	for _, nd := range b.Nodes {
		if _, isDefer := nd.(*ast.DeferStmt); isDefer {
			continue
		}
		InspectShallow(nd, func(m ast.Node) bool {
			if g, isGo := m.(*ast.GoStmt); isGo {
				if spawns[g] != nil {
					mut()
					st[g] = true
				}
				return false
			}
			if isJoinOp(info, m) && len(st) > 0 {
				mut()
				for k := range st {
					delete(st, k)
				}
			}
			return true
		})
	}
	return st
}

func runCaptureCheck(pass *Pass) {
	prog := pass.Prog
	if prog == nil {
		return
	}
	info := pass.Info
	for _, fb := range FunctionsOf(pass.Files) {
		checkCaptureBody(pass, prog, info, fb, nil)
	}
}

// captureCandidates accumulates the file:line set a -race report may
// legitimately point at: every reported access position plus the whole
// span of each implicated goroutine literal (racevalidate.go).
type captureCandidates struct {
	fset  *token.FileSet
	lines map[string]map[int]bool
}

func (c *captureCandidates) add(lo, hi token.Pos) {
	p := c.fset.Position(lo)
	q := c.fset.Position(hi)
	if c.lines[p.Filename] == nil {
		c.lines[p.Filename] = map[int]bool{}
	}
	last := q.Line
	if q.Filename != p.Filename {
		last = p.Line
	}
	for l := p.Line; l <= last; l++ {
		c.lines[p.Filename][l] = true
	}
}

func checkCaptureBody(pass *Pass, prog *Program, info *types.Info, fb FuncBody, cands *captureCandidates) {
	// Collect this body's own closure spawns (nested literals are their
	// own FuncBody entries).
	spawns := map[*ast.GoStmt]*captureSpawn{}
	ast.Inspect(fb.Body, func(m ast.Node) bool {
		if _, isLit := m.(*ast.FuncLit); isLit {
			return false
		}
		if g, isGo := m.(*ast.GoStmt); isGo {
			if lit, isL := g.Call.Fun.(*ast.FuncLit); isL {
				spawns[g] = analyzeSpawn(prog, info, g, lit, pass.Fset)
			}
			return false
		}
		return true
	})
	if len(spawns) == 0 {
		return
	}

	g := BuildCFG(fb.Body)
	lockRes := Solve(&FlowProblem[lockState]{
		CFG:   g,
		Entry: lockState{},
		Join:  joinLockState,
		Equal: equalLockState,
		Transfer: func(b *Block, in lockState) lockState {
			return lockFlowTransfer(info, b, in)
		},
	})
	actRes := Solve(&FlowProblem[map[*ast.GoStmt]bool]{
		CFG:   g,
		Entry: map[*ast.GoStmt]bool{},
		Join:  activeJoin,
		Equal: activeEqual,
		Transfer: func(b *Block, in map[*ast.GoStmt]bool) map[*ast.GoStmt]bool {
			return activeTransfer(info, spawns, b, in)
		},
	})

	type dedupKey struct {
		spawn *ast.GoStmt
		v     *types.Var
	}
	seen := map[dedupKey]bool{}
	report := func(sp *captureSpawn, v *types.Var, pos token.Pos, format string, args ...any) {
		if cands != nil {
			cands.add(pos, pos+1)
			cands.add(sp.lit.Pos(), sp.lit.End())
		}
		k := dedupKey{sp.stmt, v}
		if seen[k] {
			return
		}
		seen[k] = true
		pass.Reportf(pos, format, args...)
	}
	sortedActive := func(act map[*ast.GoStmt]bool) []*captureSpawn {
		var out []*captureSpawn
		for g2 := range act {
			if sp := spawns[g2]; sp != nil {
				out = append(out, sp)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].stmt.Pos() < out[j].stmt.Pos() })
		return out
	}
	rank := func(via string) string {
		if via != "" {
			return " — " + via + " mutates its argument"
		}
		return ""
	}

	checkAccess := func(v *types.Var, isWrite bool, pos token.Pos, act map[*ast.GoStmt]bool, held lockState) {
		if v == nil || exemptCaptureVar(v) {
			return
		}
		for _, sp := range sortedActive(act) {
			if isWrite {
				if via, ok := sp.writes[v]; ok {
					if !guardsOverlap(held, sp.writeGuards[v]) {
						report(sp, v, pos, "captured variable %s is written both here and by the goroutine spawned at line %d without a common lock (static race candidate%s)", v.Name(), sp.line, rank(via))
					}
				} else if sp.reads[v] {
					if !guardsOverlap(held, sp.readGuards[v]) {
						report(sp, v, pos, "captured variable %s is written here while the goroutine spawned at line %d reads it without a common lock (static race candidate)", v.Name(), sp.line)
					}
				}
			} else if via, ok := sp.writes[v]; ok {
				if !guardsOverlap(held, sp.writeGuards[v]) {
					report(sp, v, pos, "captured variable %s is read here while the goroutine spawned at line %d writes it without a common lock (static race candidate%s)", v.Name(), sp.line, rank(via))
				}
			}
		}
	}

	sortedWrites := func(sp *captureSpawn) []*types.Var {
		var out []*types.Var
		for v := range sp.writes {
			out = append(out, v)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
		return out
	}

	checkSpawnOverlap := func(sp *captureSpawn, act map[*ast.GoStmt]bool) {
		if act[sp.stmt] {
			for _, v := range sortedWrites(sp) {
				if len(sp.writeGuards[v]) > 0 {
					continue
				}
				report(sp, v, sp.stmt.Pos(), "goroutine spawned in a loop writes captured variable %s without a lock; overlapping instances race (static race candidate%s)", v.Name(), rank(sp.writes[v]))
			}
		}
		for _, other := range sortedActive(act) {
			if other.stmt == sp.stmt {
				continue
			}
			for _, v := range sortedWrites(sp) {
				if _, w := other.writes[v]; w {
					if !guardSetsOverlap(sp.writeGuards[v], other.writeGuards[v]) {
						report(sp, v, sp.stmt.Pos(), "goroutines spawned at lines %d and %d both write captured variable %s without a common lock (static race candidate)", other.line, sp.line, v.Name())
					}
				} else if other.reads[v] {
					if !guardSetsOverlap(sp.writeGuards[v], other.readGuards[v]) {
						report(sp, v, sp.stmt.Pos(), "goroutine spawned at line %d writes captured variable %s while the one at line %d reads it without a common lock (static race candidate)", sp.line, v.Name(), other.line)
					}
				}
			}
		}
	}

	for _, b := range g.Blocks {
		if !lockRes.Reached[b.Index] {
			continue
		}
		held := lockRes.In[b.Index]
		act := actRes.In[b.Index]
		for _, nd := range b.Nodes {
			if _, isDefer := nd.(*ast.DeferStmt); isDefer {
				continue
			}
			InspectShallow(nd, func(m ast.Node) bool {
				switch x := m.(type) {
				case *ast.GoStmt:
					if sp := spawns[x]; sp != nil {
						checkSpawnOverlap(sp, act)
					}
					return false
				case *ast.AssignStmt:
					if x.Tok != token.DEFINE {
						for _, lhs := range x.Lhs {
							v, _ := captureRoot(info, lhs, 0, 0)
							checkAccess(v, true, lhs.Pos(), act, held)
						}
					}
				case *ast.IncDecStmt:
					v, _ := captureRoot(info, x.X, 0, 0)
					checkAccess(v, true, x.Pos(), act, held)
				case *ast.CallExpr:
					for _, cw := range calleeWrites(prog, info, x) {
						v, _ := captureRoot(info, cw.arg, 0, 0)
						checkAccess(v, true, cw.arg.Pos(), act, held)
					}
				case *ast.Ident:
					if v, ok := info.Uses[x].(*types.Var); ok {
						checkAccess(v, false, x.Pos(), act, held)
					}
				}
				return true
			})
			held = lockFlowTransfer(info, &Block{Nodes: []ast.Node{nd}}, held)
			act = activeTransfer(info, spawns, &Block{Nodes: []ast.Node{nd}}, act)
		}
	}
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ObsGuard enforces the zero-alloc observability contract on the hot
// paths: every obs.Observer method call must sit inside an `if o != nil`
// guard on the same observer variable (so the nil fast path costs
// nothing), and its arguments must be non-allocating — no function
// literals, no composite literals, no fmt.Sprint-family calls. The
// contract is what keeps BenchmarkScheduleIndependent /
// TestObserverNopZeroAlloc at zero allocations per event.
//
// The same discipline applies to span emission (*obs.Span methods are
// deliberately not nil-safe — a nil-receiver fast path would hide the
// cost of forgotten guards): a call on a span variable that may be nil
// (assigned from SpanFromContext, declared without a value, a
// parameter) must sit inside an `if sp != nil` guard; variables whose
// every assignment is a StartTrace/StartChild call are provably
// non-nil and may be used bare. Span call arguments obey the same
// non-allocating rule as observer arguments.
var ObsGuard = &Analyzer{
	Name:      "obsguard",
	Doc:       "observer and span emission must be nil-guarded and pass only non-allocating arguments",
	Packages:  []string{"internal/core", "internal/engine", "internal/serve", "internal/shard", "internal/load", "internal/trace", "cmd/hpserve"},
	SkipTests: true,
	Run:       runObsGuard,
}

// isObserverType reports whether t is the obs.Observer interface.
func isObserverType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Observer" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/obs")
}

// isSpanType reports whether t is *obs.Span.
func isSpanType(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Span" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/obs")
}

// isGuardableType reports whether obj is something obsguard tracks: an
// obs.Observer interface value or a *obs.Span.
func isGuardableType(t types.Type) bool {
	return isObserverType(t) || isSpanType(t)
}

// guardRange is one `if o != nil { ... }` body protecting observer obj.
type guardRange struct {
	obj      types.Object
	from, to token.Pos
}

// nilCheckedObjects returns the observer objects that cond proves
// non-nil: `o != nil` possibly among the conjuncts of &&-chains.
func nilCheckedObjects(info *types.Info, cond ast.Expr) []types.Object {
	switch e := cond.(type) {
	case *ast.ParenExpr:
		return nilCheckedObjects(info, e.X)
	case *ast.BinaryExpr:
		if e.Op == token.LAND {
			return append(nilCheckedObjects(info, e.X), nilCheckedObjects(info, e.Y)...)
		}
		if e.Op != token.NEQ {
			return nil
		}
		x, y := e.X, e.Y
		if isNilIdent(info, x) {
			x, y = y, x
		}
		if !isNilIdent(info, y) {
			return nil
		}
		id, ok := x.(*ast.Ident)
		if !ok {
			return nil
		}
		obj := info.Uses[id]
		if obj == nil || !isGuardableType(obj.Type()) {
			return nil
		}
		return []types.Object{obj}
	}
	return nil
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// allocatingExpr returns a description of the first allocating
// sub-expression of e ("" if none): function literals, composite
// literals, and fmt.Sprint-family calls all allocate per event.
func allocatingExpr(info *types.Info, e ast.Expr) (desc string, pos token.Pos) {
	ast.Inspect(e, func(n ast.Node) bool {
		if desc != "" {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			desc, pos = "function literal", x.Pos()
			return false
		case *ast.CompositeLit:
			desc, pos = "composite literal", x.Pos()
			return false
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
					desc, pos = "fmt."+fn.Name()+" call", x.Pos()
					return false
				}
			}
		}
		return true
	})
	return desc, pos
}

// isStartCall reports whether e is a call whose method name proves a
// non-nil span result: StartTrace and StartChild never return nil.
func isStartCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return sel.Sel.Name == "StartTrace" || sel.Sel.Name == "StartChild"
}

// startedSpans classifies the file's span-typed variables: an object is
// "started" (provably non-nil) when it has at least one assignment and
// every one of its assignments — including its declaration — is a
// StartTrace/StartChild call. Everything else (SpanFromContext results,
// `var` declarations, parameters, multi-value assignments) stays
// maybe-nil and needs guards at every call.
func startedSpans(info *types.Info, f *ast.File) map[types.Object]bool {
	started := map[types.Object]bool{}
	poisoned := map[types.Object]bool{}
	record := func(id *ast.Ident, ok bool) {
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil || !isSpanType(obj.Type()) {
			return
		}
		if ok && !poisoned[obj] {
			started[obj] = true
		} else {
			poisoned[obj] = true
			delete(started, obj)
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, l := range x.Lhs {
				id, isID := l.(*ast.Ident)
				if !isID || id.Name == "_" {
					continue
				}
				record(id, len(x.Lhs) == len(x.Rhs) && isStartCall(x.Rhs[i]))
			}
		case *ast.ValueSpec:
			for i, name := range x.Names {
				record(name, i < len(x.Values) && isStartCall(x.Values[i]))
			}
		}
		return true
	})
	return started
}

func runObsGuard(pass *Pass) {
	for _, f := range pass.Files {
		var guards []guardRange
		ast.Inspect(f, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			for _, obj := range nilCheckedObjects(pass.Info, ifs.Cond) {
				guards = append(guards, guardRange{obj: obj, from: ifs.Body.Pos(), to: ifs.Body.End()})
			}
			return true
		})
		guarded := func(obj types.Object, pos token.Pos) bool {
			for _, g := range guards {
				if g.obj == obj && g.from <= pos && pos < g.to {
					return true
				}
			}
			return false
		}
		started := startedSpans(pass.Info, f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recv, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[recv]
			if obj == nil {
				return true
			}
			switch {
			case isObserverType(obj.Type()):
				if !guarded(obj, call.Pos()) {
					pass.Reportf(call.Pos(), "observer call %s.%s outside an `if %s != nil` guard defeats the nil fast path", recv.Name, sel.Sel.Name, recv.Name)
				}
			case isSpanType(obj.Type()):
				if !started[obj] && !guarded(obj, call.Pos()) {
					pass.Reportf(call.Pos(), "span call %s.%s outside an `if %s != nil` guard panics on untraced requests (span methods are not nil-safe)", recv.Name, sel.Sel.Name, recv.Name)
				}
			default:
				return true
			}
			for _, arg := range call.Args {
				if desc, pos := allocatingExpr(pass.Info, arg); desc != "" {
					pass.Reportf(pos, "allocating argument (%s) in observer call %s.%s breaks the zero-alloc contract", desc, recv.Name, sel.Sel.Name)
				}
			}
			return true
		})
	}
}

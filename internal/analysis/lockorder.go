package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the module-wide lock-order graph (hplint v4,
// DESIGN.md §13). Locks are abstracted to stable names — a mutex field
// is "pkg.Type.field" (every instance of the type maps to one graph
// node, the classical lock-order abstraction), a package-level mutex is
// "pkg.var", and a function-local mutex is "func.var". An edge A → B is
// recorded whenever some function acquires B while the flow-sensitive
// must-held analysis (the same lattice lockcheck uses) says A is held —
// either directly, or by calling (over the realizable static/interface
// edges of callgraph.go) a function whose bottom-up summary says it may
// acquire B. Any cycle in the graph is a potential deadlock: two
// goroutines entering the cycle's chains in opposite order can block
// each other forever. Lock operations behind `go` statements are
// excluded from both the summaries and the caller's held-set — the
// spawned goroutine does not run with the spawner's locks; its body is
// its own graph contributor — and deferred operations are handled as in
// lockcheck (a deferred Unlock keeps the lock held to the end of the
// body). Because instances of one type share a graph node, hierarchical
// locking of two instances of the same type would be reported as a
// reentrant self-cycle; the repository has no such pattern, and the
// escape hatch is an explicit //hplint:allow lockorder with a reason.

// LockOrder reports cycles in the module-wide lock acquisition graph.
// It needs the whole-module Program and stays quiet without it.
var LockOrder = &Analyzer{
	Name:      "lockorder",
	Doc:       "the module-wide lock acquisition graph must stay acyclic (deadlock freedom)",
	SkipTests: true,
	Run:       runLockOrder,
}

// LockID is the stable module-wide name of one lock in the graph.
type LockID string

// lockAcquire is one direct Lock/RLock in a function's own body.
type lockAcquire struct {
	id  LockID
	pos token.Pos
}

// lockEdge is one acquisition-order edge: To was acquired while From was
// held. Chain names the functions from the holder to the acquirer (a
// single element for a direct acquisition).
type lockEdge struct {
	From, To LockID
	Site     token.Pos
	Chain    []string
}

// LockCycle is one cycle in the acquisition graph: the closing edge
// first, then the path that leads back to its source.
type LockCycle struct {
	Site  token.Pos
	Edges []lockEdge
}

// resolveLockOp decodes a mutex operation in either shape the repository
// uses: `x.mu.Lock()` (mutex field, lockcheck's form) and `mu.Lock()`
// (plain mutex variable, package-level or local).
func resolveLockOp(info *types.Info, call *ast.CallExpr) (key lockKey, op string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return key, "", false
	}
	op = sel.Sel.Name
	switch op {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return key, "", false
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		muObj, isVar := info.Uses[x.Sel].(*types.Var)
		if !isVar || !isMutexType(muObj.Type()) {
			return key, "", false
		}
		base := rootIdentObj(info, x.X)
		if base == nil {
			return key, "", false
		}
		return lockKey{base: base, mu: muObj}, op, true
	case *ast.Ident:
		muObj, isVar := info.Uses[x].(*types.Var)
		if !isVar || !isMutexType(muObj.Type()) {
			return key, "", false
		}
		return lockKey{base: muObj, mu: muObj}, op, true
	}
	return key, "", false
}

// rootIdentObj unwraps parens and derefs down to the base identifier's
// object, or nil for anything more exotic.
func rootIdentObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			return info.Uses[x]
		default:
			return nil
		}
	}
}

// packages returns the distinct packages contributing nodes, in first-node
// order (deterministic: Nodes is position-sorted).
func (prog *Program) packages() []*Package {
	seen := map[*Package]bool{}
	var out []*Package
	for _, n := range prog.Nodes {
		if !seen[n.Pkg] {
			seen[n.Pkg] = true
			out = append(out, n.Pkg)
		}
	}
	return out
}

// inModule reports whether obj's package is one of the module's analyzed
// packages (as opposed to the stdlib or nothing at all).
func (prog *Program) objInModule(obj types.Object) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	if prog.pkgSet == nil {
		prog.pkgSet = map[*types.Package]bool{}
		for _, p := range prog.packages() {
			prog.pkgSet[p.Types] = true
		}
	}
	return prog.pkgSet[obj.Pkg()]
}

// lockFieldOwner maps every mutex-typed struct field in the module to
// its graph name "pkg.Type.field".
func (prog *Program) lockFieldOwner() map[*types.Var]string {
	if prog.lockOwners != nil {
		return prog.lockOwners
	}
	prog.lockOwners = map[*types.Var]string{}
	for _, p := range prog.packages() {
		scope := p.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if isMutexType(f.Type()) {
					prog.lockOwners[f] = p.Types.Name() + "." + tn.Name() + "." + f.Name()
				}
			}
		}
	}
	return prog.lockOwners
}

// lockID renders the stable graph name of the mutex behind key, seen
// from node n (n names function-local mutexes).
func (prog *Program) lockID(n *Node, key lockKey) LockID {
	v := key.mu
	if v.IsField() {
		if owner := prog.lockFieldOwner()[v]; owner != "" {
			return LockID(owner)
		}
		pkg := ""
		if v.Pkg() != nil {
			pkg = v.Pkg().Name() + "."
		}
		return LockID(pkg + v.Name())
	}
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return LockID(v.Pkg().Name() + "." + v.Name())
	}
	return LockID(n.Name + "." + v.Name())
}

// lockDirect returns the Lock/RLock acquisitions in n's own body
// (literals and go statements excluded — they are their own nodes and
// threads), and records which call sites sit under a `go` keyword so the
// summary propagation can skip those edges.
func (prog *Program) lockDirect(n *Node) []lockAcquire {
	if prog.lockAcq == nil {
		prog.lockAcq = map[*Node][]lockAcquire{}
		prog.goSites = map[*Node]map[token.Pos]bool{}
	}
	if a, ok := prog.lockAcq[n]; ok {
		return a
	}
	info := n.Pkg.Info
	var acqs []lockAcquire
	goSites := map[token.Pos]bool{}
	inspectOwn(n.Body, n.Lit, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.GoStmt:
			goSites[x.Call.Pos()] = true
			return false
		case *ast.CallExpr:
			if key, op, ok := resolveLockOp(info, x); ok && (op == "Lock" || op == "RLock") {
				acqs = append(acqs, lockAcquire{id: prog.lockID(n, key), pos: x.Pos()})
			}
		}
		return true
	})
	prog.lockAcq[n] = acqs
	prog.goSites[n] = goSites
	return acqs
}

// lockEdgeUsable reports whether e carries lock acquisitions back to the
// caller's thread: resolved static/interface calls not spawned with `go`.
func (prog *Program) lockEdgeUsable(n *Node, e Edge) bool {
	if e.Kind != EdgeStatic && e.Kind != EdgeInterface {
		return false
	}
	prog.lockDirect(n) // ensure goSites is populated
	return !prog.goSites[n][e.Site]
}

// lockAcquires returns every lock n may acquire on the caller's thread,
// directly or transitively. The whole fixpoint is computed on first use
// by reverse propagation, mirroring computeMayAlloc.
func (prog *Program) lockAcquires(n *Node) map[LockID]bool {
	if prog.lockAcqAll == nil {
		prog.computeLockAcquires()
	}
	return prog.lockAcqAll[n]
}

func (prog *Program) computeLockAcquires() {
	all := make(map[*Node]map[LockID]bool, len(prog.Nodes))
	callers := map[*Node][]*Node{}
	var work []*Node
	for _, n := range prog.Nodes {
		ids := map[LockID]bool{}
		for _, a := range prog.lockDirect(n) {
			ids[a.id] = true
		}
		all[n] = ids
		if len(ids) > 0 {
			work = append(work, n)
		}
	}
	for _, n := range prog.Nodes {
		for _, e := range n.Calls {
			if prog.lockEdgeUsable(n, e) {
				callers[e.Callee] = append(callers[e.Callee], n)
			}
		}
	}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		for _, c := range callers[n] {
			grew := false
			for id := range all[n] {
				if !all[c][id] {
					all[c][id] = true
					grew = true
				}
			}
			if grew {
				work = append(work, c)
			}
		}
	}
	prog.lockAcqAll = all
}

// lockPath returns the function names from callee down to the nearest
// function that directly acquires id, following usable edges in their
// deterministic sorted order.
func (prog *Program) lockPath(callee *Node, id LockID) []string {
	type item struct {
		n    *Node
		path []string
	}
	seen := map[*Node]bool{callee: true}
	queue := []item{{callee, []string{callee.Name}}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, a := range prog.lockDirect(cur.n) {
			if a.id == id {
				return cur.path
			}
		}
		for _, e := range cur.n.Calls {
			if seen[e.Callee] || !prog.lockEdgeUsable(cur.n, e) || !prog.lockAcquires(e.Callee)[id] {
				continue
			}
			seen[e.Callee] = true
			next := append(append([]string(nil), cur.path...), e.Callee.Name)
			queue = append(queue, item{e.Callee, next})
		}
	}
	return []string{callee.Name}
}

// LockEdges returns the deduplicated acquisition-order edges of the
// whole module, sorted by (From, To). The first witness wins and the
// construction order is deterministic (nodes by name, blocks in CFG
// order, held sets sorted), so repeated runs yield identical output.
func (prog *Program) LockEdges() []lockEdge {
	if !prog.lockEdgesOK {
		prog.computeLockEdges()
		prog.lockEdgesOK = true
	}
	return prog.lockEdges
}

func (prog *Program) computeLockEdges() {
	nodes := append([]*Node(nil), prog.Nodes...)
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].Name != nodes[j].Name {
			return nodes[i].Name < nodes[j].Name
		}
		return nodes[i].docPos < nodes[j].docPos
	})
	seen := map[string]bool{}
	add := func(from, to LockID, site token.Pos, chain []string) {
		k := string(from) + "\x00" + string(to)
		if seen[k] {
			return
		}
		seen[k] = true
		prog.lockEdges = append(prog.lockEdges, lockEdge{From: from, To: to, Site: site, Chain: chain})
	}
	for _, n := range nodes {
		prog.nodeLockEdges(n, add)
	}
	sort.Slice(prog.lockEdges, func(i, j int) bool {
		a, b := prog.lockEdges[i], prog.lockEdges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
}

// nodeLockEdges replays n's body under the must-held analysis and emits
// an edge for every direct or call-summarized acquisition under a held
// lock.
func (prog *Program) nodeLockEdges(n *Node, add func(LockID, LockID, token.Pos, []string)) {
	info := n.Pkg.Info
	g := BuildCFG(n.Body)
	res := Solve(&FlowProblem[lockState]{
		CFG:   g,
		Entry: lockState{},
		Join:  joinLockState,
		Equal: equalLockState,
		Transfer: func(b *Block, in lockState) lockState {
			return lockFlowTransfer(info, b, in)
		},
	})
	for _, b := range g.Blocks {
		if !res.Reached[b.Index] {
			continue
		}
		held := res.In[b.Index]
		for _, stmt := range b.Nodes {
			held = prog.replayLockStmt(n, info, stmt, held, add)
		}
	}
}

func (prog *Program) replayLockStmt(n *Node, info *types.Info, stmt ast.Node, held lockState, add func(LockID, LockID, token.Pos, []string)) lockState {
	if _, isDefer := stmt.(*ast.DeferStmt); isDefer {
		return held
	}
	InspectShallow(stmt, func(m ast.Node) bool {
		if _, isGo := m.(*ast.GoStmt); isGo {
			return false
		}
		call, isCall := m.(*ast.CallExpr)
		if !isCall {
			return true
		}
		if key, op, ok := resolveLockOp(info, call); ok {
			switch op {
			case "Lock", "RLock":
				to := prog.lockID(n, key)
				for _, from := range prog.sortedHeldIDs(n, held) {
					add(from, to, call.Pos(), []string{n.Name})
				}
				held = held.clone()
				if op == "Lock" {
					held[key] = lockWrite
				} else {
					held[key] = lockRead
				}
			case "Unlock", "RUnlock":
				held = held.clone()
				delete(held, key)
			}
			return true
		}
		if len(held) > 0 {
			for _, e := range n.Calls {
				if e.Site != call.Pos() || !prog.lockEdgeUsable(n, e) {
					continue
				}
				for _, to := range sortedLockIDs(prog.lockAcquires(e.Callee)) {
					chain := append([]string{n.Name}, prog.lockPath(e.Callee, to)...)
					for _, from := range prog.sortedHeldIDs(n, held) {
						add(from, to, call.Pos(), chain)
					}
				}
			}
		}
		return true
	})
	return held
}

// lockFlowTransfer is transferLocks generalized to both lock-call shapes,
// with `go` subtrees excluded (the spawned goroutine has its own state).
func lockFlowTransfer(info *types.Info, b *Block, in lockState) lockState {
	st := in
	mutated := false
	set := func(k lockKey, lv lockLevel) {
		if !mutated {
			st = st.clone()
			mutated = true
		}
		if lv == lockNone {
			delete(st, k)
		} else {
			st[k] = lv
		}
	}
	for _, n := range b.Nodes {
		if _, isDefer := n.(*ast.DeferStmt); isDefer {
			continue
		}
		InspectShallow(n, func(m ast.Node) bool {
			if _, isGo := m.(*ast.GoStmt); isGo {
				return false
			}
			call, isCall := m.(*ast.CallExpr)
			if !isCall {
				return true
			}
			if key, op, ok := resolveLockOp(info, call); ok {
				switch op {
				case "Lock":
					set(key, lockWrite)
				case "RLock":
					set(key, lockRead)
				case "Unlock", "RUnlock":
					set(key, lockNone)
				}
			}
			return true
		})
	}
	return st
}

func (prog *Program) sortedHeldIDs(n *Node, held lockState) []LockID {
	ids := make([]LockID, 0, len(held))
	for k := range held {
		ids = append(ids, prog.lockID(n, k))
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || id != ids[i-1] {
			out = append(out, id)
		}
	}
	return out
}

func sortedLockIDs(m map[LockID]bool) []LockID {
	ids := make([]LockID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// LockCycles returns every distinct cycle of the acquisition graph, each
// anchored at its closing edge's source position. Cycles are canonical-
// ized by their edge set so each is reported once no matter which edge
// the scan reaches first.
func (prog *Program) LockCycles() []LockCycle {
	edges := prog.LockEdges()
	adj := map[LockID][]lockEdge{}
	for _, e := range edges {
		adj[e.From] = append(adj[e.From], e)
	}
	seen := map[string]bool{}
	var cycles []LockCycle
	for _, e := range edges {
		var cyc []lockEdge
		if e.From == e.To {
			cyc = []lockEdge{e}
		} else {
			back := lockBFSPath(adj, e.To, e.From)
			if back == nil {
				continue
			}
			cyc = append([]lockEdge{e}, back...)
		}
		keys := make([]string, len(cyc))
		for i, ce := range cyc {
			keys[i] = string(ce.From) + ">" + string(ce.To)
		}
		sort.Strings(keys)
		k := strings.Join(keys, ";")
		if seen[k] {
			continue
		}
		seen[k] = true
		cycles = append(cycles, LockCycle{Site: e.Site, Edges: cyc})
	}
	return cycles
}

// lockBFSPath returns the shortest edge path from one lock to another,
// or nil. Deterministic: adjacency lists inherit the sorted edge order.
func lockBFSPath(adj map[LockID][]lockEdge, from, to LockID) []lockEdge {
	type item struct {
		at   LockID
		path []lockEdge
	}
	seen := map[LockID]bool{from: true}
	queue := []item{{from, nil}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range adj[cur.at] {
			next := append(append([]lockEdge(nil), cur.path...), e)
			if e.To == to {
				return next
			}
			if seen[e.To] {
				continue
			}
			seen[e.To] = true
			queue = append(queue, item{e.To, next})
		}
	}
	return nil
}

// DumpLockGraph renders the acquisition graph deterministically, one
// edge per line, for the -lockgraph debug flag and the golden tests.
func (prog *Program) DumpLockGraph() string {
	var b strings.Builder
	for _, e := range prog.LockEdges() {
		fmt.Fprintf(&b, "%s -> %s [%s]\n", e.From, e.To, strings.Join(e.Chain, " → "))
	}
	return b.String()
}

func renderLockEdge(e lockEdge) string {
	if e.From == e.To {
		return fmt.Sprintf("%s reacquired while held (in %s)", e.From, strings.Join(e.Chain, " → "))
	}
	return fmt.Sprintf("%s held while acquiring %s (in %s)", e.From, e.To, strings.Join(e.Chain, " → "))
}

func runLockOrder(pass *Pass) {
	prog := pass.Prog
	if prog == nil {
		return
	}
	inPass := map[string]bool{}
	for _, f := range pass.Files {
		inPass[pass.Fset.Position(f.Pos()).Filename] = true
	}
	for _, c := range prog.LockCycles() {
		pos := prog.Fset.Position(c.Site)
		if !inPass[pos.Filename] {
			continue
		}
		parts := make([]string, len(c.Edges))
		chain := make([]string, len(c.Edges))
		for i, e := range c.Edges {
			parts[i] = renderLockEdge(e)
			chain[i] = fmt.Sprintf("%s -> %s [%s]", e.From, e.To, strings.Join(e.Chain, " → "))
		}
		pass.ReportChain(c.Site, chain, "lock-order cycle (potential deadlock): %s", strings.Join(parts, "; "))
	}
}

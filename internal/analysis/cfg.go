package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// This file implements the intra-procedural control-flow graph the
// flow-sensitive analyzers (unitflow, lockcheck, purity, errflow) run on.
// A CFG is built per function body; blocks hold statements (plus the
// condition expressions that gate their out-edges) in execution order, and
// edges follow Go's structured control flow: if/else, for, range, switch,
// type switch, select, break/continue/goto (including labeled forms),
// fallthrough and return. Panics and calls to os.Exit are not modeled as
// terminators — the analyses here are all may-analyses over normal paths,
// so the imprecision is sound for them (it only adds paths).

// Block is one basic block: a maximal straight-line sequence of nodes.
type Block struct {
	// Index is the position of the block in CFG.Blocks.
	Index int
	// Nodes are the statements (and gating condition expressions) of the
	// block in execution order. Condition expressions appear as the last
	// node of the block whose out-edges they gate.
	Nodes []ast.Node
	// Succs are the possible successor blocks.
	Succs []*Block
	// comment labels the block's role ("entry", "if.then", ...) for
	// debugging and the CFG tests.
	comment string
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks holds every block; Blocks[0] is the entry block.
	Blocks []*Block
	// Exit is the synthetic exit block: every return statement and the
	// fall-off-the-end path lead here. It holds no nodes.
	Exit *Block
}

// String renders the CFG compactly for tests and debugging.
func (g *CFG) String() string {
	var b strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&b, "b%d(%s):", blk.Index, blk.comment)
		for _, s := range blk.Succs {
			fmt.Fprintf(&b, " ->b%d", s.Index)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// InspectShallow visits the parts of a block node that execute at that
// program point, without descending into code the CFG places elsewhere:
// the body of a RangeStmt node (which stands only for its per-iteration
// header assignment) and the bodies of function literals (which execute
// at call time, not where they appear).
func InspectShallow(n ast.Node, f func(ast.Node) bool) {
	cut := func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		return f(m)
	}
	if rs, ok := n.(*ast.RangeStmt); ok {
		if !f(rs) {
			return
		}
		for _, part := range []ast.Node{rs.Key, rs.Value, rs.X} {
			if part != nil {
				ast.Inspect(part, cut)
			}
		}
		return
	}
	ast.Inspect(n, cut)
}

// FuncBody is one analyzable function: a declaration or a function
// literal, with the pieces the flow analyzers need.
type FuncBody struct {
	// Name labels the function in diagnostics ("Scheduler.run", "func
	// literal in X", ...).
	Name string
	// Type carries the parameters and results.
	Type *ast.FuncType
	// Recv is the receiver field list for methods, nil otherwise.
	Recv *ast.FieldList
	// Body is the function body the CFG is built from.
	Body *ast.BlockStmt
}

// FunctionsOf collects every function declaration and function literal in
// the files, in source order. Function literals are returned as their own
// entries (the CFG of an enclosing function does not descend into them).
func FunctionsOf(files []*ast.File) []FuncBody {
	var out []FuncBody
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, FuncBody{Name: fd.Name.Name, Type: fd.Type, Recv: fd.Recv, Body: fd.Body})
			name := fd.Name.Name
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					out = append(out, FuncBody{Name: "func literal in " + name, Type: lit.Type, Body: lit.Body})
				}
				return true
			})
		}
		// Function literals in package-level variable initializers.
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			ast.Inspect(gd, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					out = append(out, FuncBody{Name: "package-level func literal", Type: lit.Type, Body: lit.Body})
				}
				return true
			})
		}
	}
	return out
}

// cfgBuilder carries the state of one CFG construction.
type cfgBuilder struct {
	cfg *CFG
	// cur is the block new nodes are appended to; nil after a terminator
	// (return, break, ...) until the next label or join point.
	cur *Block
	// breakTo / continueTo are the innermost targets of unlabeled
	// break/continue.
	breakTo, continueTo *Block
	// labels maps label names to their break/continue targets and, for
	// gotos, the block starting at the label.
	labeledBreak    map[string]*Block
	labeledContinue map[string]*Block
	gotoTarget      map[string]*Block
	// pendingGotos are goto statements seen before their label.
	pendingGotos map[string][]*Block
}

// BuildCFG constructs the control-flow graph of a function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:             &CFG{},
		labeledBreak:    map[string]*Block{},
		labeledContinue: map[string]*Block{},
		gotoTarget:      map[string]*Block{},
		pendingGotos:    map[string][]*Block{},
	}
	entry := b.newBlock("entry")
	b.cfg.Exit = b.newBlock("exit")
	b.cur = entry
	b.stmtList(body.List)
	// Falling off the end of the body reaches the exit.
	b.jump(b.cfg.Exit)
	return b.cfg
}

func (b *cfgBuilder) newBlock(comment string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), comment: comment}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// add appends a node to the current block (starting a fresh unreachable
// block if control already left, so nodes after return are still visited).
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// jump ends the current block with an edge to target.
func (b *cfgBuilder) jump(target *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, target)
	}
	b.cur = nil
}

// startBlock makes target the current block.
func (b *cfgBuilder) startBlock(target *Block) { b.cur = target }

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		then := b.newBlock("if.then")
		done := b.newBlock("if.done")
		cond.Succs = append(cond.Succs, then)
		var els *Block
		if s.Else != nil {
			els = b.newBlock("if.else")
			cond.Succs = append(cond.Succs, els)
		} else {
			cond.Succs = append(cond.Succs, done)
		}
		b.startBlock(then)
		b.stmt(s.Body)
		b.jump(done)
		if s.Else != nil {
			b.startBlock(els)
			b.stmt(s.Else)
			b.jump(done)
		}
		b.startBlock(done)

	case *ast.ForStmt:
		b.buildFor(s, "")

	case *ast.RangeStmt:
		b.buildRange(s, "")

	case *ast.SwitchStmt:
		b.buildSwitch(s.Init, s.Tag, s.Body, "")

	case *ast.TypeSwitchStmt:
		b.buildSwitch(s.Init, s.Assign, s.Body, "")

	case *ast.SelectStmt:
		b.buildSelect(s, "")

	case *ast.LabeledStmt:
		name := s.Label.Name
		// A label starts a fresh block so gotos can land on it.
		target := b.newBlock("label." + name)
		b.jump(target)
		b.startBlock(target)
		b.gotoTarget[name] = target
		for _, from := range b.pendingGotos[name] {
			from.Succs = append(from.Succs, target)
		}
		delete(b.pendingGotos, name)
		switch inner := s.Stmt.(type) {
		case *ast.ForStmt:
			b.buildFor(inner, name)
		case *ast.RangeStmt:
			b.buildRange(inner, name)
		case *ast.SwitchStmt:
			b.buildSwitch(inner.Init, inner.Tag, inner.Body, name)
		case *ast.TypeSwitchStmt:
			b.buildSwitch(inner.Init, inner.Assign, inner.Body, name)
		case *ast.SelectStmt:
			b.buildSelect(inner, name)
		default:
			b.stmt(s.Stmt)
		}

	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			target := b.breakTo
			if s.Label != nil {
				target = b.labeledBreak[s.Label.Name]
			}
			if target != nil {
				b.jump(target)
			} else {
				b.cur = nil
			}
		case token.CONTINUE:
			target := b.continueTo
			if s.Label != nil {
				target = b.labeledContinue[s.Label.Name]
			}
			if target != nil {
				b.jump(target)
			} else {
				b.cur = nil
			}
		case token.GOTO:
			name := s.Label.Name
			if target, ok := b.gotoTarget[name]; ok {
				b.jump(target)
			} else {
				// Forward goto: record the dangling block for patching.
				if b.cur != nil {
					b.pendingGotos[name] = append(b.pendingGotos[name], b.cur)
				}
				b.cur = nil
			}
		case token.FALLTHROUGH:
			// Handled by buildSwitch via clause chaining; nothing here.
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.cfg.Exit)

	default:
		// Plain statements: assignments, declarations, expressions, sends,
		// defers, go statements, inc/dec, empty.
		b.add(s)
	}
}

func (b *cfgBuilder) buildFor(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.newBlock("for.head")
	body := b.newBlock("for.body")
	done := b.newBlock("for.done")
	post := head
	if s.Post != nil {
		post = b.newBlock("for.post")
	}
	b.jump(head)
	b.startBlock(head)
	if s.Cond != nil {
		b.add(s.Cond)
		b.jump(body)
		head.Succs = append(head.Succs, done)
	} else {
		b.jump(body)
	}
	saveBreak, saveCont := b.breakTo, b.continueTo
	b.breakTo, b.continueTo = done, post
	if label != "" {
		b.labeledBreak[label], b.labeledContinue[label] = done, post
	}
	b.startBlock(body)
	b.stmt(s.Body)
	b.jump(post)
	if s.Post != nil {
		b.startBlock(post)
		b.stmt(s.Post)
		b.jump(head)
	}
	b.breakTo, b.continueTo = saveBreak, saveCont
	b.startBlock(done)
}

func (b *cfgBuilder) buildRange(s *ast.RangeStmt, label string) {
	// The range expression is evaluated once, then the header assigns the
	// iteration variables each round.
	head := b.newBlock("range.head")
	body := b.newBlock("range.body")
	done := b.newBlock("range.done")
	b.jump(head)
	b.startBlock(head)
	b.add(s) // the RangeStmt node stands for the per-iteration assignment
	b.jump(body)
	head.Succs = append(head.Succs, done)
	saveBreak, saveCont := b.breakTo, b.continueTo
	b.breakTo, b.continueTo = done, head
	if label != "" {
		b.labeledBreak[label], b.labeledContinue[label] = done, head
	}
	b.startBlock(body)
	b.stmt(s.Body)
	b.jump(head)
	b.breakTo, b.continueTo = saveBreak, saveCont
	b.startBlock(done)
}

// buildSwitch handles both expression and type switches; tag is the tag
// expression or the type-switch assign statement (may be nil).
func (b *cfgBuilder) buildSwitch(init ast.Stmt, tag ast.Node, body *ast.BlockStmt, label string) {
	if init != nil {
		b.stmt(init)
	}
	if tag != nil {
		b.add(tag)
	}
	head := b.cur
	if head == nil {
		head = b.newBlock("switch.head")
		b.startBlock(head)
	}
	done := b.newBlock("switch.done")
	saveBreak := b.breakTo
	b.breakTo = done
	if label != "" {
		b.labeledBreak[label] = done
	}
	var clauses []*ast.CaseClause
	var blocks []*Block
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		clauses = append(clauses, cc)
		blk := b.newBlock("switch.case")
		blocks = append(blocks, blk)
		head.Succs = append(head.Succs, blk)
	}
	if !hasDefault {
		head.Succs = append(head.Succs, done)
	}
	b.cur = nil
	for i, cc := range clauses {
		b.startBlock(blocks[i])
		for _, e := range cc.List {
			b.add(e)
		}
		b.stmtList(cc.Body)
		// A trailing fallthrough chains into the next clause body.
		if n := len(cc.Body); n > 0 {
			if br, ok := cc.Body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && i+1 < len(blocks) {
				b.jump(blocks[i+1])
				continue
			}
		}
		b.jump(done)
	}
	b.breakTo = saveBreak
	b.startBlock(done)
}

func (b *cfgBuilder) buildSelect(s *ast.SelectStmt, label string) {
	head := b.cur
	if head == nil {
		head = b.newBlock("select.head")
		b.startBlock(head)
	}
	done := b.newBlock("select.done")
	saveBreak := b.breakTo
	b.breakTo = done
	if label != "" {
		b.labeledBreak[label] = done
	}
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock("select.case")
		head.Succs = append(head.Succs, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.jump(done)
	}
	if len(head.Succs) == 0 {
		// select{} blocks forever; still give it an edge so the CFG stays
		// connected for the solvers.
		head.Succs = append(head.Succs, done)
	}
	b.breakTo = saveBreak
	b.startBlock(done)
}

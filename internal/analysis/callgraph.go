package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the whole-module view the interprocedural analyzers
// (allocflow, and the summary-consuming upgrades of purity and errflow)
// run on: a type-based call graph in the Class Hierarchy Analysis (CHA)
// style. Static calls resolve to their single target; calls through an
// interface method resolve to every in-module type implementing the
// interface (external implementations are deliberately out of scope — the
// analyzers enforce contracts on this repository's code, and the stdlib
// is handled by the allowlists in summary.go). Function literals get
// nodes of their own with a "closure" edge from the enclosing function at
// the literal's position: whoever ends up invoking the literal, its
// effects are chargeable to the function that created it, which is the
// conservative direction for every may-analysis built on the graph.
// Method values (`f := q.Push`) likewise add an edge at the point the
// value is taken. Calls through plain function-typed variables and fields
// stay unresolved — a documented soundness hole (DESIGN.md §12) shared
// with every type-based construction.

// EdgeKind classifies how a call-graph edge was discovered.
type EdgeKind int

const (
	// EdgeStatic is a direct call to a declared function or a method on a
	// concrete receiver.
	EdgeStatic EdgeKind = iota
	// EdgeInterface is a call through an interface method, resolved by CHA
	// to one in-module implementation per edge.
	EdgeInterface
	// EdgeClosure links a function to a function literal it creates (the
	// literal may be invoked later, by anyone).
	EdgeClosure
	// EdgeMethodValue links a function to the method whose value it takes.
	EdgeMethodValue
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeStatic:
		return "static"
	case EdgeInterface:
		return "interface"
	case EdgeClosure:
		return "closure"
	case EdgeMethodValue:
		return "methodvalue"
	}
	return "unknown"
}

// Edge is one call-graph edge, anchored at the source position that
// created it (the call, the literal, or the method value expression).
type Edge struct {
	Site   token.Pos
	Callee *Node
	Kind   EdgeKind
	// Via is the abstract interface method an EdgeInterface edge was
	// resolved through ("obs.Observer.TaskQueued"); empty otherwise. It is
	// rendered as a pseudo-step in allocflow chains so findings name the
	// dispatch point.
	Via string
}

// Node is one function in the call graph: a declared function or method,
// or a function literal.
type Node struct {
	// Obj is the declared function's object; nil for function literals.
	Obj *types.Func
	// Lit is the literal for closure nodes; nil for declared functions.
	Lit *ast.FuncLit
	// Name is the stable display name used in chains and dumps:
	// "core.runList", "sim.Kernel.StartTimed", "core.runList$1".
	Name string
	// Pkg is the package the node's body lives in.
	Pkg *Package
	// Body is the function body (never nil; bodiless declarations get no
	// node).
	Body *ast.BlockStmt
	// Type carries parameters and results; Recv the receiver list.
	Type *ast.FuncType
	Recv *ast.FieldList
	// Hot marks //hplint:hotpath roots.
	Hot bool
	// Contracted marks functions whose declaration carries a
	// //hplint:allow allocflow <reason> contract: the function's
	// allocations are accepted wholesale and chains are cut at it.
	Contracted bool
	// Calls are the node's outgoing edges in deterministic order
	// (position, then callee name).
	Calls []Edge

	docPos token.Pos // position of the declaration, for dumps
}

// Program is the whole-module analysis unit: every base (non-test)
// package, the call graph over them, and lazily computed per-function
// summaries.
type Program struct {
	Fset *token.FileSet
	// Nodes in deterministic order (file position).
	Nodes  []*Node
	byFunc map[*types.Func]*Node
	byLit  map[*ast.FuncLit]*Node

	// orphanHotpaths are //hplint:hotpath comments not attached to any
	// function declaration; allocflow reports them so a misplaced
	// annotation fails loudly instead of silently protecting nothing.
	orphanHotpaths []token.Pos

	// summary caches (see summary.go).
	allocSites   map[*Node][]AllocSite
	mayAlloc     map[*Node]bool
	mutates      map[*Node][]int
	swallows     map[*Node]token.Pos
	ifaceTargets map[*types.Interface][]*Node
	allTypes     []types.Type

	// concurrency caches (lockorder.go, blockcheck.go).
	lockAcq     map[*Node][]lockAcquire
	goSites     map[*Node]map[token.Pos]bool
	lockAcqAll  map[*Node]map[LockID]bool
	lockEdges   []lockEdge
	lockEdgesOK bool
	lockOwners  map[*types.Var]string
	pkgSet      map[*types.Package]bool
	chanInv     *syncInventory
}

const hotpathPrefix = "//hplint:hotpath"

// NodeOf returns the node of a declared function, or nil.
func (prog *Program) NodeOf(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return prog.byFunc[fn.Origin()]
}

// BuildProgram constructs the call graph over the given packages. Test
// units (TestOnly) are skipped: their re-type-checked declarations would
// duplicate the base units' objects without adding reachable code.
func BuildProgram(pkgs []*Package) *Program {
	prog := &Program{
		byFunc:       map[*types.Func]*Node{},
		byLit:        map[*ast.FuncLit]*Node{},
		allocSites:   map[*Node][]AllocSite{},
		mutates:      map[*Node][]int{},
		swallows:     map[*Node]token.Pos{},
		ifaceTargets: map[*types.Interface][]*Node{},
	}
	var base []*Package
	for _, p := range pkgs {
		if !p.TestOnly {
			base = append(base, p)
		}
	}
	if len(base) > 0 {
		prog.Fset = base[0].Fset
	}
	// Pass 1: nodes for every declared function and every literal.
	for _, p := range base {
		for _, f := range p.Files {
			prog.collectFile(p, f)
		}
	}
	// Pass 2: the in-module type universe for CHA.
	seenType := map[types.Type]bool{}
	for _, p := range base {
		scope := p.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			t := tn.Type()
			if seenType[t] {
				continue
			}
			seenType[t] = true
			prog.allTypes = append(prog.allTypes, t)
		}
	}
	// Pass 3: edges.
	for _, n := range prog.Nodes {
		prog.collectEdges(n)
	}
	return prog
}

// hotpathComment reports whether one comment line is a hotpath marker.
func hotpathComment(c *ast.Comment) bool {
	return c.Text == hotpathPrefix || strings.HasPrefix(c.Text, hotpathPrefix+" ")
}

// declContract reports whether a doc group carries an allocflow contract
// (a //hplint:allow allocflow <reason> line): the whole function's
// allocations are accepted. The reason is validated by collectAllows when
// the declaring package is analyzed, so no re-validation happens here.
func declContract(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, allowPrefix)
		if !ok {
			continue
		}
		name, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
		if name == "allocflow" && strings.TrimSpace(reason) != "" {
			return true
		}
	}
	return false
}

// collectFile creates nodes for the declarations and literals of one file
// and records hotpath markers (attached and orphaned).
func (prog *Program) collectFile(p *Package, f *ast.File) {
	consumed := map[*ast.Comment]bool{}
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		fn, _ := p.Info.Defs[fd.Name].(*types.Func)
		if fn == nil {
			continue
		}
		n := &Node{
			Obj:    fn,
			Name:   nodeName(p, fd, fn),
			Pkg:    p,
			Body:   fd.Body,
			Type:   fd.Type,
			Recv:   fd.Recv,
			docPos: fd.Pos(),
		}
		if fd.Doc != nil {
			for _, c := range fd.Doc.List {
				if hotpathComment(c) {
					n.Hot = true
					consumed[c] = true
				}
			}
			n.Contracted = declContract(fd.Doc)
		}
		prog.Nodes = append(prog.Nodes, n)
		prog.byFunc[fn] = n
		prog.collectLits(p, n.Name, fd.Body)
	}
	// Literals in package-level variable initializers get nodes under a
	// synthetic parent name.
	for _, d := range f.Decls {
		if gd, ok := d.(*ast.GenDecl); ok {
			prog.collectLits(p, p.Types.Name()+".init", gd)
		}
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if hotpathComment(c) && !consumed[c] {
				prog.orphanHotpaths = append(prog.orphanHotpaths, c.Pos())
			}
		}
	}
}

// collectLits creates one node per function literal under root, named
// parent$1, parent$2, ... in source order (nested literals included).
func (prog *Program) collectLits(p *Package, parent string, root ast.Node) {
	i := 0
	ast.Inspect(root, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		i++
		node := &Node{
			Lit:    lit,
			Name:   fmt.Sprintf("%s$%d", parent, i),
			Pkg:    p,
			Body:   lit.Body,
			Type:   lit.Type,
			docPos: lit.Pos(),
		}
		prog.Nodes = append(prog.Nodes, node)
		prog.byLit[lit] = node
		return true // keep descending: nested literals get their own nodes
	})
}

// nodeName builds the display name: pkg.Func, pkg.Recv.Method (pointer
// receivers render without the star).
func nodeName(p *Package, fd *ast.FuncDecl, fn *types.Func) string {
	pkg := p.Types.Name()
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return pkg + "." + fd.Name.Name
	}
	rt := fn.Type().(*types.Signature).Recv().Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	name := "?"
	if named, ok := rt.(*types.Named); ok {
		name = named.Obj().Name()
	}
	return pkg + "." + name + "." + fd.Name.Name
}

// inModule reports whether fn is declared in one of the program's
// packages (i.e. has a node).
func (prog *Program) inModule(fn *types.Func) bool {
	return prog.byFunc[fn.Origin()] != nil
}

// implementers returns the in-module nodes implementing the interface
// method m (CHA): for every named in-module type T, if T or *T satisfies
// the interface, the edge goes to T's concrete method with m's name.
func (prog *Program) implementers(iface *types.Interface, m *types.Func) []*Node {
	if targets, ok := prog.ifaceTargets[iface]; ok {
		return filterByMethod(targets, m, prog)
	}
	var impls []*Node
	seen := map[*Node]bool{}
	for _, t := range prog.allTypes {
		if types.IsInterface(t) {
			continue
		}
		var recv types.Type
		switch {
		case types.Implements(t, iface):
			recv = t
		case types.Implements(types.NewPointer(t), iface):
			recv = types.NewPointer(t)
		default:
			continue
		}
		ms := types.NewMethodSet(recv)
		for i := 0; i < ms.Len(); i++ {
			fn, ok := ms.At(i).Obj().(*types.Func)
			if !ok {
				continue
			}
			n := prog.byFunc[fn.Origin()]
			if n != nil && !seen[n] {
				seen[n] = true
				impls = append(impls, n)
			}
		}
	}
	sort.Slice(impls, func(i, j int) bool { return impls[i].Name < impls[j].Name })
	prog.ifaceTargets[iface] = impls
	return filterByMethod(impls, m, prog)
}

// filterByMethod keeps the implementer methods matching m's name.
func filterByMethod(targets []*Node, m *types.Func, prog *Program) []*Node {
	var out []*Node
	for _, n := range targets {
		if n.Obj != nil && n.Obj.Name() == m.Name() {
			out = append(out, n)
		}
	}
	return out
}

// collectEdges walks one node's body (without descending into nested
// literals, which are their own nodes) and records its outgoing edges.
func (prog *Program) collectEdges(n *Node) {
	info := n.Pkg.Info
	var walk func(ast.Node)
	walk = func(root ast.Node) {
		ast.Inspect(root, func(m ast.Node) bool {
			switch x := m.(type) {
			case *ast.FuncLit:
				if x == n.Lit {
					return true // the node's own body
				}
				if callee := prog.byLit[x]; callee != nil {
					n.addEdge(Edge{Site: x.Pos(), Callee: callee, Kind: EdgeClosure})
				}
				return false // the literal's body belongs to its own node
			case *ast.CallExpr:
				// Calls made while building a panic argument are death-path
				// work; keeping them out of the graph keeps guard-clause
				// panics (fmt.Sprintf and friends) out of allocation chains.
				if isPanicCall(info, x) {
					return false
				}
				prog.callEdges(n, info, x)
				return true
			case *ast.SelectorExpr:
				prog.methodValueEdge(n, info, x)
				return true
			}
			return true
		})
	}
	walk(n.Body)
	sortEdges(n.Calls)
}

func (n *Node) addEdge(e Edge) { n.Calls = append(n.Calls, e) }

func sortEdges(edges []Edge) {
	sort.SliceStable(edges, func(i, j int) bool {
		if edges[i].Site != edges[j].Site {
			return edges[i].Site < edges[j].Site
		}
		return edges[i].Callee.Name < edges[j].Callee.Name
	})
}

// callEdges resolves one call expression to its edges.
func (prog *Program) callEdges(n *Node, info *types.Info, call *ast.CallExpr) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			if callee := prog.byFunc[fn.Origin()]; callee != nil {
				n.addEdge(Edge{Site: call.Pos(), Callee: callee, Kind: EdgeStatic})
			}
		}
	case *ast.FuncLit:
		if callee := prog.byLit[fun]; callee != nil {
			n.addEdge(Edge{Site: call.Pos(), Callee: callee, Kind: EdgeStatic})
		}
	case *ast.SelectorExpr:
		sel, ok := info.Selections[fun]
		if !ok {
			// Qualified call pkg.Func.
			if fn, isFn := info.Uses[fun.Sel].(*types.Func); isFn {
				if callee := prog.byFunc[fn.Origin()]; callee != nil {
					n.addEdge(Edge{Site: call.Pos(), Callee: callee, Kind: EdgeStatic})
				}
			}
			return
		}
		if sel.Kind() != types.MethodVal {
			return
		}
		fn, ok := sel.Obj().(*types.Func)
		if !ok {
			return
		}
		recv := sel.Recv()
		if iface, isIface := recv.Underlying().(*types.Interface); isIface {
			via := ifaceMethodName(recv, fn)
			for _, impl := range prog.implementers(iface, fn) {
				n.addEdge(Edge{Site: call.Pos(), Callee: impl, Kind: EdgeInterface, Via: via})
			}
			return
		}
		if callee := prog.byFunc[fn.Origin()]; callee != nil {
			n.addEdge(Edge{Site: call.Pos(), Callee: callee, Kind: EdgeStatic})
		}
	}
}

// ifaceMethodName renders the abstract dispatch point: "obs.Observer.TaskQueued".
func ifaceMethodName(recv types.Type, fn *types.Func) string {
	if named, ok := recv.(*types.Named); ok {
		pkg := ""
		if named.Obj().Pkg() != nil {
			pkg = named.Obj().Pkg().Name() + "."
		}
		return pkg + named.Obj().Name() + "." + fn.Name()
	}
	return "interface." + fn.Name()
}

// methodValueEdge records `f := q.Push`-style method values: an edge at
// the selector so the method's effects are charged to whoever takes the
// value. Selectors in call position are handled by callEdges; here only
// value uses matter, which go/types marks as MethodVal selections whose
// parent is not the call's Fun — the cheap over-approximation of adding
// the edge in both cases is harmless (same callee, same position rules).
func (prog *Program) methodValueEdge(n *Node, info *types.Info, selExpr *ast.SelectorExpr) {
	sel, ok := info.Selections[selExpr]
	if !ok || sel.Kind() != types.MethodVal {
		return
	}
	// Calls add their own static/interface edges; re-adding here would
	// duplicate every method call as a methodvalue edge. Filter by use:
	// only record when the selector's type is a function value in the
	// expression sense (TypeAndValue says value, and the parent isn't a
	// call — approximated by checking info.Types, which records the
	// method's signature either way; the duplicate-suppression happens in
	// addEdgeUnique below).
	fn, ok := sel.Obj().(*types.Func)
	if !ok {
		return
	}
	callee := prog.byFunc[fn.Origin()]
	if callee == nil {
		return
	}
	for _, e := range n.Calls {
		if e.Callee == callee && e.Site == selExpr.Pos() {
			return
		}
	}
	n.addEdge(Edge{Site: selExpr.Pos(), Callee: callee, Kind: EdgeMethodValue})
}

// DumpGraph renders the call graph deterministically, one edge per line,
// for the -callgraph debug flag and the golden tests.
func (prog *Program) DumpGraph() string {
	nodes := append([]*Node(nil), prog.Nodes...)
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].Name != nodes[j].Name {
			return nodes[i].Name < nodes[j].Name
		}
		return nodes[i].docPos < nodes[j].docPos
	})
	var b strings.Builder
	for _, n := range nodes {
		for _, e := range n.Calls {
			via := ""
			if e.Via != "" {
				via = " via " + e.Via
			}
			fmt.Fprintf(&b, "%s -> %s [%s%s]\n", n.Name, e.Callee.Name, e.Kind, via)
		}
	}
	return b.String()
}

package analysis

import (
	"go/ast"
	"go/types"
)

// forbiddenTimeFuncs are the package-level time functions that read or
// wait on the wall clock. Scheduling code must go through an injected
// clock (internal/clock) instead, so that a schedule is a pure function
// of task durations and every run can be replayed.
var forbiddenTimeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

// forbiddenRandFuncs are the package-level math/rand functions backed by
// the shared global source. Randomness must flow through an injected,
// seeded *rand.Rand (rand.New(rand.NewSource(seed)) is fine).
var forbiddenRandFuncs = map[string]bool{
	"Int":         true,
	"Intn":        true,
	"Int31":       true,
	"Int31n":      true,
	"Int63":       true,
	"Int63n":      true,
	"Uint32":      true,
	"Uint64":      true,
	"Float32":     true,
	"Float64":     true,
	"ExpFloat64":  true,
	"NormFloat64": true,
	"Perm":        true,
	"Shuffle":     true,
	"Seed":        true,
	"Read":        true,
}

// SimDeterminism forbids wall-clock reads and global-source randomness in
// the scheduling packages. The paper's approximation ratios (and this
// repository's replay, fuzz, and survey machinery) hold only if a
// schedule is a deterministic function of the task durations; a stray
// time.Now or rand.Intn silently breaks that.
var SimDeterminism = &Analyzer{
	Name:      "simdeterminism",
	Doc:       "scheduling code must not read the wall clock or the global rand source",
	Packages:  deterministicPackages,
	SkipTests: true,
	Run:       runSimDeterminism,
}

func runSimDeterminism(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			// Only package-level functions: methods on *rand.Rand (the
			// sanctioned injected source) have a receiver.
			if fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if forbiddenTimeFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(), "time.%s in scheduling code: inject a clock (internal/clock) so runs stay replayable", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if forbiddenRandFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(), "global rand.%s in scheduling code: thread a seeded *rand.Rand instead", fn.Name())
				}
			}
			return true
		})
	}
}

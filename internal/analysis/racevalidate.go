package analysis

import (
	"fmt"
	"io"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// Differential race validation (the concurrency analogue of the
// compiler calibration in calibrate.go): replay the checked-in test
// suites of the concurrent packages under the race detector and assert
// that every location the detector reports is inside capturecheck's
// candidate set. A race outside the candidate set means the static
// analysis has a blind spot — the build fails loudly instead of the
// analyzer silently under-approximating. On a clean repository the
// candidate set is empty and the assertion degenerates to "the race
// detector found nothing", which is exactly the invariant the paper's
// determinism claims rest on.

// raceValidatePackages are the test suites replayed under -race: every
// package with a concurrent surface.
var raceValidatePackages = []string{
	"./internal/engine/...",
	"./internal/serve/...",
	"./internal/shard/...",
	"./internal/obs/...",
	"./internal/load/...",
	"./cmd/hpserve/...",
}

// RaceLoc is one source location extracted from a race report frame.
type RaceLoc struct {
	File string
	Line int
}

// RaceReport is one WARNING: DATA RACE block: the top in-module frame of
// each access stack, and whether all of them fall inside the candidate
// set.
type RaceReport struct {
	Locs    []RaceLoc
	Matched bool
}

// RaceValidation is the outcome of one differential validation run.
type RaceValidation struct {
	Packages   []string
	PerTest    time.Duration
	Candidates int
	// TestsPassed is the go test exit status; false with zero Reports
	// means an ordinary (non-race) test failure.
	TestsPassed bool
	Reports     []RaceReport
	// OutputTail holds the last part of the test output when something
	// failed, for diagnosis.
	OutputTail string
}

// OK reports whether the validation holds: the suites passed and no race
// report escaped the candidate set.
func (v *RaceValidation) OK() bool {
	if !v.TestsPassed {
		return false
	}
	for _, r := range v.Reports {
		if !r.Matched {
			return false
		}
	}
	return true
}

// Format renders the validation for the CLI and the CI log.
func (v *RaceValidation) Format(w io.Writer) {
	unmatched := 0
	for _, r := range v.Reports {
		if !r.Matched {
			unmatched++
		}
	}
	fmt.Fprintf(w, "race differential validation: %d package patterns, %d candidate lines, %d race report(s), %d outside the candidate set\n",
		len(v.Packages), v.Candidates, len(v.Reports), unmatched)
	for _, r := range v.Reports {
		for _, loc := range r.Locs {
			state := "candidate"
			if !r.Matched {
				state = "NOT A CANDIDATE"
			}
			fmt.Fprintf(w, "  race at %s:%d (%s)\n", loc.File, loc.Line, state)
		}
	}
	if v.OK() {
		fmt.Fprintf(w, "PASS: every race detector finding (if any) is inside capturecheck's candidate set\n")
		return
	}
	if !v.TestsPassed && len(v.Reports) == 0 {
		fmt.Fprintf(w, "FAIL: test suites failed without race reports\n")
	} else {
		fmt.Fprintf(w, "FAIL\n")
	}
	if v.OutputTail != "" {
		fmt.Fprintf(w, "---- test output tail ----\n%s\n", v.OutputTail)
	}
}

var (
	raceHeaderRe = regexp.MustCompile(`^(Read|Write|Previous read|Previous write) at 0x`)
	raceFrameRe  = regexp.MustCompile(`^\s+(\S+\.go):(\d+)`)
)

// ParseRaceOutput extracts the per-access top frames of every
// "WARNING: DATA RACE" block in go test -race output.
func ParseRaceOutput(out string) [][]RaceLoc {
	var blocks [][]RaceLoc
	var cur []RaceLoc
	inBlock := false
	wantFrame := false
	for _, line := range strings.Split(out, "\n") {
		switch {
		case strings.Contains(line, "WARNING: DATA RACE"):
			inBlock = true
			cur = nil
			wantFrame = false
		case inBlock && strings.HasPrefix(line, "=========="):
			blocks = append(blocks, cur)
			inBlock = false
		case inBlock && raceHeaderRe.MatchString(line):
			wantFrame = true
		case inBlock && wantFrame:
			if m := raceFrameRe.FindStringSubmatch(line); m != nil {
				n, _ := strconv.Atoi(m[2])
				cur = append(cur, RaceLoc{File: m[1], Line: n})
				wantFrame = false
			}
		}
	}
	if inBlock {
		blocks = append(blocks, cur)
	}
	return blocks
}

// CaptureCandidates computes the raw (pre-suppression) capturecheck
// candidate line set over every in-scope package.
func CaptureCandidates(pkgs []*Package, prog *Program) map[string]map[int]bool {
	var fset = prog.Fset
	if fset == nil && len(pkgs) > 0 {
		fset = pkgs[0].Fset
	}
	cc := &captureCandidates{fset: fset, lines: map[string]map[int]bool{}}
	for _, pkg := range pkgs {
		if pkg.TestOnly {
			continue
		}
		inScope := false
		for _, p := range CaptureCheck.Packages {
			if pkg.RelPath == p {
				inScope = true
				break
			}
		}
		if !inScope {
			continue
		}
		var files = pkg.Files
		var sink []Diagnostic
		pass := &Pass{
			Analyzer: CaptureCheck,
			Fset:     pkg.Fset,
			RelPath:  pkg.RelPath,
			Files:    files,
			Types:    pkg.Types,
			Info:     pkg.Info,
			Prog:     prog,
			diags:    &sink,
		}
		for _, fb := range FunctionsOf(files) {
			checkCaptureBody(pass, prog, pkg.Info, fb, cc)
		}
	}
	return cc.lines
}

// ValidateRace loads the module, computes the candidate set, replays the
// concurrent packages' suites under -race with a per-test timeout, and
// checks every reported race location against the candidates.
func ValidateRace(moduleDir string, perTest time.Duration) (*RaceValidation, error) {
	l, err := NewLoader(moduleDir)
	if err != nil {
		return nil, err
	}
	pkgs, err := l.LoadModule()
	if err != nil {
		return nil, err
	}
	prog := BuildProgram(pkgs)
	cands := CaptureCandidates(pkgs, prog)
	count := 0
	for _, lines := range cands {
		count += len(lines)
	}

	args := append([]string{"test", "-race", "-count=1", "-timeout", perTest.String()}, raceValidatePackages...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.ModuleRoot
	out, runErr := cmd.CombinedOutput()

	v := &RaceValidation{
		Packages:    raceValidatePackages,
		PerTest:     perTest,
		Candidates:  count,
		TestsPassed: runErr == nil,
	}
	for _, locs := range ParseRaceOutput(string(out)) {
		r := RaceReport{Locs: locs, Matched: len(locs) > 0}
		for _, loc := range locs {
			if lines := cands[loc.File]; lines == nil || !lines[loc.Line] {
				r.Matched = false
			}
		}
		v.Reports = append(v.Reports, r)
	}
	if !v.OK() {
		tail := string(out)
		const keep = 4000
		if len(tail) > keep {
			tail = "…" + tail[len(tail)-keep:]
		}
		v.OutputTail = strings.TrimSpace(tail)
	}
	return v, nil
}

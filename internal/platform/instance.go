package platform

import (
	"fmt"
	"math"
	"sort"
)

// Instance is a set of independent tasks to be scheduled on a platform.
// The slice order is meaningful to schedulers that break acceleration-factor
// ties by input order (HeteroPrio's queue uses a stable sort).
type Instance []Task

// Validate checks that every task is well-formed and that IDs are unique.
func (in Instance) Validate() error {
	seen := make(map[int]bool, len(in))
	for _, t := range in {
		if err := t.Validate(); err != nil {
			return err
		}
		if seen[t.ID] {
			return fmt.Errorf("platform: duplicate task ID %d", t.ID)
		}
		seen[t.ID] = true
	}
	return nil
}

// Clone returns a deep copy of the instance.
func (in Instance) Clone() Instance {
	out := make(Instance, len(in))
	copy(out, in)
	return out
}

// Renumber assigns sequential IDs 0..len-1 in slice order and returns the
// instance for chaining. It is convenient after concatenating generators.
func (in Instance) Renumber() Instance {
	for i := range in {
		in[i].ID = i
	}
	return in
}

// TotalTime returns the sum of processing times of all tasks on class k.
func (in Instance) TotalTime(k Kind) float64 {
	var s float64
	for _, t := range in {
		s += t.Time(k)
	}
	return s
}

// MaxMinTime returns max_i min(p_i, q_i), a lower bound on the optimal
// makespan of the instance on any platform.
func (in Instance) MaxMinTime() float64 {
	var s float64
	for _, t := range in {
		s = math.Max(s, t.MinTime())
	}
	return s
}

// SortByAccelDesc stable-sorts the instance by non-increasing acceleration
// factor, preserving input order among ties. This is the HeteroPrio queue
// order (Algorithm 1, line 1).
func (in Instance) SortByAccelDesc() {
	sort.SliceStable(in, func(i, j int) bool {
		return in[i].Accel() > in[j].Accel()
	})
}

// SortByAccelDescPrio stable-sorts by non-increasing acceleration factor and
// applies the paper's priority tie-break: among tasks with the same
// acceleration factor, the highest priority comes first when rho >= 1 and
// last when rho < 1 (so that the worker class that favors that end of the
// queue picks urgent tasks first).
func (in Instance) SortByAccelDescPrio() {
	sort.SliceStable(in, func(i, j int) bool {
		ai, aj := in[i].Accel(), in[j].Accel()
		if ai != aj {
			return ai > aj
		}
		if ai >= 1 {
			return in[i].Priority > in[j].Priority
		}
		return in[i].Priority < in[j].Priority
	})
}

// ByID returns a map from task ID to task value.
func (in Instance) ByID() map[int]Task {
	m := make(map[int]Task, len(in))
	for _, t := range in {
		m[t.ID] = t
	}
	return m
}

// EquivalentAccel returns the acceleration factor of the "equivalent task"
// made of all tasks of the instance: sum(p_i) / sum(q_i). The paper uses it
// (Section 6.2, Figure 8) to measure the adequacy of a task-to-resource
// allocation. It returns NaN for an empty instance.
func (in Instance) EquivalentAccel() float64 {
	if len(in) == 0 {
		return math.NaN()
	}
	return in.TotalTime(CPU) / in.TotalTime(GPU)
}

// AccelRange returns the smallest and largest acceleration factor of the
// instance. It returns (NaN, NaN) for an empty instance.
func (in Instance) AccelRange() (lo, hi float64) {
	if len(in) == 0 {
		return math.NaN(), math.NaN()
	}
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, t := range in {
		r := t.Accel()
		lo = math.Min(lo, r)
		hi = math.Max(hi, r)
	}
	return lo, hi
}

package platform

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestKindOther(t *testing.T) {
	if CPU.Other() != GPU {
		t.Errorf("CPU.Other() = %v, want GPU", CPU.Other())
	}
	if GPU.Other() != CPU {
		t.Errorf("GPU.Other() = %v, want CPU", GPU.Other())
	}
}

func TestKindString(t *testing.T) {
	if CPU.String() != "CPU" || GPU.String() != "GPU" {
		t.Errorf("kind strings: %q %q", CPU.String(), GPU.String())
	}
	if got := Kind(7).String(); !strings.Contains(got, "7") {
		t.Errorf("unknown kind string %q", got)
	}
}

func TestKindValid(t *testing.T) {
	if !CPU.Valid() || !GPU.Valid() {
		t.Error("CPU/GPU should be valid kinds")
	}
	if Kind(3).Valid() {
		t.Error("Kind(3) should be invalid")
	}
}

func TestTaskTime(t *testing.T) {
	task := Task{ID: 1, CPUTime: 10, GPUTime: 2}
	if task.Time(CPU) != 10 {
		t.Errorf("Time(CPU) = %v, want 10", task.Time(CPU))
	}
	if task.Time(GPU) != 2 {
		t.Errorf("Time(GPU) = %v, want 2", task.Time(GPU))
	}
	if task.Accel() != 5 {
		t.Errorf("Accel() = %v, want 5", task.Accel())
	}
	if task.MinTime() != 2 || task.MaxTime() != 10 {
		t.Errorf("Min/MaxTime = %v/%v, want 2/10", task.MinTime(), task.MaxTime())
	}
	if task.BestKind() != GPU {
		t.Errorf("BestKind = %v, want GPU", task.BestKind())
	}
	slow := Task{ID: 2, CPUTime: 1, GPUTime: 4}
	if slow.BestKind() != CPU {
		t.Errorf("BestKind = %v, want CPU", slow.BestKind())
	}
}

func TestTaskValidate(t *testing.T) {
	cases := []struct {
		name string
		task Task
		ok   bool
	}{
		{"valid", Task{CPUTime: 1, GPUTime: 1}, true},
		{"zero cpu", Task{CPUTime: 0, GPUTime: 1}, false},
		{"negative gpu", Task{CPUTime: 1, GPUTime: -2}, false},
		{"nan", Task{CPUTime: math.NaN(), GPUTime: 1}, false},
		{"inf", Task{CPUTime: 1, GPUTime: math.Inf(1)}, false},
	}
	for _, c := range cases {
		err := c.task.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestTaskString(t *testing.T) {
	s := Task{ID: 3, Name: "dgemm", CPUTime: 2, GPUTime: 1}.String()
	if !strings.Contains(s, "dgemm") || !strings.Contains(s, "rho=2") {
		t.Errorf("unexpected task string %q", s)
	}
	anon := Task{ID: 4, CPUTime: 2, GPUTime: 1}.String()
	if !strings.Contains(anon, "task4") {
		t.Errorf("anonymous task string %q", anon)
	}
}

func TestPlatformBasics(t *testing.T) {
	p := NewPlatform(3, 2)
	if p.Workers() != 5 {
		t.Fatalf("Workers() = %d, want 5", p.Workers())
	}
	if p.Count(CPU) != 3 || p.Count(GPU) != 2 {
		t.Fatalf("Count = %d/%d, want 3/2", p.Count(CPU), p.Count(GPU))
	}
	wantKinds := []Kind{CPU, CPU, CPU, GPU, GPU}
	for w, want := range wantKinds {
		if got := p.KindOf(w); got != want {
			t.Errorf("KindOf(%d) = %v, want %v", w, got, want)
		}
	}
	if got := p.WorkersOf(CPU); len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Errorf("WorkersOf(CPU) = %v", got)
	}
	if got := p.WorkersOf(GPU); len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Errorf("WorkersOf(GPU) = %v", got)
	}
	if name := p.WorkerName(4); name != "GPU1" {
		t.Errorf("WorkerName(4) = %q, want GPU1", name)
	}
	if name := p.WorkerName(0); name != "CPU0" {
		t.Errorf("WorkerName(0) = %q, want CPU0", name)
	}
}

func TestPlatformValidate(t *testing.T) {
	if err := (Platform{CPUs: -1, GPUs: 2}).Validate(); err == nil {
		t.Error("negative CPU count should fail validation")
	}
	if err := (Platform{}).Validate(); err == nil {
		t.Error("empty platform should fail validation")
	}
	if err := (Platform{CPUs: 0, GPUs: 1}).Validate(); err != nil {
		t.Errorf("GPU-only platform should be valid: %v", err)
	}
}

func TestPlatformPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("NewPlatform", func() { NewPlatform(-1, 0) })
	p := NewPlatform(1, 1)
	mustPanic("KindOf high", func() { p.KindOf(2) })
	mustPanic("KindOf low", func() { p.KindOf(-1) })
}

func TestInstanceValidate(t *testing.T) {
	in := Instance{
		{ID: 0, CPUTime: 1, GPUTime: 1},
		{ID: 1, CPUTime: 2, GPUTime: 1},
	}
	if err := in.Validate(); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
	dup := Instance{
		{ID: 0, CPUTime: 1, GPUTime: 1},
		{ID: 0, CPUTime: 2, GPUTime: 1},
	}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate IDs should fail validation")
	}
	bad := Instance{{ID: 0, CPUTime: -1, GPUTime: 1}}
	if err := bad.Validate(); err == nil {
		t.Error("bad task should fail validation")
	}
}

func TestInstanceCloneRenumber(t *testing.T) {
	in := Instance{{ID: 7, CPUTime: 1, GPUTime: 1}, {ID: 9, CPUTime: 2, GPUTime: 1}}
	c := in.Clone()
	c[0].CPUTime = 42
	if in[0].CPUTime == 42 {
		t.Error("Clone did not deep-copy")
	}
	in.Renumber()
	if in[0].ID != 0 || in[1].ID != 1 {
		t.Errorf("Renumber gave IDs %d,%d", in[0].ID, in[1].ID)
	}
}

func TestInstanceTotals(t *testing.T) {
	in := Instance{
		{ID: 0, CPUTime: 3, GPUTime: 1},
		{ID: 1, CPUTime: 5, GPUTime: 4},
	}
	if got := in.TotalTime(CPU); got != 8 {
		t.Errorf("TotalTime(CPU) = %v, want 8", got)
	}
	if got := in.TotalTime(GPU); got != 5 {
		t.Errorf("TotalTime(GPU) = %v, want 5", got)
	}
	if got := in.MaxMinTime(); got != 4 {
		t.Errorf("MaxMinTime = %v, want 4", got)
	}
	if got := in.EquivalentAccel(); got != 8.0/5.0 {
		t.Errorf("EquivalentAccel = %v, want 1.6", got)
	}
	lo, hi := in.AccelRange()
	if lo != 1.25 || hi != 3 {
		t.Errorf("AccelRange = %v,%v, want 1.25,3", lo, hi)
	}
}

func TestInstanceEmptyAggregates(t *testing.T) {
	var in Instance
	if !math.IsNaN(in.EquivalentAccel()) {
		t.Error("EquivalentAccel of empty instance should be NaN")
	}
	lo, hi := in.AccelRange()
	if !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Error("AccelRange of empty instance should be NaN")
	}
}

func TestSortByAccelDescStable(t *testing.T) {
	in := Instance{
		{ID: 0, Name: "a", CPUTime: 1, GPUTime: 1},   // rho 1
		{ID: 1, Name: "b", CPUTime: 4, GPUTime: 1},   // rho 4
		{ID: 2, Name: "c", CPUTime: 2, GPUTime: 2},   // rho 1 (tie with a, must stay after)
		{ID: 3, Name: "d", CPUTime: 0.5, GPUTime: 1}, // rho 0.5
	}
	in.SortByAccelDesc()
	got := []int{in[0].ID, in[1].ID, in[2].ID, in[3].ID}
	want := []int{1, 0, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSortByAccelDescPrio(t *testing.T) {
	// rho >= 1 ties: higher priority first (toward the GPU end).
	in := Instance{
		{ID: 0, CPUTime: 2, GPUTime: 1, Priority: 1},
		{ID: 1, CPUTime: 2, GPUTime: 1, Priority: 5},
	}
	in.SortByAccelDescPrio()
	if in[0].ID != 1 {
		t.Errorf("rho>=1 tie: got front ID %d, want 1", in[0].ID)
	}
	// rho < 1 ties: lower priority first (urgent at the CPU end = back).
	in2 := Instance{
		{ID: 0, CPUTime: 1, GPUTime: 2, Priority: 1},
		{ID: 1, CPUTime: 1, GPUTime: 2, Priority: 5},
	}
	in2.SortByAccelDescPrio()
	if in2[0].ID != 0 {
		t.Errorf("rho<1 tie: got front ID %d, want 0", in2[0].ID)
	}
}

func TestByID(t *testing.T) {
	in := Instance{{ID: 5, CPUTime: 1, GPUTime: 1}, {ID: 9, CPUTime: 2, GPUTime: 1}}
	m := in.ByID()
	if len(m) != 2 || m[9].CPUTime != 2 {
		t.Errorf("ByID map wrong: %v", m)
	}
}

// Property: sorting by acceleration factor never changes the multiset of
// tasks, and the resulting order is non-increasing in rho.
func TestSortByAccelDescProperty(t *testing.T) {
	f := func(raw []struct{ P, Q uint16 }) bool {
		in := make(Instance, 0, len(raw))
		for i, r := range raw {
			p := float64(r.P%1000) + 1
			q := float64(r.Q%1000) + 1
			in = append(in, Task{ID: i, CPUTime: p, GPUTime: q})
		}
		sumBefore := in.TotalTime(CPU) + 3*in.TotalTime(GPU)
		in.SortByAccelDesc()
		if got := in.TotalTime(CPU) + 3*in.TotalTime(GPU); got != sumBefore {
			return false
		}
		for i := 1; i < len(in); i++ {
			if in[i-1].Accel() < in[i].Accel() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

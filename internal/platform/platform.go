// Package platform defines the machine and task model used throughout the
// repository: a heterogeneous node made of two classes of unrelated
// resources (CPU workers and GPU workers) and tasks characterized by one
// processing time per class.
//
// The model follows Section 4.1 of Beaumont, Eyraud-Dubois and Kumar,
// "Approximation Proofs of a Fast and Efficient List Scheduling Algorithm
// for Task-Based Runtime Systems on Multicores and GPUs" (IPDPS 2017):
// a platform of m CPUs and n GPUs, and tasks T_i with processing time p_i
// on a CPU and q_i on a GPU. The acceleration factor of T_i is
// rho_i = p_i / q_i; it may be smaller than 1 (the task is better on CPU).
package platform

import (
	"errors"
	"fmt"
	"math"
)

// Kind identifies one of the two resource classes of the node.
type Kind int8

const (
	// CPU is the "slow, numerous" resource class (m workers).
	CPU Kind = iota
	// GPU is the "fast, scarce" resource class (n workers).
	GPU
)

// NumKinds is the number of resource classes in the model.
const NumKinds = 2

// Other returns the opposite resource class.
func (k Kind) Other() Kind {
	if k == CPU {
		return GPU
	}
	return CPU
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case CPU:
		return "CPU"
	case GPU:
		return "GPU"
	default:
		return fmt.Sprintf("Kind(%d)", int8(k))
	}
}

// Valid reports whether k is one of the two defined kinds.
func (k Kind) Valid() bool { return k == CPU || k == GPU }

// Task is an atomic unit of work with one processing time per resource
// class. Tasks are value types; schedulers identify them by ID, which must
// be unique within an instance.
type Task struct {
	// ID is the unique identifier of the task within its instance.
	ID int
	// Name is an optional human-readable label (e.g. the kernel name).
	Name string
	// CPUTime is p_i, the processing time of the task on one CPU worker.
	CPUTime float64
	// GPUTime is q_i, the processing time of the task on one GPU worker.
	GPUTime float64
	// Priority is an application-provided hint (e.g. a bottom level)
	// used only to break ties; larger means more urgent.
	Priority float64
}

// Time returns the processing time of the task on resource class k.
func (t Task) Time(k Kind) float64 {
	if k == GPU {
		return t.GPUTime
	}
	return t.CPUTime
}

// Accel returns the acceleration factor rho = CPUTime / GPUTime.
// A factor above 1 means the task runs faster on a GPU.
func (t Task) Accel() float64 { return t.CPUTime / t.GPUTime }

// MinTime returns min(p, q), a per-task lower bound on the optimal makespan.
func (t Task) MinTime() float64 { return math.Min(t.CPUTime, t.GPUTime) }

// MaxTime returns max(p, q).
func (t Task) MaxTime() float64 { return math.Max(t.CPUTime, t.GPUTime) }

// BestKind returns the resource class on which the task is fastest,
// preferring GPU on exact ties (ties are arbitrary in the model).
func (t Task) BestKind() Kind {
	if t.GPUTime <= t.CPUTime {
		return GPU
	}
	return CPU
}

// Validate reports an error if the task has non-positive or non-finite
// processing times.
func (t Task) Validate() error {
	if !(t.CPUTime > 0) || math.IsInf(t.CPUTime, 0) || math.IsNaN(t.CPUTime) {
		return fmt.Errorf("platform: task %d (%s): CPU time %v is not a positive finite number", t.ID, t.Name, t.CPUTime)
	}
	if !(t.GPUTime > 0) || math.IsInf(t.GPUTime, 0) || math.IsNaN(t.GPUTime) {
		return fmt.Errorf("platform: task %d (%s): GPU time %v is not a positive finite number", t.ID, t.Name, t.GPUTime)
	}
	return nil
}

// String implements fmt.Stringer.
func (t Task) String() string {
	name := t.Name
	if name == "" {
		name = fmt.Sprintf("task%d", t.ID)
	}
	return fmt.Sprintf("%s(id=%d p=%.4g q=%.4g rho=%.4g)", name, t.ID, t.CPUTime, t.GPUTime, t.Accel())
}

// Platform describes a heterogeneous node with CPUs CPU workers and GPUs
// GPU workers. Workers are numbered 0..CPUs-1 (CPUs) then
// CPUs..CPUs+GPUs-1 (GPUs).
type Platform struct {
	CPUs int
	GPUs int
}

// NewPlatform returns a platform with m CPU workers and n GPU workers.
// It panics if either count is negative or both are zero; use Validate for
// a non-panicking check.
func NewPlatform(m, n int) Platform {
	p := Platform{CPUs: m, GPUs: n}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return p
}

// Validate reports an error for degenerate platforms.
func (p Platform) Validate() error {
	if p.CPUs < 0 || p.GPUs < 0 {
		return fmt.Errorf("platform: negative worker count (%d CPUs, %d GPUs)", p.CPUs, p.GPUs)
	}
	if p.CPUs+p.GPUs == 0 {
		return errors.New("platform: platform has no workers")
	}
	return nil
}

// Workers returns the total number of workers on the node.
func (p Platform) Workers() int { return p.CPUs + p.GPUs }

// Count returns the number of workers of class k.
func (p Platform) Count(k Kind) int {
	if k == GPU {
		return p.GPUs
	}
	return p.CPUs
}

// KindOf returns the class of worker w (see Platform worker numbering).
func (p Platform) KindOf(w int) Kind {
	if w < 0 || w >= p.Workers() {
		panic(fmt.Sprintf("platform: worker %d out of range [0,%d)", w, p.Workers()))
	}
	if w < p.CPUs {
		return CPU
	}
	return GPU
}

// KindRange returns the half-open worker index interval [lo, hi) of class
// k. It is the allocation-free form of WorkersOf for hot loops: workers of
// a class are always contiguous (CPUs first, then GPUs).
func (p Platform) KindRange(k Kind) (lo, hi int) {
	if k == CPU {
		return 0, p.CPUs
	}
	return p.CPUs, p.Workers()
}

// WorkersOf returns the worker indices of class k, in increasing order.
func (p Platform) WorkersOf(k Kind) []int {
	lo, hi := p.KindRange(k)
	ws := make([]int, 0, hi-lo)
	for w := lo; w < hi; w++ {
		ws = append(ws, w)
	}
	return ws
}

// WorkerName returns a short label such as "CPU3" or "GPU0" for worker w.
func (p Platform) WorkerName(w int) string {
	k := p.KindOf(w)
	idx := w
	if k == GPU {
		idx = w - p.CPUs
	}
	return fmt.Sprintf("%s%d", k, idx)
}

// String implements fmt.Stringer.
func (p Platform) String() string {
	return fmt.Sprintf("platform(%d CPUs, %d GPUs)", p.CPUs, p.GPUs)
}

package dag

import (
	"math/rand"

	"repro/internal/platform"
)

// RandomLayeredConfig parameterizes RandomLayered.
type RandomLayeredConfig struct {
	Layers     int     // number of layers (>= 1)
	WidthMin   int     // minimum tasks per layer (>= 1)
	WidthMax   int     // maximum tasks per layer
	EdgeProb   float64 // probability of an edge between consecutive layers
	SkipProb   float64 // probability of a skip edge (two layers apart)
	CPUTimeMin float64 // uniform CPU time range
	CPUTimeMax float64
	AccelMin   float64 // uniform acceleration-factor range (q = p/accel)
	AccelMax   float64
}

// DefaultRandomLayeredConfig returns a mid-sized configuration suitable for
// tests.
func DefaultRandomLayeredConfig() RandomLayeredConfig {
	return RandomLayeredConfig{
		Layers:     6,
		WidthMin:   2,
		WidthMax:   8,
		EdgeProb:   0.4,
		SkipProb:   0.1,
		CPUTimeMin: 1,
		CPUTimeMax: 100,
		AccelMin:   0.2,
		AccelMax:   30,
	}
}

// RandomLayered builds a random layered DAG: tasks are grouped into layers
// and edges only go from earlier to later layers, so the result is acyclic
// by construction. Each non-source layer task receives at least one
// incoming edge so the layer structure is real.
func RandomLayered(cfg RandomLayeredConfig, rng *rand.Rand) *Graph {
	if cfg.Layers < 1 {
		cfg.Layers = 1
	}
	if cfg.WidthMin < 1 {
		cfg.WidthMin = 1
	}
	if cfg.WidthMax < cfg.WidthMin {
		cfg.WidthMax = cfg.WidthMin
	}
	g := New()
	var layers [][]int
	for l := 0; l < cfg.Layers; l++ {
		width := cfg.WidthMin + rng.Intn(cfg.WidthMax-cfg.WidthMin+1)
		var layer []int
		for i := 0; i < width; i++ {
			p := cfg.CPUTimeMin + rng.Float64()*(cfg.CPUTimeMax-cfg.CPUTimeMin)
			accel := cfg.AccelMin + rng.Float64()*(cfg.AccelMax-cfg.AccelMin)
			id := g.AddTask(platform.Task{
				Name:    "rnd",
				CPUTime: p,
				GPUTime: p / accel,
			})
			layer = append(layer, id)
		}
		layers = append(layers, layer)
	}
	for l := 1; l < len(layers); l++ {
		for _, v := range layers[l] {
			connected := false
			for _, u := range layers[l-1] {
				if rng.Float64() < cfg.EdgeProb {
					g.AddEdge(u, v)
					connected = true
				}
			}
			if l >= 2 {
				for _, u := range layers[l-2] {
					if rng.Float64() < cfg.SkipProb {
						g.AddEdge(u, v)
						connected = true
					}
				}
			}
			if !connected {
				u := layers[l-1][rng.Intn(len(layers[l-1]))]
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// Chain builds a linear chain of n copies of task t (useful in tests: its
// optimal makespan equals n times the best execution time of t).
func Chain(n int, t platform.Task) *Graph {
	g := New()
	prev := -1
	for i := 0; i < n; i++ {
		id := g.AddTask(t)
		if prev >= 0 {
			g.AddEdge(prev, id)
		}
		prev = id
	}
	return g
}

// ForkJoin builds a fork-join graph: one source, width parallel copies of
// body, one sink.
func ForkJoin(width int, source, body, sink platform.Task) *Graph {
	g := New()
	s := g.AddTask(source)
	t := make([]int, width)
	for i := 0; i < width; i++ {
		t[i] = g.AddTask(body)
		g.AddEdge(s, t[i])
	}
	k := g.AddTask(sink)
	for i := 0; i < width; i++ {
		g.AddEdge(t[i], k)
	}
	return g
}

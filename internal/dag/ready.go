package dag

import "fmt"

// ReadyTracker incrementally tracks which tasks of a graph are ready (all
// predecessors completed). Online schedulers feed completion events into it
// and drain the newly ready tasks.
type ReadyTracker struct {
	g       *Graph
	missing []int  // remaining uncompleted predecessors per task
	done    []bool // completion flags
	ready   []int  // queue of ready-but-not-yet-claimed task IDs
	claimed []bool // tasks handed out via PopReady / Drain
	left    int    // tasks not yet completed
}

// NewReadyTracker returns a tracker with all sources initially ready.
func NewReadyTracker(g *Graph) *ReadyTracker {
	rt := &ReadyTracker{
		g:       g,
		missing: make([]int, g.Len()),
		done:    make([]bool, g.Len()),
		claimed: make([]bool, g.Len()),
		left:    g.Len(),
	}
	for id := 0; id < g.Len(); id++ {
		rt.missing[id] = g.InDegree(id)
		if rt.missing[id] == 0 {
			rt.ready = append(rt.ready, id)
		}
	}
	return rt
}

// Complete marks task id as completed and queues any successors that become
// ready. Completing a task twice or completing an unready task is a
// programming error and panics.
func (rt *ReadyTracker) Complete(id int) {
	if rt.done[id] {
		panic(fmt.Sprintf("dag: task %d completed twice", id))
	}
	if rt.missing[id] != 0 {
		panic(fmt.Sprintf("dag: task %d completed with %d pending predecessors", id, rt.missing[id]))
	}
	rt.done[id] = true
	rt.left--
	for _, s := range rt.g.Succs(id) {
		rt.missing[s]--
		if rt.missing[s] == 0 {
			//hplint:allow allocflow amortized growth to the graph's ready-width high-water mark; DrainShared reuses the backing array
			rt.ready = append(rt.ready, s)
		}
	}
}

// Drain returns the tasks that became ready since the last call, marking
// them claimed. The caller owns the returned slice; hot loops use
// DrainShared.
func (rt *ReadyTracker) Drain() []int {
	shared := rt.DrainShared()
	out := make([]int, len(shared))
	copy(out, shared)
	return out
}

// DrainShared is the allocation-free form of Drain: the returned slice
// aliases the tracker's internal ready queue and is invalidated by the
// next Complete call, so callers must consume it before feeding the next
// completion event.
//
//hplint:hotpath
func (rt *ReadyTracker) DrainShared() []int {
	for _, id := range rt.ready {
		rt.claimed[id] = true
	}
	out := rt.ready
	rt.ready = rt.ready[:0]
	return out
}

// PendingReady returns the number of ready tasks not yet drained.
func (rt *ReadyTracker) PendingReady() int { return len(rt.ready) }

// Remaining returns the number of tasks not yet completed.
func (rt *ReadyTracker) Remaining() int { return rt.left }

// Done reports whether every task has completed.
func (rt *ReadyTracker) Done() bool { return rt.left == 0 }

// IsCompleted reports whether task id has completed.
func (rt *ReadyTracker) IsCompleted(id int) bool { return rt.done[id] }

// Package dag implements the task-graph substrate: directed acyclic graphs
// whose nodes are platform.Task values and whose edges are precedence
// constraints. It provides the graph structure, topological utilities,
// bottom-level (priority) computations under several node-weighting schemes,
// critical-path bounds and a ready-set tracker used by the online
// schedulers.
package dag

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/platform"
)

// Graph is a DAG of tasks. Node indices coincide with task IDs: the task
// with ID i is stored at Tasks[i]. Edges go from predecessor to successor.
type Graph struct {
	tasks platform.Instance
	succ  [][]int
	pred  [][]int
	edges int
}

// New returns an empty graph.
func New() *Graph { return &Graph{} }

// AddTask appends a task to the graph and returns its ID. The task's ID
// field is overwritten with the assigned ID.
func (g *Graph) AddTask(t platform.Task) int {
	id := len(g.tasks)
	t.ID = id
	g.tasks = append(g.tasks, t)
	g.succ = append(g.succ, nil)
	g.pred = append(g.pred, nil)
	return id
}

// AddEdge adds a precedence constraint from task u to task v (u must finish
// before v starts). Parallel edges are ignored. It panics on out-of-range
// IDs or self-loops; cycle detection is deferred to Validate.
func (g *Graph) AddEdge(u, v int) {
	if u < 0 || u >= len(g.tasks) || v < 0 || v >= len(g.tasks) {
		panic(fmt.Sprintf("dag: edge (%d,%d) out of range [0,%d)", u, v, len(g.tasks)))
	}
	if u == v {
		panic(fmt.Sprintf("dag: self-loop on task %d", u))
	}
	for _, w := range g.succ[u] {
		if w == v {
			return
		}
	}
	g.succ[u] = append(g.succ[u], v)
	g.pred[v] = append(g.pred[v], u)
	g.edges++
}

// Len returns the number of tasks in the graph.
func (g *Graph) Len() int { return len(g.tasks) }

// Edges returns the number of distinct precedence edges.
func (g *Graph) Edges() int { return g.edges }

// Task returns the task with the given ID.
func (g *Graph) Task(id int) platform.Task { return g.tasks[id] }

// SetPriority sets the priority hint of task id.
func (g *Graph) SetPriority(id int, prio float64) { g.tasks[id].Priority = prio }

// Tasks returns the underlying instance (all tasks, ignoring dependencies).
// The returned slice is shared with the graph; callers must not mutate it.
func (g *Graph) Tasks() platform.Instance { return g.tasks }

// Succs returns the successor IDs of task id (shared slice; do not mutate).
func (g *Graph) Succs(id int) []int { return g.succ[id] }

// Preds returns the predecessor IDs of task id (shared slice; do not mutate).
func (g *Graph) Preds(id int) []int { return g.pred[id] }

// InDegree returns the number of predecessors of task id.
func (g *Graph) InDegree(id int) int { return len(g.pred[id]) }

// Sources returns the IDs of tasks with no predecessors, in ID order.
func (g *Graph) Sources() []int {
	var out []int
	for id := range g.tasks {
		if len(g.pred[id]) == 0 {
			out = append(out, id)
		}
	}
	return out
}

// Sinks returns the IDs of tasks with no successors, in ID order.
func (g *Graph) Sinks() []int {
	var out []int
	for id := range g.tasks {
		if len(g.succ[id]) == 0 {
			out = append(out, id)
		}
	}
	return out
}

// TopoOrder returns a topological order of the task IDs (Kahn's algorithm,
// smallest-ID-first among ready nodes so the order is deterministic), or an
// error if the graph has a cycle.
func (g *Graph) TopoOrder() ([]int, error) {
	n := len(g.tasks)
	indeg := make([]int, n)
	for id := range g.tasks {
		indeg[id] = len(g.pred[id])
	}
	// Min-heap on IDs for determinism.
	ready := &intHeap{}
	for id := 0; id < n; id++ {
		if indeg[id] == 0 {
			ready.push(id)
		}
	}
	order := make([]int, 0, n)
	for ready.len() > 0 {
		id := ready.pop()
		order = append(order, id)
		for _, s := range g.succ[id] {
			indeg[s]--
			if indeg[s] == 0 {
				ready.push(s)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("dag: graph contains a cycle (%d of %d tasks ordered)", len(order), n)
	}
	return order, nil
}

// Validate checks task well-formedness and acyclicity.
func (g *Graph) Validate() error {
	if err := g.tasks.Validate(); err != nil {
		return err
	}
	_, err := g.TopoOrder()
	return err
}

// Weighting selects how a task's scalar node weight is derived from its two
// processing times when computing bottom levels and critical paths.
type Weighting int

const (
	// WeightAvg uses the resource-count weighted average execution time,
	// the scheme of the standard HEFT algorithm ("avg" in the paper).
	WeightAvg Weighting = iota
	// WeightMin uses min(p, q), the optimistic scheme ("min" in the paper).
	WeightMin
	// WeightCPU uses the CPU time p.
	WeightCPU
	// WeightGPU uses the GPU time q.
	WeightGPU
)

// String implements fmt.Stringer.
func (w Weighting) String() string {
	switch w {
	case WeightAvg:
		return "avg"
	case WeightMin:
		return "min"
	case WeightCPU:
		return "cpu"
	case WeightGPU:
		return "gpu"
	default:
		return fmt.Sprintf("Weighting(%d)", int(w))
	}
}

// NodeWeight returns the scalar weight of task t under scheme w on
// platform pl. For WeightAvg the average is weighted by worker counts:
// (m*p + n*q) / (m+n), matching HEFT's mean execution cost across all
// processors of an unrelated platform.
func NodeWeight(t platform.Task, w Weighting, pl platform.Platform) float64 {
	switch w {
	case WeightAvg:
		m, n := float64(pl.CPUs), float64(pl.GPUs)
		return (m*t.CPUTime + n*t.GPUTime) / (m + n)
	case WeightMin:
		return t.MinTime()
	case WeightCPU:
		return t.CPUTime
	case WeightGPU:
		return t.GPUTime
	default:
		panic(fmt.Sprintf("dag: unknown weighting %d", int(w)))
	}
}

// BottomLevels returns, for each task, the maximum total node weight of a
// path from that task to a sink, inclusive of the task itself. This is the
// standard priority scheme for heterogeneous list scheduling (Section 6.2).
func (g *Graph) BottomLevels(w Weighting, pl platform.Platform) ([]float64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	bl := make([]float64, len(g.tasks))
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		var best float64
		for _, s := range g.succ[id] {
			best = math.Max(best, bl[s])
		}
		bl[id] = NodeWeight(g.tasks[id], w, pl) + best
	}
	return bl, nil
}

// AssignBottomLevelPriorities computes bottom levels under scheme w and
// stores them as task priorities, returning the critical-path length (the
// maximum bottom level).
func (g *Graph) AssignBottomLevelPriorities(w Weighting, pl platform.Platform) (float64, error) {
	bl, err := g.BottomLevels(w, pl)
	if err != nil {
		return 0, err
	}
	var cp float64
	for id, v := range bl {
		g.tasks[id].Priority = v //hplint:allow purity assigning priorities is this method's documented purpose; callers opt in by name
		cp = math.Max(cp, v)
	}
	return cp, nil
}

// CriticalPath returns the maximum total node weight over all paths of the
// graph under scheme w. With WeightMin this is a valid lower bound on the
// optimal makespan regardless of the platform.
func (g *Graph) CriticalPath(w Weighting, pl platform.Platform) (float64, error) {
	bl, err := g.BottomLevels(w, pl)
	if err != nil {
		return 0, err
	}
	var cp float64
	for _, v := range bl {
		cp = math.Max(cp, v)
	}
	return cp, nil
}

// LongestPathTasks returns the IDs of one critical path under scheme w,
// from a source to a sink.
func (g *Graph) LongestPathTasks(w Weighting, pl platform.Platform) ([]int, error) {
	bl, err := g.BottomLevels(w, pl)
	if err != nil {
		return nil, err
	}
	// Start at the task with the largest bottom level, then repeatedly follow
	// the successor whose bottom level dominates.
	cur, best := -1, math.Inf(-1)
	for id, v := range bl {
		if len(g.pred[id]) == 0 && v > best {
			cur, best = id, v
		}
	}
	if cur < 0 {
		return nil, nil
	}
	path := []int{cur}
	for len(g.succ[cur]) > 0 {
		next, nb := -1, math.Inf(-1)
		for _, s := range g.succ[cur] {
			if bl[s] > nb {
				next, nb = s, bl[s]
			}
		}
		cur = next
		path = append(path, cur)
	}
	return path, nil
}

// DOT renders the graph in Graphviz DOT format, labelling nodes with their
// names and processing times.
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=TB;\n")
	for id, t := range g.tasks {
		label := t.Name
		if label == "" {
			label = fmt.Sprintf("t%d", id)
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\\np=%.3g q=%.3g\"];\n", id, label, t.CPUTime, t.GPUTime)
	}
	for u := range g.tasks {
		ss := append([]int(nil), g.succ[u]...)
		sort.Ints(ss)
		for _, v := range ss {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", u, v)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// FromInstance builds a dependency-free graph over the given tasks,
// preserving their order. Task IDs are reassigned sequentially.
func FromInstance(in platform.Instance) *Graph {
	g := New()
	for _, t := range in {
		g.AddTask(t)
	}
	return g
}

// intHeap is a tiny min-heap of ints used by TopoOrder.
type intHeap struct{ xs []int }

func (h *intHeap) len() int { return len(h.xs) }

func (h *intHeap) push(x int) {
	h.xs = append(h.xs, x)
	i := len(h.xs) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.xs[p] <= h.xs[i] {
			break
		}
		h.xs[p], h.xs[i] = h.xs[i], h.xs[p]
		i = p
	}
}

func (h *intHeap) pop() int {
	top := h.xs[0]
	last := len(h.xs) - 1
	h.xs[0] = h.xs[last]
	h.xs = h.xs[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.xs) && h.xs[l] < h.xs[small] {
			small = l
		}
		if r < len(h.xs) && h.xs[r] < h.xs[small] {
			small = r
		}
		if small == i {
			break
		}
		h.xs[i], h.xs[small] = h.xs[small], h.xs[i]
		i = small
	}
	return top
}

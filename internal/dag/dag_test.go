package dag

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/platform"
)

func mkTask(p, q float64) platform.Task {
	return platform.Task{CPUTime: p, GPUTime: q}
}

// diamond builds the 4-node diamond 0 -> {1,2} -> 3.
func diamond(t *testing.T) *Graph {
	t.Helper()
	g := New()
	a := g.AddTask(mkTask(1, 1))
	b := g.AddTask(mkTask(2, 1))
	c := g.AddTask(mkTask(3, 1))
	d := g.AddTask(mkTask(4, 1))
	g.AddEdge(a, b)
	g.AddEdge(a, c)
	g.AddEdge(b, d)
	g.AddEdge(c, d)
	return g
}

func TestAddTaskAssignsIDs(t *testing.T) {
	g := New()
	for i := 0; i < 5; i++ {
		if id := g.AddTask(mkTask(1, 1)); id != i {
			t.Fatalf("AddTask returned %d, want %d", id, i)
		}
	}
	if g.Len() != 5 {
		t.Fatalf("Len = %d, want 5", g.Len())
	}
}

func TestAddEdgeDedup(t *testing.T) {
	g := diamond(t)
	before := g.Edges()
	g.AddEdge(0, 1) // duplicate
	if g.Edges() != before {
		t.Errorf("duplicate edge changed edge count %d -> %d", before, g.Edges())
	}
}

func TestAddEdgePanics(t *testing.T) {
	g := diamond(t)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("out of range", func() { g.AddEdge(0, 99) })
	mustPanic("self loop", func() { g.AddEdge(2, 2) })
}

func TestSourcesSinks(t *testing.T) {
	g := diamond(t)
	if s := g.Sources(); len(s) != 1 || s[0] != 0 {
		t.Errorf("Sources = %v, want [0]", s)
	}
	if s := g.Sinks(); len(s) != 1 || s[0] != 3 {
		t.Errorf("Sinks = %v, want [3]", s)
	}
	if g.InDegree(3) != 2 {
		t.Errorf("InDegree(3) = %d, want 2", g.InDegree(3))
	}
}

func TestTopoOrder(t *testing.T) {
	g := diamond(t)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[int]int)
	for i, id := range order {
		pos[id] = i
	}
	for u := 0; u < g.Len(); u++ {
		for _, v := range g.Succs(u) {
			if pos[u] >= pos[v] {
				t.Errorf("topo order violates edge (%d,%d): %v", u, v, order)
			}
		}
	}
}

func TestTopoOrderCycle(t *testing.T) {
	g := New()
	a := g.AddTask(mkTask(1, 1))
	b := g.AddTask(mkTask(1, 1))
	// Build a 2-cycle by editing adjacency through AddEdge both ways.
	g.AddEdge(a, b)
	g.AddEdge(b, a)
	if _, err := g.TopoOrder(); err == nil {
		t.Error("cycle not detected")
	}
	if err := g.Validate(); err == nil {
		t.Error("Validate should fail on a cyclic graph")
	}
}

func TestValidateBadTask(t *testing.T) {
	g := New()
	g.AddTask(platform.Task{CPUTime: -1, GPUTime: 1})
	if err := g.Validate(); err == nil {
		t.Error("Validate should fail on invalid task")
	}
}

func TestNodeWeight(t *testing.T) {
	pl := platform.NewPlatform(3, 1)
	task := mkTask(8, 4)
	if got := NodeWeight(task, WeightAvg, pl); got != (3*8+1*4)/4.0 {
		t.Errorf("avg weight = %v, want 7", got)
	}
	if got := NodeWeight(task, WeightMin, pl); got != 4 {
		t.Errorf("min weight = %v, want 4", got)
	}
	if got := NodeWeight(task, WeightCPU, pl); got != 8 {
		t.Errorf("cpu weight = %v, want 8", got)
	}
	if got := NodeWeight(task, WeightGPU, pl); got != 4 {
		t.Errorf("gpu weight = %v, want 4", got)
	}
}

func TestWeightingString(t *testing.T) {
	names := map[Weighting]string{WeightAvg: "avg", WeightMin: "min", WeightCPU: "cpu", WeightGPU: "gpu"}
	for w, want := range names {
		if w.String() != want {
			t.Errorf("%v.String() = %q, want %q", int(w), w.String(), want)
		}
	}
}

func TestBottomLevels(t *testing.T) {
	g := diamond(t)
	pl := platform.NewPlatform(1, 0) // weight = CPU time under avg
	bl, err := g.BottomLevels(WeightAvg, pl)
	if err != nil {
		t.Fatal(err)
	}
	// Node weights: 1,2,3,4. Bottom levels: d=4, b=6, c=7, a=8.
	want := []float64{8, 6, 7, 4}
	for id, w := range want {
		if math.Abs(bl[id]-w) > 1e-12 {
			t.Errorf("bl[%d] = %v, want %v", id, bl[id], w)
		}
	}
	cp, err := g.CriticalPath(WeightAvg, pl)
	if err != nil {
		t.Fatal(err)
	}
	if cp != 8 {
		t.Errorf("critical path = %v, want 8", cp)
	}
}

func TestAssignBottomLevelPriorities(t *testing.T) {
	g := diamond(t)
	pl := platform.NewPlatform(1, 0)
	cp, err := g.AssignBottomLevelPriorities(WeightAvg, pl)
	if err != nil {
		t.Fatal(err)
	}
	if cp != 8 {
		t.Errorf("cp = %v, want 8", cp)
	}
	if g.Task(0).Priority != 8 || g.Task(3).Priority != 4 {
		t.Errorf("priorities not stored: %v, %v", g.Task(0).Priority, g.Task(3).Priority)
	}
}

func TestLongestPathTasks(t *testing.T) {
	g := diamond(t)
	pl := platform.NewPlatform(1, 0)
	path, err := g.LongestPathTasks(WeightAvg, pl)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 2, 3} // through the weight-3 node
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestDOT(t *testing.T) {
	g := diamond(t)
	dot := g.DOT("diamond")
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "n0 -> n1") {
		t.Errorf("DOT output missing pieces:\n%s", dot)
	}
}

func TestFromInstance(t *testing.T) {
	in := platform.Instance{mkTask(1, 1), mkTask(2, 1)}
	g := FromInstance(in)
	if g.Len() != 2 || g.Edges() != 0 {
		t.Errorf("FromInstance: len=%d edges=%d", g.Len(), g.Edges())
	}
	if len(g.Sources()) != 2 {
		t.Errorf("all tasks should be sources")
	}
}

func TestReadyTracker(t *testing.T) {
	g := diamond(t)
	rt := NewReadyTracker(g)
	if rt.Done() || rt.Remaining() != 4 {
		t.Fatal("fresh tracker state wrong")
	}
	first := rt.Drain()
	if len(first) != 1 || first[0] != 0 {
		t.Fatalf("initial ready = %v, want [0]", first)
	}
	rt.Complete(0)
	next := rt.Drain()
	if len(next) != 2 {
		t.Fatalf("after source, ready = %v, want 2 tasks", next)
	}
	rt.Complete(next[0])
	if rt.PendingReady() != 0 {
		t.Errorf("d should not be ready with one branch missing")
	}
	rt.Complete(next[1])
	last := rt.Drain()
	if len(last) != 1 || last[0] != 3 {
		t.Fatalf("final ready = %v, want [3]", last)
	}
	rt.Complete(3)
	if !rt.Done() || rt.Remaining() != 0 {
		t.Error("tracker should be done")
	}
	if !rt.IsCompleted(3) {
		t.Error("IsCompleted(3) should be true")
	}
}

func TestReadyTrackerPanics(t *testing.T) {
	g := diamond(t)
	rt := NewReadyTracker(g)
	rt.Drain()
	rt.Complete(0)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("double complete", func() { rt.Complete(0) })
	mustPanic("premature complete", func() { rt.Complete(3) })
}

func TestChain(t *testing.T) {
	g := Chain(5, mkTask(2, 1))
	if g.Len() != 5 || g.Edges() != 4 {
		t.Fatalf("chain shape wrong: %d nodes %d edges", g.Len(), g.Edges())
	}
	cp, err := g.CriticalPath(WeightMin, platform.NewPlatform(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if cp != 5 {
		t.Errorf("chain critical path = %v, want 5", cp)
	}
}

func TestForkJoin(t *testing.T) {
	g := ForkJoin(4, mkTask(1, 1), mkTask(2, 2), mkTask(3, 3))
	if g.Len() != 6 || g.Edges() != 8 {
		t.Fatalf("forkjoin shape wrong: %d nodes %d edges", g.Len(), g.Edges())
	}
	if len(g.Sources()) != 1 || len(g.Sinks()) != 1 {
		t.Error("forkjoin should have one source and one sink")
	}
	cp, err := g.CriticalPath(WeightMin, platform.NewPlatform(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if cp != 6 {
		t.Errorf("critical path = %v, want 6", cp)
	}
}

func TestRandomLayeredAcyclicProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultRandomLayeredConfig()
		g := RandomLayered(cfg, rng)
		if err := g.Validate(); err != nil {
			return false
		}
		// Every non-first-layer task must have a predecessor: equivalently,
		// number of sources is at most the first layer's width (<= WidthMax).
		if len(g.Sources()) > cfg.WidthMax {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRandomLayeredDegenerateConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := RandomLayered(RandomLayeredConfig{
		Layers: 0, WidthMin: 0, WidthMax: -1,
		CPUTimeMin: 1, CPUTimeMax: 2, AccelMin: 1, AccelMax: 2,
	}, rng)
	if g.Len() < 1 {
		t.Error("degenerate config should still produce at least one task")
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

// Property: bottom levels are monotone along edges (bl[u] > bl[v] whenever
// u precedes v, since node weights are positive).
func TestBottomLevelMonotoneProperty(t *testing.T) {
	pl := platform.NewPlatform(4, 2)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := RandomLayered(DefaultRandomLayeredConfig(), rng)
		for _, w := range []Weighting{WeightAvg, WeightMin, WeightCPU, WeightGPU} {
			bl, err := g.BottomLevels(w, pl)
			if err != nil {
				return false
			}
			for u := 0; u < g.Len(); u++ {
				for _, v := range g.Succs(u) {
					if bl[u] <= bl[v] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

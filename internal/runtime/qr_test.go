package runtime

import (
	"math/rand"
	"testing"

	"repro/internal/tile"
)

func TestCalibrateQR(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	est := CalibrateQR(48, rng)
	for name, pair := range map[string][2]float64{
		"GEQRT": est.GEQRT, "LARFB": est.LARFB, "TSQRT": est.TSQRT, "TSMQR": est.TSMQR,
	} {
		if pair[0] <= 0 || pair[1] <= 0 {
			t.Errorf("%s: non-positive estimate %v", name, pair)
		}
	}
}

func TestQRGraphEstimateMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := tile.RandomSPD(8, rng)
	td, err := tile.NewTiled(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := QRGraph(td, QREstimates{B: 8}); err == nil {
		t.Error("tile size mismatch accepted")
	}
}

// randomSquare returns a random general matrix.
func randomSquare(n int, rng *rand.Rand) *tile.Matrix {
	m := tile.NewMatrix(n, n)
	for i := range m.Data {
		m.Data[i] = rng.Float64()*2 - 1
	}
	return m
}

// TestQRGraphNumerics factors a real matrix with the real-time executor
// and checks the Gram identity A^T A = R^T R.
func TestQRGraphNumerics(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const n, b = 144, 48
	a := randomSquare(n, rng)
	td, err := tile.NewTiled(a, b)
	if err != nil {
		t.Fatal(err)
	}
	est := CalibrateQR(b, rng)
	g, err := QRGraph(td, est)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(g, Config{CPUWorkers: 2, GPUWorkers: 1, UsePriorities: true})
	if err != nil {
		t.Fatal(err)
	}
	r := tile.QRExtractR(td)
	d, err := tile.GramDiff(a, r)
	if err != nil {
		t.Fatal(err)
	}
	if d > 1e-8*float64(n) {
		t.Errorf("A^T A != R^T R by %v (%d spoliations)", d, rep.Spoliations)
	}
	if len(rep.Trace.SuccessfulEntries()) != g.Len() {
		t.Errorf("%d successful runs, want %d", len(rep.Trace.SuccessfulEntries()), g.Len())
	}
}

// TestQRGraphSpoliationStress skews the estimates so the policy believes
// the GPU class is much faster, forcing spoliations, and verifies the
// numerics survive cancel + restore + restart.
func TestQRGraphSpoliationStress(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	const n, b = 288, 96 // larger tiles: runs last milliseconds, so the
	// GPU class actually catches CPU runs in flight
	a := randomSquare(n, rng)
	td, err := tile.NewTiled(a, b)
	if err != nil {
		t.Fatal(err)
	}
	est := CalibrateQR(b, rng)
	// Make the policy believe the CPU class is very slow and the GPU class
	// very fast: every CPU run looks worth spoliating.
	est.GEQRT[0] *= 10
	est.LARFB[0] *= 10
	est.TSQRT[0] *= 10
	est.TSMQR[0] *= 10
	est.LARFB[1] /= 5
	est.TSMQR[1] /= 5
	g, err := QRGraph(td, est)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(g, Config{CPUWorkers: 3, GPUWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := tile.QRExtractR(td)
	d, err := tile.GramDiff(a, r)
	if err != nil {
		t.Fatal(err)
	}
	if d > 1e-8*float64(n) {
		t.Errorf("Gram identity broken by %v after %d spoliations", d, rep.Spoliations)
	}
	t.Logf("spoliations: %d, wall: %v", rep.Spoliations, rep.Wall)
}

package runtime

import (
	"math/rand"
	"testing"

	"repro/internal/tile"
)

func TestCalibrateLU(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	est := CalibrateLU(64, rng)
	if est.B != 64 || est.GETRF <= 0 || est.TRSM <= 0 || est.GEMM[0] <= 0 || est.GEMM[1] <= 0 {
		t.Errorf("bad estimates: %+v", est)
	}
}

func TestLUGraphEstimateMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := tile.RandomDiagDominant(8, rng)
	td, err := tile.NewTiled(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LUGraph(td, LUEstimates{B: 8}); err == nil {
		t.Error("tile size mismatch accepted")
	}
}

// TestLUGraphNumerics factors a real diagonally dominant matrix with the
// real-time executor and verifies the packed factors against the dense
// reference.
func TestLUGraphNumerics(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const n, b = 192, 48
	a := tile.RandomDiagDominant(n, rng)
	want, err := tile.LUDense(a)
	if err != nil {
		t.Fatal(err)
	}
	td, err := tile.NewTiled(a, b)
	if err != nil {
		t.Fatal(err)
	}
	est := CalibrateLU(b, rng)
	g, err := LUGraph(td, est)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(g, Config{CPUWorkers: 2, GPUWorkers: 1, UsePriorities: true})
	if err != nil {
		t.Fatal(err)
	}
	got := td.Assemble()
	if d := tile.MaxAbsDiff(got, want); d > 1e-8 {
		t.Errorf("LU factors differ by %v (%d spoliations)", d, rep.Spoliations)
	}
	if len(rep.Trace.SuccessfulEntries()) != g.Len() {
		t.Errorf("%d successful runs, want %d", len(rep.Trace.SuccessfulEntries()), g.Len())
	}
}

// TestLUGraphSpoliationStress exaggerates the GEMM acceleration estimates
// so the executor spoliates aggressively, and checks correctness holds.
func TestLUGraphSpoliationStress(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	const n, b = 192, 48
	a := tile.RandomDiagDominant(n, rng)
	want, err := tile.LUDense(a)
	if err != nil {
		t.Fatal(err)
	}
	td, err := tile.NewTiled(a, b)
	if err != nil {
		t.Fatal(err)
	}
	est := CalibrateLU(b, rng)
	est.GEMM[1] /= 5
	g, err := LUGraph(td, est)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(g, Config{CPUWorkers: 3, GPUWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := td.Assemble()
	if d := tile.MaxAbsDiff(got, want); d > 1e-8 {
		t.Errorf("LU factors differ by %v after %d spoliations", d, rep.Spoliations)
	}
	t.Logf("spoliations: %d, wall: %v", rep.Spoliations, rep.Wall)
}

package runtime

import (
	"fmt"
	"math/rand"

	"repro/internal/cancel"
	"repro/internal/clock"
	"repro/internal/platform"
	"repro/internal/tile"
)

// CholeskyEstimates holds the measured per-kernel durations (seconds) of
// the two implementation classes for one tile size.
type CholeskyEstimates struct {
	B     int
	POTRF [2]float64 // [CPU-class (reference), GPU-class (fast)]
	TRSM  [2]float64
	SYRK  [2]float64
	GEMM  [2]float64
}

// Accel returns the GEMM acceleration factor of the estimates (a sanity
// metric: the fast variant should be noticeably faster).
func (e CholeskyEstimates) Accel() float64 { return e.GEMM[0] / e.GEMM[1] }

// CalibrateCholesky measures each kernel variant once on random tiles of
// size b and returns duration estimates. The measurements are coarse —
// exactly like the per-kernel timings a runtime system collects on first
// use — and only their ratios matter to the scheduling policy.
func CalibrateCholesky(b int, rng *rand.Rand) CholeskyEstimates {
	return CalibrateCholeskyClock(b, rng, clock.Wall{})
}

// CalibrateCholeskyClock is CalibrateCholesky with an injected time
// source, so calibrations — like runs — can be replayed deterministically.
func CalibrateCholeskyClock(b int, rng *rand.Rand, clk clock.Clock) CholeskyEstimates {
	mk := func() []float64 {
		t := make([]float64, b*b)
		for i := range t {
			t[i] = rng.Float64()
		}
		return t
	}
	spd := func() []float64 {
		t := make([]float64, b*b)
		for i := 0; i < b; i++ {
			for j := 0; j <= i; j++ {
				v := rng.Float64()
				t[i*b+j] = v
				t[j*b+i] = v
			}
			t[i*b+i] += float64(b)
		}
		return t
	}
	timeIt := func(f func()) float64 {
		start := clk.Now()
		f()
		return clk.Since(start).Seconds()
	}
	est := CholeskyEstimates{B: b}
	// POTRF (both classes share the implementation; measure twice anyway).
	a1, a2 := spd(), spd()
	est.POTRF[0] = timeIt(func() { _ = tile.POTRF(a1, b) })
	est.POTRF[1] = timeIt(func() { _ = tile.POTRFFast(a2, b) })
	l := spd()
	_ = tile.POTRF(l, b)
	t1, t2 := mk(), mk()
	est.TRSM[0] = timeIt(func() { tile.TRSM(t1, l, b) })
	est.TRSM[1] = timeIt(func() { tile.TRSMFast(t2, l, b) })
	c1, c2, x := mk(), mk(), mk()
	est.SYRK[0] = timeIt(func() { tile.SYRK(c1, x, b) })
	est.SYRK[1] = timeIt(func() { tile.SYRKFast(c2, x, b) })
	g1, g2, y := mk(), mk(), mk()
	est.GEMM[0] = timeIt(func() { tile.GEMM(g1, x, y, b) })
	est.GEMM[1] = timeIt(func() { tile.GEMMFast(g2, x, y, b) })
	return est
}

// CholeskyGraph builds the runtime task graph factoring td in place: the
// standard right-looking tiled Cholesky with one task per kernel instance.
// CPU-class runs use the naive reference kernels, GPU-class runs the
// blocked fast kernels, so the acceleration factors are real. Each task
// snapshots the single tile it mutates before its first attempt and
// restores it if a run is spoliated.
func CholeskyGraph(td *tile.Tiled, est CholeskyEstimates) (*Graph, error) {
	if est.B != td.B {
		return nil, fmt.Errorf("runtime: estimates for tile size %d, matrix uses %d", est.B, td.B)
	}
	g := NewGraph()
	nt, b := td.NT, td.B
	// last[i][j] is the last task writing tile (i,j).
	last := make([][]int, nt)
	for i := range last {
		last[i] = make([]int, nt)
		for j := range last[i] {
			last[i][j] = -1
		}
	}
	dep := func(task, i, j int) {
		if w := last[i][j]; w >= 0 && w != task {
			g.AddDep(w, task)
		}
	}

	// snapshotTask wraps a mutating kernel with Prepare/Reset over the
	// target tile.
	snapshotTask := func(name string, target []float64, estCPU, estGPU float64,
		run func(kind platform.Kind, flag *cancel.Flag) (bool, error)) Task {
		var backup []float64
		return Task{
			Name:   name,
			EstCPU: estCPU,
			EstGPU: estGPU,
			Prepare: func() {
				backup = append([]float64(nil), target...)
			},
			Reset: func() {
				copy(target, backup)
			},
			Run: run,
		}
	}

	for k := 0; k < nt; k++ {
		kk := k
		akk := td.Tile(kk, kk)
		potrf := g.Add(snapshotTask(
			fmt.Sprintf("POTRF(%d)", kk), akk, est.POTRF[0], est.POTRF[1],
			func(kind platform.Kind, flag *cancel.Flag) (bool, error) {
				return tile.POTRFCancel(akk, b, flag)
			}))
		dep(potrf, kk, kk)
		last[kk][kk] = potrf

		trsm := make([]int, nt)
		for i := k + 1; i < nt; i++ {
			ii := i
			aik := td.Tile(ii, kk)
			t := g.Add(snapshotTask(
				fmt.Sprintf("TRSM(%d,%d)", ii, kk), aik, est.TRSM[0], est.TRSM[1],
				func(kind platform.Kind, flag *cancel.Flag) (bool, error) {
					if kind == platform.GPU {
						return tile.TRSMCancel(aik, akk, b, flag), nil
					}
					return tile.TRSMRefCancel(aik, akk, b, flag), nil
				}))
			g.AddDep(potrf, t)
			dep(t, ii, kk)
			last[ii][kk] = t
			trsm[ii] = t
		}
		for i := k + 1; i < nt; i++ {
			ii := i
			aik := td.Tile(ii, kk)
			for j := k + 1; j <= i; j++ {
				jj := j
				var t int
				if ii == jj {
					aii := td.Tile(ii, ii)
					t = g.Add(snapshotTask(
						fmt.Sprintf("SYRK(%d,%d)", ii, kk), aii, est.SYRK[0], est.SYRK[1],
						func(kind platform.Kind, flag *cancel.Flag) (bool, error) {
							if kind == platform.GPU {
								return tile.SYRKCancel(aii, aik, b, flag), nil
							}
							return tile.SYRKRefCancel(aii, aik, b, flag), nil
						}))
					g.AddDep(trsm[ii], t)
				} else {
					aij := td.Tile(ii, jj)
					ajk := td.Tile(jj, kk)
					t = g.Add(snapshotTask(
						fmt.Sprintf("GEMM(%d,%d,%d)", ii, jj, kk), aij, est.GEMM[0], est.GEMM[1],
						func(kind platform.Kind, flag *cancel.Flag) (bool, error) {
							if kind == platform.GPU {
								return tile.GEMMCancel(aij, aik, ajk, b, flag), nil
							}
							return tile.GEMMRefCancel(aij, aik, ajk, b, flag), nil
						}))
					g.AddDep(trsm[ii], t)
					g.AddDep(trsm[jj], t)
				}
				dep(t, ii, jj)
				last[ii][jj] = t
			}
		}
	}
	return g, nil
}

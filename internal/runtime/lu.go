package runtime

import (
	"fmt"
	"math/rand"

	"repro/internal/cancel"
	"repro/internal/clock"
	"repro/internal/platform"
	"repro/internal/tile"
)

// LUEstimates holds measured per-kernel durations (seconds) for the tiled
// LU without pivoting; the two GEMM entries are the reference and fast
// implementation classes, the solve/panel kernels share one
// implementation across classes (their acceleration factor is ~1, like
// the paper's DPOTRF/DGETRF).
type LUEstimates struct {
	B     int
	GETRF float64
	TRSM  float64
	GEMM  [2]float64 // [CPU-class (reference), GPU-class (fast)]
}

// CalibrateLU measures the LU kernels once on random tiles of size b.
func CalibrateLU(b int, rng *rand.Rand) LUEstimates {
	return CalibrateLUClock(b, rng, clock.Wall{})
}

// CalibrateLUClock is CalibrateLU with an injected time source, so
// calibrations — like runs — can be replayed deterministically.
func CalibrateLUClock(b int, rng *rand.Rand, clk clock.Clock) LUEstimates {
	mk := func() []float64 {
		t := make([]float64, b*b)
		for i := range t {
			t[i] = rng.Float64()
		}
		return t
	}
	dd := tile.RandomDiagDominant(b, rng)
	timeIt := func(f func()) float64 {
		start := clk.Now()
		f()
		return clk.Since(start).Seconds()
	}
	est := LUEstimates{B: b}
	g1 := dd.Clone()
	est.GETRF = timeIt(func() { _ = tile.GETRF(g1.Data, b) })
	t1 := mk()
	est.TRSM = timeIt(func() { tile.TRSMUpper(t1, g1.Data, b) })
	c1, c2, x, y := mk(), mk(), mk(), mk()
	gemmRef := timeIt(func() { tile.GEMMNT(c1, x, y, b) })
	gemmFast := timeIt(func() { tile.GEMMNTFast(c2, x, y, b) })
	est.GEMM = [2]float64{gemmRef, gemmFast}
	return est
}

// LUGraph builds the runtime task graph factoring td in place with the
// tiled LU without pivoting. GEMM updates run the naive kernel on the
// CPU class and the blocked kernel on the GPU class; panel and solve
// kernels share one implementation (acceleration factor 1).
func LUGraph(td *tile.Tiled, est LUEstimates) (*Graph, error) {
	if est.B != td.B {
		return nil, fmt.Errorf("runtime: estimates for tile size %d, matrix uses %d", est.B, td.B)
	}
	g := NewGraph()
	nt, b := td.NT, td.B
	last := make([][]int, nt)
	for i := range last {
		last[i] = make([]int, nt)
		for j := range last[i] {
			last[i][j] = -1
		}
	}
	dep := func(task, i, j int) {
		if w := last[i][j]; w >= 0 && w != task {
			g.AddDep(w, task)
		}
	}
	snapshot := func(name string, target []float64, estCPU, estGPU float64,
		run func(kind platform.Kind, flag *cancel.Flag) (bool, error)) Task {
		var backup []float64
		return Task{
			Name: name, EstCPU: estCPU, EstGPU: estGPU,
			Prepare: func() { backup = append([]float64(nil), target...) },
			Reset:   func() { copy(target, backup) },
			Run:     run,
		}
	}

	for k := 0; k < nt; k++ {
		kk := k
		akk := td.Tile(kk, kk)
		getrf := g.Add(snapshot(
			fmt.Sprintf("GETRF(%d)", kk), akk, est.GETRF, est.GETRF,
			func(kind platform.Kind, flag *cancel.Flag) (bool, error) {
				return tile.GETRFCancel(akk, b, flag)
			}))
		dep(getrf, kk, kk)
		last[kk][kk] = getrf

		rowT := make([]int, nt)
		colT := make([]int, nt)
		for j := k + 1; j < nt; j++ {
			jj := j
			akj := td.Tile(kk, jj)
			t := g.Add(snapshot(
				fmt.Sprintf("TRSML(%d,%d)", kk, jj), akj, est.TRSM, est.TRSM,
				func(kind platform.Kind, flag *cancel.Flag) (bool, error) {
					return tile.TRSMLowerCancel(akj, akk, b, flag), nil
				}))
			g.AddDep(getrf, t)
			dep(t, kk, jj)
			last[kk][jj] = t
			rowT[jj] = t
		}
		for i := k + 1; i < nt; i++ {
			ii := i
			aik := td.Tile(ii, kk)
			t := g.Add(snapshot(
				fmt.Sprintf("TRSMU(%d,%d)", ii, kk), aik, est.TRSM, est.TRSM,
				func(kind platform.Kind, flag *cancel.Flag) (bool, error) {
					return tile.TRSMUpperCancel(aik, akk, b, flag), nil
				}))
			g.AddDep(getrf, t)
			dep(t, ii, kk)
			last[ii][kk] = t
			colT[ii] = t
		}
		for i := k + 1; i < nt; i++ {
			ii := i
			aik := td.Tile(ii, kk)
			for j := k + 1; j < nt; j++ {
				jj := j
				aij := td.Tile(ii, jj)
				akj := td.Tile(kk, jj)
				t := g.Add(snapshot(
					fmt.Sprintf("GEMM(%d,%d,%d)", ii, jj, kk), aij, est.GEMM[0], est.GEMM[1],
					func(kind platform.Kind, flag *cancel.Flag) (bool, error) {
						if kind == platform.GPU {
							return tile.GEMMNTCancel(aij, aik, akj, b, flag), nil
						}
						return tile.GEMMNTRefCancel(aij, aik, akj, b, flag), nil
					}))
				g.AddDep(colT[ii], t)
				g.AddDep(rowT[jj], t)
				dep(t, ii, jj)
				last[ii][jj] = t
			}
		}
	}
	return g, nil
}

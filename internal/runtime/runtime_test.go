package runtime

import (
	"errors"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cancel"
	"repro/internal/clock"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/tile"
)

// sleepTask returns a task sleeping for the given per-class durations,
// polling for cancellation every poll interval.
func sleepTask(name string, cpu, gpu time.Duration) Task {
	return Task{
		Name:   name,
		EstCPU: cpu.Seconds(),
		EstGPU: gpu.Seconds(),
		Run: func(kind platform.Kind, flag *cancel.Flag) (bool, error) {
			d := cpu
			if kind == platform.GPU {
				d = gpu
			}
			deadline := time.Now().Add(d)
			for time.Now().Before(deadline) {
				if flag.Cancelled() {
					return false, nil
				}
				//hplint:allow sleepsync paces a simulated kernel between cancellation polls; completion is signalled via channels, not the sleep
				time.Sleep(200 * time.Microsecond)
			}
			return true, nil
		},
	}
}

func TestRunValidatesInputs(t *testing.T) {
	g := NewGraph()
	g.Add(Task{Name: "norun", EstCPU: 1, EstGPU: 1})
	if _, err := Run(g, Config{CPUWorkers: 1}); err == nil {
		t.Error("task without Run accepted")
	}
	if _, err := Run(NewGraph(), Config{}); err == nil {
		t.Error("empty platform accepted")
	}
}

func TestRunSimpleChain(t *testing.T) {
	g := NewGraph()
	var order []int32
	var mu int32
	mk := func(id int32) Task {
		return Task{
			Name: "t", EstCPU: 0.001, EstGPU: 0.001,
			Run: func(kind platform.Kind, flag *cancel.Flag) (bool, error) {
				atomic.AddInt32(&mu, 1)
				order = append(order, id) // safe: chain forces sequential
				return true, nil
			},
		}
	}
	a := g.Add(mk(0))
	b := g.Add(mk(1))
	c := g.Add(mk(2))
	g.AddDep(a, b)
	g.AddDep(b, c)
	rep, err := Run(g, Config{CPUWorkers: 2, GPUWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Errorf("execution order %v", order)
	}
	if rep.Wall <= 0 {
		t.Error("wall time not measured")
	}
	if got := len(rep.Trace.SuccessfulEntries()); got != 3 {
		t.Errorf("trace has %d successful entries, want 3", got)
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	g := NewGraph()
	boom := errors.New("boom")
	g.Add(Task{
		Name: "bad", EstCPU: 0.001, EstGPU: 0.001,
		Run: func(platform.Kind, *cancel.Flag) (bool, error) { return true, boom },
	})
	if _, err := Run(g, Config{CPUWorkers: 1}); !errors.Is(err, boom) {
		t.Errorf("error not propagated: %v", err)
	}
}

func TestRunParallelIndependent(t *testing.T) {
	g := NewGraph()
	var count int32
	for i := 0; i < 20; i++ {
		g.Add(Task{
			Name: "p", EstCPU: 0.001, EstGPU: 0.001,
			Run: func(platform.Kind, *cancel.Flag) (bool, error) {
				atomic.AddInt32(&count, 1)
				return true, nil
			},
		})
	}
	if _, err := Run(g, Config{CPUWorkers: 4, GPUWorkers: 2}); err != nil {
		t.Fatal(err)
	}
	if count != 20 {
		t.Errorf("ran %d tasks, want 20", count)
	}
}

// TestRunSpoliation builds the classic two-task trap: both tasks strongly
// prefer the GPU class; the CPU worker grabs one and the GPU worker should
// spoliate it after finishing the other.
func TestRunSpoliation(t *testing.T) {
	g := NewGraph()
	g.Add(sleepTask("a", 200*time.Millisecond, 5*time.Millisecond))
	g.Add(sleepTask("b", 200*time.Millisecond, 5*time.Millisecond))
	rep, err := Run(g, Config{CPUWorkers: 1, GPUWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Spoliations != 1 {
		t.Errorf("spoliations = %d, want 1", rep.Spoliations)
	}
	// Both GPU runs take ~5ms; the spoliated CPU run aborts quickly. The
	// whole thing must finish well below the 200ms CPU duration.
	if rep.Wall > 150*time.Millisecond {
		t.Errorf("wall time %v suggests spoliation did not happen", rep.Wall)
	}
	// Trace must contain exactly one aborted entry and one spoliation run.
	aborted, spol := 0, 0
	for _, e := range rep.Trace.Entries {
		if e.Aborted {
			aborted++
		} else if e.Spoliation {
			spol++
		}
	}
	if aborted != 1 || spol != 1 {
		t.Errorf("trace aborted=%d spoliation=%d, want 1/1", aborted, spol)
	}
}

func TestRunNoSpoliationWhenDisabled(t *testing.T) {
	g := NewGraph()
	g.Add(sleepTask("a", 50*time.Millisecond, 2*time.Millisecond))
	g.Add(sleepTask("b", 50*time.Millisecond, 2*time.Millisecond))
	rep, err := Run(g, Config{CPUWorkers: 1, GPUWorkers: 1, DisableSpoliation: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Spoliations != 0 {
		t.Errorf("spoliations = %d, want 0", rep.Spoliations)
	}
	if rep.Wall < 45*time.Millisecond {
		t.Errorf("wall %v too fast: CPU must have kept its task", rep.Wall)
	}
}

func TestCalibrateCholesky(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	est := CalibrateCholesky(96, rng)
	if est.B != 96 {
		t.Errorf("B = %d", est.B)
	}
	for name, pair := range map[string][2]float64{
		"POTRF": est.POTRF, "TRSM": est.TRSM, "SYRK": est.SYRK, "GEMM": est.GEMM,
	} {
		if pair[0] <= 0 || pair[1] <= 0 {
			t.Errorf("%s: non-positive estimate %v", name, pair)
		}
	}
	// The blocked GEMM should beat the naive one at this size.
	if est.Accel() < 1 {
		t.Logf("warning: fast GEMM not faster (accel %.2f); machine noise?", est.Accel())
	}
}

// TestCholeskyGraphNumerics is the flagship integration test: factor a
// real SPD matrix with the real-time HeteroPrio executor (spoliation
// enabled, mixed worker classes) and verify L*L^T == A numerically.
func TestCholeskyGraphNumerics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, b = 192, 48
	a := tile.RandomSPD(n, rng)
	want, err := tile.CholeskyDense(a)
	if err != nil {
		t.Fatal(err)
	}
	td, err := tile.NewTiled(a, b)
	if err != nil {
		t.Fatal(err)
	}
	est := CalibrateCholesky(b, rng)
	g, err := CholeskyGraph(td, est)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(g, Config{CPUWorkers: 2, GPUWorkers: 1, UsePriorities: true})
	if err != nil {
		t.Fatal(err)
	}
	got := td.Assemble()
	var d float64
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			d = math.Max(d, math.Abs(got.At(i, j)-want.At(i, j)))
		}
	}
	if d > 1e-8 {
		t.Errorf("factor differs from dense reference by %v (spoliations=%d)", d, rep.Spoliations)
	}
	if len(rep.Trace.SuccessfulEntries()) != g.Len() {
		t.Errorf("trace has %d successful runs, want %d", len(rep.Trace.SuccessfulEntries()), g.Len())
	}
}

// TestCholeskyGraphWithSpoliationStress repeats the numeric test with a
// worker mix that provokes spoliation (many slow CPU workers, one fast
// class) and verifies correctness is preserved even when runs are
// cancelled and restarted.
func TestCholeskyGraphWithSpoliationStress(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n, b = 240, 48
	a := tile.RandomSPD(n, rng)
	want, err := tile.CholeskyDense(a)
	if err != nil {
		t.Fatal(err)
	}
	td, err := tile.NewTiled(a, b)
	if err != nil {
		t.Fatal(err)
	}
	est := CalibrateCholesky(b, rng)
	// Exaggerate the acceleration estimates so the policy spoliates
	// aggressively.
	est.GEMM[1] /= 4
	est.SYRK[1] /= 4
	est.TRSM[1] /= 4
	g, err := CholeskyGraph(td, est)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(g, Config{CPUWorkers: 3, GPUWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := td.Assemble()
	var d float64
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			d = math.Max(d, math.Abs(got.At(i, j)-want.At(i, j)))
		}
	}
	if d > 1e-8 {
		t.Errorf("factor wrong by %v after %d spoliations", d, rep.Spoliations)
	}
	t.Logf("spoliations: %d, wall: %v", rep.Spoliations, rep.Wall)
}

func TestCholeskyGraphEstimateMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := tile.RandomSPD(8, rng)
	td, err := tile.NewTiled(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CholeskyGraph(td, CholeskyEstimates{B: 8}); err == nil {
		t.Error("tile size mismatch accepted")
	}
}

func TestRunHomogeneousCPUPool(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 6; i++ {
		g.Add(sleepTask("t", time.Millisecond, time.Millisecond))
	}
	rep, err := Run(g, Config{CPUWorkers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Spoliations != 0 {
		t.Errorf("spoliations on a homogeneous pool: %d", rep.Spoliations)
	}
	if got := len(rep.Trace.SuccessfulEntries()); got != 6 {
		t.Errorf("%d successful runs, want 6", got)
	}
}

func TestRunGPUOnlyPool(t *testing.T) {
	g := NewGraph()
	g.Add(sleepTask("t", time.Millisecond, time.Millisecond))
	rep, err := Run(g, Config{GPUWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Wall <= 0 {
		t.Error("no wall time measured")
	}
}

// TestRunManualClock: with an injected frozen clock, every observed
// timestamp is deterministic — the live executor's replayability hinges on
// its time source being injectable, which the simdeterminism analyzer
// enforces by forbidding bare time.Now in this package.
func TestRunManualClock(t *testing.T) {
	g := NewGraph()
	mk := func() Task {
		return Task{
			Name: "t", EstCPU: 0.001, EstGPU: 0.001,
			Run: func(platform.Kind, *cancel.Flag) (bool, error) { return true, nil },
		}
	}
	a := g.Add(mk())
	b := g.Add(mk())
	g.AddDep(a, b)
	clk := clock.NewManual(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	rep, err := Run(g, Config{CPUWorkers: 1, GPUWorkers: 1, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Wall != 0 {
		t.Errorf("frozen clock measured wall %v, want 0", rep.Wall)
	}
	for _, e := range rep.Trace.Entries {
		if e.Start != 0 || e.End != 0 {
			t.Errorf("frozen clock produced entry [%v,%v], want [0,0]", e.Start, e.End)
		}
	}
	if got := len(rep.Trace.SuccessfulEntries()); got != 2 {
		t.Errorf("%d successful runs, want 2", got)
	}
}

// TestCalibrateClock: the calibrators accept an injected clock; frozen
// time yields zero estimates, proving no hidden wall-clock read feeds the
// measurement.
func TestCalibrateClock(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	clk := clock.NewManual(time.Unix(0, 0))
	est := CalibrateCholeskyClock(4, rng, clk)
	for _, d := range [][2]float64{est.POTRF, est.TRSM, est.SYRK, est.GEMM} {
		if d[0] != 0 || d[1] != 0 {
			t.Fatalf("frozen clock measured nonzero cholesky estimate %v", d)
		}
	}
	lu := CalibrateLUClock(4, rng, clk)
	if lu.GETRF != 0 || lu.TRSM != 0 || lu.GEMM[0] != 0 || lu.GEMM[1] != 0 {
		t.Fatalf("frozen clock measured nonzero LU estimates %+v", lu)
	}
	qr := CalibrateQRClock(4, rng, clk)
	for _, d := range [][2]float64{qr.GEQRT, qr.LARFB, qr.TSQRT, qr.TSMQR} {
		if d[0] != 0 || d[1] != 0 {
			t.Fatalf("frozen clock measured nonzero QR estimate %v", d)
		}
	}
}

// TestRunObserver checks the live executor emits the same observer event
// stream as the simulator loops: every task is queued, started, and
// completed, spoliations surface as TaskSpoliated, and the per-event
// counts reconcile with the returned Report.
func TestRunObserver(t *testing.T) {
	g := NewGraph()
	g.Add(sleepTask("a", 200*time.Millisecond, 5*time.Millisecond))
	g.Add(sleepTask("b", 200*time.Millisecond, 5*time.Millisecond))
	so := obs.NewSchedulerMetrics(obs.NewRegistry())
	tl := obs.NewTimeline()
	rep, err := Run(g, Config{
		CPUWorkers: 1, GPUWorkers: 1,
		Observer: obs.Multi(so, tl),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := so.TasksCompleted.Value(); got != 2 {
		t.Errorf("observer completions = %v, want 2", got)
	}
	if got := so.Spoliations.Value(); int(got) != rep.Spoliations {
		t.Errorf("observer spoliations = %v, report says %d", got, rep.Spoliations)
	}
	if got := so.TasksQueued.Value(); got < 2 {
		t.Errorf("observer queued = %v, want >= 2", got)
	}
	// The timeline bridge sees the same runs the trace records.
	if tl.Len() == 0 {
		t.Fatal("timeline observed no events")
	}
}

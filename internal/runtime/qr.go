package runtime

import (
	"fmt"
	"math/rand"

	"repro/internal/cancel"
	"repro/internal/clock"
	"repro/internal/platform"
	"repro/internal/tile"
)

// QREstimates holds measured per-kernel durations (seconds) for the tiled
// QR. The QR kernels have a single implementation, so both classes see the
// same estimate; pass skewed estimates to exercise spoliation.
type QREstimates struct {
	B     int
	GEQRT [2]float64
	LARFB [2]float64
	TSQRT [2]float64
	TSMQR [2]float64
}

// CalibrateQR measures each QR kernel once on random tiles of size b and
// returns symmetric estimates.
func CalibrateQR(b int, rng *rand.Rand) QREstimates {
	return CalibrateQRClock(b, rng, clock.Wall{})
}

// CalibrateQRClock is CalibrateQR with an injected time source, so
// calibrations — like runs — can be replayed deterministically.
func CalibrateQRClock(b int, rng *rand.Rand, clk clock.Clock) QREstimates {
	mk := func() []float64 {
		t := make([]float64, b*b)
		for i := range t {
			t[i] = rng.Float64()*2 - 1
		}
		return t
	}
	timeIt := func(f func()) float64 {
		start := clk.Now()
		f()
		return clk.Since(start).Seconds()
	}
	est := QREstimates{B: b}
	a, t := mk(), make([]float64, b*b)
	d := timeIt(func() { tile.GEQRT(a, t, b) })
	est.GEQRT = [2]float64{d, d}
	c := mk()
	d = timeIt(func() { tile.LARFB(c, a, t, b) })
	est.LARFB = [2]float64{d, d}
	r, bot, t2 := a, mk(), make([]float64, b*b)
	d = timeIt(func() { tile.TSQRT(r, bot, t2, b) })
	est.TSQRT = [2]float64{d, d}
	cT, cB := mk(), mk()
	d = timeIt(func() { tile.TSMQR(cT, cB, bot, t2, b) })
	est.TSMQR = [2]float64{d, d}
	return est
}

// QRGraph builds the runtime task graph of the flat-tree tiled QR of td:
// one task per kernel instance, with per-panel T factors allocated inside
// the graph and snapshot/restore hooks so spoliation can safely restart
// any task.
func QRGraph(td *tile.Tiled, est QREstimates) (*Graph, error) {
	if est.B != td.B {
		return nil, fmt.Errorf("runtime: estimates for tile size %d, matrix uses %d", est.B, td.B)
	}
	g := NewGraph()
	nt, b := td.NT, td.B
	last := make([][]int, nt)
	for i := range last {
		last[i] = make([]int, nt)
		for j := range last[i] {
			last[i][j] = -1
		}
	}
	dep := func(task, i, j int) {
		if w := last[i][j]; w >= 0 && w != task {
			g.AddDep(w, task)
		}
	}
	// snap wraps a kernel run with Prepare/Reset over the tiles it
	// mutates (the T factors are rewritten from scratch on every attempt,
	// so they need no snapshot).
	snap := func(name string, targets [][]float64, estPair [2]float64,
		run func(flag *cancel.Flag) bool) Task {
		backups := make([][]float64, len(targets))
		return Task{
			Name: name, EstCPU: estPair[0], EstGPU: estPair[1],
			Prepare: func() {
				for i, tgt := range targets {
					backups[i] = append(backups[i][:0], tgt...)
				}
			},
			Reset: func() {
				for i, tgt := range targets {
					copy(tgt, backups[i])
				}
			},
			Run: func(kind platform.Kind, flag *cancel.Flag) (bool, error) {
				return run(flag), nil
			},
		}
	}

	for k := 0; k < nt; k++ {
		kk := k
		akk := td.Tile(kk, kk)
		t1 := make([]float64, b*b)
		geqrt := g.Add(snap(
			fmt.Sprintf("GEQRT(%d)", kk), [][]float64{akk}, est.GEQRT,
			func(flag *cancel.Flag) bool { return tile.GEQRTCancel(akk, t1, b, flag) }))
		dep(geqrt, kk, kk)
		last[kk][kk] = geqrt

		rowPrev := make([]int, nt)
		for j := k + 1; j < nt; j++ {
			jj := j
			akj := td.Tile(kk, jj)
			t := g.Add(snap(
				fmt.Sprintf("LARFB(%d,%d)", kk, jj), [][]float64{akj}, est.LARFB,
				func(flag *cancel.Flag) bool { return tile.LARFBCancel(akj, akk, t1, b, flag) }))
			g.AddDep(geqrt, t)
			dep(t, kk, jj)
			last[kk][jj] = t
			rowPrev[jj] = t
		}
		panelPrev := geqrt
		for i := k + 1; i < nt; i++ {
			ii := i
			aik := td.Tile(ii, kk)
			t2 := make([]float64, b*b)
			// TSQRT writes only the R part of akk (upper triangle incl.
			// diagonal); the strict lower triangle holds the Householder
			// vectors that concurrent LARFB tasks of the same panel read.
			// The spoliation snapshot must stay inside the written region —
			// restoring the whole tile would race with those readers.
			var upperBak, aikBak []float64
			ts := g.Add(Task{
				Name:   fmt.Sprintf("TSQRT(%d,%d)", ii, kk),
				EstCPU: est.TSQRT[0], EstGPU: est.TSQRT[1],
				Prepare: func() {
					upperBak = upperBak[:0]
					for r := 0; r < b; r++ {
						upperBak = append(upperBak, akk[r*b+r:(r+1)*b]...)
					}
					aikBak = append(aikBak[:0], aik...)
				},
				Reset: func() {
					off := 0
					for r := 0; r < b; r++ {
						n := b - r
						copy(akk[r*b+r:(r+1)*b], upperBak[off:off+n])
						off += n
					}
					copy(aik, aikBak)
				},
				Run: func(kind platform.Kind, flag *cancel.Flag) (bool, error) {
					return tile.TSQRTCancel(akk, aik, t2, b, flag), nil
				},
			})
			g.AddDep(panelPrev, ts)
			dep(ts, ii, kk)
			last[ii][kk] = ts
			panelPrev = ts
			for j := k + 1; j < nt; j++ {
				jj := j
				akj := td.Tile(kk, jj)
				aij := td.Tile(ii, jj)
				t := g.Add(snap(
					fmt.Sprintf("TSMQR(%d,%d,%d)", ii, jj, kk), [][]float64{akj, aij}, est.TSMQR,
					func(flag *cancel.Flag) bool {
						return tile.TSMQRCancel(akj, aij, aik, t2, b, flag)
					}))
				g.AddDep(ts, t)
				g.AddDep(rowPrev[jj], t)
				dep(t, ii, jj)
				last[ii][jj] = t
				rowPrev[jj] = t
			}
		}
		last[kk][kk] = panelPrev
	}
	return g, nil
}

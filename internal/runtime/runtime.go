// Package runtime is a real-time task-based runtime system driven by the
// HeteroPrio scheduling policy — the "practical implementation in a
// runtime system" the paper's conclusion announces, in miniature. It
// executes task graphs of real Go closures on two pools of worker
// goroutines (the "CPU" and "GPU" classes of the model; on a laptop both
// are OS threads, with the class distinction carried by which kernel
// implementation a task runs — see the realcholesky example).
//
// Scheduling follows Algorithm 1 online: ready tasks enter the two-ended
// acceleration-factor queue, GPU-class workers pull from the front,
// CPU-class workers from the back, and an idle worker with an empty queue
// spoliates a task running on the other class if its *estimated*
// completion would improve. Spoliation is cooperative: the victim's
// cancel flag is raised, its kernel abandons the run at the next poll,
// the task's inputs are restored (Reset hook) and the task restarts on
// the spoliating worker. Unlike the simulator, decisions use estimated
// durations but the trace records measured wall-clock times.
package runtime

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cancel"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/sim"
)

// Task is a unit of real work with per-class duration estimates.
type Task struct {
	// Name labels the task in traces.
	Name string
	// EstCPU and EstGPU are the estimated durations (seconds) on each
	// class; their ratio is the acceleration factor used by the policy.
	EstCPU, EstGPU float64
	// Run executes the task on the given class. It must poll flag and
	// return false promptly once cancelled (partial effects are allowed).
	// Returning an error aborts the whole execution.
	Run func(kind platform.Kind, flag *cancel.Flag) (completed bool, err error)
	// Prepare, if non-nil, is called (from the coordinator goroutine)
	// right before the task's first dispatch — typically to snapshot the
	// inputs the task mutates in place.
	Prepare func()
	// Reset, if non-nil, is called before a re-dispatch after a cancelled
	// run — typically to restore the Prepare snapshot.
	Reset func()
}

// Graph is a DAG of runtime tasks.
type Graph struct {
	d     *dag.Graph
	tasks []Task
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{d: dag.New()} }

// Add appends a task and returns its ID.
func (g *Graph) Add(t Task) int {
	id := g.d.AddTask(platform.Task{
		Name:    t.Name,
		CPUTime: t.EstCPU,
		GPUTime: t.EstGPU,
	})
	g.tasks = append(g.tasks, t)
	return id
}

// AddDep declares that task u must complete before task v starts.
func (g *Graph) AddDep(u, v int) { g.d.AddEdge(u, v) }

// Len returns the number of tasks.
func (g *Graph) Len() int { return g.d.Len() }

// Config parameterizes an execution.
type Config struct {
	// CPUWorkers and GPUWorkers are the pool sizes (both classes are
	// goroutines; the class only selects queue end and estimates).
	CPUWorkers, GPUWorkers int
	// DisableSpoliation turns cooperative spoliation off.
	DisableSpoliation bool
	// UsePriorities assigns min-weight bottom levels as priorities and
	// uses them for tie-breaking, as in the paper's best configuration.
	UsePriorities bool
	// Clock is the time source for timestamps and spoliation estimates.
	// Nil means the wall clock; tests and replays inject a clock.Manual
	// so live runs observe deterministic timestamps.
	Clock clock.Clock
	// Observer, if non-nil, receives the same scheduling events the
	// simulator's loops emit (queue entries, dispatches, spoliations,
	// completions), with times in measured milliseconds since the
	// execution's epoch. All emission sites are nil-guarded, so a nil
	// Observer costs nothing. Events fire from the coordinator goroutine
	// in measured-time order.
	Observer obs.Observer
}

// Report is the outcome of an execution.
type Report struct {
	// Wall is the measured makespan.
	Wall time.Duration
	// Trace holds the measured runs (times in seconds from start),
	// including aborted (spoliated) attempts. Durations are measured, so
	// Trace must not be validated against the estimate instance.
	Trace *sim.Schedule
	// Spoliations is the number of cancelled runs.
	Spoliations int
}

type job struct {
	id   int
	t    Task
	flag *cancel.Flag
}

type completion struct {
	worker     int
	id         int
	start, end time.Duration
	completed  bool
	err        error
}

// Run executes the graph and blocks until every task has completed.
func Run(g *Graph, cfg Config) (*Report, error) {
	pl := platform.Platform{CPUs: cfg.CPUWorkers, GPUs: cfg.GPUWorkers}
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	if err := g.d.Validate(); err != nil {
		return nil, err
	}
	for id, t := range g.tasks {
		if t.Run == nil {
			return nil, fmt.Errorf("runtime: task %d (%s) has no Run function", id, t.Name)
		}
	}
	if cfg.UsePriorities {
		if _, err := g.d.AssignBottomLevelPriorities(dag.WeightMin, pl); err != nil {
			return nil, err
		}
	}

	clk := cfg.Clock
	if clk == nil {
		clk = clock.Wall{}
	}
	epoch := clk.Now()
	jobs := make([]chan job, pl.Workers())
	done := make(chan completion, pl.Workers())
	for w := 0; w < pl.Workers(); w++ {
		jobs[w] = make(chan job, 1)
		go func(w int, kind platform.Kind) {
			for j := range jobs[w] {
				start := clk.Since(epoch)
				completed, err := j.t.Run(kind, j.flag)
				done <- completion{
					worker: w, id: j.id,
					start: start, end: clk.Since(epoch),
					completed: completed, err: err,
				}
			}
		}(w, pl.KindOf(w))
	}
	defer func() {
		for _, ch := range jobs {
			close(ch)
		}
	}()

	// Coordinator state.
	rt := dag.NewReadyTracker(g.d)
	queue := core.NewQueue(cfg.UsePriorities)
	type runInfo struct {
		id     int
		flag   *cancel.Flag
		estEnd time.Duration // estimated completion (for spoliation)
		spol   bool          // this run was started by a spoliation
	}
	running := make(map[int]*runInfo) // worker -> run
	prepared := make(map[int]bool)
	idle := map[int]bool{}
	for w := 0; w < pl.Workers(); w++ {
		idle[w] = true
	}
	trace := &sim.Schedule{Platform: pl}
	spoliations := 0

	// ms converts a duration since the epoch into the observer time unit
	// (measured milliseconds — the live counterpart of the simulated clock).
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

	dispatch := func(w, id int, spol bool) {
		t := g.tasks[id]
		if !prepared[id] {
			if t.Prepare != nil {
				t.Prepare()
			}
			prepared[id] = true
		} else if t.Reset != nil {
			t.Reset()
		}
		flag := &cancel.Flag{}
		est := g.d.Task(id).Time(pl.KindOf(w))
		now := clk.Since(epoch)
		running[w] = &runInfo{
			id: id, flag: flag,
			estEnd: now + time.Duration(est*float64(time.Second)),
			spol:   spol,
		}
		delete(idle, w)
		if o := cfg.Observer; o != nil {
			o.TaskStarted(ms(now), w, pl.KindOf(w), g.d.Task(id), ms(running[w].estEnd), spol)
		}
		jobs[w] <- job{id: id, t: t, flag: flag}
	}

	// reservedBy maps a victim worker to the worker waiting to restart
	// its task after the cooperative abort.
	reservedBy := make(map[int]int) // victim worker -> spoliating worker

	trySpoliate := func(w int) bool {
		if cfg.DisableSpoliation {
			return false
		}
		kind := pl.KindOf(w)
		now := clk.Since(epoch)
		// Victims: running tasks on the other class, not already being
		// spoliated, in decreasing estimated completion time.
		type victim struct {
			worker int
			info   *runInfo
		}
		var victims []victim
		for vw, info := range running {
			if pl.KindOf(vw) == kind {
				continue
			}
			if _, taken := reservedBy[vw]; taken {
				continue
			}
			victims = append(victims, victim{vw, info})
		}
		sort.Slice(victims, func(i, j int) bool {
			if victims[i].info.estEnd != victims[j].info.estEnd {
				return victims[i].info.estEnd > victims[j].info.estEnd
			}
			return victims[i].info.id < victims[j].info.id
		})
		for _, v := range victims {
			est := g.d.Task(v.info.id).Time(kind)
			newEnd := now + time.Duration(est*float64(time.Second))
			if newEnd < v.info.estEnd {
				v.info.flag.Cancel()
				reservedBy[v.worker] = w
				delete(idle, w)
				return true
			}
		}
		return false
	}

	assign := func() {
		for {
			progress := false
			for _, kind := range []platform.Kind{platform.GPU, platform.CPU} {
				for _, w := range pl.WorkersOf(kind) {
					if !idle[w] || queue.Len() == 0 {
						continue
					}
					var t platform.Task
					if kind == platform.GPU {
						t = queue.PopFront()
					} else {
						t = queue.PopBack()
					}
					dispatch(w, t.ID, false)
					progress = true
				}
			}
			if queue.Len() == 0 {
				for _, kind := range []platform.Kind{platform.GPU, platform.CPU} {
					for _, w := range pl.WorkersOf(kind) {
						if idle[w] && trySpoliate(w) {
							progress = true
						}
					}
				}
			}
			if !progress {
				return
			}
		}
	}

	for _, id := range rt.Drain() {
		queue.Push(g.d.Task(id))
		if o := cfg.Observer; o != nil {
			o.TaskQueued(ms(clk.Since(epoch)), g.d.Task(id), queue.Len())
		}
	}
	assign()
	if o := cfg.Observer; o != nil {
		o.QueueDepthSample(ms(clk.Since(epoch)), queue.Len())
	}

	for !rt.Done() {
		if len(running) == 0 {
			return nil, fmt.Errorf("runtime: stalled with %d tasks remaining", rt.Remaining())
		}
		c := <-done
		info := running[c.worker]
		delete(running, c.worker)
		idle[c.worker] = true
		if c.err != nil {
			return nil, fmt.Errorf("runtime: task %d (%s): %w", c.id, g.tasks[c.id].Name, c.err)
		}
		kind := pl.KindOf(c.worker)
		entry := sim.Entry{
			TaskID: c.id, Worker: c.worker, Kind: kind,
			Start: c.start.Seconds(), End: c.end.Seconds(),
			Spoliation: info.spol,
		}
		if c.completed {
			rt.Complete(c.id)
			if o := cfg.Observer; o != nil {
				o.TaskCompleted(ms(c.end), c.worker, kind, g.d.Task(c.id), ms(c.start))
			}
			for _, nid := range rt.Drain() {
				queue.Push(g.d.Task(nid))
				if o := cfg.Observer; o != nil {
					o.TaskQueued(ms(c.end), g.d.Task(nid), queue.Len())
				}
			}
			// A completion that won the race against its own spoliation
			// frees the reserver.
			if sw, ok := reservedBy[c.worker]; ok {
				delete(reservedBy, c.worker)
				idle[sw] = true
			}
		} else {
			// Cooperatively aborted: record and hand the task to the
			// spoliating worker.
			entry.Aborted = true
			spoliations++
			sw, ok := reservedBy[c.worker]
			if !ok {
				return nil, fmt.Errorf("runtime: task %d aborted with no spoliating worker", c.id)
			}
			delete(reservedBy, c.worker)
			idle[sw] = true
			if o := cfg.Observer; o != nil {
				o.TaskSpoliated(ms(c.end), c.worker, sw, g.d.Task(c.id), ms(c.end-c.start))
			}
			trace.Entries = append(trace.Entries, entry)
			dispatch(sw, c.id, true)
			assign()
			continue
		}
		trace.Entries = append(trace.Entries, entry)
		assign()
		if o := cfg.Observer; o != nil {
			o.QueueDepthSample(ms(clk.Since(epoch)), queue.Len())
		}
	}

	return &Report{
		Wall:        clk.Since(epoch),
		Trace:       trace,
		Spoliations: spoliations,
	}, nil
}

package adversary

import (
	"math"
	"testing"

	"repro/internal/platform"
)

func TestSearchFindsBadInstancesOnOneOne(t *testing.T) {
	res, err := Search(Config{
		Platform: platform.NewPlatform(1, 1),
		MaxTasks: 4,
		Iters:    3000,
		Seed:     2017,
	})
	if err != nil {
		t.Fatal(err)
	}
	phi := (1 + math.Sqrt(5)) / 2
	if res.Ratio > phi+1e-6 {
		t.Fatalf("found ratio %v above the proven phi bound — Theorem 7 violated?!\ninstance: %v", res.Ratio, res.Instance)
	}
	// The climber should get well past trivial ratios on (1,1); the
	// supremum is phi ~ 1.618.
	if res.Ratio < 1.3 {
		t.Errorf("search only reached ratio %v; expected > 1.3 (sup is phi)", res.Ratio)
	}
	if res.HP/res.Opt != res.Ratio {
		t.Errorf("inconsistent result: HP %v, Opt %v, Ratio %v", res.HP, res.Opt, res.Ratio)
	}
	if res.Evals <= 0 || len(res.Instance) < 2 {
		t.Errorf("bookkeeping wrong: %+v", res)
	}
	t.Logf("worst found on (1,1): ratio %.4f (phi = %.4f) with %d tasks after %d evals",
		res.Ratio, phi, len(res.Instance), res.Evals)
}

func TestSearchRespectsBoundsOnGeneralShape(t *testing.T) {
	res, err := Search(Config{
		Platform: platform.NewPlatform(3, 2),
		MaxTasks: 6,
		Iters:    1200,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratio > 2+math.Sqrt2+1e-6 {
		t.Fatalf("ratio %v exceeds the Theorem 12 bound", res.Ratio)
	}
	if err := res.Instance.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSearchDeterministic(t *testing.T) {
	cfg := Config{Platform: platform.NewPlatform(1, 1), MaxTasks: 4, Iters: 400, Seed: 5}
	a, err := Search(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Ratio != b.Ratio || len(a.Instance) != len(b.Instance) {
		t.Errorf("same seed, different results: %v vs %v", a.Ratio, b.Ratio)
	}
}

func TestSearchInvalidPlatform(t *testing.T) {
	if _, err := Search(Config{}); err == nil {
		t.Error("empty platform accepted")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{MaxTasks: 99}.withDefaults()
	if c.MaxTasks > 16 {
		t.Errorf("MaxTasks not capped: %d", c.MaxTasks)
	}
	if c.Iters == 0 || c.Restarts == 0 {
		t.Error("defaults not applied")
	}
}

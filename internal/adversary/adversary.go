// Package adversary searches for worst-case HeteroPrio instances
// automatically: a randomized hill climber over small independent
// instances, scoring each candidate by the ratio of the HeteroPrio
// makespan to the exact optimum (branch and bound). It is the empirical
// counterpart of the paper's Section 5 lower-bound constructions — on a
// (1,1) platform it rediscovers golden-ratio-like instances without being
// told about phi.
package adversary

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sched"
)

// Config parameterizes a search.
type Config struct {
	// Platform is the target node shape.
	Platform platform.Platform
	// MaxTasks bounds the instance size (must stay exactly solvable;
	// capped at sched.MaxExactTasks). Default 6.
	MaxTasks int
	// Iters is the number of mutation steps. Default 2000.
	Iters int
	// Restarts is the number of independent climbs; the best result wins.
	// Default 4.
	Restarts int
	// Seed makes the search reproducible.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.MaxTasks <= 0 {
		c.MaxTasks = 6
	}
	if c.MaxTasks > sched.MaxExactTasks {
		c.MaxTasks = sched.MaxExactTasks
	}
	if c.Iters <= 0 {
		c.Iters = 2000
	}
	if c.Restarts <= 0 {
		c.Restarts = 4
	}
	return c
}

// Result is the worst instance found.
type Result struct {
	Instance platform.Instance
	HP       float64 // HeteroPrio makespan
	Opt      float64 // exact optimal makespan
	Ratio    float64 // HP / Opt
	Evals    int     // number of exact evaluations performed
}

// Search runs the hill climber and returns the worst instance found.
func Search(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Platform.Validate(); err != nil {
		return Result{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var best Result
	evals := 0

	evaluate := func(in platform.Instance) (float64, error) {
		evals++
		res, err := core.ScheduleIndependent(in, cfg.Platform, core.Options{})
		if err != nil {
			return 0, err
		}
		opt, err := sched.OptimalIndependent(in, cfg.Platform)
		if err != nil {
			return 0, err
		}
		if opt <= 0 {
			return 0, fmt.Errorf("adversary: degenerate optimum %v", opt)
		}
		return res.Makespan() / opt, nil
	}

	for restart := 0; restart < cfg.Restarts; restart++ {
		cur := randomInstance(rng, 2+rng.Intn(cfg.MaxTasks-1))
		curRatio, err := evaluate(cur)
		if err != nil {
			return Result{}, err
		}
		for it := 0; it < cfg.Iters/cfg.Restarts; it++ {
			cand := mutate(cur, cfg.MaxTasks, rng)
			r, err := evaluate(cand)
			if err != nil {
				return Result{}, err
			}
			// Plain hill climbing with plateau acceptance: ties are
			// accepted so the climber can drift across flat regions.
			if r >= curRatio {
				cur, curRatio = cand, r
			}
			if curRatio > best.Ratio {
				res, err := core.ScheduleIndependent(cur, cfg.Platform, core.Options{})
				if err != nil {
					return Result{}, err
				}
				optVal, err := sched.OptimalIndependent(cur, cfg.Platform)
				if err != nil {
					return Result{}, err
				}
				best = Result{
					Instance: cur.Clone(),
					HP:       res.Makespan(),
					Opt:      optVal,
					Ratio:    curRatio,
				}
			}
		}
	}
	best.Evals = evals
	return best, nil
}

// randomInstance draws T tasks with log-uniform acceleration factors.
func randomInstance(rng *rand.Rand, T int) platform.Instance {
	in := make(platform.Instance, 0, T)
	for i := 0; i < T; i++ {
		p := 0.2 + rng.Float64()*4
		accel := math.Exp(rng.Float64()*4 - 1) // ~[0.37, 20]
		in = append(in, platform.Task{ID: i, CPUTime: p, GPUTime: p / accel})
	}
	return in
}

// mutate returns a perturbed copy: tweak a duration, duplicate a task, or
// drop one (keeping at least two).
func mutate(in platform.Instance, maxTasks int, rng *rand.Rand) platform.Instance {
	out := in.Clone()
	switch op := rng.Intn(6); {
	case op <= 3: // perturb one time multiplicatively (most common)
		i := rng.Intn(len(out))
		f := math.Exp(rng.NormFloat64() * 0.25)
		if rng.Intn(2) == 0 {
			out[i].CPUTime = clampTime(out[i].CPUTime * f)
		} else {
			out[i].GPUTime = clampTime(out[i].GPUTime * f)
		}
	case op == 4 && len(out) < maxTasks: // duplicate + jitter
		src := out[rng.Intn(len(out))]
		src.CPUTime = clampTime(src.CPUTime * math.Exp(rng.NormFloat64()*0.1))
		src.GPUTime = clampTime(src.GPUTime * math.Exp(rng.NormFloat64()*0.1))
		out = append(out, src)
	case op == 5 && len(out) > 2: // drop one
		i := rng.Intn(len(out))
		out = append(out[:i], out[i+1:]...)
	default: // fall back to a perturbation
		i := rng.Intn(len(out))
		out[i].CPUTime = clampTime(out[i].CPUTime * math.Exp(rng.NormFloat64()*0.25))
	}
	return out.Renumber()
}

// clampTime keeps durations positive and the exact solver well-behaved.
func clampTime(v float64) float64 {
	return math.Min(math.Max(v, 1e-3), 1e3)
}

// Package stats provides the small aggregation and table-rendering helpers
// used by the experiment harness: summary statistics over float slices and
// Markdown/CSV rendering of labelled tables.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean (NaN for empty input or non-positive
// values).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Max returns the maximum (−Inf for empty input).
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		m = math.Max(m, x)
	}
	return m
}

// Min returns the minimum (+Inf for empty input).
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		m = math.Min(m, x)
	}
	return m
}

// Quantile returns the q-quantile (0 <= q <= 1) by linear interpolation on
// the sorted copy of xs; NaN for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	if q <= 0 {
		return ys[0]
	}
	if q >= 1 {
		return ys[len(ys)-1]
	}
	pos := q * float64(len(ys)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(ys) {
		return ys[lo]
	}
	return ys[lo]*(1-frac) + ys[lo+1]*frac
}

// Table is a simple labelled table for experiment output.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row; values are rendered with %v, floats with 4
// significant digits.
func (t *Table) AddRow(vals ...interface{}) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			if math.IsNaN(x) {
				row[i] = ""
			} else {
				row[i] = fmt.Sprintf("%.4g", x)
			}
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Markdown renders the table as GitHub-flavored Markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, v := range r {
			if i < len(widths) && len(v) > widths[i] {
				widths[i] = len(v)
			}
		}
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i := range t.Columns {
			v := ""
			if i < len(cells) {
				v = cells[i]
			}
			fmt.Fprintf(&b, " %-*s |", widths[i], v)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	b.WriteString("|")
	for i := range t.Columns {
		b.WriteString(strings.Repeat("-", widths[i]+2))
		b.WriteString("|")
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row.
// Cells containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, v := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			if strings.ContainsAny(v, ",\"\n") {
				b.WriteString("\"" + strings.ReplaceAll(v, "\"", "\"\"") + "\"")
			} else {
				b.WriteString(v)
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

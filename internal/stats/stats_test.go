package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v, want 2", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean = %v, want 2", got)
	}
	if !math.IsNaN(GeoMean(nil)) || !math.IsNaN(GeoMean([]float64{-1})) {
		t.Error("GeoMean edge cases should be NaN")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Max(xs) != 3 || Min(xs) != 1 {
		t.Errorf("Max/Min = %v/%v", Max(xs), Min(xs))
	}
	if !math.IsInf(Max(nil), -1) || !math.IsInf(Min(nil), 1) {
		t.Error("empty Max/Min should be infinities")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := map[float64]float64{0: 1, 1: 4, 0.5: 2.5, 1.5: 4, -1: 1}
	for q, want := range cases {
		if got := Quantile(xs, q); math.Abs(got-want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(nil) should be NaN")
	}
	if got := Quantile([]float64{7}, 0.3); got != 7 {
		t.Errorf("singleton quantile = %v", got)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTableMarkdownAndCSV(t *testing.T) {
	tb := &Table{Title: "demo", Columns: []string{"name", "value"}}
	tb.AddRow("x", 1.23456)
	tb.AddRow("with,comma", math.NaN())
	md := tb.Markdown()
	if !strings.Contains(md, "### demo") || !strings.Contains(md, "1.235") {
		t.Errorf("markdown:\n%s", md)
	}
	csv := tb.CSV()
	if !strings.Contains(csv, "name,value") || !strings.Contains(csv, "\"with,comma\"") {
		t.Errorf("csv:\n%s", csv)
	}
	// NaN renders as empty cell.
	if strings.Contains(csv, "NaN") {
		t.Error("NaN should render empty")
	}
}

package plot

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTicksNice(t *testing.T) {
	ts := Ticks(0, 10, 6)
	if len(ts) < 3 {
		t.Fatalf("too few ticks: %v", ts)
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] <= ts[i-1] {
			t.Fatalf("ticks not increasing: %v", ts)
		}
	}
	if ts[0] < 0 || ts[len(ts)-1] > 10+1e-9 {
		t.Fatalf("ticks outside range: %v", ts)
	}
}

func TestTicksDegenerate(t *testing.T) {
	if got := Ticks(5, 5, 4); len(got) != 1 || got[0] != 5 {
		t.Errorf("degenerate ticks = %v", got)
	}
	if got := Ticks(0, 1, 1); len(got) != 1 {
		t.Errorf("n<2 ticks = %v", got)
	}
}

// Property: ticks always lie within [lo, hi] (up to rounding) and are
// strictly increasing, for random ranges across magnitudes.
func TestTicksProperty(t *testing.T) {
	f := func(a, b float64, scale uint8) bool {
		lo := math.Mod(math.Abs(a), 1000)
		span := math.Mod(math.Abs(b), 1000) + 1e-3
		lo *= math.Pow(10, float64(scale%7)-3)
		span *= math.Pow(10, float64(scale%7)-3)
		hi := lo + span
		ts := Ticks(lo, hi, 8)
		if len(ts) == 0 || len(ts) > 25 {
			return false
		}
		for i, v := range ts {
			if v < lo-span*1e-6 || v > hi+span*1e-6 {
				return false
			}
			if i > 0 && v <= ts[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestChartSVG(t *testing.T) {
	c := &Chart{
		Title:  "ratio vs N",
		XLabel: "N",
		YLabel: "ratio <to> bound", // exercises escaping
		Series: []Series{
			{Name: "HeteroPrio", X: []float64{4, 8, 16}, Y: []float64{2.0, 1.1, 1.0}},
			{Name: "DualHP", X: []float64{4, 8, 16}, Y: []float64{2.7, 1.4, 1.0}},
			{Name: "HEFT", X: []float64{4, 8, 16}, Y: []float64{2.0, 1.1, math.NaN()}},
		},
	}
	svg := c.SVG(640, 360)
	for _, want := range []string{"<svg", "HeteroPrio", "DualHP", "polyline", "ratio &lt;to&gt; bound", "</svg>"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Contains(svg, "NaN") {
		t.Error("NaN leaked into SVG")
	}
}

func TestChartSVGEmptyAndTiny(t *testing.T) {
	c := &Chart{Title: "empty"}
	if svg := c.SVG(10, 10); !strings.Contains(svg, "<svg") {
		t.Error("empty chart broken")
	}
	c2 := &Chart{Series: []Series{{Name: "one", X: []float64{1}, Y: []float64{1}}}}
	if svg := c2.SVG(300, 200); !strings.Contains(svg, "circle") {
		t.Error("single-point series should still draw a marker")
	}
}

func TestChartYRangeOverride(t *testing.T) {
	c := &Chart{
		YMin: 1, YMax: 4,
		Series: []Series{{Name: "s", X: []float64{0, 1}, Y: []float64{2, 3}}},
	}
	if svg := c.SVG(400, 300); !strings.Contains(svg, "<svg") {
		t.Error("override range broken")
	}
}

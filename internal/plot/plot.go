// Package plot renders simple line charts as standalone SVG — enough to
// regenerate the paper's figures (ratio-vs-N curves) without any external
// dependency.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one labelled curve.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Chart is a line chart with one or more series.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// YMin/YMax optionally pin the y-range (both zero = auto).
	YMin, YMax float64
}

// palette matches internal/trace for visual consistency.
var palette = []string{
	"#4e79a7", "#f28e2b", "#59a14f", "#b07aa1",
	"#76b7b2", "#edc948", "#ff9da7", "#9c755f",
}

// markers cycles simple shapes so series are distinguishable in print.
var markers = []string{"circle", "square", "diamond", "triangle"}

// SVG renders the chart at the given pixel size.
func (c *Chart) SVG(width, height int) string {
	if width < 200 {
		width = 200
	}
	if height < 150 {
		height = 150
	}
	const ml, mr, mt, mb = 60.0, 140.0, 30.0, 45.0
	pw := float64(width) - ml - mr
	ph := float64(height) - mt - mb

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			if math.IsNaN(s.Y[i]) {
				continue
			}
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if math.IsInf(xmin, 1) { // no data
		xmin, xmax, ymin, ymax = 0, 1, 0, 1
	}
	if c.YMin != 0 || c.YMax != 0 {
		ymin, ymax = c.YMin, c.YMax
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// Pad the y-range slightly for readability.
	pad := (ymax - ymin) * 0.05
	ymin -= pad
	ymax += pad

	sx := func(x float64) float64 { return ml + (x-xmin)/(xmax-xmin)*pw }
	sy := func(y float64) float64 { return mt + ph - (y-ymin)/(ymax-ymin)*ph }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%d" y="18" font-size="14" text-anchor="middle">%s</text>`+"\n", width/2, escape(c.Title))

	// Axes and ticks.
	fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n", ml, mt+ph, ml+pw, mt+ph)
	fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n", ml, mt, ml, mt+ph)
	for _, tx := range Ticks(xmin, xmax, 8) {
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n", sx(tx), mt+ph, sx(tx), mt+ph+4)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle">%.4g</text>`+"\n", sx(tx), mt+ph+16, tx)
	}
	for _, ty := range Ticks(ymin, ymax, 6) {
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#dddddd"/>`+"\n", ml, sy(ty), ml+pw, sy(ty))
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="end">%.4g</text>`+"\n", ml-6, sy(ty)+4, ty)
	}
	fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`+"\n", ml+pw/2, height-8, escape(c.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%.1f" text-anchor="middle" transform="rotate(-90 14 %.1f)">%s</text>`+"\n", mt+ph/2, mt+ph/2, escape(c.YLabel))

	// Series.
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		var pts []string
		for i := range s.X {
			if math.IsNaN(s.Y[i]) {
				continue
			}
			pts = append(pts, fmt.Sprintf("%.2f,%.2f", sx(s.X[i]), sy(s.Y[i])))
		}
		if len(pts) > 1 {
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"/>`+"\n", strings.Join(pts, " "), color)
		}
		for i := range s.X {
			if math.IsNaN(s.Y[i]) {
				continue
			}
			drawMarker(&b, markers[si%len(markers)], sx(s.X[i]), sy(s.Y[i]), color)
		}
		// Legend.
		ly := mt + 14 + float64(si)*16
		lx := ml + pw + 10
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1.8"/>`+"\n", lx, ly-4, lx+18, ly-4, color)
		drawMarker(&b, markers[si%len(markers)], lx+9, ly-4, color)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f">%s</text>`+"\n", lx+24, ly, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func drawMarker(b *strings.Builder, shape string, x, y float64, color string) {
	const r = 3.0
	switch shape {
	case "square":
		fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n", x-r, y-r, 2*r, 2*r, color)
	case "diamond":
		fmt.Fprintf(b, `<polygon points="%.1f,%.1f %.1f,%.1f %.1f,%.1f %.1f,%.1f" fill="%s"/>`+"\n",
			x, y-r-1, x+r+1, y, x, y+r+1, x-r-1, y, color)
	case "triangle":
		fmt.Fprintf(b, `<polygon points="%.1f,%.1f %.1f,%.1f %.1f,%.1f" fill="%s"/>`+"\n",
			x, y-r-1, x+r+1, y+r, x-r-1, y+r, color)
	default:
		fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s"/>`+"\n", x, y, r, color)
	}
}

// Ticks returns up to n "nice" tick positions covering [lo, hi].
func Ticks(lo, hi float64, n int) []float64 {
	if n < 2 || !(hi > lo) {
		return []float64{lo}
	}
	raw := (hi - lo) / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	var step float64
	switch {
	case raw/mag < 1.5:
		step = mag
	case raw/mag < 3.5:
		step = 2 * mag
	case raw/mag < 7.5:
		step = 5 * mag
	default:
		step = 10 * mag
	}
	var out []float64
	for t := math.Ceil(lo/step) * step; t <= hi+step*1e-9; t += step {
		out = append(out, t)
	}
	return out
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

package core

import (
	"math"
	"testing"

	"repro/internal/bounds"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// checkSpoliationProfit re-derives Algorithm 1's spoliation rule directly
// from the trace, independently of Schedule.Validate: every aborted run
// must have a spoliation restart at the abort instant, and the restart's
// estimated completion must strictly beat the victim's.
func checkSpoliationProfit(t *testing.T, in platform.Instance, s *sim.Schedule) {
	t.Helper()
	byID := in.ByID()
	for _, a := range s.Entries {
		if !a.Aborted {
			continue
		}
		found := false
		for _, r := range s.Entries {
			if !r.Spoliation || r.TaskID != a.TaskID || math.Abs(r.Start-a.End) > 1e-9 {
				continue
			}
			found = true
			task := byID[a.TaskID]
			if r.Start+task.Time(r.Kind) >= a.Start+task.Time(a.Kind) {
				t.Fatalf("task %d: restart at %v on %v does not strictly improve on the victim's completion", a.TaskID, r.Start, r.Kind)
			}
		}
		if !found {
			t.Fatalf("task %d aborted at %v without a spoliation restart", a.TaskID, a.End)
		}
	}
}

// decodeInstance turns fuzz bytes into a valid instance and platform:
// two bytes per task (CPU time, acceleration-factor bucket), first two
// bytes pick the platform shape.
func decodeInstance(data []byte) (platform.Instance, platform.Platform, bool) {
	if len(data) < 4 {
		return nil, platform.Platform{}, false
	}
	m := 1 + int(data[0])%6
	n := 1 + int(data[1])%4
	data = data[2:]
	var in platform.Instance
	for i := 0; i+1 < len(data) && len(in) < 40; i += 2 {
		p := 0.1 + float64(data[i])/8
		accel := math.Exp((float64(data[i+1])/255)*6 - 2) // ~[0.14, 55]
		in = append(in, platform.Task{ID: len(in), CPUTime: p, GPUTime: p / accel})
	}
	if len(in) == 0 {
		return nil, platform.Platform{}, false
	}
	return in, platform.NewPlatform(m, n), true
}

// encodeInstance is decodeInstance's quantizing inverse: platform shapes
// clamp to the decoder's 6 CPUs + 4 GPUs, durations and acceleration
// factors snap to the byte grid, and tasks beyond the decoder's cap of 40
// are dropped. It exists to seed the fuzz corpus with structured
// instances, so lossiness is fine — the structure survives.
func encodeInstance(in platform.Instance, pl platform.Platform) []byte {
	clampByte := func(v float64) byte {
		return byte(math.Max(0, math.Min(255, math.Round(v))))
	}
	data := []byte{
		clampByte(math.Min(float64(pl.CPUs), 6) - 1),
		clampByte(math.Min(float64(pl.GPUs), 4) - 1),
	}
	for _, t := range in {
		data = append(data,
			clampByte((t.CPUTime-0.1)*8),
			clampByte((math.Log(t.CPUTime/t.GPUTime)+2)/6*255))
	}
	return data
}

// FuzzHeteroPrioInvariants checks, for arbitrary instances, that
// HeteroPrio produces a structurally valid schedule, that spoliation only
// improves on the no-spoliation schedule, and that the Lemma 4/5
// structure and the T_FirstIdle <= AreaBound corollary hold.
func FuzzHeteroPrioInvariants(f *testing.F) {
	f.Add([]byte{2, 1, 100, 200, 50, 10, 30, 128})
	f.Add([]byte{1, 1, 255, 255, 1, 1})
	f.Add([]byte{5, 3, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	// The Section 5 worst-case families, quantized onto the decoder grid.
	// The tight members need larger platforms than the decoder can express
	// (Theorem 14 wants n^2 CPUs + n GPUs), so these are clamped
	// approximations — what they plant in the corpus is the adversarial
	// *structure*: phi-ratio task pairs and filler swarms that force
	// spoliation decisions near the profitability boundary.
	for _, family := range []func() (platform.Instance, platform.Platform){
		workloads.Theorem8Instance,
		func() (platform.Instance, platform.Platform) { return workloads.Theorem11Instance(2, 4) },
		func() (platform.Instance, platform.Platform) { return workloads.Theorem11Instance(5, 2) },
		func() (platform.Instance, platform.Platform) { return workloads.Theorem14Instance(1, 2) },
	} {
		in, pl := family()
		f.Add(encodeInstance(in, pl))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		in, pl, ok := decodeInstance(data)
		if !ok {
			t.Skip()
		}
		res, err := ScheduleIndependent(in, pl, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Schedule.Validate(in, nil); err != nil {
			t.Fatalf("invalid schedule: %v", err)
		}
		if res.Makespan() > res.NoSpoliation.Makespan()+1e-9 {
			t.Fatalf("spoliation worsened makespan %v -> %v", res.NoSpoliation.Makespan(), res.Makespan())
		}
		ab, err := bounds.AreaBound(in, pl)
		if err != nil {
			t.Fatal(err)
		}
		if !math.IsInf(res.TFirstIdle, 1) && res.TFirstIdle > ab+1e-6*math.Max(1, ab) {
			t.Fatalf("TFirstIdle %v > area bound %v", res.TFirstIdle, ab)
		}
		checkSpoliationProfit(t, in, res.Schedule)
		checkSpoliationLemmas(t, res.Schedule)
	})
}

// FuzzAreaBoundMatchesLP cross-checks the combinatorial area bound against
// the simplex LP for arbitrary instances.
func FuzzAreaBoundMatchesLP(f *testing.F) {
	f.Add([]byte{1, 1, 10, 10, 20, 20})
	f.Add([]byte{3, 2, 1, 254, 254, 1, 128, 128})
	f.Fuzz(func(t *testing.T, data []byte) {
		in, pl, ok := decodeInstance(data)
		if !ok || len(in) > 14 {
			t.Skip()
		}
		fast, err := bounds.AreaBound(in, pl)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := bounds.AreaBoundLP(in, pl)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fast-slow) > 1e-5*math.Max(1, slow) {
			t.Fatalf("area bound mismatch: combinatorial %v, LP %v", fast, slow)
		}
	})
}

// TestScalingInvariance: multiplying every processing time by a constant
// scales every algorithm's makespan by the same constant (no hidden
// absolute thresholds).
func TestScalingInvariance(t *testing.T) {
	in := platform.Instance{
		task(0, 10, 1), task(1, 3, 4), task(2, 7, 2), task(3, 1, 1), task(4, 5, 9),
	}
	pl := platform.NewPlatform(2, 1)
	base, err := ScheduleIndependent(in, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []float64{0.001, 3, 1e4} {
		scaled := in.Clone()
		for i := range scaled {
			scaled[i].CPUTime *= c
			scaled[i].GPUTime *= c
		}
		res, err := ScheduleIndependent(scaled, pl, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Makespan()-c*base.Makespan()) > 1e-9*c*base.Makespan() {
			t.Errorf("scale %v: makespan %v, want %v", c, res.Makespan(), c*base.Makespan())
		}
	}
}

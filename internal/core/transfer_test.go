package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bounds"
	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/workloads"
)

func TestTransferDelayChainCrossClass(t *testing.T) {
	// Chain a -> b where a prefers the CPU and b the GPU: b must wait for
	// the transfer after a's completion.
	g := dag.New()
	a := g.AddTask(platform.Task{CPUTime: 1, GPUTime: 10})
	b := g.AddTask(platform.Task{CPUTime: 10, GPUTime: 1})
	g.AddEdge(a, b)
	pl := platform.NewPlatform(1, 1)
	const delta = 2.5
	res, err := ScheduleDAG(g, pl, Options{TransferDelay: delta})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.ValidateRelaxed(g.Tasks(), g); err != nil {
		t.Fatal(err)
	}
	// a on CPU [0,1]; b on GPU: waits delta, then runs 1: makespan 4.5.
	if math.Abs(res.Makespan()-(1+delta+1)) > 1e-9 {
		t.Errorf("makespan = %v, want %v", res.Makespan(), 1+delta+1)
	}
}

func TestTransferDelaySameClassFree(t *testing.T) {
	// Same-class chains pay no transfer.
	g := dag.Chain(3, platform.Task{CPUTime: 5, GPUTime: 1})
	pl := platform.NewPlatform(1, 1)
	res, err := ScheduleDAG(g, pl, Options{TransferDelay: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan() != 3 {
		t.Errorf("makespan = %v, want 3 (all on GPU, no transfers)", res.Makespan())
	}
}

func TestTransferDelayZeroMatchesPlain(t *testing.T) {
	g := workloads.Cholesky(6)
	pl := platform.NewPlatform(4, 2)
	plain, err := ScheduleDAG(g, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	zero, err := ScheduleDAG(g, pl, Options{TransferDelay: 0})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Makespan() != zero.Makespan() {
		t.Errorf("zero delay changed makespan: %v vs %v", plain.Makespan(), zero.Makespan())
	}
}

func TestTransferDelaySweep(t *testing.T) {
	// Transfer delays change list-scheduling decisions, so the makespan is
	// NOT guaranteed monotone in the delay (Graham-style anomalies: the
	// delta sweep on this very workload exhibits a small dip). What must
	// hold: every schedule validates, never beats the zero-delay lower
	// bound, and a delay larger than every task clearly hurts.
	g := workloads.Cholesky(8)
	pl := platform.NewPlatform(4, 2)
	var base float64
	for _, delta := range []float64{0, 0.5, 2, 8, 200} {
		res, err := ScheduleDAG(g, pl, Options{TransferDelay: delta})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Schedule.ValidateRelaxed(g.Tasks(), g); err != nil {
			t.Fatalf("delta %v: %v", delta, err)
		}
		if delta == 0 {
			base = res.Makespan()
			continue
		}
		// Anomalies can beat the zero-delay makespan by a few percent, but
		// never the zero-delay lower bound.
		lb, err := bounds.DAGLower(g, pl)
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan() < lb-1e-6 {
			t.Errorf("delta %v: makespan %v below the lower bound %v", delta, res.Makespan(), lb)
		}
		if delta == 200 && res.Makespan() < 2*base {
			t.Errorf("huge delay %v barely hurt: %v vs base %v", delta, res.Makespan(), base)
		}
	}
}

func TestTransferDelayRandomValid(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		g := dag.RandomLayered(dag.DefaultRandomLayeredConfig(), rng)
		pl := platform.NewPlatform(1+rng.Intn(3), 1+rng.Intn(2))
		res, err := ScheduleDAG(g, pl, Options{TransferDelay: rng.Float64() * 10})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Schedule.ValidateRelaxed(g.Tasks(), g); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/platform"
	"repro/internal/sim"
)

// ReleasedTask is a task with a release date for the online setting
// (tasks arrive over time, the scheduler learns a task at its release).
type ReleasedTask struct {
	Task    platform.Task
	Release float64
}

// ScheduleOnline runs HeteroPrio in the online-arrival setting studied by
// Imreh [14] and pointed at by the paper's related work: tasks enter the
// ready queue at their release dates, and at any instant the algorithm of
// the independent case (including spoliation) is applied to the tasks
// released so far. The result is the same event loop as ScheduleDAG with
// timed arrivals instead of dependency releases.
func ScheduleOnline(tasks []ReleasedTask, pl platform.Platform, opt Options) (Result, error) {
	if err := pl.Validate(); err != nil {
		return Result{}, err
	}
	in := make(platform.Instance, len(tasks))
	for i, rt := range tasks {
		if rt.Release < 0 || math.IsNaN(rt.Release) || math.IsInf(rt.Release, 0) {
			return Result{}, fmt.Errorf("core: task %d has invalid release date %v", rt.Task.ID, rt.Release)
		}
		in[i] = rt.Task
	}
	if err := in.Validate(); err != nil {
		return Result{}, err
	}

	arrivals := append([]ReleasedTask(nil), tasks...)
	sort.SliceStable(arrivals, func(i, j int) bool { return arrivals[i].Release < arrivals[j].Release })

	k := sim.NewKernel(pl)
	q := NewQueue(opt.UsePriorities)
	eps := opt.eps()
	o := opt.Observer
	next := 0 // next arrival index
	remaining := len(arrivals)
	spoliations := 0
	tFirstIdle := math.Inf(1)

	admit := func() {
		for next < len(arrivals) && arrivals[next].Release <= k.Now+1e-12 {
			q.Push(arrivals[next].Task)
			if o != nil {
				o.TaskQueued(k.Now, arrivals[next].Task, q.Len())
			}
			next++
		}
	}

	trySpoliate := func(w int) bool {
		kind := pl.KindOf(w)
		victims := k.RunningOn(kind.Other())
		sort.Slice(victims, func(i, j int) bool {
			a, b := victims[i], victims[j]
			if a.EstEnd != b.EstEnd {
				return a.EstEnd > b.EstEnd
			}
			return a.Task.ID < b.Task.ID
		})
		for _, v := range victims {
			newEnd := k.Now + v.Task.Time(kind)
			if newEnd < v.EstEnd-eps {
				k.Abort(v.Worker)
				k.StartTimed(w, v.Task, opt.actual(v.Task, kind), true)
				spoliations++
				if o != nil {
					o.TaskSpoliated(k.Now, v.Worker, w, v.Task, k.Now-v.Start)
					o.TaskStarted(k.Now, w, kind, v.Task, newEnd, true)
				}
				return true
			}
		}
		return false
	}

	assign := func() {
		for {
			changed := false
			for _, w := range k.IdleWorkers(platform.GPU) {
				if q.Len() == 0 {
					break
				}
				t := q.PopFront()
				k.StartTimed(w, t, opt.actual(t, platform.GPU), false)
				changed = true
				if o != nil {
					o.TaskStarted(k.Now, w, platform.GPU, t, k.Now+t.Time(platform.GPU), false)
				}
			}
			for _, w := range k.IdleWorkers(platform.CPU) {
				if q.Len() == 0 {
					break
				}
				t := q.PopBack()
				k.StartTimed(w, t, opt.actual(t, platform.CPU), false)
				changed = true
				if o != nil {
					o.TaskStarted(k.Now, w, platform.CPU, t, k.Now+t.Time(platform.CPU), false)
				}
			}
			if q.Len() == 0 && !opt.DisableSpoliation {
				for _, kind := range []platform.Kind{platform.GPU, platform.CPU} {
					for _, w := range k.IdleWorkers(kind) {
						if trySpoliate(w) {
							changed = true
						}
					}
				}
			}
			if !changed {
				return
			}
		}
	}

	complete := func(run sim.Running) {
		remaining--
		if o != nil {
			o.TaskCompleted(k.Now, run.Worker, pl.KindOf(run.Worker), run.Task, run.Start)
		}
	}
	for remaining > 0 || k.NumBusy() > 0 {
		admit()
		assign()
		if remaining > 0 && k.NumBusy() < pl.Workers() && k.Now < tFirstIdle {
			tFirstIdle = k.Now
		}
		if o != nil && remaining > 0 {
			o.QueueDepthSample(k.Now, q.Len())
			for w := 0; w < pl.Workers(); w++ {
				if !k.Busy(w) {
					o.WorkerIdle(k.Now, w, pl.KindOf(w))
				}
			}
		}
		// Advance to the earlier of next completion and next arrival.
		nextArrival := math.Inf(1)
		if next < len(arrivals) {
			nextArrival = arrivals[next].Release
		}
		nextDone := k.NextCompletion()
		if nextArrival < nextDone {
			k.Now = nextArrival
			continue
		}
		run, ok := k.CompleteNext()
		if !ok {
			break
		}
		complete(run)
		//hplint:allow floateq completions at one instant carry the same stored float; the exact same-timestamp drain is intended
		for k.NextCompletion() == k.Now {
			if run, ok = k.CompleteNext(); !ok {
				break
			}
			complete(run)
		}
	}
	if remaining != 0 {
		return Result{}, fmt.Errorf("core: online run stalled with %d tasks remaining", remaining)
	}
	return Result{
		Schedule:    k.Schedule(),
		TFirstIdle:  tFirstIdle,
		Spoliations: spoliations,
	}, nil
}

package core

import (
	"math/rand"
	"testing"

	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/workloads"
)

// countingObserver tallies events for consistency checks against the
// finished schedule.
type countingObserver struct {
	queued, started, spoliated, completed, idle, depthSamples int
	restarts                                                  int
	wasted                                                    float64
	lastDepth                                                 int
}

func (c *countingObserver) TaskQueued(_ float64, _ platform.Task, depth int) {
	c.queued++
	c.lastDepth = depth
}

func (c *countingObserver) TaskStarted(_ float64, _ int, _ platform.Kind, _ platform.Task, _ float64, spoliation bool) {
	c.started++
	if spoliation {
		c.restarts++
	}
}

func (c *countingObserver) TaskSpoliated(_ float64, _, _ int, _ platform.Task, wasted float64) {
	c.spoliated++
	c.wasted += wasted
}

func (c *countingObserver) TaskCompleted(float64, int, platform.Kind, platform.Task, float64) {
	c.completed++
}

func (c *countingObserver) WorkerIdle(float64, int, platform.Kind) { c.idle++ }

func (c *countingObserver) QueueDepthSample(_ float64, depth int) {
	c.depthSamples++
	c.lastDepth = depth
}

// TestObserverEventsMatchSchedule cross-checks the live event stream
// against the post-hoc schedule on independent, DAG and online runs.
func TestObserverEventsMatchSchedule(t *testing.T) {
	pl := platform.NewPlatform(4, 2)
	rng := rand.New(rand.NewSource(7))
	in := workloads.UniformInstance(60, 1, 100, 0.2, 40, rng)

	t.Run("independent", func(t *testing.T) {
		c := &countingObserver{}
		res, err := ScheduleIndependent(in, pl, Options{Observer: c})
		if err != nil {
			t.Fatal(err)
		}
		checkCounts(t, c, len(in), res.Spoliations)
		var wasted float64
		for _, e := range res.Schedule.Entries {
			if e.Aborted {
				wasted += e.Duration()
			}
		}
		if diff := c.wasted - wasted; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("observed wasted work %v, schedule says %v", c.wasted, wasted)
		}
	})

	t.Run("dag", func(t *testing.T) {
		g := workloads.Cholesky(6)
		c := &countingObserver{}
		res, err := ScheduleDAG(g, pl, Options{Observer: c})
		if err != nil {
			t.Fatal(err)
		}
		checkCounts(t, c, g.Len(), res.Spoliations)
	})

	t.Run("online", func(t *testing.T) {
		tasks := make([]ReleasedTask, len(in))
		for i, task := range in {
			tasks[i] = ReleasedTask{Task: task, Release: float64(i % 10)}
		}
		c := &countingObserver{}
		res, err := ScheduleOnline(tasks, pl, Options{Observer: c})
		if err != nil {
			t.Fatal(err)
		}
		checkCounts(t, c, len(in), res.Spoliations)
	})
}

func checkCounts(t *testing.T, c *countingObserver, tasks, spoliations int) {
	t.Helper()
	if c.queued != tasks {
		t.Errorf("queued events = %d, want %d", c.queued, tasks)
	}
	if c.completed != tasks {
		t.Errorf("completed events = %d, want %d", c.completed, tasks)
	}
	if c.spoliated != spoliations {
		t.Errorf("spoliated events = %d, want %d", c.spoliated, spoliations)
	}
	if c.restarts != spoliations {
		t.Errorf("spoliation restarts = %d, want %d", c.restarts, spoliations)
	}
	// Every execution attempt is a start: one per successful task run plus
	// one per aborted run.
	if c.started != tasks+spoliations {
		t.Errorf("started events = %d, want %d", c.started, tasks+spoliations)
	}
	if c.lastDepth != 0 {
		t.Errorf("final queue depth = %d, want 0", c.lastDepth)
	}
	if c.depthSamples == 0 {
		t.Error("no queue depth samples")
	}
}

// TestObserverNopZeroAlloc is the benchmark guard in test form: scheduling
// with a no-op Observer must allocate exactly as much as with the hooks
// disabled — the emission sites pass only values and are branch-guarded.
func TestObserverNopZeroAlloc(t *testing.T) {
	pl := platform.NewPlatform(20, 4)
	rng := rand.New(rand.NewSource(3))
	in := workloads.UniformInstance(1000, 1, 100, 0.2, 40, rng)
	base := testing.AllocsPerRun(5, func() {
		if _, err := ScheduleIndependent(in, pl, Options{}); err != nil {
			t.Fatal(err)
		}
	})
	nop := testing.AllocsPerRun(5, func() {
		if _, err := ScheduleIndependent(in, pl, Options{Observer: obs.Nop{}}); err != nil {
			t.Fatal(err)
		}
	})
	if nop > base {
		t.Errorf("no-op observer allocates: %v allocs/run vs %v disabled", nop, base)
	}
}

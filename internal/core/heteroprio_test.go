package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bounds"
	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/sim"
)

var phi = (1 + math.Sqrt(5)) / 2

func task(id int, p, q float64) platform.Task {
	return platform.Task{ID: id, CPUTime: p, GPUTime: q}
}

func TestQueueOrdering(t *testing.T) {
	q := NewQueue(false)
	q.Push(task(0, 1, 1)) // rho 1
	q.Push(task(1, 4, 1)) // rho 4
	q.Push(task(2, 2, 2)) // rho 1, after task 0 (stable)
	q.Push(task(3, 1, 2)) // rho 0.5
	if q.Len() != 4 {
		t.Fatalf("len = %d", q.Len())
	}
	if got := q.PopFront(); got.ID != 1 {
		t.Errorf("front = %d, want 1", got.ID)
	}
	if got := q.PopBack(); got.ID != 3 {
		t.Errorf("back = %d, want 3", got.ID)
	}
	if got := q.PopFront(); got.ID != 0 {
		t.Errorf("stable tie: front = %d, want 0", got.ID)
	}
}

func TestQueuePriorityTieBreak(t *testing.T) {
	// rho >= 1: higher priority toward the front.
	q := NewQueue(true)
	a := task(0, 2, 1)
	a.Priority = 1
	b := task(1, 2, 1)
	b.Priority = 9
	q.Push(a)
	q.Push(b)
	if got := q.PopFront(); got.ID != 1 {
		t.Errorf("front = %d, want high-priority 1", got.ID)
	}
	// rho < 1: higher priority toward the back (CPU side).
	q2 := NewQueue(true)
	c := task(0, 1, 2)
	c.Priority = 1
	d := task(1, 1, 2)
	d.Priority = 9
	q2.Push(c)
	q2.Push(d)
	if got := q2.PopBack(); got.ID != 1 {
		t.Errorf("back = %d, want high-priority 1", got.ID)
	}
}

func TestScheduleIndependentValidatesInput(t *testing.T) {
	if _, err := ScheduleIndependent(platform.Instance{task(0, -1, 1)}, platform.NewPlatform(1, 1), Options{}); err == nil {
		t.Error("invalid task accepted")
	}
	if _, err := ScheduleIndependent(platform.Instance{task(0, 1, 1)}, platform.Platform{}, Options{}); err == nil {
		t.Error("invalid platform accepted")
	}
}

func TestEmptyInstance(t *testing.T) {
	res, err := ScheduleIndependent(nil, platform.NewPlatform(1, 1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan() != 0 {
		t.Errorf("makespan = %v, want 0", res.Makespan())
	}
}

// TestTheorem8WorstCase reproduces the tight phi example of Theorem 8:
// tasks Y(p=1, q=1/phi) then X(p=phi, q=1), both with acceleration factor
// phi, on 1 CPU + 1 GPU. HeteroPrio reaches makespan phi while the optimum
// is 1, and the GPU must NOT spoliate X (equal completion time).
func TestTheorem8WorstCase(t *testing.T) {
	in := platform.Instance{
		task(0, 1, 1/phi), // Y first: stable sort keeps it at the front
		task(1, phi, 1),   // X
	}
	pl := platform.NewPlatform(1, 1)
	res, err := ScheduleIndependent(in, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(in, nil); err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan()-phi) > 1e-9 {
		t.Errorf("makespan = %v, want phi = %v", res.Makespan(), phi)
	}
	if res.Spoliations != 0 {
		t.Errorf("spoliations = %d, want 0 (equal completion must not spoliate)", res.Spoliations)
	}
}

func TestSpoliationImprovesMakespan(t *testing.T) {
	// GPU finishes the high-rho task at 1, then spoliates the CPU task
	// (1 + 2 = 3 < 10).
	in := platform.Instance{
		task(0, 10, 1), // rho 10 -> GPU
		task(1, 10, 2), // rho 5  -> CPU, then spoliated
	}
	pl := platform.NewPlatform(1, 1)
	res, err := ScheduleIndependent(in, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(in, nil); err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan()-3) > 1e-9 {
		t.Errorf("makespan = %v, want 3", res.Makespan())
	}
	if res.Spoliations != 1 {
		t.Errorf("spoliations = %d, want 1", res.Spoliations)
	}
	if ns := res.NoSpoliation.Makespan(); math.Abs(ns-10) > 1e-9 {
		t.Errorf("S_HP^NS makespan = %v, want 10", ns)
	}
	if res.TFirstIdle != 1 {
		t.Errorf("TFirstIdle = %v, want 1", res.TFirstIdle)
	}
}

func TestAblationSpoliationUnboundedGap(t *testing.T) {
	// Two tasks that should both run on the GPU; without spoliation the CPU
	// keeps one for time M (ratio M/2 vs opt), with spoliation makespan 2.
	const M = 1000.0
	in := platform.Instance{task(0, M, 1), task(1, M, 1)}
	pl := platform.NewPlatform(1, 1)
	with, err := ScheduleIndependent(in, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := ScheduleIndependent(in, pl, Options{DisableSpoliation: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(with.Makespan()-2) > 1e-9 {
		t.Errorf("with spoliation makespan = %v, want 2", with.Makespan())
	}
	if math.Abs(without.Makespan()-M) > 1e-9 {
		t.Errorf("without spoliation makespan = %v, want %v", without.Makespan(), M)
	}
	if without.NoSpoliation != without.Schedule {
		t.Error("disabled spoliation should reuse the same schedule as NS")
	}
}

func TestNoGPUPlatform(t *testing.T) {
	in := platform.Instance{task(0, 3, 1), task(1, 2, 1), task(2, 1, 1)}
	pl := platform.NewPlatform(2, 0)
	res, err := ScheduleIndependent(in, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(in, nil); err != nil {
		t.Fatal(err)
	}
	// CPUs pop from the back of the rho-sorted queue, so the p=1 and p=2
	// tasks start first and the p=3 task starts at time 1: makespan 4.
	if res.Makespan() != 4 {
		t.Errorf("makespan = %v, want 4", res.Makespan())
	}
}

func TestNoCPUPlatform(t *testing.T) {
	in := platform.Instance{task(0, 3, 2), task(1, 2, 2)}
	pl := platform.NewPlatform(0, 1)
	res, err := ScheduleIndependent(in, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan() != 4 {
		t.Errorf("makespan = %v, want 4", res.Makespan())
	}
}

// Emergent Lemma 4/5 properties: a task is aborted at most once, and a
// class that executes a spoliated task has no aborted run of its own.
func checkSpoliationLemmas(t *testing.T, s *sim.Schedule) {
	t.Helper()
	abortCount := map[int]int{}
	spoliatedOn := map[platform.Kind]bool{}
	abortedOn := map[platform.Kind]bool{}
	for _, e := range s.Entries {
		if e.Aborted {
			abortCount[e.TaskID]++
			abortedOn[e.Kind] = true
		} else if e.Spoliation {
			spoliatedOn[e.Kind] = true
		}
	}
	for id, c := range abortCount {
		if c > 1 {
			t.Errorf("task %d aborted %d times", id, c)
		}
	}
	for _, k := range []platform.Kind{platform.CPU, platform.GPU} {
		if spoliatedOn[k] && abortedOn[k] {
			t.Errorf("Lemma 5 violated: class %v both executes spoliated tasks and loses tasks to spoliation", k)
		}
	}
}

func TestRandomIndependentInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		m := 1 + rng.Intn(4)
		n := 1 + rng.Intn(3)
		T := 1 + rng.Intn(25)
		var in platform.Instance
		for i := 0; i < T; i++ {
			in = append(in, task(i, 0.1+rng.Float64()*10, 0.1+rng.Float64()*10))
		}
		pl := platform.NewPlatform(m, n)
		res, err := ScheduleIndependent(in, pl, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Schedule.Validate(in, nil); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := res.NoSpoliation.Validate(in, nil); err != nil {
			t.Fatalf("trial %d NS: %v", trial, err)
		}
		checkSpoliationLemmas(t, res.Schedule)
		// Spoliation can only help.
		if res.Makespan() > res.NoSpoliation.Makespan()+1e-9 {
			t.Fatalf("trial %d: spoliation worsened makespan %v -> %v",
				trial, res.NoSpoliation.Makespan(), res.Makespan())
		}
		// Lemma 3 corollary: T_FirstIdle <= AreaBound(I).
		ab, err := bounds.AreaBound(in, pl)
		if err != nil {
			t.Fatal(err)
		}
		if res.TFirstIdle > ab+1e-6 && !math.IsInf(res.TFirstIdle, 1) {
			t.Fatalf("trial %d: TFirstIdle %v > area bound %v", trial, res.TFirstIdle, ab)
		}
	}
}

func TestScheduleDAGChain(t *testing.T) {
	g := dag.Chain(5, platform.Task{CPUTime: 4, GPUTime: 1})
	pl := platform.NewPlatform(1, 1)
	res, err := ScheduleDAG(g, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(g.Tasks(), g); err != nil {
		t.Fatal(err)
	}
	// All five tasks run on the GPU back to back.
	if res.Makespan() != 5 {
		t.Errorf("makespan = %v, want 5", res.Makespan())
	}
}

func TestScheduleDAGValidatesInput(t *testing.T) {
	g := dag.New()
	a := g.AddTask(task(0, 1, 1))
	b := g.AddTask(task(1, 1, 1))
	g.AddEdge(a, b)
	g.AddEdge(b, a)
	if _, err := ScheduleDAG(g, platform.NewPlatform(1, 1), Options{}); err == nil {
		t.Error("cyclic graph accepted")
	}
	if _, err := ScheduleDAG(dag.New(), platform.Platform{}, Options{}); err == nil {
		t.Error("invalid platform accepted")
	}
}

func TestScheduleDAGForkJoinSpoliation(t *testing.T) {
	// Source and sink prefer GPU; the wide middle has mixed affinities so
	// both classes work, and the run must respect all dependencies.
	src := platform.Task{CPUTime: 4, GPUTime: 1}
	body := platform.Task{CPUTime: 3, GPUTime: 2}
	sink := platform.Task{CPUTime: 8, GPUTime: 1}
	g := dag.ForkJoin(6, src, body, sink)
	pl := platform.NewPlatform(2, 1)
	res, err := ScheduleDAG(g, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(g.Tasks(), g); err != nil {
		t.Fatal(err)
	}
	checkSpoliationLemmas(t, res.Schedule)
}

func TestScheduleDAGRandomInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		g := dag.RandomLayered(dag.DefaultRandomLayeredConfig(), rng)
		pl := platform.NewPlatform(1+rng.Intn(4), 1+rng.Intn(2))
		if _, err := g.AssignBottomLevelPriorities(dag.WeightMin, pl); err != nil {
			t.Fatal(err)
		}
		res, err := ScheduleDAG(g, pl, Options{UsePriorities: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Schedule.Validate(g.Tasks(), g); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Makespan is at least the DAG lower bound.
		lb, err := bounds.DAGLower(g, pl)
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan() < lb-1e-6 {
			t.Fatalf("trial %d: makespan %v below lower bound %v", trial, res.Makespan(), lb)
		}
	}
}

func TestPriorityTieBreakChangesDAGChoice(t *testing.T) {
	// Two ready tasks with identical (p, q) but different priorities; the
	// single GPU must take the high-priority one first under UsePriorities.
	g := dag.New()
	lo := g.AddTask(platform.Task{CPUTime: 10, GPUTime: 1, Priority: 1})
	hi := g.AddTask(platform.Task{CPUTime: 10, GPUTime: 1, Priority: 5})
	pl := platform.NewPlatform(0, 1)
	res, err := ScheduleDAG(g, pl, Options{UsePriorities: true})
	if err != nil {
		t.Fatal(err)
	}
	first := res.Schedule.Entries[0]
	if first.TaskID != hi {
		t.Errorf("GPU started task %d first, want high-priority %d (lo=%d)", first.TaskID, hi, lo)
	}
}

func TestResultMakespanAccessor(t *testing.T) {
	in := platform.Instance{task(0, 1, 1)}
	res, err := ScheduleIndependent(in, platform.NewPlatform(1, 0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan() != res.Schedule.Makespan() {
		t.Error("Makespan accessor mismatch")
	}
}

package core

import (
	"math"
	"testing"

	"repro/internal/sched"
	"repro/internal/workloads"
)

// TestTheorem11WorstCaseFamily runs HeteroPrio on the Theorem 11 instances
// and checks the adversarial makespan x + phi (optimum 1), approaching the
// tight bound 1 + phi as m grows.
func TestTheorem11WorstCaseFamily(t *testing.T) {
	for _, m := range []int{2, 5, 10, 40} {
		in, pl := workloads.Theorem11Instance(m, 4)
		res, err := ScheduleIndependent(in, pl, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Schedule.Validate(in, nil); err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		want := workloads.Theorem11ExpectedMakespan(m)
		if math.Abs(res.Makespan()-want) > 1e-9 {
			t.Errorf("m=%d: makespan %v, want %v", m, res.Makespan(), want)
		}
	}
	// The ratio approaches 1 + phi from below.
	r40 := workloads.Theorem11ExpectedMakespan(40)
	if r40 < 2.5 || r40 > 1+phi {
		t.Errorf("m=40 ratio %v not in (2.5, 1+phi)", r40)
	}
}

// TestTheorem11OptimalIsOne verifies with the exact solver (small fillers)
// that the Theorem 11 instance has optimal makespan 1.
func TestTheorem11OptimalIsOne(t *testing.T) {
	// K=2 makes the fillers pack exactly: 3*eps + phi*eps = eps*(3+phi) = 1.
	in, pl := workloads.Theorem11Instance(3, 2)
	opt, err := sched.OptimalIndependent(in, pl)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(opt-1) > 1e-9 {
		t.Errorf("optimal = %v, want 1", opt)
	}
}

// TestTheorem14BadListOrder checks the Figure 4 claim: the T2 set consumed
// in the bad order by a Graham list scheduler on n machines takes 2n-1,
// while the good packing achieves n.
func TestTheorem14BadListOrder(t *testing.T) {
	for _, k := range []int{1, 2, 4} {
		n := 6 * k
		ms, _ := sched.ListHomogeneous(workloads.Theorem14T2GPUTimes(k), n)
		if math.Abs(ms-float64(2*n-1)) > 1e-9 {
			t.Errorf("k=%d: bad list makespan %v, want %v", k, ms, 2*n-1)
		}
	}
}

// TestTheorem14WorstCaseFamily runs HeteroPrio on the full Theorem 14
// instance and checks the adversarial makespan x + n*r/3, i.e. a ratio
// approaching 2 + 2/sqrt(3) ~ 3.15.
func TestTheorem14WorstCaseFamily(t *testing.T) {
	for _, k := range []int{1, 2, 3} {
		in, pl := workloads.Theorem14Instance(k, 2)
		res, err := ScheduleIndependent(in, pl, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Schedule.Validate(in, nil); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		want := workloads.Theorem14ExpectedMakespan(k)
		if math.Abs(res.Makespan()-want) > 1e-6 {
			t.Errorf("k=%d: makespan %v, want %v (ratio %v vs %v)",
				k, res.Makespan(), want,
				res.Makespan()/workloads.Theorem14OptimalMakespan(k),
				want/workloads.Theorem14OptimalMakespan(k))
		}
		ratio := res.Makespan() / workloads.Theorem14OptimalMakespan(k)
		if ratio > 2+2/math.Sqrt(3)+1e-9 {
			t.Errorf("k=%d: ratio %v above the 2+2/sqrt(3) limit", k, ratio)
		}
		// The family approaches the limit from below: x/n + r/3.
		n := 6 * k
		r := workloads.Theorem14R(n)
		x := float64(n*n-n) * float64(n) / (float64(n*n) + float64(n)*r)
		if wantRatio := x/float64(n) + r/3; math.Abs(ratio-wantRatio) > 1e-6 {
			t.Errorf("k=%d: ratio %v, want %v", k, ratio, wantRatio)
		}
	}
}

// TestTheorem14OptimalWitness builds the (near-)optimal schedule of the
// paper explicitly (Figure 5a) and validates it: T2 good-packed on the
// GPUs, T1 on n CPUs, T3/T4 filling the remaining m-n CPUs. With filler
// granularity K the makespan is within one filler length (r*x/K) of the
// optimum n, certifying the worst-case ratio of the family.
func TestTheorem14OptimalWitness(t *testing.T) {
	k, K := 2, 500
	in, pl := workloads.Theorem14Instance(k, K)
	n := 6 * k
	r := workloads.Theorem14R(n)
	x := float64(n*n-n) * float64(n) / (float64(n*n) + float64(n)*r)
	slack := r * x / float64(K)
	// Group tasks by name preserving order.
	byName := map[string][]int{}
	for i, task := range in {
		byName[task.Name] = append(byName[task.Name], i)
	}
	s := buildTheorem14Optimal(t, in, pl, byName, k, K)
	if err := s.Validate(in, nil); err != nil {
		t.Fatal(err)
	}
	ms := s.Makespan()
	if ms < float64(n)-1e-9 || ms > float64(n)+slack+1e-9 {
		t.Errorf("witness makespan %v, want within [%v, %v]", ms, n, float64(n)+slack)
	}
	// The certified ratio (HeteroPrio makespan over witness makespan) must
	// already be deep in worst-case territory, well above 2+sqrt(2)'s
	// little sibling bounds for the (m,1) case.
	res, err := ScheduleIndependent(in, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Theory for k=2: x/n + r/3 ~ 2.68; the witness slack costs a few
	// percent. Anything >= 2.6 certifies the family is well beyond the
	// (m,1) bound of 1+phi and approaching 2+2/sqrt(3).
	ratio := res.Makespan() / ms
	if ratio < 2.6 {
		t.Errorf("certified ratio %v, want >= 2.6 (theory: -> %v)", ratio, 2+2/math.Sqrt(3))
	}
}

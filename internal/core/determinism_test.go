package core

import (
	"math/rand"
	"testing"

	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/workloads"
)

// HeteroPrio is fully deterministic: identical inputs must produce
// byte-identical schedules, run after run. Runtime systems rely on this
// for reproducible performance debugging.
func TestScheduleIndependentDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := workloads.UniformInstance(200, 1, 100, 0.2, 40, rng)
	pl := platform.NewPlatform(6, 2)
	first, err := ScheduleIndependent(in, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 3; rep++ {
		again, err := ScheduleIndependent(in, pl, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := again.Schedule.CSV(), first.Schedule.CSV(); got != want {
			t.Fatalf("rep %d: schedules differ", rep)
		}
	}
}

func TestScheduleDAGDeterministic(t *testing.T) {
	g := workloads.Cholesky(8)
	pl := platform.NewPlatform(6, 2)
	if _, err := g.AssignBottomLevelPriorities(dag.WeightMin, pl); err != nil {
		t.Fatal(err)
	}
	first, err := ScheduleDAG(g, pl, Options{UsePriorities: true})
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 3; rep++ {
		again, err := ScheduleDAG(g, pl, Options{UsePriorities: true})
		if err != nil {
			t.Fatal(err)
		}
		if again.Schedule.CSV() != first.Schedule.CSV() {
			t.Fatalf("rep %d: DAG schedules differ", rep)
		}
	}
}

// Package core implements HeteroPrio, the paper's primary contribution: an
// affinity-based list scheduling algorithm with spoliation for platforms
// made of two unrelated resource classes (CPUs and GPUs).
//
// Algorithm 1 of the paper, for a set of independent tasks:
//
//  1. Sort ready tasks in a queue Q by non-increasing acceleration factor
//     rho = p/q.
//  2. When a worker becomes idle, it removes a task from the beginning of Q
//     if it is a GPU worker, from the end otherwise, and starts processing
//     it.
//  3. If Q is empty, the idle worker considers the tasks running on the
//     other resource class in decreasing order of their expected completion
//     time; if it could finish one of them strictly earlier than its
//     current expected completion time, that task is spoliated: the victim
//     run is aborted (all progress lost) and the task restarts on the idle
//     worker.
//
// The DAG variant applies the same rule to the set of currently ready
// tasks, inserting tasks into Q as their predecessors complete; priorities
// (typically bottom levels, Section 6.2) break acceleration-factor ties and
// select among equal-completion-time spoliation victims.
package core

import (
	"math"

	"repro/internal/dag"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/sim"
)

// Options configures a HeteroPrio run. The zero value is the paper's
// algorithm with spoliation enabled and priority tie-breaking off.
type Options struct {
	// DisableSpoliation turns spoliation off, leaving a pure double-ended
	// list scheduler. Used for the ablation study: without spoliation the
	// algorithm has no bounded approximation ratio (Section 3).
	DisableSpoliation bool
	// UsePriorities applies the paper's priority tie-break when ordering
	// the queue: among tasks with equal acceleration factor, highest
	// priority first when rho >= 1 and last when rho < 1.
	UsePriorities bool
	// Eps is the tolerance used for the strict-improvement test of
	// spoliation: a task is spoliated only if the new completion time
	// improves on the current one by more than Eps. Defaults to 1e-9.
	Eps float64
	// ActualTime, if non-nil, gives the actual execution duration of a
	// task on a class, which may differ from the nominal processing time
	// the scheduler bases its decisions on (estimation-noise
	// experiments). Nil means actual == nominal.
	ActualTime func(t platform.Task, k platform.Kind) float64
	// TransferDelay, if positive, models data movement in DAG mode: a
	// task whose predecessor executed on the other resource class may not
	// start on a worker before the predecessor's completion plus this
	// delay; the worker blocks (occupied) until the transfer finishes.
	// Schedules produced with a transfer delay validate with
	// sim.Schedule.ValidateRelaxed (runs appear longer than nominal).
	TransferDelay float64
	// Observer, if non-nil, receives live scheduling events (task queued /
	// started / spoliated / completed, worker-idle and queue-depth
	// samples) at each simulated-clock decision point. Every emission site
	// is guarded on the nil default, so a disabled observer adds zero
	// allocations and zero calls to the scheduling loop (guarded by
	// BenchmarkScheduleIndependent and TestObserverNopZeroAlloc).
	Observer obs.Observer
}

func (o Options) actual(t platform.Task, k platform.Kind) float64 {
	if o.ActualTime == nil {
		return t.Time(k)
	}
	return o.ActualTime(t, k)
}

func (o Options) eps() float64 {
	if o.Eps > 0 {
		return o.Eps
	}
	return 1e-9
}

// Result is the outcome of a HeteroPrio run.
type Result struct {
	// Schedule is the final schedule S_HP, including aborted runs.
	Schedule *sim.Schedule
	// NoSpoliation is S_HP^NS, the list schedule the algorithm would build
	// with spoliation disabled. It is computed alongside the main run for
	// independent instances (the paper's analysis object) and nil for DAG
	// runs.
	NoSpoliation *sim.Schedule
	// TFirstIdle is the first time any worker was idle while unfinished
	// tasks remained; +Inf if no worker was ever idle before the end.
	TFirstIdle float64
	// Spoliations is the number of aborted (spoliated) runs in Schedule.
	Spoliations int
}

// Makespan returns the makespan of the final schedule.
func (r Result) Makespan() float64 { return r.Schedule.Makespan() }

// Queue is HeteroPrio's double-ended ready queue, ordered by non-increasing
// acceleration factor with optional priority tie-breaks and stable
// insertion order. GPU workers pop from the front, CPU workers from the
// back. It is exported for reuse by custom policies and the real-time
// executor (package runtime).
type Queue struct {
	items   []queueItem
	usePrio bool
	seq     int
}

// NewQueue returns an empty queue; usePrio enables the paper's priority
// tie-break among equal acceleration factors.
func NewQueue(usePrio bool) *Queue { return &Queue{usePrio: usePrio} }

type queueItem struct {
	task  platform.Task
	accel float64
	seq   int
}

// before reports whether a precedes b in queue order (front first).
func (q *Queue) before(a, b queueItem) bool {
	if a.accel != b.accel {
		return a.accel > b.accel
	}
	//hplint:allow floateq priorities are copied inputs, not derived floats; != only routes equal-priority pairs to the stable seq tie-break
	if q.usePrio && a.task.Priority != b.task.Priority {
		if a.accel >= 1 {
			return a.task.Priority > b.task.Priority
		}
		return a.task.Priority < b.task.Priority
	}
	return a.seq < b.seq
}

// Len returns the number of queued tasks.
func (q *Queue) Len() int { return len(q.items) }

// Push inserts t keeping the queue ordered; equal keys go after existing
// ones (stability). The binary search is hand-rolled (sort.Search takes a
// closure, and Push sits on the scheduling hot path where closure
// captures are contraband).
//
//hplint:hotpath
func (q *Queue) Push(t platform.Task) {
	it := queueItem{task: t, accel: t.Accel(), seq: q.seq}
	q.seq++
	lo, hi := 0, len(q.items)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if q.before(it, q.items[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	i := lo
	q.items = append(q.items, queueItem{}) //hplint:allow allocflow amortized ready-queue growth, bounded by the live ready-task count
	copy(q.items[i+1:], q.items[i:])
	q.items[i] = it
}

// PopFront removes and returns the highest-acceleration task (GPU side).
func (q *Queue) PopFront() platform.Task {
	t := q.items[0].task
	q.items = q.items[1:]
	return t
}

// PopBack removes and returns the lowest-acceleration task (CPU side).
func (q *Queue) PopBack() platform.Task {
	t := q.items[len(q.items)-1].task
	q.items = q.items[:len(q.items)-1]
	return t
}

// ScheduleIndependent runs HeteroPrio (Algorithm 1) on a set of independent
// tasks. The returned Result contains both S_HP and S_HP^NS.
func ScheduleIndependent(in platform.Instance, pl platform.Platform, opt Options) (Result, error) {
	if err := pl.Validate(); err != nil {
		return Result{}, err
	}
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	res := runList(in, nil, pl, opt)
	if !opt.DisableSpoliation {
		nsOpt := opt
		nsOpt.DisableSpoliation = true
		// The S_HP^NS shadow run is an analysis object, not a live run:
		// it must not double-emit events.
		nsOpt.Observer = nil
		ns := runList(in, nil, pl, nsOpt)
		res.NoSpoliation = ns.Schedule
	} else {
		res.NoSpoliation = res.Schedule
	}
	return res, nil
}

// ScheduleDAG runs the DAG variant of HeteroPrio: at any instant the
// algorithm of the independent case is applied to the set of currently
// ready tasks, and spoliation is attempted when an idle worker finds the
// queue empty.
func ScheduleDAG(g *dag.Graph, pl platform.Platform, opt Options) (Result, error) {
	if err := pl.Validate(); err != nil {
		return Result{}, err
	}
	if err := g.Validate(); err != nil {
		return Result{}, err
	}
	return runList(nil, g, pl, opt), nil
}

// kindOrder is the class service order of a decision round: GPUs first,
// then CPUs (a CPU must never steal a high-affinity task from a GPU that
// frees up at the same instant). Package-level so the loop does not
// rebuild the slice every round.
var kindOrder = [platform.NumKinds]platform.Kind{platform.GPU, platform.CPU}

// listState is one runList execution: the event-loop methods below are
// the scheduling hot path (annotated //hplint:hotpath; the allocflow
// analyzer proves every decision round allocation-free, modulo the
// justified allows at amortized-growth sites). Construction and setup
// stay in runList, outside the contract.
type listState struct {
	k   *sim.Kernel
	q   *Queue
	pl  platform.Platform
	opt Options
	o   obs.Observer
	eps float64

	g  *dag.Graph
	rt *dag.ReadyTracker
	// classReady[id][k] is the earliest instant task id may start on class
	// k once ready (predecessor completion plus transfer delay when the
	// predecessor ran on the other class). Only tracked with a transfer
	// delay configured.
	classReady [][platform.NumKinds]float64

	remaining   int
	tFirstIdle  float64
	spoliations int
}

// startDuration returns the actual occupation time of a run: the
// execution duration plus any transfer wait the worker blocks on.
//
//hplint:hotpath
func (s *listState) startDuration(t platform.Task, kind platform.Kind) float64 {
	d := s.opt.actual(t, kind)
	if s.classReady != nil {
		if wait := s.classReady[t.ID][kind] - s.k.Now; wait > 0 {
			d += wait
		}
	}
	return d
}

// victimBefore orders spoliation candidates: decreasing expected
// completion time, ties by higher priority, then by smaller task ID
// (deterministic, and the lever used by the adversarial worst-case
// instances).
func victimBefore(a, b sim.Running) bool {
	if a.EstEnd != b.EstEnd {
		return a.EstEnd > b.EstEnd
	}
	if a.Task.Priority != b.Task.Priority {
		return a.Task.Priority > b.Task.Priority
	}
	return a.Task.ID < b.Task.ID
}

// sortVictims is an in-place insertion sort. The candidate set is small
// (at most the worker count of one class) and sort.Slice would box the
// slice and build a reflect-based swapper on every call — a measured 25%
// of the event loop's allocations before this existed.
func sortVictims(v []sim.Running) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && victimBefore(v[j], v[j-1]); j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// trySpoliate attempts a spoliation for idle worker w (queue known
// empty). Returns true if a task was restarted on w.
//
//hplint:hotpath
func (s *listState) trySpoliate(w int) bool {
	kind := s.pl.KindOf(w)
	victims := s.k.RunningOnShared(kind.Other())
	if len(victims) == 0 {
		return false
	}
	// Decisions use EstEnd, the completion time the scheduler believes
	// in: with perfect estimates it equals the true End; under
	// estimation noise the true End is not observable. The shared victim
	// buffer is the kernel's scratch; sorting it in place is sanctioned.
	sortVictims(victims)
	for _, v := range victims {
		newEnd := s.k.Now + v.Task.Time(kind)
		if newEnd < v.EstEnd-s.eps {
			s.k.Abort(v.Worker)
			s.k.StartTimed(w, v.Task, s.startDuration(v.Task, kind), true)
			s.spoliations++
			if s.o != nil {
				s.o.TaskSpoliated(s.k.Now, v.Worker, w, v.Task, s.k.Now-v.Start)
				s.o.TaskStarted(s.k.Now, w, kind, v.Task, newEnd, true)
			}
			return true
		}
	}
	return false
}

// assign fills idle workers from the queue and, once the queue is
// exhausted, attempts spoliations until no more progress is possible.
//
//hplint:hotpath
func (s *listState) assign() {
	for {
		changed := false
		for _, w := range s.k.IdleWorkersShared(platform.GPU) {
			if s.q.Len() == 0 {
				break
			}
			t := s.q.PopFront()
			s.k.StartTimed(w, t, s.startDuration(t, platform.GPU), false)
			changed = true
			if s.o != nil {
				s.o.TaskStarted(s.k.Now, w, platform.GPU, t, s.k.Now+t.Time(platform.GPU), false)
			}
		}
		for _, w := range s.k.IdleWorkersShared(platform.CPU) {
			if s.q.Len() == 0 {
				break
			}
			t := s.q.PopBack()
			s.k.StartTimed(w, t, s.startDuration(t, platform.CPU), false)
			changed = true
			if s.o != nil {
				s.o.TaskStarted(s.k.Now, w, platform.CPU, t, s.k.Now+t.Time(platform.CPU), false)
			}
		}
		if s.q.Len() == 0 && !s.opt.DisableSpoliation {
			for _, kind := range kindOrder {
				for _, w := range s.k.IdleWorkersShared(kind) {
					if s.trySpoliate(w) {
						changed = true
					}
				}
			}
		}
		if !changed {
			return
		}
	}
}

// complete retires one finished run: completion event, transfer-delay
// bookkeeping, and queueing of newly ready successors.
//
//hplint:hotpath
func (s *listState) complete(run sim.Running) {
	s.remaining--
	if s.o != nil {
		s.o.TaskCompleted(s.k.Now, run.Worker, s.pl.KindOf(run.Worker), run.Task, run.Start)
	}
	if s.rt != nil {
		if s.classReady != nil {
			kind := s.pl.KindOf(run.Worker)
			for _, succ := range s.g.Succs(run.Task.ID) {
				if run.End > s.classReady[succ][kind] {
					s.classReady[succ][kind] = run.End
				}
				if other := kind.Other(); run.End+s.opt.TransferDelay > s.classReady[succ][other] {
					s.classReady[succ][other] = run.End + s.opt.TransferDelay
				}
			}
		}
		s.rt.Complete(run.Task.ID)
		for _, id := range s.rt.DrainShared() {
			t := s.g.Task(id)
			s.q.Push(t)
			if s.o != nil {
				s.o.TaskQueued(s.k.Now, t, s.q.Len())
			}
		}
	}
}

// loop is the event loop proper: assign, observe, advance to the next
// completion, drain same-instant completions, repeat.
//
//hplint:hotpath
func (s *listState) loop() {
	for {
		s.assign()
		if s.remaining > 0 && s.k.NumBusy() < s.pl.Workers() && s.k.Now < s.tFirstIdle {
			s.tFirstIdle = s.k.Now
		}
		if s.o != nil && s.remaining > 0 {
			s.o.QueueDepthSample(s.k.Now, s.q.Len())
			for w := 0; w < s.pl.Workers(); w++ {
				if !s.k.Busy(w) {
					s.o.WorkerIdle(s.k.Now, w, s.pl.KindOf(w))
				}
			}
		}
		run, ok := s.k.CompleteNext()
		if !ok {
			return
		}
		s.complete(run)
		// Drain every completion with the same timestamp before letting the
		// policy reassign: all workers that become idle at this instant must
		// see the same queue, with GPUs served first (otherwise a CPU could
		// steal a high-affinity task from a GPU that frees up at the very
		// same time).
		//hplint:allow floateq completions at one instant carry the same stored float; the exact same-timestamp drain is intended
		for s.k.NextCompletion() == s.k.Now {
			run, ok = s.k.CompleteNext()
			if !ok {
				break
			}
			s.complete(run)
		}
	}
}

// runList is the shared event loop driver. Exactly one of in (independent
// mode) and g (DAG mode) is non-nil. Setup (kernel, queue fill, tracker)
// happens here, outside the hot-path contract; the per-decision work
// lives in the listState methods above.
func runList(in platform.Instance, g *dag.Graph, pl platform.Platform, opt Options) Result {
	s := &listState{
		k:          sim.NewKernel(pl),
		q:          NewQueue(opt.UsePriorities),
		pl:         pl,
		opt:        opt,
		o:          opt.Observer,
		eps:        opt.eps(),
		g:          g,
		tFirstIdle: math.Inf(1),
	}
	if g != nil {
		s.rt = dag.NewReadyTracker(g)
		s.remaining = g.Len()
		if opt.TransferDelay > 0 {
			s.classReady = make([][platform.NumKinds]float64, g.Len())
		}
		for _, id := range s.rt.DrainShared() {
			t := g.Task(id)
			s.q.Push(t)
			if s.o != nil {
				s.o.TaskQueued(s.k.Now, t, s.q.Len())
			}
		}
	} else {
		s.remaining = len(in)
		// Stable order: queue stability reproduces the paper's tie cases.
		for _, t := range in {
			s.q.Push(t)
			if s.o != nil {
				s.o.TaskQueued(s.k.Now, t, s.q.Len())
			}
		}
	}
	s.loop()
	return Result{
		Schedule:    s.k.Schedule(),
		TFirstIdle:  s.tFirstIdle,
		Spoliations: s.spoliations,
	}
}

package core

import (
	"testing"

	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// buildTheorem14Optimal constructs the near-optimal schedule of Figure 5a:
// T2 good-packed on the n GPUs (load exactly n each), T1 on n dedicated
// CPUs (length n each), and the T3/T4 fillers least-loaded-packed on the
// remaining m-n CPUs. Filler integrality makes the filler CPUs finish at
// most one filler-task length after n; with fine granularity the makespan
// is n + O(1/K).
func buildTheorem14Optimal(t *testing.T, in platform.Instance, pl platform.Platform,
	byName map[string][]int, k, K int) *sim.Schedule {
	t.Helper()
	n := 6 * k
	m := n * n
	s := &sim.Schedule{Platform: pl}

	// T1 on CPUs 0..n-1, one each.
	for i, idx := range byName["T1"] {
		task := in[idx]
		s.Entries = append(s.Entries, sim.Entry{
			TaskID: task.ID, Worker: i, Kind: platform.CPU,
			Start: 0, End: task.CPUTime,
		})
	}

	// T2 on the GPUs following the good packing; match lengths to tasks.
	pool := map[float64][]int{}
	for _, idx := range byName["T2"] {
		q := in[idx].GPUTime
		pool[q] = append(pool[q], idx)
	}
	for mach, lens := range workloads.Theorem14T2GoodPacking(k) {
		w := m + mach // GPU worker index
		var at float64
		for _, l := range lens {
			ids := pool[l]
			if len(ids) == 0 {
				t.Fatalf("good packing wants a task of length %v but none left", l)
			}
			idx := ids[len(ids)-1]
			pool[l] = ids[:len(ids)-1]
			task := in[idx]
			s.Entries = append(s.Entries, sim.Entry{
				TaskID: task.ID, Worker: w, Kind: platform.GPU,
				Start: at, End: at + task.GPUTime,
			})
			at += task.GPUTime
		}
	}
	for l, ids := range pool {
		if len(ids) != 0 {
			t.Fatalf("good packing left %d tasks of length %v unplaced", len(ids), l)
		}
	}

	// Fillers on CPUs n..m-1, least-loaded first.
	loads := make([]float64, m-n)
	fillers := append(append([]int{}, byName["T3"]...), byName["T4"]...)
	for _, idx := range fillers {
		best := 0
		for w := 1; w < len(loads); w++ {
			if loads[w] < loads[best]-1e-15 {
				best = w
			}
		}
		task := in[idx]
		s.Entries = append(s.Entries, sim.Entry{
			TaskID: task.ID, Worker: n + best, Kind: platform.CPU,
			Start: loads[best], End: loads[best] + task.CPUTime,
		})
		loads[best] += task.CPUTime
	}
	return s
}
